// Fig. 2 — Log-normalized Linux syscall profile, sorted by aggregate
// frequency. Runs every benchmark workload under WALI with the tracer and
// prints the aggregate distribution plus per-app rows in the same ordering.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <vector>

#include "bench/bench_util.h"
#include "src/workloads/workloads.h"

int main() {
  bench::Header("Figure 2", "syscall profile across benchmark applications");
  bench::Note("counts from the WALI tracer; rows log-normalized per app, "
              "columns sorted by aggregate frequency (paper Fig. 2)");

  struct AppRun {
    std::string name;
    std::map<std::string, uint64_t> counts;
    uint64_t total;
  };
  std::vector<AppRun> runs;
  std::map<std::string, uint64_t> aggregate;

  for (const auto& w : workloads::AllWorkloads()) {
    if (!w.is_benchmark || w.wat.empty()) continue;
    auto stats = workloads::RunUnderWali(w, 24);
    if (!stats.result.ok_or_exit0()) {
      std::printf("!! %s failed: %s\n", w.name.c_str(),
                  stats.result.trap_message.c_str());
      continue;
    }
    for (const auto& [name, n] : stats.syscall_counts) {
      aggregate[name] += n;
    }
    runs.push_back({w.name, stats.syscall_counts, stats.total_syscalls});
  }

  std::vector<std::pair<std::string, uint64_t>> order(aggregate.begin(), aggregate.end());
  std::sort(order.begin(), order.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });

  std::printf("\nunique syscalls invoked across all apps: %zu\n", order.size());
  std::printf("\n%-12s", "app");
  for (const auto& [name, n] : order) {
    std::printf(" %9s", name.substr(0, 9).c_str());
  }
  std::printf("\n");

  auto print_row = [&](const std::string& label,
                       const std::map<std::string, uint64_t>& counts) {
    double max_log = 0;
    for (const auto& [name, n] : counts) {
      max_log = std::max(max_log, std::log10(1.0 + static_cast<double>(n)));
    }
    std::printf("%-12s", label.c_str());
    for (const auto& [name, agg_n] : order) {
      auto it = counts.find(name);
      if (it == counts.end()) {
        std::printf(" %9s", ".");
      } else {
        double v = std::log10(1.0 + static_cast<double>(it->second)) /
                   (max_log > 0 ? max_log : 1.0);
        std::printf(" %9.2f", v);
      }
    }
    std::printf("\n");
  };

  print_row("Aggregate", aggregate);
  for (const auto& run : runs) {
    print_row(run.name, run.counts);
  }

  std::printf("\nraw counts:\n");
  for (const auto& run : runs) {
    std::printf("  %-12s total=%llu unique=%zu\n", run.name.c_str(),
                static_cast<unsigned long long>(run.total), run.counts.size());
  }
  std::printf("\nshape check (paper): every app uses a small syscall subset; the\n"
              "union is small vs the full table; distribution is heavy-tailed.\n");
  return 0;
}
