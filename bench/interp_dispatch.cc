// Interpreter execution-pipeline A/B/C/D: the portable switch loop over the
// UNFUSED stream (the baseline interpreter, before any of the prepare/
// dispatch work), the switch loop over the fused stream (fusion alone),
// computed-goto threaded dispatch over the fused stream with TOS caching
// and the inline call fast path (the full interpreter pipeline), and the
// baseline-JIT tier stitching per-op stencils over the same stream (tier-up
// threshold 0 so the warmup rep compiles everything hot). Runs interpreter-
// bound kernels plus the compute-dominated `lua` workload analog from
// src/workloads/ in all four configurations, checks results AND executed
// instruction counts are bit-identical, and reports per-kernel and geomean
// speedups for the interpreter pipeline (threaded+fused vs the switch
// baseline) and for the JIT tier (vs the threaded interpreter) with the
// fusion-only ratio alongside for attribution.
//
//   interp_dispatch [--json out.json] [--quick]
//
// Exit codes: 0 ok; 3 when threaded dispatch is available but the full-
// pipeline geomean is below the 1.9x bar or the call-dense `fib` kernel is
// below its 1.6x bar (ISSUE 5 acceptance), or when the JIT tier is built in
// but its geomean over the threaded interpreter on the compute kernels is
// below 1.5x or `collatz` is below 1.3x (ISSUE 8 acceptance); 1 on engine
// errors. --quick cuts iterations for the CI smoke gate: the perf bars stay
// advisory there, but a result mismatch — in any mode, jit included — is
// always a hard failure. --json writes one machine-readable run; the
// checked-in BENCH_interp.json at the repo root keeps the TRAJECTORY (an
// array of such runs, appended per optimization PR, never overwritten).
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/time_util.h"
#include "src/workloads/workloads.h"
#include "src/wasm/prepare.h"
#include "src/wasm/wasm.h"

namespace {

struct Kernel {
  const char* name;
  const char* wat;
  uint32_t arg;
};

// Tight counting loop: local.get/i32.const/i32.add/local.set and cmp+br_if
// chains — the fusion pass's bread and butter.
const char* kLoopArith = R"((module
  (func (export "run") (param $n i32) (result i32)
    (local $i i32) (local $acc i32)
    (block $done
      (loop $l
        (br_if $done (i32.ge_u (local.get $i) (local.get $n)))
        (local.set $acc (i32.add (local.get $acc) (i32.mul (local.get $i) (i32.const 3))))
        (local.set $acc (i32.xor (local.get $acc) (i32.shr_u (local.get $acc) (i32.const 7))))
        (local.set $acc (i32.add (local.get $acc) (i32.const 0x9E37)))
        (local.set $i (i32.add (local.get $i) (i32.const 1)))
        (br $l)))
    (local.get $acc)))
)";

// Call-heavy recursion (frame push/pop, if/else control).
const char* kFib = R"((module
  (func $fib (export "run") (param i32) (result i32)
    (if (result i32) (i32.lt_u (local.get 0) (i32.const 2))
      (then (local.get 0))
      (else (i32.add
        (call $fib (i32.sub (local.get 0) (i32.const 1)))
        (call $fib (i32.sub (local.get 0) (i32.const 2))))))))
)";

// Byte-granular memory traffic (loads, stores, memory.fill) over 256 KiB.
const char* kSieve = R"((module
  (memory 4)
  (func (export "run") (param $limit i32) (result i32)
    (local $i i32) (local $j i32) (local $count i32)
    (memory.fill (i32.const 0) (i32.const 1) (local.get $limit))
    (i32.store8 (i32.const 0) (i32.const 0))
    (i32.store8 (i32.const 1) (i32.const 0))
    (local.set $i (i32.const 2))
    (block $done
      (loop $outer
        (br_if $done (i32.gt_u (i32.mul (local.get $i) (local.get $i)) (local.get $limit)))
        (if (i32.load8_u (local.get $i))
          (then
            (local.set $j (i32.mul (local.get $i) (local.get $i)))
            (block $jdone
              (loop $inner
                (br_if $jdone (i32.ge_u (local.get $j) (local.get $limit)))
                (i32.store8 (local.get $j) (i32.const 0))
                (local.set $j (i32.add (local.get $j) (local.get $i)))
                (br $inner)))))
        (local.set $i (i32.add (local.get $i) (i32.const 1)))
        (br $outer)))
    (local.set $i (i32.const 0))
    (block $cdone
      (loop $c
        (br_if $cdone (i32.ge_u (local.get $i) (local.get $limit)))
        (local.set $count (i32.add (local.get $count) (i32.load8_u (local.get $i))))
        (local.set $i (i32.add (local.get $i) (i32.const 1)))
        (br $c)))
    (local.get $count)))
)";

// Word-granular matmul (n x n, i32) — local.get+i32.load addressing chains.
const char* kMatmul = R"((module
  (memory 2)
  (func (export "run") (param $n i32) (result i32)
    (local $i i32) (local $j i32) (local $k i32) (local $sum i32) (local $check i32)
    ;; init a[i] = i*7+3 over 2*n*n words
    (local.set $i (i32.const 0))
    (block $idone
      (loop $init
        (br_if $idone (i32.ge_u (local.get $i) (i32.mul (i32.const 2) (i32.mul (local.get $n) (local.get $n)))))
        (i32.store (i32.mul (local.get $i) (i32.const 4))
                   (i32.add (i32.mul (local.get $i) (i32.const 7)) (i32.const 3)))
        (local.set $i (i32.add (local.get $i) (i32.const 1)))
        (br $init)))
    (local.set $i (i32.const 0))
    (block $done
      (loop $li
        (br_if $done (i32.ge_u (local.get $i) (local.get $n)))
        (local.set $j (i32.const 0))
        (block $jdone
          (loop $lj
            (br_if $jdone (i32.ge_u (local.get $j) (local.get $n)))
            (local.set $sum (i32.const 0))
            (local.set $k (i32.const 0))
            (block $kdone
              (loop $lk
                (br_if $kdone (i32.ge_u (local.get $k) (local.get $n)))
                (local.set $sum (i32.add (local.get $sum)
                  (i32.mul
                    (i32.load (i32.mul (i32.add (i32.mul (local.get $i) (local.get $n)) (local.get $k)) (i32.const 4)))
                    (i32.load (i32.mul (i32.add (i32.mul (local.get $k) (local.get $n)) (local.get $j))
                                       (i32.const 4))))))
                (local.set $k (i32.add (local.get $k) (i32.const 1)))
                (br $lk)))
            (local.set $check (i32.xor (local.get $check) (local.get $sum)))
            (local.set $j (i32.add (local.get $j) (i32.const 1)))
            (br $lj)))
        (local.set $i (i32.add (local.get $i) (i32.const 1)))
        (br $li)))
    (local.get $check)))
)";

// Branch-dense kernel: collatz trajectory lengths. Exercises the
// i32.eqz/i32.cmp + br_if superinstructions on an unpredictable branch mix.
const char* kCollatz = R"((module
  (func (export "run") (param $limit i32) (result i32)
    (local $n i32) (local $x i32) (local $steps i32)
    (local.set $n (i32.const 1))
    (block $done
      (loop $outer
        (br_if $done (i32.gt_u (local.get $n) (local.get $limit)))
        (local.set $x (local.get $n))
        (block $conv
          (loop $step
            (br_if $conv (i32.eq (local.get $x) (i32.const 1)))
            (if (i32.and (local.get $x) (i32.const 1))
              (then (local.set $x (i32.add (i32.mul (local.get $x) (i32.const 3)) (i32.const 1))))
              (else (local.set $x (i32.shr_u (local.get $x) (i32.const 1)))))
            (local.set $steps (i32.add (local.get $steps) (i32.const 1)))
            (br $step)))
        (local.set $n (i32.add (local.get $n) (i32.const 1)))
        (br $outer)))
    (local.get $steps)))
)";

// 64-bit scramble loop (xorshift-style): i64 ALU ops dominate.
const char* kI64Mix = R"((module
  (func (export "run") (param $n i32) (result i64)
    (local $i i32) (local $x i64)
    (local.set $x (i64.const 0x9E3779B97F4A7C15))
    (block $done
      (loop $l
        (br_if $done (i32.ge_u (local.get $i) (local.get $n)))
        (local.set $x (i64.xor (local.get $x) (i64.shr_u (local.get $x) (i64.const 13))))
        (local.set $x (i64.rotl (local.get $x) (i64.const 31)))
        (local.set $x (i64.mul (local.get $x) (i64.const 0x2545F4914F6CDD1D)))
        (local.set $x (i64.add (local.get $x) (i64.extend_i32_u (local.get $i))))
        (local.set $i (i32.add (local.get $i) (i32.const 1)))
        (br $l)))
    (local.get $x)))
)";

// Branch-dense bitcount/prng loop: xorshift32 feeding a Kernighan
// clear-lowest-set-bit count (no popcnt instruction in wasm MVP) — the
// inner loop's trip count is data-dependent, so the branch mix is
// unpredictable and dispatch-bound. This is the case the JIT tier targets:
// the interpreter pays an indirect branch per superinstruction, compiled
// code pays a conditional branch.
const char* kBitcount = R"((module
  (func (export "run") (param $n i32) (result i32)
    (local $i i32) (local $x i32) (local $v i32) (local $count i32)
    (local.set $x (i32.const 0x12345678))
    (block $done
      (loop $l
        (br_if $done (i32.ge_u (local.get $i) (local.get $n)))
        (local.set $x (i32.xor (local.get $x) (i32.shl (local.get $x) (i32.const 13))))
        (local.set $x (i32.xor (local.get $x) (i32.shr_u (local.get $x) (i32.const 17))))
        (local.set $x (i32.xor (local.get $x) (i32.shl (local.get $x) (i32.const 5))))
        (local.set $v (local.get $x))
        (block $bdone
          (loop $b
            (br_if $bdone (i32.eqz (local.get $v)))
            (local.set $v (i32.and (local.get $v) (i32.sub (local.get $v) (i32.const 1))))
            (local.set $count (i32.add (local.get $count) (i32.const 1)))
            (br $b)))
        (local.set $i (i32.add (local.get $i) (i32.const 1)))
        (br $l)))
    (local.get $count)))
)";

struct ModeResult {
  bool ok = false;
  int64_t best_ns = 0;
  uint64_t instrs = 0;
  uint64_t bits = 0;
  std::string error;
};

// `jit` defaults to kOff so every interpreter column measures the
// interpreter — kAuto would silently hand the threaded column to the JIT.
// The jit column passes kOn with threshold 0: the warmup rep tiers up
// every function, so timed reps run compiled code throughout.
ModeResult RunKernel(const Kernel& k, wasm::DispatchMode mode, bool fuse,
                     int reps, bool profile = false,
                     wasm::JitTier jit = wasm::JitTier::kOff) {
  ModeResult out;
  auto parsed = wasm::ParseAndValidateWat(k.wat);
  if (!parsed.ok()) {
    out.error = parsed.status().ToString();
    return out;
  }
  if (!fuse) {
    wasm::PrepareOptions popts;
    popts.fuse = false;
    wasm::PrepareModule(**parsed, popts);
  }
  wasm::Linker linker;
  auto inst = linker.Instantiate(*parsed);
  if (!inst.ok()) {
    out.error = inst.status().ToString();
    return out;
  }
  wasm::ExecOptions opts;
  opts.dispatch = mode;
  opts.profile = profile;
  opts.jit = jit;
  opts.jit_threshold = 0;
  std::vector<wasm::Value> args = {wasm::Value::I32(k.arg)};
  out.best_ns = INT64_MAX;
  for (int r = 0; r < reps + 1; ++r) {  // first rep is warmup
    int64_t t0 = common::MonotonicNanos();
    wasm::RunResult res = (*inst)->CallExport("run", args, opts);
    int64_t dt = common::MonotonicNanos() - t0;
    if (!res.ok()) {
      out.error = std::string(wasm::TrapKindName(res.trap)) + " " + res.trap_message;
      return out;
    }
    if (r == 0) {
      out.instrs = res.executed_instrs;
      out.bits = res.values.empty() ? 0 : res.values[0].bits;
    }
    if (r > 0 && dt < out.best_ns) out.best_ns = dt;
  }
  out.ok = true;
  return out;
}

ModeResult RunLuaWorkload(wasm::DispatchMode mode, bool fuse, int scale,
                          int reps,
                          wasm::JitTier jit = wasm::JitTier::kOff) {
  ModeResult out;
  const workloads::Workload* w = workloads::FindWorkload("lua");
  if (w == nullptr) {
    out.error = "lua workload missing";
    return out;
  }
  out.best_ns = INT64_MAX;
  for (int r = 0; r < reps + 1; ++r) {
    auto stats = workloads::RunUnderWali(*w, scale, wasm::SafepointScheme::kLoop,
                                         mode, fuse, jit, /*jit_threshold=*/0);
    if (!stats.result.ok_or_exit0()) {
      out.error = stats.result.trap_message;
      return out;
    }
    if (r == 0) {
      out.instrs = stats.result.executed_instrs;
      out.bits = static_cast<uint64_t>(stats.result.exit_code);
    }
    if (r > 0 && stats.wall_ns < out.best_ns) out.best_ns = stats.wall_ns;
  }
  out.ok = true;
  return out;
}

struct Row {
  std::string name;
  ModeResult base;  // switch dispatch, unfused stream (the pre-pipeline IR)
  ModeResult swf;   // switch dispatch, fused stream (fusion alone)
  ModeResult th;    // threaded dispatch, fused stream (the interp pipeline)
  ModeResult jit;   // baseline-JIT tier over the fused stream
  bool compute = false;      // true for the Kernel array (ISSUE 8 jit bars)
  double speedup = 0;        // base / threaded
  double fused_speedup = 0;  // swf / threaded (dispatch + TOS gains alone)
  double jit_speedup = 0;      // base / jit (full stack vs the seed interp)
  double jit_vs_threaded = 0;  // th / jit (tier gain over the interpreter)
};

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    }
  }
  const int reps = quick ? 2 : 5;
  const uint32_t scale = quick ? 1 : 4;

  bench::Header("interp dispatch",
                "switch baseline vs fusion vs threaded+fused+TOS pipeline");
  bench::Note(std::string("threaded dispatch built in: ") +
              (wasm::ThreadedDispatchAvailable() ? "yes" : "NO (switch-only build)"));
  bench::Note(std::string("baseline JIT tier built in: ") +
              (wasm::JitAvailable() ? "yes" : "NO (interpreter-only build)"));
  if (quick) {
    bench::Note("--quick: reduced iterations (CI smoke gate; result mismatch "
                "is fatal, perf bars advisory)");
  }

  const Kernel kernels[] = {
      {"loop_arith", kLoopArith, 1000000 * scale},
      {"fib", kFib, quick ? 24u : 27u},
      {"sieve", kSieve, 60000 * scale},
      {"matmul", kMatmul, quick ? 32u : 56u},
      {"collatz", kCollatz, 30000 * scale},
      {"i64_mix", kI64Mix, 600000 * scale},
      {"bitcount", kBitcount, 150000 * scale},
  };

  std::vector<Row> rows;
  for (const Kernel& k : kernels) {
    Row row;
    row.name = k.name;
    row.compute = true;
    row.base = RunKernel(k, wasm::DispatchMode::kSwitch, /*fuse=*/false, reps);
    row.swf = RunKernel(k, wasm::DispatchMode::kSwitch, /*fuse=*/true, reps);
    row.th = RunKernel(k, wasm::DispatchMode::kThreaded, /*fuse=*/true, reps);
    row.jit = RunKernel(k, wasm::DispatchMode::kThreaded, /*fuse=*/true, reps,
                        /*profile=*/false, wasm::JitTier::kOn);
    rows.push_back(row);
  }
  {
    const int scale = quick ? 10 : 30;
    Row row;
    row.name = "lua(workload)";
    row.base = RunLuaWorkload(wasm::DispatchMode::kSwitch, /*fuse=*/false, scale, reps);
    row.swf = RunLuaWorkload(wasm::DispatchMode::kSwitch, /*fuse=*/true, scale, reps);
    row.th = RunLuaWorkload(wasm::DispatchMode::kThreaded, /*fuse=*/true, scale, reps);
    row.jit = RunLuaWorkload(wasm::DispatchMode::kThreaded, /*fuse=*/true, scale,
                             reps, wasm::JitTier::kOn);
    rows.push_back(row);
  }

  std::printf("\n%-14s %10s %10s %10s %10s %8s %8s %8s %9s\n", "kernel",
              "switch-ms", "sw+fuse-ms", "thread-ms", "jit-ms", "interp-x",
              "vs-fused", "jit-x", "jit/thrd");
  double log_sum = 0;
  double jit_log_sum = 0;
  double fib_speedup = 0;
  double collatz_jit = 0;
  int counted = 0;
  int jit_counted = 0;
  bool failed = false;
  for (Row& r : rows) {
    if (!r.base.ok || !r.swf.ok || !r.th.ok || !r.jit.ok) {
      std::printf("%-14s <failed: %s>\n", r.name.c_str(),
                  (!r.base.ok ? r.base.error
                   : !r.swf.ok ? r.swf.error
                   : !r.th.ok  ? r.th.error
                               : r.jit.error).c_str());
      failed = true;
      continue;
    }
    // Bit-identical results AND executed counts across all four
    // configurations: this is the TenantLedger contract — fusion level,
    // dispatch mode, and execution tier are pure performance knobs.
    if (r.base.bits != r.th.bits || r.base.instrs != r.th.instrs ||
        r.swf.bits != r.th.bits || r.swf.instrs != r.th.instrs ||
        r.jit.bits != r.th.bits || r.jit.instrs != r.th.instrs) {
      std::printf("%-14s RESULT MISMATCH base=(%" PRIu64 ",%" PRIu64
                  ") fused=(%" PRIu64 ",%" PRIu64 ") threaded=(%" PRIu64
                  ",%" PRIu64 ") jit=(%" PRIu64 ",%" PRIu64 ")\n",
                  r.name.c_str(), r.base.bits, r.base.instrs, r.swf.bits,
                  r.swf.instrs, r.th.bits, r.th.instrs, r.jit.bits,
                  r.jit.instrs);
      failed = true;
      continue;
    }
    r.speedup = static_cast<double>(r.base.best_ns) / static_cast<double>(r.th.best_ns);
    r.fused_speedup =
        static_cast<double>(r.swf.best_ns) / static_cast<double>(r.th.best_ns);
    r.jit_speedup =
        static_cast<double>(r.base.best_ns) / static_cast<double>(r.jit.best_ns);
    r.jit_vs_threaded =
        static_cast<double>(r.th.best_ns) / static_cast<double>(r.jit.best_ns);
    if (r.name == "fib") {
      fib_speedup = r.speedup;
    }
    if (r.name == "collatz") {
      collatz_jit = r.jit_vs_threaded;
    }
    std::printf("%-14s %10.2f %10.2f %10.2f %10.2f %7.2fx %7.2fx %7.2fx %8.2fx\n",
                r.name.c_str(), bench::Ms(r.base.best_ns), bench::Ms(r.swf.best_ns),
                bench::Ms(r.th.best_ns), bench::Ms(r.jit.best_ns), r.speedup,
                r.fused_speedup, r.jit_speedup, r.jit_vs_threaded);
    log_sum += std::log(r.speedup);
    ++counted;
    if (r.compute) {
      jit_log_sum += std::log(r.jit_vs_threaded);
      ++jit_counted;
    }
  }
  double geomean = counted > 0 ? std::exp(log_sum / counted) : 0;
  double jit_geomean = jit_counted > 0 ? std::exp(jit_log_sum / jit_counted) : 0;
  std::printf("\ngeomean speedup (threaded+fused+TOS vs unfused switch baseline): "
              "%.2fx over %d kernels (bar: >= 1.9x; fib bar: >= 1.6x, got %.2fx)\n",
              geomean, counted, fib_speedup);
  std::printf("geomean JIT tier vs threaded interpreter (compute kernels): "
              "%.2fx over %d kernels (bar: >= 1.5x; collatz bar: >= 1.3x, got %.2fx)\n",
              jit_geomean, jit_counted, collatz_jit);

#if defined(HOST_TELEMETRY)
  // Telemetry-overhead A/B inside this binary: the same full pipeline with
  // ExecOptions::profile off vs on (frame-entry counters + fuel
  // attribution). Informational — the ISSUE acceptance bound (<= 2% geomean
  // regression, HOST_TELEMETRY=ON build vs OFF build) is measured across
  // builds; this section bounds the per-run hook cost, which dominates it.
  {
    std::printf("\n%-14s %12s %12s %9s  (telemetry profiling overhead)\n",
                "kernel", "profile-off", "profile-on", "ratio");
    double tlog_sum = 0;
    int tcounted = 0;
    for (const Kernel& k : kernels) {
      ModeResult off =
          RunKernel(k, wasm::DispatchMode::kThreaded, /*fuse=*/true, reps,
                    /*profile=*/false);
      ModeResult on =
          RunKernel(k, wasm::DispatchMode::kThreaded, /*fuse=*/true, reps,
                    /*profile=*/true);
      if (!off.ok || !on.ok) {
        std::printf("%-14s <failed: %s>\n", k.name,
                    (!off.ok ? off.error : on.error).c_str());
        continue;
      }
      double ratio =
          static_cast<double>(on.best_ns) / static_cast<double>(off.best_ns);
      std::printf("%-14s %10.2fms %10.2fms %8.3fx\n", k.name,
                  bench::Ms(off.best_ns), bench::Ms(on.best_ns), ratio);
      tlog_sum += std::log(ratio);
      ++tcounted;
    }
    if (tcounted > 0) {
      std::printf("geomean profile-on/off ratio: %.3fx over %d kernels "
                  "(target: <= 1.02x)\n",
                  std::exp(tlog_sum / tcounted), tcounted);
    }
  }
#endif  // HOST_TELEMETRY

  if (!json_path.empty()) {
    // One run record; append it to the BENCH_interp.json trajectory array.
    std::ofstream out(json_path);
    out << "{\n  \"bench\": \"interp_dispatch\",\n";
    out << "  \"threaded_available\": "
        << (wasm::ThreadedDispatchAvailable() ? "true" : "false") << ",\n";
    out << "  \"jit_available\": "
        << (wasm::JitAvailable() ? "true" : "false") << ",\n";
    out << "  \"baseline\": \"switch dispatch over the unfused stream\",\n";
    out << "  \"kernels\": [\n";
    bool first = true;
    for (const Row& r : rows) {
      if (!r.base.ok || !r.swf.ok || !r.th.ok || !r.jit.ok) continue;
      if (!first) out << ",\n";
      first = false;
      out << "    {\"name\": \"" << r.name << "\", \"switch_ns\": " << r.base.best_ns
          << ", \"switch_fused_ns\": " << r.swf.best_ns
          << ", \"threaded_ns\": " << r.th.best_ns
          << ", \"jit_ns\": " << r.jit.best_ns << ", \"instrs\": " << r.th.instrs
          << ", \"speedup\": " << r.speedup
          << ", \"speedup_vs_fused\": " << r.fused_speedup
          << ", \"jit_speedup\": " << r.jit_speedup
          << ", \"jit_vs_threaded\": " << r.jit_vs_threaded << "}";
    }
    out << "\n  ],\n  \"geomean_speedup\": " << geomean
        << ",\n  \"fib_speedup\": " << fib_speedup
        << ",\n  \"jit_geomean_vs_threaded\": " << jit_geomean
        << ",\n  \"collatz_jit_vs_threaded\": " << collatz_jit << "\n}\n";
    std::printf("wrote %s\n", json_path.c_str());
  }

  if (failed) return 1;
  // The perf bars only bind when the threaded loop is actually in the build
  // (a switch-only build measures fusion alone) and the run is a full
  // measurement — `--quick` is the CI smoke gate, where shared-runner
  // timing noise must not fail the build (mismatches above still exit 1).
  if (!quick && wasm::ThreadedDispatchAvailable() &&
      (geomean < 1.9 || fib_speedup < 1.6)) {
    return 3;
  }
  // JIT-tier bars (ISSUE 8): geomean over the threaded interpreter across
  // the compute kernels, with the branch-dense collatz kernel called out.
  // Advisory under --quick and vacuous when the tier is compiled out (the
  // jit column then just re-measures the interpreter, which the mismatch
  // check above still validates).
  if (!quick && wasm::JitAvailable() &&
      (jit_geomean < 1.5 || collatz_jit < 1.3)) {
    return 3;
  }
  return 0;
}
