// Fig. 7 — Runtime breakdown of WALI across the system stack: fraction of
// wall time spent in the Wasm app (interpreter), the kernel (raw syscalls),
// and the WALI translation layer itself.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/workloads/workloads.h"

int main() {
  bench::Header("Figure 7", "runtime breakdown: wasm-app / kernel / wali");
  bench::Note("attribution via per-layer clocks around every WALI handler and "
              "raw syscall (Fig. 7 in the paper); reported for both interpreter "
              "dispatch modes — faster dispatch shrinks the wasm-app share, the "
              "thin-kernel-interface claim (kernel+wali stay small) must hold in "
              "both");

  const char* apps[] = {"lua", "bash", "sqlite3", "paho-bench", "memcached"};
  const int scales[] = {20, 120, 300, 1200, 400};
  const wasm::DispatchMode modes[] = {wasm::DispatchMode::kSwitch,
                                      wasm::DispatchMode::kThreaded};

  for (wasm::DispatchMode mode : modes) {
    std::printf("\n--- dispatch=%s%s ---\n", wasm::DispatchModeName(mode),
                mode == wasm::DispatchMode::kThreaded &&
                        !wasm::ThreadedDispatchAvailable()
                    ? " (not built in; runs switch)"
                    : "");
    std::printf("%-12s %10s %10s %10s %9s   breakdown (a=app k=kernel w=wali)\n",
                "App", "wasm-app%", "kernel%", "wali%", "wall-ms");
    for (size_t i = 0; i < std::size(apps); ++i) {
      const workloads::Workload* w = workloads::FindWorkload(apps[i]);
      if (w == nullptr) continue;
      auto stats =
          workloads::RunUnderWali(*w, scales[i], wasm::SafepointScheme::kLoop, mode);
      if (!stats.result.ok_or_exit0()) {
        std::printf("%-12s <failed: %s>\n", apps[i], stats.result.trap_message.c_str());
        continue;
      }
      double wall = static_cast<double>(stats.wall_ns);
      double kernel = static_cast<double>(stats.kernel_ns);
      double wali = static_cast<double>(stats.wali_ns);
      if (kernel + wali > wall) {
        wall = kernel + wali;  // threaded apps: layer clocks sum across threads
      }
      double app = wall - kernel - wali;
      double ap = 100.0 * app / wall, kp = 100.0 * kernel / wall, wp = 100.0 * wali / wall;
      std::string bar(50, 'a');
      int kchars = static_cast<int>(kp / 2 + 0.5);
      int wchars = static_cast<int>(wp / 2 + 0.5);
      for (int c = 0; c < kchars && c < 50; ++c) bar[49 - c] = 'k';
      for (int c = kchars; c < kchars + wchars && c < 50; ++c) bar[49 - c] = 'w';
      std::printf("%-12s %9.1f%% %9.1f%% %9.1f%% %9.2f   |%s|\n", apps[i], ap, kp, wp,
                  bench::Ms(stats.wall_ns), bar.c_str());
    }
  }
  std::printf("\nshape check (paper Fig. 7): WALI itself takes ~0.1-2.4%% of wall\n"
              "time; compute apps (lua, paho) are app-dominated; sqlite3 is\n"
              "kernel-heavy (fsync); memcached pays the most WALI time due to\n"
              "threading. Threaded dispatch lowers wall time on the app-dominated\n"
              "workloads without changing the kernel/wali attribution.\n");
  return 0;
}
