// Shared formatting helpers for the paper-reproduction bench binaries.
#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <cstdio>
#include <string>

namespace bench {

inline void Header(const char* artifact, const char* what) {
  std::printf("==============================================================\n");
  std::printf("%s — %s\n", artifact, what);
  std::printf("==============================================================\n");
}

inline void Note(const std::string& text) { std::printf("note: %s\n", text.c_str()); }

inline std::string Bar(double fraction, int width = 40) {
  if (fraction < 0) fraction = 0;
  if (fraction > 1) fraction = 1;
  int n = static_cast<int>(fraction * width + 0.5);
  std::string out(n, '#');
  out.append(width - n, ' ');
  return out;
}

inline double Ms(int64_t ns) { return static_cast<double>(ns) / 1e6; }

}  // namespace bench

#endif  // BENCH_BENCH_UTIL_H_
