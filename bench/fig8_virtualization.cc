// Fig. 8 — Peak memory (8a) and execution time including startup (8b-8d)
// for Lua/Bash/Sqlite under four mechanisms: native, WALI (this engine),
// container runtime (Docker analog), and MiniRV emulator (QEMU-TCG analog).
// Prints one series per mechanism per app across input scales, then derives
// the startup intercepts, slowdown slopes and WALI/container crossover the
// paper's claim C3 rests on.
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/time_util.h"
#include "src/virt/container.h"
#include "src/virt/minirv.h"
#include "src/workloads/workloads.h"

namespace {

struct Point {
  int scale;
  double native_ms;
  double wali_start_ms, wali_run_ms;
  double ctr_start_ms, ctr_run_ms;
  double emu_start_ms, emu_run_ms;
  double wali_mem_mb, ctr_mem_mb, emu_mem_mb, native_mem_mb;
};

// Aggregate slowdown: total mechanism time over total native time across
// all scales (robust to per-point I/O noise like fsync latency).
double SlowdownRatio(const std::vector<double>& native_ms,
                     const std::vector<double>& mech_ms) {
  double sn = 0, sm = 0;
  for (size_t i = 0; i < native_ms.size(); ++i) {
    sn += native_ms[i];
    sm += mech_ms[i];
  }
  return sn > 0 ? sm / sn : 0;
}

}  // namespace

int main() {
  bench::Header("Figure 8", "memory + runtime vs native / container / emulator");
  bench::Note("WALI = this repo's engine (interpreter; paper used WAMR AoT, so "
              "absolute slopes differ — orderings and crossovers are the "
              "reproduced shape)");

  const char* apps[] = {"lua", "bash", "sqlite3"};
  const std::vector<int> scales = {4, 8, 16, 32};

  virt::ContainerRuntime ctr_runtime("/tmp/wali_fig8_ctr");
  virt::ImageSpec image;  // defaults model a small service image
  if (!ctr_runtime.PrepareImage(image).ok()) {
    std::printf("container image preparation failed\n");
    return 1;
  }

  for (const char* app : apps) {
    const workloads::Workload* w = workloads::FindWorkload(app);
    if (w == nullptr) continue;
    std::printf("\n--- %s ---\n", app);
    std::printf("%6s %10s | %10s %10s | %10s %10s | %10s %10s\n", "scale",
                "native-ms", "wali-st", "wali-run", "ctr-st", "ctr-run", "emu-st",
                "emu-run");

    std::vector<Point> points;
    for (int scale : scales) {
      Point p = {};
      p.scale = scale;

      // Native.
      int64_t t0 = common::MonotonicNanos();
      int64_t native_result = w->native(scale);
      p.native_ms = bench::Ms(common::MonotonicNanos() - t0);
      p.native_mem_mb = 0.25;  // working set: page buffers + btree

      // WALI.
      auto stats = workloads::RunUnderWali(*w, scale);
      if (!stats.result.ok_or_exit0()) {
        std::printf("wali run failed: %s\n", stats.result.trap_message.c_str());
        continue;
      }
      p.wali_start_ms = bench::Ms(stats.startup_ns);
      p.wali_run_ms = bench::Ms(stats.wall_ns);
      p.wali_mem_mb = static_cast<double>(stats.peak_linear_memory) / (1 << 20) + 1.0;

      // Container: startup assembles the rootfs; run executes natively.
      auto ctr = ctr_runtime.Start(image);
      if (!ctr.ok()) {
        std::printf("container start failed\n");
        continue;
      }
      p.ctr_start_ms = bench::Ms(ctr->startup_ns);
      int64_t run_ns = ctr_runtime.Run(*ctr, [&] { native_result ^= w->native(scale); });
      p.ctr_run_ms = bench::Ms(run_ns);
      p.ctr_mem_mb = static_cast<double>(ctr_runtime.daemon_bytes() +
                                         ctr->rootfs_bytes) / (1 << 20) +
                     p.native_mem_mb;
      (void)ctr_runtime.Stop(*ctr);

      // Emulator: assemble+load = startup; fetch/decode/execute = run.
      t0 = common::MonotonicNanos();
      workloads::Workload rv_shim;
      rv_shim.wat = w->minirv_asm;
      auto prog = virt::AssembleRv(workloads::InstantiateWat(rv_shim, scale));
      if (!prog.ok()) {
        std::printf("minirv assembly failed: %s\n", prog.status().ToString().c_str());
        continue;
      }
      virt::MiniRvMachine machine({});
      if (!machine.Load(*prog).ok()) continue;
      p.emu_start_ms = bench::Ms(common::MonotonicNanos() - t0);
      t0 = common::MonotonicNanos();
      auto rv_result = machine.Run();
      p.emu_run_ms = bench::Ms(common::MonotonicNanos() - t0);
      if (!rv_result.exited) {
        std::printf("minirv run failed: %s\n", rv_result.error.c_str());
        continue;
      }
      p.emu_mem_mb = static_cast<double>(machine.footprint_bytes()) / (1 << 20) + 0.5;

      std::printf("%6d %10.2f | %10.2f %10.2f | %10.2f %10.2f | %10.2f %10.2f\n",
                  scale, p.native_ms, p.wali_start_ms, p.wali_run_ms, p.ctr_start_ms,
                  p.ctr_run_ms, p.emu_start_ms, p.emu_run_ms);
      points.push_back(p);
    }
    if (points.size() < 2) continue;

    // Fig. 8a: peak memory at the largest scale.
    const Point& last = points.back();
    std::printf("peak memory (MB): native %.1f | wali %.1f | container %.1f | "
                "emulator %.1f\n",
                last.native_mem_mb, last.wali_mem_mb, last.ctr_mem_mb,
                last.emu_mem_mb);

    // Fig. 8b-d shape: startup intercept + slowdown slope vs native.
    std::vector<double> native_t, wali_t, ctr_t, emu_t;
    for (const Point& p : points) {
      native_t.push_back(p.native_ms);
      wali_t.push_back(p.wali_run_ms);
      ctr_t.push_back(p.ctr_run_ms);
      emu_t.push_back(p.emu_run_ms);
    }
    double wali_slope = SlowdownRatio(native_t, wali_t);
    double ctr_slope = SlowdownRatio(native_t, ctr_t);
    double emu_slope = SlowdownRatio(native_t, emu_t);
    double wali_start = points[0].wali_start_ms;
    double ctr_start = points[0].ctr_start_ms;
    double emu_start = points[0].emu_start_ms;
    std::printf("startup (ms):   wali %.2f | container %.2f | emulator %.2f\n",
                wali_start, ctr_start, emu_start);
    std::printf("slowdown vs native: wali %.1fx | container %.1fx | emulator %.1fx\n",
                wali_slope, ctr_slope, emu_slope);

    // Crossover: scale below which WALI total beats the container total.
    bool crossed = false;
    for (const Point& p : points) {
      double wali_total = p.wali_start_ms + p.wali_run_ms;
      double ctr_total = p.ctr_start_ms + p.ctr_run_ms;
      if (wali_total < ctr_total) {
        std::printf("crossover: WALI total (%.2f ms) beats container (%.2f ms) at "
                    "scale %d\n",
                    wali_total, ctr_total, p.scale);
        crossed = true;
        break;
      }
    }
    if (!crossed) {
      std::printf("crossover: container startup amortized before smallest scale\n");
    }
  }

  std::printf("\nshape check (paper §4.3): WALI starts in milliseconds like the\n"
              "emulator (containers pay a large startup); WALI's slope sits\n"
              "between container (near-native) and emulator (order-of-magnitude\n"
              "slower); short-lived runs favor WALI — the middle ground of C3.\n");
  return 0;
}
