// Table 2 — WALI implementation statistics for 30 representative syscalls:
// measured overhead vs the equivalent raw native syscall, implementation
// size (LOC), and whether the call keeps engine-side state. The WALI path
// invokes the registered name-bound host function exactly as a guest import
// call would (minus interpreter dispatch, which the paper also excludes from
// the *intrinsic* interface cost).
#include <benchmark/benchmark.h>
#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/ioctl.h>
#include <sys/mman.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/syscall.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstring>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/time_util.h"
#include "src/wali/wali.h"
#include "src/wasm/wasm.h"

namespace {

struct Harness {
  std::unique_ptr<wasm::Linker> linker;
  std::unique_ptr<wali::WaliRuntime> runtime;
  std::unique_ptr<wali::WaliProcess> process;
  wasm::ExecContext ctx;

  // Calls the registered ("wali", "SYS_<name>") function.
  int64_t Wali(const std::string& name, std::initializer_list<int64_t> args) {
    wasm::FuncRef ref = linker->FindFunc("wali", "SYS_" + name);
    uint64_t argbuf[8] = {0};
    size_t i = 0;
    for (int64_t a : args) argbuf[i++] = static_cast<uint64_t>(a);
    uint64_t result = 0;
    ref.host->fn(ctx, argbuf, &result);
    benchmark::DoNotOptimize(result);
    return static_cast<int64_t>(result);
  }

  uint8_t* Mem(uint64_t addr) { return process->memory->At(addr); }
};

Harness MakeHarness() {
  Harness h;
  auto parsed = wasm::ParseAndValidateWat(R"((module
    (memory 16 1024)
    (table 4 funcref)
    (func $noop (param i32) (result i32) (local.get 0))
    (elem (i32.const 1) $noop)
    (func (export "main") (result i32) (i32.const 0))
  ))");
  h.linker = std::make_unique<wasm::Linker>();
  wali::WaliRuntime::Options opts;
  opts.attribute_time = false;  // measure the interface, not the tracer
  h.runtime = std::make_unique<wali::WaliRuntime>(h.linker.get(), opts);
  auto proc = h.runtime->CreateProcess(*parsed, {"bench"}, {});
  h.process = std::move(*proc);
  h.ctx.root = h.process->main_instance.get();
  return h;
}

struct Row {
  std::string name;
  double overhead_ns;
  int loc;
  bool stateful;
};

// Times `wali_op` and `native_op` over `iters` runs and returns the per-call
// overhead (difference of means; negative clamped to 0 noise floor).
Row Measure(Harness& h, const std::string& name, int iters,
            const std::function<void()>& wali_op,
            const std::function<void()>& native_op,
            const std::function<void()>& reset = {}) {
  // Warmup.
  for (int i = 0; i < 32 && i < iters; ++i) {
    wali_op();
  }
  if (reset) reset();
  int64_t t0 = common::MonotonicNanos();
  for (int i = 0; i < iters; ++i) {
    wali_op();
  }
  int64_t wali_ns = common::MonotonicNanos() - t0;
  if (reset) reset();
  for (int i = 0; i < 32 && i < iters; ++i) {
    native_op();
  }
  if (reset) reset();
  t0 = common::MonotonicNanos();
  for (int i = 0; i < iters; ++i) {
    native_op();
  }
  int64_t native_ns = common::MonotonicNanos() - t0;
  if (reset) reset();

  Row row;
  row.name = name;
  row.overhead_ns =
      static_cast<double>(wali_ns - native_ns) / static_cast<double>(iters);
  if (row.overhead_ns < 0) row.overhead_ns = 0;
  int id = h.runtime->SyscallId(name);
  const auto& def = h.runtime->syscalls()[static_cast<size_t>(id)];
  row.loc = def.loc_estimate;
  row.stateful = def.stateful;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Header("Table 2", "WALI per-syscall intrinsic overhead / LOC / state");
  bench::Note("overhead = mean(WALI name-bound call) - mean(raw syscall), "
              "CLOCK_MONOTONIC_RAW, includes address-space translation and "
              "ABI conversion; clone is engine-dominated (instance-per-thread)");

  Harness h = MakeHarness();
  std::vector<Row> rows;
  constexpr int kIters = 20000;

  // Staging inside the sandbox.
  std::memcpy(h.Mem(64), "/tmp\0", 5);
  std::memcpy(h.Mem(96), "/dev/null\0", 10);
  std::memcpy(h.Mem(128), "/dev/zero\0", 10);

  int null_fd = open("/dev/null", O_WRONLY);
  int zero_fd = open("/dev/zero", O_RDONLY);
  int pipe_fds[2];
  if (pipe(pipe_fds) != 0) return 1;
  int sv[2];
  if (socketpair(AF_UNIX, SOCK_DGRAM | SOCK_NONBLOCK, 0, sv) != 0) return 1;
  char native_buf[256];
  struct stat native_st;

  rows.push_back(Measure(h, "read", kIters,
      [&] { h.Wali("read", {zero_fd, 1024, 64}); },
      [&] { benchmark::DoNotOptimize(syscall(SYS_read, zero_fd, native_buf, 64)); }));
  rows.push_back(Measure(h, "write", kIters,
      [&] { h.Wali("write", {null_fd, 1024, 64}); },
      [&] { benchmark::DoNotOptimize(syscall(SYS_write, null_fd, native_buf, 64)); }));
  {
    // iovec staged in guest memory: 2 segments of 32 bytes.
    uint32_t* iov = reinterpret_cast<uint32_t*>(h.Mem(512));
    iov[0] = 1024; iov[1] = 32; iov[2] = 2048; iov[3] = 32;
    struct iovec niov[2] = {{native_buf, 32}, {native_buf + 32, 32}};
    rows.push_back(Measure(h, "writev", kIters,
        [&] { h.Wali("writev", {null_fd, 512, 2}); },
        [&] { benchmark::DoNotOptimize(syscall(SYS_writev, null_fd, niov, 2)); }));
  }
  rows.push_back(Measure(h, "pread64", kIters,
      [&] { h.Wali("pread64", {zero_fd, 1024, 64, 0}); },
      [&] { benchmark::DoNotOptimize(syscall(SYS_pread64, zero_fd, native_buf, 64, 0)); }));
  {
    std::vector<int> fds;
    fds.reserve(256);
    rows.push_back(Measure(h, "open", 256,
        [&] { fds.push_back(static_cast<int>(h.Wali("open", {96, O_WRONLY, 0}))); },
        [&] { fds.push_back(static_cast<int>(syscall(SYS_openat, AT_FDCWD, "/dev/null", O_WRONLY, 0))); },
        [&] { for (int fd : fds) if (fd >= 0) close(fd); fds.clear(); }));
  }
  {
    std::vector<int> fds;
    auto refill = [&] {
      for (int fd : fds) if (fd >= 0) close(fd);
      fds.clear();
      for (int i = 0; i < 256; ++i) fds.push_back(open("/dev/null", O_WRONLY));
    };
    refill();
    size_t cursor = 0;
    rows.push_back(Measure(h, "close", 256,
        [&] { h.Wali("close", {fds[cursor]}); fds[cursor++] = -1; },
        [&] { syscall(SYS_close, fds[cursor]); fds[cursor++] = -1; },
        [&] { cursor = 0; refill(); }));
    for (int fd : fds) if (fd >= 0) close(fd);
  }
  rows.push_back(Measure(h, "fstat", kIters,
      [&] { h.Wali("fstat", {zero_fd, 4096}); },
      [&] { benchmark::DoNotOptimize(syscall(SYS_fstat, zero_fd, &native_st)); }));
  rows.push_back(Measure(h, "stat", kIters,
      [&] { h.Wali("stat", {64, 4096}); },
      [&] { benchmark::DoNotOptimize(syscall(SYS_newfstatat, AT_FDCWD, "/tmp", &native_st, 0)); }));
  rows.push_back(Measure(h, "lstat", kIters,
      [&] { h.Wali("lstat", {64, 4096}); },
      [&] { benchmark::DoNotOptimize(syscall(SYS_newfstatat, AT_FDCWD, "/tmp", &native_st, AT_SYMLINK_NOFOLLOW)); }));
  rows.push_back(Measure(h, "access", kIters,
      [&] { h.Wali("access", {64, R_OK}); },
      [&] { benchmark::DoNotOptimize(syscall(SYS_faccessat, AT_FDCWD, "/tmp", R_OK)); }));
  rows.push_back(Measure(h, "lseek", kIters,
      [&] { h.Wali("lseek", {zero_fd, 0, SEEK_SET}); },
      [&] { benchmark::DoNotOptimize(syscall(SYS_lseek, zero_fd, 0, SEEK_SET)); }));
  {
    // mmap: allocate 4 KiB per call; release outside the timed region.
    std::vector<int64_t> wali_ptrs;
    std::vector<void*> native_ptrs;
    rows.push_back(Measure(h, "mmap", 256,
        [&] { wali_ptrs.push_back(h.Wali("mmap", {0, 4096, 3, 0x22, -1, 0})); },
        [&] { native_ptrs.push_back(mmap(nullptr, 4096, PROT_READ | PROT_WRITE,
                                         MAP_PRIVATE | MAP_ANONYMOUS, -1, 0)); },
        [&] {
          for (int64_t p : wali_ptrs) if (p > 0) h.Wali("munmap", {p, 4096});
          for (void* p : native_ptrs) if (p != MAP_FAILED) munmap(p, 4096);
          wali_ptrs.clear();
          native_ptrs.clear();
        }));
  }
  {
    std::vector<int64_t> wali_ptrs;
    std::vector<void*> native_ptrs;
    size_t cursor = 0;
    auto refill = [&] {
      for (size_t i = cursor; i < wali_ptrs.size(); ++i) h.Wali("munmap", {wali_ptrs[i], 4096});
      for (size_t i = cursor; i < native_ptrs.size(); ++i) munmap(native_ptrs[i], 4096);
      wali_ptrs.clear();
      native_ptrs.clear();
      cursor = 0;
      for (int i = 0; i < 256; ++i) {
        wali_ptrs.push_back(h.Wali("mmap", {0, 4096, 3, 0x22, -1, 0}));
        native_ptrs.push_back(mmap(nullptr, 4096, PROT_READ | PROT_WRITE,
                                   MAP_PRIVATE | MAP_ANONYMOUS, -1, 0));
      }
    };
    refill();
    size_t native_cursor = 0;
    rows.push_back(Measure(h, "munmap", 256,
        [&] { h.Wali("munmap", {wali_ptrs[cursor], 4096}); ++cursor; },
        [&] { munmap(native_ptrs[native_cursor], 4096); ++native_cursor; },
        [&] { refill(); native_cursor = 0; }));
  }
  {
    void* native_region = mmap(nullptr, 65536, PROT_READ | PROT_WRITE,
                               MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    int64_t wali_region = h.Wali("mmap", {0, 65536, 3, 0x22, -1, 0});
    rows.push_back(Measure(h, "mprotect", kIters,
        [&] { h.Wali("mprotect", {wali_region, 4096, 3}); },
        [&] { mprotect(native_region, 4096, PROT_READ | PROT_WRITE); }));
  }
  {
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = SIG_IGN;
    auto* act = h.Mem(768);
    std::memset(act, 0, 16);
    act[0] = 2;  // handler funcref index 2... table slot 1 is $noop; use 1
    act[0] = 1;
    rows.push_back(Measure(h, "rt_sigaction", 4096,
        [&] { h.Wali("rt_sigaction", {SIGUSR2, 768, 0, 8}); },
        [&] { sigaction(SIGUSR2, &sa, nullptr); }));
    signal(SIGUSR2, SIG_DFL);
  }
  {
    uint64_t* mask = reinterpret_cast<uint64_t*>(h.Mem(840));
    *mask = 0;
    sigset_t nset;
    sigemptyset(&nset);
    rows.push_back(Measure(h, "rt_sigprocmask", kIters,
        [&] { h.Wali("rt_sigprocmask", {SIG_BLOCK, 840, 0, 8}); },
        [&] { syscall(SYS_rt_sigprocmask, SIG_BLOCK, &nset, nullptr, 8); }));
  }
  {
    uint32_t* word = reinterpret_cast<uint32_t*>(h.Mem(896));
    *word = 0;
    uint32_t native_word = 0;
    rows.push_back(Measure(h, "futex", kIters,
        [&] { h.Wali("futex", {896, 1 /*FUTEX_WAKE*/, 1, 0, 0, 0}); },
        [&] { syscall(SYS_futex, &native_word, 1, 1, nullptr, nullptr, 0); }));
  }
  rows.push_back(Measure(h, "getpid", kIters,
      [&] { h.Wali("getpid", {}); },
      [&] { benchmark::DoNotOptimize(syscall(SYS_getpid)); }));
  rows.push_back(Measure(h, "getuid", kIters,
      [&] { h.Wali("getuid", {}); },
      [&] { benchmark::DoNotOptimize(syscall(SYS_getuid)); }));
  rows.push_back(Measure(h, "geteuid", kIters,
      [&] { h.Wali("geteuid", {}); },
      [&] { benchmark::DoNotOptimize(syscall(SYS_geteuid)); }));
  rows.push_back(Measure(h, "getgid", kIters,
      [&] { h.Wali("getgid", {}); },
      [&] { benchmark::DoNotOptimize(syscall(SYS_getgid)); }));
  rows.push_back(Measure(h, "getegid", kIters,
      [&] { h.Wali("getegid", {}); },
      [&] { benchmark::DoNotOptimize(syscall(SYS_getegid)); }));
  {
    int flags_cmd = F_GETFL;
    rows.push_back(Measure(h, "fcntl", kIters,
        [&] { h.Wali("fcntl", {null_fd, flags_cmd, 0}); },
        [&] { benchmark::DoNotOptimize(syscall(SYS_fcntl, null_fd, flags_cmd, 0)); }));
  }
  {
    int nbytes;
    rows.push_back(Measure(h, "ioctl", kIters,
        [&] { h.Wali("ioctl", {pipe_fds[0], FIONREAD, 1600}); },
        [&] { benchmark::DoNotOptimize(syscall(SYS_ioctl, pipe_fds[0], FIONREAD, &nbytes)); }));
  }
  {
    // recvfrom on an empty non-blocking socket: immediate EAGAIN both ways.
    rows.push_back(Measure(h, "recvfrom", kIters,
        [&] { h.Wali("recvfrom", {sv[0], 1024, 64, 0, 0, 0}); },
        [&] { benchmark::DoNotOptimize(syscall(SYS_recvfrom, sv[0], native_buf, 64, 0, nullptr, nullptr)); }));
  }
  {
    // poll with zero timeout on one pipe fd.
    auto* pfd = h.Mem(1664);
    std::memcpy(pfd, &pipe_fds[0], 4);
    pfd[4] = POLLIN & 0xFF;
    pfd[5] = 0;
    struct pollfd npfd = {pipe_fds[0], POLLIN, 0};
    rows.push_back(Measure(h, "poll", kIters,
        [&] { h.Wali("poll", {1664, 1, 0}); },
        [&] { benchmark::DoNotOptimize(poll(&npfd, 1, 0)); }));
  }
  {
    struct rusage ru;
    rows.push_back(Measure(h, "getrusage", kIters,
        [&] { h.Wali("getrusage", {RUSAGE_SELF, 1792}); },
        [&] { benchmark::DoNotOptimize(syscall(SYS_getrusage, RUSAGE_SELF, &ru)); }));
  }
  {
    struct rlimit64 {
      uint64_t cur, max;
    } rl;
    rows.push_back(Measure(h, "prlimit64", kIters,
        [&] { h.Wali("prlimit64", {0, RLIMIT_NOFILE, 0, 1920}); },
        [&] { benchmark::DoNotOptimize(syscall(SYS_prlimit64, 0, RLIMIT_NOFILE, nullptr, &rl)); }));
  }
  {
    // clone: the paper's outlier — dominated by instance-per-thread setup.
    rows.push_back(Measure(h, "clone", 24,
        [&] {
          h.Wali("clone", {0x100, 1, 0, 0, 0});
          h.process->JoinThreads();
        },
        [&] {
          // The paper attributes nearly all of clone's cost to the engine's
          // per-thread instance creation; compare against a trivial syscall
          // so the number is effectively WALI clone's absolute cost.
          benchmark::DoNotOptimize(syscall(SYS_getpid));
        }));
  }
  {
    // fork: passthrough; children exit immediately.
    rows.push_back(Measure(h, "fork", 48,
        [&] {
          int64_t pid = h.Wali("fork", {});
          if (pid == 0) _exit(0);
          waitpid(static_cast<pid_t>(pid), nullptr, 0);
        },
        [&] {
          pid_t pid = fork();
          if (pid == 0) _exit(0);
          waitpid(pid, nullptr, 0);
        }));
  }

  std::printf("\n%-16s %12s %6s %6s\n", "Syscall", "Overhead", "LOC", "State");
  for (const Row& row : rows) {
    if (row.overhead_ns >= 10000) {
      std::printf("%-16s %9.0f us %6d %6s\n", row.name.c_str(),
                  row.overhead_ns / 1000.0, row.loc, row.stateful ? "Y" : "N");
    } else {
      std::printf("%-16s %9.0f ns %6d %6s\n", row.name.c_str(), row.overhead_ns,
                  row.loc, row.stateful ? "Y" : "N");
    }
  }
  std::printf("\nshape check (paper Table 2): passthrough calls cost O(100ns);\n"
              "stateful mmap/rt_sigaction cost more; clone is the outlier, paid\n"
              "to the engine's per-thread instance creation, not to WALI.\n");

  close(null_fd);
  close(zero_fd);
  close(pipe_fds[0]);
  close(pipe_fds[1]);
  close(sv[0]);
  close(sv[1]);
  return 0;
}
