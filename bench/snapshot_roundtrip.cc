// snapshot_roundtrip — cost of serializing a parked guest and rehydrating
// it into a fresh pool slot, the two halves of the supervisor's
// EvictParked/restore pressure-relief path.
//
// What gets measured, per guest memory footprint and dirty fraction:
//   snapshot  — wali::SnapshotProcess on a parked process (delta-encodes
//               linear memory against the module's data segments)
//   restore   — wali::RestoreProcess into a freshly created process
//   bytes     — the snapshot size, i.e. what an eviction actually frees
//               vs what it writes
//
// The interesting shape: snapshot cost should track the DIRTY page count,
// not the memory size — a mostly-clean 256-page guest must snapshot in
// ~tens of microseconds, or eviction cannot be a pressure-relief valve.
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/time_util.h"
#include "src/wali/process_snapshot.h"
#include "src/wali/wali.h"
#include "src/wasm/prepare.h"
#include "src/wasm/wasm.h"

namespace {

// A guest that dirties `dirty_pages` wasm pages of its `mem_pages` linear
// memory, then parks in a 1-second nanosleep (completed as scripted data —
// never actually slept).
std::string BuildGuestWat(int mem_pages, int dirty_pages) {
  std::string wat = R"((module
  (import "wali" "SYS_nanosleep" (func $nanosleep (param i64 i64) (result i64)))
  (memory )" + std::to_string(mem_pages) + R"()
  (func (export "main") (result i32)
    (local $p i32) (local $i i32)
    (block $pages
      (loop $page
        (br_if $pages (i32.ge_u (local.get $p) (i32.const )" +
               std::to_string(dirty_pages) + R"()))
        (local.set $i (i32.const 0))
        (block $done
          (loop $fill   ;; one store per 4KiB of the page
            (br_if $done (i32.ge_u (local.get $i) (i32.const 65536)))
            (i32.store (i32.add (i32.mul (local.get $p) (i32.const 65536))
                                (local.get $i))
                       (i32.add (local.get $p) (local.get $i)))
            (local.set $i (i32.add (local.get $i) (i32.const 4096)))
            (br $fill)))
        (local.set $p (i32.add (local.get $p) (i32.const 1)))
        (br $page)))
    ;; timespec at 8: park for "1s" (completed as scripted data, not slept)
    (i64.store (i32.const 8) (i64.const 1))
    (i64.store (i32.const 16) (i64.const 0))
    (drop (call $nanosleep (i64.const 8) (i64.const 0)))
    (i32.const 0))
)";
  wat += ")";
  return wat;
}

struct Case {
  int mem_pages;
  int dirty_pages;
};

}  // namespace

int main() {
  bench::Header("snapshot_roundtrip",
                "park -> SnapshotProcess -> fresh slot -> RestoreProcess");

  const Case cases[] = {
      {16, 1}, {16, 8}, {64, 1}, {64, 16}, {256, 1}, {256, 32}, {256, 128},
  };
  constexpr int kIters = 50;

  std::printf("%8s %8s %12s %14s %14s\n", "mem", "dirty", "snap bytes",
              "snapshot us", "restore us");
  for (const Case& c : cases) {
    auto parsed = wasm::ParseAndValidateWat(BuildGuestWat(c.mem_pages, c.dirty_pages));
    if (!parsed.ok()) {
      std::fprintf(stderr, "guest build failed: %s\n",
                   parsed.status().ToString().c_str());
      return 1;
    }
    wasm::PrepareModule(**parsed);

    int64_t snap_ns = 0;
    int64_t restore_ns = 0;
    size_t bytes = 0;
    for (int it = 0; it < kIters; ++it) {
      wasm::Linker linker;
      wali::WaliRuntime rt(&linker);
      auto proc = rt.CreateProcess(*parsed, {"bench"}, {});
      if (!proc.ok()) {
        std::fprintf(stderr, "create failed: %s\n",
                     proc.status().ToString().c_str());
        return 1;
      }
      wali::WaliRuntime::MainContinuation cont;
      wasm::RunResult r = rt.RunMain(**proc, rt.exec_options(), &cont);
      if (r.trap != wasm::TrapKind::kSyscallPending) {
        std::fprintf(stderr, "guest did not park: %s\n",
                     wasm::TrapKindName(r.trap));
        return 1;
      }
      // The sleep parks through the offload seam; complete it as data.
      (*proc)->pending_io.retry = nullptr;

      int64_t t0 = common::MonotonicNanos();
      auto snap = wali::SnapshotProcess(**proc, cont);
      snap_ns += common::MonotonicNanos() - t0;
      if (!snap.ok()) {
        std::fprintf(stderr, "snapshot failed: %s\n",
                     snap.status().ToString().c_str());
        return 1;
      }
      bytes = snap->size();
      cont.Discard();
      for (int fd : (*proc)->GuestFds()) (*proc)->UntrackFd(fd);

      auto fresh = rt.CreateProcess(*parsed, {"bench"}, {});
      if (!fresh.ok()) {
        return 1;
      }
      t0 = common::MonotonicNanos();
      common::Status restored = wali::RestoreProcess(
          snap->data(), snap->size(), **fresh, cont, nullptr);
      restore_ns += common::MonotonicNanos() - t0;
      if (!restored.ok()) {
        std::fprintf(stderr, "restore failed: %s\n", restored.ToString().c_str());
        return 1;
      }
      wasm::RunResult done = rt.ResumeMain(**fresh, cont, 0);
      if (!done.ok() && done.trap != wasm::TrapKind::kExit) {
        std::fprintf(stderr, "resume failed: %s\n", wasm::TrapKindName(done.trap));
        return 1;
      }
    }
    std::printf("%7dp %7dp %12zu %14.1f %14.1f\n", c.mem_pages, c.dirty_pages,
                bytes, snap_ns / 1e3 / kIters, restore_ns / 1e3 / kIters);
  }
  bench::Note(
      "snapshot cost tracks dirty pages, not memory size: clean pages are "
      "delta-skipped (see docs/ARCHITECTURE.md, Snapshot/restore)");
  return 0;
}
