// Table 1 — Porting effort of Wasm APIs for popular applications: which of
// WALI / WASIX / WASI can host each application, based on the OS features
// the real application needs vs each interface's feature set.
#include <cstdio>
#include <set>
#include <string>

#include "bench/bench_util.h"
#include "src/workloads/workloads.h"

namespace {

// Feature sets per interface. WALI exposes the (nearly) full syscall surface
// (§3); WASIX adds POSIX-ish pieces over WASI; WASI preview1 is the minimal
// capability API the paper describes.
const std::set<std::string>& WaliFeatures() {
  static const auto* kSet = new std::set<std::string>({
      "signals", "pipes", "fork", "dup", "mmap", "mremap", "threads", "sockets",
      "socketpair", "sockopt", "wait4", "users", "chmod", "ioctl", "pgroups",
      "sysconf", "futex", "fsync", "self-host", "linux", "processes",
      "shared-memory",
  });
  return *kSet;
}

const std::set<std::string>& WasixFeatures() {
  static const auto* kSet = new std::set<std::string>({
      "signals", "pipes", "fork", "dup", "threads", "sockets", "sockopt",
      "fsync", "processes",
  });
  return *kSet;
}

const std::set<std::string>& WasiFeatures() {
  static const auto* kSet = new std::set<std::string>({"fsync"});
  return *kSet;
}

bool Supports(const std::set<std::string>& features, const workloads::Workload& w,
              std::string* missing) {
  for (const auto& f : w.required_features) {
    if (features.count(f) == 0) {
      *missing = f;
      return false;
    }
  }
  return true;
}

}  // namespace

int main() {
  bench::Header("Table 1", "porting effort of Wasm APIs for popular applications");
  bench::Note("feature needs catalogued from the real applications; the five "
              "benchmark analogs in this repo also execute under WALI (see "
              "tests/workloads_test)");

  std::printf("\n%-12s %-26s %6s %6s %6s   %s\n", "Codebase", "Description", "WALI",
              "WASIX", "WASI", "Missing (from WASI)");
  int wali_ok = 0, wasix_ok = 0, wasi_ok = 0, total = 0;
  for (const auto& w : workloads::AllWorkloads()) {
    std::string missing_wali, missing_wasix, missing_wasi;
    bool a = Supports(WaliFeatures(), w, &missing_wali);
    bool b = Supports(WasixFeatures(), w, &missing_wasix);
    bool c = Supports(WasiFeatures(), w, &missing_wasi);
    ++total;
    wali_ok += a;
    wasix_ok += b;
    wasi_ok += c;
    std::printf("%-12s %-26s %6s %6s %6s   %s\n", w.name.c_str(),
                w.description.substr(0, 26).c_str(), a ? "Y" : "x", b ? "Y" : "x",
                c ? "Y" : "x", c ? "-" : missing_wasi.c_str());
  }
  std::printf("\nsupported: WALI %d/%d, WASIX %d/%d, WASI %d/%d\n", wali_ok, total,
              wasix_ok, total, wasi_ok, total);
  std::printf("shape check (paper): WALI hosts everything; WASIX a handful; WASI\n"
              "only the pure-compute library (zlib).\n");
  return 0;
}
