// Table 3 — Cost of asynchronous-signal polling for the three safepoint
// insertion schemes (§3.3/§4.2): Loop (poll at loop headers), Function
// (poll at function entries), All (poll after every instruction), reported
// as % slowdown over no polling.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/workloads/workloads.h"

namespace {

int64_t BestOf(const workloads::Workload& w, int scale, wasm::SafepointScheme scheme,
               int repeats) {
  int64_t best = INT64_MAX;
  for (int i = 0; i < repeats; ++i) {
    auto stats = workloads::RunUnderWali(w, scale, scheme);
    if (!stats.result.ok_or_exit0()) {
      return -1;
    }
    best = std::min(best, stats.wall_ns);
  }
  return best;
}

}  // namespace

int main() {
  bench::Header("Table 3", "cost of async-signal safepoint polling schemes");
  bench::Note("slowdown vs no polling; Loop = loop headers (WALI default), "
              "Func = function entry, All = every instruction");

  struct AppCfg {
    const char* name;
    int scale;
  };
  // paho-bench is I/O-dominated (low poll cost), lua/sqlite compute-heavy.
  const AppCfg apps[] = {
      {"bash", 60}, {"lua", 12}, {"sqlite3", 120}, {"paho-bench", 400}};

  std::printf("\n%-12s %10s %10s %10s\n", "App", "Loop (%)", "Func (%)", "All (%)");
  for (const AppCfg& cfg : apps) {
    const workloads::Workload* w = workloads::FindWorkload(cfg.name);
    if (w == nullptr) continue;
    int64_t base = BestOf(*w, cfg.scale, wasm::SafepointScheme::kNone, 5);
    int64_t loop = BestOf(*w, cfg.scale, wasm::SafepointScheme::kLoop, 5);
    int64_t func = BestOf(*w, cfg.scale, wasm::SafepointScheme::kFunction, 5);
    int64_t all = BestOf(*w, cfg.scale, wasm::SafepointScheme::kEveryInstr, 5);
    if (base <= 0 || loop < 0 || func < 0 || all < 0) {
      std::printf("%-12s   <failed>\n", cfg.name);
      continue;
    }
    auto pct = [&](int64_t t) {
      return 100.0 * (static_cast<double>(t) - static_cast<double>(base)) /
             static_cast<double>(base);
    };
    std::printf("%-12s %10.1f %10.1f %10.1f\n", cfg.name, pct(loop), pct(func),
                pct(all));
  }
  std::printf("\nshape check (paper Table 3): Loop and Func cost little (single\n"
              "digits for most apps); All is an order of magnitude worse;\n"
              "I/O-bound paho-bench barely notices polling.\n");
  return 0;
}
