// host_throughput — cold-start vs pooled instantiation latency, and
// aggregate multi-tenant guests/sec through the host supervisor.
//
// Cold path (per request): decode binary .wasm -> validate -> reserve and
// commit a fresh linear memory -> instantiate -> run.
// Pooled path (per request): ModuleCache hit -> InstancePool recycles a
// reset memory slab -> instantiate into it -> run.
//
// The acceptance bar for the hosting subsystem is pooled >= 5x faster than
// cold for a warm cache; the bench prints the measured ratio and fails its
// exit code when the bar is missed so CI can watch regressions.
#include <unistd.h>

#include <sys/socket.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/time_util.h"
#include "src/host/host.h"
#include "src/host/io_uring_backend.h"
#include "src/wali/wali.h"
#include "src/wasm/wasm.h"

namespace {

// A representative tenant app: non-trivial code size (so decode+validate
// cost is visible, as it is for real modules), a 4 MiB linear memory, some
// compute, and a couple of syscalls through the thin interface.
std::string BuildGuestWat(int extra_funcs) {
  std::string wat = R"((module
  (import "wali" "SYS_getpid" (func $getpid (result i64)))
  (import "wali" "SYS_write" (func $write (param i64 i64 i64) (result i64)))
  (memory 64)
  (data (i32.const 16) "host_throughput guest payload")
)";
  for (int i = 0; i < extra_funcs; ++i) {
    wat += "  (func $f" + std::to_string(i) +
           " (param $x i32) (result i32)\n"
           "    (i32.add (i32.mul (local.get $x) (i32.const 3))\n"
           "             (i32.const " +
           std::to_string(i) + ")))\n";
  }
  wat += R"(  (func (export "main") (result i32)
    (local $i i32)
    (local $acc i32)
    (drop (call $getpid))
    (local.set $i (i32.const 0))
    (block $done
      (loop $spin
        (br_if $done (i32.ge_u (local.get $i) (i32.const 1000)))
        (local.set $acc (i32.add (local.get $acc) (call $f0 (local.get $i))))
        (i32.store (i32.add (i32.const 4096) (i32.shl (local.get $i) (i32.const 2)))
                   (local.get $acc))
        (local.set $i (i32.add (local.get $i) (i32.const 1)))
        (br $spin)))
    (i32.const 0))
)";
  wat += ")";
  return wat;
}

int64_t MedianNanos(std::vector<int64_t>& samples) {
  std::sort(samples.begin(), samples.end());
  return samples.empty() ? 0 : samples[samples.size() / 2];
}

// `samples` must already be sorted. p in [0, 100].
int64_t PercentileNanos(const std::vector<int64_t>& samples, double p) {
  if (samples.empty()) {
    return 0;
  }
  size_t idx = static_cast<size_t>(p / 100.0 * (samples.size() - 1));
  return samples[idx];
}

}  // namespace

int main() {
  bench::Header("host_throughput",
                "cold vs pooled instantiation, multi-tenant guests/sec");

  // Deploy artifact: binary .wasm bytes, as a registry would store them.
  auto parsed = wasm::ParseAndValidateWat(BuildGuestWat(192));
  if (!parsed.ok()) {
    std::fprintf(stderr, "guest build failed: %s\n",
                 parsed.status().ToString().c_str());
    return 1;
  }
  std::vector<uint8_t> encoded = wasm::EncodeModule(**parsed);
  std::string bytes(reinterpret_cast<const char*>(encoded.data()), encoded.size());
  bench::Note("guest artifact: " + std::to_string(bytes.size()) + " bytes, 64-page memory");

  wasm::Linker linker;
  wali::WaliRuntime runtime(&linker);

  constexpr int kIters = 200;
  std::vector<std::string> argv = {"guest"};

  // --- cold path: full decode + validate + fresh memory per request ---
  // The timer covers exactly what a request pays before its first guest
  // instruction: bytes -> runnable process. The run itself happens outside
  // the timer (identical work on both paths, and it keeps slot lifecycles
  // realistic for the pooled loop below).
  std::vector<int64_t> cold(kIters);
  std::vector<int64_t> cold_e2e(kIters);
  for (int k = 0; k < kIters; ++k) {
    int64_t t0 = common::MonotonicNanos();
    auto module = wasm::DecodeModule(
        reinterpret_cast<const uint8_t*>(bytes.data()), bytes.size());
    if (!module.ok() || !wasm::Validate(**module).ok()) {
      std::fprintf(stderr, "cold decode failed\n");
      return 1;
    }
    auto proc = runtime.CreateProcess(*module, argv, {});
    if (!proc.ok()) {
      std::fprintf(stderr, "cold instantiation failed: %s\n",
                   proc.status().ToString().c_str());
      return 1;
    }
    cold[k] = common::MonotonicNanos() - t0;
    wasm::RunResult r = runtime.RunMain(**proc);
    cold_e2e[k] = common::MonotonicNanos() - t0;
    if (!r.ok_or_exit0()) {
      std::fprintf(stderr, "cold run trapped: %s\n", wasm::TrapKindName(r.trap));
      return 1;
    }
  }

  // --- pooled path: warm module cache + recycled instance slots ---
  host::ModuleCache cache;
  host::InstancePool pool(&runtime);
  {
    // Warm both layers once (populates the cache, parks one slot).
    auto module = cache.Load(bytes);
    auto lease = pool.Acquire(*module, argv, {});
    if (!lease.ok()) {
      std::fprintf(stderr, "warmup failed\n");
      return 1;
    }
    (void)runtime.RunMain(**lease);
  }
  std::vector<int64_t> pooled(kIters);
  std::vector<int64_t> pooled_e2e(kIters);
  for (int k = 0; k < kIters; ++k) {
    int64_t t0 = common::MonotonicNanos();
    auto module = cache.Load(bytes);
    if (!module.ok()) return 1;
    auto lease = pool.Acquire(*module, argv, {});
    if (!lease.ok()) return 1;
    pooled[k] = common::MonotonicNanos() - t0;
    wasm::RunResult r = runtime.RunMain(**lease);
    pooled_e2e[k] = common::MonotonicNanos() - t0;
    if (!r.ok_or_exit0()) {
      std::fprintf(stderr, "pooled run trapped: %s\n", wasm::TrapKindName(r.trap));
      return 1;
    }
  }

  int64_t cold_med = MedianNanos(cold);
  int64_t pooled_med = MedianNanos(pooled);
  double speedup = pooled_med > 0 ? static_cast<double>(cold_med) / pooled_med : 0;
  std::printf("cold   instantiation:   %9.1f us median (decode+validate+memory)\n",
              cold_med / 1e3);
  std::printf("pooled instantiation:   %9.1f us median (cache hit+slot reset)\n",
              pooled_med / 1e3);
  std::printf("speedup (cold/pooled):  %9.2fx  %s\n", speedup,
              speedup >= 5.0 ? "(>= 5x bar: PASS)" : "(>= 5x bar: FAIL)");
  std::printf("cold   instantiate+run: %9.1f us median\n", MedianNanos(cold_e2e) / 1e3);
  std::printf("pooled instantiate+run: %9.1f us median\n",
              MedianNanos(pooled_e2e) / 1e3);
  host::InstancePool::Stats ps = pool.stats();
  std::printf("pool: hits=%llu misses=%llu resets=%llu high_water=%llu\n",
              static_cast<unsigned long long>(ps.hits),
              static_cast<unsigned long long>(ps.misses),
              static_cast<unsigned long long>(ps.resets),
              static_cast<unsigned long long>(ps.high_water));

  // --- aggregate throughput through the supervisor ---
  for (int workers : {1, 2, 4, 8}) {
    host::Supervisor::Options sopts;
    sopts.workers = static_cast<size_t>(workers);
    sopts.pool.max_idle_per_module = static_cast<size_t>(workers);
    host::Supervisor sup(&runtime, sopts);
    auto module = cache.Load(bytes);
    const int total = 400;
    std::vector<host::GuestJob> jobs(total);
    for (int k = 0; k < total; ++k) {
      jobs[k].module = *module;
      jobs[k].argv = argv;
    }
    int64_t t0 = common::MonotonicNanos();
    std::vector<host::RunReport> reports = sup.RunAll(std::move(jobs));
    double secs = (common::MonotonicNanos() - t0) / 1e9;
    int completed = 0;
    for (const host::RunReport& r : reports) {
      completed += r.completed() ? 1 : 0;
    }
    std::printf("supervisor: %d workers  %4d/%d guests  %8.0f guests/s  %s\n",
                workers, completed, total, secs > 0 ? total / secs : 0,
                bench::Bar(std::min(1.0, total / secs / 20000.0), 30).c_str());
  }

  // --- admission control under saturation: 4x oversubmission ---
  // Capacity is what the bounded queues will hold plus what the workers can
  // run (workers + workers * queue_depth); we submit 4x that and let the
  // admission layer sort it out: excess submits bounce (rejected), queued
  // jobs whose deadline passes are shed, the rest run. Reported: shed /
  // reject rates and the queue-latency distribution of the runs that made
  // it through.
  {
    const int kWorkers = 4;
    const size_t kQueueDepth = 32;
    host::Supervisor::Options sopts;
    sopts.workers = kWorkers;
    sopts.queue_depth = kQueueDepth;
    sopts.pool.max_idle_per_module = kWorkers;
    host::Supervisor sup(&runtime, sopts);
    auto module = cache.Load(bytes);
    if (!module.ok()) return 1;

    const int capacity = kWorkers + kWorkers * static_cast<int>(kQueueDepth);
    const int total = 4 * capacity;
    const int64_t deadline =
        common::MonotonicNanos() + 10 * 1000 * 1000;  // 10ms to get scheduled
    std::vector<std::future<host::RunReport>> futures;
    futures.reserve(total);
    int64_t t0 = common::MonotonicNanos();
    for (int k = 0; k < total; ++k) {
      host::GuestJob job;
      job.module = *module;
      job.argv = argv;
      job.tenant = "bench-" + std::to_string(k % kWorkers);
      job.deadline_nanos = deadline;
      futures.push_back(sup.Submit(std::move(job)));
    }
    int ran = 0, shed = 0, rejected = 0, other = 0;
    std::vector<int64_t> queue_lat;
    queue_lat.reserve(total);
    for (std::future<host::RunReport>& f : futures) {
      host::RunReport r = f.get();
      switch (r.outcome) {
        case host::Outcome::kCompleted:
          ++ran;
          queue_lat.push_back(r.queue_nanos);
          break;
        case host::Outcome::kShed:
          ++shed;
          break;
        case host::Outcome::kRejected:
          ++rejected;
          break;
        default:
          ++other;
          break;
      }
    }
    double secs = (common::MonotonicNanos() - t0) / 1e9;
    std::sort(queue_lat.begin(), queue_lat.end());
    std::printf(
        "saturation: %dx oversubmission (%d jobs, %d workers, depth %zu) "
        "in %.3f s\n",
        4, total, kWorkers, kQueueDepth, secs);
    std::printf(
        "saturation: ran %d (%.0f%%)  shed %d (%.0f%%)  rejected %d (%.0f%%)"
        "  other %d\n",
        ran, 100.0 * ran / total, shed, 100.0 * shed / total, rejected,
        100.0 * rejected / total, other);
    std::printf("saturation: queue latency p50 %8.1f us  p99 %8.1f us\n",
                PercentileNanos(queue_lat, 50) / 1e3,
                PercentileNanos(queue_lat, 99) / 1e3);
  }

  // --- blocking I/O: parked guests must not hold workers -----------------
  // N guests each sleep 20ms through SYS_nanosleep. Synchronously that
  // floors at (N / workers) * 20ms of wall; with the IoReactor offload the
  // guests park off-worker and the whole batch completes in a few
  // sleep-durations. The hard bar: guests-in-flight must exceed the worker
  // count (otherwise workers were parked 1:1 with blocked guests and the
  // offload regressed).
  bool in_flight_bar = true;
  {
    const int kWorkers = 4;
    const int kGuests = 64;
    const char* kSleepWat = R"((module
  (import "wali" "SYS_nanosleep" (func $nanosleep (param i64 i64) (result i64)))
  (memory 2)
  (func (export "main") (result i32)
    (i64.store (i32.const 512) (i64.const 0))
    (i64.store (i32.const 520) (i64.const 20000000))
    (drop (call $nanosleep (i64.const 512) (i64.const 0)))
    (i32.const 0))
))";
    auto sleeper = cache.Load(kSleepWat);
    if (!sleeper.ok()) {
      std::fprintf(stderr, "sleeper build failed\n");
      return 1;
    }
    host::IoReactor reactor;
    host::Supervisor::Options sopts;
    sopts.workers = kWorkers;
    sopts.io_backend = &reactor;
    sopts.pool.max_idle_per_module = kWorkers;
    {
      host::Supervisor sup(&runtime, sopts);
      std::vector<host::GuestJob> jobs(kGuests);
      for (int k = 0; k < kGuests; ++k) {
        jobs[k].module = *sleeper;
        jobs[k].argv = {"sleeper"};
        jobs[k].tenant = "blocking-" + std::to_string(k % 8);
      }
      int64_t t0 = common::MonotonicNanos();
      std::vector<host::RunReport> reports = sup.RunAll(std::move(jobs));
      double wall_ms = (common::MonotonicNanos() - t0) / 1e6;
      int completed = 0;
      int64_t blocked_total = 0;
      for (const host::RunReport& r : reports) {
        completed += r.completed() ? 1 : 0;
        blocked_total += r.blocked_nanos;
      }
      host::Supervisor::IoStats s = sup.io_stats();
      in_flight_bar = s.peak_in_flight > static_cast<uint64_t>(kWorkers);
      std::printf(
          "blocking-io: %d guests x 20ms sleep on %d workers: %.1f ms wall "
          "(sync floor %.0f ms)\n",
          kGuests, kWorkers, wall_ms, kGuests / static_cast<double>(kWorkers) * 20.0);
      std::printf(
          "blocking-io: completed %d/%d  parks %llu  peak in-flight %llu vs "
          "%d workers  %s\n",
          completed, kGuests, static_cast<unsigned long long>(s.parks_total),
          static_cast<unsigned long long>(s.peak_in_flight), kWorkers,
          in_flight_bar ? "(in-flight > workers: PASS)"
                        : "(in-flight > workers: FAIL)");
      std::printf("blocking-io: blocked time %.1f ms total, %.1f ms/guest "
                  "(off-worker, unbilled)\n",
                  blocked_total / 1e6, blocked_total / 1e6 / kGuests);
      if (completed != kGuests) {
        in_flight_bar = false;
      }
    }
  }

  // --- slow-client echo: thousands of parked connections, 4 workers -----
  // The C10K shape: kConns echo guests each read one byte from a client
  // that is in no hurry to send it. Every guest parks on read readiness, so
  // the whole fleet must fit in flight on 4 workers (in-flight >> workers);
  // then the clients all speak at once and the echoes drain through the
  // backend's completion path. Run against both production backends.
  bool slow_client_bar = true;
  {
    constexpr int kWorkers = 4;
    constexpr int kConns = 1200;
    constexpr int kParkBar = 1000;
    // argv[1] is the connection fd (guests share the host fd table); the
    // guest parses it, echoes one byte, and exits 0.
    const char* kEchoWat = R"((module
  (import "wali" "SYS_read" (func $read (param i64 i64 i64) (result i64)))
  (import "wali" "SYS_write" (func $write (param i64 i64 i64) (result i64)))
  (import "wali" "copy_argv" (func $copy_argv (param i64 i64) (result i64)))
  (memory 2)
  (func $atoi (param $p i32) (param $len i32) (result i64)
    (local $i i32) (local $v i64)
    (block $done
      (loop $l
        (br_if $done (i32.ge_u (local.get $i) (local.get $len)))
        (local.set $v
          (i64.add (i64.mul (local.get $v) (i64.const 10))
                   (i64.extend_i32_u
                     (i32.sub (i32.load8_u (i32.add (local.get $p)
                                                    (local.get $i)))
                              (i32.const 48)))))
        (local.set $i (i32.add (local.get $i) (i32.const 1)))
        (br $l)))
    (local.get $v))
  (func (export "main") (result i32)
    (local $fd i64) (local $n i64)
    (local.set $n (call $copy_argv (i64.const 256) (i64.const 1)))
    (if (i64.lt_s (local.get $n) (i64.const 2))
      (then (return (i32.const 250))))
    (local.set $fd (call $atoi (i32.const 256)
                         (i32.wrap_i64 (i64.sub (local.get $n) (i64.const 1)))))
    (if (i64.ne (call $read (local.get $fd) (i64.const 512) (i64.const 1))
                (i64.const 1))
      (then (return (i32.const 251))))
    (if (i64.ne (call $write (local.get $fd) (i64.const 512) (i64.const 1))
                (i64.const 1))
      (then (return (i32.const 252))))
    (i32.const 0))
))";
    auto echo = cache.Load(kEchoWat);
    if (!echo.ok()) {
      std::fprintf(stderr, "echo guest build failed: %s\n",
                   echo.status().ToString().c_str());
      return 1;
    }

    struct BackendUnderTest {
      const char* name;
      std::unique_ptr<host::IoBackend> backend;
    };
    std::vector<BackendUnderTest> backends;
    backends.push_back({"poll", std::make_unique<host::IoReactor>()});
    if (host::IoUringAvailable()) {
      backends.push_back({"io_uring", std::make_unique<host::IoUringBackend>()});
    } else {
      bench::Note("io_uring unavailable on this kernel: poll backend only");
    }

    for (BackendUnderTest& bt : backends) {
      std::vector<int> client_fds(kConns, -1);
      std::vector<int> guest_fds(kConns, -1);
      bool socket_fail = false;
      for (int k = 0; k < kConns; ++k) {
        int sv[2];
        if (socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
          socket_fail = true;
          break;
        }
        client_fds[k] = sv[0];
        guest_fds[k] = sv[1];
      }
      if (socket_fail) {
        std::fprintf(stderr, "socketpair failed (fd limit?)\n");
        return 1;
      }

      host::Supervisor::Options sopts;
      sopts.workers = kWorkers;
      sopts.io_backend = bt.backend.get();
      sopts.pool.max_idle_per_module = kWorkers;
      size_t peak_parked = 0;
      double park_ms = 0, echo_ms = 0;
      int completed = 0;
      {
        host::Supervisor sup(&runtime, sopts);
        std::vector<std::future<host::RunReport>> futures;
        futures.reserve(kConns);
        int64_t t0 = common::MonotonicNanos();
        for (int k = 0; k < kConns; ++k) {
          host::GuestJob job;
          job.module = *echo;
          job.argv = {"echo", std::to_string(guest_fds[k])};
          job.tenant = "slow-" + std::to_string(k % 16);
          futures.push_back(sup.Submit(std::move(job)));
        }
        // Slow clients: say nothing until the whole fleet is parked.
        const int64_t park_deadline =
            common::MonotonicNanos() + 30ll * 1000 * 1000 * 1000;
        while (common::MonotonicNanos() < park_deadline) {
          peak_parked = std::max(peak_parked, sup.io_stats().parked_now);
          if (peak_parked >= static_cast<size_t>(kConns)) break;
          std::this_thread::sleep_for(std::chrono::milliseconds(2));
        }
        park_ms = (common::MonotonicNanos() - t0) / 1e6;

        // Now every client speaks at once and wants its echo back.
        int64_t t1 = common::MonotonicNanos();
        const char byte = 'x';
        for (int k = 0; k < kConns; ++k) {
          (void)!write(client_fds[k], &byte, 1);
        }
        char got;
        for (int k = 0; k < kConns; ++k) {
          if (read(client_fds[k], &got, 1) != 1) {
            std::fprintf(stderr, "echo %d lost\n", k);
          }
        }
        for (std::future<host::RunReport>& f : futures) {
          host::RunReport r = f.get();
          completed += (r.completed() && r.exit_code == 0) ? 1 : 0;
        }
        echo_ms = (common::MonotonicNanos() - t1) / 1e6;
      }
      for (int k = 0; k < kConns; ++k) {
        close(client_fds[k]);
        close(guest_fds[k]);
      }

      bool bar = peak_parked >= static_cast<size_t>(kParkBar) &&
                 completed == kConns;
      slow_client_bar = slow_client_bar && bar;
      std::printf(
          "slow-client[%s]: %d conns on %d workers: peak parked %zu  "
          "(>= %d bar: %s)\n",
          bt.name, kConns, kWorkers, peak_parked, kParkBar,
          bar ? "PASS" : "FAIL");
      std::printf(
          "slow-client[%s]: park ramp %.1f ms  echo drain %.1f ms  "
          "%8.0f echoes/s  %s\n",
          bt.name, park_ms, echo_ms,
          echo_ms > 0 ? kConns / (echo_ms / 1e3) : 0,
          bench::Bar(std::min(1.0, peak_parked / (4.0 * kWorkers) / 100.0), 30)
              .c_str());
      if (host::IoUringAvailable() &&
          std::string(bt.name) == "io_uring") {
        auto* uring = static_cast<host::IoUringBackend*>(bt.backend.get());
        host::IoUringBackend::Stats us = uring->stats();
        std::printf(
            "slow-client[io_uring]: %llu sqes / %llu enters = %.1f "
            "sqes/enter (batched submission)\n",
            static_cast<unsigned long long>(us.sqes),
            static_cast<unsigned long long>(us.enters),
            us.enters > 0 ? static_cast<double>(us.sqes) / us.enters : 0.0);
      }
    }
  }

  if (!in_flight_bar || !slow_client_bar) {
    return 3;
  }
  return speedup >= 5.0 ? 0 : 3;
}
