// Fig. 3 — Similarity of Linux syscalls across ISAs: per-ISA totals split
// into the common core vs arch-specific calls, from the curated tables in
// src/abi (x86-64 keeps legacy calls; aarch64/riscv64 use asm-generic).
#include <cstdio>

#include "bench/bench_util.h"
#include "src/abi/syscall_table.h"

int main() {
  bench::Header("Figure 3", "similarity of Linux syscalls across ISAs");
  wabi::IsaSimilarity sim = wabi::ComputeIsaSimilarity();

  int max_total = 0;
  for (int i = 0; i < wabi::kNumIsas; ++i) {
    if (sim.total[i] > max_total) max_total = sim.total[i];
  }

  std::printf("\n%-10s %6s %8s %14s  %s\n", "ISA", "total", "common", "arch-specific",
              "profile (#=common, +=non-core)");
  for (int i = 0; i < wabi::kNumIsas; ++i) {
    wabi::Isa isa = static_cast<wabi::Isa>(i);
    double common_frac = static_cast<double>(sim.common_all) / max_total;
    double total_frac = static_cast<double>(sim.total[i]) / max_total;
    std::string bar = bench::Bar(common_frac, 50);
    // Overlay the non-core portion with '+'.
    int total_chars = static_cast<int>(total_frac * 50 + 0.5);
    for (int k = static_cast<int>(common_frac * 50 + 0.5); k < total_chars && k < 50;
         ++k) {
      bar[k] = '+';
    }
    std::printf("%-10s %6d %8d %14d  |%s|\n", wabi::IsaName(isa), sim.total[i],
                sim.common_all, sim.arch_specific[i], bar.c_str());
  }

  std::printf("\ncommon core shared by all three ISAs: %d syscalls\n", sim.common_all);
  std::printf("shape check (paper): arm64 and riscv64 are nearly identical and\n"
              "largely a subset of x86-64, which carries the legacy extras.\n");
  return 0;
}
