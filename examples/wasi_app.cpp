// Domain example 3 — the layering story (Fig. 1/Fig. 6, claim C2): a WASI
// application runs against the WASI-over-WALI layer. The capability model
// (preopens, path containment) lives in the layer; the engine only exposes
// the thin kernel interface.
//
// Build & run:  ./build/examples/wasi_app
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <string>

#include "src/wali/wali.h"
#include "src/wasi/wasi_layer.h"
#include "src/wasm/wasm.h"

static const char* kWasiGuest = R"((module
  (import "wasi_snapshot_preview1" "fd_write" (func $fd_write (param i32 i32 i32 i32) (result i32)))
  (import "wasi_snapshot_preview1" "fd_prestat_get" (func $prestat (param i32 i32) (result i32)))
  (import "wasi_snapshot_preview1" "path_open" (func $path_open (param i32 i32 i32 i32 i32 i64 i64 i32 i32) (result i32)))
  (import "wasi_snapshot_preview1" "fd_close" (func $fd_close (param i32) (result i32)))
  (memory 2)
  (data (i32.const 100) "WASI over WALI: notes.txt written\n")
  (data (i32.const 300) "notes.txt")
  (data (i32.const 400) "/etc/passwd")
  (func $say (param $addr i32) (param $len i32)
    (i32.store (i32.const 64) (local.get $addr))
    (i32.store (i32.const 68) (local.get $len))
    (drop (call $fd_write (i32.const 1) (i32.const 64) (i32.const 1) (i32.const 80))))
  (func (export "main") (result i32)
    (local $dirfd i32) (local $fd i32)
    ;; discover the preopened sandbox dir
    (local.set $dirfd (i32.const 3))
    (block $found
      (loop $probe
        (br_if $found (i32.eqz (call $prestat (local.get $dirfd) (i32.const 8000))))
        (local.set $dirfd (i32.add (local.get $dirfd) (i32.const 1)))
        (br_if $probe (i32.lt_u (local.get $dirfd) (i32.const 16)))))
    ;; create notes.txt inside the sandbox (O_CREAT|O_TRUNC, rights rw)
    (if (i32.ne (call $path_open (local.get $dirfd) (i32.const 0) (i32.const 300)
                      (i32.const 9) (i32.const 9)
                      (i64.const 0x42) (i64.const 0) (i32.const 0) (i32.const 500))
                (i32.const 0))
      (then (return (i32.const 1))))
    (local.set $fd (i32.load (i32.const 500)))
    (i32.store (i32.const 64) (i32.const 100))
    (i32.store (i32.const 68) (i32.const 34))
    (drop (call $fd_write (local.get $fd) (i32.const 64) (i32.const 1) (i32.const 80)))
    (drop (call $fd_close (local.get $fd)))
    (call $say (i32.const 100) (i32.const 34))
    ;; the capability layer must refuse an absolute path (ENOTCAPABLE=76)
    (call $path_open (local.get $dirfd) (i32.const 0) (i32.const 400)
          (i32.const 11) (i32.const 0)
          (i64.const 2) (i64.const 0) (i32.const 0) (i32.const 500)))
))";

int main() {
  std::string sandbox = "/tmp/wali_wasi_example";
  mkdir(sandbox.c_str(), 0755);

  auto module = wasm::ParseAndValidateWat(kWasiGuest);
  if (!module.ok()) {
    std::fprintf(stderr, "parse error: %s\n", module.status().ToString().c_str());
    return 1;
  }
  wasm::Linker linker;
  wali::WaliRuntime wali_runtime(&linker);  // thin kernel interface (bottom)
  wasi::WasiLayer::Options opts;
  opts.preopens.push_back({"/sandbox", sandbox});
  wasi::WasiLayer wasi_layer(&linker, opts);  // capability API (layered above)

  auto process = wali_runtime.CreateProcess(*module, {"wasi-app"}, {});
  if (!process.ok()) {
    std::fprintf(stderr, "error: %s\n", process.status().ToString().c_str());
    return 1;
  }
  wasm::RunResult r = wali_runtime.RunMain(**process);
  uint32_t escape_errno = r.values.empty() ? 0 : r.values[0].i32();
  std::printf("absolute-path open refused with WASI errno %u (76 = ENOTCAPABLE)\n",
              escape_errno);
  std::printf("every WASI call bottomed out in the thin interface: %llu WALI calls\n",
              static_cast<unsigned long long>(wasi_layer.wali_calls()));

  std::string created = sandbox + "/notes.txt";
  struct stat st;
  bool exists = stat(created.c_str(), &st) == 0;
  std::printf("host check: %s %s (%lld bytes)\n", created.c_str(),
              exists ? "exists" : "MISSING", exists ? (long long)st.st_size : 0);
  unlink(created.c_str());
  rmdir(sandbox.c_str());
  return exists && escape_errno == 76 ? 0 : 1;
}
