;; Minimal multi-tenant demo guest for `walirun --serve`: does a little
;; compute, issues a few syscalls through the thin interface, and exits 9 so
;; the serve-mode exit histogram is easy to eyeball:
;;
;;   walirun --serve 8 --repeat 100 examples/serve_guest.wat
(module
  (import "wali" "SYS_getpid" (func $getpid (result i64)))
  (import "wali" "SYS_gettid" (func $gettid (result i64)))
  (import "wali" "SYS_exit" (func $exit (param i64) (result i64)))
  (memory 2)
  (func (export "main") (result i32)
    (local $i i32)
    (drop (call $getpid))
    (drop (call $gettid))
    (block $done
      (loop $spin
        (br_if $done (i32.ge_u (local.get $i) (i32.const 5000)))
        (i32.store (i32.add (i32.const 1024) (i32.and (local.get $i) (i32.const 1023)))
                   (local.get $i))
        (local.set $i (i32.add (local.get $i) (i32.const 1)))
        (br $spin)))
    (drop (call $exit (i64.const 9)))
    (i32.const 0)))
