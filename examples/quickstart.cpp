// Quickstart: embed the engine, attach WALI, and run a guest program that
// talks to the real kernel — `write(1, ...)`, `getpid()`, `uname()` — from
// inside the Wasm sandbox.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "src/wali/wali.h"
#include "src/wasm/wasm.h"

static const char* kGuest = R"((module
  (import "wali" "SYS_write" (func $write (param i64 i64 i64) (result i64)))
  (import "wali" "SYS_getpid" (func $getpid (result i64)))
  (import "wali" "SYS_uname" (func $uname (param i64) (result i64)))
  (memory 2)
  (data (i32.const 64) "hello from the WALI sandbox!\n")
  (func (export "main") (result i32)
    ;; 1. plain zero-copy write(1, buf, len)
    (drop (call $write (i64.const 1) (i64.const 64) (i64.const 29)))
    ;; 2. uname into guest memory; machine field reads "wasm32"
    (drop (call $uname (i64.const 1024)))
    (drop (call $write (i64.const 1) (i64.add (i64.const 1024) (i64.const 260))
                (i64.const 6)))
    (drop (call $write (i64.const 1) (i64.const 92) (i64.const 1)))  ;; newline
    ;; 3. return our real pid (mod 256) as the exit status
    (i32.and (i32.wrap_i64 (call $getpid)) (i32.const 0xff)))
))";

int main() {
  // 1. Parse and validate the guest module.
  auto module = wasm::ParseAndValidateWat(kGuest);
  if (!module.ok()) {
    std::fprintf(stderr, "parse error: %s\n", module.status().ToString().c_str());
    return 1;
  }

  // 2. One Linker + WaliRuntime = an engine with the `wali` namespace.
  wasm::Linker linker;
  wali::WaliRuntime runtime(&linker);

  // 3. Create the process (argv/env are explicit) and run it.
  auto process = runtime.CreateProcess(*module, {"quickstart"}, {"LANG=C"});
  if (!process.ok()) {
    std::fprintf(stderr, "instantiation error: %s\n",
                 process.status().ToString().c_str());
    return 1;
  }
  wasm::RunResult result = runtime.RunMain(**process);

  std::printf("guest finished: trap=%s exit/result=%d, %llu syscalls, pid %% 256 = %u\n",
              wasm::TrapKindName(result.trap),
              result.trap == wasm::TrapKind::kExit ? result.exit_code : 0,
              static_cast<unsigned long long>((*process)->trace.total_calls()),
              result.values.empty() ? 0u : result.values[0].i32());
  return 0;
}
