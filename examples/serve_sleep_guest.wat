;; Sleeping serve-mode guest for the async-offload + snapshot-eviction path:
;; a 5ms nanosleep parks the guest off-worker (--async-io), where
;; --evict-parked can serialize it out of its pool slab entirely; the restore
;; path rehydrates it when the sleep elapses. Exits 9 like serve_guest.wat so
;; the exit histogram is easy to eyeball:
;;
;;   walirun --serve 8 --repeat 25 --async-io --evict-parked \
;;       examples/serve_sleep_guest.wat
(module
  (import "wali" "SYS_getpid" (func $getpid (result i64)))
  (import "wali" "SYS_nanosleep" (func $nanosleep (param i64 i64) (result i64)))
  (import "wali" "SYS_exit" (func $exit (param i64) (result i64)))
  (memory 2)
  (func (export "main") (result i32)
    (local $i i32)
    (drop (call $getpid))
    ;; timespec at 512: 0 s, 5'000'000 ns
    (i64.store (i32.const 512) (i64.const 0))
    (i64.store (i32.const 520) (i64.const 5000000))
    (drop (call $nanosleep (i64.const 512) (i64.const 0)))
    (block $done
      (loop $spin
        (br_if $done (i32.ge_u (local.get $i) (i32.const 2000)))
        (i32.store (i32.add (i32.const 1024) (i32.and (local.get $i) (i32.const 1023)))
                   (local.get $i))
        (local.set $i (i32.add (local.get $i) (i32.const 1)))
        (br $spin)))
    (drop (call $exit (i64.const 9)))
    (i32.const 0)))
