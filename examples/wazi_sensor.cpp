// Domain example 4 — an embedded sensing app on WAZI (§5.1): the guest runs
// against the Zephyr-class RTOS simulator, sampling a sensor, toggling a
// status LED (GPIO) and logging over the UART console — the paper's
// Nucleo-board Lua demo, reproduced on the simulated kernel.
//
// Build & run:  ./build/examples/wazi_sensor
#include <cstdio>

#include "src/rtos/kernel.h"
#include "src/wazi/wazi.h"
#include "src/wasm/wasm.h"

static const char* kSensorApp = R"((module
  (import "wazi" "device_get_binding" (func $bind (param i64) (result i64)))
  (import "wazi" "sensor_sample_fetch" (func $fetch (param i64) (result i64)))
  (import "wazi" "sensor_channel_get" (func $chan (param i64 i64) (result i64)))
  (import "wazi" "gpio_pin_configure" (func $cfg (param i64 i64 i64) (result i64)))
  (import "wazi" "gpio_pin_set" (func $set (param i64 i64 i64) (result i64)))
  (import "wazi" "uart_poll_out" (func $putc (param i64 i64) (result i64)))
  (import "wazi" "k_sleep" (func $sleep (param i64) (result i64)))
  (memory 1)
  (data (i32.const 64) "temp0\00")
  (data (i32.const 80) "gpio0\00")
  (data (i32.const 96) "uart0\00")
  (func $print_milli (param $uart i64) (param $v i64)
    ;; prints v as d.ddd + newline (v in milli-units, < 100000)
    (local $div i64) (local $digit i64) (local $started i32)
    (local.set $div (i64.const 10000))
    (block $done
      (loop $emit
        (local.set $digit (i64.rem_u (i64.div_u (local.get $v) (local.get $div))
                                     (i64.const 10)))
        (if (i32.or (local.get $started)
                    (i64.ne (local.get $digit) (i64.const 0)))
          (then
            (drop (call $putc (local.get $uart)
                        (i64.add (i64.const 48) (local.get $digit))))
            (local.set $started (i32.const 1))))
        (if (i64.eq (local.get $div) (i64.const 1000))
          (then
            (if (i32.eqz (local.get $started))
              (then (drop (call $putc (local.get $uart) (i64.const 48)))))
            (drop (call $putc (local.get $uart) (i64.const 46)))
            (local.set $started (i32.const 1))))
        (br_if $done (i64.eq (local.get $div) (i64.const 1)))
        (local.set $div (i64.div_u (local.get $div) (i64.const 10)))
        (br $emit)))
    (drop (call $putc (local.get $uart) (i64.const 10))))
  (func (export "main") (result i32)
    (local $temp i64) (local $gpio i64) (local $uart i64)
    (local $i i32) (local $mc i64) (local $sum i64)
    (local.set $temp (call $bind (i64.const 64)))
    (local.set $gpio (call $bind (i64.const 80)))
    (local.set $uart (call $bind (i64.const 96)))
    (drop (call $cfg (local.get $gpio) (i64.const 13) (i64.const 1)))
    (block $done
      (loop $sample
        (br_if $done (i32.ge_u (local.get $i) (i32.const 8)))
        (drop (call $fetch (local.get $temp)))
        (local.set $mc (call $chan (local.get $temp) (i64.const 0)))
        (local.set $sum (i64.add (local.get $sum) (local.get $mc)))
        (call $print_milli (local.get $uart) (local.get $mc))
        ;; blink the status LED each sample
        (drop (call $set (local.get $gpio) (i64.const 13)
                    (i64.extend_i32_u (i32.and (local.get $i) (i32.const 1)))))
        (drop (call $sleep (i64.const 1)))
        (local.set $i (i32.add (local.get $i) (i32.const 1)))
        (br $sample)))
    ;; average in milli-degrees / 1000 = degrees
    (i32.wrap_i64 (i64.div_u (i64.div_u (local.get $sum) (i64.const 8))
                             (i64.const 1000))))
))";

int main() {
  auto module = wasm::ParseAndValidateWat(kSensorApp);
  if (!module.ok()) {
    std::fprintf(stderr, "parse error: %s\n", module.status().ToString().c_str());
    return 1;
  }
  rtos::Kernel kernel;
  wasm::Linker linker;
  wazi::WaziRuntime runtime(&linker, &kernel);
  auto process = runtime.CreateProcess(*module);
  if (!process.ok()) {
    std::fprintf(stderr, "error: %s\n", process.status().ToString().c_str());
    return 1;
  }
  wasm::RunResult r = runtime.RunMain(**process);
  if (!r.ok()) {
    std::fprintf(stderr, "trap: %s\n", wasm::TrapKindName(r.trap));
    return 1;
  }
  std::printf("--- uart0 console ---\n%s---------------------\n",
              kernel.Console()->TakeOutput().c_str());
  auto* gpio = dynamic_cast<rtos::GpioDevice*>(
      kernel.DeviceByHandle(kernel.DeviceGetBinding("gpio0")));
  std::printf("LED (pin 13) toggles: %llu, average temperature: %u C\n",
              static_cast<unsigned long long>(gpio->toggle_count(13)),
              r.values[0].i32());
  std::printf("kernel syscalls issued by the app: %llu (all auto-generated "
              "bindings: %d)\n",
              static_cast<unsigned long long>((*process)->syscall_count.load()),
              runtime.num_bound_syscalls());
  return 0;
}
