// Domain example 2 — a threaded key-value daemon (memcached-style, §3.1):
// the guest clones a server thread (instance-per-thread, shared linear
// memory) and pumps requests over a socketpair; the host reports throughput
// and the per-layer time split the paper's Fig. 7 measures.
//
// Build & run:  ./build/examples/kv_daemon
#include <cstdio>

#include "src/workloads/workloads.h"

int main() {
  const workloads::Workload* w = workloads::FindWorkload("memcached");
  if (w == nullptr) {
    std::fprintf(stderr, "memcached workload missing\n");
    return 1;
  }
  constexpr int kOps = 2000;
  workloads::WaliRunStats stats = workloads::RunUnderWali(*w, kOps);
  if (!stats.result.ok_or_exit0()) {
    std::fprintf(stderr, "run failed: %s\n", stats.result.trap_message.c_str());
    return 1;
  }
  double wall_ms = static_cast<double>(stats.wall_ns) / 1e6;
  std::printf("kv daemon: %d ops in %.2f ms (%.0f ops/s)\n", kOps, wall_ms,
              kOps / (wall_ms / 1000.0));
  std::printf("syscalls: ");
  for (const auto& [name, n] : stats.syscall_counts) {
    std::printf("%s=%llu ", name.c_str(), static_cast<unsigned long long>(n));
  }
  std::printf("\nlayer split: wali %.3f ms, kernel %.3f ms (rest: wasm app)\n",
              stats.wali_ns / 1e6, stats.kernel_ns / 1e6);
  std::printf("reply checksum: %u\n", stats.result.values.empty()
                                          ? 0u
                                          : stats.result.values[0].i32());
  return 0;
}
