// Domain example 1 — a daemon-style guest with asynchronous signal handling
// (the paper's motivating system-software scenario, §1.1/§3.3): the guest
// registers Wasm handlers for SIGUSR1/SIGUSR2/SIGTERM, then services a work
// loop; the host (standing in for an operator) sends real kernel signals.
//
// Build & run:  ./build/examples/signal_daemon
#include <signal.h>
#include <unistd.h>

#include <cstdio>
#include <thread>

#include "src/wali/wali.h"
#include "src/wasm/wasm.h"

static const char* kDaemon = R"((module
  (import "wali" "SYS_rt_sigaction" (func $sigaction (param i64 i64 i64 i64) (result i64)))
  (import "wali" "SYS_write" (func $write (param i64 i64 i64) (result i64)))
  (import "wali" "SYS_sched_yield" (func $yield (result i64)))
  (memory 2)
  (table 8 funcref)
  (global $usr1 (mut i32) (i32.const 0))
  (global $usr2 (mut i32) (i32.const 0))
  (global $stop (mut i32) (i32.const 0))
  (data (i32.const 300) "usr1!\n")
  (data (i32.const 310) "usr2!\n")
  (data (i32.const 320) "term!\n")
  (func $on_usr1 (param i32)
    (global.set $usr1 (i32.add (global.get $usr1) (i32.const 1)))
    (drop (call $write (i64.const 1) (i64.const 300) (i64.const 6))))
  (func $on_usr2 (param i32)
    (global.set $usr2 (i32.add (global.get $usr2) (i32.const 1)))
    (drop (call $write (i64.const 1) (i64.const 310) (i64.const 6))))
  (func $on_term (param i32)
    (global.set $stop (i32.const 1))
    (drop (call $write (i64.const 1) (i64.const 320) (i64.const 6))))
  (elem (i32.const 2) $on_usr1 $on_usr2 $on_term)
  (func $install (param $signo i64) (param $slot i64) (result i64)
    (i32.store (i32.const 1024) (i32.wrap_i64 (local.get $slot)))
    (i32.store (i32.const 1028) (i32.const 0))
    (i64.store (i32.const 1032) (i64.const 0))
    (call $sigaction (local.get $signo) (i64.const 1024) (i64.const 0) (i64.const 8)))
  (func (export "main") (result i32)
    (drop (call $install (i64.const 10) (i64.const 2)))  ;; SIGUSR1 -> slot 2
    (drop (call $install (i64.const 12) (i64.const 3)))  ;; SIGUSR2 -> slot 3
    (drop (call $install (i64.const 15) (i64.const 4)))  ;; SIGTERM -> slot 4
    ;; work loop: yields until SIGTERM's handler sets the stop flag
    (block $done
      (loop $work
        (br_if $done (global.get $stop))
        (drop (call $yield))
        (br $work)))
    ;; exit status: number of USR1s seen * 10 + USR2s
    (i32.add (i32.mul (global.get $usr1) (i32.const 10)) (global.get $usr2)))
))";

int main() {
  auto module = wasm::ParseAndValidateWat(kDaemon);
  if (!module.ok()) {
    std::fprintf(stderr, "parse error: %s\n", module.status().ToString().c_str());
    return 1;
  }
  wasm::Linker linker;
  wali::WaliRuntime runtime(&linker);
  auto process = runtime.CreateProcess(*module, {"signal-daemon"}, {});
  if (!process.ok()) {
    std::fprintf(stderr, "error: %s\n", process.status().ToString().c_str());
    return 1;
  }

  // The "operator": a host thread that pokes the daemon with real signals.
  std::thread operator_thread([] {
    usleep(20000);
    kill(getpid(), SIGUSR1);
    usleep(20000);
    kill(getpid(), SIGUSR1);
    usleep(20000);
    kill(getpid(), SIGUSR2);
    usleep(20000);
    kill(getpid(), SIGTERM);
  });

  wasm::RunResult r = runtime.RunMain(**process);
  operator_thread.join();

  uint32_t code = r.values.empty() ? static_cast<uint32_t>(r.exit_code)
                                   : r.values[0].i32();
  std::printf("daemon exited with %u (expect 21: two USR1, one USR2), "
              "handlers delivered: %llu\n",
              code,
              static_cast<unsigned long long>((*process)->sigtable.delivered_count()));
  return code == 21 ? 0 : 1;
}
