#include "src/wali/sigtable.h"

#include <errno.h>
#include <signal.h>
#include <string.h>

namespace wali {

namespace {

// Global routing table for the native trampoline (async-signal-safe reads).
std::atomic<SigTable*> g_route[kNumSignals + 1];

// Serializes every route-update + native sigaction pair across all tables.
// The trampoline itself only loads g_route (never takes the lock), so this
// stays async-signal-safe; without it, one tenant's Reset can interleave
// with another tenant's InstallNativeTrampoline and revert the freshly
// installed handler to SIG_DFL.
std::mutex g_native_mu;

// How many live tables currently hold SIG_IGN for each signal (guarded by
// g_native_mu). Native dispositions are host-process-global, so a recycled
// tenant's SIG_IGN may only be reverted to SIG_DFL once no other tenant
// still depends on ignoring that signal (think two tenants both ignoring
// SIGPIPE: the first slot reset must not re-arm the default kill).
int g_ign_count[kNumSignals + 1] = {};

void NativeTrampoline(int signo) {
  if (signo < 1 || signo > kNumSignals) {
    return;
  }
  SigTable* table = g_route[signo].load(std::memory_order_acquire);
  if (table != nullptr) {
    table->RaiseVirtual(signo);
  }
}

}  // namespace

SigTable::SigTable() = default;

SigTable::~SigTable() {
  // Unroute any signals still pointing at this table and drop this table's
  // SIG_IGN holds (without reverting dispositions: leaving a signal ignored
  // is the safe direction for any tenant still running).
  std::lock_guard<std::mutex> native_lock(g_native_mu);
  for (int s = 1; s <= kNumSignals; ++s) {
    SigTable* self = this;
    g_route[s].compare_exchange_strong(self, nullptr, std::memory_order_acq_rel);
    if (entries_[s].handler == kSigIgn && g_ign_count[s] > 0) {
      --g_ign_count[s];
    }
  }
}

int SigTable::SetAction(int signo, const SigEntry& entry, SigEntry* old) {
  if (signo < 1 || signo > kNumSignals || signo == SIGKILL || signo == SIGSTOP) {
    return -EINVAL;
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (old != nullptr) {
    *old = entries_[signo];
  }
  int rc = 0;
  const uint32_t prev_handler = entries_[signo].handler;
  {
    std::lock_guard<std::mutex> native_lock(g_native_mu);
    if (entry.handler == kSigDfl || entry.handler == kSigIgn) {
      rc = RestoreNativeDisposition(signo, entry.handler);
      SigTable* self = this;
      g_route[signo].compare_exchange_strong(self, nullptr,
                                             std::memory_order_acq_rel);
    } else {
      rc = InstallNativeTrampoline(signo, this);
    }
    if (rc == 0) {
      if (entry.handler == kSigIgn && prev_handler != kSigIgn) {
        ++g_ign_count[signo];
      } else if (entry.handler != kSigIgn && prev_handler == kSigIgn &&
                 g_ign_count[signo] > 0) {
        --g_ign_count[signo];
      }
    }
  }
  if (rc == 0) {
    entries_[signo] = entry;
    entries_[signo].registered = entry.handler != kSigDfl && entry.handler != kSigIgn;
  }
  return rc;
}

SigEntry SigTable::GetAction(int signo) {
  std::lock_guard<std::mutex> lock(mu_);
  if (signo < 1 || signo > kNumSignals) {
    return SigEntry{};
  }
  return entries_[signo];
}

void SigTable::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (int s = 1; s <= kNumSignals; ++s) {
    SigEntry& e = entries_[s];
    // Route check and native sigaction must be one atomic step with respect
    // to other tables' SetAction, or a concurrent tenant's freshly installed
    // trampoline could be reverted to SIG_DFL underneath it — turning that
    // tenant's next signal into whole-host process death.
    std::lock_guard<std::mutex> native_lock(g_native_mu);
    if (e.registered) {
      // Only touch the native disposition while this table still owns the
      // route: a concurrently running tenant may have re-registered the
      // signal for its own table.
      SigTable* self = this;
      if (g_route[s].compare_exchange_strong(self, nullptr,
                                             std::memory_order_acq_rel)) {
        RestoreNativeDisposition(s, kSigDfl);
      }
    } else if (e.handler == kSigIgn) {
      // SIG_IGN was applied natively on this tenant's behalf (SetAction
      // clears `registered` for it); undo it so the next tenant in the
      // recycled slot starts from default dispositions — but only once no
      // other live tenant still ignores the signal, and never while a
      // tenant has routed it to its own trampoline.
      if (g_ign_count[s] > 0) {
        --g_ign_count[s];
      }
      if (g_ign_count[s] == 0 &&
          g_route[s].load(std::memory_order_acquire) == nullptr) {
        RestoreNativeDisposition(s, kSigDfl);
      }
    }
    e = SigEntry{};
  }
  pending_.store(0, std::memory_order_release);
  sigmask_.store(0, std::memory_order_release);
  delivered_.store(0, std::memory_order_relaxed);
}

uint64_t SigTable::TakePending(uint64_t masked) {
  uint64_t current = pending_.load(std::memory_order_acquire);
  while (true) {
    uint64_t deliverable = current & ~masked;
    if (deliverable == 0) {
      return 0;
    }
    uint64_t rest = current & ~deliverable;
    if (pending_.compare_exchange_weak(current, rest, std::memory_order_acq_rel)) {
      return deliverable;
    }
  }
}

int InstallNativeTrampoline(int signo, SigTable* table) {
  g_route[signo].store(table, std::memory_order_release);
  struct sigaction sa;
  memset(&sa, 0, sizeof(sa));
  sa.sa_handler = &NativeTrampoline;
  sigemptyset(&sa.sa_mask);
  // SA_RESTART keeps passthrough syscalls from spuriously failing; delivery
  // latency is bounded by the safepoint polling interval anyway.
  sa.sa_flags = SA_RESTART;
  if (sigaction(signo, &sa, nullptr) != 0) {
    return -errno;
  }
  return 0;
}

int RestoreNativeDisposition(int signo, uint32_t disposition) {
  struct sigaction sa;
  memset(&sa, 0, sizeof(sa));
  sa.sa_handler = disposition == kSigIgn ? SIG_IGN : SIG_DFL;
  sigemptyset(&sa.sa_mask);
  if (sigaction(signo, &sa, nullptr) != 0) {
    return -errno;
  }
  return 0;
}

}  // namespace wali
