#include "src/wali/sigtable.h"

#include <errno.h>
#include <signal.h>
#include <string.h>

namespace wali {

namespace {

// Global routing table for the native trampoline (async-signal-safe reads).
std::atomic<SigTable*> g_route[kNumSignals + 1];

void NativeTrampoline(int signo) {
  if (signo < 1 || signo > kNumSignals) {
    return;
  }
  SigTable* table = g_route[signo].load(std::memory_order_acquire);
  if (table != nullptr) {
    table->RaiseVirtual(signo);
  }
}

}  // namespace

SigTable::SigTable() = default;

SigTable::~SigTable() {
  // Unroute any signals still pointing at this table.
  for (int s = 1; s <= kNumSignals; ++s) {
    SigTable* self = this;
    g_route[s].compare_exchange_strong(self, nullptr, std::memory_order_acq_rel);
  }
}

int SigTable::SetAction(int signo, const SigEntry& entry, SigEntry* old) {
  if (signo < 1 || signo > kNumSignals || signo == SIGKILL || signo == SIGSTOP) {
    return -EINVAL;
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (old != nullptr) {
    *old = entries_[signo];
  }
  int rc = 0;
  if (entry.handler == kSigDfl || entry.handler == kSigIgn) {
    rc = RestoreNativeDisposition(signo, entry.handler);
    SigTable* self = this;
    g_route[signo].compare_exchange_strong(self, nullptr, std::memory_order_acq_rel);
  } else {
    rc = InstallNativeTrampoline(signo, this);
  }
  if (rc == 0) {
    entries_[signo] = entry;
    entries_[signo].registered = entry.handler != kSigDfl && entry.handler != kSigIgn;
  }
  return rc;
}

SigEntry SigTable::GetAction(int signo) {
  std::lock_guard<std::mutex> lock(mu_);
  if (signo < 1 || signo > kNumSignals) {
    return SigEntry{};
  }
  return entries_[signo];
}

uint64_t SigTable::TakePending(uint64_t masked) {
  uint64_t current = pending_.load(std::memory_order_acquire);
  while (true) {
    uint64_t deliverable = current & ~masked;
    if (deliverable == 0) {
      return 0;
    }
    uint64_t rest = current & ~deliverable;
    if (pending_.compare_exchange_weak(current, rest, std::memory_order_acq_rel)) {
      return deliverable;
    }
  }
}

int InstallNativeTrampoline(int signo, SigTable* table) {
  g_route[signo].store(table, std::memory_order_release);
  struct sigaction sa;
  memset(&sa, 0, sizeof(sa));
  sa.sa_handler = &NativeTrampoline;
  sigemptyset(&sa.sa_mask);
  // SA_RESTART keeps passthrough syscalls from spuriously failing; delivery
  // latency is bounded by the safepoint polling interval anyway.
  sa.sa_flags = SA_RESTART;
  if (sigaction(signo, &sa, nullptr) != 0) {
    return -errno;
  }
  return 0;
}

int RestoreNativeDisposition(int signo, uint32_t disposition) {
  struct sigaction sa;
  memset(&sa, 0, sizeof(sa));
  sa.sa_handler = disposition == kSigIgn ? SIG_IGN : SIG_DFL;
  sigemptyset(&sa.sa_mask);
  if (sigaction(signo, &sa, nullptr) != 0) {
    return -errno;
  }
  return 0;
}

}  // namespace wali
