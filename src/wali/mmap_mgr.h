// WALI memory-mapping manager (paper §3.2 "Memory Management").
//
// Carves page-aligned ranges out of the top of a module's linear memory to
// back guest mmap/munmap/mremap. All mappings live inside the Wasm sandbox:
// file mappings use MAP_FIXED inside the reserved linear-memory region
// (zero-copy), anonymous mappings are just committed wasm pages. A simple
// ordered free-list tracks the pool; the paper's minimal implementation uses
// a single bump pointer — we keep a free list so unmapped ranges can be
// reused (listed as the paper's "more elaborate allocator" extension).
#ifndef SRC_WALI_MMAP_MGR_H_
#define SRC_WALI_MMAP_MGR_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <utility>
#include <vector>

#include "src/wasm/memory.h"

namespace wali {

inline constexpr uint64_t kMmapPageSize = 4096;

class MmapManager {
 public:
  // Lazily initialized from the memory's current size at first use.
  void Bind(wasm::Memory* memory) { memory_ = memory; }

  // Allocates `len` bytes (page-rounded). hint_addr != 0 with `fixed` asks
  // for a specific in-sandbox address. Returns wasm address or 0 on failure.
  // `virgin` (optional) reports whether the range has never been handed out
  // before (freshly committed pages are already zero; callers skip zeroing).
  uint64_t Allocate(uint64_t len, uint64_t hint_addr, bool fixed,
                    bool* virgin = nullptr);

  // Releases [addr, addr+len). Returns false if the range was not mapped by
  // this manager (kernel-style: munmap of unmapped ranges still succeeds, so
  // callers may ignore the result; it exists for tests).
  bool Release(uint64_t addr, uint64_t len);

  // Grows/moves an existing allocation; returns new address or 0.
  uint64_t Reallocate(uint64_t old_addr, uint64_t old_len, uint64_t new_len,
                      bool may_move);

  bool IsMapped(uint64_t addr, uint64_t len);

  uint64_t pool_base();       // lazy-init
  uint64_t bytes_in_use();    // mapped bytes (tests/metrics)

  // Forgets all mappings and the program break, returning to the
  // never-initialized state; the pool geometry is re-derived lazily from the
  // bound memory's (post-reset) size at next use. Used when a pooled process
  // slot is recycled for a fresh guest.
  void Reset();

  // Program-break emulation for SYS_brk: a dedicated region carved from the
  // pool on first use.
  uint64_t Brk(uint64_t new_break);

  // Snapshot support (src/wali/process_snapshot.cc): the pool geometry and
  // the live mappings are guest-visible process state — a restored process
  // must hand out the same addresses the original would have, and must not
  // re-derive the pool base from the (already grown) restored memory size.
  struct State {
    bool initialized = false;
    uint64_t base = 0;
    uint64_t limit = 0;
    uint64_t virgin_base = 0;
    uint64_t brk_base = 0;
    uint64_t brk_cur = 0;
    uint64_t brk_limit = 0;
    std::vector<std::pair<uint64_t, uint64_t>> used;  // start -> length
  };
  State ExportState();
  void ImportState(const State& s);

 private:
  void InitLocked();
  uint64_t AllocateLocked(uint64_t len, uint64_t hint_addr, bool fixed,
                          bool* virgin = nullptr);
  bool ReleaseLocked(uint64_t addr, uint64_t len);

  wasm::Memory* memory_ = nullptr;
  std::mutex mu_;
  bool initialized_ = false;
  uint64_t base_ = 0;   // pool start (wasm address)
  uint64_t limit_ = 0;  // pool end (reservation top)
  // Allocated ranges: start -> length. Gaps are free.
  std::map<uint64_t, uint64_t> used_;
  // Highest address ever handed out; ranges above it are untouched zeros.
  uint64_t virgin_base_ = 0;

  uint64_t brk_base_ = 0;
  uint64_t brk_cur_ = 0;
  uint64_t brk_limit_ = 0;
};

}  // namespace wali

#endif  // SRC_WALI_MMAP_MGR_H_
