// Signal syscalls (paper §3.3). rt_sigaction maintains the virtual sigtable;
// masks are 64-bit words matching the kernel sigset layout on every ISA, so
// mask-based calls are zero-copy passthrough; sigreturn traps (§3.6).
#include <errno.h>
#include <signal.h>
#include <sys/syscall.h>

#include "src/abi/layout.h"
#include "src/wali/runtime.h"

namespace wali {

namespace {

int64_t SysRtSigaction(WaliCtx& c, const int64_t* a) {
  int signo = static_cast<int>(a[0]);
  SigEntry old;
  if (a[1] != 0) {
    const auto* act = c.TypedPtr<wabi::WaliKSigaction>(a[1]);
    if (act == nullptr) return -EFAULT;
    SigEntry entry;
    entry.handler = act->handler;
    entry.flags = act->flags;
    entry.mask = act->mask;
    int rc = c.proc.sigtable.SetAction(signo, entry, &old);
    if (rc != 0) return rc;
  } else {
    if (signo < 1 || signo > kNumSignals) return -EINVAL;
    old = c.proc.sigtable.GetAction(signo);
  }
  if (a[2] != 0) {
    auto* oldact = c.TypedPtr<wabi::WaliKSigaction>(a[2]);
    if (oldact == nullptr) return -EFAULT;
    oldact->handler = old.handler;
    oldact->flags = old.flags;
    oldact->mask = old.mask;
  }
  return 0;
}

int64_t SysRtSigprocmask(WaliCtx& c, const int64_t* a) {
  int how = static_cast<int>(a[0]);
  uint64_t old_virtual = c.proc.sigtable.virtual_mask();
  const uint64_t* set = nullptr;
  if (a[1] != 0) {
    set = c.TypedPtr<const uint64_t>(a[1]);
    if (set == nullptr) return -EFAULT;
  }
  if (a[2] != 0) {
    auto* old_out = c.TypedPtr<uint64_t>(a[2]);
    if (old_out == nullptr) return -EFAULT;
    *old_out = old_virtual;
  }
  if (set == nullptr) {
    return 0;
  }
  uint64_t next;
  switch (how) {
    case SIG_BLOCK: next = old_virtual | *set; break;
    case SIG_UNBLOCK: next = old_virtual & ~*set; break;
    case SIG_SETMASK: next = *set; break;
    default: return -EINVAL;
  }
  c.proc.sigtable.set_virtual_mask(next);
  // Native passthrough keeps kernel-side blocking consistent for directed
  // signals; the virtual mask gates safepoint delivery. A safepoint runs
  // right after this syscall returns, handling anything just unblocked
  // before the module re-enters a critical section (paper §3.3 delivery
  // guarantee).
  return c.Raw(SYS_rt_sigprocmask, how, reinterpret_cast<long>(set), 0, 8);
}

int64_t SysRtSigpending(WaliCtx& c, const int64_t* a) {
  auto* out = c.TypedPtr<uint64_t>(a[0]);
  if (out == nullptr) return -EFAULT;
  uint64_t native = 0;
  c.Raw(SYS_rt_sigpending, reinterpret_cast<long>(&native), 8);
  // Virtual pending bits merge with native ones.
  uint64_t virt = c.proc.sigtable.TakePending(0);
  if (virt != 0) {
    // Peeked, not consumed: put them back.
    for (int s = 1; s <= kNumSignals; ++s) {
      if ((virt & (1ULL << (s - 1))) != 0) c.proc.sigtable.RaiseVirtual(s);
    }
  }
  *out = native | virt;
  return 0;
}

int64_t SysRtSigsuspend(WaliCtx& c, const int64_t* a) {
  const void* mask = c.Ptr(a[0], 8);
  if (mask == nullptr) return -EFAULT;
  return c.Raw(SYS_rt_sigsuspend, reinterpret_cast<long>(mask), 8);
}

int64_t SysRtSigtimedwait(WaliCtx& c, const int64_t* a) {
  const void* set = c.Ptr(a[0], 8);
  if (set == nullptr) return -EFAULT;
  long info_ptr = 0, ts_ptr = 0;
  if (a[1] != 0) {
    void* p = c.Ptr(a[1], 128);  // siginfo_t
    if (p == nullptr) return -EFAULT;
    info_ptr = reinterpret_cast<long>(p);
  }
  if (a[2] != 0) {
    void* p = c.Ptr(a[2], 16);
    if (p == nullptr) return -EFAULT;
    ts_ptr = reinterpret_cast<long>(p);
  }
  return c.Raw(SYS_rt_sigtimedwait, reinterpret_cast<long>(set), info_ptr, ts_ptr, 8);
}

int64_t SysRtSigreturn(WaliCtx& c, const int64_t* a) {
  // §3.6 "Signal Trampoline": handler execution is fully engine-managed, so
  // a direct sigreturn is a classic SROP gadget — trap instead.
  c.exec.SetTrap(wasm::TrapKind::kHostError,
                 "sigreturn is prohibited inside WALI modules");
  return -ENOSYS;
}

int64_t SysKill(WaliCtx& c, const int64_t* a) { return c.Raw(SYS_kill, a[0], a[1]); }
int64_t SysTkill(WaliCtx& c, const int64_t* a) { return c.Raw(SYS_tkill, a[0], a[1]); }
int64_t SysTgkill(WaliCtx& c, const int64_t* a) {
  return c.Raw(SYS_tgkill, a[0], a[1], a[2]);
}

int64_t SysPause(WaliCtx& c, const int64_t* a) {
#ifdef SYS_pause
  return c.Raw(SYS_pause);
#else
  return c.Raw(SYS_ppoll, 0, 0, 0, 0);
#endif
}

int64_t SysSigaltstack(WaliCtx& c, const int64_t* a) {
  // The Wasm value/call stack is non-addressable; alternate native stacks
  // are meaningless inside the sandbox.
  return -ENOSYS;
}

}  // namespace

void RegisterSignalSyscalls(std::vector<SyscallDef>& defs) {
  defs.insert(defs.end(), {
      {"rt_sigaction", 4, SysRtSigaction, true, 40},
      {"rt_sigprocmask", 4, SysRtSigprocmask, true, 5},
      {"rt_sigpending", 2, SysRtSigpending, true, 12},
      {"rt_sigsuspend", 2, SysRtSigsuspend, false, 4},
      {"rt_sigtimedwait", 4, SysRtSigtimedwait, false, 12},
      {"rt_sigreturn", 0, SysRtSigreturn, false, 2},
      {"kill", 2, SysKill, false, 1},
      {"tkill", 2, SysTkill, false, 1},
      {"tgkill", 3, SysTgkill, false, 1},
      {"pause", 0, SysPause, false, 1},
      {"sigaltstack", 2, SysSigaltstack, false, 1},
  });
}

}  // namespace wali
