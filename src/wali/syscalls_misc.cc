// Polling, futex, epoll, eventfd, randomness. pollfd/epoll_event/fd_set all
// have ISA-independent layouts — zero-copy passthrough after translation.
#include <errno.h>
#include <limits.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/select.h>
#include <sys/syscall.h>

#include <cstring>
#include <utility>
#include <vector>

#include "src/abi/layout.h"
#include "src/wali/runtime.h"

namespace wali {

namespace {

// Offloadable poll/ppoll sets are bounded: the completion loops register
// one waiter per member, so an attacker-sized nfds must not translate into
// unbounded kernel registrations. Larger sets take the blocking path.
constexpr uint64_t kMaxOffloadPollFds = 64;

int64_t SysFutex(WaliCtx& c, const int64_t* a) {
  void* uaddr = c.Ptr(a[0], 4);
  if (uaddr == nullptr) return -EFAULT;
  long timeout_ptr = 0;
  int op = static_cast<int>(a[1]) & 0x7F;  // mask FUTEX_PRIVATE_FLAG
  // Timer-class FUTEX_WAIT offload: a plain WAIT with a timeout in a
  // process that has no other threads has no possible waker, so the wait
  // can only end when the timeout elapses — a pure timer park. The value
  // check happens inline (no concurrent writer exists to race with):
  // mismatch answers -EAGAIN without parking, and the retry reports
  // -ETIMEDOUT exactly as the kernel would. Untimed or multi-threaded
  // waits keep the blocking path, where a real waker can reach them.
  // The gate tolerates only FUTEX_PRIVATE_FLAG: FUTEX_CLOCK_REALTIME (or
  // any other modifier) changes what the timeout means — the offload would
  // silently park on a relative monotonic sleep — so those stay on the
  // blocking path, where the kernel also reports its true errno for
  // combinations it rejects.
  if ((a[1] & ~0x80L) == 0 /*FUTEX_WAIT, no modifier bits*/ &&
      c.CanOffload() && a[3] != 0 &&
      c.proc.thread_count() == 0) {
    void* tsp = c.Ptr(a[3], 16);
    if (tsp == nullptr) return -EFAULT;
    wabi::WaliTimespec ts;
    std::memcpy(&ts, tsp, sizeof(ts));
    int64_t dur = 0;
    if (!SleepDurationNanos(ts, &dur)) return -EINVAL;
    uint32_t cur;
    std::memcpy(&cur, uaddr, 4);
    if (cur != static_cast<uint32_t>(a[2])) return -EAGAIN;
    c.Park(IoOp::Sleep(dur), []() -> int64_t { return -ETIMEDOUT; });
    return 0;
  }
  // FUTEX_WAIT-class ops pass a timespec; WAKE-class pass a count in arg4.
  bool has_timeout = (op == 0 /*WAIT*/ || op == 9 /*WAIT_BITSET*/);
  if (has_timeout && a[3] != 0) {
    void* ts = c.Ptr(a[3], 16);
    if (ts == nullptr) return -EFAULT;
    timeout_ptr = reinterpret_cast<long>(ts);
  } else {
    timeout_ptr = a[3];
  }
  long uaddr2 = 0;
  if (a[4] != 0) {
    void* p = c.Ptr(a[4], 4);
    if (p == nullptr) return -EFAULT;
    uaddr2 = reinterpret_cast<long>(p);
  }
  return c.Raw(SYS_futex, reinterpret_cast<long>(uaddr), a[1], a[2], timeout_ptr,
               uaddr2, a[5]);
}

// Re-issues a parked poll with timeout 0 at resume: readiness completions
// fill in revents, timeout completions correctly report 0 ready fds.
int64_t PollRetryNow(WaliProcess& proc, uint64_t fds_addr, uint64_t nfds) {
  if (!proc.memory->InBounds(fds_addr, nfds * 8)) return -EFAULT;
  void* fds = proc.memory->At(fds_addr);
#ifdef SYS_poll
  return RetryRaw(proc, SYS_poll, reinterpret_cast<long>(fds),
                  static_cast<long>(nfds), 0);
#else
  struct timespec zero = {0, 0};
  return RetryRaw(proc, SYS_ppoll, reinterpret_cast<long>(fds),
                  static_cast<long>(nfds), reinterpret_cast<long>(&zero), 0, 8);
#endif
}

// Parks a poll/ppoll on its full interest set: one kPollSet member per
// guest pollfd entry, events passed through verbatim (the union of
// requested interests — a POLLIN|POLLOUT waiter wakes on either class, and
// error/hup/nval always count). Negative fds ride along as placeholders
// and are skipped by every backend, so an all-negative set parks as a pure
// timer, matching poll(2). The retry re-polls with timeout 0 to
// materialize revents into guest memory.
void ParkPollSet(WaliCtx& c, const void* fds, uint64_t fds_addr,
                 uint64_t nfds, int64_t timeout_nanos) {
  std::vector<IoOp::PollFd> set;
  set.reserve(nfds);
  for (uint64_t i = 0; i < nfds; ++i) {
    struct pollfd pfd;
    std::memcpy(&pfd, static_cast<const char*>(fds) + i * 8, sizeof(pfd));
    set.push_back(IoOp::PollFd{pfd.fd, pfd.events});
  }
  WaliProcess* proc = &c.proc;
  c.Park(IoOp::PollSet(std::move(set), timeout_nanos),
         [proc, fds_addr, nfds]() -> int64_t {
           return PollRetryNow(*proc, fds_addr, nfds);
         });
}

int64_t SysPoll(WaliCtx& c, const int64_t* a) {
  uint64_t nfds = static_cast<uint64_t>(a[1]);
  void* fds = c.Ptr(a[0], nfds * 8);  // struct pollfd = 8 bytes everywhere
  if (fds == nullptr && nfds != 0) return -EFAULT;
  // Blocking polls park on the whole interest set — multi-fd, dual-interest
  // (POLLIN|POLLOUT), the lot — bounded by the poll's own timeout.
  // Zero-timeout polls are non-blocking by contract and go straight to the
  // kernel; oversized sets take the blocking path (see kMaxOffloadPollFds).
  if (c.CanOffload() && a[2] != 0 && nfds >= 1 && nfds <= kMaxOffloadPollFds) {
    // poll(2)'s timeout is an int of milliseconds; clamp to that range
    // before converting so a guest-supplied 64-bit value can't signed-
    // overflow the nanosecond product (>INT_MAX ms is ~25 days — treat it
    // as infinite rather than wrap negative and park with no timeout).
    int64_t timeout_nanos =
        (a[2] < 0 || a[2] > INT_MAX) ? -1 : a[2] * 1000000;
    ParkPollSet(c, fds, static_cast<uint64_t>(a[0]), nfds, timeout_nanos);
    return 0;
  }
#ifdef SYS_poll
  return c.Raw(SYS_poll, reinterpret_cast<long>(fds), nfds, a[2]);
#else
  struct timespec ts;
  struct timespec* tsp = nullptr;
  if (a[2] >= 0) {
    ts.tv_sec = a[2] / 1000;
    ts.tv_nsec = (a[2] % 1000) * 1000000;
    tsp = &ts;
  }
  return c.Raw(SYS_ppoll, reinterpret_cast<long>(fds), nfds,
               reinterpret_cast<long>(tsp), 0, 8);
#endif
}

int64_t SysPpoll(WaliCtx& c, const int64_t* a) {
  uint64_t nfds = static_cast<uint64_t>(a[1]);
  void* fds = c.Ptr(a[0], nfds * 8);
  if (fds == nullptr && nfds != 0) return -EFAULT;
  long ts_ptr = 0, mask_ptr = 0;
  if (a[2] != 0) {
    void* ts = c.Ptr(a[2], 16);
    if (ts == nullptr) return -EFAULT;
    ts_ptr = reinterpret_cast<long>(ts);
  }
  if (a[3] != 0) {
    void* mask = c.Ptr(a[3], 8);
    if (mask == nullptr) return -EFAULT;
    mask_ptr = reinterpret_cast<long>(mask);
  }
  // ppoll is what musl-linked guests actually call for poll(3), so it
  // parks through the same path as SysPoll. A non-null sigmask needs the
  // atomic mask-swap ppoll exists for, which a parked completion loop
  // cannot honor — refuse to park and let the kernel do it. ppoll never
  // writes the remaining time back, so the timeout-0 poll retry is
  // semantically equivalent at resume. A null timespec blocks forever
  // (timeout -1); a zero one is non-blocking and answers inline.
  if (c.CanOffload() && a[3] == 0 && nfds >= 1 && nfds <= kMaxOffloadPollFds) {
    int64_t timeout_nanos = -1;
    if (ts_ptr != 0) {
      wabi::WaliTimespec ts;
      std::memcpy(&ts, reinterpret_cast<const void*>(ts_ptr), sizeof(ts));
      if (!SleepDurationNanos(ts, &timeout_nanos)) return -EINVAL;
    }
    if (timeout_nanos != 0) {
      ParkPollSet(c, fds, static_cast<uint64_t>(a[0]), nfds, timeout_nanos);
      return 0;
    }
  }
  return c.Raw(SYS_ppoll, reinterpret_cast<long>(fds), nfds, ts_ptr, mask_ptr, 8);
}

int64_t SysSelect(WaliCtx& c, const int64_t* a) {
  long sets[3] = {0, 0, 0};
  for (int i = 0; i < 3; ++i) {
    if (a[1 + i] != 0) {
      void* p = c.Ptr(a[1 + i], sizeof(fd_set));
      if (p == nullptr) return -EFAULT;
      sets[i] = reinterpret_cast<long>(p);
    }
  }
  long tv_ptr = 0;
  if (a[4] != 0) {
    void* tv = c.Ptr(a[4], 16);
    if (tv == nullptr) return -EFAULT;
    tv_ptr = reinterpret_cast<long>(tv);
  }
#ifdef SYS_select
  return c.Raw(SYS_select, a[0], sets[0], sets[1], sets[2], tv_ptr);
#else
  return -ENOSYS;
#endif
}

int64_t SysPselect6(WaliCtx& c, const int64_t* a) {
  long sets[3] = {0, 0, 0};
  for (int i = 0; i < 3; ++i) {
    if (a[1 + i] != 0) {
      void* p = c.Ptr(a[1 + i], sizeof(fd_set));
      if (p == nullptr) return -EFAULT;
      sets[i] = reinterpret_cast<long>(p);
    }
  }
  long ts_ptr = 0;
  if (a[4] != 0) {
    void* ts = c.Ptr(a[4], 16);
    if (ts == nullptr) return -EFAULT;
    ts_ptr = reinterpret_cast<long>(ts);
  }
  // The 6th arg (sigmask descriptor) is not translated: passed as null.
  return c.Raw(SYS_pselect6, a[0], sets[0], sets[1], sets[2], ts_ptr, 0);
}

int64_t SysEpollCreate1(WaliCtx& c, const int64_t* a) {
  return c.Raw(SYS_epoll_create1, a[0]);
}

int64_t SysEpollCtl(WaliCtx& c, const int64_t* a) {
  long ev_ptr = 0;
  if (a[3] != 0) {
    void* ev = c.Ptr(a[3], 12);  // struct epoll_event is packed 12 bytes
    if (ev == nullptr) return -EFAULT;
    ev_ptr = reinterpret_cast<long>(ev);
  }
  return c.Raw(SYS_epoll_ctl, a[0], a[1], a[2], ev_ptr);
}

int64_t SysEpollWait(WaliCtx& c, const int64_t* a) {
  uint64_t maxevents = static_cast<uint64_t>(a[2]);
  void* events = c.Ptr(a[1], maxevents * 12);
  if (events == nullptr && maxevents != 0) return -EFAULT;
#ifdef SYS_epoll_wait
  return c.Raw(SYS_epoll_wait, a[0], reinterpret_cast<long>(events), a[2], a[3]);
#else
  return c.Raw(SYS_epoll_pwait, a[0], reinterpret_cast<long>(events), a[2], a[3], 0, 8);
#endif
}

int64_t SysEpollPwait(WaliCtx& c, const int64_t* a) {
  uint64_t maxevents = static_cast<uint64_t>(a[2]);
  void* events = c.Ptr(a[1], maxevents * 12);
  if (events == nullptr && maxevents != 0) return -EFAULT;
  long mask_ptr = 0;
  if (a[4] != 0) {
    void* mask = c.Ptr(a[4], 8);
    if (mask == nullptr) return -EFAULT;
    mask_ptr = reinterpret_cast<long>(mask);
  }
  return c.Raw(SYS_epoll_pwait, a[0], reinterpret_cast<long>(events), a[2], a[3],
               mask_ptr, 8);
}

int64_t SysEventfd2(WaliCtx& c, const int64_t* a) {
  return c.Raw(SYS_eventfd2, a[0], a[1]);
}

int64_t SysGetrandom(WaliCtx& c, const int64_t* a) {
  void* buf = c.Ptr(a[0], a[1]);
  if (buf == nullptr && a[1] != 0) return -EFAULT;
  return c.Raw(SYS_getrandom, reinterpret_cast<long>(buf), a[1], a[2]);
}

int64_t SysMembarrier(WaliCtx& c, const int64_t* a) {
  return c.Raw(SYS_membarrier, a[0], a[1], 0);
}

// Modeled as unsupported: niche interfaces that passthrough engines expose
// via the auto-generation path later (paper §6 "Expansion of Syscalls").
int64_t SysEnosys(WaliCtx& c, const int64_t* a) { return -ENOSYS; }

}  // namespace

void RegisterMiscSyscalls(std::vector<SyscallDef>& defs) {
  defs.insert(defs.end(), {
      {"futex", 6, SysFutex, false, 6},
      {"poll", 3, SysPoll, false, 12},
      {"ppoll", 5, SysPpoll, false, 12},
      {"select", 5, SysSelect, false, 14},
      {"pselect6", 6, SysPselect6, false, 14},
      {"epoll_create1", 1, SysEpollCreate1, false, 3},
      {"epoll_ctl", 4, SysEpollCtl, false, 6},
      {"epoll_wait", 4, SysEpollWait, false, 6},
      {"epoll_pwait", 5, SysEpollPwait, false, 8},
      {"eventfd2", 2, SysEventfd2, false, 3},
      {"getrandom", 3, SysGetrandom, false, 4},
      {"membarrier", 2, SysMembarrier, false, 3},
      {"rseq", 4, SysEnosys, false, 1},
      {"io_uring_setup", 2, SysEnosys, false, 1},
      {"io_uring_enter", 6, SysEnosys, false, 1},
  });
}

}  // namespace wali
