// Polling, futex, epoll, eventfd, randomness. pollfd/epoll_event/fd_set all
// have ISA-independent layouts — zero-copy passthrough after translation.
#include <errno.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/select.h>
#include <sys/syscall.h>

#include <cstring>

#include "src/wali/runtime.h"

namespace wali {

namespace {

int64_t SysFutex(WaliCtx& c, const int64_t* a) {
  void* uaddr = c.Ptr(a[0], 4);
  if (uaddr == nullptr) return -EFAULT;
  long timeout_ptr = 0;
  int op = static_cast<int>(a[1]) & 0x7F;  // mask FUTEX_PRIVATE_FLAG
  // FUTEX_WAIT-class ops pass a timespec; WAKE-class pass a count in arg4.
  bool has_timeout = (op == 0 /*WAIT*/ || op == 9 /*WAIT_BITSET*/);
  if (has_timeout && a[3] != 0) {
    void* ts = c.Ptr(a[3], 16);
    if (ts == nullptr) return -EFAULT;
    timeout_ptr = reinterpret_cast<long>(ts);
  } else {
    timeout_ptr = a[3];
  }
  long uaddr2 = 0;
  if (a[4] != 0) {
    void* p = c.Ptr(a[4], 4);
    if (p == nullptr) return -EFAULT;
    uaddr2 = reinterpret_cast<long>(p);
  }
  return c.Raw(SYS_futex, reinterpret_cast<long>(uaddr), a[1], a[2], timeout_ptr,
               uaddr2, a[5]);
}

// Re-issues a parked poll with timeout 0 at resume: readiness completions
// fill in revents, timeout completions correctly report 0 ready fds.
int64_t PollRetryNow(WaliProcess& proc, uint64_t fds_addr, uint64_t nfds) {
  if (!proc.memory->InBounds(fds_addr, nfds * 8)) return -EFAULT;
  void* fds = proc.memory->At(fds_addr);
#ifdef SYS_poll
  return RetryRaw(proc, SYS_poll, reinterpret_cast<long>(fds),
                  static_cast<long>(nfds), 0);
#else
  struct timespec zero = {0, 0};
  return RetryRaw(proc, SYS_ppoll, reinterpret_cast<long>(fds),
                  static_cast<long>(nfds), reinterpret_cast<long>(&zero), 0, 8);
#endif
}

int64_t SysPoll(WaliCtx& c, const int64_t* a) {
  uint64_t nfds = static_cast<uint64_t>(a[1]);
  void* fds = c.Ptr(a[0], nfds * 8);  // struct pollfd = 8 bytes everywhere
  if (fds == nullptr && nfds != 0) return -EFAULT;
  // Single-fd polls for plain readability/writability — by far the common
  // shape in event-loop guests — are offloadable: the completion loop waits
  // on the one fd (bounded by the poll's own timeout) and the retry polls
  // with timeout 0 to materialize revents. Zero-timeout polls are
  // non-blocking by contract and go straight to the kernel; multi-fd sets
  // would need multi-wait support in the IoOp vocabulary, so they take the
  // blocking path too.
  if (c.CanOffload() && nfds == 1 && a[2] != 0) {
    struct pollfd pfd;
    std::memcpy(&pfd, fds, sizeof(pfd));
    const bool wants_in = (pfd.events & POLLIN) != 0;
    const bool wants_out = (pfd.events & POLLOUT) != 0;
    if (wants_in != wants_out) {  // exactly one readiness class
      int64_t timeout_nanos = a[2] < 0 ? -1 : a[2] * 1000000;
      IoOp op = wants_in ? IoOp::Readable(pfd.fd, timeout_nanos)
                         : IoOp::Writable(pfd.fd, timeout_nanos);
      WaliProcess* proc = &c.proc;
      uint64_t fds_addr = static_cast<uint64_t>(a[0]);
      c.Park(op, [proc, fds_addr]() -> int64_t {
        return PollRetryNow(*proc, fds_addr, 1);
      });
      return 0;
    }
  }
#ifdef SYS_poll
  return c.Raw(SYS_poll, reinterpret_cast<long>(fds), nfds, a[2]);
#else
  struct timespec ts;
  struct timespec* tsp = nullptr;
  if (a[2] >= 0) {
    ts.tv_sec = a[2] / 1000;
    ts.tv_nsec = (a[2] % 1000) * 1000000;
    tsp = &ts;
  }
  return c.Raw(SYS_ppoll, reinterpret_cast<long>(fds), nfds,
               reinterpret_cast<long>(tsp), 0, 8);
#endif
}

int64_t SysPpoll(WaliCtx& c, const int64_t* a) {
  uint64_t nfds = static_cast<uint64_t>(a[1]);
  void* fds = c.Ptr(a[0], nfds * 8);
  if (fds == nullptr && nfds != 0) return -EFAULT;
  long ts_ptr = 0, mask_ptr = 0;
  if (a[2] != 0) {
    void* ts = c.Ptr(a[2], 16);
    if (ts == nullptr) return -EFAULT;
    ts_ptr = reinterpret_cast<long>(ts);
  }
  if (a[3] != 0) {
    void* mask = c.Ptr(a[3], 8);
    if (mask == nullptr) return -EFAULT;
    mask_ptr = reinterpret_cast<long>(mask);
  }
  return c.Raw(SYS_ppoll, reinterpret_cast<long>(fds), nfds, ts_ptr, mask_ptr, 8);
}

int64_t SysSelect(WaliCtx& c, const int64_t* a) {
  long sets[3] = {0, 0, 0};
  for (int i = 0; i < 3; ++i) {
    if (a[1 + i] != 0) {
      void* p = c.Ptr(a[1 + i], sizeof(fd_set));
      if (p == nullptr) return -EFAULT;
      sets[i] = reinterpret_cast<long>(p);
    }
  }
  long tv_ptr = 0;
  if (a[4] != 0) {
    void* tv = c.Ptr(a[4], 16);
    if (tv == nullptr) return -EFAULT;
    tv_ptr = reinterpret_cast<long>(tv);
  }
#ifdef SYS_select
  return c.Raw(SYS_select, a[0], sets[0], sets[1], sets[2], tv_ptr);
#else
  return -ENOSYS;
#endif
}

int64_t SysPselect6(WaliCtx& c, const int64_t* a) {
  long sets[3] = {0, 0, 0};
  for (int i = 0; i < 3; ++i) {
    if (a[1 + i] != 0) {
      void* p = c.Ptr(a[1 + i], sizeof(fd_set));
      if (p == nullptr) return -EFAULT;
      sets[i] = reinterpret_cast<long>(p);
    }
  }
  long ts_ptr = 0;
  if (a[4] != 0) {
    void* ts = c.Ptr(a[4], 16);
    if (ts == nullptr) return -EFAULT;
    ts_ptr = reinterpret_cast<long>(ts);
  }
  // The 6th arg (sigmask descriptor) is not translated: passed as null.
  return c.Raw(SYS_pselect6, a[0], sets[0], sets[1], sets[2], ts_ptr, 0);
}

int64_t SysEpollCreate1(WaliCtx& c, const int64_t* a) {
  return c.Raw(SYS_epoll_create1, a[0]);
}

int64_t SysEpollCtl(WaliCtx& c, const int64_t* a) {
  long ev_ptr = 0;
  if (a[3] != 0) {
    void* ev = c.Ptr(a[3], 12);  // struct epoll_event is packed 12 bytes
    if (ev == nullptr) return -EFAULT;
    ev_ptr = reinterpret_cast<long>(ev);
  }
  return c.Raw(SYS_epoll_ctl, a[0], a[1], a[2], ev_ptr);
}

int64_t SysEpollWait(WaliCtx& c, const int64_t* a) {
  uint64_t maxevents = static_cast<uint64_t>(a[2]);
  void* events = c.Ptr(a[1], maxevents * 12);
  if (events == nullptr && maxevents != 0) return -EFAULT;
#ifdef SYS_epoll_wait
  return c.Raw(SYS_epoll_wait, a[0], reinterpret_cast<long>(events), a[2], a[3]);
#else
  return c.Raw(SYS_epoll_pwait, a[0], reinterpret_cast<long>(events), a[2], a[3], 0, 8);
#endif
}

int64_t SysEpollPwait(WaliCtx& c, const int64_t* a) {
  uint64_t maxevents = static_cast<uint64_t>(a[2]);
  void* events = c.Ptr(a[1], maxevents * 12);
  if (events == nullptr && maxevents != 0) return -EFAULT;
  long mask_ptr = 0;
  if (a[4] != 0) {
    void* mask = c.Ptr(a[4], 8);
    if (mask == nullptr) return -EFAULT;
    mask_ptr = reinterpret_cast<long>(mask);
  }
  return c.Raw(SYS_epoll_pwait, a[0], reinterpret_cast<long>(events), a[2], a[3],
               mask_ptr, 8);
}

int64_t SysEventfd2(WaliCtx& c, const int64_t* a) {
  return c.Raw(SYS_eventfd2, a[0], a[1]);
}

int64_t SysGetrandom(WaliCtx& c, const int64_t* a) {
  void* buf = c.Ptr(a[0], a[1]);
  if (buf == nullptr && a[1] != 0) return -EFAULT;
  return c.Raw(SYS_getrandom, reinterpret_cast<long>(buf), a[1], a[2]);
}

int64_t SysMembarrier(WaliCtx& c, const int64_t* a) {
  return c.Raw(SYS_membarrier, a[0], a[1], 0);
}

// Modeled as unsupported: niche interfaces that passthrough engines expose
// via the auto-generation path later (paper §6 "Expansion of Syscalls").
int64_t SysEnosys(WaliCtx& c, const int64_t* a) { return -ENOSYS; }

}  // namespace

void RegisterMiscSyscalls(std::vector<SyscallDef>& defs) {
  defs.insert(defs.end(), {
      {"futex", 6, SysFutex, false, 6},
      {"poll", 3, SysPoll, false, 12},
      {"ppoll", 5, SysPpoll, false, 12},
      {"select", 5, SysSelect, false, 14},
      {"pselect6", 6, SysPselect6, false, 14},
      {"epoll_create1", 1, SysEpollCreate1, false, 3},
      {"epoll_ctl", 4, SysEpollCtl, false, 6},
      {"epoll_wait", 4, SysEpollWait, false, 6},
      {"epoll_pwait", 5, SysEpollPwait, false, 8},
      {"eventfd2", 2, SysEventfd2, false, 3},
      {"getrandom", 3, SysGetrandom, false, 4},
      {"membarrier", 2, SysMembarrier, false, 3},
      {"rseq", 4, SysEnosys, false, 1},
      {"io_uring_setup", 2, SysEnosys, false, 1},
      {"io_uring_enter", 6, SysEnosys, false, 1},
  });
}

}  // namespace wali
