// User-space syscall policy layer (paper §3.6 "Dynamic Policies", §6
// "Expansion and Interposition of Syscalls").
//
// WALI deliberately does not implement seccomp; instead, because syscalls
// are name-bound Wasm imports, policies interpose *above* the engine in
// plain user space: allow/deny/kill filters (seccomp-BPF-class), audit
// logging, and fault injection — the paper's "log, restrict, profile,
// fault-inject" libraries. A policy attaches to a WaliProcess and is
// consulted on every syscall before the handler runs.
#ifndef SRC_WALI_POLICY_H_
#define SRC_WALI_POLICY_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace wali {

class SyscallPolicy {
 public:
  enum class Action : uint8_t {
    kAllow = 0,  // run the syscall
    kDeny,       // refuse with a configurable errno (seccomp ERRNO)
    kKill,       // trap the process (seccomp KILL)
  };

  struct Rule {
    Action action = Action::kAllow;
    int deny_errno = 1;  // EPERM by default
    // Fault injection: every `fault_every`-th call fails with fault_errno
    // (0 = disabled). Applies only to allowed calls.
    uint32_t fault_every = 0;
    int fault_errno = 5;  // EIO
  };

  // Default action for syscalls without an explicit rule.
  void SetDefault(Action action, int deny_errno = 1);
  void SetRule(const std::string& syscall_name, const Rule& rule);
  void Allow(const std::string& name) { SetRule(name, Rule{}); }
  void Deny(const std::string& name, int err = 1) {
    SetRule(name, Rule{Action::kDeny, err, 0, 5});
  }
  void Kill(const std::string& name) {
    SetRule(name, Rule{Action::kKill, 1, 0, 5});
  }
  void InjectFault(const std::string& name, uint32_t every_n, int err) {
    SetRule(name, Rule{Action::kAllow, 1, every_n, err});
  }

  // Decision for one invocation (counts calls; applies fault cadence).
  struct Decision {
    Action action;
    int err;  // errno for kDeny / injected fault (as positive value)
    bool inject_fault;
  };
  Decision Evaluate(const std::string& syscall_name);

  // Audit log: per-syscall invocation and denial counters.
  uint64_t calls(const std::string& name) const;
  uint64_t denials(const std::string& name) const;
  std::vector<std::pair<std::string, uint64_t>> AuditLog() const;

 private:
  struct State {
    Rule rule;
    std::atomic<uint64_t> calls{0};
    std::atomic<uint64_t> denials{0};
  };

  mutable std::mutex mu_;
  Action default_action_ = Action::kAllow;
  int default_errno_ = 1;
  std::map<std::string, std::unique_ptr<State>> states_;
};

}  // namespace wali

#endif  // SRC_WALI_POLICY_H_
