#include "src/wali/process_snapshot.h"

#include "src/wasm/snapshot.h"

namespace wali {

namespace {

// WALI host-blob layout (carried opaquely inside the wasm snapshot; the
// outer header's version/checksum cover it, so no inner version field):
//   cont      start_instrs u64, entry_is_main u8
//   pending   armed u8, kind u8, fd u32, sleep_nanos u64, timeout_nanos u64,
//             scripted_result u64
//   fds       count u32, then count i32 host fds
//   signals   virtual_mask u64, entry count u32, per entry: signo u8,
//             handler u32, flags u32, mask u64, registered u8
//   trace     wali_nanos u64, kernel_nanos u64, nonzero-count u32,
//             then (syscall id u32, count u64) pairs
//   budgets   run_syscalls u64, syscall_budget u64, mem_budget_pages u64,
//             grow_budget_pages u64, clear_child_tid u64
//   mmap      initialized u8, base u64, limit u64, virgin_base u64,
//             brk_base u64, brk_cur u64, brk_limit u64,
//             used count u32, then (start u64, len u64) pairs

std::vector<uint8_t> EncodeHostBlob(WaliProcess& proc,
                                    const WaliRuntime::MainContinuation& cont) {
  wasm::SnapshotWriter w;
  w.U64(cont.start_instrs);
  w.U8(cont.entry_is_main ? 1 : 0);

  const PendingIo& pio = proc.pending_io;
  w.U8(pio.armed ? 1 : 0);
  w.U8(static_cast<uint8_t>(pio.op.kind));
  w.U32(static_cast<uint32_t>(pio.op.fd));
  w.U64(static_cast<uint64_t>(pio.op.sleep_nanos));
  w.U64(static_cast<uint64_t>(pio.op.timeout_nanos));
  w.U64(static_cast<uint64_t>(pio.op.scripted_result));

  std::vector<int> fds = proc.GuestFds();
  w.U32(static_cast<uint32_t>(fds.size()));
  for (int fd : fds) w.U32(static_cast<uint32_t>(fd));

  w.U64(proc.sigtable.virtual_mask());
  std::vector<std::pair<int, SigEntry>> sigs;
  for (int signo = 1; signo <= kNumSignals; ++signo) {
    SigEntry e = proc.sigtable.GetAction(signo);
    if (e.registered || e.handler != kSigDfl || e.flags != 0 || e.mask != 0) {
      sigs.emplace_back(signo, e);
    }
  }
  w.U32(static_cast<uint32_t>(sigs.size()));
  for (const auto& [signo, e] : sigs) {
    w.U8(static_cast<uint8_t>(signo));
    w.U32(e.handler);
    w.U32(e.flags);
    w.U64(e.mask);
    w.U8(e.registered ? 1 : 0);
  }

  // Raw handler time is exclusive+kernel; store both parts so restore can
  // rebuild the atomics exactly and finish-time reports stay exact.
  w.U64(static_cast<uint64_t>(proc.trace.wali_nanos()));
  w.U64(static_cast<uint64_t>(proc.trace.kernel_nanos()));
  std::vector<std::pair<uint32_t, uint64_t>> counts;
  for (uint32_t id = 0; id < kMaxTracedSyscalls; ++id) {
    uint64_t n = proc.trace.count(id);
    if (n > 0) counts.emplace_back(id, n);
  }
  w.U32(static_cast<uint32_t>(counts.size()));
  for (const auto& [id, n] : counts) {
    w.U32(id);
    w.U64(n);
  }

  w.U64(proc.run_syscalls.load(std::memory_order_acquire));
  w.U64(proc.syscall_budget.load(std::memory_order_acquire));
  w.U64(proc.mem_budget_pages.load(std::memory_order_acquire));
  w.U64(proc.memory != nullptr ? proc.memory->grow_budget_pages() : 0);
  w.U64(proc.clear_child_tid.load(std::memory_order_acquire));

  // mmap/brk pool: guest-visible addresses — a restored process must hand
  // out what the original would have, not re-derive the pool lazily from
  // the already-grown restored memory.
  MmapManager::State ms = proc.mmap.ExportState();
  w.U8(ms.initialized ? 1 : 0);
  w.U64(ms.base);
  w.U64(ms.limit);
  w.U64(ms.virgin_base);
  w.U64(ms.brk_base);
  w.U64(ms.brk_cur);
  w.U64(ms.brk_limit);
  w.U32(static_cast<uint32_t>(ms.used.size()));
  for (const auto& [start, len] : ms.used) {
    w.U64(start);
    w.U64(len);
  }
  return std::move(w.buf());
}

common::Status DecodeHostBlob(const std::vector<uint8_t>& blob, WaliProcess& proc,
                              WaliRuntime::MainContinuation& cont, IoOp* pending_op) {
  wasm::SnapshotReader r(blob.data(), blob.size());
  uint64_t start_instrs = 0;
  uint8_t entry_is_main = 0;
  RETURN_IF_ERROR(r.U64(&start_instrs));
  RETURN_IF_ERROR(r.U8(&entry_is_main));

  uint8_t armed = 0;
  uint8_t kind = 0;
  uint32_t fd = 0;
  uint64_t sleep_nanos = 0;
  uint64_t timeout_nanos = 0;
  uint64_t scripted_result = 0;
  RETURN_IF_ERROR(r.U8(&armed));
  RETURN_IF_ERROR(r.U8(&kind));
  RETURN_IF_ERROR(r.U32(&fd));
  RETURN_IF_ERROR(r.U64(&sleep_nanos));
  RETURN_IF_ERROR(r.U64(&timeout_nanos));
  RETURN_IF_ERROR(r.U64(&scripted_result));
  if (kind > static_cast<uint8_t>(IoOp::Kind::kScripted)) {
    return common::InvalidArgument("snapshot: bad pending io kind");
  }

  uint32_t fd_count = 0;
  RETURN_IF_ERROR(r.U32(&fd_count));
  if (fd_count > r.remaining() / 4) {
    return common::InvalidArgument("snapshot: fd count overruns input");
  }
  std::vector<int> fds(fd_count);
  for (int& f : fds) {
    uint32_t v = 0;
    RETURN_IF_ERROR(r.U32(&v));
    f = static_cast<int>(v);
  }

  uint64_t virtual_mask = 0;
  uint32_t sig_count = 0;
  RETURN_IF_ERROR(r.U64(&virtual_mask));
  RETURN_IF_ERROR(r.U32(&sig_count));
  if (sig_count > kNumSignals) {
    return common::InvalidArgument("snapshot: signal entry count out of range");
  }
  struct SigRec {
    int signo = 0;
    SigEntry entry;
  };
  std::vector<SigRec> sigs(sig_count);
  for (SigRec& s : sigs) {
    uint8_t signo = 0;
    uint8_t registered = 0;
    RETURN_IF_ERROR(r.U8(&signo));
    RETURN_IF_ERROR(r.U32(&s.entry.handler));
    RETURN_IF_ERROR(r.U32(&s.entry.flags));
    RETURN_IF_ERROR(r.U64(&s.entry.mask));
    RETURN_IF_ERROR(r.U8(&registered));
    if (signo < 1 || signo > kNumSignals) {
      return common::InvalidArgument("snapshot: signal number out of range");
    }
    s.signo = signo;
    s.entry.registered = registered != 0;
  }

  uint64_t wali_ns = 0;
  uint64_t kernel_ns = 0;
  uint32_t count_n = 0;
  RETURN_IF_ERROR(r.U64(&wali_ns));
  RETURN_IF_ERROR(r.U64(&kernel_ns));
  RETURN_IF_ERROR(r.U32(&count_n));
  if (count_n > kMaxTracedSyscalls) {
    return common::InvalidArgument("snapshot: trace count out of range");
  }
  std::vector<std::pair<uint32_t, uint64_t>> counts(count_n);
  for (auto& [id, n] : counts) {
    RETURN_IF_ERROR(r.U32(&id));
    RETURN_IF_ERROR(r.U64(&n));
    if (id >= kMaxTracedSyscalls) {
      return common::InvalidArgument("snapshot: traced syscall id out of range");
    }
  }

  uint64_t run_syscalls = 0;
  uint64_t syscall_budget = 0;
  uint64_t mem_budget_pages = 0;
  uint64_t grow_budget_pages = 0;
  uint64_t clear_child_tid = 0;
  RETURN_IF_ERROR(r.U64(&run_syscalls));
  RETURN_IF_ERROR(r.U64(&syscall_budget));
  RETURN_IF_ERROR(r.U64(&mem_budget_pages));
  RETURN_IF_ERROR(r.U64(&grow_budget_pages));
  RETURN_IF_ERROR(r.U64(&clear_child_tid));

  MmapManager::State ms;
  uint8_t mmap_initialized = 0;
  uint32_t used_count = 0;
  RETURN_IF_ERROR(r.U8(&mmap_initialized));
  RETURN_IF_ERROR(r.U64(&ms.base));
  RETURN_IF_ERROR(r.U64(&ms.limit));
  RETURN_IF_ERROR(r.U64(&ms.virgin_base));
  RETURN_IF_ERROR(r.U64(&ms.brk_base));
  RETURN_IF_ERROR(r.U64(&ms.brk_cur));
  RETURN_IF_ERROR(r.U64(&ms.brk_limit));
  RETURN_IF_ERROR(r.U32(&used_count));
  if (used_count > r.remaining() / 16) {
    return common::InvalidArgument("snapshot: mmap range count overruns input");
  }
  ms.initialized = mmap_initialized != 0;
  ms.used.resize(used_count);
  for (auto& [start, len] : ms.used) {
    RETURN_IF_ERROR(r.U64(&start));
    RETURN_IF_ERROR(r.U64(&len));
  }

  if (r.remaining() != 0) {
    return common::InvalidArgument("snapshot: trailing bytes in host blob");
  }

  // Parsed clean; apply.
  cont.start_instrs = start_instrs;
  cont.entry_is_main = entry_is_main != 0;

  if (pending_op != nullptr) {
    IoOp op;
    op.kind = static_cast<IoOp::Kind>(kind);
    op.fd = static_cast<int>(fd);
    op.sleep_nanos = static_cast<int64_t>(sleep_nanos);
    op.timeout_nanos = static_cast<int64_t>(timeout_nanos);
    op.scripted_result = static_cast<int64_t>(scripted_result);
    *pending_op = armed != 0 ? op : IoOp();
  }
  // The park request itself is NOT re-armed: the caller owns completing the
  // op (ResumeMain resets pending_io on entry regardless).

  proc.AdoptGuestFds(fds);
  for (const SigRec& s : sigs) {
    if (proc.sigtable.SetAction(s.signo, s.entry, nullptr) != 0) {
      return common::Internal("snapshot: signal disposition restore failed");
    }
  }
  proc.sigtable.set_virtual_mask(virtual_mask);

  proc.trace.Reset();
  proc.trace.AddWaliNanos(static_cast<int64_t>(wali_ns) +
                          static_cast<int64_t>(kernel_ns));
  proc.trace.AddKernelNanos(static_cast<int64_t>(kernel_ns));
  for (const auto& [id, n] : counts) {
    for (uint64_t i = 0; i < n; ++i) proc.trace.Count(id);
  }

  proc.run_syscalls.store(run_syscalls, std::memory_order_release);
  proc.syscall_budget.store(syscall_budget, std::memory_order_release);
  proc.mem_budget_pages.store(mem_budget_pages, std::memory_order_release);
  if (proc.memory != nullptr) {
    proc.memory->SetGrowBudgetPages(grow_budget_pages);
  }
  proc.clear_child_tid.store(clear_child_tid, std::memory_order_release);
  proc.mmap.ImportState(ms);
  return common::OkStatus();
}

}  // namespace

common::StatusOr<std::vector<uint8_t>> SnapshotProcess(
    WaliProcess& proc, const WaliRuntime::MainContinuation& cont) {
  if (!cont.armed()) {
    return common::FailedPrecondition("snapshot: continuation is not armed");
  }
  if (proc.main_instance == nullptr || proc.module == nullptr) {
    return common::FailedPrecondition("snapshot: process has no instance");
  }
  if (proc.thread_count() != 0) {
    return common::Unimplemented("snapshot: process has live guest threads");
  }
  if (proc.in_signal_handler.load(std::memory_order_acquire)) {
    return common::FailedPrecondition("snapshot: process is inside a signal handler");
  }
  if (proc.sigtable.AnyPending()) {
    return common::FailedPrecondition("snapshot: undelivered virtual signals pending");
  }
  if (proc.pending_io.retry != nullptr) {
    return common::Unimplemented(
        "snapshot: pending op carries a live retry closure (not pure data)");
  }
  std::vector<uint8_t> blob = EncodeHostBlob(proc, cont);
  return wasm::SnapshotSuspension(cont.susp, proc.main_instance.get(),
                                  wasm::ModuleStructuralHash(*proc.module), blob);
}

common::Status RestoreProcess(const uint8_t* data, size_t size, WaliProcess& proc,
                              WaliRuntime::MainContinuation& cont, IoOp* pending_op) {
  if (proc.main_instance == nullptr || proc.module == nullptr) {
    return common::FailedPrecondition("snapshot: process has no instance");
  }
  cont.Discard();
  common::StatusOr<std::vector<uint8_t>> blob = wasm::RestoreSuspension(
      data, size, proc.main_instance.get(),
      wasm::ModuleStructuralHash(*proc.module), &proc.exec_buffers, &cont.susp);
  if (!blob.ok()) {
    return blob.status();
  }
  common::Status st = DecodeHostBlob(*blob, proc, cont, pending_op);
  if (!st.ok()) {
    cont.Discard();  // never leave a half-restored continuation armed
    return st;
  }
  return common::OkStatus();
}

}  // namespace wali
