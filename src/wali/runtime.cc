#include "src/wali/runtime.h"

#include <errno.h>
#include <fcntl.h>
#include <sys/ioctl.h>
#include <limits.h>
#include <sys/stat.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>

#include "src/common/logging.h"

namespace wali {

namespace {

// Safepoint callback: delivers pending virtual signals by re-entering the
// module (paper Fig. 5 steps 3-4), and observes process-wide exit requests.
wasm::TrapKind WaliSafepoint(wasm::ExecContext& ctx) {
  auto* proc = static_cast<WaliProcess*>(ctx.current_instance()->user_data());
  if (proc == nullptr) {
    return wasm::TrapKind::kNone;
  }
  if (proc->exit_all.load(std::memory_order_acquire)) {
    ctx.RequestExit(proc->exit_code.load(std::memory_order_acquire));
    return wasm::TrapKind::kExit;
  }
  // Tenant budget enforcement (host accounting layer): the supervisor arms
  // these from the tenant's remaining cumulative budget; they trip here so a
  // run over budget stops at the next safepoint, exactly where fuel and
  // virtual signals are observed.
  int64_t cpu_deadline = proc->cpu_deadline_nanos.load(std::memory_order_acquire);
  if (cpu_deadline != 0 && common::MonotonicNanos() >= cpu_deadline) {
    ctx.SetTrap(wasm::TrapKind::kBudgetExhausted, "tenant cpu budget exhausted");
    return wasm::TrapKind::kBudgetExhausted;
  }
  uint64_t mem_budget = proc->mem_budget_pages.load(std::memory_order_acquire);
  if (mem_budget != 0 && proc->memory != nullptr &&
      proc->memory->size_pages() > mem_budget) {
    ctx.SetTrap(wasm::TrapKind::kBudgetExhausted, "tenant memory budget exhausted");
    return wasm::TrapKind::kBudgetExhausted;
  }
  if (!proc->sigtable.AnyPending()) {
    return wasm::TrapKind::kNone;
  }
  // Defer while a handler is already running (one-level SA_NODEFER model).
  if (proc->in_signal_handler.exchange(true)) {
    return wasm::TrapKind::kNone;
  }
  wasm::TrapKind out = wasm::TrapKind::kNone;
  uint64_t pending = proc->sigtable.TakePending(proc->sigtable.virtual_mask());
  for (int signo = 1; signo <= kNumSignals && out == wasm::TrapKind::kNone; ++signo) {
    if ((pending & (1ULL << (signo - 1))) == 0) {
      continue;
    }
    SigEntry entry = proc->sigtable.GetAction(signo);
    if (entry.handler == kSigIgn) {
      continue;
    }
    if (entry.handler == kSigDfl) {
      // Default action for anything routed through the virtual table is
      // termination (the trampoline is only installed for caught signals,
      // so this is a rarely-hit race with re-registration).
      ctx.RequestExit(128 + signo);
      out = wasm::TrapKind::kExit;
      break;
    }
    wasm::Instance* inst = ctx.current_instance();
    auto table = inst->table(0);
    if (table == nullptr || entry.handler >= table->elems.size()) {
      continue;  // stale funcref; drop the signal
    }
    const wasm::FuncRef& handler = table->elems[entry.handler];
    if (handler.IsNull()) {
      continue;
    }
    proc->sigtable.count_delivery();
    wasm::ExecOptions opts = ctx.opts;
    // The interrupted invocation holds the recycled buffers; the handler
    // re-entry allocates its own. It must also not inherit the suspension
    // slot — the parked state of the interrupted run lives there, and a
    // handler's syscalls have no parked-job identity to resume under.
    opts.buffers = nullptr;
    opts.suspend_to = nullptr;
    wasm::RunResult r =
        inst->CallRef(handler, {wasm::Value::I32(static_cast<uint32_t>(signo))}, opts);
    if (!r.ok()) {
      if (r.trap == wasm::TrapKind::kExit) {
        ctx.RequestExit(r.exit_code);
      } else {
        ctx.SetTrap(r.trap, r.trap_message.c_str());
      }
      out = r.trap;
    }
  }
  proc->in_signal_handler.store(false);
  return out;
}

}  // namespace

bool WaliCtx::GetStr(uint64_t addr, std::string* out) const {
  constexpr uint64_t kMaxStr = 1 << 16;
  uint64_t size = mem.size_bytes();
  if (addr >= size) {
    return false;
  }
  uint64_t limit = std::min(size, addr + kMaxStr);
  const char* p = reinterpret_cast<const char*>(mem.At(addr));
  uint64_t n = 0;
  while (addr + n < limit && p[n] != '\0') {
    ++n;
  }
  if (addr + n >= limit) {
    return false;  // unterminated
  }
  out->assign(p, n);
  return true;
}

bool OffloadableFd(int fd) {
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    return false;  // bad fd: let the real syscall surface the errno
  }
  if (!(S_ISFIFO(st.st_mode) || S_ISSOCK(st.st_mode) || S_ISCHR(st.st_mode))) {
    return false;
  }
  // O_NONBLOCK fds never block — the kernel answers -EAGAIN instantly, and
  // event-loop guests depend on exactly that. Parking one would turn a
  // readiness probe into an indefinite suspension, diverging from the
  // blocking path this offload must match bit-for-bit.
  int fl = ::fcntl(fd, F_GETFL);
  return fl >= 0 && (fl & O_NONBLOCK) == 0;
}

int64_t RetryRaw(WaliProcess& proc, long number, long a0, long a1, long a2,
                 long a3, long a4, long a5) {
  const bool timed = proc.runtime->options().attribute_time;
  int64_t t0 = timed ? common::MonotonicNanos() : 0;
  long r = ::syscall(number, a0, a1, a2, a3, a4, a5);
  int64_t ret = r >= 0 ? static_cast<int64_t>(r) : -static_cast<int64_t>(errno);
  if (timed) {
    proc.trace.AddKernelNanos(common::MonotonicNanos() - t0);
  }
  return ret;
}

int64_t WaliCtx::Raw(long number, long a0, long a1, long a2, long a3, long a4,
                     long a5) const {
  const bool timed = rt.options().attribute_time;
  int64_t t0 = timed ? common::MonotonicNanos() : 0;
  long r = ::syscall(number, a0, a1, a2, a3, a4, a5);
  int64_t ret = r >= 0 ? static_cast<int64_t>(r) : -static_cast<int64_t>(errno);
  if (timed) {
    proc.trace.AddKernelNanos(common::MonotonicNanos() - t0);
  }
  return ret;
}

std::string NormalizePath(const std::string& path) {
  const bool absolute = !path.empty() && path[0] == '/';
  std::vector<std::string> segs;
  size_t i = 0;
  while (i < path.size()) {
    while (i < path.size() && path[i] == '/') ++i;
    size_t j = i;
    while (j < path.size() && path[j] != '/') ++j;
    std::string seg = path.substr(i, j - i);
    i = j;
    if (seg.empty() || seg == ".") {
      continue;
    }
    if (seg == "..") {
      if (!segs.empty() && segs.back() != "..") {
        segs.pop_back();
      } else if (!absolute) {
        // Relative paths keep leading ".." (no anchor to resolve against);
        // absolute paths clamp at the root like the kernel does.
        segs.push_back("..");
      }
      continue;
    }
    segs.push_back(std::move(seg));
  }
  std::string out = absolute ? "/" : "";
  for (size_t k = 0; k < segs.size(); ++k) {
    if (k > 0) out += '/';
    out += segs[k];
  }
  if (out.empty()) {
    out = ".";
  }
  return out;
}

namespace {

// Checks an already-absolute, already-normalized path against the /proc
// interposition rules.
bool NormalizedPathAllowed(const std::string& norm);

// Anchors `path` to an absolute form: as-is when absolute, joined to `base`
// (itself absolute) otherwise, then lexically normalized.
std::string AnchoredNormalize(const std::string& base, const std::string& path) {
  if (!path.empty() && path[0] == '/') {
    return NormalizePath(path);
  }
  return NormalizePath(base + "/" + path);
}

// True when a ".." segment follows a named segment ("a/../f"). Collapsing
// such a path lexically disagrees with the kernel when the named segment is
// a symlink (the kernel follows the link before applying ".."), so those
// paths must not be rewritten into their lexical form — only checked.
bool HasDotDotAfterName(const std::string& path) {
  bool seen_name = false;
  size_t i = 0;
  while (i < path.size()) {
    while (i < path.size() && path[i] == '/') ++i;
    size_t j = i;
    while (j < path.size() && path[j] != '/') ++j;
    std::string seg = path.substr(i, j - i);
    i = j;
    if (seg.empty() || seg == ".") continue;
    if (seg == "..") {
      if (seen_name) return true;
    } else {
      seen_name = true;
    }
  }
  return false;
}

}  // namespace

bool PathAllowed(const std::string& path, std::string* resolved) {
  std::string norm = NormalizePath(path);
  if (norm.empty() || norm[0] != '/') {
    // Relative path: the kernel resolves it against the cwd, so the filter
    // must too — ../../proc/self/mem from / is /proc/self/mem.
    char cwd[PATH_MAX];
    if (getcwd(cwd, sizeof(cwd)) != nullptr) {
      norm = AnchoredNormalize(cwd, norm);
    }
    if (norm.empty() || norm[0] != '/') {
      return true;  // could not anchor; not a /proc path we can judge
    }
    if (!NormalizedPathAllowed(norm)) {
      return false;
    }
    if (resolved != nullptr && !HasDotDotAfterName(path)) {
      // Bind the syscall to the snapshot just checked: a sibling thread's
      // chdir between check and use must not re-point the path. Skipped for
      // "a/../f"-style paths whose kernel resolution can differ lexically.
      *resolved = std::move(norm);
    }
    return true;
  }
  return NormalizedPathAllowed(norm);
}

bool PathAllowedAt(int64_t dirfd, const std::string& path,
                   std::string* resolved) {
  if (!path.empty() && path[0] == '/') {
    return PathAllowed(path, resolved);
  }
  if (dirfd == AT_FDCWD) {
    return PathAllowed(path, resolved);
  }
  // Resolve the directory the fd refers to; if it cannot be resolved the
  // kernel will fail the syscall anyway, so allowing is safe.
  char link[64];
  std::snprintf(link, sizeof(link), "/proc/self/fd/%lld",
                static_cast<long long>(dirfd));
  char target[PATH_MAX];
  ssize_t n = readlink(link, target, sizeof(target) - 1);
  if (n <= 0) {
    return true;
  }
  target[n] = '\0';
  if (target[0] != '/') {
    return true;  // pipes/sockets print as "pipe:[...]"; not a directory
  }
  std::string norm = AnchoredNormalize(target, path);
  if (!NormalizedPathAllowed(norm)) {
    return false;
  }
  if (resolved != nullptr && !HasDotDotAfterName(path)) {
    *resolved = std::move(norm);  // immune to a concurrent dup2 on dirfd
  }
  return true;
}

namespace {

bool NormalizedPathAllowed(const std::string& norm) {
  // Reject /proc/<anything>/{mem,maps,pagemap,map_files*} windows into the
  // host address space (paper §3.6 "Filesystem Sandboxing"). Matching runs on
  // the lexically normalized path so `.`/`..`/`//` spellings such as
  // /proc/self/../self/mem or /proc//self/task/7/mem cannot slip through.
  if (norm.rfind("/proc/", 0) != 0) {
    return true;
  }
  // Split the part after /proc/ and inspect every component: this also covers
  // nested windows like /proc/self/task/<tid>/mem.
  std::vector<std::string> segs;
  size_t i = 6;
  while (i < norm.size()) {
    size_t j = norm.find('/', i);
    if (j == std::string::npos) j = norm.size();
    segs.push_back(norm.substr(i, j - i));
    i = j + 1;
  }
  if (segs.size() < 2) {
    return true;  // /proc or /proc/<pid> themselves are fine
  }
  const std::string& leaf = segs.back();
  if (leaf == "mem" || leaf == "maps" || leaf == "pagemap") {
    return false;
  }
  for (const std::string& seg : segs) {
    if (seg.rfind("map_files", 0) == 0) {
      return false;
    }
  }
  return true;
}

}  // namespace

WaliRuntime::WaliRuntime(wasm::Linker* linker) : WaliRuntime(linker, Options()) {}

WaliRuntime::WaliRuntime(wasm::Linker* linker, const Options& options)
    : linker_(linker), options_(options) {
  RegisterAll();
  RegisterSupportMethods();
}

wasm::ExecOptions WaliRuntime::exec_options() const {
  wasm::ExecOptions opts;
  opts.scheme = options_.scheme;
  opts.max_frames = options_.max_frames;
  opts.fuel = options_.fuel;
  opts.dispatch = options_.dispatch;
  opts.jit = options_.jit;
  opts.jit_threshold = options_.jit_threshold;
  return opts;
}

int WaliRuntime::SyscallId(const std::string& name) const {
  auto it = ids_.find(name);
  return it == ids_.end() ? -1 : it->second;
}

void WaliRuntime::ApplyFdEffect(WaliProcess& proc, size_t id,
                                const uint64_t* args, int64_t ret) const {
  if (fd_effects_[id] == FdEffect::kClosesFd) {
    // Linux frees the fd even when close(2) fails (EINTR/EIO); keeping it
    // tracked would double-close a number the kernel has since reused.
    proc.UntrackFd(static_cast<int>(args[0]));
    // The freed number can come back as a different file type; a stale
    // offloadability entry would then misroute sync-vs-park decisions.
    proc.InvalidateOffloadFd(static_cast<int>(args[0]));
    return;
  }
  if (ret < 0) {
    return;
  }
  switch (fd_effects_[id]) {
    case FdEffect::kNone:
    case FdEffect::kClosesFd:
      break;
    case FdEffect::kMintsFd:
      proc.TrackFd(static_cast<int>(ret));
      // dup2/dup3 replace an OPEN target fd in place (ret == newfd), and
      // open/socket/accept can resurrect any previously classified number.
      proc.InvalidateOffloadFd(static_cast<int>(ret));
      break;
    case FdEffect::kFcntl:
      if (args[1] == F_DUPFD || args[1] == F_DUPFD_CLOEXEC) {
        proc.TrackFd(static_cast<int>(ret));
        proc.InvalidateOffloadFd(static_cast<int>(ret));
      } else if (args[1] == F_SETFL) {
        // O_NONBLOCK may have flipped: the classification depends on it
        // (non-blocking fds must answer -EAGAIN inline, never park).
        proc.InvalidateOffloadFd(static_cast<int>(args[0]));
      }
      break;
    case FdEffect::kIoctl:
      if (args[1] == FIONBIO) {
        // ioctl's alternate spelling of the O_NONBLOCK flip.
        proc.InvalidateOffloadFd(static_cast<int>(args[0]));
      }
      break;
  }
}

void WaliRuntime::RegisterAll() {
  RegisterFsSyscalls(defs_);
  RegisterMemSyscalls(defs_);
  RegisterProcSyscalls(defs_);
  RegisterSignalSyscalls(defs_);
  RegisterNetSyscalls(defs_);
  RegisterTimeSyscalls(defs_);
  RegisterMiscSyscalls(defs_);

  fd_effects_.assign(defs_.size(), FdEffect::kNone);
  auto mark = [this](const char* name, FdEffect effect) {
    for (size_t id = 0; id < defs_.size(); ++id) {
      if (std::strcmp(defs_[id].name, name) == 0) {
        fd_effects_[id] = effect;
      }
    }
  };
  // Every registered syscall whose successful result is a new fd. Keep in
  // lockstep with the registry: an unmatched name here is dead config.
  for (const char* name : {"open", "openat", "dup", "dup2", "dup3", "socket",
                           "accept", "accept4", "epoll_create1", "eventfd2"}) {
    mark(name, FdEffect::kMintsFd);
  }
  mark("close", FdEffect::kClosesFd);
  mark("fcntl", FdEffect::kFcntl);
  mark("ioctl", FdEffect::kIoctl);

  for (size_t id = 0; id < defs_.size(); ++id) {
    const SyscallDef& def = defs_[id];
    ids_[def.name] = static_cast<int>(id);
    wasm::FuncType type;
    type.params.assign(def.nargs, wasm::ValType::kI64);
    type.results = {wasm::ValType::kI64};
    linker_->DefineHostFunc(
        "wali", std::string("SYS_") + def.name, type,
        [this, id](wasm::ExecContext& ctx, const uint64_t* args,
                   uint64_t* results) -> wasm::TrapKind {
          auto* proc = static_cast<WaliProcess*>(ctx.current_instance()->user_data());
          if (proc == nullptr) {
            ctx.SetTrap(wasm::TrapKind::kHostError, "WALI call outside a WALI process");
            return ctx.trap;
          }
          const SyscallDef& def = defs_[id];
          // Tenant syscall budget: enforced at the dispatch boundary (the
          // natural "safepoint" for syscalls — nothing kernel-visible has
          // happened yet when it trips, and the tripping dispatch itself
          // never reaches the trace, so it is not billed).
          uint64_t prior_syscalls =
              proc->run_syscalls.fetch_add(1, std::memory_order_acq_rel);
          uint64_t sys_budget = proc->syscall_budget.load(std::memory_order_acquire);
          if (sys_budget != 0 && prior_syscalls >= sys_budget) {
            ctx.SetTrap(wasm::TrapKind::kBudgetExhausted,
                        "tenant syscall budget exhausted");
            return ctx.trap;
          }
          if (proc->policy != nullptr) {
            SyscallPolicy::Decision d = proc->policy->Evaluate(def.name);
            if (d.action == SyscallPolicy::Action::kKill) {
              ctx.SetTrap(wasm::TrapKind::kHostError,
                          "syscall killed by policy");
              return ctx.trap;
            }
            if (d.action == SyscallPolicy::Action::kDeny || d.inject_fault) {
              proc->trace.Count(static_cast<uint32_t>(id));
              results[0] = static_cast<uint64_t>(-static_cast<int64_t>(d.err));
              return ctx.trap;
            }
          }
          WaliCtx c{ctx, *proc, *proc->memory, *this};
          const bool timed = options_.attribute_time;
          int64_t t0 = timed ? common::MonotonicNanos() : 0;
          int64_t ret = def.fn(c, reinterpret_cast<const int64_t*>(args));
          if (timed) {
            proc->trace.AddWaliNanos(common::MonotonicNanos() - t0);
          }
          if (proc->pending_io.armed) {
            // Park at the WALI boundary: the handler filed a PendingIo
            // instead of blocking. The dispatch is counted NOW (suspended
            // runs must match blocking runs bit-for-bit in syscall counts);
            // the result — and any fd effect — is materialized at resume.
            proc->pending_io.syscall = def.name;
            proc->trace.Count(static_cast<uint32_t>(id));
            ctx.SetTrap(wasm::TrapKind::kSyscallPending,
                        "syscall parked for async completion");
            return ctx.trap;
          }
          if (ctx.trap == wasm::TrapKind::kNone &&
              ctx.opts.suspend_to != nullptr && proc->park_after_syscalls != 0 &&
              ++proc->syscalls_since_park >= proc->park_after_syscalls) {
            // Deterministic park hook (snapshot round-trip harness): the
            // handler already completed, so park with its result as a
            // scripted completion. Every effect of the dispatch — fd set,
            // trace count — is applied NOW; resuming with scripted_result
            // is bit-identical to never having parked.
            proc->syscalls_since_park = 0;
            ApplyFdEffect(*proc, id, args, ret);
            proc->trace.Count(static_cast<uint32_t>(id));
            proc->pending_io.armed = true;
            proc->pending_io.op = IoOp::Scripted(ret);
            proc->pending_io.syscall = def.name;
            ctx.SetTrap(wasm::TrapKind::kSyscallPending,
                        "syscall parked (scripted completion)");
            return ctx.trap;
          }
          ApplyFdEffect(*proc, id, args, ret);
          proc->trace.Count(static_cast<uint32_t>(id));
          if (common::LogEnabled(common::LogLevel::kDebug)) {
            LOG_DEBUG() << "SYS_" << def.name << " -> " << ret;
          }
          results[0] = static_cast<uint64_t>(ret);
          return ctx.trap;  // kExit/kHostError propagate; kNone continues
        });
  }
}

void WaliRuntime::RegisterSupportMethods() {
  auto get_proc = [](wasm::ExecContext& ctx) -> WaliProcess* {
    return static_cast<WaliProcess*>(ctx.current_instance()->user_data());
  };

  wasm::FuncType t_ret;
  t_ret.results = {wasm::ValType::kI64};
  wasm::FuncType t_arg_ret;
  t_arg_ret.params = {wasm::ValType::kI64};
  t_arg_ret.results = {wasm::ValType::kI64};
  wasm::FuncType t_2arg_ret;
  t_2arg_ret.params = {wasm::ValType::kI64, wasm::ValType::kI64};
  t_2arg_ret.results = {wasm::ValType::kI64};

  // Command-line parameter transfer (paper §3.4): the guest libc allocates
  // and copies inside the sandbox, so parser bugs stay contained.
  linker_->DefineHostFunc("wali", "get_argc", t_ret,
                          [get_proc](wasm::ExecContext& ctx, const uint64_t*,
                                     uint64_t* results) {
                            WaliProcess* p = get_proc(ctx);
                            results[0] = p != nullptr ? p->argv.size() : 0;
                            return wasm::TrapKind::kNone;
                          });
  linker_->DefineHostFunc(
      "wali", "get_argv_len", t_arg_ret,
      [get_proc](wasm::ExecContext& ctx, const uint64_t* args, uint64_t* results) {
        WaliProcess* p = get_proc(ctx);
        uint64_t i = args[0];
        results[0] = (p != nullptr && i < p->argv.size())
                         ? p->argv[i].size() + 1
                         : static_cast<uint64_t>(-EINVAL);
        return wasm::TrapKind::kNone;
      });
  linker_->DefineHostFunc(
      "wali", "copy_argv", t_2arg_ret,
      [get_proc](wasm::ExecContext& ctx, const uint64_t* args, uint64_t* results) {
        WaliProcess* p = get_proc(ctx);
        uint64_t buf = args[0], i = args[1];
        if (p == nullptr || i >= p->argv.size()) {
          results[0] = static_cast<uint64_t>(-EINVAL);
          return wasm::TrapKind::kNone;
        }
        const std::string& s = p->argv[i];
        auto mem = ctx.current_instance()->memory(0);
        if (mem == nullptr || !mem->InBounds(buf, s.size() + 1)) {
          results[0] = static_cast<uint64_t>(-EFAULT);
          return wasm::TrapKind::kNone;
        }
        std::memcpy(mem->At(buf), s.c_str(), s.size() + 1);
        results[0] = s.size() + 1;
        return wasm::TrapKind::kNone;
      });
  // Environment transfer (§3.4): explicitly specified, never inherited.
  linker_->DefineHostFunc("wali", "get_envc", t_ret,
                          [get_proc](wasm::ExecContext& ctx, const uint64_t*,
                                     uint64_t* results) {
                            WaliProcess* p = get_proc(ctx);
                            results[0] = p != nullptr ? p->env.size() : 0;
                            return wasm::TrapKind::kNone;
                          });
  linker_->DefineHostFunc(
      "wali", "get_env_len", t_arg_ret,
      [get_proc](wasm::ExecContext& ctx, const uint64_t* args, uint64_t* results) {
        WaliProcess* p = get_proc(ctx);
        uint64_t i = args[0];
        results[0] = (p != nullptr && i < p->env.size())
                         ? p->env[i].size() + 1
                         : static_cast<uint64_t>(-EINVAL);
        return wasm::TrapKind::kNone;
      });
  linker_->DefineHostFunc(
      "wali", "copy_env", t_2arg_ret,
      [get_proc](wasm::ExecContext& ctx, const uint64_t* args, uint64_t* results) {
        WaliProcess* p = get_proc(ctx);
        uint64_t buf = args[0], i = args[1];
        if (p == nullptr || i >= p->env.size()) {
          results[0] = static_cast<uint64_t>(-EINVAL);
          return wasm::TrapKind::kNone;
        }
        const std::string& s = p->env[i];
        auto mem = ctx.current_instance()->memory(0);
        if (mem == nullptr || !mem->InBounds(buf, s.size() + 1)) {
          results[0] = static_cast<uint64_t>(-EFAULT);
          return wasm::TrapKind::kNone;
        }
        std::memcpy(mem->At(buf), s.c_str(), s.size() + 1);
        results[0] = s.size() + 1;
        return wasm::TrapKind::kNone;
      });
}

common::StatusOr<std::unique_ptr<WaliProcess>> WaliRuntime::CreateProcess(
    std::shared_ptr<const wasm::Module> module, std::vector<std::string> argv,
    std::vector<std::string> env) {
  auto proc = std::make_unique<WaliProcess>(this, std::move(argv), std::move(env));
  proc->module = module;
  wasm::Linker::InstantiateOptions opts;
  opts.user_data = proc.get();
  // Deferred to RunMain so it executes with the process's safepoints,
  // policy, and fuel/frame limits — a tenant's (start) must not escape them.
  opts.run_start = false;
  opts.instance_name = proc->argv.empty() ? "wali-proc" : proc->argv[0];
  ASSIGN_OR_RETURN(std::unique_ptr<wasm::Instance> inst,
                   linker_->Instantiate(module, opts));
  proc->main_instance = std::move(inst);
  proc->memory = proc->main_instance->memory(0);
  if (proc->memory == nullptr) {
    return common::InvalidArgument("WALI modules must declare or import a memory");
  }
  proc->mmap.Bind(proc->memory.get());
  proc->AdoptInstance(proc->main_instance.get());
  return proc;
}

namespace {

// Declared min pages of the module's memory 0, local or imported.
common::StatusOr<uint64_t> ModuleMinMemoryPages(const wasm::Module& module) {
  if (!module.memories.empty()) {
    return module.memories[0].limits.min;
  }
  for (const wasm::Import& imp : module.imports) {
    if (imp.kind == wasm::ExternKind::kMemory) {
      return imp.limits.min;
    }
  }
  return common::InvalidArgument("WALI modules must declare or import a memory");
}

}  // namespace

common::Status WaliRuntime::ResetProcess(WaliProcess& process,
                                         std::shared_ptr<const wasm::Module> module,
                                         std::vector<std::string> argv,
                                         std::vector<std::string> env) {
  if (process.memory == nullptr) {
    return common::FailedPrecondition("process has no memory slab to recycle");
  }
  ASSIGN_OR_RETURN(uint64_t min_pages, ModuleMinMemoryPages(*module));
  std::shared_ptr<wasm::Memory> slab = process.memory;
  if (min_pages > slab->max_pages()) {
    return common::InvalidArgument("module memory exceeds the pooled slab reservation");
  }
  process.ResetForReuse(std::move(argv), std::move(env));
  RETURN_IF_ERROR(slab->ResetToPages(min_pages));
  wasm::Linker::InstantiateOptions opts;
  opts.user_data = &process;
  opts.memory0_override = slab;
  opts.run_start = false;  // deferred to RunMain, as in CreateProcess
  opts.instance_name = process.argv.empty() ? "wali-proc" : process.argv[0];
  ASSIGN_OR_RETURN(std::unique_ptr<wasm::Instance> inst,
                   linker_->Instantiate(std::move(module), opts));
  process.main_instance = std::move(inst);
  process.module = process.main_instance->module_ptr();
  process.memory = slab;
  process.mmap.Bind(slab.get());
  process.AdoptInstance(process.main_instance.get());
  return common::OkStatus();
}

wasm::RunResult WaliRuntime::RunMain(WaliProcess& process) {
  return RunMain(process, exec_options());
}

wasm::RunResult WaliRuntime::RunMain(WaliProcess& process,
                                     const wasm::ExecOptions& opts) {
  return RunMain(process, opts, nullptr);
}

wasm::RunResult WaliRuntime::RunMain(WaliProcess& process,
                                     const wasm::ExecOptions& opts,
                                     MainContinuation* cont) {
  wasm::RunResult r;
  // The (start) function, deferred from instantiation: runs with the same
  // limits and policy as the entry point, and what it burns comes out of the
  // one per-run fuel budget — (start) must not grant a tenant a second one.
  wasm::ExecOptions entry_opts = opts;
  // Main-thread runs recycle the process's interpreter buffers; pooled
  // slots thus stop reallocating stack/frame storage per guest run.
  if (entry_opts.buffers == nullptr) {
    entry_opts.buffers = &process.exec_buffers;
  }
  // (start) always runs synchronously — CanOffload() sees no suspension
  // slot and handlers take the blocking path — so a parked run is always
  // parked in the entry function and resume never has to replay into the
  // start/entry sequencing below.
  entry_opts.suspend_to = nullptr;
  process.pending_io.Reset();
  if (cont != nullptr) {
    cont->Discard();
  }
  uint64_t start_instrs = 0;
  if (process.module->start.has_value()) {
    r = process.main_instance->Call(*process.module->start, {}, entry_opts);
    start_instrs = r.executed_instrs;
    if (r.ok() && opts.fuel != 0 && start_instrs >= opts.fuel) {
      r.trap = wasm::TrapKind::kFuelExhausted;
      r.trap_message = "fuel exhausted by start function";
    }
    if (!r.ok()) {
      process.JoinThreads();
      if (r.trap == wasm::TrapKind::kExit) {
        r.values.clear();
      }
      return r;
    }
    if (opts.fuel != 0) {
      entry_opts.fuel = opts.fuel - start_instrs;
    }
  }
  if (cont != nullptr) {
    entry_opts.suspend_to = &cont->susp;
  }
  bool entry_is_main = false;
  if (process.module->FindExport("_start", wasm::ExternKind::kFunc) != nullptr) {
    r = process.main_instance->CallExport("_start", {}, entry_opts);
  } else {
    entry_is_main = true;
    r = process.main_instance->CallExport("main", {}, entry_opts);
  }
  if (r.trap == wasm::TrapKind::kSyscallPending) {
    cont->start_instrs = start_instrs;
    cont->entry_is_main = entry_is_main;
    // Partial count so far; the final tally is assembled in ResumeMain.
    return r;
  }
  if (entry_is_main && r.ok() && !r.values.empty()) {
    r.exit_code = static_cast<int32_t>(r.values[0].i32());
  }
  r.executed_instrs += start_instrs;
  process.JoinThreads();
  if (r.trap == wasm::TrapKind::kExit) {
    // Clean process exit.
    r.values.clear();
  }
  return r;
}

wasm::RunResult WaliRuntime::ResumeMain(WaliProcess& process,
                                        MainContinuation& cont,
                                        int64_t syscall_result) {
  process.pending_io.Reset();
  uint64_t bits = static_cast<uint64_t>(syscall_result);
  wasm::RunResult r = wasm::ResumeInvoke(cont.susp, &bits, 1);
  if (r.trap == wasm::TrapKind::kSyscallPending) {
    return r;  // parked again; cont stays armed
  }
  if (cont.entry_is_main && r.ok() && !r.values.empty()) {
    r.exit_code = static_cast<int32_t>(r.values[0].i32());
  }
  r.executed_instrs += cont.start_instrs;
  cont.start_instrs = 0;
  cont.entry_is_main = false;
  process.JoinThreads();
  if (r.trap == wasm::TrapKind::kExit) {
    r.values.clear();
  }
  return r;
}

void WaliProcess::AdoptInstance(wasm::Instance* instance) {
  instance->set_user_data(this);
  instance->set_safepoint_fn(&WaliSafepoint);
}

}  // namespace wali
