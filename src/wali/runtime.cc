#include "src/wali/runtime.h"

#include <errno.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cstring>

#include "src/common/logging.h"

namespace wali {

namespace {

// Safepoint callback: delivers pending virtual signals by re-entering the
// module (paper Fig. 5 steps 3-4), and observes process-wide exit requests.
wasm::TrapKind WaliSafepoint(wasm::ExecContext& ctx) {
  auto* proc = static_cast<WaliProcess*>(ctx.current_instance()->user_data());
  if (proc == nullptr) {
    return wasm::TrapKind::kNone;
  }
  if (proc->exit_all.load(std::memory_order_acquire)) {
    ctx.RequestExit(proc->exit_code.load(std::memory_order_acquire));
    return wasm::TrapKind::kExit;
  }
  if (!proc->sigtable.AnyPending()) {
    return wasm::TrapKind::kNone;
  }
  // Defer while a handler is already running (one-level SA_NODEFER model).
  if (proc->in_signal_handler.exchange(true)) {
    return wasm::TrapKind::kNone;
  }
  wasm::TrapKind out = wasm::TrapKind::kNone;
  uint64_t pending = proc->sigtable.TakePending(proc->sigtable.virtual_mask());
  for (int signo = 1; signo <= kNumSignals && out == wasm::TrapKind::kNone; ++signo) {
    if ((pending & (1ULL << (signo - 1))) == 0) {
      continue;
    }
    SigEntry entry = proc->sigtable.GetAction(signo);
    if (entry.handler == kSigIgn) {
      continue;
    }
    if (entry.handler == kSigDfl) {
      // Default action for anything routed through the virtual table is
      // termination (the trampoline is only installed for caught signals,
      // so this is a rarely-hit race with re-registration).
      ctx.RequestExit(128 + signo);
      out = wasm::TrapKind::kExit;
      break;
    }
    wasm::Instance* inst = ctx.current_instance();
    auto table = inst->table(0);
    if (table == nullptr || entry.handler >= table->elems.size()) {
      continue;  // stale funcref; drop the signal
    }
    const wasm::FuncRef& handler = table->elems[entry.handler];
    if (handler.IsNull()) {
      continue;
    }
    proc->sigtable.count_delivery();
    wasm::ExecOptions opts = ctx.opts;
    wasm::RunResult r =
        inst->CallRef(handler, {wasm::Value::I32(static_cast<uint32_t>(signo))}, opts);
    if (!r.ok()) {
      if (r.trap == wasm::TrapKind::kExit) {
        ctx.RequestExit(r.exit_code);
      } else {
        ctx.SetTrap(r.trap, r.trap_message.c_str());
      }
      out = r.trap;
    }
  }
  proc->in_signal_handler.store(false);
  return out;
}

}  // namespace

bool WaliCtx::GetStr(uint64_t addr, std::string* out) const {
  constexpr uint64_t kMaxStr = 1 << 16;
  uint64_t size = mem.size_bytes();
  if (addr >= size) {
    return false;
  }
  uint64_t limit = std::min(size, addr + kMaxStr);
  const char* p = reinterpret_cast<const char*>(mem.At(addr));
  uint64_t n = 0;
  while (addr + n < limit && p[n] != '\0') {
    ++n;
  }
  if (addr + n >= limit) {
    return false;  // unterminated
  }
  out->assign(p, n);
  return true;
}

int64_t WaliCtx::Raw(long number, long a0, long a1, long a2, long a3, long a4,
                     long a5) const {
  const bool timed = rt.options().attribute_time;
  int64_t t0 = timed ? common::MonotonicNanos() : 0;
  long r = ::syscall(number, a0, a1, a2, a3, a4, a5);
  int64_t ret = r >= 0 ? static_cast<int64_t>(r) : -static_cast<int64_t>(errno);
  if (timed) {
    proc.trace.AddKernelNanos(common::MonotonicNanos() - t0);
  }
  return ret;
}

bool PathAllowed(const std::string& path) {
  // Reject /proc/<anything>/mem and /proc/<anything>/maps-style windows into
  // the host address space (paper §3.6 "Filesystem Sandboxing").
  if (path.rfind("/proc/", 0) != 0) {
    return true;
  }
  std::string rest = path.substr(6);
  auto slash = rest.find('/');
  if (slash == std::string::npos) {
    return true;
  }
  std::string leaf = rest.substr(slash + 1);
  return !(leaf == "mem" || leaf == "maps" || leaf == "pagemap" ||
           leaf.rfind("map_files", 0) == 0);
}

WaliRuntime::WaliRuntime(wasm::Linker* linker) : WaliRuntime(linker, Options()) {}

WaliRuntime::WaliRuntime(wasm::Linker* linker, const Options& options)
    : linker_(linker), options_(options) {
  RegisterAll();
  RegisterSupportMethods();
}

wasm::ExecOptions WaliRuntime::exec_options() const {
  wasm::ExecOptions opts;
  opts.scheme = options_.scheme;
  opts.max_frames = options_.max_frames;
  opts.fuel = options_.fuel;
  return opts;
}

int WaliRuntime::SyscallId(const std::string& name) const {
  auto it = ids_.find(name);
  return it == ids_.end() ? -1 : it->second;
}

void WaliRuntime::RegisterAll() {
  RegisterFsSyscalls(defs_);
  RegisterMemSyscalls(defs_);
  RegisterProcSyscalls(defs_);
  RegisterSignalSyscalls(defs_);
  RegisterNetSyscalls(defs_);
  RegisterTimeSyscalls(defs_);
  RegisterMiscSyscalls(defs_);

  for (size_t id = 0; id < defs_.size(); ++id) {
    const SyscallDef& def = defs_[id];
    ids_[def.name] = static_cast<int>(id);
    wasm::FuncType type;
    type.params.assign(def.nargs, wasm::ValType::kI64);
    type.results = {wasm::ValType::kI64};
    linker_->DefineHostFunc(
        "wali", std::string("SYS_") + def.name, type,
        [this, id](wasm::ExecContext& ctx, const uint64_t* args,
                   uint64_t* results) -> wasm::TrapKind {
          auto* proc = static_cast<WaliProcess*>(ctx.current_instance()->user_data());
          if (proc == nullptr) {
            ctx.SetTrap(wasm::TrapKind::kHostError, "WALI call outside a WALI process");
            return ctx.trap;
          }
          const SyscallDef& def = defs_[id];
          if (proc->policy != nullptr) {
            SyscallPolicy::Decision d = proc->policy->Evaluate(def.name);
            if (d.action == SyscallPolicy::Action::kKill) {
              ctx.SetTrap(wasm::TrapKind::kHostError,
                          "syscall killed by policy");
              return ctx.trap;
            }
            if (d.action == SyscallPolicy::Action::kDeny || d.inject_fault) {
              proc->trace.Count(static_cast<uint32_t>(id));
              results[0] = static_cast<uint64_t>(-static_cast<int64_t>(d.err));
              return ctx.trap;
            }
          }
          WaliCtx c{ctx, *proc, *proc->memory, *this};
          const bool timed = options_.attribute_time;
          int64_t t0 = timed ? common::MonotonicNanos() : 0;
          int64_t ret = def.fn(c, reinterpret_cast<const int64_t*>(args));
          if (timed) {
            proc->trace.AddWaliNanos(common::MonotonicNanos() - t0);
          }
          proc->trace.Count(static_cast<uint32_t>(id));
          if (common::LogEnabled(common::LogLevel::kDebug)) {
            LOG_DEBUG() << "SYS_" << def.name << " -> " << ret;
          }
          results[0] = static_cast<uint64_t>(ret);
          return ctx.trap;  // kExit/kHostError propagate; kNone continues
        });
  }
}

void WaliRuntime::RegisterSupportMethods() {
  auto get_proc = [](wasm::ExecContext& ctx) -> WaliProcess* {
    return static_cast<WaliProcess*>(ctx.current_instance()->user_data());
  };

  wasm::FuncType t_ret;
  t_ret.results = {wasm::ValType::kI64};
  wasm::FuncType t_arg_ret;
  t_arg_ret.params = {wasm::ValType::kI64};
  t_arg_ret.results = {wasm::ValType::kI64};
  wasm::FuncType t_2arg_ret;
  t_2arg_ret.params = {wasm::ValType::kI64, wasm::ValType::kI64};
  t_2arg_ret.results = {wasm::ValType::kI64};

  // Command-line parameter transfer (paper §3.4): the guest libc allocates
  // and copies inside the sandbox, so parser bugs stay contained.
  linker_->DefineHostFunc("wali", "get_argc", t_ret,
                          [get_proc](wasm::ExecContext& ctx, const uint64_t*,
                                     uint64_t* results) {
                            WaliProcess* p = get_proc(ctx);
                            results[0] = p != nullptr ? p->argv.size() : 0;
                            return wasm::TrapKind::kNone;
                          });
  linker_->DefineHostFunc(
      "wali", "get_argv_len", t_arg_ret,
      [get_proc](wasm::ExecContext& ctx, const uint64_t* args, uint64_t* results) {
        WaliProcess* p = get_proc(ctx);
        uint64_t i = args[0];
        results[0] = (p != nullptr && i < p->argv.size())
                         ? p->argv[i].size() + 1
                         : static_cast<uint64_t>(-EINVAL);
        return wasm::TrapKind::kNone;
      });
  linker_->DefineHostFunc(
      "wali", "copy_argv", t_2arg_ret,
      [get_proc](wasm::ExecContext& ctx, const uint64_t* args, uint64_t* results) {
        WaliProcess* p = get_proc(ctx);
        uint64_t buf = args[0], i = args[1];
        if (p == nullptr || i >= p->argv.size()) {
          results[0] = static_cast<uint64_t>(-EINVAL);
          return wasm::TrapKind::kNone;
        }
        const std::string& s = p->argv[i];
        auto mem = ctx.current_instance()->memory(0);
        if (mem == nullptr || !mem->InBounds(buf, s.size() + 1)) {
          results[0] = static_cast<uint64_t>(-EFAULT);
          return wasm::TrapKind::kNone;
        }
        std::memcpy(mem->At(buf), s.c_str(), s.size() + 1);
        results[0] = s.size() + 1;
        return wasm::TrapKind::kNone;
      });
  // Environment transfer (§3.4): explicitly specified, never inherited.
  linker_->DefineHostFunc("wali", "get_envc", t_ret,
                          [get_proc](wasm::ExecContext& ctx, const uint64_t*,
                                     uint64_t* results) {
                            WaliProcess* p = get_proc(ctx);
                            results[0] = p != nullptr ? p->env.size() : 0;
                            return wasm::TrapKind::kNone;
                          });
  linker_->DefineHostFunc(
      "wali", "get_env_len", t_arg_ret,
      [get_proc](wasm::ExecContext& ctx, const uint64_t* args, uint64_t* results) {
        WaliProcess* p = get_proc(ctx);
        uint64_t i = args[0];
        results[0] = (p != nullptr && i < p->env.size())
                         ? p->env[i].size() + 1
                         : static_cast<uint64_t>(-EINVAL);
        return wasm::TrapKind::kNone;
      });
  linker_->DefineHostFunc(
      "wali", "copy_env", t_2arg_ret,
      [get_proc](wasm::ExecContext& ctx, const uint64_t* args, uint64_t* results) {
        WaliProcess* p = get_proc(ctx);
        uint64_t buf = args[0], i = args[1];
        if (p == nullptr || i >= p->env.size()) {
          results[0] = static_cast<uint64_t>(-EINVAL);
          return wasm::TrapKind::kNone;
        }
        const std::string& s = p->env[i];
        auto mem = ctx.current_instance()->memory(0);
        if (mem == nullptr || !mem->InBounds(buf, s.size() + 1)) {
          results[0] = static_cast<uint64_t>(-EFAULT);
          return wasm::TrapKind::kNone;
        }
        std::memcpy(mem->At(buf), s.c_str(), s.size() + 1);
        results[0] = s.size() + 1;
        return wasm::TrapKind::kNone;
      });
}

common::StatusOr<std::unique_ptr<WaliProcess>> WaliRuntime::CreateProcess(
    std::shared_ptr<const wasm::Module> module, std::vector<std::string> argv,
    std::vector<std::string> env) {
  auto proc = std::make_unique<WaliProcess>(this, std::move(argv), std::move(env));
  proc->module = module;
  wasm::Linker::InstantiateOptions opts;
  opts.user_data = proc.get();
  opts.instance_name = proc->argv.empty() ? "wali-proc" : proc->argv[0];
  ASSIGN_OR_RETURN(std::unique_ptr<wasm::Instance> inst,
                   linker_->Instantiate(module, opts));
  proc->main_instance = std::move(inst);
  proc->memory = proc->main_instance->memory(0);
  if (proc->memory == nullptr) {
    return common::InvalidArgument("WALI modules must declare or import a memory");
  }
  proc->mmap.Bind(proc->memory.get());
  proc->AdoptInstance(proc->main_instance.get());
  return proc;
}

wasm::RunResult WaliRuntime::RunMain(WaliProcess& process) {
  wasm::ExecOptions opts = exec_options();
  wasm::RunResult r;
  if (process.module->FindExport("_start", wasm::ExternKind::kFunc) != nullptr) {
    r = process.main_instance->CallExport("_start", {}, opts);
  } else {
    r = process.main_instance->CallExport("main", {}, opts);
    if (r.ok() && !r.values.empty()) {
      r.exit_code = static_cast<int32_t>(r.values[0].i32());
    }
  }
  process.JoinThreads();
  if (r.trap == wasm::TrapKind::kExit) {
    // Clean process exit.
    r.values.clear();
  }
  return r;
}

void WaliProcess::AdoptInstance(wasm::Instance* instance) {
  instance->set_user_data(this);
  instance->set_safepoint_fn(&WaliSafepoint);
}

}  // namespace wali
