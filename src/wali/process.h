// WaliProcess: the engine-side state for one WALI process (paper §3).
//
// Follows the paper's chosen 1-to-1 process model with instance-per-thread
// (§3.1): the process maps to the host process; each guest thread spawned via
// SYS_clone runs its own module instance sharing the parent's linear memory.
#ifndef SRC_WALI_PROCESS_H_
#define SRC_WALI_PROCESS_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/common/status.h"
#include "src/wali/async.h"
#include "src/wali/mmap_mgr.h"
#include "src/wali/policy.h"
#include "src/wali/sigtable.h"
#include "src/wali/trace.h"
#include "src/wasm/wasm.h"

namespace wali {

class WaliRuntime;

class WaliProcess {
 public:
  WaliProcess(WaliRuntime* runtime, std::vector<std::string> argv,
              std::vector<std::string> env);
  ~WaliProcess();

  WaliProcess(const WaliProcess&) = delete;
  WaliProcess& operator=(const WaliProcess&) = delete;

  // Wires safepoint polling + user_data into an instance belonging to this
  // process (main instance and every thread clone).
  void AdoptInstance(wasm::Instance* instance);

  // SYS_clone backend: spawns a native thread running a fresh instance that
  // shares this process's memory; the thread invokes funcref table entry
  // `func_index` with `arg`. Returns child tid or -errno.
  int64_t SpawnThread(uint32_t func_index, uint64_t arg, uint64_t flags,
                      uint64_t ptid_addr, uint64_t ctid_addr);

  void JoinThreads();
  int thread_count();

  // Host fds minted for this guest (open/dup/socket/pipe/...), maintained by
  // the syscall dispatch layer. Tenants share one host process, so anything
  // the guest leaves open must be closed when the process dies or its slot
  // is recycled — otherwise fds (and the files behind them) leak across
  // tenants. Only fds > 2 are tracked; stdio is shared by design.
  void TrackFd(int fd);
  void UntrackFd(int fd);
  // Closes every tracked fd (destructor and slot recycling).
  void CloseGuestFds();
  int tracked_fd_count();
  // Sorted copy of the tracked fd set (snapshot/restore: the fd table is
  // part of the serialized process state; see src/wali/process_snapshot.cc).
  std::vector<int> GuestFds();
  // Bulk re-track on restore: adopts `fds` as the tracked set (union with
  // anything already tracked, same > 2 rule as TrackFd).
  void AdoptGuestFds(const std::vector<int>& fds);

  // Cached per-fd offloadability classification (see wali::OffloadableFd):
  // with async-io on, every blocking-capable read/write/accept dispatch
  // used to pay an fstat+fcntl to decide sync-vs-park. The classification
  // is a pure function of the open file description's type and O_NONBLOCK
  // flag, so it is cached per process and invalidated wherever either can
  // change under us: close (fd number freed for reuse), dup2/dup3 (target
  // fd silently replaced), fcntl(F_SETFL) and ioctl(FIONBIO) (O_NONBLOCK
  // flipped), and slot recycling (ResetForReuse). Invalidation hooks live in the syscall
  // dispatch wrapper (WaliRuntime::ApplyFdEffect), so no handler can mint
  // or retire an fd without the cache hearing about it.
  bool OffloadableCached(int fd);
  void InvalidateOffloadFd(int fd);
  void ClearOffloadCache();

  // Returns the process to a just-constructed state while keeping the linear
  // memory slab alive for reuse: joins straggler threads, clears exit/signal/
  // mmap/trace/policy state and the tid registration, and drops the old
  // instance and module. The caller (WaliRuntime::ResetProcess) is responsible
  // for zeroing the memory and re-instantiating into it.
  void ResetForReuse(std::vector<std::string> argv_in,
                     std::vector<std::string> env_in);

  // Requests process-wide termination; sibling threads observe it at their
  // next safepoint (used by SYS_exit_group).
  void RequestExitAll(int32_t code) {
    exit_code.store(code, std::memory_order_release);
    exit_all.store(true, std::memory_order_release);
  }

  WaliRuntime* runtime;
  std::vector<std::string> argv;
  std::vector<std::string> env;

  std::shared_ptr<const wasm::Module> module;
  std::unique_ptr<wasm::Instance> main_instance;
  std::shared_ptr<wasm::Memory> memory;

  SigTable sigtable;
  MmapManager mmap;
  SyscallTrace trace;
  // Recycled interpreter stack/frame storage for the main-thread run: wired
  // into ExecOptions by RunMain, so pooled slots (host::InstancePool) reuse
  // grown capacity across guest runs instead of reallocating per run.
  // ResetForReuse keeps it warm but trims outlier capacity (a deep run can
  // grow toward max_value_stack; that must not stay resident per slot).
  // Guest threads and re-entrant signal handlers do not share it (one owner
  // per invocation).
  wasm::ExecBuffers exec_buffers;
  // Optional user-space syscall policy (§3.6); consulted before dispatch.
  std::shared_ptr<SyscallPolicy> policy;

  // Per-tenant budget enforcement, observed at the same safepoints as
  // async signal delivery (and alongside the interpreter's fuel check):
  // when the monotonic clock passes `cpu_deadline_nanos`, or linear memory
  // grows beyond `mem_budget_pages`, the run traps kBudgetExhausted (the
  // memory cap is additionally enforced at the allocation itself via
  // wasm::Memory's grow budget, so pages past the cap are never committed;
  // the safepoint check is the backstop for a cap below the module's
  // declared minimum). `syscall_budget` is checked in the syscall dispatch
  // wrapper — one dispatch past the budget traps — against `run_syscalls`,
  // the process's cheap dispatch counter. Zero disables any check. Set by
  // the host supervisor from the tenant's remaining TenantLedger slices
  // before each run.
  std::atomic<int64_t> cpu_deadline_nanos{0};
  std::atomic<uint64_t> mem_budget_pages{0};
  std::atomic<uint64_t> syscall_budget{0};
  std::atomic<uint64_t> run_syscalls{0};

  // Park request filed by a blocking-capable syscall instead of blocking
  // (src/wali/async.h). Only the main-run invocation can park (guest
  // threads and signal-handler re-entries run without a suspension slot),
  // so this needs no lock: it is written by the handler and read by the
  // supervisor strictly after the interpreter unwound with
  // kSyscallPending. Cleared per run and on slot recycling.
  PendingIo pending_io;

  // Deterministic park hook (snapshot round-trip harness): when nonzero,
  // the syscall dispatch wrapper parks the main run at every Nth dispatch
  // with the handler's already-computed result as an IoOp::Scripted
  // completion. Resuming with that result is bit-identical to never having
  // parked — the handler ran to completion before the park — which lets
  // tests park ANY workload mid-run at a boundary where the interpreter
  // state is in its canonical spilled form. Main-run only (no lock needed,
  // same discipline as pending_io); cleared on slot recycling.
  uint64_t park_after_syscalls = 0;
  uint64_t syscalls_since_park = 0;

  std::atomic<bool> exit_all{false};
  std::atomic<int32_t> exit_code{0};
  // Defers nested handler execution while one is running (paper: stack-based
  // deferral when SA_NODEFER is unset; we keep one level).
  std::atomic<bool> in_signal_handler{false};

  // tid registered via SYS_set_tid_address (cleared+futex-woken on exit).
  std::atomic<uint64_t> clear_child_tid{0};

 private:
  struct GuestThread {
    std::thread native;
  };
  std::mutex threads_mu_;
  std::vector<std::unique_ptr<GuestThread>> threads_;

  std::mutex fds_mu_;
  std::set<int> guest_fds_;

  std::mutex offload_mu_;
  std::map<int, bool> offload_cache_;
};

}  // namespace wali

#endif  // SRC_WALI_PROCESS_H_
