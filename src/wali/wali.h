// Umbrella header for the WALI thin kernel interface (paper §3, S2 in
// DESIGN.md).
//
// Quickstart:
//   wasm::Linker linker;
//   wali::WaliRuntime runtime(&linker);                    // exposes "wali" imports
//   auto module = wasm::ParseAndValidateWat(src);          // or DecodeModule(bytes)
//   auto proc = runtime.CreateProcess(*module, {"app"}, {"HOME=/root"});
//   wasm::RunResult r = runtime.RunMain(**proc);           // runs _start/main
#ifndef SRC_WALI_WALI_H_
#define SRC_WALI_WALI_H_

#include "src/wali/mmap_mgr.h"   // IWYU pragma: export
#include "src/wali/policy.h"     // IWYU pragma: export
#include "src/wali/process.h"    // IWYU pragma: export
#include "src/wali/runtime.h"    // IWYU pragma: export
#include "src/wali/sigtable.h"   // IWYU pragma: export
#include "src/wali/trace.h"      // IWYU pragma: export

#endif  // SRC_WALI_WALI_H_
