#include "src/wali/mmap_mgr.h"

#include <algorithm>
#include <cstring>

namespace wali {

namespace {

uint64_t PageUp(uint64_t v) { return (v + kMmapPageSize - 1) & ~(kMmapPageSize - 1); }

}  // namespace

void MmapManager::InitLocked() {
  if (initialized_) {
    return;
  }
  initialized_ = true;
  // Pool begins above everything the module declared/used at bind time,
  // rounded to a wasm page so file mappings stay page-aligned, and ends at
  // the reservation cap.
  base_ = PageUp(memory_->size_bytes());
  if (base_ < memory_->size_bytes()) {
    base_ = memory_->size_bytes();
  }
  base_ = (base_ + wasm::kWasmPageSize - 1) & ~(wasm::kWasmPageSize - 1);
  limit_ = memory_->max_pages() * wasm::kWasmPageSize;
  virgin_base_ = base_;
}

uint64_t MmapManager::pool_base() {
  std::lock_guard<std::mutex> lock(mu_);
  InitLocked();
  return base_;
}

void MmapManager::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  initialized_ = false;
  base_ = 0;
  limit_ = 0;
  used_.clear();
  virgin_base_ = 0;
  brk_base_ = 0;
  brk_cur_ = 0;
  brk_limit_ = 0;
}

MmapManager::State MmapManager::ExportState() {
  std::lock_guard<std::mutex> lock(mu_);
  State s;
  s.initialized = initialized_;
  s.base = base_;
  s.limit = limit_;
  s.virgin_base = virgin_base_;
  s.brk_base = brk_base_;
  s.brk_cur = brk_cur_;
  s.brk_limit = brk_limit_;
  s.used.assign(used_.begin(), used_.end());
  return s;
}

void MmapManager::ImportState(const State& s) {
  std::lock_guard<std::mutex> lock(mu_);
  initialized_ = s.initialized;
  base_ = s.base;
  limit_ = s.limit;
  virgin_base_ = s.virgin_base;
  brk_base_ = s.brk_base;
  brk_cur_ = s.brk_cur;
  brk_limit_ = s.brk_limit;
  used_.clear();
  used_.insert(s.used.begin(), s.used.end());
}

uint64_t MmapManager::bytes_in_use() {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = 0;
  for (const auto& [start, len] : used_) {
    total += len;
  }
  return total;
}

uint64_t MmapManager::Allocate(uint64_t len, uint64_t hint_addr, bool fixed,
                               bool* virgin) {
  std::lock_guard<std::mutex> lock(mu_);
  InitLocked();
  return AllocateLocked(len, hint_addr, fixed, virgin);
}

uint64_t MmapManager::AllocateLocked(uint64_t len, uint64_t hint_addr, bool fixed,
                                     bool* virgin) {
  if (virgin != nullptr) {
    *virgin = false;
  }
  len = PageUp(len);
  if (len == 0 || base_ >= limit_) {
    return 0;
  }
  if (fixed && hint_addr != 0) {
    if (hint_addr % kMmapPageSize != 0 || hint_addr < base_ ||
        hint_addr + len > limit_) {
      return 0;
    }
    // Kernel MAP_FIXED semantics replace existing mappings: release overlap.
    ReleaseLocked(hint_addr, len);
    used_[hint_addr] = len;
    if (!memory_->GrowToCover(hint_addr + len)) {
      used_.erase(hint_addr);
      return 0;
    }
    if (virgin != nullptr) {
      *virgin = hint_addr >= virgin_base_;
    }
    if (hint_addr + len > virgin_base_) {
      virgin_base_ = hint_addr + len;
    }
    return hint_addr;
  }
  // First-fit scan over gaps between used ranges.
  uint64_t cursor = base_;
  for (const auto& [start, used_len] : used_) {
    if (start >= cursor && start - cursor >= len) {
      break;
    }
    if (start + used_len > cursor) {
      cursor = start + used_len;
    }
  }
  if (cursor + len > limit_) {
    return 0;
  }
  if (!memory_->GrowToCover(cursor + len)) {
    return 0;
  }
  used_[cursor] = len;
  if (virgin != nullptr) {
    *virgin = cursor >= virgin_base_;
  }
  if (cursor + len > virgin_base_) {
    virgin_base_ = cursor + len;
  }
  return cursor;
}

bool MmapManager::Release(uint64_t addr, uint64_t len) {
  std::lock_guard<std::mutex> lock(mu_);
  InitLocked();
  return ReleaseLocked(addr, len);
}

bool MmapManager::ReleaseLocked(uint64_t addr, uint64_t len) {
  len = PageUp(len);
  uint64_t end = addr + len;
  bool any = false;
  // Start at the first range that could overlap (the predecessor may spill
  // into [addr, end)).
  auto it = used_.lower_bound(addr);
  if (it != used_.begin()) {
    auto prev = std::prev(it);
    if (prev->first + prev->second > addr) {
      it = prev;
    }
  }
  while (it != used_.end() && it->first < end) {
    uint64_t s = it->first;
    uint64_t e = s + it->second;
    if (e <= addr) {
      ++it;
      continue;
    }
    any = true;
    it = used_.erase(it);
    // Keep the non-overlapping tails mapped.
    if (s < addr) {
      used_[s] = addr - s;
    }
    if (e > end) {
      used_[end] = e - end;
    }
  }
  return any;
}

uint64_t MmapManager::Reallocate(uint64_t old_addr, uint64_t old_len,
                                 uint64_t new_len, bool may_move) {
  std::lock_guard<std::mutex> lock(mu_);
  InitLocked();
  old_len = PageUp(old_len);
  new_len = PageUp(new_len);
  auto it = used_.find(old_addr);
  if (it == used_.end() || it->second < old_len) {
    return 0;
  }
  if (new_len <= old_len) {  // shrink in place
    it->second = new_len;
    ReleaseLocked(old_addr + new_len, old_len - new_len);
    used_[old_addr] = new_len;
    return old_addr;
  }
  // Try growing in place: next used range must not overlap.
  auto next = std::next(it);
  uint64_t room = (next == used_.end() ? limit_ : next->first) - old_addr;
  if (room >= new_len && memory_->GrowToCover(old_addr + new_len)) {
    it->second = new_len;
    return old_addr;
  }
  if (!may_move) {
    return 0;
  }
  uint64_t fresh = AllocateLocked(new_len, 0, false);
  if (fresh == 0) {
    return 0;
  }
  std::memmove(memory_->At(fresh), memory_->At(old_addr), old_len);
  ReleaseLocked(old_addr, old_len);
  return fresh;
}

bool MmapManager::IsMapped(uint64_t addr, uint64_t len) {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t end = addr + PageUp(len);
  uint64_t cursor = addr;
  for (const auto& [s, l] : used_) {
    if (s > cursor) {
      if (cursor < end) return false;
      break;
    }
    if (s + l > cursor) {
      cursor = s + l;
    }
    if (cursor >= end) return true;
  }
  return cursor >= end;
}

uint64_t MmapManager::Brk(uint64_t new_break) {
  std::lock_guard<std::mutex> lock(mu_);
  InitLocked();
  if (brk_base_ == 0) {
    // Heap emulation region: a quarter of the remaining pool, capped at
    // 16 MiB, at least one wasm page.
    uint64_t room = limit_ > base_ ? limit_ - base_ : 0;
    uint64_t want = std::min<uint64_t>(16ULL << 20, room / 4);
    if (want < wasm::kWasmPageSize) {
      want = wasm::kWasmPageSize;
    }
    uint64_t region = AllocateLocked(want, 0, false);
    if (region == 0) {
      return 0;
    }
    brk_base_ = region;
    brk_cur_ = region;
    brk_limit_ = region + want;
  }
  if (new_break == 0) {
    return brk_cur_;
  }
  if (new_break < brk_base_ || new_break > brk_limit_) {
    return brk_cur_;  // kernel brk returns the old break on failure
  }
  if (!memory_->GrowToCover(new_break)) {
    return brk_cur_;
  }
  brk_cur_ = new_break;
  return brk_cur_;
}

}  // namespace wali
