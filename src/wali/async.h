// Async syscall offload seam (the "park at the WALI boundary" path).
//
// A blocking-capable syscall handler that can offload does not block its
// worker thread: it files a PendingIo on the process — a readiness class
// (IoOp) the host's completion loop can wait on without knowing anything
// about WALI or guest memory, plus an optional retry closure that performs
// the real (now ready, so prompt) syscall on a worker thread at resume —
// and the dispatch wrapper unwinds the interpreter with
// wasm::TrapKind::kSyscallPending. The host supervisor registers the IoOp
// with its IoBackend (host::IoReactor, or a deterministic fake in tests),
// parks the job off-worker, and on completion materializes the syscall
// result into the suspended guest frame via WaliRuntime::ResumeMain.
//
// This header is intentionally tiny and dependency-free: it is the whole
// contract between the WALI syscall layer and the host completion loop.
#ifndef SRC_WALI_ASYNC_H_
#define SRC_WALI_ASYNC_H_

#include <cstdint>
#include <functional>
#include <vector>

namespace wali {

// One offloadable blocking operation, as a readiness class. The completion
// loop only ever needs "this fd is readable/writable" or "this much time
// elapsed" — the syscall itself is re-issued by the retry closure once the
// op is ready, so completion loops never touch guest state.
struct IoOp {
  enum class Kind : uint8_t {
    kNone = 0,
    kSleep,     // elapse `sleep_nanos` on the backend's clock
    kReadable,  // wait until `fd` is readable (or error/hup: retry decides)
    kWritable,  // wait until `fd` is writable
    // The syscall already completed and `scripted_result` is its answer;
    // the completion loop resumes with it immediately. Pure data (no retry
    // closure), so scripted parks survive snapshot/restore — the park hook
    // WaliProcess::park_after_syscalls files these for deterministic
    // park-anywhere testing (tests/wasm_snapshot_test.cc).
    kScripted,
    // Wait until ANY entry of `poll_fds` has readiness matching its events
    // mask (poll(2) semantics: error/hup/nval always count, negative fds
    // are skipped). This is the multi-fd AND dual-interest (POLLIN|POLLOUT)
    // op class: the retry re-polls with timeout 0 to materialize revents.
    // Ordered after kScripted so serialized kind values never shift; a
    // kPollSet park always carries a retry closure, so it is never
    // snapshot-eligible and poll_fds needs no serialized form.
    kPollSet,
  };

  // One member of a kPollSet: the fd and its requested events mask, exactly
  // as in struct pollfd (revents are materialized by the retry, never here).
  struct PollFd {
    int fd = -1;
    short events = 0;
  };

  Kind kind = Kind::kNone;
  int fd = -1;              // kReadable / kWritable
  int64_t sleep_nanos = 0;  // kSleep: relative duration
  // kReadable/kWritable: the op's own timeout (poll(2) semantics), relative;
  // < 0 means wait forever. On expiry the op completes kTimedOut and the
  // retry (e.g. poll with timeout 0) yields the syscall's timeout answer.
  int64_t timeout_nanos = -1;
  int64_t scripted_result = 0;  // kScripted: the syscall's known result
  std::vector<PollFd> poll_fds;  // kPollSet: the interest set

  static IoOp Sleep(int64_t nanos) {
    IoOp op;
    op.kind = Kind::kSleep;
    op.sleep_nanos = nanos;
    return op;
  }
  static IoOp Readable(int fd, int64_t timeout_nanos = -1) {
    IoOp op;
    op.kind = Kind::kReadable;
    op.fd = fd;
    op.timeout_nanos = timeout_nanos;
    return op;
  }
  static IoOp Writable(int fd, int64_t timeout_nanos = -1) {
    IoOp op;
    op.kind = Kind::kWritable;
    op.fd = fd;
    op.timeout_nanos = timeout_nanos;
    return op;
  }
  static IoOp Scripted(int64_t result) {
    IoOp op;
    op.kind = Kind::kScripted;
    op.scripted_result = result;
    return op;
  }
  static IoOp PollSet(std::vector<PollFd> fds, int64_t timeout_nanos = -1) {
    IoOp op;
    op.kind = Kind::kPollSet;
    op.poll_fds = std::move(fds);
    op.timeout_nanos = timeout_nanos;
    return op;
  }
};

// The park request one syscall files instead of blocking. Owned by the
// WaliProcess; armed by a handler (via WaliCtx::Park), consumed by the host
// supervisor when the interpreter unwinds with kSyscallPending. At most one
// is armed per process at a time — the main invocation is suspended the
// moment it is filed.
struct PendingIo {
  bool armed = false;
  IoOp op;
  const char* syscall = nullptr;  // registry name, for reports/telemetry
  // Performs the (now ready) syscall at resume, on a worker thread with the
  // process intact; returns the kernel convention (-errno on failure).
  // Null: the completion itself determines the result (sleeps complete with
  // 0; fakes may script any value).
  std::function<int64_t()> retry;

  void Reset() {
    armed = false;
    op = IoOp();
    syscall = nullptr;
    retry = nullptr;
  }
};

}  // namespace wali

#endif  // SRC_WALI_ASYNC_H_
