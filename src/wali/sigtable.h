// Virtual signal table and asynchronous signal plumbing (paper §3.3, Fig. 5).
//
// Lifecycle mirrors the paper: (1) registration — wali_rt_sigaction stores
// the Wasm funcref index in the sigtable and installs a native trampoline;
// (2) generation — the kernel delivers the native signal to the trampoline,
// which (async-signal-safely) sets a pending bit; (3) delivery — the
// interpreter polls pending bits at safepoints; (4) handler execution — the
// engine re-enters the module to run the registered Wasm handler.
#ifndef SRC_WALI_SIGTABLE_H_
#define SRC_WALI_SIGTABLE_H_

#include <atomic>
#include <cstdint>
#include <mutex>

namespace wali {

inline constexpr int kNumSignals = 64;  // 1..64 (rt signals included)

// Virtual handler values matching the kernel ABI.
inline constexpr uint32_t kSigDfl = 0;
inline constexpr uint32_t kSigIgn = 1;

struct SigEntry {
  uint32_t handler = kSigDfl;  // funcref table index, or kSigDfl/kSigIgn
  uint32_t flags = 0;
  uint64_t mask = 0;
  bool registered = false;  // a native trampoline is installed
};

class SigTable {
 public:
  SigTable();
  ~SigTable();

  // Registers `entry` for `signo` (1-based). Installs/uninstalls the native
  // trampoline as needed and writes the previous entry to `old` if non-null.
  // Returns 0 or -errno.
  int SetAction(int signo, const SigEntry& entry, SigEntry* old);
  SigEntry GetAction(int signo);

  // Restores every registered signal to SIG_DFL, unroutes the trampolines,
  // and clears pending bits, the virtual mask, and the delivery counter.
  // Returns the table to its freshly constructed state (pooled slot reuse).
  void Reset();

  // Marks `signo` pending (called from the native trampoline; must stay
  // async-signal-safe: single atomic OR).
  void RaiseVirtual(int signo) {
    pending_.fetch_or(1ULL << (signo - 1), std::memory_order_acq_rel);
  }

  bool AnyPending() const {
    return pending_.load(std::memory_order_acquire) != 0;
  }

  // Atomically takes the deliverable (non-masked) pending set.
  uint64_t TakePending(uint64_t masked);

  // Virtual per-process signal mask (paper: per-LWP masks come free with
  // clone-backed models; our instance-per-thread model keeps one virtual
  // mask per process plus native passthrough).
  uint64_t virtual_mask() const { return sigmask_.load(std::memory_order_acquire); }
  void set_virtual_mask(uint64_t m) { sigmask_.store(m, std::memory_order_release); }

  uint64_t delivered_count() const { return delivered_.load(std::memory_order_relaxed); }
  void count_delivery() { delivered_.fetch_add(1, std::memory_order_relaxed); }

 private:
  std::mutex mu_;
  SigEntry entries_[kNumSignals + 1];
  std::atomic<uint64_t> pending_{0};
  std::atomic<uint64_t> sigmask_{0};
  std::atomic<uint64_t> delivered_{0};
};

// Installs the native trampoline for `signo`, routing to `table`. The global
// signo->SigTable registry reflects the paper's 1-to-1 process model: one
// WALI process per native process; the most recent registration wins.
int InstallNativeTrampoline(int signo, SigTable* table);
int RestoreNativeDisposition(int signo, uint32_t disposition);

}  // namespace wali

#endif  // SRC_WALI_SIGTABLE_H_
