// Syscall tracing and per-layer time attribution (Fig. 2 profile data,
// Fig. 7 runtime breakdown, WALI_VERBOSE-style diagnostics).
#ifndef SRC_WALI_TRACE_H_
#define SRC_WALI_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace wali {

inline constexpr size_t kMaxTracedSyscalls = 256;

class SyscallTrace {
 public:
  void Count(uint32_t syscall_id) {
    if (syscall_id < kMaxTracedSyscalls) {
      counts_[syscall_id].fetch_add(1, std::memory_order_relaxed);
    }
  }
  void AddWaliNanos(int64_t ns) { wali_ns_.fetch_add(ns, std::memory_order_relaxed); }
  void AddKernelNanos(int64_t ns) { kernel_ns_.fetch_add(ns, std::memory_order_relaxed); }

  uint64_t count(uint32_t syscall_id) const {
    return syscall_id < kMaxTracedSyscalls
               ? counts_[syscall_id].load(std::memory_order_relaxed)
               : 0;
  }
  uint64_t total_calls() const {
    uint64_t sum = 0;
    for (const auto& c : counts_) sum += c.load(std::memory_order_relaxed);
    return sum;
  }
  // Time spent inside WALI handlers, exclusive of the nested kernel time.
  int64_t wali_nanos() const {
    return wali_ns_.load(std::memory_order_relaxed) -
           kernel_ns_.load(std::memory_order_relaxed);
  }
  int64_t kernel_nanos() const { return kernel_ns_.load(std::memory_order_relaxed); }

  void Reset() {
    for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
    wali_ns_.store(0, std::memory_order_relaxed);
    kernel_ns_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> counts_[kMaxTracedSyscalls] = {};
  std::atomic<int64_t> wali_ns_{0};
  std::atomic<int64_t> kernel_ns_{0};
};

}  // namespace wali

#endif  // SRC_WALI_TRACE_H_
