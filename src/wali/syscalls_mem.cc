// Memory-management syscalls (paper §3.2): mmap/munmap/mremap fully inside
// the Wasm sandbox via the MmapManager pool, file maps MAP_FIXED into linear
// memory (zero-copy), brk emulated over the pool.
#include <errno.h>
#include <sys/mman.h>
#include <sys/syscall.h>

#include "src/wali/runtime.h"

namespace wali {

namespace {

constexpr uint64_t kPageMask = kMmapPageSize - 1;

int64_t SysMmap(WaliCtx& c, const int64_t* a) {
  uint64_t addr = static_cast<uint64_t>(a[0]);
  uint64_t len = static_cast<uint64_t>(a[1]);
  int prot = static_cast<int>(a[2]);
  int flags = static_cast<int>(a[3]);
  int fd = static_cast<int>(a[4]);
  int64_t offset = a[5];
  if (len == 0 || (addr & kPageMask) != 0 || (offset & kPageMask) != 0) {
    return -EINVAL;
  }
  if ((prot & PROT_EXEC) != 0) {
    return -EPERM;  // code injection impossible by construction (§3.6)
  }
  bool fixed = (flags & MAP_FIXED) != 0;
  bool virgin = false;
  uint64_t got = c.proc.mmap.Allocate(len, addr, fixed, &virgin);
  if (got == 0) {
    return -ENOMEM;
  }
  if ((flags & MAP_ANONYMOUS) != 0 || fd < 0) {
    // Reused pool ranges may hold stale bytes; freshly committed ranges are
    // already zero and skip the re-mapping.
    if (!virgin) {
      int rc = c.mem.UnmapFixed(got, (len + kPageMask) & ~kPageMask);
      if (rc != 0) {
        c.proc.mmap.Release(got, len);
        return -rc;
      }
    }
    return static_cast<int64_t>(got);
  }
  int host_flags = (flags & (MAP_SHARED | MAP_PRIVATE)) | MAP_FIXED;
  int rc = c.mem.MapFileFixed(got, len, prot, host_flags, fd, offset);
  if (rc != 0) {
    c.proc.mmap.Release(got, len);
    return -rc;
  }
  return static_cast<int64_t>(got);
}

int64_t SysMunmap(WaliCtx& c, const int64_t* a) {
  uint64_t addr = static_cast<uint64_t>(a[0]);
  uint64_t len = static_cast<uint64_t>(a[1]);
  if ((addr & kPageMask) != 0 || len == 0) {
    return -EINVAL;
  }
  if (addr < c.proc.mmap.pool_base()) {
    return -EINVAL;  // never unmap module data/stack below the pool
  }
  c.proc.mmap.Release(addr, len);
  // Replace with zero pages so stale sandboxed reads see zeros, not the old
  // mapping (passthrough munmap would leave a fault-on-touch hole).
  int rc = c.mem.UnmapFixed(addr, (len + kPageMask) & ~kPageMask);
  return rc == 0 ? 0 : -rc;
}

int64_t SysMremap(WaliCtx& c, const int64_t* a) {
  uint64_t old_addr = static_cast<uint64_t>(a[0]);
  uint64_t old_len = static_cast<uint64_t>(a[1]);
  uint64_t new_len = static_cast<uint64_t>(a[2]);
  int flags = static_cast<int>(a[3]);
  if ((old_addr & kPageMask) != 0 || new_len == 0) {
    return -EINVAL;
  }
  uint64_t got =
      c.proc.mmap.Reallocate(old_addr, old_len, new_len, (flags & MREMAP_MAYMOVE) != 0);
  if (got == 0) {
    return -ENOMEM;
  }
  return static_cast<int64_t>(got);
}

int64_t SysMprotect(WaliCtx& c, const int64_t* a) {
  uint64_t addr = static_cast<uint64_t>(a[0]);
  uint64_t len = static_cast<uint64_t>(a[1]);
  int prot = static_cast<int>(a[2]);
  if ((addr & kPageMask) != 0) {
    return -EINVAL;
  }
  if ((prot & PROT_EXEC) != 0) {
    return -EPERM;
  }
  if (!c.mem.InBounds(addr, len)) {
    return -ENOMEM;
  }
  // The sandbox keeps pages readable+writable so interpreter accesses can
  // never fault the engine; permission *restrictions* are recorded as a
  // no-op (documented deviation — a fault-to-trap engine would pass through).
  if ((prot & (PROT_READ | PROT_WRITE)) == (PROT_READ | PROT_WRITE)) {
    int rc = c.mem.ProtectFixed(addr, len, prot);
    return rc == 0 ? 0 : -rc;
  }
  return 0;
}

int64_t SysMadvise(WaliCtx& c, const int64_t* a) {
  uint64_t addr = static_cast<uint64_t>(a[0]);
  uint64_t len = static_cast<uint64_t>(a[1]);
  if (!c.mem.InBounds(addr, len)) {
    return -ENOMEM;
  }
  return c.Raw(SYS_madvise, reinterpret_cast<long>(c.mem.At(addr)), len, a[2]);
}

int64_t SysBrk(WaliCtx& c, const int64_t* a) {
  uint64_t r = c.proc.mmap.Brk(static_cast<uint64_t>(a[0]));
  return r != 0 ? static_cast<int64_t>(r) : -ENOMEM;
}

int64_t SysMsync(WaliCtx& c, const int64_t* a) {
  uint64_t addr = static_cast<uint64_t>(a[0]);
  uint64_t len = static_cast<uint64_t>(a[1]);
  if (!c.mem.InBounds(addr, len)) {
    return -ENOMEM;
  }
  return c.Raw(SYS_msync, reinterpret_cast<long>(c.mem.At(addr)), len, a[2]);
}

int64_t SysMlock(WaliCtx& c, const int64_t* a) {
  uint64_t addr = static_cast<uint64_t>(a[0]);
  uint64_t len = static_cast<uint64_t>(a[1]);
  if (!c.mem.InBounds(addr, len)) {
    return -ENOMEM;
  }
  return c.Raw(SYS_mlock, reinterpret_cast<long>(c.mem.At(addr)), len);
}

int64_t SysMunlock(WaliCtx& c, const int64_t* a) {
  uint64_t addr = static_cast<uint64_t>(a[0]);
  uint64_t len = static_cast<uint64_t>(a[1]);
  if (!c.mem.InBounds(addr, len)) {
    return -ENOMEM;
  }
  return c.Raw(SYS_munlock, reinterpret_cast<long>(c.mem.At(addr)), len);
}

int64_t SysMincore(WaliCtx& c, const int64_t* a) {
  uint64_t addr = static_cast<uint64_t>(a[0]);
  uint64_t len = static_cast<uint64_t>(a[1]);
  uint64_t pages = (len + kPageMask) / kMmapPageSize;
  if (!c.mem.InBounds(addr, len)) {
    return -ENOMEM;
  }
  void* vec = c.Ptr(a[2], pages);
  if (vec == nullptr) {
    return -EFAULT;
  }
  return c.Raw(SYS_mincore, reinterpret_cast<long>(c.mem.At(addr)), len,
               reinterpret_cast<long>(vec));
}

// process_vm_{read,write}v: §3.6 — mappings are sandboxed, so cross-process
// address-space access is refused outright.
int64_t SysProcessVmReadv(WaliCtx& c, const int64_t* a) { return -EPERM; }
int64_t SysProcessVmWritev(WaliCtx& c, const int64_t* a) { return -EPERM; }

}  // namespace

void RegisterMemSyscalls(std::vector<SyscallDef>& defs) {
  defs.insert(defs.end(), {
      {"mmap", 6, SysMmap, true, 30},
      {"munmap", 2, SysMunmap, true, 12},
      {"mremap", 5, SysMremap, true, 14},
      {"mprotect", 3, SysMprotect, false, 4},
      {"madvise", 3, SysMadvise, false, 4},
      {"brk", 1, SysBrk, true, 8},
      {"msync", 3, SysMsync, false, 4},
      {"mlock", 2, SysMlock, false, 3},
      {"munlock", 2, SysMunlock, false, 3},
      {"mincore", 3, SysMincore, false, 8},
      {"process_vm_readv", 6, SysProcessVmReadv, false, 1},
      {"process_vm_writev", 6, SysProcessVmWritev, false, 1},
  });
}

}  // namespace wali
