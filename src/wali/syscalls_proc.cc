// Process/thread/identity syscalls (paper §3.1: 1-to-1 model; fork and wait4
// are passthrough, clone spawns an instance-per-thread native thread).
#include <errno.h>
#include <sched.h>
#include <sys/resource.h>
#include <sys/syscall.h>
#include <sys/sysinfo.h>
#include <sys/utsname.h>
#include <unistd.h>

#include <cstring>
#include <string>
#include <vector>

#include "src/abi/layout.h"
#include "src/wali/runtime.h"

namespace wali {

namespace {

int64_t SysGetpid(WaliCtx& c, const int64_t* a) { return c.Raw(SYS_getpid); }
int64_t SysGetppid(WaliCtx& c, const int64_t* a) { return c.Raw(SYS_getppid); }
int64_t SysGettid(WaliCtx& c, const int64_t* a) { return c.Raw(SYS_gettid); }
int64_t SysGetuid(WaliCtx& c, const int64_t* a) { return c.Raw(SYS_getuid); }
int64_t SysGeteuid(WaliCtx& c, const int64_t* a) { return c.Raw(SYS_geteuid); }
int64_t SysGetgid(WaliCtx& c, const int64_t* a) { return c.Raw(SYS_getgid); }
int64_t SysGetegid(WaliCtx& c, const int64_t* a) { return c.Raw(SYS_getegid); }
int64_t SysSetsid(WaliCtx& c, const int64_t* a) { return c.Raw(SYS_setsid); }
int64_t SysGetsid(WaliCtx& c, const int64_t* a) { return c.Raw(SYS_getsid, a[0]); }
int64_t SysGetpgid(WaliCtx& c, const int64_t* a) { return c.Raw(SYS_getpgid, a[0]); }
int64_t SysSetpgid(WaliCtx& c, const int64_t* a) {
  return c.Raw(SYS_setpgid, a[0], a[1]);
}
int64_t SysSchedYield(WaliCtx& c, const int64_t* a) { return c.Raw(SYS_sched_yield); }

int64_t SysSchedGetaffinity(WaliCtx& c, const int64_t* a) {
  void* mask = c.Ptr(a[2], a[1]);
  if (mask == nullptr) return -EFAULT;
  return c.Raw(SYS_sched_getaffinity, a[0], a[1], reinterpret_cast<long>(mask));
}

int64_t SysGetrusage(WaliCtx& c, const int64_t* a) {
  // struct rusage is all-long on LP64: zero-copy for a 64-bit guest view.
  void* ru = c.Ptr(a[1], sizeof(struct rusage));
  if (ru == nullptr) return -EFAULT;
  return c.Raw(SYS_getrusage, a[0], reinterpret_cast<long>(ru));
}

int64_t SysPrlimit64(WaliCtx& c, const int64_t* a) {
  long new_ptr = 0, old_ptr = 0;
  if (a[2] != 0) {
    void* p = c.Ptr(a[2], 16);
    if (p == nullptr) return -EFAULT;
    new_ptr = reinterpret_cast<long>(p);
  }
  if (a[3] != 0) {
    void* p = c.Ptr(a[3], 16);
    if (p == nullptr) return -EFAULT;
    old_ptr = reinterpret_cast<long>(p);
  }
  return c.Raw(SYS_prlimit64, a[0], a[1], new_ptr, old_ptr);
}

int64_t SysGetrlimit(WaliCtx& c, const int64_t* a) {
  void* p = c.Ptr(a[1], 16);
  if (p == nullptr) return -EFAULT;
  return c.Raw(SYS_prlimit64, 0, a[0], 0, reinterpret_cast<long>(p));
}

int64_t SysSetrlimit(WaliCtx& c, const int64_t* a) {
  void* p = c.Ptr(a[1], 16);
  if (p == nullptr) return -EFAULT;
  return c.Raw(SYS_prlimit64, 0, a[0], reinterpret_cast<long>(p), 0);
}

int64_t SysSysinfo(WaliCtx& c, const int64_t* a) {
  struct sysinfo si;
  int64_t r = c.Raw(SYS_sysinfo, reinterpret_cast<long>(&si));
  if (r < 0) return r;
  auto* out = c.TypedPtr<wabi::WaliSysinfo>(a[0]);
  if (out == nullptr) return -EFAULT;
  out->uptime = si.uptime;
  out->totalram = si.totalram;
  out->freeram = si.freeram;
  out->procs = si.procs;
  return 0;
}

int64_t SysUname(WaliCtx& c, const int64_t* a) {
  struct utsname un;
  int64_t r = c.Raw(SYS_uname, reinterpret_cast<long>(&un));
  if (r < 0) return r;
  void* out = c.Ptr(a[0], sizeof(un));
  if (out == nullptr) return -EFAULT;
  std::memcpy(out, &un, sizeof(un));
  // WALI reports the virtual machine ISA, not the host's (§3.5).
  struct utsname* guest = static_cast<struct utsname*>(out);
  std::strncpy(guest->machine, "wasm32", sizeof(guest->machine) - 1);
  return 0;
}

int64_t SysExit(WaliCtx& c, const int64_t* a) {
  // Thread exit: unwind this interpreter only.
  c.exec.RequestExit(static_cast<int32_t>(a[0]));
  return 0;
}

int64_t SysExitGroup(WaliCtx& c, const int64_t* a) {
  // Process exit: sibling threads observe exit_all at their next safepoint.
  c.proc.RequestExitAll(static_cast<int32_t>(a[0]));
  c.exec.RequestExit(static_cast<int32_t>(a[0]));
  return 0;
}

int64_t SysWait4(WaliCtx& c, const int64_t* a) {
  long status_ptr = 0, rusage_ptr = 0;
  if (a[1] != 0) {
    void* p = c.Ptr(a[1], 4);
    if (p == nullptr) return -EFAULT;
    status_ptr = reinterpret_cast<long>(p);
  }
  if (a[3] != 0) {
    void* p = c.Ptr(a[3], sizeof(struct rusage));
    if (p == nullptr) return -EFAULT;
    rusage_ptr = reinterpret_cast<long>(p);
  }
  return c.Raw(SYS_wait4, a[0], status_ptr, a[2], rusage_ptr);
}

int64_t SysFork(WaliCtx& c, const int64_t* a) {
  // 1-to-1 model: plain passthrough. The interpreter state is ordinary
  // process memory, so the child resumes exactly here with return value 0.
  return c.Raw(SYS_fork);
}

// Reads a guest NULL-terminated array of wasm32 string pointers.
int ReadStringArray(const WaliCtx& c, uint64_t addr, std::vector<std::string>* out) {
  constexpr int kMaxEntries = 1024;
  for (int i = 0; i < kMaxEntries; ++i) {
    const auto* slot = static_cast<const uint32_t*>(c.Ptr(addr + 4ull * i, 4));
    if (slot == nullptr) return -EFAULT;
    if (*slot == 0) return 0;
    std::string s;
    if (!c.GetStr(*slot, &s)) return -EFAULT;
    out->push_back(std::move(s));
  }
  return -E2BIG;
}

int64_t SysExecve(WaliCtx& c, const int64_t* a) {
  std::string path;
  if (!c.GetStr(a[0], &path)) return -EFAULT;
  if (!PathAllowed(path)) return -EACCES;
  std::vector<std::string> argv, envp;
  if (a[1] != 0) {
    int rc = ReadStringArray(c, a[1], &argv);
    if (rc != 0) return rc;
  }
  if (a[2] != 0) {
    int rc = ReadStringArray(c, a[2], &envp);
    if (rc != 0) return rc;
  }
  std::vector<char*> cargv, cenv;
  for (auto& s : argv) cargv.push_back(s.data());
  cargv.push_back(nullptr);
  for (auto& s : envp) cenv.push_back(s.data());
  cenv.push_back(nullptr);
  ::execve(path.c_str(), cargv.data(), cenv.data());
  return -errno;
}

int64_t SysClone(WaliCtx& c, const int64_t* a) {
  uint64_t flags = static_cast<uint64_t>(a[0]);
  if ((flags & CLONE_VM) == 0) {
    // Non-shared-memory clone is fork(2) territory; WALI exposes SYS_fork.
    return -ENOSYS;
  }
  // WALI thread ABI: clone(flags, entry_funcref, arg, ptid, ctid). The entry
  // is an index into the module's function table with signature (i32)->i32.
  return c.proc.SpawnThread(static_cast<uint32_t>(a[1]), static_cast<uint64_t>(a[2]),
                            flags, static_cast<uint64_t>(a[3]),
                            static_cast<uint64_t>(a[4]));
}

int64_t SysSetTidAddress(WaliCtx& c, const int64_t* a) {
  c.proc.clear_child_tid.store(static_cast<uint64_t>(a[0]), std::memory_order_release);
  return c.Raw(SYS_gettid);
}

int64_t SysGetcpu(WaliCtx& c, const int64_t* a) {
  long cpu_ptr = 0, node_ptr = 0;
  if (a[0] != 0) {
    void* p = c.Ptr(a[0], 4);
    if (p == nullptr) return -EFAULT;
    cpu_ptr = reinterpret_cast<long>(p);
  }
  if (a[1] != 0) {
    void* p = c.Ptr(a[1], 4);
    if (p == nullptr) return -EFAULT;
    node_ptr = reinterpret_cast<long>(p);
  }
  return c.Raw(SYS_getcpu, cpu_ptr, node_ptr, 0);
}

int64_t SysGetgroups(WaliCtx& c, const int64_t* a) {
  void* list = a[1] != 0 ? c.Ptr(a[1], 4 * static_cast<uint64_t>(a[0])) : nullptr;
  if (a[0] != 0 && list == nullptr) return -EFAULT;
  return c.Raw(SYS_getgroups, a[0], reinterpret_cast<long>(list));
}

int64_t SysPrctl(WaliCtx& c, const int64_t* a) {
  // Only value-based prctl options pass through; pointer options would need
  // per-option translation and are rejected.
  switch (a[0]) {
    case 3 /*PR_GET_DUMPABLE*/:
    case 4 /*PR_SET_DUMPABLE*/:
    case 38 /*PR_SET_NO_NEW_PRIVS*/:
    case 39 /*PR_GET_NO_NEW_PRIVS*/:
      return c.Raw(SYS_prctl, a[0], a[1], a[2], a[3], a[4]);
    default:
      return -EINVAL;
  }
}

}  // namespace

void RegisterProcSyscalls(std::vector<SyscallDef>& defs) {
  defs.insert(defs.end(), {
      {"getpid", 0, SysGetpid, false, 1},
      {"getppid", 0, SysGetppid, false, 1},
      {"gettid", 0, SysGettid, false, 1},
      {"getuid", 0, SysGetuid, false, 1},
      {"geteuid", 0, SysGeteuid, false, 1},
      {"getgid", 0, SysGetgid, false, 1},
      {"getegid", 0, SysGetegid, false, 1},
      {"setsid", 0, SysSetsid, false, 1},
      {"getsid", 1, SysGetsid, false, 1},
      {"getpgid", 1, SysGetpgid, false, 1},
      {"setpgid", 2, SysSetpgid, false, 1},
      {"sched_yield", 0, SysSchedYield, false, 1},
      {"sched_getaffinity", 3, SysSchedGetaffinity, false, 4},
      {"getrusage", 2, SysGetrusage, false, 5},
      {"prlimit64", 4, SysPrlimit64, false, 5},
      {"getrlimit", 2, SysGetrlimit, false, 4},
      {"setrlimit", 2, SysSetrlimit, false, 4},
      {"sysinfo", 1, SysSysinfo, false, 10},
      {"uname", 1, SysUname, false, 10},
      {"exit", 1, SysExit, true, 2},
      {"exit_group", 1, SysExitGroup, true, 3},
      {"wait4", 4, SysWait4, false, 10},
      {"fork", 0, SysFork, false, 1},
      {"execve", 3, SysExecve, false, 25},
      {"clone", 5, SysClone, true, 100},
      {"set_tid_address", 1, SysSetTidAddress, true, 3},
      {"getcpu", 3, SysGetcpu, false, 8},
      {"getgroups", 2, SysGetgroups, false, 4},
      {"prctl", 5, SysPrctl, false, 10},
  });
}

}  // namespace wali
