// WaliRuntime: registers the `wali` import namespace on a Linker and owns
// the name-bound syscall registry (paper §3.5). Each syscall is a host
// function `("wali", "SYS_<name>")` with the uniform signature
// (i64 x nargs) -> i64, returning the kernel convention (-errno on failure).
#ifndef SRC_WALI_RUNTIME_H_
#define SRC_WALI_RUNTIME_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/time_util.h"
#include "src/wali/process.h"
#include "src/wasm/wasm.h"

namespace wabi {
struct WaliTimespec;  // src/abi/layout.h; only referenced, never stored
}

namespace wali {

class WaliRuntime;

// Per-call context handed to syscall handlers: address-space translation
// (§3.2), raw-syscall passthrough with kernel-time attribution, and access
// to the owning process.
struct WaliCtx {
  wasm::ExecContext& exec;
  WaliProcess& proc;
  wasm::Memory& mem;
  WaliRuntime& rt;

  // Bounds-checked wasm->host pointer translation; nullptr on fault
  // (handlers then return -EFAULT, mirroring the kernel).
  void* Ptr(uint64_t addr, uint64_t len) const {
    if (!mem.InBounds(addr, len)) {
      return nullptr;
    }
    return mem.At(addr);
  }
  template <typename T>
  T* TypedPtr(uint64_t addr) const {
    return static_cast<T*>(Ptr(addr, sizeof(T)));
  }

  // Reads a NUL-terminated guest string (bounded).
  bool GetStr(uint64_t addr, std::string* out) const;

  // Timed raw syscall passthrough (kernel time accounted for Fig. 7).
  int64_t Raw(long number, long a0 = 0, long a1 = 0, long a2 = 0, long a3 = 0,
              long a4 = 0, long a5 = 0) const;

  // True when this invocation may park at the syscall boundary instead of
  // blocking: the host entered it resumably (ExecOptions::suspend_to) and
  // no park request is already armed. Guest threads and signal-handler
  // re-entries always see false and take the blocking path.
  bool CanOffload() const {
    return exec.opts.suspend_to != nullptr && !proc.pending_io.armed;
  }
  // Files a park request (see src/wali/async.h): the dispatch wrapper turns
  // it into kSyscallPending and the handler's return value is ignored. Only
  // call when CanOffload().
  void Park(IoOp op, std::function<int64_t()> retry,
            const char* syscall_name = nullptr) const {
    proc.pending_io.armed = true;
    proc.pending_io.op = op;
    proc.pending_io.syscall = syscall_name;
    proc.pending_io.retry = std::move(retry);
  }
};

using SyscallHandler = int64_t (*)(WaliCtx&, const int64_t*);

struct SyscallDef {
  const char* name;
  int nargs;
  SyscallHandler fn;
  bool stateful;     // maintains engine-side state (Table 2 "State" column)
  int loc_estimate;  // implementation size (Table 2 "LOC" column)
};

class WaliRuntime {
 public:
  struct Options {
    wasm::SafepointScheme scheme = wasm::SafepointScheme::kLoop;
    bool attribute_time = true;  // per-layer timing (small clock overhead)
    uint32_t max_frames = 4096;
    uint64_t fuel = 0;
    // Interpreter dispatch (walirun --dispatch): kAuto = threaded when built
    // in, except under the kEveryInstr scheme (switch slow path).
    wasm::DispatchMode dispatch = wasm::DispatchMode::kAuto;
    // Baseline-JIT tier (walirun --jit): kAuto = on when built in and the
    // threaded loop is selected; kOff pins every run to the interpreter.
    wasm::JitTier jit = wasm::JitTier::kAuto;
    uint32_t jit_threshold = 16;  // frame entries/back-edges before tier-up
  };

  // Registers all host functions on `linker`; the linker must outlive the
  // runtime and all instances.
  explicit WaliRuntime(wasm::Linker* linker);
  WaliRuntime(wasm::Linker* linker, const Options& options);

  // Instantiates `module` as a new WALI process with the given parameters.
  common::StatusOr<std::unique_ptr<WaliProcess>> CreateProcess(
      std::shared_ptr<const wasm::Module> module, std::vector<std::string> argv,
      std::vector<std::string> env);

  // Recycles `process` for a fresh run of `module` without reallocating its
  // linear-memory slab: resets all engine-side process state, zeroes and
  // truncates the memory back to the module's declared min pages, and
  // re-instantiates into it (data segments re-applied). The module must fit
  // the slab's reservation. This is the pooled fast path used by
  // host::InstancePool; CreateProcess is the cold path.
  common::Status ResetProcess(WaliProcess& process,
                              std::shared_ptr<const wasm::Module> module,
                              std::vector<std::string> argv,
                              std::vector<std::string> env);

  // A main run parked at a syscall boundary: everything needed to continue
  // it once the blocking operation completes. Owned by the host layer (the
  // supervisor keeps one per parked job); the underlying wasm::Suspension
  // pins the process's instance and recycled exec buffers, so it must be
  // resumed or discarded before the process slot is recycled.
  struct MainContinuation {
    wasm::Suspension susp;
    uint64_t start_instrs = 0;   // fuel the deferred (start) burned
    bool entry_is_main = false;  // exit code comes from main's i32 result

    bool armed() const { return susp.armed(); }
    void Discard() {
      susp.Discard();
      start_instrs = 0;
      entry_is_main = false;
    }
  };

  // Runs the process entry point: exported `_start` ()->() if present, else
  // `main` ()->i32. SYS_exit(_group) surfaces as trap==kExit with the code.
  wasm::RunResult RunMain(WaliProcess& process);
  // Same, with per-run execution limits (per-tenant fuel / frame caps).
  wasm::RunResult RunMain(WaliProcess& process, const wasm::ExecOptions& opts);
  // Same, resumable: a blocking-capable syscall may park instead of
  // blocking, returning trap == kSyscallPending with `*cont` armed and the
  // park request in process.pending_io. The caller registers the op with
  // its completion loop and calls ResumeMain once the result is known.
  // A null `cont` is the synchronous overload. The deferred (start)
  // function always runs synchronously — only the entry call can park.
  wasm::RunResult RunMain(WaliProcess& process, const wasm::ExecOptions& opts,
                          MainContinuation* cont);
  // Continues a parked main run with the suspended syscall's result
  // (kernel convention). May park again (kSyscallPending, `cont` re-armed);
  // any other return is final, with executed_instrs / fuel / exit-code
  // semantics bit-identical to an uninterrupted RunMain.
  wasm::RunResult ResumeMain(WaliProcess& process, MainContinuation& cont,
                             int64_t syscall_result);

  const std::vector<SyscallDef>& syscalls() const { return defs_; }
  int SyscallId(const std::string& name) const;
  wasm::Linker* linker() { return linker_; }
  const Options& options() const { return options_; }
  wasm::ExecOptions exec_options() const;

 private:
  // How a syscall affects the process's host-fd set; applied centrally in
  // the dispatch wrapper so pooled slots can close tenant leftovers.
  // pipe/pipe2/socketpair track their fd pairs inside the handlers (from a
  // host-side buffer a sibling guest thread cannot race on), so the dispatch
  // layer only handles single-fd results.
  enum class FdEffect : uint8_t {
    kNone = 0,
    kMintsFd,   // successful result is a new fd (open, dup, socket, ...)
    kClosesFd,  // arg0 fd is freed by the kernel even when close(2) errors
    kFcntl,     // mints only for F_DUPFD / F_DUPFD_CLOEXEC
    kIoctl,     // FIONBIO flips O_NONBLOCK: offload cache must hear it
  };

  void RegisterAll();
  void RegisterSupportMethods();
  void ApplyFdEffect(WaliProcess& proc, size_t id, const uint64_t* args,
                     int64_t ret) const;

  wasm::Linker* linker_;
  Options options_;
  std::vector<SyscallDef> defs_;
  std::map<std::string, int> ids_;
  std::vector<FdEffect> fd_effects_;
};

// Async-offload helpers shared by the syscall groups.
//
// True for fd types whose read/write/accept can block indefinitely (pipes,
// FIFOs, sockets, character devices such as ttys); regular files and
// directories return false and take the synchronous thin-interface path —
// page-cache I/O is the fast path the paper's design optimizes for, and
// offloading it would only add completion-loop latency. This is the UNCACHED
// classification (one fstat + one fcntl); dispatch-path callers go through
// WaliProcess::OffloadableCached, which memoizes it per fd and is
// invalidated on close/dup2/dup3/fcntl(F_SETFL)/ioctl(FIONBIO) and slot
// recycling.
bool OffloadableFd(int fd);

// Raw syscall with kernel-time attribution for resume-time retry closures,
// which run on a worker thread after the original ExecContext (and thus
// WaliCtx::Raw) is gone. Returns the kernel convention (-errno on failure).
int64_t RetryRaw(WaliProcess& proc, long number, long a0 = 0, long a1 = 0,
                 long a2 = 0, long a3 = 0, long a4 = 0, long a5 = 0);

// Validates a guest timespec and flattens it to nanoseconds (kernel
// nanosleep rules: negative seconds or out-of-range nanos are EINVAL,
// reported as `false`; overlong durations saturate to INT64_MAX). Shared by
// every offload gate that converts a guest-relative timeout — nanosleep,
// clock_nanosleep, ppoll, futex. Defined in syscalls_time.cc.
bool SleepDurationNanos(const wabi::WaliTimespec& ts, int64_t* out);

// Registry population, grouped by subsystem (one .cc per group).
void RegisterFsSyscalls(std::vector<SyscallDef>& defs);
void RegisterMemSyscalls(std::vector<SyscallDef>& defs);
void RegisterProcSyscalls(std::vector<SyscallDef>& defs);
void RegisterSignalSyscalls(std::vector<SyscallDef>& defs);
void RegisterNetSyscalls(std::vector<SyscallDef>& defs);
void RegisterTimeSyscalls(std::vector<SyscallDef>& defs);
void RegisterMiscSyscalls(std::vector<SyscallDef>& defs);

// Security interposition (paper §3.6): rejects sandbox-escaping paths such
// as /proc/<pid>/mem and /proc/self/mem. Paths are lexically normalized
// (`.`/`..`/`//` collapsed) before matching, so spellings like
// /proc/self/../self/mem cannot bypass the filter; relative paths are
// anchored at the current working directory first, so ../../proc/self/mem
// is caught too. When a relative path is allowed, `resolved` (if non-null)
// receives the check-time absolute form; callers must pass THAT to the
// kernel, or a sibling guest thread can chdir between check and use and
// re-point the relative path at a blocked target.
bool PathAllowed(const std::string& path, std::string* resolved = nullptr);

// Same check for dirfd-relative syscalls (openat): a relative `path` is
// anchored at the directory `dirfd` refers to (resolved via /proc/self/fd),
// closing the open("/proc/self") + openat(fd, "mem") two-step. `resolved`
// works as in PathAllowed (and also guards against dup2 swapping the dirfd
// between check and use).
bool PathAllowedAt(int64_t dirfd, const std::string& path,
                   std::string* resolved = nullptr);

// Lexical path normalization used by PathAllowed (exposed for tests):
// collapses empty and `.` segments and resolves `..` against the prefix.
// `..` at the root of an absolute path stays at the root, as in the kernel.
std::string NormalizePath(const std::string& path);

}  // namespace wali

#endif  // SRC_WALI_RUNTIME_H_
