#include "src/wali/policy.h"

namespace wali {

void SyscallPolicy::SetDefault(Action action, int deny_errno) {
  std::lock_guard<std::mutex> lock(mu_);
  default_action_ = action;
  default_errno_ = deny_errno;
}

void SyscallPolicy::SetRule(const std::string& name, const Rule& rule) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& state = states_[name];
  if (state == nullptr) {
    state = std::make_unique<State>();
  }
  state->rule = rule;
}

SyscallPolicy::Decision SyscallPolicy::Evaluate(const std::string& name) {
  State* state = nullptr;
  Action default_action;
  int default_errno;
  {
    std::lock_guard<std::mutex> lock(mu_);
    default_action = default_action_;
    default_errno = default_errno_;
    auto it = states_.find(name);
    if (it == states_.end()) {
      // Lazily create a counter slot so the audit log is complete even for
      // default-action syscalls.
      auto& slot = states_[name];
      slot = std::make_unique<State>();
      slot->rule.action = default_action;
      slot->rule.deny_errno = default_errno;
      state = slot.get();
    } else {
      state = it->second.get();
    }
  }
  uint64_t n = state->calls.fetch_add(1, std::memory_order_relaxed) + 1;
  Decision d{state->rule.action, state->rule.deny_errno, false};
  if (d.action != Action::kAllow) {
    state->denials.fetch_add(1, std::memory_order_relaxed);
    return d;
  }
  if (state->rule.fault_every != 0 && n % state->rule.fault_every == 0) {
    d.inject_fault = true;
    d.err = state->rule.fault_errno;
    state->denials.fetch_add(1, std::memory_order_relaxed);
  }
  return d;
}

uint64_t SyscallPolicy::calls(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = states_.find(name);
  return it == states_.end() ? 0 : it->second->calls.load(std::memory_order_relaxed);
}

uint64_t SyscallPolicy::denials(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = states_.find(name);
  return it == states_.end() ? 0 : it->second->denials.load(std::memory_order_relaxed);
}

std::vector<std::pair<std::string, uint64_t>> SyscallPolicy::AuditLog() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, uint64_t>> out;
  for (const auto& [name, state] : states_) {
    out.emplace_back(name, state->calls.load(std::memory_order_relaxed));
  }
  return out;
}

}  // namespace wali
