// Socket syscalls: sockaddr buffers are opaque byte blobs with identical
// layout on all Linux ISAs, so everything here is zero-copy passthrough
// after translation. msghdr is rebuilt from the guest's wasm32 layout.
#include <errno.h>
#include <fcntl.h>
#include <sys/socket.h>
#include <sys/syscall.h>

#include <cstring>

#include "src/wali/runtime.h"

namespace wali {

namespace {

int64_t SysSocket(WaliCtx& c, const int64_t* a) {
  return c.Raw(SYS_socket, a[0], a[1], a[2]);
}

int64_t SysSocketpair(WaliCtx& c, const int64_t* a) {
  void* sv = c.Ptr(a[3], 8);
  if (sv == nullptr) return -EFAULT;
  // Host-side buffer so fd tracking cannot be raced by a sibling guest
  // thread rewriting the pair in linear memory (see PipeCommon).
  int host_sv[2] = {-1, -1};
  int64_t r = c.Raw(SYS_socketpair, a[0], a[1], a[2],
                    reinterpret_cast<long>(host_sv));
  if (r >= 0) {
    c.proc.TrackFd(host_sv[0]);
    c.proc.TrackFd(host_sv[1]);
    std::memcpy(sv, host_sv, sizeof(host_sv));
  }
  return r;
}

int64_t SysBind(WaliCtx& c, const int64_t* a) {
  const void* addr = c.Ptr(a[1], a[2]);
  if (addr == nullptr) return -EFAULT;
  return c.Raw(SYS_bind, a[0], reinterpret_cast<long>(addr), a[2]);
}

int64_t SysListen(WaliCtx& c, const int64_t* a) {
  return c.Raw(SYS_listen, a[0], a[1]);
}

// accept/getsockname-style calls take a value-result u32 length pointer.
int64_t AddrLenCall(WaliCtx& c, long nr, int64_t fd, int64_t addr, int64_t lenp,
                    int64_t flags = 0, bool has_flags = false) {
  long addr_ptr = 0, len_ptr = 0;
  if (addr != 0) {
    auto* len = c.TypedPtr<uint32_t>(lenp);
    if (len == nullptr) return -EFAULT;
    void* p = c.Ptr(addr, *len);
    if (p == nullptr) return -EFAULT;
    addr_ptr = reinterpret_cast<long>(p);
    len_ptr = reinterpret_cast<long>(len);
  }
  if (has_flags) {
    return c.Raw(nr, fd, addr_ptr, len_ptr, flags);
  }
  return c.Raw(nr, fd, addr_ptr, len_ptr);
}

// Offloaded accept: park until the listening socket is readable (a pending
// connection), then perform the accept in the retry — which also re-does
// the addr/len translation against live memory and tracks the minted fd
// (the dispatch wrapper's fd-effect pass is skipped on the parked path).
int64_t ParkAccept(WaliCtx& c, long nr, int64_t fd, int64_t addr, int64_t lenp,
                   int64_t flags, bool has_flags) {
  WaliProcess* proc = &c.proc;
  c.Park(IoOp::Readable(static_cast<int>(fd)),
         [proc, nr, fd, addr, lenp, flags, has_flags]() -> int64_t {
           long addr_ptr = 0, len_ptr = 0;
           if (addr != 0) {
             if (!proc->memory->InBounds(static_cast<uint64_t>(lenp), 4)) {
               return -EFAULT;
             }
             auto* len = reinterpret_cast<uint32_t*>(
                 proc->memory->At(static_cast<uint64_t>(lenp)));
             if (!proc->memory->InBounds(static_cast<uint64_t>(addr), *len)) {
               return -EFAULT;
             }
             addr_ptr = reinterpret_cast<long>(
                 proc->memory->At(static_cast<uint64_t>(addr)));
             len_ptr = reinterpret_cast<long>(len);
           }
           int64_t r = has_flags
                           ? RetryRaw(*proc, nr, fd, addr_ptr, len_ptr, flags)
                           : RetryRaw(*proc, nr, fd, addr_ptr, len_ptr);
           if (r >= 0) {
             proc->TrackFd(static_cast<int>(r));
           }
           return r;
         });
  return 0;
}

int64_t SysAccept(WaliCtx& c, const int64_t* a) {
  if (c.CanOffload() && c.proc.OffloadableCached(static_cast<int>(a[0]))) {
    return ParkAccept(c, SYS_accept, a[0], a[1], a[2], 0, false);
  }
  return AddrLenCall(c, SYS_accept, a[0], a[1], a[2]);
}

int64_t SysAccept4(WaliCtx& c, const int64_t* a) {
  if (c.CanOffload() && c.proc.OffloadableCached(static_cast<int>(a[0]))) {
    return ParkAccept(c, SYS_accept4, a[0], a[1], a[2], a[3], true);
  }
  return AddrLenCall(c, SYS_accept4, a[0], a[1], a[2], a[3], /*has_flags=*/true);
}

int64_t SysConnect(WaliCtx& c, const int64_t* a) {
  const void* addr = c.Ptr(a[1], a[2]);
  if (addr == nullptr) return -EFAULT;
  int fd = static_cast<int>(a[0]);
  // Offloaded connect: start the handshake non-blocking, park until the
  // socket is writable (connect(2)'s completion signal), and read the
  // outcome from SO_ERROR in the retry. The O_NONBLOCK flip is reverted
  // immediately — the guest never observes the flag, and the offload cache
  // keys on the guest-visible state. Sockets the guest itself made
  // non-blocking answer inline by definition (OffloadableCached is false
  // for them), so -EINPROGRESS never leaks to a guest that didn't ask for
  // it.
  if (c.CanOffload() && c.proc.OffloadableCached(fd)) {
    const int64_t flags = c.Raw(SYS_fcntl, fd, F_GETFL, 0);
    if (flags >= 0 &&
        c.Raw(SYS_fcntl, fd, F_SETFL, flags | O_NONBLOCK) == 0) {
      int64_t r = c.Raw(SYS_connect, fd, reinterpret_cast<long>(addr), a[2]);
      (void)c.Raw(SYS_fcntl, fd, F_SETFL, flags);
      if (r == -EINPROGRESS) {
        WaliProcess* proc = &c.proc;
        c.Park(IoOp::Writable(fd), [proc, fd]() -> int64_t {
          int err = 0;
          uint32_t len = sizeof(err);
          int64_t gr = RetryRaw(*proc, SYS_getsockopt, fd, SOL_SOCKET,
                                SO_ERROR, reinterpret_cast<long>(&err),
                                reinterpret_cast<long>(&len));
          if (gr < 0) return gr;
          return err == 0 ? 0 : -err;
        });
        return 0;
      }
      if (r != -EAGAIN) {
        return r;  // connected (or failed) inline
      }
      // -EAGAIN (e.g. a full unix-socket backlog): only the blocking path
      // can wait for it, so fall through.
    }
  }
  return c.Raw(SYS_connect, a[0], reinterpret_cast<long>(addr), a[2]);
}

int64_t SysGetsockname(WaliCtx& c, const int64_t* a) {
  return AddrLenCall(c, SYS_getsockname, a[0], a[1], a[2]);
}

int64_t SysGetpeername(WaliCtx& c, const int64_t* a) {
  return AddrLenCall(c, SYS_getpeername, a[0], a[1], a[2]);
}

int64_t SysSendto(WaliCtx& c, const int64_t* a) {
  const void* buf = c.Ptr(a[1], a[2]);
  if (buf == nullptr && a[2] != 0) return -EFAULT;
  long addr_ptr = 0;
  if (a[4] != 0) {
    const void* addr = c.Ptr(a[4], a[5]);
    if (addr == nullptr) return -EFAULT;
    addr_ptr = reinterpret_cast<long>(addr);
  }
  return c.Raw(SYS_sendto, a[0], reinterpret_cast<long>(buf), a[2], a[3], addr_ptr,
               a[5]);
}

int64_t SysRecvfrom(WaliCtx& c, const int64_t* a) {
  void* buf = c.Ptr(a[1], a[2]);
  if (buf == nullptr && a[2] != 0) return -EFAULT;
  long addr_ptr = 0, len_ptr = 0;
  if (a[4] != 0) {
    auto* len = c.TypedPtr<uint32_t>(a[5]);
    if (len == nullptr) return -EFAULT;
    void* addr = c.Ptr(a[4], *len);
    if (addr == nullptr) return -EFAULT;
    addr_ptr = reinterpret_cast<long>(addr);
    len_ptr = reinterpret_cast<long>(len);
  }
  return c.Raw(SYS_recvfrom, a[0], reinterpret_cast<long>(buf), a[2], a[3], addr_ptr,
               len_ptr);
}

int64_t SysSetsockopt(WaliCtx& c, const int64_t* a) {
  const void* optval = c.Ptr(a[3], a[4]);
  if (optval == nullptr && a[4] != 0) return -EFAULT;
  return c.Raw(SYS_setsockopt, a[0], a[1], a[2], reinterpret_cast<long>(optval), a[4]);
}

int64_t SysGetsockopt(WaliCtx& c, const int64_t* a) {
  auto* optlen = c.TypedPtr<uint32_t>(a[4]);
  if (optlen == nullptr) return -EFAULT;
  void* optval = c.Ptr(a[3], *optlen);
  if (optval == nullptr && *optlen != 0) return -EFAULT;
  return c.Raw(SYS_getsockopt, a[0], a[1], a[2], reinterpret_cast<long>(optval),
               reinterpret_cast<long>(optlen));
}

int64_t SysShutdown(WaliCtx& c, const int64_t* a) {
  return c.Raw(SYS_shutdown, a[0], a[1]);
}

// Guest (wasm32) msghdr layout emitted by a 32-bit libc.
struct GuestMsghdr {
  uint32_t name;
  uint32_t namelen;
  uint32_t iov;
  uint32_t iovlen;
  uint32_t control;
  uint32_t controllen;
  int32_t flags;
};

int64_t MsgCall(WaliCtx& c, long nr, const int64_t* a, bool writable) {
  auto* gm = c.TypedPtr<GuestMsghdr>(a[1]);
  if (gm == nullptr) return -EFAULT;
  constexpr int kMaxIov = 64;
  if (gm->iovlen > kMaxIov) return -EINVAL;
  struct iovec iov[kMaxIov];
  struct msghdr mh = {};
  const auto* guest_iov = static_cast<const uint32_t*>(
      c.Ptr(gm->iov, static_cast<uint64_t>(gm->iovlen) * 8));
  if (guest_iov == nullptr && gm->iovlen != 0) return -EFAULT;
  for (uint32_t i = 0; i < gm->iovlen; ++i) {
    uint32_t base = guest_iov[2 * i];
    uint32_t len = guest_iov[2 * i + 1];
    void* p = c.Ptr(base, len);
    if (p == nullptr && len != 0) return -EFAULT;
    iov[i].iov_base = p;
    iov[i].iov_len = len;
  }
  mh.msg_iov = iov;
  mh.msg_iovlen = gm->iovlen;
  if (gm->name != 0) {
    mh.msg_name = c.Ptr(gm->name, gm->namelen);
    if (mh.msg_name == nullptr) return -EFAULT;
    mh.msg_namelen = gm->namelen;
  }
  if (gm->control != 0) {
    mh.msg_control = c.Ptr(gm->control, gm->controllen);
    if (mh.msg_control == nullptr) return -EFAULT;
    mh.msg_controllen = gm->controllen;
  }
  mh.msg_flags = gm->flags;
  int64_t r = c.Raw(nr, a[0], reinterpret_cast<long>(&mh), a[2]);
  if (writable && r >= 0) {
    gm->namelen = mh.msg_namelen;
    gm->controllen = static_cast<uint32_t>(mh.msg_controllen);
    gm->flags = mh.msg_flags;
  }
  return r;
}

int64_t SysSendmsg(WaliCtx& c, const int64_t* a) {
  return MsgCall(c, SYS_sendmsg, a, /*writable=*/false);
}

int64_t SysRecvmsg(WaliCtx& c, const int64_t* a) {
  return MsgCall(c, SYS_recvmsg, a, /*writable=*/true);
}

}  // namespace

void RegisterNetSyscalls(std::vector<SyscallDef>& defs) {
  defs.insert(defs.end(), {
      {"socket", 3, SysSocket, false, 3},
      {"socketpair", 4, SysSocketpair, false, 5},
      {"bind", 3, SysBind, false, 5},
      {"listen", 2, SysListen, false, 3},
      {"accept", 3, SysAccept, false, 8},
      {"accept4", 4, SysAccept4, false, 8},
      {"connect", 3, SysConnect, false, 5},
      {"getsockname", 3, SysGetsockname, false, 8},
      {"getpeername", 3, SysGetpeername, false, 8},
      {"sendto", 6, SysSendto, false, 10},
      {"recvfrom", 6, SysRecvfrom, false, 8},
      {"setsockopt", 5, SysSetsockopt, false, 5},
      {"getsockopt", 5, SysGetsockopt, false, 8},
      {"shutdown", 2, SysShutdown, false, 3},
      {"sendmsg", 3, SysSendmsg, false, 30},
      {"recvmsg", 3, SysRecvmsg, false, 30},
  });
}

}  // namespace wali
