// Filesystem + fd syscalls. Nearly all are zero-copy passthrough after
// address-space translation (paper §3.2); the stat family additionally does
// the ISA layout conversion of §3.5 via src/abi.
#include <errno.h>
#include <fcntl.h>
#include <sys/ioctl.h>
#include <sys/stat.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cstring>
#include <string>

#include "src/abi/layout.h"
#include "src/wali/runtime.h"

namespace wali {

namespace {

constexpr int kMaxIov = 64;

// Builds a host iovec array from a guest wasm32 iovec array. Takes the
// memory directly (not WaliCtx) so resume-time retry closures — which run
// on a worker thread after the original ExecContext is gone — can
// re-translate against the live memory with the same bounds rules.
int TranslateIovecs(wasm::Memory& mem, uint64_t iov_addr, uint64_t iovcnt,
                    struct iovec* out) {
  if (iovcnt > kMaxIov) {
    return -EINVAL;
  }
  if (!mem.InBounds(iov_addr, iovcnt * sizeof(wabi::WaliIovec))) {
    return -EFAULT;
  }
  const auto* guest = reinterpret_cast<const wabi::WaliIovec*>(mem.At(iov_addr));
  for (uint64_t i = 0; i < iovcnt; ++i) {
    void* base = mem.InBounds(guest[i].base, guest[i].len)
                     ? mem.At(guest[i].base)
                     : nullptr;
    if (base == nullptr && guest[i].len != 0) {
      return -EFAULT;
    }
    out[i].iov_base = base;
    out[i].iov_len = guest[i].len;
  }
  return 0;
}

// Shared body of the stat family: runs the raw syscall into a native buffer
// and marshals to the portable WaliKStat in guest memory.
int64_t StatCommon(WaliCtx& c, int64_t raw_result, const struct stat& native,
                   uint64_t out_addr) {
  if (raw_result < 0) {
    return raw_result;
  }
  auto* out = c.TypedPtr<wabi::WaliKStat>(out_addr);
  if (out == nullptr) {
    return -EFAULT;
  }
  wabi::NativeStatToWali(&native, wabi::HostIsa(), out);
  return 0;
}

int64_t SysRead(WaliCtx& c, const int64_t* a) {
  void* buf = c.Ptr(a[1], a[2]);
  if (buf == nullptr && a[2] != 0) return -EFAULT;
  int fd = static_cast<int>(a[0]);
  if (c.CanOffload() && c.proc.OffloadableCached(fd)) {
    // Park until the fd is readable; the retry performs the read on a
    // worker thread at resume, when it completes promptly. The guest
    // address is re-translated then — the slab base is fixed, but the
    // bounds are re-checked against the live memory.
    WaliProcess* proc = &c.proc;
    uint64_t addr = static_cast<uint64_t>(a[1]);
    uint64_t len = static_cast<uint64_t>(a[2]);
    c.Park(IoOp::Readable(fd), [proc, fd, addr, len]() -> int64_t {
      if (len != 0 && !proc->memory->InBounds(addr, len)) return -EFAULT;
      void* p = len != 0 ? proc->memory->At(addr) : nullptr;
      return RetryRaw(*proc, SYS_read, fd, reinterpret_cast<long>(p),
                      static_cast<long>(len));
    });
    return 0;
  }
  return c.Raw(SYS_read, a[0], reinterpret_cast<long>(buf), a[2]);
}

int64_t SysWrite(WaliCtx& c, const int64_t* a) {
  void* buf = c.Ptr(a[1], a[2]);
  if (buf == nullptr && a[2] != 0) return -EFAULT;
  int fd = static_cast<int>(a[0]);
  if (c.CanOffload() && c.proc.OffloadableCached(fd)) {
    WaliProcess* proc = &c.proc;
    uint64_t addr = static_cast<uint64_t>(a[1]);
    uint64_t len = static_cast<uint64_t>(a[2]);
    c.Park(IoOp::Writable(fd), [proc, fd, addr, len]() -> int64_t {
      if (len != 0 && !proc->memory->InBounds(addr, len)) return -EFAULT;
      void* p = len != 0 ? proc->memory->At(addr) : nullptr;
      return RetryRaw(*proc, SYS_write, fd, reinterpret_cast<long>(p),
                      static_cast<long>(len));
    });
    return 0;
  }
  return c.Raw(SYS_write, a[0], reinterpret_cast<long>(buf), a[2]);
}

int64_t SysReadv(WaliCtx& c, const int64_t* a) {
  struct iovec iov[kMaxIov];
  int rc = TranslateIovecs(c.mem, a[1], a[2], iov);
  if (rc != 0) return rc;
  int fd = static_cast<int>(a[0]);
  if (c.CanOffload() && c.proc.OffloadableCached(fd)) {
    // Validated inline above (same -EINVAL/-EFAULT as the blocking path),
    // then parked like SysRead; the retry re-translates the whole iovec
    // array against the live memory at resume.
    WaliProcess* proc = &c.proc;
    uint64_t iov_addr = static_cast<uint64_t>(a[1]);
    uint64_t iovcnt = static_cast<uint64_t>(a[2]);
    c.Park(IoOp::Readable(fd), [proc, fd, iov_addr, iovcnt]() -> int64_t {
      struct iovec riov[kMaxIov];
      int rrc = TranslateIovecs(*proc->memory, iov_addr, iovcnt, riov);
      if (rrc != 0) return rrc;
      return RetryRaw(*proc, SYS_readv, fd, reinterpret_cast<long>(riov),
                      static_cast<long>(iovcnt));
    });
    return 0;
  }
  return c.Raw(SYS_readv, a[0], reinterpret_cast<long>(iov), a[2]);
}

int64_t SysWritev(WaliCtx& c, const int64_t* a) {
  struct iovec iov[kMaxIov];
  int rc = TranslateIovecs(c.mem, a[1], a[2], iov);
  if (rc != 0) return rc;
  int fd = static_cast<int>(a[0]);
  if (c.CanOffload() && c.proc.OffloadableCached(fd)) {
    WaliProcess* proc = &c.proc;
    uint64_t iov_addr = static_cast<uint64_t>(a[1]);
    uint64_t iovcnt = static_cast<uint64_t>(a[2]);
    c.Park(IoOp::Writable(fd), [proc, fd, iov_addr, iovcnt]() -> int64_t {
      struct iovec riov[kMaxIov];
      int rrc = TranslateIovecs(*proc->memory, iov_addr, iovcnt, riov);
      if (rrc != 0) return rrc;
      return RetryRaw(*proc, SYS_writev, fd, reinterpret_cast<long>(riov),
                      static_cast<long>(iovcnt));
    });
    return 0;
  }
  return c.Raw(SYS_writev, a[0], reinterpret_cast<long>(iov), a[2]);
}

int64_t SysPread64(WaliCtx& c, const int64_t* a) {
  void* buf = c.Ptr(a[1], a[2]);
  if (buf == nullptr && a[2] != 0) return -EFAULT;
  return c.Raw(SYS_pread64, a[0], reinterpret_cast<long>(buf), a[2], a[3]);
}

int64_t SysPwrite64(WaliCtx& c, const int64_t* a) {
  void* buf = c.Ptr(a[1], a[2]);
  if (buf == nullptr && a[2] != 0) return -EFAULT;
  return c.Raw(SYS_pwrite64, a[0], reinterpret_cast<long>(buf), a[2], a[3]);
}

int64_t SysOpen(WaliCtx& c, const int64_t* a) {
  std::string path;
  if (!c.GetStr(a[0], &path)) return -EFAULT;
  std::string resolved;
  if (!PathAllowed(path, &resolved)) return -EACCES;
  // A relative path is opened via its check-time absolute form so a sibling
  // thread's chdir cannot re-point it between check and use.
  if (!resolved.empty()) path = std::move(resolved);
  uint32_t flags = wabi::OpenFlagsToNative(static_cast<uint32_t>(a[1]), wabi::HostIsa());
  return c.Raw(SYS_openat, AT_FDCWD, reinterpret_cast<long>(path.c_str()), flags, a[2]);
}

int64_t SysOpenat(WaliCtx& c, const int64_t* a) {
  std::string path;
  if (!c.GetStr(a[1], &path)) return -EFAULT;
  // dirfd-aware: anchors relative paths at the fd's directory, so an opened
  // /proc/self handle cannot be used to reach "mem" in a second step.
  std::string resolved;
  if (!PathAllowedAt(a[0], path, &resolved)) return -EACCES;
  uint32_t flags = wabi::OpenFlagsToNative(static_cast<uint32_t>(a[2]), wabi::HostIsa());
  if (!resolved.empty()) {
    // Open the snapshot that was checked (also immune to a concurrent dup2
    // swapping the dirfd).
    return c.Raw(SYS_openat, AT_FDCWD, reinterpret_cast<long>(resolved.c_str()),
                 flags, a[3]);
  }
  return c.Raw(SYS_openat, a[0], reinterpret_cast<long>(path.c_str()), flags, a[3]);
}

int64_t SysClose(WaliCtx& c, const int64_t* a) { return c.Raw(SYS_close, a[0]); }

int64_t SysLseek(WaliCtx& c, const int64_t* a) {
  return c.Raw(SYS_lseek, a[0], a[1], a[2]);
}

int64_t SysAccess(WaliCtx& c, const int64_t* a) {
  std::string path;
  if (!c.GetStr(a[0], &path)) return -EFAULT;
  if (!PathAllowed(path)) return -EACCES;
  // Legacy syscall emulated with the modern *at variant (paper §2).
  return c.Raw(SYS_faccessat, AT_FDCWD, reinterpret_cast<long>(path.c_str()), a[1]);
}

int64_t SysFaccessat(WaliCtx& c, const int64_t* a) {
  std::string path;
  if (!c.GetStr(a[1], &path)) return -EFAULT;
  if (!PathAllowedAt(a[0], path)) return -EACCES;
  return c.Raw(SYS_faccessat, a[0], reinterpret_cast<long>(path.c_str()), a[2]);
}

int64_t SysStat(WaliCtx& c, const int64_t* a) {
  std::string path;
  if (!c.GetStr(a[0], &path)) return -EFAULT;
  struct stat st;
  int64_t r = c.Raw(SYS_newfstatat, AT_FDCWD, reinterpret_cast<long>(path.c_str()),
                    reinterpret_cast<long>(&st), 0);
  return StatCommon(c, r, st, a[1]);
}

int64_t SysLstat(WaliCtx& c, const int64_t* a) {
  std::string path;
  if (!c.GetStr(a[0], &path)) return -EFAULT;
  struct stat st;
  int64_t r = c.Raw(SYS_newfstatat, AT_FDCWD, reinterpret_cast<long>(path.c_str()),
                    reinterpret_cast<long>(&st), AT_SYMLINK_NOFOLLOW);
  return StatCommon(c, r, st, a[1]);
}

int64_t SysFstat(WaliCtx& c, const int64_t* a) {
  struct stat st;
  int64_t r = c.Raw(SYS_fstat, a[0], reinterpret_cast<long>(&st));
  return StatCommon(c, r, st, a[1]);
}

int64_t SysNewfstatat(WaliCtx& c, const int64_t* a) {
  std::string path;
  if (!c.GetStr(a[1], &path)) return -EFAULT;
  struct stat st;
  int64_t r = c.Raw(SYS_newfstatat, a[0], reinterpret_cast<long>(path.c_str()),
                    reinterpret_cast<long>(&st), a[3]);
  return StatCommon(c, r, st, a[2]);
}

int64_t SysGetdents64(WaliCtx& c, const int64_t* a) {
  void* buf = c.Ptr(a[1], a[2]);
  if (buf == nullptr) return -EFAULT;
  // linux_dirent64 is ISA-independent: zero-copy into the sandbox.
  return c.Raw(SYS_getdents64, a[0], reinterpret_cast<long>(buf), a[2]);
}

int64_t SysFcntl(WaliCtx& c, const int64_t* a) {
  switch (a[1]) {
    case F_DUPFD:
    case F_DUPFD_CLOEXEC:
    case F_GETFD:
    case F_SETFD:
    case F_GETFL:
    case F_SETFL:
      return c.Raw(SYS_fcntl, a[0], a[1], a[2]);
    default:
      return -EINVAL;  // lock/owner commands carry pointers we do not model
  }
}

int64_t SysIoctl(WaliCtx& c, const int64_t* a) {
  unsigned long cmd = static_cast<unsigned long>(a[1]);
  // Known small-struct ioctls get pointer translation; _IOC-encoded commands
  // use the size encoded in the command word; anything else passes the raw
  // integer argument.
  size_t size = 0;
  switch (cmd) {
    case TCGETS: case TCSETS: case TCSETSW: case TCSETSF: size = 60; break;
    case TIOCGWINSZ: size = 8; break;
    case FIONREAD: case FIONBIO: size = 4; break;
    default:
      size = (cmd >> 16) & 0x3FFF;  // _IOC_SIZE
      if (((cmd >> 30) & 0x3) == 0) size = 0;  // _IOC_NONE
      break;
  }
  if (size > 0) {
    void* p = c.Ptr(a[2], size);
    if (p == nullptr) return -EFAULT;
    return c.Raw(SYS_ioctl, a[0], a[1], reinterpret_cast<long>(p));
  }
  return c.Raw(SYS_ioctl, a[0], a[1], a[2]);
}

int64_t SysDup(WaliCtx& c, const int64_t* a) { return c.Raw(SYS_dup, a[0]); }

int64_t SysDup2(WaliCtx& c, const int64_t* a) {
  if (a[0] == a[1]) {
    // dup3 rejects equal fds; dup2 returns the fd if it is valid.
    int64_t r = c.Raw(SYS_fcntl, a[0], F_GETFD);
    return r < 0 ? r : a[1];
  }
  return c.Raw(SYS_dup3, a[0], a[1], 0);
}

int64_t SysDup3(WaliCtx& c, const int64_t* a) {
  return c.Raw(SYS_dup3, a[0], a[1], a[2]);
}

// pipe/pipe2 go through a host-side buffer: the kernel's fd pair must be
// tracked from memory the guest cannot race on (a sibling thread scribbling
// over the guest words before tracking would poison the fd set with
// attacker-chosen numbers).
int64_t PipeCommon(WaliCtx& c, uint64_t fds_addr, uint64_t flags) {
  void* guest_fds = c.Ptr(fds_addr, 8);
  if (guest_fds == nullptr) return -EFAULT;
  int host_fds[2] = {-1, -1};
  int64_t r = c.Raw(SYS_pipe2, reinterpret_cast<long>(host_fds), flags);
  if (r >= 0) {
    c.proc.TrackFd(host_fds[0]);
    c.proc.TrackFd(host_fds[1]);
    std::memcpy(guest_fds, host_fds, sizeof(host_fds));
  }
  return r;
}

int64_t SysPipe(WaliCtx& c, const int64_t* a) { return PipeCommon(c, a[0], 0); }

int64_t SysPipe2(WaliCtx& c, const int64_t* a) {
  return PipeCommon(c, a[0], a[1]);
}

int64_t SysMkdir(WaliCtx& c, const int64_t* a) {
  std::string path;
  if (!c.GetStr(a[0], &path)) return -EFAULT;
  return c.Raw(SYS_mkdirat, AT_FDCWD, reinterpret_cast<long>(path.c_str()), a[1]);
}

int64_t SysMkdirat(WaliCtx& c, const int64_t* a) {
  std::string path;
  if (!c.GetStr(a[1], &path)) return -EFAULT;
  return c.Raw(SYS_mkdirat, a[0], reinterpret_cast<long>(path.c_str()), a[2]);
}

int64_t SysRmdir(WaliCtx& c, const int64_t* a) {
  std::string path;
  if (!c.GetStr(a[0], &path)) return -EFAULT;
  return c.Raw(SYS_unlinkat, AT_FDCWD, reinterpret_cast<long>(path.c_str()),
               AT_REMOVEDIR);
}

int64_t SysUnlink(WaliCtx& c, const int64_t* a) {
  std::string path;
  if (!c.GetStr(a[0], &path)) return -EFAULT;
  return c.Raw(SYS_unlinkat, AT_FDCWD, reinterpret_cast<long>(path.c_str()), 0);
}

int64_t SysUnlinkat(WaliCtx& c, const int64_t* a) {
  std::string path;
  if (!c.GetStr(a[1], &path)) return -EFAULT;
  return c.Raw(SYS_unlinkat, a[0], reinterpret_cast<long>(path.c_str()), a[2]);
}

int64_t SysRename(WaliCtx& c, const int64_t* a) {
  std::string from, to;
  if (!c.GetStr(a[0], &from) || !c.GetStr(a[1], &to)) return -EFAULT;
  return c.Raw(SYS_renameat2, AT_FDCWD, reinterpret_cast<long>(from.c_str()),
               AT_FDCWD, reinterpret_cast<long>(to.c_str()), 0);
}

int64_t SysRenameat(WaliCtx& c, const int64_t* a) {
  std::string from, to;
  if (!c.GetStr(a[1], &from) || !c.GetStr(a[3], &to)) return -EFAULT;
  return c.Raw(SYS_renameat2, a[0], reinterpret_cast<long>(from.c_str()), a[2],
               reinterpret_cast<long>(to.c_str()), 0);
}

int64_t SysLink(WaliCtx& c, const int64_t* a) {
  std::string from, to;
  if (!c.GetStr(a[0], &from) || !c.GetStr(a[1], &to)) return -EFAULT;
  return c.Raw(SYS_linkat, AT_FDCWD, reinterpret_cast<long>(from.c_str()), AT_FDCWD,
               reinterpret_cast<long>(to.c_str()), 0);
}

int64_t SysSymlink(WaliCtx& c, const int64_t* a) {
  std::string target, linkpath;
  if (!c.GetStr(a[0], &target) || !c.GetStr(a[1], &linkpath)) return -EFAULT;
  // A guest must not mint a symlink aimed at a blocked /proc window and
  // then open it through the innocent-looking link path.
  if (!PathAllowed(target)) return -EACCES;
  return c.Raw(SYS_symlinkat, reinterpret_cast<long>(target.c_str()), AT_FDCWD,
               reinterpret_cast<long>(linkpath.c_str()));
}

int64_t SysReadlink(WaliCtx& c, const int64_t* a) {
  std::string path;
  if (!c.GetStr(a[0], &path)) return -EFAULT;
  if (!PathAllowed(path)) return -EACCES;
  void* buf = c.Ptr(a[1], a[2]);
  if (buf == nullptr) return -EFAULT;
  return c.Raw(SYS_readlinkat, AT_FDCWD, reinterpret_cast<long>(path.c_str()),
               reinterpret_cast<long>(buf), a[2]);
}

int64_t SysReadlinkat(WaliCtx& c, const int64_t* a) {
  std::string path;
  if (!c.GetStr(a[1], &path)) return -EFAULT;
  if (!PathAllowedAt(a[0], path)) return -EACCES;
  void* buf = c.Ptr(a[2], a[3]);
  if (buf == nullptr) return -EFAULT;
  return c.Raw(SYS_readlinkat, a[0], reinterpret_cast<long>(path.c_str()),
               reinterpret_cast<long>(buf), a[3]);
}

int64_t SysChmod(WaliCtx& c, const int64_t* a) {
  std::string path;
  if (!c.GetStr(a[0], &path)) return -EFAULT;
  return c.Raw(SYS_fchmodat, AT_FDCWD, reinterpret_cast<long>(path.c_str()), a[1]);
}

int64_t SysFchmod(WaliCtx& c, const int64_t* a) {
  return c.Raw(SYS_fchmod, a[0], a[1]);
}

int64_t SysChown(WaliCtx& c, const int64_t* a) {
  std::string path;
  if (!c.GetStr(a[0], &path)) return -EFAULT;
  return c.Raw(SYS_fchownat, AT_FDCWD, reinterpret_cast<long>(path.c_str()), a[1],
               a[2], 0);
}

int64_t SysFchown(WaliCtx& c, const int64_t* a) {
  return c.Raw(SYS_fchown, a[0], a[1], a[2]);
}

int64_t SysTruncate(WaliCtx& c, const int64_t* a) {
  std::string path;
  if (!c.GetStr(a[0], &path)) return -EFAULT;
  return c.Raw(SYS_truncate, reinterpret_cast<long>(path.c_str()), a[1]);
}

int64_t SysFtruncate(WaliCtx& c, const int64_t* a) {
  return c.Raw(SYS_ftruncate, a[0], a[1]);
}

int64_t SysFsync(WaliCtx& c, const int64_t* a) { return c.Raw(SYS_fsync, a[0]); }
int64_t SysFdatasync(WaliCtx& c, const int64_t* a) { return c.Raw(SYS_fdatasync, a[0]); }
int64_t SysSync(WaliCtx& c, const int64_t* a) { return c.Raw(SYS_sync); }

int64_t SysStatfs(WaliCtx& c, const int64_t* a) {
  std::string path;
  if (!c.GetStr(a[0], &path)) return -EFAULT;
  void* buf = c.Ptr(a[1], 120);  // struct statfs (64-bit) fits in 120 bytes
  if (buf == nullptr) return -EFAULT;
  return c.Raw(SYS_statfs, reinterpret_cast<long>(path.c_str()),
               reinterpret_cast<long>(buf));
}

int64_t SysFstatfs(WaliCtx& c, const int64_t* a) {
  void* buf = c.Ptr(a[1], 120);
  if (buf == nullptr) return -EFAULT;
  return c.Raw(SYS_fstatfs, a[0], reinterpret_cast<long>(buf));
}

int64_t SysGetcwd(WaliCtx& c, const int64_t* a) {
  void* buf = c.Ptr(a[0], a[1]);
  if (buf == nullptr) return -EFAULT;
  return c.Raw(SYS_getcwd, reinterpret_cast<long>(buf), a[1]);
}

int64_t SysChdir(WaliCtx& c, const int64_t* a) {
  std::string path;
  if (!c.GetStr(a[0], &path)) return -EFAULT;
  return c.Raw(SYS_chdir, reinterpret_cast<long>(path.c_str()));
}

int64_t SysFchdir(WaliCtx& c, const int64_t* a) { return c.Raw(SYS_fchdir, a[0]); }

int64_t SysUmask(WaliCtx& c, const int64_t* a) { return c.Raw(SYS_umask, a[0]); }

int64_t SysUtimensat(WaliCtx& c, const int64_t* a) {
  std::string path;
  const char* path_ptr = nullptr;
  if (a[1] != 0) {
    if (!c.GetStr(a[1], &path)) return -EFAULT;
    path_ptr = path.c_str();
  }
  void* times = nullptr;
  if (a[2] != 0) {
    times = c.Ptr(a[2], 2 * sizeof(wabi::WaliTimespec));  // zero-copy: 64-bit fields
    if (times == nullptr) return -EFAULT;
  }
  return c.Raw(SYS_utimensat, a[0], reinterpret_cast<long>(path_ptr),
               reinterpret_cast<long>(times), a[3]);
}

int64_t SysFlock(WaliCtx& c, const int64_t* a) { return c.Raw(SYS_flock, a[0], a[1]); }

int64_t SysSendfile(WaliCtx& c, const int64_t* a) {
  long off_ptr = 0;
  if (a[2] != 0) {
    void* p = c.Ptr(a[2], 8);
    if (p == nullptr) return -EFAULT;
    off_ptr = reinterpret_cast<long>(p);
  }
  return c.Raw(SYS_sendfile, a[0], a[1], off_ptr, a[3]);
}

int64_t SysCopyFileRange(WaliCtx& c, const int64_t* a) {
  long off_in = 0, off_out = 0;
  if (a[1] != 0) {
    void* p = c.Ptr(a[1], 8);
    if (p == nullptr) return -EFAULT;
    off_in = reinterpret_cast<long>(p);
  }
  if (a[3] != 0) {
    void* p = c.Ptr(a[3], 8);
    if (p == nullptr) return -EFAULT;
    off_out = reinterpret_cast<long>(p);
  }
  return c.Raw(SYS_copy_file_range, a[0], off_in, a[2], off_out, a[4], a[5]);
}

}  // namespace

void RegisterFsSyscalls(std::vector<SyscallDef>& defs) {
  defs.insert(defs.end(), {
      {"read", 3, SysRead, false, 4},
      {"write", 3, SysWrite, false, 5},
      {"readv", 3, SysReadv, false, 10},
      {"writev", 3, SysWritev, false, 10},
      {"pread64", 4, SysPread64, false, 4},
      {"pwrite64", 4, SysPwrite64, false, 4},
      {"open", 3, SysOpen, false, 4},
      {"openat", 4, SysOpenat, false, 4},
      {"close", 1, SysClose, false, 3},
      {"lseek", 3, SysLseek, false, 3},
      {"access", 2, SysAccess, false, 8},
      {"faccessat", 3, SysFaccessat, false, 8},
      {"stat", 2, SysStat, false, 8},
      {"lstat", 2, SysLstat, false, 6},
      {"fstat", 2, SysFstat, false, 4},
      {"newfstatat", 4, SysNewfstatat, false, 8},
      {"getdents64", 3, SysGetdents64, false, 4},
      {"fcntl", 3, SysFcntl, false, 10},
      {"ioctl", 3, SysIoctl, false, 4},
      {"dup", 1, SysDup, false, 3},
      {"dup2", 2, SysDup2, false, 6},
      {"dup3", 3, SysDup3, false, 3},
      {"pipe", 1, SysPipe, false, 5},
      {"pipe2", 2, SysPipe2, false, 5},
      {"mkdir", 2, SysMkdir, false, 4},
      {"mkdirat", 3, SysMkdirat, false, 4},
      {"rmdir", 1, SysRmdir, false, 4},
      {"unlink", 1, SysUnlink, false, 4},
      {"unlinkat", 3, SysUnlinkat, false, 4},
      {"rename", 2, SysRename, false, 5},
      {"renameat", 4, SysRenameat, false, 5},
      {"link", 2, SysLink, false, 5},
      {"symlink", 2, SysSymlink, false, 5},
      {"readlink", 3, SysReadlink, false, 7},
      {"readlinkat", 4, SysReadlinkat, false, 7},
      {"chmod", 2, SysChmod, false, 4},
      {"fchmod", 2, SysFchmod, false, 3},
      {"chown", 3, SysChown, false, 4},
      {"fchown", 3, SysFchown, false, 3},
      {"truncate", 2, SysTruncate, false, 4},
      {"ftruncate", 2, SysFtruncate, false, 3},
      {"fsync", 1, SysFsync, false, 3},
      {"fdatasync", 1, SysFdatasync, false, 3},
      {"sync", 0, SysSync, false, 3},
      {"statfs", 2, SysStatfs, false, 6},
      {"fstatfs", 2, SysFstatfs, false, 4},
      {"getcwd", 2, SysGetcwd, false, 4},
      {"chdir", 1, SysChdir, false, 4},
      {"fchdir", 1, SysFchdir, false, 3},
      {"umask", 1, SysUmask, false, 3},
      {"utimensat", 4, SysUtimensat, false, 12},
      {"flock", 2, SysFlock, false, 3},
      {"sendfile", 4, SysSendfile, false, 8},
      {"copy_file_range", 6, SysCopyFileRange, false, 12},
  });
}

}  // namespace wali
