// Process-level snapshot/restore: wraps wasm::SnapshotSuspension with the
// WALI state that makes a parked run resumable as a *process* — the fd
// table, virtual signal dispositions, the pending IoOp, the syscall trace
// (so per-tenant accounting survives eviction without double billing), and
// the MainContinuation bookkeeping (deferred-start fuel, entry kind).
//
// Eligibility (refused with a Status, never a crash): single-threaded, not
// inside a signal handler, and the park's retry closure must be null — only
// ops whose completion value IS the syscall result (sleeps, scripted fakes)
// are pure data. Reads/writes capture a live retry closure over the process
// and are not serializable; the supervisor simply declines to evict those.
#ifndef SRC_WALI_PROCESS_SNAPSHOT_H_
#define SRC_WALI_PROCESS_SNAPSHOT_H_

#include <cstdint>
#include <vector>

#include "src/common/status.h"
#include "src/wali/process.h"
#include "src/wali/runtime.h"

namespace wali {

// Serializes `proc` + `cont` (armed, parked at a syscall boundary) into a
// self-contained snapshot: the wasm::Suspension section plus a WALI host
// blob, under one header/checksum (see src/wasm/snapshot.h for the format
// and versioning rules).
common::StatusOr<std::vector<uint8_t>> SnapshotProcess(
    WaliProcess& proc, const WaliRuntime::MainContinuation& cont);

// Restores a snapshot into `proc`, which must be a FRESH process of the
// structurally identical module (CreateProcess or a pool-recycled slot):
// rebuilds the interpreter suspension, globals, memory, fd table, signal
// dispositions, trace counters, and budgets captured at snapshot time, and
// arms `cont` so WaliRuntime::ResumeMain continues the run bit-identically.
// `pending_op` (optional) receives the IoOp the run was parked on, for
// callers that must complete or re-arm it (walirun --restore sleeps it off).
common::Status RestoreProcess(const uint8_t* data, size_t size,
                              WaliProcess& proc,
                              WaliRuntime::MainContinuation& cont,
                              IoOp* pending_op = nullptr);

}  // namespace wali

#endif  // SRC_WALI_PROCESS_SNAPSHOT_H_
