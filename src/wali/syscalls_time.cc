// Clock/timer syscalls. WALI's portable timespec/timeval use 64-bit fields,
// matching the LP64 kernel layout, so these are zero-copy passthrough.
#include <errno.h>
#include <sys/syscall.h>
#include <time.h>

#include <cstdint>
#include <cstring>

#include "src/abi/layout.h"
#include "src/wali/runtime.h"

namespace wali {

// Validates a guest timespec and flattens it to nanoseconds (kernel
// nanosleep rules: negative seconds or out-of-range nanos are EINVAL).
// Durations past int64 range (sec is guest-controlled) saturate: a
// ~292-year sleep and an infinite one are indistinguishable in practice,
// and the multiply must not be allowed to overflow (UB) into a 0ns sleep.
// Declared in runtime.h: the ppoll and futex offload gates share it.
bool SleepDurationNanos(const wabi::WaliTimespec& ts, int64_t* out) {
  if (ts.sec < 0 || ts.nsec < 0 || ts.nsec >= 1000000000) {
    return false;
  }
  if (ts.sec > (INT64_MAX - ts.nsec) / 1000000000) {
    *out = INT64_MAX;
    return true;
  }
  *out = ts.sec * 1000000000 + ts.nsec;
  return true;
}

namespace {

int64_t SysClockGettime(WaliCtx& c, const int64_t* a) {
  void* ts = c.Ptr(a[1], sizeof(wabi::WaliTimespec));
  if (ts == nullptr) return -EFAULT;
  return c.Raw(SYS_clock_gettime, a[0], reinterpret_cast<long>(ts));
}

int64_t SysClockGetres(WaliCtx& c, const int64_t* a) {
  long ts_ptr = 0;
  if (a[1] != 0) {
    void* ts = c.Ptr(a[1], sizeof(wabi::WaliTimespec));
    if (ts == nullptr) return -EFAULT;
    ts_ptr = reinterpret_cast<long>(ts);
  }
  return c.Raw(SYS_clock_getres, a[0], ts_ptr);
}

int64_t SysClockSettime(WaliCtx& c, const int64_t* a) {
  return -EPERM;  // never allow the sandbox to set host clocks
}

int64_t SysNanosleep(WaliCtx& c, const int64_t* a) {
  const void* req = c.Ptr(a[0], sizeof(wabi::WaliTimespec));
  if (req == nullptr) return -EFAULT;
  long rem_ptr = 0;
  if (a[1] != 0) {
    void* rem = c.Ptr(a[1], sizeof(wabi::WaliTimespec));
    if (rem == nullptr) return -EFAULT;
    rem_ptr = reinterpret_cast<long>(rem);
  }
  if (c.CanOffload()) {
    // Offload: elapse the duration on the host's completion loop instead of
    // parking a worker thread in the kernel. The completion value (0) is
    // the syscall result — an offloaded sleep is never EINTR'd, so `rem`
    // is left untouched, exactly like an uninterrupted kernel sleep.
    wabi::WaliTimespec ts;
    std::memcpy(&ts, req, sizeof(ts));
    int64_t dur = 0;
    if (!SleepDurationNanos(ts, &dur)) return -EINVAL;
    c.Park(IoOp::Sleep(dur), nullptr);
    return 0;
  }
  return c.Raw(SYS_nanosleep, reinterpret_cast<long>(req), rem_ptr);
}

int64_t SysClockNanosleep(WaliCtx& c, const int64_t* a) {
  const void* req = c.Ptr(a[2], sizeof(wabi::WaliTimespec));
  if (req == nullptr) return -EFAULT;
  long rem_ptr = 0;
  if (a[3] != 0) {
    void* rem = c.Ptr(a[3], sizeof(wabi::WaliTimespec));
    if (rem == nullptr) return -EFAULT;
    rem_ptr = reinterpret_cast<long>(rem);
  }
  // Only the relative form is offloadable: TIMER_ABSTIME is anchored to the
  // target clock's epoch, which a manual-clock completion loop cannot
  // honor; it takes the blocking path.
  if (c.CanOffload() && (a[1] & TIMER_ABSTIME) == 0) {
    wabi::WaliTimespec ts;
    std::memcpy(&ts, req, sizeof(ts));
    int64_t dur = 0;
    if (!SleepDurationNanos(ts, &dur)) return -EINVAL;
    c.Park(IoOp::Sleep(dur), nullptr);
    return 0;
  }
  return c.Raw(SYS_clock_nanosleep, a[0], a[1], reinterpret_cast<long>(req), rem_ptr);
}

int64_t SysGettimeofday(WaliCtx& c, const int64_t* a) {
  long tv_ptr = 0;
  if (a[0] != 0) {
    void* tv = c.Ptr(a[0], 16);
    if (tv == nullptr) return -EFAULT;
    tv_ptr = reinterpret_cast<long>(tv);
  }
  return c.Raw(SYS_gettimeofday, tv_ptr, 0);
}

int64_t SysTimes(WaliCtx& c, const int64_t* a) {
  long buf_ptr = 0;
  if (a[0] != 0) {
    void* buf = c.Ptr(a[0], 32);  // struct tms: 4 x clock_t
    if (buf == nullptr) return -EFAULT;
    buf_ptr = reinterpret_cast<long>(buf);
  }
  return c.Raw(SYS_times, buf_ptr);
}

int64_t SysSetitimer(WaliCtx& c, const int64_t* a) {
  const void* newval = c.Ptr(a[1], 32);  // struct itimerval
  if (newval == nullptr) return -EFAULT;
  long old_ptr = 0;
  if (a[2] != 0) {
    void* old = c.Ptr(a[2], 32);
    if (old == nullptr) return -EFAULT;
    old_ptr = reinterpret_cast<long>(old);
  }
  return c.Raw(SYS_setitimer, a[0], reinterpret_cast<long>(newval), old_ptr);
}

int64_t SysGetitimer(WaliCtx& c, const int64_t* a) {
  void* val = c.Ptr(a[1], 32);
  if (val == nullptr) return -EFAULT;
  return c.Raw(SYS_getitimer, a[0], reinterpret_cast<long>(val));
}

}  // namespace

void RegisterTimeSyscalls(std::vector<SyscallDef>& defs) {
  defs.insert(defs.end(), {
      {"clock_gettime", 2, SysClockGettime, false, 4},
      {"clock_getres", 2, SysClockGetres, false, 6},
      {"clock_settime", 2, SysClockSettime, false, 1},
      {"nanosleep", 2, SysNanosleep, false, 8},
      {"clock_nanosleep", 4, SysClockNanosleep, false, 8},
      {"gettimeofday", 2, SysGettimeofday, false, 5},
      {"times", 1, SysTimes, false, 5},
      {"setitimer", 3, SysSetitimer, false, 8},
      {"getitimer", 2, SysGetitimer, false, 4},
  });
}

}  // namespace wali
