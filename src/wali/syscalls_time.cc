// Clock/timer syscalls. WALI's portable timespec/timeval use 64-bit fields,
// matching the LP64 kernel layout, so these are zero-copy passthrough.
#include <errno.h>
#include <sys/syscall.h>
#include <time.h>

#include "src/abi/layout.h"
#include "src/wali/runtime.h"

namespace wali {

namespace {

int64_t SysClockGettime(WaliCtx& c, const int64_t* a) {
  void* ts = c.Ptr(a[1], sizeof(wabi::WaliTimespec));
  if (ts == nullptr) return -EFAULT;
  return c.Raw(SYS_clock_gettime, a[0], reinterpret_cast<long>(ts));
}

int64_t SysClockGetres(WaliCtx& c, const int64_t* a) {
  long ts_ptr = 0;
  if (a[1] != 0) {
    void* ts = c.Ptr(a[1], sizeof(wabi::WaliTimespec));
    if (ts == nullptr) return -EFAULT;
    ts_ptr = reinterpret_cast<long>(ts);
  }
  return c.Raw(SYS_clock_getres, a[0], ts_ptr);
}

int64_t SysClockSettime(WaliCtx& c, const int64_t* a) {
  return -EPERM;  // never allow the sandbox to set host clocks
}

int64_t SysNanosleep(WaliCtx& c, const int64_t* a) {
  const void* req = c.Ptr(a[0], sizeof(wabi::WaliTimespec));
  if (req == nullptr) return -EFAULT;
  long rem_ptr = 0;
  if (a[1] != 0) {
    void* rem = c.Ptr(a[1], sizeof(wabi::WaliTimespec));
    if (rem == nullptr) return -EFAULT;
    rem_ptr = reinterpret_cast<long>(rem);
  }
  return c.Raw(SYS_nanosleep, reinterpret_cast<long>(req), rem_ptr);
}

int64_t SysClockNanosleep(WaliCtx& c, const int64_t* a) {
  const void* req = c.Ptr(a[2], sizeof(wabi::WaliTimespec));
  if (req == nullptr) return -EFAULT;
  long rem_ptr = 0;
  if (a[3] != 0) {
    void* rem = c.Ptr(a[3], sizeof(wabi::WaliTimespec));
    if (rem == nullptr) return -EFAULT;
    rem_ptr = reinterpret_cast<long>(rem);
  }
  return c.Raw(SYS_clock_nanosleep, a[0], a[1], reinterpret_cast<long>(req), rem_ptr);
}

int64_t SysGettimeofday(WaliCtx& c, const int64_t* a) {
  long tv_ptr = 0;
  if (a[0] != 0) {
    void* tv = c.Ptr(a[0], 16);
    if (tv == nullptr) return -EFAULT;
    tv_ptr = reinterpret_cast<long>(tv);
  }
  return c.Raw(SYS_gettimeofday, tv_ptr, 0);
}

int64_t SysTimes(WaliCtx& c, const int64_t* a) {
  long buf_ptr = 0;
  if (a[0] != 0) {
    void* buf = c.Ptr(a[0], 32);  // struct tms: 4 x clock_t
    if (buf == nullptr) return -EFAULT;
    buf_ptr = reinterpret_cast<long>(buf);
  }
  return c.Raw(SYS_times, buf_ptr);
}

int64_t SysSetitimer(WaliCtx& c, const int64_t* a) {
  const void* newval = c.Ptr(a[1], 32);  // struct itimerval
  if (newval == nullptr) return -EFAULT;
  long old_ptr = 0;
  if (a[2] != 0) {
    void* old = c.Ptr(a[2], 32);
    if (old == nullptr) return -EFAULT;
    old_ptr = reinterpret_cast<long>(old);
  }
  return c.Raw(SYS_setitimer, a[0], reinterpret_cast<long>(newval), old_ptr);
}

int64_t SysGetitimer(WaliCtx& c, const int64_t* a) {
  void* val = c.Ptr(a[1], 32);
  if (val == nullptr) return -EFAULT;
  return c.Raw(SYS_getitimer, a[0], reinterpret_cast<long>(val));
}

}  // namespace

void RegisterTimeSyscalls(std::vector<SyscallDef>& defs) {
  defs.insert(defs.end(), {
      {"clock_gettime", 2, SysClockGettime, false, 4},
      {"clock_getres", 2, SysClockGetres, false, 6},
      {"clock_settime", 2, SysClockSettime, false, 1},
      {"nanosleep", 2, SysNanosleep, false, 8},
      {"clock_nanosleep", 4, SysClockNanosleep, false, 8},
      {"gettimeofday", 2, SysGettimeofday, false, 5},
      {"times", 1, SysTimes, false, 5},
      {"setitimer", 3, SysSetitimer, false, 8},
      {"getitimer", 2, SysGetitimer, false, 4},
  });
}

}  // namespace wali
