#include "src/wali/process.h"

#include <errno.h>
#include <linux/futex.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <future>

#include "src/common/logging.h"
#include "src/wali/runtime.h"

namespace wali {

namespace {

// Subset of clone(2) flags WALI interprets for thread spawn bookkeeping.
constexpr uint64_t kCloneParentSettid = 0x00100000;  // CLONE_PARENT_SETTID
constexpr uint64_t kCloneChildSettid = 0x01000000;   // CLONE_CHILD_SETTID
constexpr uint64_t kCloneChildCleartid = 0x00200000;  // CLONE_CHILD_CLEARTID

}  // namespace

WaliProcess::WaliProcess(WaliRuntime* rt, std::vector<std::string> argv_in,
                         std::vector<std::string> env_in)
    : runtime(rt), argv(std::move(argv_in)), env(std::move(env_in)) {}

WaliProcess::~WaliProcess() {
  JoinThreads();
  CloseGuestFds();
}

void WaliProcess::TrackFd(int fd) {
  if (fd <= 2) {
    return;
  }
  std::lock_guard<std::mutex> lock(fds_mu_);
  guest_fds_.insert(fd);
}

void WaliProcess::UntrackFd(int fd) {
  std::lock_guard<std::mutex> lock(fds_mu_);
  guest_fds_.erase(fd);
}

bool WaliProcess::OffloadableCached(int fd) {
  // Classify under the lock: a concurrent InvalidateOffloadFd (another
  // guest thread's close/dup2/F_SETFL dispatch) must serialize either
  // before the fstat+fcntl here (we classify the new state) or after the
  // insert (it erases our entry) — never between them, which would pin a
  // stale answer. Misses are once-per-fd and the syscalls are cheap, so
  // holding the mutex across them is fine.
  std::lock_guard<std::mutex> lock(offload_mu_);
  auto it = offload_cache_.find(fd);
  if (it != offload_cache_.end()) {
    return it->second;
  }
  bool offloadable = OffloadableFd(fd);
  offload_cache_[fd] = offloadable;
  return offloadable;
}

void WaliProcess::InvalidateOffloadFd(int fd) {
  std::lock_guard<std::mutex> lock(offload_mu_);
  offload_cache_.erase(fd);
}

void WaliProcess::ClearOffloadCache() {
  std::lock_guard<std::mutex> lock(offload_mu_);
  offload_cache_.clear();
}

void WaliProcess::CloseGuestFds() {
  std::set<int> fds;
  {
    std::lock_guard<std::mutex> lock(fds_mu_);
    fds.swap(guest_fds_);
  }
  for (int fd : fds) {
    ::close(fd);
  }
}

int WaliProcess::tracked_fd_count() {
  std::lock_guard<std::mutex> lock(fds_mu_);
  return static_cast<int>(guest_fds_.size());
}

std::vector<int> WaliProcess::GuestFds() {
  std::lock_guard<std::mutex> lock(fds_mu_);
  return std::vector<int>(guest_fds_.begin(), guest_fds_.end());
}

void WaliProcess::AdoptGuestFds(const std::vector<int>& fds) {
  std::lock_guard<std::mutex> lock(fds_mu_);
  for (int fd : fds) {
    if (fd > 2) {
      guest_fds_.insert(fd);
    }
  }
}

void WaliProcess::ResetForReuse(std::vector<std::string> argv_in,
                                std::vector<std::string> env_in) {
  JoinThreads();
  argv = std::move(argv_in);
  env = std::move(env_in);
  cpu_deadline_nanos.store(0, std::memory_order_release);
  mem_budget_pages.store(0, std::memory_order_release);
  syscall_budget.store(0, std::memory_order_release);
  run_syscalls.store(0, std::memory_order_release);
  exit_all.store(false, std::memory_order_release);
  exit_code.store(0, std::memory_order_release);
  in_signal_handler.store(false, std::memory_order_release);
  clear_child_tid.store(0, std::memory_order_release);
  sigtable.Reset();
  mmap.Reset();
  trace.Reset();
  pending_io.Reset();
  park_after_syscalls = 0;
  syscalls_since_park = 0;
  CloseGuestFds();
  ClearOffloadCache();  // next tenant's fd numbers mean different files
  policy.reset();
  // Keep the recycled interpreter buffers warm across slot reuse, but bound
  // what a slot retains: a deep run can grow the operand stack toward
  // max_value_stack (32 MiB), and that scratch is invisible to the tenant
  // accounting layer — a pool of such slots must not pin it for the host's
  // lifetime. Typical runs stay well under these caps and keep their
  // capacity.
  constexpr size_t kMaxRetainedStackSlots = 1 << 16;  // 512 KiB
  constexpr size_t kMaxRetainedFrames = 1024;
  if (exec_buffers.stack.capacity() > kMaxRetainedStackSlots) {
    std::vector<uint64_t>().swap(exec_buffers.stack);
  }
  if (exec_buffers.frames.capacity() > kMaxRetainedFrames) {
    std::vector<wasm::ExecContext::Frame>().swap(exec_buffers.frames);
  }
  main_instance.reset();
  module.reset();
}

int WaliProcess::thread_count() {
  std::lock_guard<std::mutex> lock(threads_mu_);
  return static_cast<int>(threads_.size());
}

void WaliProcess::JoinThreads() {
  while (true) {
    std::unique_ptr<GuestThread> t;
    {
      std::lock_guard<std::mutex> lock(threads_mu_);
      if (threads_.empty()) {
        return;
      }
      t = std::move(threads_.back());
      threads_.pop_back();
    }
    if (t->native.joinable()) {
      t->native.join();
    }
  }
}

int64_t WaliProcess::SpawnThread(uint32_t func_index, uint64_t arg, uint64_t flags,
                                 uint64_t ptid_addr, uint64_t ctid_addr) {
  // Instance-per-thread (paper §3.1): re-instantiate the module sharing the
  // parent's linear memory; globals/tables are fresh per thread, and active
  // data segments are not re-applied (memory is already live).
  wasm::Linker::InstantiateOptions opts;
  opts.memory0_override = memory;
  opts.apply_data = false;
  opts.run_start = false;
  opts.user_data = this;
  opts.instance_name = "thread";
  auto instOr = runtime->linker()->Instantiate(module, opts);
  if (!instOr.ok()) {
    LOG_ERROR() << "clone: thread instantiation failed: "
                << instOr.status().ToString();
    return -EAGAIN;
  }
  std::shared_ptr<wasm::Instance> inst = std::move(*instOr);
  AdoptInstance(inst.get());

  auto table = inst->table(0);
  if (table == nullptr || func_index >= table->elems.size() ||
      table->elems[func_index].IsNull()) {
    return -EINVAL;
  }
  wasm::FuncRef entry = table->elems[func_index];

  std::promise<pid_t> tid_promise;
  std::future<pid_t> tid_future = tid_promise.get_future();
  wasm::ExecOptions exec_opts = runtime->exec_options();
  WaliProcess* proc = this;

  auto thread = std::make_unique<GuestThread>();
  thread->native = std::thread([proc, inst, entry, arg, flags, ctid_addr, exec_opts,
                                promise = std::move(tid_promise)]() mutable {
    pid_t tid = static_cast<pid_t>(::syscall(SYS_gettid));
    if ((flags & kCloneChildSettid) != 0 && ctid_addr != 0 &&
        proc->memory->InBounds(ctid_addr, 4)) {
      *reinterpret_cast<uint32_t*>(proc->memory->At(ctid_addr)) =
          static_cast<uint32_t>(tid);
    }
    promise.set_value(tid);
    wasm::RunResult r =
        inst->CallRef(entry, {wasm::Value::I32(static_cast<uint32_t>(arg))}, exec_opts);
    if (!r.ok() && r.trap != wasm::TrapKind::kExit) {
      LOG_ERROR() << "guest thread trapped: " << wasm::TrapKindName(r.trap);
    }
    // CLONE_CHILD_CLEARTID: clear the tid word and futex-wake joiners
    // (musl pthread_join blocks on this address).
    if ((flags & kCloneChildCleartid) != 0 && ctid_addr != 0 &&
        proc->memory->InBounds(ctid_addr, 4)) {
      uint32_t* word = reinterpret_cast<uint32_t*>(proc->memory->At(ctid_addr));
      __atomic_store_n(word, 0, __ATOMIC_SEQ_CST);
      ::syscall(SYS_futex, word, FUTEX_WAKE, INT32_MAX, nullptr, nullptr, 0);
      proc->memory->Notify(ctid_addr, UINT32_MAX);
    }
  });

  pid_t tid = tid_future.get();
  if ((flags & kCloneParentSettid) != 0 && ptid_addr != 0 &&
      memory->InBounds(ptid_addr, 4)) {
    *reinterpret_cast<uint32_t*>(memory->At(ptid_addr)) = static_cast<uint32_t>(tid);
  }
  {
    std::lock_guard<std::mutex> lock(threads_mu_);
    threads_.push_back(std::move(thread));
  }
  return tid;
}

}  // namespace wali
