// WAZI: the thin kernel interface for the Zephyr-class RTOS simulator,
// built by applying the paper's §5 recipe:
//   (1) name-bind every kernel call (auto-generated from the kernel's
//       compile-time syscall encoding table),
//   (2) sandbox every memory address crossing the boundary,
//   (3) ISA-portable argument encodings (handles + i64 scalars),
//   (4) map the process model (k_thread_create spawns instance-per-thread
//       sharing linear memory, as in WALI),
//   (5) kernel memory services stay inside linear memory,
//   (6) asynchronous interactions surface at safepoints.
#ifndef SRC_WAZI_WAZI_H_
#define SRC_WAZI_WAZI_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/rtos/kernel.h"
#include "src/wasm/wasm.h"

namespace wazi {

class WaziRuntime;

// One WAZI application context (a Zephyr "image" instance).
class WaziProcess {
 public:
  WaziProcess(WaziRuntime* runtime, rtos::Kernel* kernel)
      : runtime(runtime), kernel(kernel) {}
  ~WaziProcess();

  void AdoptInstance(wasm::Instance* instance);
  // k_thread_create backend: fresh instance sharing linear memory, entry is
  // a funcref table index with signature (i32)->i32.
  int64_t SpawnThread(uint32_t func_index, uint64_t arg, int priority);
  void JoinThreads();

  WaziRuntime* runtime;
  rtos::Kernel* kernel;
  std::shared_ptr<const wasm::Module> module;
  std::unique_ptr<wasm::Instance> main_instance;
  std::shared_ptr<wasm::Memory> memory;
  std::atomic<uint64_t> syscall_count{0};

 private:
  std::mutex threads_mu_;
  std::vector<std::thread> threads_;
};

class WaziRuntime {
 public:
  // Registers the "wazi" namespace on `linker`, binding every entry of the
  // kernel's SyscallEncoding() table. `kernel` must outlive the runtime.
  WaziRuntime(wasm::Linker* linker, rtos::Kernel* kernel);

  common::StatusOr<std::unique_ptr<WaziProcess>> CreateProcess(
      std::shared_ptr<const wasm::Module> module);
  wasm::RunResult RunMain(WaziProcess& process);

  // How many kernel calls were auto-generated vs hand-written (paper §5:
  // most of the implementation comes from the encoding table).
  int num_bound_syscalls() const { return num_bound_; }

  wasm::Linker* linker() { return linker_; }
  rtos::Kernel* kernel() { return kernel_; }

 private:
  void Register();

  wasm::Linker* linker_;
  rtos::Kernel* kernel_;
  int num_bound_ = 0;
};

}  // namespace wazi

#endif  // SRC_WAZI_WAZI_H_
