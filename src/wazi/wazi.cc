#include "src/wazi/wazi.h"

#include <cstring>

#include "src/common/logging.h"

namespace wazi {

namespace {

struct WaziCtx {
  wasm::ExecContext& exec;
  WaziProcess& proc;
  wasm::Memory& mem;

  void* Ptr(uint64_t addr, uint64_t len) const {
    if (!mem.InBounds(addr, len)) {
      return nullptr;
    }
    return mem.At(addr);
  }
  bool GetStr(uint64_t addr, std::string* out) const {
    uint64_t size = mem.size_bytes();
    uint64_t n = 0;
    while (addr + n < size && n < 256) {
      char ch = static_cast<char>(*mem.At(addr + n));
      if (ch == '\0') {
        out->assign(reinterpret_cast<const char*>(mem.At(addr)), n);
        return true;
      }
      ++n;
    }
    return false;
  }
};

using KHandler = int64_t (*)(WaziCtx&, const int64_t*);

// Hand-written bodies for each encoded syscall; everything else about the
// binding (name, signature, registration, sandbox context) is generated
// from the encoding table.
int64_t Dispatch(const std::string& name, WaziCtx& c, const int64_t* a) {
  rtos::Kernel& k = *c.proc.kernel;
  if (name == "k_uptime_get") return k.UptimeMs();
  if (name == "k_sleep") {
    k.SleepMs(a[0]);
    return rtos::kOk;
  }
  if (name == "k_usleep") {
    k.SleepMs(a[0] / 1000 + ((a[0] % 1000) != 0 ? 1 : 0));
    return rtos::kOk;
  }
  if (name == "k_yield") {
    k.Yield();
    return rtos::kOk;
  }
  if (name == "k_sem_create") {
    return k.SemCreate(static_cast<uint32_t>(a[0]), static_cast<uint32_t>(a[1]));
  }
  if (name == "k_sem_take") {
    rtos::Semaphore* s = k.Sem(a[0]);
    return s != nullptr ? s->Take(a[1]) : rtos::kEinval;
  }
  if (name == "k_sem_give") {
    rtos::Semaphore* s = k.Sem(a[0]);
    if (s == nullptr) return rtos::kEinval;
    s->Give();
    return rtos::kOk;
  }
  if (name == "k_sem_count_get") {
    rtos::Semaphore* s = k.Sem(a[0]);
    return s != nullptr ? s->Count() : rtos::kEinval;
  }
  if (name == "k_mutex_create") return k.MutexCreate();
  if (name == "k_mutex_lock") {
    rtos::Mutex* m = k.Mut(a[0]);
    return m != nullptr ? m->Lock(a[1]) : rtos::kEinval;
  }
  if (name == "k_mutex_unlock") {
    rtos::Mutex* m = k.Mut(a[0]);
    return m != nullptr ? m->Unlock() : rtos::kEinval;
  }
  if (name == "k_msgq_create") {
    return k.MsgqCreate(static_cast<uint32_t>(a[0]), static_cast<uint32_t>(a[1]));
  }
  if (name == "k_msgq_put") {
    rtos::MsgQueue* q = k.Msgq(a[0]);
    if (q == nullptr) return rtos::kEinval;
    const void* msg = c.Ptr(static_cast<uint64_t>(a[1]), q->msg_size());
    if (msg == nullptr) return rtos::kEinval;
    return q->Put(msg, a[2]);
  }
  if (name == "k_msgq_get") {
    rtos::MsgQueue* q = k.Msgq(a[0]);
    if (q == nullptr) return rtos::kEinval;
    void* msg = c.Ptr(static_cast<uint64_t>(a[1]), q->msg_size());
    if (msg == nullptr) return rtos::kEinval;
    return q->Get(msg, a[2]);
  }
  if (name == "k_msgq_num_used_get") {
    rtos::MsgQueue* q = k.Msgq(a[0]);
    return q != nullptr ? q->NumUsed() : rtos::kEinval;
  }
  if (name == "k_thread_create") {
    return c.proc.SpawnThread(static_cast<uint32_t>(a[0]), static_cast<uint64_t>(a[1]),
                              static_cast<int>(a[2]));
  }
  if (name == "k_thread_join") {
    return k.ThreadJoin(a[0], a[1]);
  }
  if (name == "device_get_binding") {
    std::string dev_name;
    if (!c.GetStr(static_cast<uint64_t>(a[0]), &dev_name)) return rtos::kEinval;
    return k.DeviceGetBinding(dev_name);
  }
  if (name == "uart_poll_out") {
    auto* dev = dynamic_cast<rtos::UartDevice*>(k.DeviceByHandle(a[0]));
    if (dev == nullptr) return rtos::kEnodev;
    dev->PollOut(static_cast<uint8_t>(a[1]));
    return rtos::kOk;
  }
  if (name == "uart_poll_in") {
    auto* dev = dynamic_cast<rtos::UartDevice*>(k.DeviceByHandle(a[0]));
    if (dev == nullptr) return rtos::kEnodev;
    auto* byte = static_cast<uint8_t*>(c.Ptr(static_cast<uint64_t>(a[1]), 1));
    if (byte == nullptr) return rtos::kEinval;
    return dev->PollIn(byte);
  }
  if (name == "gpio_pin_configure") {
    auto* dev = dynamic_cast<rtos::GpioDevice*>(k.DeviceByHandle(a[0]));
    if (dev == nullptr) return rtos::kEnodev;
    return dev->Configure(static_cast<uint32_t>(a[1]), static_cast<uint32_t>(a[2]));
  }
  if (name == "gpio_pin_set") {
    auto* dev = dynamic_cast<rtos::GpioDevice*>(k.DeviceByHandle(a[0]));
    if (dev == nullptr) return rtos::kEnodev;
    return dev->Set(static_cast<uint32_t>(a[1]), static_cast<uint32_t>(a[2]));
  }
  if (name == "gpio_pin_get") {
    auto* dev = dynamic_cast<rtos::GpioDevice*>(k.DeviceByHandle(a[0]));
    if (dev == nullptr) return rtos::kEnodev;
    return dev->Get(static_cast<uint32_t>(a[1]));
  }
  if (name == "sensor_sample_fetch") {
    auto* dev = dynamic_cast<rtos::SensorDevice*>(k.DeviceByHandle(a[0]));
    if (dev == nullptr) return rtos::kEnodev;
    return dev->SampleFetch();
  }
  if (name == "sensor_channel_get") {
    auto* dev = dynamic_cast<rtos::SensorDevice*>(k.DeviceByHandle(a[0]));
    if (dev == nullptr) return rtos::kEnodev;
    return dev->ChannelGet(static_cast<uint32_t>(a[1]));
  }
  if (name == "k_oops") {
    k.RecordFault();
    c.exec.SetTrap(wasm::TrapKind::kHostError, "k_oops");
    return rtos::kEinval;
  }
  return rtos::kEinval;
}

}  // namespace

WaziProcess::~WaziProcess() { JoinThreads(); }

void WaziProcess::AdoptInstance(wasm::Instance* instance) {
  instance->set_user_data(this);
}

int64_t WaziProcess::SpawnThread(uint32_t func_index, uint64_t arg, int priority) {
  wasm::Linker::InstantiateOptions opts;
  opts.memory0_override = memory;
  opts.apply_data = false;
  opts.run_start = false;
  opts.user_data = this;
  opts.instance_name = "k_thread";
  auto instOr = runtime->linker()->Instantiate(module, opts);
  if (!instOr.ok()) {
    return rtos::kEnomem;
  }
  std::shared_ptr<wasm::Instance> inst = std::move(*instOr);
  AdoptInstance(inst.get());
  auto table = inst->table(0);
  if (table == nullptr || func_index >= table->elems.size() ||
      table->elems[func_index].IsNull()) {
    return rtos::kEinval;
  }
  wasm::FuncRef entry = table->elems[func_index];
  return kernel->ThreadCreate(
      [inst, entry, arg]() {
        wasm::RunResult r =
            inst->CallRef(entry, {wasm::Value::I32(static_cast<uint32_t>(arg))}, {});
        if (!r.ok() && r.trap != wasm::TrapKind::kExit) {
          LOG_ERROR() << "wazi thread trapped: " << wasm::TrapKindName(r.trap);
        }
      },
      priority, "wazi-thread");
}

void WaziProcess::JoinThreads() {
  // Kernel-owned threads joined via kernel teardown or k_thread_join.
}

WaziRuntime::WaziRuntime(wasm::Linker* linker, rtos::Kernel* kernel)
    : linker_(linker), kernel_(kernel) {
  Register();
}

void WaziRuntime::Register() {
  // Auto-generation from the encoding table (paper §5): one uniform binding
  // per encoded syscall. Only Dispatch() bodies are hand-written.
  for (const rtos::KSyscallDesc& desc : rtos::SyscallEncoding()) {
    wasm::FuncType type;
    type.params.assign(desc.nargs, wasm::ValType::kI64);
    type.results = {wasm::ValType::kI64};
    std::string name = desc.name;
    linker_->DefineHostFunc(
        "wazi", name, type,
        [this, name](wasm::ExecContext& ctx, const uint64_t* args,
                     uint64_t* results) -> wasm::TrapKind {
          auto* proc = static_cast<WaziProcess*>(ctx.current_instance()->user_data());
          if (proc == nullptr) {
            ctx.SetTrap(wasm::TrapKind::kHostError, "WAZI call outside a WAZI process");
            return ctx.trap;
          }
          proc->syscall_count.fetch_add(1, std::memory_order_relaxed);
          WaziCtx c{ctx, *proc, *proc->memory};
          results[0] =
              static_cast<uint64_t>(Dispatch(name, c, reinterpret_cast<const int64_t*>(args)));
          return ctx.trap;
        });
    ++num_bound_;
  }
}

common::StatusOr<std::unique_ptr<WaziProcess>> WaziRuntime::CreateProcess(
    std::shared_ptr<const wasm::Module> module) {
  auto proc = std::make_unique<WaziProcess>(this, kernel_);
  proc->module = module;
  wasm::Linker::InstantiateOptions opts;
  opts.user_data = proc.get();
  opts.instance_name = "wazi-app";
  ASSIGN_OR_RETURN(std::unique_ptr<wasm::Instance> inst,
                   linker_->Instantiate(module, opts));
  proc->main_instance = std::move(inst);
  proc->memory = proc->main_instance->memory(0);
  if (proc->memory == nullptr) {
    return common::InvalidArgument("WAZI modules must declare a memory");
  }
  proc->AdoptInstance(proc->main_instance.get());
  return proc;
}

wasm::RunResult WaziRuntime::RunMain(WaziProcess& process) {
  wasm::RunResult r = process.main_instance->CallExport("main", {}, {});
  if (r.ok() && !r.values.empty()) {
    r.exit_code = static_cast<int32_t>(r.values[0].i32());
  }
  return r;
}

}  // namespace wazi
