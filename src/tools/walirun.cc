// walirun — run a WALI program the way the paper's artifact runs .wasm files
// like ELF binaries (binfmt-style):
//
//   walirun [options] <program.wat|program.wasm> [args...]
//
// Options:
//   -e KEY=VALUE     add an environment variable (repeatable; §3.4: env is
//                    explicit, never inherited)
//   --scheme S       safepoint scheme: loop (default) | function | all | none
//   --compile OUT    encode the module to binary .wasm at OUT and exit
//   --trace          print the syscall profile after the run (WALI_VERBOSE-
//                    style diagnostics; set WALI_LOG=3 for per-call logging)
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/wali/wali.h"
#include "src/wasm/wasm.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: walirun [-e K=V]... [--scheme loop|function|all|none]\n"
               "               [--compile out.wasm] [--trace] <prog.wat|prog.wasm> "
               "[args...]\n");
  return 2;
}

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return false;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

bool LooksLikeBinary(const std::string& bytes) {
  return bytes.size() >= 4 && bytes[0] == '\0' && bytes[1] == 'a' && bytes[2] == 's' &&
         bytes[3] == 'm';
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> env;
  std::string compile_out;
  bool trace = false;
  wasm::SafepointScheme scheme = wasm::SafepointScheme::kLoop;

  int i = 1;
  for (; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "-e" && i + 1 < argc) {
      env.push_back(argv[++i]);
    } else if (arg == "--scheme" && i + 1 < argc) {
      std::string s = argv[++i];
      if (s == "loop") scheme = wasm::SafepointScheme::kLoop;
      else if (s == "function") scheme = wasm::SafepointScheme::kFunction;
      else if (s == "all") scheme = wasm::SafepointScheme::kEveryInstr;
      else if (s == "none") scheme = wasm::SafepointScheme::kNone;
      else return Usage();
    } else if (arg == "--compile" && i + 1 < argc) {
      compile_out = argv[++i];
    } else if (arg == "--trace") {
      trace = true;
    } else if (arg == "--help" || arg == "-h") {
      return Usage();
    } else {
      break;
    }
  }
  if (i >= argc) {
    return Usage();
  }

  std::string path = argv[i];
  std::string bytes;
  if (!ReadFile(path, &bytes)) {
    std::fprintf(stderr, "walirun: cannot read %s\n", path.c_str());
    return 1;
  }

  common::StatusOr<std::shared_ptr<wasm::Module>> parsed =
      LooksLikeBinary(bytes)
          ? wasm::DecodeModule(reinterpret_cast<const uint8_t*>(bytes.data()),
                               bytes.size())
          : wasm::ParseWat(bytes);
  if (!parsed.ok()) {
    std::fprintf(stderr, "walirun: %s\n", parsed.status().ToString().c_str());
    return 1;
  }
  common::Status validated = wasm::Validate(**parsed);
  if (!validated.ok()) {
    std::fprintf(stderr, "walirun: %s\n", validated.ToString().c_str());
    return 1;
  }

  if (!compile_out.empty()) {
    std::vector<uint8_t> encoded = wasm::EncodeModule(**parsed);
    std::ofstream out(compile_out, std::ios::binary);
    out.write(reinterpret_cast<const char*>(encoded.data()),
              static_cast<std::streamsize>(encoded.size()));
    std::fprintf(stderr, "walirun: wrote %zu bytes to %s\n", encoded.size(),
                 compile_out.c_str());
    return 0;
  }

  std::vector<std::string> guest_argv;
  guest_argv.push_back(path);
  for (int k = i + 1; k < argc; ++k) {
    guest_argv.push_back(argv[k]);
  }

  wasm::Linker linker;
  wali::WaliRuntime::Options opts;
  opts.scheme = scheme;
  wali::WaliRuntime runtime(&linker, opts);
  auto proc = runtime.CreateProcess(*parsed, guest_argv, env);
  if (!proc.ok()) {
    std::fprintf(stderr, "walirun: %s\n", proc.status().ToString().c_str());
    return 1;
  }
  wasm::RunResult r = runtime.RunMain(**proc);

  if (trace) {
    std::fprintf(stderr, "--- syscall profile ---\n");
    const auto& defs = runtime.syscalls();
    for (size_t id = 0; id < defs.size(); ++id) {
      uint64_t n = (*proc)->trace.count(static_cast<uint32_t>(id));
      if (n > 0) {
        std::fprintf(stderr, "%10llu  %s\n", static_cast<unsigned long long>(n),
                     defs[id].name);
      }
    }
    std::fprintf(stderr, "wali time: %.3f ms, kernel time: %.3f ms\n",
                 (*proc)->trace.wali_nanos() / 1e6,
                 (*proc)->trace.kernel_nanos() / 1e6);
  }

  if (r.trap == wasm::TrapKind::kExit) {
    return r.exit_code;
  }
  if (!r.ok()) {
    std::fprintf(stderr, "walirun: trap: %s %s\n", wasm::TrapKindName(r.trap),
                 r.trap_message.c_str());
    return 134;  // mimic abort
  }
  if (!r.values.empty()) {
    return static_cast<int>(r.values[0].i32());
  }
  return 0;
}
