// walirun — run a WALI program the way the paper's artifact runs .wasm files
// like ELF binaries (binfmt-style):
//
//   walirun [options] <program.wat|program.wasm> [args...]
//
// Options:
//   -e KEY=VALUE     add an environment variable (repeatable; §3.4: env is
//                    explicit, never inherited)
//   --scheme S       safepoint scheme: loop (default) | function | all | none
//   --compile OUT    encode the module to binary .wasm at OUT and exit
//   --trace          print the syscall profile after the run (WALI_VERBOSE-
//                    style diagnostics; set WALI_LOG=3 for per-call logging)
//   --serve N        multi-tenant mode: run the program on the host
//                    supervisor with N concurrent workers (instance-pooled)
//   --repeat K       with --serve: each worker lane runs the guest K times
//                    (N*K total runs); reports per-exit-code counts,
//                    throughput, and pool statistics
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "src/common/time_util.h"
#include "src/host/host.h"
#include "src/wali/wali.h"
#include "src/wasm/wasm.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: walirun [-e K=V]... [--scheme loop|function|all|none]\n"
               "               [--compile out.wasm] [--trace]\n"
               "               [--serve N [--repeat K]] <prog.wat|prog.wasm> "
               "[args...]\n");
  return 2;
}

}  // namespace

// Multi-tenant serving mode: N*K runs of the guest on the supervisor, with
// per-run reports aggregated into an exit-code histogram and pool stats.
int Serve(wali::WaliRuntime& runtime, std::shared_ptr<const wasm::Module> module,
          const std::vector<std::string>& guest_argv,
          const std::vector<std::string>& env, int workers, int repeat) {
  host::Supervisor::Options sopts;
  sopts.workers = static_cast<size_t>(workers);
  sopts.pool.max_idle_per_module = static_cast<size_t>(workers);
  host::Supervisor sup(&runtime, sopts);

  const int total = workers * repeat;
  std::vector<std::future<host::RunReport>> futures;
  futures.reserve(total);
  int64_t t0 = common::MonotonicNanos();
  for (int k = 0; k < total; ++k) {
    host::GuestJob job;
    job.module = module;
    job.argv = guest_argv;
    job.env = env;
    job.env.push_back("WALI_RUN_INDEX=" + std::to_string(k));
    futures.push_back(sup.Submit(std::move(job)));
  }

  std::map<int32_t, int> exit_histogram;
  int completed = 0, trapped = 0, pooled = 0;
  uint64_t syscalls = 0;
  for (std::future<host::RunReport>& f : futures) {
    host::RunReport r = f.get();
    if (r.completed()) {
      ++completed;
      ++exit_histogram[r.exit_code];
    } else {
      ++trapped;
      std::fprintf(stderr, "walirun: guest trap: %s %s\n",
                   wasm::TrapKindName(r.trap), r.trap_message.c_str());
    }
    if (r.pooled) ++pooled;
    syscalls += r.total_syscalls;
  }
  double secs = (common::MonotonicNanos() - t0) / 1e9;

  std::printf("serve: %d workers x %d runs = %d guests in %.3f s (%.0f guests/s)\n",
              workers, repeat, total, secs, secs > 0 ? total / secs : 0.0);
  std::printf("serve: %d completed, %d trapped, %d pooled, %llu syscalls\n",
              completed, trapped, pooled, static_cast<unsigned long long>(syscalls));
  for (const auto& [code, n] : exit_histogram) {
    std::printf("serve: exit %d x %d\n", code, n);
  }
  host::InstancePool::Stats ps = sup.pool().stats();
  std::printf(
      "pool: hits=%llu misses=%llu resets=%llu drops=%llu high_water=%llu "
      "idle=%zu\n",
      static_cast<unsigned long long>(ps.hits),
      static_cast<unsigned long long>(ps.misses),
      static_cast<unsigned long long>(ps.resets),
      static_cast<unsigned long long>(ps.drops),
      static_cast<unsigned long long>(ps.high_water), ps.idle);
  return trapped == 0 ? 0 : 1;
}

int main(int argc, char** argv) {
  std::vector<std::string> env;
  std::string compile_out;
  bool trace = false;
  int serve_workers = 0;
  int serve_repeat = 1;
  wasm::SafepointScheme scheme = wasm::SafepointScheme::kLoop;

  int i = 1;
  for (; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "-e" && i + 1 < argc) {
      env.push_back(argv[++i]);
    } else if (arg == "--serve" && i + 1 < argc) {
      serve_workers = std::atoi(argv[++i]);
      if (serve_workers <= 0) return Usage();
    } else if (arg == "--repeat" && i + 1 < argc) {
      serve_repeat = std::atoi(argv[++i]);
      if (serve_repeat <= 0) return Usage();
    } else if (arg == "--scheme" && i + 1 < argc) {
      std::string s = argv[++i];
      if (s == "loop") scheme = wasm::SafepointScheme::kLoop;
      else if (s == "function") scheme = wasm::SafepointScheme::kFunction;
      else if (s == "all") scheme = wasm::SafepointScheme::kEveryInstr;
      else if (s == "none") scheme = wasm::SafepointScheme::kNone;
      else return Usage();
    } else if (arg == "--compile" && i + 1 < argc) {
      compile_out = argv[++i];
    } else if (arg == "--trace") {
      trace = true;
    } else if (arg == "--help" || arg == "-h") {
      return Usage();
    } else {
      break;
    }
  }
  if (i >= argc) {
    return Usage();
  }

  std::string path = argv[i];
  // Single front end for .wat/.wasm detection, decode, and validation — the
  // same layer serve mode instantiates from.
  host::ModuleCache cache(/*capacity=*/1);
  common::StatusOr<std::shared_ptr<const wasm::Module>> parsed =
      cache.LoadFile(path);
  if (!parsed.ok()) {
    std::fprintf(stderr, "walirun: %s\n", parsed.status().ToString().c_str());
    return 1;
  }

  if (!compile_out.empty()) {
    std::vector<uint8_t> encoded = wasm::EncodeModule(**parsed);
    std::ofstream out(compile_out, std::ios::binary);
    out.write(reinterpret_cast<const char*>(encoded.data()),
              static_cast<std::streamsize>(encoded.size()));
    std::fprintf(stderr, "walirun: wrote %zu bytes to %s\n", encoded.size(),
                 compile_out.c_str());
    return 0;
  }

  std::vector<std::string> guest_argv;
  guest_argv.push_back(path);
  for (int k = i + 1; k < argc; ++k) {
    guest_argv.push_back(argv[k]);
  }

  wasm::Linker linker;
  wali::WaliRuntime::Options opts;
  opts.scheme = scheme;
  wali::WaliRuntime runtime(&linker, opts);

  if (serve_workers > 0) {
    return Serve(runtime, *parsed, guest_argv, env, serve_workers, serve_repeat);
  }

  auto proc = runtime.CreateProcess(*parsed, guest_argv, env);
  if (!proc.ok()) {
    std::fprintf(stderr, "walirun: %s\n", proc.status().ToString().c_str());
    return 1;
  }
  wasm::RunResult r = runtime.RunMain(**proc);

  if (trace) {
    std::fprintf(stderr, "--- syscall profile ---\n");
    const auto& defs = runtime.syscalls();
    for (size_t id = 0; id < defs.size(); ++id) {
      uint64_t n = (*proc)->trace.count(static_cast<uint32_t>(id));
      if (n > 0) {
        std::fprintf(stderr, "%10llu  %s\n", static_cast<unsigned long long>(n),
                     defs[id].name);
      }
    }
    std::fprintf(stderr, "wali time: %.3f ms, kernel time: %.3f ms\n",
                 (*proc)->trace.wali_nanos() / 1e6,
                 (*proc)->trace.kernel_nanos() / 1e6);
  }

  if (r.trap == wasm::TrapKind::kExit) {
    return r.exit_code;
  }
  if (!r.ok()) {
    std::fprintf(stderr, "walirun: trap: %s %s\n", wasm::TrapKindName(r.trap),
                 r.trap_message.c_str());
    return 134;  // mimic abort
  }
  if (!r.values.empty()) {
    return static_cast<int>(r.values[0].i32());
  }
  return 0;
}
