// walirun — run a WALI program the way the paper's artifact runs .wasm files
// like ELF binaries (binfmt-style):
//
//   walirun [options] <program.wat|program.wasm> [args...]
//
// Options:
//   -e KEY=VALUE     add an environment variable (repeatable; §3.4: env is
//                    explicit, never inherited)
//   --scheme S       safepoint scheme: loop (default) | function | all | none
//   --dispatch D     interpreter dispatch: threaded (computed-goto, default
//                    when built with WASM_THREADED_DISPATCH) | switch
//                    (portable big-switch loop). For A/B perf runs; results,
//                    traps, and fuel accounting are identical in both.
//   --compile OUT    encode the module to binary .wasm at OUT and exit
//   --trace          print the syscall profile after the run (WALI_VERBOSE-
//                    style diagnostics; set WALI_LOG=3 for per-call logging)
//   --serve N        multi-tenant mode: run the program on the host
//                    supervisor with N concurrent workers (instance-pooled).
//                    Prints the active dispatch mode and the prepare pass's
//                    fusion stats (per-superinstruction counts), so perf
//                    reports are attributable to the executing configuration
//   --repeat K       with --serve: each worker lane runs the guest K times
//                    (N*K total runs); reports per-exit-code counts,
//                    throughput, and pool statistics
//   --queue-depth D  with --serve: bound the per-tenant admission queue to
//                    D pending jobs. Serve paces its own submissions to
//                    the window (workers + D) so all N*K runs execute;
//                    submits that still overflow (overload races) are
//                    rejected (Outcome::kRejected) instead of queued
//   --tenant-budget SPEC
//                    with --serve: cumulative budget for the serving
//                    tenant, as comma-separated k=v pairs out of
//                    fuel=<instrs>, cpu_ms=<ms>, syscalls=<n>,
//                    mem_pages=<pages>; runs over fuel/cpu/syscall budget
//                    are stopped mid-run and further runs refused
//                    (kBudget), while mem_pages caps what memory.grow can
//                    commit per run
//   --async-io       with --serve: offload blocking guest syscalls onto an
//                    IoReactor completion loop; guests entering a blocking
//                    read/write/poll/accept/nanosleep park off-worker and
//                    resume when the op completes, so sleeping guests do
//                    not hold worker threads. Serve reports parks, peak
//                    in-flight, and blocked-time aggregates
//   --io-backend B   with --serve: which completion backend serves the
//                    offloaded ops (implies --async-io). auto (default)
//                    picks io_uring when the kernel and build support it,
//                    else the poll(2) reactor; io_uring falls back to poll
//                    with a notice when unavailable. The serve banner and
//                    the io_* telemetry series carry the active backend
//   --evict-parked   with --serve --async-io: a sweeper thread serializes
//                    every snapshot-eligible parked guest to bytes
//                    (Supervisor::EvictAllParked) and releases its pool
//                    slab; completed I/O restores the guest into a fresh
//                    slot. Exercises the whole evict/restore path under
//                    real concurrency; the summary line and the metrics
//                    dump report eviction/restore counts
//   --metrics-dump P write the telemetry registry to P after the run:
//                    Prometheus text exposition by default, or the JSON
//                    snapshot when P ends in .json. Works in both serve
//                    and single-run modes
//   --trace-out P    write the run's trace spans to P as chrome://tracing
//                    JSON (open in Perfetto). Spans are recorded by the
//                    supervisor, so single-run traces are empty
//   --log-level L    off | error (default) | info | debug. Serve-mode
//                    telemetry lines (periodic stats, resume-queue
//                    latency, hot functions) log at info, so default
//                    output is unchanged; same scale as WALI_LOG=0..3
//   --snapshot-out P single-run mode: run the guest resumably; when it parks
//                    in a blocking syscall whose state is pure data (e.g.
//                    nanosleep), serialize the whole process — interpreter
//                    suspension, globals, memory delta, fd table, signal
//                    dispositions, syscall trace — to P and exit 0 (see
//                    src/wasm/snapshot.h for the format). A guest that never
//                    parks runs to its normal exit and no file is written;
//                    a park that is not snapshotable (a read/write holding a
//                    live resume closure) is completed in place instead
//   --restore P      single-run mode: instead of starting the program at its
//                    entry point, rebuild the process from the snapshot at P
//                    (the module must be structurally identical to the one
//                    snapshotted — same code, not just the same file name),
//                    complete the parked op natively (a sleep sleeps out its
//                    remaining time), and continue to the normal exit;
//                    results are bit-identical to the never-parked run
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <fstream>
#include <functional>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/common/logging.h"
#include "src/common/time_util.h"
#include "src/host/host.h"
#include "src/host/io_uring_backend.h"
#include "src/host/telemetry.h"
#include "src/wali/process_snapshot.h"
#include "src/wali/wali.h"
#include "src/wasm/wasm.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: walirun [-e K=V]... [--scheme loop|function|all|none]\n"
               "               [--dispatch threaded|switch] [--jit on|off]\n"
               "               [--compile out.wasm] [--trace]\n"
               "               [--serve N [--repeat K] [--queue-depth D]\n"
               "                [--async-io [--evict-parked]]\n"
               "                [--io-backend auto|poll|io_uring]\n"
               "                [--tenant-budget fuel=N,cpu_ms=N,syscalls=N,"
               "mem_pages=N]]\n"
               "               [--metrics-dump out.prom|out.json]"
               " [--trace-out trace.json]\n"
               "               [--log-level off|error|info|debug]\n"
               "               [--snapshot-out snap] [--restore snap]\n"
               "               <prog.wat|prog.wasm> [args...]\n");
  return 2;
}

// Parses "fuel=N,cpu_ms=N,syscalls=N,mem_pages=N" (any subset, any order).
bool ParseTenantBudget(const std::string& spec, host::TenantBudget* out) {
  size_t i = 0;
  while (i < spec.size()) {
    size_t comma = spec.find(',', i);
    if (comma == std::string::npos) comma = spec.size();
    std::string pair = spec.substr(i, comma - i);
    i = comma + 1;
    size_t eq = pair.find('=');
    if (eq == std::string::npos) {
      return false;
    }
    std::string key = pair.substr(0, eq);
    long long value = std::atoll(pair.c_str() + eq + 1);
    if (value <= 0) {
      return false;
    }
    if (key == "fuel") {
      out->max_fuel = static_cast<uint64_t>(value);
    } else if (key == "cpu_ms") {
      out->max_cpu_nanos = value * 1000000;
    } else if (key == "syscalls") {
      out->max_syscalls = static_cast<uint64_t>(value);
    } else if (key == "mem_pages") {
      out->max_mem_pages = static_cast<uint64_t>(value);
    } else {
      return false;
    }
  }
  return true;
}

// --metrics-dump / --trace-out, shared by serve and single-run modes.
// Metrics format follows the extension: .json = snapshot JSON, anything
// else = Prometheus text exposition.
void DumpTelemetry(host::Telemetry& tel, const std::string& metrics_dump,
                   const std::string& trace_out) {
  if (!metrics_dump.empty()) {
    const bool json =
        metrics_dump.size() >= 5 &&
        metrics_dump.compare(metrics_dump.size() - 5, 5, ".json") == 0;
    if (!host::Telemetry::WriteFile(
            metrics_dump, json ? tel.JsonText() : tel.PrometheusText())) {
      std::fprintf(stderr, "walirun: cannot write %s\n", metrics_dump.c_str());
    }
  }
  if (!trace_out.empty()) {
    if (!host::Telemetry::WriteFile(trace_out, tel.ChromeTraceJson())) {
      std::fprintf(stderr, "walirun: cannot write %s\n", trace_out.c_str());
    }
  }
}

}  // namespace

// Multi-tenant serving mode: N*K runs of the guest on the supervisor, with
// per-run reports aggregated into exit-code and outcome histograms, the
// tenant's ledger line, and pool stats. All runs bill to one tenant
// ("serve"), so --tenant-budget caps the whole serving session and
// --queue-depth bounds its admission queue.
int Serve(wali::WaliRuntime& runtime, std::shared_ptr<const wasm::Module> module,
          const std::vector<std::string>& guest_argv,
          const std::vector<std::string>& env, int workers, int repeat,
          int queue_depth, const host::TenantBudget& budget, bool async_io,
          const std::string& io_backend_choice, bool evict_parked,
          host::Telemetry* tel) {
  const char* kTenant = "serve";
  host::Supervisor::Options sopts;
  sopts.workers = static_cast<size_t>(workers);
  sopts.queue_depth = static_cast<size_t>(queue_depth);
  sopts.pool.max_idle_per_module = static_cast<size_t>(workers);
  sopts.telemetry = tel;
  std::unique_ptr<host::IoBackend> backend;
  host::IoUringBackend* uring = nullptr;  // for the stats line
  const char* backend_name = "none";
  if (async_io) {
    bool want_uring = io_backend_choice == "io_uring" ||
                      (io_backend_choice == "auto" && host::IoUringAvailable());
    if (io_backend_choice == "io_uring" && !host::IoUringAvailable()) {
      std::fprintf(stderr,
                   "walirun: io_uring unavailable on this kernel/build; "
                   "falling back to the poll backend\n");
      want_uring = false;
    }
    if (want_uring) {
      auto u = std::make_unique<host::IoUringBackend>();
      u->SetTelemetry(tel);
      uring = u.get();
      backend = std::move(u);
      backend_name = "io_uring";
    } else {
      auto reactor = std::make_unique<host::IoReactor>();
      reactor->SetTelemetry(tel);
      backend = std::move(reactor);
      backend_name = "poll";
    }
    sopts.io_backend = backend.get();
  }
  host::Supervisor sup(&runtime, sopts);
  if (!budget.Unlimited()) {
    sup.ledger().SetBudget(kTenant, budget);
  }

  // Pressure-relief sweeper: every parked guest whose pending op is pure
  // data gets serialized out of its pool slab; the restore path rehydrates
  // it when its I/O completes. Polling at a millisecond cadence is plenty —
  // eviction targets guests blocked for real durations, not micro-parks.
  std::atomic<bool> serving{true};
  std::thread evictor;
  if (evict_parked && async_io) {
    evictor = std::thread([&sup, &serving] {
      while (serving.load(std::memory_order_acquire)) {
        sup.EvictAllParked();
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
  }

  // Active dispatch mode: what RunLoop actually resolves for these options.
  std::printf("serve: dispatch=%s scheme=%s jit=%s async-io=%s io-backend=%s\n",
              wasm::DispatchModeName(wasm::ResolveDispatch(runtime.exec_options())),
              wasm::SafepointSchemeName(runtime.options().scheme),
              wasm::JitAvailable() &&
                      runtime.exec_options().jit != wasm::JitTier::kOff
                  ? "on"
                  : "off",
              async_io ? "on" : "off", backend_name);
  // Fusion attribution next to the dispatch mode, so serve-mode perf
  // reports can name the superinstruction set actually serving traffic.
  {
    const wasm::PrepareStats& ps = module->prepare_stats;
    std::printf(
        "serve: fusion: %u superinstructions + %u direct calls over %u source "
        "instrs -> %u prepared (%u funcs)\n",
        ps.fused, ps.direct_calls, ps.source_instrs, ps.prepared_instrs,
        ps.functions);
    for (uint32_t i = 0; i < wasm::kNumInternalOps; ++i) {
      if (ps.per_op[i] == 0) {
        continue;
      }
      std::printf("serve: fused op %-40s x %u\n",
                  wasm::OpName(static_cast<wasm::Op>(wasm::kFirstInternalOp + i)),
                  ps.per_op[i]);
    }
  }

  const int total = workers * repeat;
  std::map<int32_t, int> exit_histogram;
  std::map<host::Outcome, int> outcome_histogram;
  int completed = 0, failed = 0, pooled = 0;
  uint64_t syscalls = 0;
  int64_t blocked_total = 0, blocked_max = 0;
  std::vector<int64_t> queue_lat;
  queue_lat.reserve(static_cast<size_t>(total));
  std::vector<int64_t> resume_lat;  // only runs that parked at least once
  // Periodic progress at info level (default log level hides it, keeping
  // serve output byte-identical unless --log-level info is given).
  int64_t last_stats = common::MonotonicNanos();
  auto consume = [&](host::RunReport r) {
    ++outcome_histogram[r.outcome];
    if (r.completed()) {
      ++completed;
      ++exit_histogram[r.exit_code];
    } else {
      ++failed;
      if (r.outcome == host::Outcome::kTrapped) {
        std::fprintf(stderr, "walirun: guest trap: %s %s\n",
                     wasm::TrapKindName(r.trap), r.trap_message.c_str());
      }
    }
    if (r.pooled) ++pooled;
    syscalls += r.total_syscalls;
    blocked_total += r.blocked_nanos;
    if (r.blocked_nanos > blocked_max) blocked_max = r.blocked_nanos;
    if (r.dispatch_seq != 0) queue_lat.push_back(r.queue_nanos);
    if (r.resume_queue_nanos > 0) resume_lat.push_back(r.resume_queue_nanos);
    const int64_t now = common::MonotonicNanos();
    if (now - last_stats >= 1000000000) {
      last_stats = now;
      LOG_INFO() << "serve: stats " << (completed + failed) << " done, "
                 << completed << " completed, " << failed << " failed, "
                 << syscalls << " syscalls, blocked "
                 << blocked_total / 1000000 << " ms";
    }
  };

  auto make_job = [&](int k) {
    host::GuestJob job;
    job.module = module;
    job.argv = guest_argv;
    job.env = env;
    job.env.push_back("WALI_RUN_INDEX=" + std::to_string(k));
    job.tenant = kTenant;
    return job;
  };

  // With a bounded queue, pace submission to the admission window (running
  // guests + queue capacity) so all N*K runs actually execute; a submit
  // that still bounces off a momentarily full queue (worker handoff race)
  // is retried after draining one in-flight run. Unbounded: submit all.
  const size_t window = queue_depth > 0
                            ? static_cast<size_t>(workers + queue_depth)
                            : static_cast<size_t>(total);
  std::deque<std::future<host::RunReport>> in_flight;
  int64_t t0 = common::MonotonicNanos();
  int submitted = 0;
  while (submitted < total) {
    while (in_flight.size() >= window) {
      consume(in_flight.front().get());
      in_flight.pop_front();
    }
    std::future<host::RunReport> fut = sup.Submit(make_job(submitted));
    if (fut.wait_for(std::chrono::seconds(0)) == std::future_status::ready) {
      host::RunReport r = fut.get();
      if (r.outcome == host::Outcome::kRejected && !in_flight.empty()) {
        consume(in_flight.front().get());
        in_flight.pop_front();
        continue;  // retry this run index against the freed slot
      }
      consume(std::move(r));  // instantly-finished run (or terminal reject)
    } else {
      in_flight.push_back(std::move(fut));
    }
    ++submitted;
  }
  while (!in_flight.empty()) {
    consume(in_flight.front().get());
    in_flight.pop_front();
  }
  double secs = (common::MonotonicNanos() - t0) / 1e9;
  serving.store(false, std::memory_order_release);
  if (evictor.joinable()) {
    evictor.join();
  }

  std::printf("serve: %d workers x %d runs = %d guests in %.3f s (%.0f guests/s)\n",
              workers, repeat, total, secs, secs > 0 ? total / secs : 0.0);
  std::printf("serve: %d completed, %d failed, %d pooled, %llu syscalls\n",
              completed, failed, pooled, static_cast<unsigned long long>(syscalls));
  for (const auto& [outcome, n] : outcome_histogram) {
    std::printf("serve: outcome %s x %d\n", host::OutcomeName(outcome), n);
  }
  for (const auto& [code, n] : exit_histogram) {
    std::printf("serve: exit %d x %d\n", code, n);
  }
  // Queue latency excludes parked/blocked time by construction
  // (RunReport::queue_nanos is submit -> first dispatch), so a fleet of
  // sleeping guests no longer poisons the admission p99.
  std::sort(queue_lat.begin(), queue_lat.end());
  if (!queue_lat.empty()) {
    std::printf("serve: queue latency p50 %.1f us  p99 %.1f us (excl. blocked)\n",
                queue_lat[queue_lat.size() / 2] / 1e3,
                queue_lat[static_cast<size_t>(0.99 * (queue_lat.size() - 1))] / 1e3);
  }
  if (async_io) {
    host::Supervisor::IoStats io = sup.io_stats();
    std::printf(
        "serve: async-io[%s] parks=%llu resumes=%llu peak-in-flight=%llu "
        "blocked %.1f ms total, %.1f ms max/guest\n",
        backend_name, static_cast<unsigned long long>(io.parks_total),
        static_cast<unsigned long long>(io.resumes_total),
        static_cast<unsigned long long>(io.peak_in_flight),
        blocked_total / 1e6, blocked_max / 1e6);
    if (uring != nullptr) {
      host::IoUringBackend::Stats us = uring->stats();
      std::printf("serve: io_uring sqes=%llu enters=%llu (%.1f sqes/enter)\n",
                  static_cast<unsigned long long>(us.sqes),
                  static_cast<unsigned long long>(us.enters),
                  us.enters > 0 ? static_cast<double>(us.sqes) / us.enters
                                : 0.0);
    }
    if (evict_parked) {
      std::printf("serve: evictions=%llu restores=%llu\n",
                  static_cast<unsigned long long>(io.evicts_total),
                  static_cast<unsigned long long>(io.restores_total));
    }
  }
  // Resume-queue latency (I/O completion -> re-dispatch): tail here means
  // workers are saturated with runnable guests, not that I/O is slow.
  std::sort(resume_lat.begin(), resume_lat.end());
  if (!resume_lat.empty()) {
    LOG_INFO() << "serve: resume-queue latency p50 "
               << resume_lat[resume_lat.size() / 2] / 1000 << " us  p99 "
               << resume_lat[static_cast<size_t>(0.99 * (resume_lat.size() - 1))] /
                      1000
               << " us over " << resume_lat.size() << " parked runs";
  }
  // Interpreter hot-function profile (top 10 by frame entries).
  if (tel != nullptr && common::LogEnabled(common::LogLevel::kInfo)) {
    host::Telemetry::Snapshot snap = tel->TakeSnapshot();
    size_t shown = 0;
    for (const host::Telemetry::HotFunction& hf : snap.hot_functions) {
      if (++shown > 10) break;
      LOG_INFO() << "serve: hot " << hf.module << ":" << hf.func
                 << " entries=" << hf.entries << " fuel=" << hf.fuel;
    }
  }
  // Baseline-JIT tier attribution: module-level counters plus the top 10
  // compiled functions by heat, straight off the module's tier state (the
  // telemetry snapshot aggregates the same numbers for exports).
  if (wasm::JitAvailable() && module->jit != nullptr) {
    const wasm::JitModuleState& js = *module->jit;
    std::printf(
        "serve: jit compiles=%llu failures=%llu tierups=%llu osr-exits=%llu\n",
        static_cast<unsigned long long>(js.compiles.load()),
        static_cast<unsigned long long>(js.compile_failures.load()),
        static_cast<unsigned long long>(js.tierups.load()),
        static_cast<unsigned long long>(js.osr_exits.load()));
    std::vector<std::pair<uint64_t, size_t>> tiered;  // (heat, func index)
    for (size_t f = 0; f < module->functions.size(); ++f) {
      if (js.slots[f].state.load() != wasm::JitFuncSlot::kCompiled) continue;
      tiered.emplace_back(js.slots[f].heat.load(), f);
    }
    std::sort(tiered.begin(), tiered.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    if (tiered.size() > 10) tiered.resize(10);
    for (const auto& [heat, f] : tiered) {
      const std::string& dbg = module->functions[f].debug_name;
      std::string name =
          dbg.empty() ? "f" + std::to_string(module->num_imported_funcs + f)
                      : dbg;
      std::printf("serve: jit tiered %-32s heat=%llu deopts=%u\n", name.c_str(),
                  static_cast<unsigned long long>(heat),
                  js.slots[f].deopts.load());
    }
  }
  host::TenantUsage usage = sup.ledger().usage(kTenant);
  std::printf(
      "ledger[%s]: runs=%llu fuel=%llu cpu_ms=%.1f syscalls=%llu "
      "mem_hw_pages=%llu shed=%llu rejected=%llu budget_stops=%llu "
      "host_errors=%llu\n",
      kTenant, static_cast<unsigned long long>(usage.runs),
      static_cast<unsigned long long>(usage.fuel), usage.cpu_nanos / 1e6,
      static_cast<unsigned long long>(usage.syscalls),
      static_cast<unsigned long long>(usage.mem_high_water_pages),
      static_cast<unsigned long long>(usage.shed),
      static_cast<unsigned long long>(usage.rejected),
      static_cast<unsigned long long>(usage.budget_stops),
      static_cast<unsigned long long>(usage.host_errors));
  host::InstancePool::Stats ps = sup.pool().stats();
  std::printf(
      "pool: hits=%llu misses=%llu resets=%llu drops=%llu high_water=%llu "
      "mem_hw_pages=%llu idle=%zu\n",
      static_cast<unsigned long long>(ps.hits),
      static_cast<unsigned long long>(ps.misses),
      static_cast<unsigned long long>(ps.resets),
      static_cast<unsigned long long>(ps.drops),
      static_cast<unsigned long long>(ps.high_water),
      static_cast<unsigned long long>(ps.mem_high_water_pages), ps.idle);
  // Admission-control refusals (shed/rejected/budget) are policy working as
  // configured, not errors; only real guest traps fail the serve.
  return outcome_histogram[host::Outcome::kTrapped] == 0 ? 0 : 1;
}

int main(int argc, char** argv) {
  std::vector<std::string> env;
  std::string compile_out;
  std::string metrics_dump;
  std::string trace_out;
  std::string snapshot_out;
  std::string restore_in;
  bool trace = false;
  int serve_workers = 0;
  int serve_repeat = 1;
  int queue_depth = 0;
  bool async_io = false;
  std::string io_backend_choice = "auto";
  bool evict_parked = false;
  host::TenantBudget budget;
  wasm::SafepointScheme scheme = wasm::SafepointScheme::kLoop;
  wasm::DispatchMode dispatch = wasm::DispatchMode::kAuto;
  wasm::JitTier jit = wasm::JitTier::kAuto;

  int i = 1;
  for (; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "-e" && i + 1 < argc) {
      env.push_back(argv[++i]);
    } else if (arg == "--serve" && i + 1 < argc) {
      serve_workers = std::atoi(argv[++i]);
      if (serve_workers <= 0) return Usage();
    } else if (arg == "--repeat" && i + 1 < argc) {
      serve_repeat = std::atoi(argv[++i]);
      if (serve_repeat <= 0) return Usage();
    } else if (arg == "--queue-depth" && i + 1 < argc) {
      queue_depth = std::atoi(argv[++i]);
      if (queue_depth <= 0) return Usage();
    } else if (arg == "--async-io") {
      async_io = true;
    } else if (arg == "--io-backend" && i + 1 < argc) {
      io_backend_choice = argv[++i];
      if (io_backend_choice != "auto" && io_backend_choice != "poll" &&
          io_backend_choice != "io_uring") {
        return Usage();
      }
      async_io = true;  // choosing a backend implies offload
    } else if (arg == "--evict-parked") {
      evict_parked = true;
    } else if (arg == "--tenant-budget" && i + 1 < argc) {
      if (!ParseTenantBudget(argv[++i], &budget)) return Usage();
    } else if (arg == "--scheme" && i + 1 < argc) {
      std::string s = argv[++i];
      if (s == "loop") scheme = wasm::SafepointScheme::kLoop;
      else if (s == "function") scheme = wasm::SafepointScheme::kFunction;
      else if (s == "all") scheme = wasm::SafepointScheme::kEveryInstr;
      else if (s == "none") scheme = wasm::SafepointScheme::kNone;
      else return Usage();
    } else if (arg == "--dispatch" && i + 1 < argc) {
      std::string s = argv[++i];
      if (s == "switch") dispatch = wasm::DispatchMode::kSwitch;
      else if (s == "threaded") dispatch = wasm::DispatchMode::kThreaded;
      else return Usage();
      if (s == "threaded" && !wasm::ThreadedDispatchAvailable()) {
        std::fprintf(stderr,
                     "walirun: threaded dispatch not in this build "
                     "(WASM_THREADED_DISPATCH=OFF); using switch\n");
      }
    } else if (arg == "--jit" && i + 1 < argc) {
      std::string s = argv[++i];
      if (s == "off") jit = wasm::JitTier::kOff;
      else if (s == "on") jit = wasm::JitTier::kOn;
      else return Usage();
      if (s == "on" && !wasm::JitAvailable()) {
        std::fprintf(stderr,
                     "walirun: baseline JIT tier not in this build "
                     "(WASM_JIT=OFF or no threaded loop); interpreting\n");
      }
    } else if (arg == "--compile" && i + 1 < argc) {
      compile_out = argv[++i];
    } else if (arg == "--metrics-dump" && i + 1 < argc) {
      metrics_dump = argv[++i];
    } else if (arg == "--trace-out" && i + 1 < argc) {
      trace_out = argv[++i];
    } else if (arg == "--snapshot-out" && i + 1 < argc) {
      snapshot_out = argv[++i];
    } else if (arg == "--restore" && i + 1 < argc) {
      restore_in = argv[++i];
    } else if (arg == "--log-level" && i + 1 < argc) {
      std::string s = argv[++i];
      if (s == "off") common::SetLogLevel(common::LogLevel::kOff);
      else if (s == "error") common::SetLogLevel(common::LogLevel::kError);
      else if (s == "info") common::SetLogLevel(common::LogLevel::kInfo);
      else if (s == "debug") common::SetLogLevel(common::LogLevel::kDebug);
      else return Usage();
    } else if (arg == "--trace") {
      trace = true;
    } else if (arg == "--help" || arg == "-h") {
      return Usage();
    } else {
      break;
    }
  }
  if (i >= argc) {
    return Usage();
  }

  std::string path = argv[i];
  // Process-wide telemetry sink: the module cache folds fusion stats into it
  // at decode, serve mode records spans and per-run metrics through it, and
  // --metrics-dump/--trace-out export it at exit.
  host::Telemetry& tel = host::Telemetry::Global();
  // Single front end for .wat/.wasm detection, decode, and validation — the
  // same layer serve mode instantiates from.
  host::ModuleCache cache(/*capacity=*/1);
  cache.SetTelemetry(&tel);
  common::StatusOr<std::shared_ptr<const wasm::Module>> parsed =
      cache.LoadFile(path);
  if (!parsed.ok()) {
    std::fprintf(stderr, "walirun: %s\n", parsed.status().ToString().c_str());
    return 1;
  }

  if (!compile_out.empty()) {
    std::vector<uint8_t> encoded = wasm::EncodeModule(**parsed);
    std::ofstream out(compile_out, std::ios::binary);
    out.write(reinterpret_cast<const char*>(encoded.data()),
              static_cast<std::streamsize>(encoded.size()));
    std::fprintf(stderr, "walirun: wrote %zu bytes to %s\n", encoded.size(),
                 compile_out.c_str());
    return 0;
  }

  std::vector<std::string> guest_argv;
  guest_argv.push_back(path);
  for (int k = i + 1; k < argc; ++k) {
    guest_argv.push_back(argv[k]);
  }

  wasm::Linker linker;
  wali::WaliRuntime::Options opts;
  opts.scheme = scheme;
  opts.dispatch = dispatch;
  opts.jit = jit;
  wali::WaliRuntime runtime(&linker, opts);

  if (serve_workers > 0) {
    int rc = Serve(runtime, *parsed, guest_argv, env, serve_workers,
                   serve_repeat, queue_depth, budget, async_io,
                   io_backend_choice, evict_parked,
                   &tel);
    DumpTelemetry(tel, metrics_dump, trace_out);
    return rc;
  }

  auto proc = runtime.CreateProcess(*parsed, guest_argv, env);
  if (!proc.ok()) {
    std::fprintf(stderr, "walirun: %s\n", proc.status().ToString().c_str());
    return 1;
  }

  // Completes the op a resumable run parked on, on this thread: a sleep
  // sleeps out natively; anything with a retry closure just performs the
  // (now allowed to block) syscall. Returns the syscall result for
  // ResumeMain. Must run BEFORE ResumeMain, which resets pending_io.
  auto complete_parked = [](wali::WaliProcess& p) -> int64_t {
    wali::PendingIo& pio = p.pending_io;
    if (pio.op.kind == wali::IoOp::Kind::kScripted) {
      return pio.op.scripted_result;  // syscall already ran; result is known
    }
    if (pio.op.kind == wali::IoOp::Kind::kSleep && pio.op.sleep_nanos > 0) {
      std::this_thread::sleep_for(std::chrono::nanoseconds(pio.op.sleep_nanos));
    }
    std::function<int64_t()> retry = std::move(pio.retry);
    pio.retry = nullptr;
    return retry ? retry() : 0;
  };

  wasm::RunResult r;
  if (!restore_in.empty()) {
    std::ifstream in(restore_in, std::ios::binary);
    std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                               std::istreambuf_iterator<char>());
    if (bytes.empty()) {
      std::fprintf(stderr, "walirun: cannot read snapshot %s\n",
                   restore_in.c_str());
      return 1;
    }
    wali::WaliRuntime::MainContinuation cont;
    wali::IoOp parked_op;
    common::Status restored = wali::RestoreProcess(
        bytes.data(), bytes.size(), **proc, cont, &parked_op);
    if (!restored.ok()) {
      std::fprintf(stderr, "walirun: %s\n", restored.ToString().c_str());
      return 1;
    }
    // The snapshotted run was parked on this op; finish it before resuming
    // (pure-data ops only — that is what made the snapshot eligible).
    int64_t first_result = 0;
    if (parked_op.kind == wali::IoOp::Kind::kScripted) {
      first_result = parked_op.scripted_result;
    } else if (parked_op.kind == wali::IoOp::Kind::kSleep &&
               parked_op.sleep_nanos > 0) {
      std::this_thread::sleep_for(
          std::chrono::nanoseconds(parked_op.sleep_nanos));
    }
    r = runtime.ResumeMain(**proc, cont, first_result);
    while (r.trap == wasm::TrapKind::kSyscallPending) {
      int64_t sys_ret = complete_parked(**proc);
      r = runtime.ResumeMain(**proc, cont, sys_ret);
    }
  } else if (!snapshot_out.empty()) {
    wali::WaliRuntime::MainContinuation cont;
    r = runtime.RunMain(**proc, runtime.exec_options(), &cont);
    while (r.trap == wasm::TrapKind::kSyscallPending) {
      common::StatusOr<std::vector<uint8_t>> snap =
          wali::SnapshotProcess(**proc, cont);
      if (snap.ok()) {
        std::ofstream out(snapshot_out, std::ios::binary | std::ios::trunc);
        out.write(reinterpret_cast<const char*>(snap->data()),
                  static_cast<std::streamsize>(snap->size()));
        if (!out.good()) {
          std::fprintf(stderr, "walirun: cannot write %s\n",
                       snapshot_out.c_str());
          cont.Discard();
          return 1;
        }
        std::fprintf(stderr, "walirun: wrote %zu-byte snapshot to %s\n",
                     snap->size(), snapshot_out.c_str());
        cont.Discard();
        return 0;
      }
      // Not snapshotable at this park (live retry closure); complete it in
      // place and try again at the next one.
      std::fprintf(stderr, "walirun: park not snapshotable (%s); continuing\n",
                   snap.status().ToString().c_str());
      int64_t sys_ret = complete_parked(**proc);
      r = runtime.ResumeMain(**proc, cont, sys_ret);
    }
  } else {
    r = runtime.RunMain(**proc);
  }

  if (trace) {
    std::fprintf(stderr, "--- syscall profile ---\n");
    const auto& defs = runtime.syscalls();
    for (size_t id = 0; id < defs.size(); ++id) {
      uint64_t n = (*proc)->trace.count(static_cast<uint32_t>(id));
      if (n > 0) {
        std::fprintf(stderr, "%10llu  %s\n", static_cast<unsigned long long>(n),
                     defs[id].name);
      }
    }
    std::fprintf(stderr, "wali time: %.3f ms, kernel time: %.3f ms\n",
                 (*proc)->trace.wali_nanos() / 1e6,
                 (*proc)->trace.kernel_nanos() / 1e6);
  }

  // Single-run exports: the registry holds the decode-time fusion counters;
  // spans need the supervisor, so a single-run trace file is empty.
  DumpTelemetry(tel, metrics_dump, trace_out);

  if (r.trap == wasm::TrapKind::kExit) {
    return r.exit_code;
  }
  if (!r.ok()) {
    std::fprintf(stderr, "walirun: trap: %s %s\n", wasm::TrapKindName(r.trap),
                 r.trap_message.c_str());
    return 134;  // mimic abort
  }
  if (!r.values.empty()) {
    return static_cast<int>(r.values[0].i32());
  }
  return 0;
}
