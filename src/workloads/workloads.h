// Application workload suite (S9 in DESIGN.md).
//
// The paper evaluates real Linux applications (bash, lua, sqlite3,
// memcached, paho-mqtt, and the Table 1 porting corpus). Those binaries
// cannot be compiled to Wasm inside this sandbox, so each benchmark app has
// a synthetic analog that reproduces its *syscall mix and compute shape*
// (the quantities Figs. 2/7/8 and Tables 1/3 actually measure):
//   lua        — compute-dominated interpreter loop w/ allocator traffic
//   bash       — syscall-chatty shell loop (pipes, dup, stat, getpid)
//   sqlite3    — file I/O + fsync page store w/ in-memory btree-ish compute
//   memcached  — threaded kv daemon over socketpair (clone/futex/sockets)
//   paho-bench — blocking pub/ack loopback I/O (the paper's mqtt-app)
// The Fig. 8 trio (lua/bash/sqlite3) additionally has native-C++ and MiniRV
// versions so the virtualization comparison runs the same work under all
// three mechanisms. Table 1's wider corpus is represented as catalog
// entries carrying the feature set each real application needs.
#ifndef SRC_WORKLOADS_WORKLOADS_H_
#define SRC_WORKLOADS_WORKLOADS_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/wali/wali.h"
#include "src/wasm/wasm.h"

namespace workloads {

struct Workload {
  std::string name;
  std::string description;
  // WAT module text with "{SCALE}" placeholders; empty for catalog-only
  // entries (Table 1 corpus).
  std::string wat;
  // Native C++ equivalent (Fig. 8 baseline); null when not applicable.
  std::function<int64_t(int scale)> native;
  // MiniRV assembly with {SCALE} placeholder (Fig. 8 emulator run).
  std::string minirv_asm;
  // OS features the *real* application needs (drives Table 1).
  std::vector<std::string> required_features;
  bool uses_threads = false;
  bool is_benchmark = false;  // part of the Fig. 2/7 measurement set
};

const std::vector<Workload>& AllWorkloads();
const Workload* FindWorkload(const std::string& name);

// Instantiates `w` under a fresh WALI runtime and runs it.
struct WaliRunStats {
  wasm::RunResult result;
  int64_t wall_ns = 0;
  int64_t startup_ns = 0;  // parse+validate+instantiate time
  int64_t wali_ns = 0;     // time inside WALI handlers (excl. kernel)
  int64_t kernel_ns = 0;   // time inside raw syscalls
  uint64_t peak_linear_memory = 0;
  std::map<std::string, uint64_t> syscall_counts;
  uint64_t total_syscalls = 0;
};

// `fuse` controls the prepare pass's superinstruction fusion (A/B benches
// re-run the module unfused to isolate fusion from dispatch gains); `jit`
// pins the baseline-JIT tier the same way (benches pin kOff on interpreter
// arms so kAuto defaults never leak the tier into a baseline column). When
// the tier is enabled, `jit_threshold` is the tier-up heat count.
WaliRunStats RunUnderWali(const Workload& w, int scale,
                          wasm::SafepointScheme scheme = wasm::SafepointScheme::kLoop,
                          wasm::DispatchMode dispatch = wasm::DispatchMode::kAuto,
                          bool fuse = true,
                          wasm::JitTier jit = wasm::JitTier::kAuto,
                          uint32_t jit_threshold = 16);

// Renders the workload's WAT at a concrete scale (exposed for tests).
std::string InstantiateWat(const Workload& w, int scale);

}  // namespace workloads

#endif  // SRC_WORKLOADS_WORKLOADS_H_
