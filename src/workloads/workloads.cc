#include "src/workloads/workloads.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>

#include "src/common/time_util.h"
#include "src/wasm/prepare.h"

namespace workloads {

namespace {

// ---------------------------------------------------------------- lua -----
// Compute-dominated: prime sieve + iterative fib per iteration, with
// allocator traffic through mmap/munmap (lua's allocator behaviour; the
// paper notes lua's frequent memory allocation requests).
const char* kLuaWat = R"((module
  (import "wali" "SYS_mmap" (func $mmap (param i64 i64 i64 i64 i64 i64) (result i64)))
  (import "wali" "SYS_munmap" (func $munmap (param i64 i64) (result i64)))
  (import "wali" "SYS_brk" (func $brk (param i64) (result i64)))
  (memory 4 2048)
  (func $sieve (param $n i32) (result i32)
    (local $i i32) (local $j i32) (local $count i32)
    (memory.fill (i32.const 8192) (i32.const 0) (local.get $n))
    (local.set $i (i32.const 2))
    (block $done
      (loop $outer
        (br_if $done (i32.ge_u (local.get $i) (local.get $n)))
        (if (i32.eqz (i32.load8_u (i32.add (i32.const 8192) (local.get $i))))
          (then
            (local.set $count (i32.add (local.get $count) (i32.const 1)))
            (local.set $j (i32.add (local.get $i) (local.get $i)))
            (block $jdone
              (loop $inner
                (br_if $jdone (i32.ge_u (local.get $j) (local.get $n)))
                (i32.store8 (i32.add (i32.const 8192) (local.get $j)) (i32.const 1))
                (local.set $j (i32.add (local.get $j) (local.get $i)))
                (br $inner)))))
        (local.set $i (i32.add (local.get $i) (i32.const 1)))
        (br $outer)))
    (local.get $count))
  (func $fib (param $n i32) (result i32)
    (local $a i32) (local $b i32) (local $t i32) (local $i i32)
    (local.set $b (i32.const 1))
    (block $done
      (loop $l
        (br_if $done (i32.ge_u (local.get $i) (local.get $n)))
        (local.set $t (i32.add (local.get $a) (local.get $b)))
        (local.set $a (local.get $b))
        (local.set $b (local.get $t))
        (local.set $i (i32.add (local.get $i) (i32.const 1)))
        (br $l)))
    (local.get $a))
  (func (export "main") (result i32)
    (local $iter i32) (local $acc i32) (local $arena i64)
    (drop (call $brk (i64.const 0)))
    (block $out
      (loop $main
        (br_if $out (i32.ge_u (local.get $iter) (i32.const {SCALE})))
        (local.set $arena (call $mmap (i64.const 0) (i64.const 65536) (i64.const 3)
                                (i64.const 0x22) (i64.const -1) (i64.const 0)))
        (local.set $acc (i32.add (local.get $acc) (call $sieve (i32.const 10000))))
        (local.set $acc (i32.add (local.get $acc) (call $fib (i32.const 24))))
        (if (i64.gt_s (local.get $arena) (i64.const 0))
          (then
            (i32.store (i32.wrap_i64 (local.get $arena)) (local.get $acc))
            (drop (call $munmap (local.get $arena) (i64.const 65536)))))
        (local.set $iter (i32.add (local.get $iter) (i32.const 1)))
        (br $main)))
    (local.get $acc))
))";

int64_t LuaNative(int scale) {
  int64_t acc = 0;
  std::vector<uint8_t> flags(10000);
  for (int iter = 0; iter < scale; ++iter) {
    void* arena = mmap(nullptr, 65536, PROT_READ | PROT_WRITE,
                       MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    std::memset(flags.data(), 0, flags.size());
    int count = 0;
    for (uint32_t i = 2; i < 10000; ++i) {
      if (flags[i] == 0) {
        ++count;
        for (uint32_t j = i + i; j < 10000; j += i) flags[j] = 1;
      }
    }
    acc += count;
    uint32_t a = 0, b = 1;
    for (int i = 0; i < 24; ++i) {
      uint32_t t = a + b;
      a = b;
      b = t;
    }
    acc += a;
    if (arena != MAP_FAILED) {
      *static_cast<volatile int64_t*>(arena) = acc;
      munmap(arena, 65536);
    }
  }
  return acc;
}

const char* kLuaRv = R"(
main:
  li s0, 0
  li s6, {SCALE}
  li s3, 0
outer:
  li t1, 10000
  li t2, flags
  li t0, 0
clear:
  bge t0, t1, clear_done
  add t3, t2, t0
  sb x0, 0(t3)
  addi t0, t0, 1
  j clear
clear_done:
  li s1, 2
  li s2, 0
sieve_outer:
  bge s1, t1, sieve_done
  add t3, t2, s1
  lbu t4, 0(t3)
  bne t4, x0, next_i
  addi s2, s2, 1
  add t5, s1, s1
sieve_inner:
  bge t5, t1, next_i
  add t3, t2, t5
  li t6, 1
  sb t6, 0(t3)
  add t5, t5, s1
  j sieve_inner
next_i:
  addi s1, s1, 1
  j sieve_outer
sieve_done:
  add s3, s3, s2
  li t0, 0
  li t3, 1
  li t4, 24
  li t5, 0
fib_loop:
  bge t5, t4, fib_done
  add t6, t0, t3
  mv t0, t3
  mv t3, t6
  addi t5, t5, 1
  j fib_loop
fib_done:
  add s3, s3, t0
  addi s0, s0, 1
  blt s0, s6, outer
  andi a0, s3, 127
  li a7, 93
  ecall
.data
flags: .space 10240
)";

// ---------------------------------------------------------------- bash ----
// Syscall-chatty: per "command" it hashes the command text (tokenizer
// behaviour), stats a path, creates a pipe, pushes data through it, closes.
const char* kBashWat = R"((module
  (import "wali" "SYS_pipe2" (func $pipe2 (param i64 i64) (result i64)))
  (import "wali" "SYS_read" (func $read (param i64 i64 i64) (result i64)))
  (import "wali" "SYS_write" (func $write (param i64 i64 i64) (result i64)))
  (import "wali" "SYS_close" (func $close (param i64) (result i64)))
  (import "wali" "SYS_getpid" (func $getpid (result i64)))
  (import "wali" "SYS_stat" (func $stat (param i64 i64) (result i64)))
  (import "wali" "SYS_dup" (func $dup (param i64) (result i64)))
  (memory 2 64)
  (data (i32.const 512) "/tmp\00")
  (data (i32.const 640) "for f in $(ls /etc); do echo $f | grep -c conf >> /dev/null; done")
  (func $hash (param $addr i32) (param $len i32) (result i32)
    (local $h i32) (local $i i32)
    (local.set $h (i32.const 0x811c9dc5))
    (block $done
      (loop $l
        (br_if $done (i32.ge_u (local.get $i) (local.get $len)))
        (local.set $h (i32.mul (i32.xor (local.get $h)
                                        (i32.load8_u (i32.add (local.get $addr)
                                                              (local.get $i))))
                               (i32.const 16777619)))
        (local.set $i (i32.add (local.get $i) (i32.const 1)))
        (br $l)))
    (local.get $h))
  (func (export "main") (result i32)
    (local $i i32) (local $acc i32) (local $r i64) (local $w i64) (local $k i32)
    (block $out
      (loop $main
        (br_if $out (i32.ge_u (local.get $i) (i32.const {SCALE})))
        ;; tokenize the command a few times (shells re-scan strings a lot)
        (local.set $k (i32.const 0))
        (block $hdone
          (loop $h
            (br_if $hdone (i32.ge_u (local.get $k) (i32.const 20)))
            (local.set $acc (i32.add (local.get $acc)
                                     (call $hash (i32.const 640) (i32.const 66))))
            (local.set $k (i32.add (local.get $k) (i32.const 1)))
            (br $h)))
        (drop (call $getpid))
        (drop (call $stat (i64.const 512) (i64.const 2048)))
        (if (i64.eqz (call $pipe2 (i64.const 128) (i64.const 0)))
          (then
            (local.set $r (i64.extend_i32_u (i32.load (i32.const 128))))
            (local.set $w (i64.extend_i32_u (i32.load (i32.const 132))))
            (drop (call $write (local.get $w) (i64.const 640) (i64.const 64)))
            (drop (call $read (local.get $r) (i64.const 1024) (i64.const 64)))
            (drop (call $close (local.get $r)))
            (drop (call $close (local.get $w)))))
        (local.set $i (i32.add (local.get $i) (i32.const 1)))
        (br $main)))
    (local.get $acc))
))";

int64_t BashNative(int scale) {
  int64_t acc = 0;
  const char* cmd = "for f in $(ls /etc); do echo $f | grep -c conf >> /dev/null; done";
  size_t cmd_len = strlen(cmd);
  char buf[128];
  for (int i = 0; i < scale; ++i) {
    for (int k = 0; k < 20; ++k) {
      uint32_t h = 0x811c9dc5;
      for (size_t j = 0; j < 66 && j <= cmd_len; ++j) {
        h = (h ^ static_cast<uint8_t>(cmd[j])) * 16777619u;
      }
      acc += h;
    }
    acc += getpid();
    struct stat st;
    stat("/tmp", &st);
    int fds[2];
    if (pipe(fds) == 0) {
      ssize_t ignored = write(fds[1], cmd, 64);
      (void)ignored;
      ignored = read(fds[0], buf, 64);
      (void)ignored;
      close(fds[0]);
      close(fds[1]);
    }
  }
  return acc;
}

const char* kBashRv = R"(
main:
  li s0, 0
  li s6, {SCALE}
  li s3, 0
outer:
  li s4, 0
hash_rounds:
  li t5, 20
  bge s4, t5, rounds_done
  li t0, 0x811c9dc5
  li t1, 0
  li t2, cmd
hash_loop:
  li t5, 66
  bge t1, t5, hash_done
  add t3, t2, t1
  lbu t4, 0(t3)
  xor t0, t0, t4
  li t6, 16777619
  mul t0, t0, t6
  addi t1, t1, 1
  j hash_loop
hash_done:
  add s3, s3, t0
  addi s4, s4, 1
  j hash_rounds
rounds_done:
  ; emulated "syscall chatter": write a status line to the console
  li a0, 1
  li a1, msg
  li a2, 9
  li a7, 64
  ecall
  addi s0, s0, 1
  blt s0, s6, outer
  andi a0, s3, 127
  li a7, 93
  ecall
.data
cmd: .asciiz "for f in $(ls /etc); do echo $f | grep -c conf >> /dev/null; done"
msg: .asciiz "bash: ok"
)";

// -------------------------------------------------------------- sqlite3 ---
// Page-store I/O: pwrite/fsync/pread over a database file plus an in-memory
// sorted-insert (btree-page behaviour). The real sqlite needs mremap
// (Table 1), exercised for the page cache.
const char* kSqliteWat = R"((module
  (import "wali" "SYS_open" (func $open (param i64 i64 i64) (result i64)))
  (import "wali" "SYS_close" (func $close (param i64) (result i64)))
  (import "wali" "SYS_pwrite64" (func $pwrite (param i64 i64 i64 i64) (result i64)))
  (import "wali" "SYS_pread64" (func $pread (param i64 i64 i64 i64) (result i64)))
  (import "wali" "SYS_fsync" (func $fsync (param i64) (result i64)))
  (import "wali" "SYS_unlink" (func $unlink (param i64) (result i64)))
  (import "wali" "SYS_mmap" (func $mmap (param i64 i64 i64 i64 i64 i64) (result i64)))
  (import "wali" "SYS_mremap" (func $mremap (param i64 i64 i64 i64 i64) (result i64)))
  (memory 4 256)
  (data (i32.const 512) "/tmp/wali_sqlite3_bench.db\00")
  ;; sorted insert into i32 array at 65536 (count at 65532)
  (func $btree_insert (param $key i32)
    (local $n i32) (local $pos i32) (local $j i32)
    (local.set $n (i32.load (i32.const 65532)))
    (if (i32.ge_u (local.get $n) (i32.const 4096))
      (then (i32.store (i32.const 65532) (i32.const 0))
            (local.set $n (i32.const 0))))
    ;; find insert position (linear probe, like a page scan)
    (block $found
      (loop $scan
        (br_if $found (i32.ge_u (local.get $pos) (local.get $n)))
        (br_if $found (i32.gt_u (i32.load (i32.add (i32.const 65536)
                                                   (i32.mul (local.get $pos) (i32.const 4))))
                                (local.get $key)))
        (local.set $pos (i32.add (local.get $pos) (i32.const 1)))
        (br $scan)))
    ;; shift tail right
    (local.set $j (local.get $n))
    (block $shifted
      (loop $shift
        (br_if $shifted (i32.le_u (local.get $j) (local.get $pos)))
        (i32.store (i32.add (i32.const 65536) (i32.mul (local.get $j) (i32.const 4)))
                   (i32.load (i32.add (i32.const 65536)
                                      (i32.mul (i32.sub (local.get $j) (i32.const 1))
                                               (i32.const 4)))))
        (local.set $j (i32.sub (local.get $j) (i32.const 1)))
        (br $shift)))
    (i32.store (i32.add (i32.const 65536) (i32.mul (local.get $pos) (i32.const 4)))
               (local.get $key))
    (i32.store (i32.const 65532) (i32.add (local.get $n) (i32.const 1))))
  (func $fill_page (param $seed i32)
    (local $k i32)
    (block $done
      (loop $l
        (br_if $done (i32.ge_u (local.get $k) (i32.const 4096)))
        (i32.store (i32.add (i32.const 4096) (local.get $k))
                   (i32.mul (i32.add (local.get $seed) (local.get $k))
                            (i32.const 2654435761)))
        (local.set $k (i32.add (local.get $k) (i32.const 4)))
        (br $l)))
  )
  (func (export "main") (result i32)
    (local $i i32) (local $acc i32) (local $fd i64) (local $cache i64)
    ;; page cache arena, grown once via mremap (sqlite's cache resize)
    (local.set $cache (call $mmap (i64.const 0) (i64.const 65536) (i64.const 3)
                            (i64.const 0x22) (i64.const -1) (i64.const 0)))
    (if (i64.gt_s (local.get $cache) (i64.const 0))
      (then (local.set $cache (call $mremap (local.get $cache) (i64.const 65536)
                                    (i64.const 131072) (i64.const 1) (i64.const 0)))))
    ;; open(path, O_RDWR|O_CREAT|O_TRUNC = 0x242, 0644)
    (local.set $fd (call $open (i64.const 512) (i64.const 0x242) (i64.const 0x1a4)))
    (if (i64.lt_s (local.get $fd) (i64.const 0)) (then (return (i32.const -1))))
    (block $out
      (loop $main
        (br_if $out (i32.ge_u (local.get $i) (i32.const {SCALE})))
        (call $fill_page (local.get $i))
        (drop (call $pwrite (local.get $fd) (i64.const 4096) (i64.const 4096)
                    (i64.extend_i32_u (i32.mul (i32.rem_u (local.get $i) (i32.const 32))
                                               (i32.const 4096)))))
        (call $btree_insert (i32.mul (local.get $i) (i32.const 2654435761)))
        (if (i32.eq (i32.and (local.get $i) (i32.const 7)) (i32.const 7))
          (then (drop (call $fsync (local.get $fd)))))
        (drop (call $pread (local.get $fd) (i64.const 12288) (i64.const 4096)
                    (i64.extend_i32_u (i32.mul (i32.rem_u (local.get $i) (i32.const 32))
                                               (i32.const 4096)))))
        (local.set $acc (i32.add (local.get $acc) (i32.load (i32.const 12288))))
        (local.set $i (i32.add (local.get $i) (i32.const 1)))
        (br $main)))
    (drop (call $close (local.get $fd)))
    (drop (call $unlink (i64.const 512)))
    (local.get $acc))
))";

int64_t SqliteNative(int scale) {
  const char* path = "/tmp/wali_sqlite3_native.db";
  int fd = open(path, O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return -1;
  int64_t acc = 0;
  std::vector<uint32_t> page(1024);
  std::vector<uint32_t> rd(1024);
  std::vector<uint32_t> btree;
  btree.reserve(4096);
  for (int i = 0; i < scale; ++i) {
    for (int k = 0; k < 1024; ++k) {
      page[k] = static_cast<uint32_t>(i + 4 * k) * 2654435761u;
    }
    ssize_t ignored = pwrite(fd, page.data(), 4096, (i % 32) * 4096);
    (void)ignored;
    uint32_t key = static_cast<uint32_t>(i) * 2654435761u;
    if (btree.size() >= 4096) btree.clear();
    size_t pos = 0;
    while (pos < btree.size() && btree[pos] <= key) ++pos;
    btree.insert(btree.begin() + static_cast<long>(pos), key);
    if ((i & 7) == 7) fsync(fd);
    ignored = pread(fd, rd.data(), 4096, (i % 32) * 4096);
    (void)ignored;
    acc += rd[0];
  }
  close(fd);
  unlink(path);
  return acc;
}

const char* kSqliteRv = R"(
main:
  ; fd = openat(AT_FDCWD=-100, path, O_RDWR|O_CREAT|O_TRUNC=0x242, 0644)
  li a0, -100
  li a1, path
  li a2, 0x242
  li a3, 0x1a4
  li a7, 56
  ecall
  mv s5, a0          ; fd
  blt s5, x0, fail
  li s0, 0           ; i
  li s6, {SCALE}
  li s3, 0           ; acc
outer:
  ; fill page buffer
  li t0, 0
  li t1, 4096
  li t2, page
fill:
  bge t0, t1, fill_done
  add t3, s0, t0
  li t4, 2654435761
  mul t3, t3, t4
  add t5, t2, t0
  sw t3, 0(t5)
  addi t0, t0, 4
  j fill
fill_done:
  ; pwrite(fd, page, 4096, (i%32)*4096)
  mv a0, s5
  li a1, page
  li a2, 4096
  li t0, 32
  rem t1, s0, t0
  li t0, 4096
  mul a3, t1, t0
  mv s7, a3
  li a7, 68
  ecall
  ; fsync every 8
  andi t0, s0, 7
  li t1, 7
  bne t0, t1, skip_sync
  mv a0, s5
  li a7, 82
  ecall
skip_sync:
  ; pread(fd, rdbuf, 4096, same offset)
  mv a0, s5
  li a1, rdbuf
  li a2, 4096
  mv a3, s7
  li a7, 67
  ecall
  li t0, rdbuf
  lwu t1, 0(t0)
  add s3, s3, t1
  addi s0, s0, 1
  blt s0, s6, outer
  ; close + unlink
  mv a0, s5
  li a7, 57
  ecall
  li a0, -100
  li a1, path
  li a2, 0
  li a7, 35
  ecall
  andi a0, s3, 127
  li a7, 93
  ecall
fail:
  li a0, 1
  li a7, 93
  ecall
.data
path: .asciiz "/tmp/minirv_sqlite3_bench.db"
page: .space 4096
rdbuf: .space 4096
)";

// ------------------------------------------------------------ memcached ---
// Threaded kv daemon: a cloned server thread services get/set over a
// socketpair; the client pumps SCALE requests. Exercises clone, sockets,
// shared memory, futex-class synchronization (Table 1: memcached needs mmap
// and threads; Fig. 7 notes its multithreaded syscall overhead).
const char* kMemcachedWat = R"((module
  (import "wali" "SYS_socketpair" (func $socketpair (param i64 i64 i64 i64) (result i64)))
  (import "wali" "SYS_clone" (func $clone (param i64 i64 i64 i64 i64) (result i64)))
  (import "wali" "SYS_read" (func $read (param i64 i64 i64) (result i64)))
  (import "wali" "SYS_write" (func $write (param i64 i64 i64) (result i64)))
  (import "wali" "SYS_close" (func $close (param i64) (result i64)))
  (import "wali" "SYS_mmap" (func $mmap (param i64 i64 i64 i64 i64 i64) (result i64)))
  (memory 4 64 shared)
  (table 4 funcref)
  ;; layout: sv pair @256, server rx buffer @4096, server tx @4160,
  ;;         client tx @1024, client rx @1088, hashtable @65536 (1024*8)
  (func $server (param i32) (result i32)
    (local $fd i64) (local $op i32) (local $key i32) (local $val i32) (local $slot i32)
    (local.set $fd (i64.extend_i32_u (i32.load (i32.const 260))))
    (block $quit
      (loop $serve
        (br_if $quit (i64.ne (call $read (local.get $fd) (i64.const 4096) (i64.const 16))
                             (i64.const 16)))
        (local.set $op (i32.load (i32.const 4096)))
        (local.set $key (i32.load (i32.const 4100)))
        (local.set $val (i32.load (i32.const 4104)))
        (local.set $slot (i32.add (i32.const 65536)
                                  (i32.mul (i32.rem_u (local.get $key) (i32.const 1024))
                                           (i32.const 8))))
        (if (i32.eq (local.get $op) (i32.const 1))
          (then  ;; set
            (i32.store (local.get $slot) (local.get $key))
            (i32.store offset=4 (local.get $slot) (local.get $val))
            (i32.store (i32.const 4160) (i32.const 1))
            (i32.store offset=4 (i32.const 4160) (local.get $val)))
          (else
            (if (i32.eq (local.get $op) (i32.const 2))
              (then  ;; quit
                (i32.store (i32.const 4160) (i32.const 2))
                (drop (call $write (local.get $fd) (i64.const 4160) (i64.const 16)))
                (br $quit))
              (else  ;; get
                (i32.store (i32.const 4160) (i32.const 0))
                (i32.store offset=4 (i32.const 4160)
                  (if (result i32) (i32.eq (i32.load (local.get $slot)) (local.get $key))
                    (then (i32.load offset=4 (local.get $slot)))
                    (else (i32.const 0))))))))
        (drop (call $write (local.get $fd) (i64.const 4160) (i64.const 16)))
        (br $serve)))
    (i32.const 0))
  (elem (i32.const 1) $server)
  (func (export "main") (result i32)
    (local $i i32) (local $acc i32) (local $cfd i64)
    ;; AF_UNIX=1, SOCK_STREAM=1
    (if (i64.ne (call $socketpair (i64.const 1) (i64.const 1) (i64.const 0)
                      (i64.const 256))
                (i64.const 0))
      (then (return (i32.const -1))))
    (local.set $cfd (i64.extend_i32_u (i32.load (i32.const 256))))
    (if (i64.lt_s (call $clone (i64.const 0x100) (i64.const 1) (i64.const 0)
                        (i64.const 0) (i64.const 0))
                  (i64.const 0))
      (then (return (i32.const -2))))
    (block $out
      (loop $pump
        (br_if $out (i32.ge_u (local.get $i) (i32.const {SCALE})))
        ;; 3 sets then 1 get
        (i32.store (i32.const 1024)
                   (if (result i32) (i32.eq (i32.and (local.get $i) (i32.const 3))
                                            (i32.const 3))
                     (then (i32.const 0)) (else (i32.const 1))))
        (i32.store (i32.const 1028) (i32.and (local.get $i) (i32.const 255)))
        (i32.store (i32.const 1032) (i32.mul (local.get $i) (i32.const 7)))
        (drop (call $write (local.get $cfd) (i64.const 1024) (i64.const 16)))
        (drop (call $read (local.get $cfd) (i64.const 1088) (i64.const 16)))
        (local.set $acc (i32.add (local.get $acc) (i32.load offset=4 (i32.const 1088))))
        (local.set $i (i32.add (local.get $i) (i32.const 1)))
        (br $pump)))
    ;; quit
    (i32.store (i32.const 1024) (i32.const 2))
    (drop (call $write (local.get $cfd) (i64.const 1024) (i64.const 16)))
    (drop (call $read (local.get $cfd) (i64.const 1088) (i64.const 16)))
    (drop (call $close (local.get $cfd)))
    (local.get $acc))
))";

// ----------------------------------------------------------- paho-bench ---
// Blocking publish/ack loopback (the paper's mqtt-app alias): dominated by
// kernel time in small read/write pairs (Fig. 7 shows ~97.6% app+kernel).
const char* kPahoWat = R"((module
  (import "wali" "SYS_pipe2" (func $pipe2 (param i64 i64) (result i64)))
  (import "wali" "SYS_read" (func $read (param i64 i64 i64) (result i64)))
  (import "wali" "SYS_write" (func $write (param i64 i64 i64) (result i64)))
  (import "wali" "SYS_close" (func $close (param i64) (result i64)))
  (memory 2 16)
  (func $checksum (param $addr i32) (param $len i32) (result i32)
    (local $s i32) (local $i i32)
    (block $done
      (loop $l
        (br_if $done (i32.ge_u (local.get $i) (local.get $len)))
        (local.set $s (i32.add (local.get $s)
                               (i32.load8_u (i32.add (local.get $addr) (local.get $i)))))
        (local.set $i (i32.add (local.get $i) (i32.const 1)))
        (br $l)))
    (local.get $s))
  (func (export "main") (result i32)
    (local $i i32) (local $acc i32) (local $r i64) (local $w i64) (local $k i32)
    (if (i64.ne (call $pipe2 (i64.const 128) (i64.const 0)) (i64.const 0))
      (then (return (i32.const -1))))
    (local.set $r (i64.extend_i32_u (i32.load (i32.const 128))))
    (local.set $w (i64.extend_i32_u (i32.load (i32.const 132))))
    ;; build a 128-byte "publish" packet
    (local.set $k (i32.const 0))
    (block $built
      (loop $b
        (br_if $built (i32.ge_u (local.get $k) (i32.const 128)))
        (i32.store8 (i32.add (i32.const 1024) (local.get $k))
                    (i32.mul (local.get $k) (i32.const 31)))
        (local.set $k (i32.add (local.get $k) (i32.const 1)))
        (br $b)))
    (block $out
      (loop $pump
        (br_if $out (i32.ge_u (local.get $i) (i32.const {SCALE})))
        (drop (call $write (local.get $w) (i64.const 1024) (i64.const 128)))
        (drop (call $read (local.get $r) (i64.const 2048) (i64.const 128)))
        (local.set $acc (i32.add (local.get $acc)
                                 (call $checksum (i32.const 2048) (i32.const 128))))
        (local.set $i (i32.add (local.get $i) (i32.const 1)))
        (br $pump)))
    (drop (call $close (local.get $r)))
    (drop (call $close (local.get $w)))
    (local.get $acc))
))";

std::string ReplaceScale(const std::string& text, int scale) {
  std::string out = text;
  const std::string needle = "{SCALE}";
  size_t pos;
  while ((pos = out.find(needle)) != std::string::npos) {
    out.replace(pos, needle.size(), std::to_string(scale));
  }
  return out;
}

std::vector<Workload>* BuildWorkloads() {
  auto* list = new std::vector<Workload>();

  Workload lua;
  lua.name = "lua";
  lua.description = "script-interpreter analog: compute + allocator traffic";
  lua.wat = kLuaWat;
  lua.native = LuaNative;
  lua.minirv_asm = kLuaRv;
  lua.required_features = {"dup"};
  lua.is_benchmark = true;
  list->push_back(std::move(lua));

  Workload bash;
  bash.name = "bash";
  bash.description = "shell analog: pipes, stat, small reads/writes, signals";
  bash.wat = kBashWat;
  bash.native = BashNative;
  bash.minirv_asm = kBashRv;
  bash.required_features = {"signals", "pipes", "fork"};
  bash.is_benchmark = true;
  list->push_back(std::move(bash));

  Workload sqlite;
  sqlite.name = "sqlite3";
  sqlite.description = "database analog: page writes, fsync, mremap page cache";
  sqlite.wat = kSqliteWat;
  sqlite.native = SqliteNative;
  sqlite.minirv_asm = kSqliteRv;
  sqlite.required_features = {"mremap"};
  sqlite.is_benchmark = true;
  list->push_back(std::move(sqlite));

  Workload memcached;
  memcached.name = "memcached";
  memcached.description = "kv-daemon analog: clone thread + socketpair ops";
  memcached.wat = kMemcachedWat;
  memcached.required_features = {"mmap", "threads", "sockets"};
  memcached.uses_threads = true;
  memcached.is_benchmark = true;
  list->push_back(std::move(memcached));

  Workload paho;
  paho.name = "paho-bench";
  paho.description = "mqtt-app analog: blocking publish/ack loopback I/O";
  paho.wat = kPahoWat;
  paho.required_features = {"sockopt", "sockets"};
  paho.is_benchmark = true;
  list->push_back(std::move(paho));

  // Table 1 porting corpus (catalog-only: the real apps' feature needs).
  auto catalog = [&](const char* name, const char* desc,
                     std::vector<std::string> features) {
    Workload w;
    w.name = name;
    w.description = desc;
    w.required_features = std::move(features);
    list->push_back(std::move(w));
  };
  catalog("virgil", "compiler", {"chmod"});
  catalog("wizard", "wasm engine (self-host)", {"self-host", "mmap"});
  catalog("openssh", "system services", {"users", "signals", "sockets"});
  catalog("make", "CLI tool", {"wait4", "fork"});
  catalog("vim", "CLI tool", {"mmap", "signals"});
  catalog("wasm-inst", "CLI tool", {"sysconf"});
  catalog("libuvwasi", "WASI library", {"ioctl"});
  catalog("zlib", "compression lib", {});
  catalog("libevent", "system lib", {"socketpair"});
  catalog("libncurses", "system lib", {"pgroups"});
  catalog("openssl", "security lib", {"ioctl"});
  catalog("LTP", "test harness", {"linux"});

  return list;
}

}  // namespace

const std::vector<Workload>& AllWorkloads() {
  static const std::vector<Workload>* kList = BuildWorkloads();
  return *kList;
}

const Workload* FindWorkload(const std::string& name) {
  for (const Workload& w : AllWorkloads()) {
    if (w.name == name) return &w;
  }
  return nullptr;
}

std::string InstantiateWat(const Workload& w, int scale) {
  return ReplaceScale(w.wat, scale);
}

WaliRunStats RunUnderWali(const Workload& w, int scale, wasm::SafepointScheme scheme,
                          wasm::DispatchMode dispatch, bool fuse,
                          wasm::JitTier jit, uint32_t jit_threshold) {
  WaliRunStats stats;
  int64_t t0 = common::MonotonicNanos();
  auto parsed = wasm::ParseAndValidateWat(InstantiateWat(w, scale));
  if (!parsed.ok()) {
    stats.result.trap = wasm::TrapKind::kHostError;
    stats.result.trap_message = parsed.status().ToString();
    return stats;
  }
  if (!fuse) {
    wasm::PrepareOptions popts;
    popts.fuse = false;
    wasm::PrepareModule(**parsed, popts);
  }
  wasm::Linker linker;
  wali::WaliRuntime::Options opts;
  opts.scheme = scheme;
  opts.dispatch = dispatch;
  opts.jit = jit;
  opts.jit_threshold = jit_threshold;
  wali::WaliRuntime runtime(&linker, opts);
  auto proc = runtime.CreateProcess(*parsed, {w.name, std::to_string(scale)}, {});
  if (!proc.ok()) {
    stats.result.trap = wasm::TrapKind::kHostError;
    stats.result.trap_message = proc.status().ToString();
    return stats;
  }
  stats.startup_ns = common::MonotonicNanos() - t0;

  int64_t t1 = common::MonotonicNanos();
  stats.result = runtime.RunMain(**proc);
  stats.wall_ns = common::MonotonicNanos() - t1;

  wali::WaliProcess& process = **proc;
  stats.wali_ns = process.trace.wali_nanos();
  stats.kernel_ns = process.trace.kernel_nanos();
  stats.peak_linear_memory = process.memory->size_bytes();
  const auto& defs = runtime.syscalls();
  for (size_t id = 0; id < defs.size(); ++id) {
    uint64_t n = process.trace.count(static_cast<uint32_t>(id));
    if (n > 0) {
      stats.syscall_counts[defs[id].name] = n;
      stats.total_syscalls += n;
    }
  }
  return stats;
}

}  // namespace workloads
