// Lightweight status / status-or types used across the repository.
//
// Library code in this repo does not throw: fallible operations return Status
// or StatusOr<T>. Engine traps are modeled separately (wasm::Trap) because
// they carry Wasm-specific semantics; Status is for host-side failures.
#ifndef SRC_COMMON_STATUS_H_
#define SRC_COMMON_STATUS_H_

#include <cassert>
#include <cstdint>
#include <optional>
#include <string>
#include <utility>

namespace common {

enum class StatusCode : int32_t {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  kResourceExhausted,
  kPermissionDenied,
  kFailedPrecondition,
  kUnavailable,
};

const char* StatusCodeName(StatusCode code);

class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }
  std::string ToString() const;

  bool operator==(const Status& other) const { return code_ == other.code_; }

 private:
  StatusCode code_;
  std::string message_;
};

Status OkStatus();
Status InvalidArgument(std::string message);
Status NotFound(std::string message);
Status AlreadyExists(std::string message);
Status OutOfRange(std::string message);
Status Unimplemented(std::string message);
Status Internal(std::string message);
Status ResourceExhausted(std::string message);
Status PermissionDenied(std::string message);
Status FailedPrecondition(std::string message);
Status Unavailable(std::string message);

// Minimal StatusOr: either an ok value or a non-ok Status.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "StatusOr constructed from OK status without value");
  }
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  T& value() & {
    assert(ok());
    return *value_;
  }
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

#define RETURN_IF_ERROR(expr)                \
  do {                                       \
    ::common::Status _st = (expr);           \
    if (!_st.ok()) return _st;               \
  } while (0)

#define ASSIGN_OR_RETURN(lhs, expr)          \
  ASSIGN_OR_RETURN_IMPL_(                    \
      COMMON_CONCAT_(_status_or_, __LINE__), lhs, expr)

#define ASSIGN_OR_RETURN_IMPL_(var, lhs, expr) \
  auto var = (expr);                           \
  if (!var.ok()) return var.status();          \
  lhs = std::move(var).value()

#define COMMON_CONCAT_INNER_(a, b) a##b
#define COMMON_CONCAT_(a, b) COMMON_CONCAT_INNER_(a, b)

}  // namespace common

#endif  // SRC_COMMON_STATUS_H_
