// Monotonic / CPU-time helpers used by the benchmark harnesses and WALI's
// per-layer time attribution (Fig. 7).
#ifndef SRC_COMMON_TIME_UTIL_H_
#define SRC_COMMON_TIME_UTIL_H_

#include <time.h>

#include <cstdint>

namespace common {

inline int64_t MonotonicNanos() {
  timespec ts;
  clock_gettime(CLOCK_MONOTONIC_RAW, &ts);
  return static_cast<int64_t>(ts.tv_sec) * 1000000000 + ts.tv_nsec;
}

inline int64_t ThreadCpuNanos() {
  timespec ts;
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<int64_t>(ts.tv_sec) * 1000000000 + ts.tv_nsec;
}

// Accumulates nanoseconds across Start/Stop pairs; used to attribute time to
// the app / WALI / kernel layers.
class StopwatchNs {
 public:
  void Start() { start_ = MonotonicNanos(); }
  void Stop() { total_ += MonotonicNanos() - start_; }
  int64_t total() const { return total_; }
  void Reset() { total_ = 0; }

 private:
  int64_t start_ = 0;
  int64_t total_ = 0;
};

}  // namespace common

#endif  // SRC_COMMON_TIME_UTIL_H_
