// Leveled stderr logging. Level selected via WALI_LOG env var (0=off .. 3=debug)
// or SetLogLevel(). Thread-safe (single write(2) per line).
#ifndef SRC_COMMON_LOGGING_H_
#define SRC_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace common {

enum class LogLevel : int { kOff = 0, kError = 1, kInfo = 2, kDebug = 3 };

void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();
bool LogEnabled(LogLevel level);
void LogLine(LogLevel level, const std::string& line);

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();
  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal

#define LOG_ERROR() ::common::internal::LogMessage(::common::LogLevel::kError, __FILE__, __LINE__).stream()
#define LOG_INFO() ::common::internal::LogMessage(::common::LogLevel::kInfo, __FILE__, __LINE__).stream()
#define LOG_DEBUG() ::common::internal::LogMessage(::common::LogLevel::kDebug, __FILE__, __LINE__).stream()

}  // namespace common

#endif  // SRC_COMMON_LOGGING_H_
