#include "src/common/status.h"

namespace common {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kAlreadyExists: return "ALREADY_EXISTS";
    case StatusCode::kOutOfRange: return "OUT_OF_RANGE";
    case StatusCode::kUnimplemented: return "UNIMPLEMENTED";
    case StatusCode::kInternal: return "INTERNAL";
    case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case StatusCode::kPermissionDenied: return "PERMISSION_DENIED";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

Status OkStatus() { return Status(); }
Status InvalidArgument(std::string m) { return {StatusCode::kInvalidArgument, std::move(m)}; }
Status NotFound(std::string m) { return {StatusCode::kNotFound, std::move(m)}; }
Status AlreadyExists(std::string m) { return {StatusCode::kAlreadyExists, std::move(m)}; }
Status OutOfRange(std::string m) { return {StatusCode::kOutOfRange, std::move(m)}; }
Status Unimplemented(std::string m) { return {StatusCode::kUnimplemented, std::move(m)}; }
Status Internal(std::string m) { return {StatusCode::kInternal, std::move(m)}; }
Status ResourceExhausted(std::string m) { return {StatusCode::kResourceExhausted, std::move(m)}; }
Status PermissionDenied(std::string m) { return {StatusCode::kPermissionDenied, std::move(m)}; }
Status FailedPrecondition(std::string m) { return {StatusCode::kFailedPrecondition, std::move(m)}; }
Status Unavailable(std::string m) { return {StatusCode::kUnavailable, std::move(m)}; }

}  // namespace common
