// Deterministic 64-bit PRNG (splitmix64) for property tests and workload
// generation. Not cryptographic.
#ifndef SRC_COMMON_RNG_H_
#define SRC_COMMON_RNG_H_

#include <cstdint>

namespace common {

class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  // Uniform in [0, bound). bound must be > 0.
  uint64_t NextBelow(uint64_t bound) { return Next() % bound; }

  uint32_t Next32() { return static_cast<uint32_t>(Next() >> 32); }

  // Uniform in [lo, hi] inclusive.
  int64_t NextInRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(NextBelow(static_cast<uint64_t>(hi - lo + 1)));
  }

  bool NextBool() { return (Next() & 1) != 0; }

 private:
  uint64_t state_;
};

}  // namespace common

#endif  // SRC_COMMON_RNG_H_
