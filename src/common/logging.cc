#include "src/common/logging.h"

#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace common {

namespace {

std::atomic<int> g_level{-1};  // -1 = uninitialized

int InitLevelFromEnv() {
  const char* env = std::getenv("WALI_LOG");
  if (env == nullptr || *env == '\0') {
    return static_cast<int>(LogLevel::kError);
  }
  int v = std::atoi(env);
  if (v < 0) v = 0;
  if (v > 3) v = 3;
  return v;
}

int CurrentLevel() {
  int lvl = g_level.load(std::memory_order_relaxed);
  if (lvl < 0) {
    lvl = InitLevelFromEnv();
    g_level.store(lvl, std::memory_order_relaxed);
  }
  return lvl;
}

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "E";
    case LogLevel::kInfo: return "I";
    case LogLevel::kDebug: return "D";
    default: return "?";
  }
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() { return static_cast<LogLevel>(CurrentLevel()); }

bool LogEnabled(LogLevel level) {
  return static_cast<int>(level) <= CurrentLevel();
}

void LogLine(LogLevel level, const std::string& line) {
  if (!LogEnabled(level)) {
    return;
  }
  std::string out;
  out.reserve(line.size() + 8);
  out += '[';
  out += LevelTag(level);
  out += "] ";
  out += line;
  out += '\n';
  // Single write keeps concurrent log lines from interleaving.
  ssize_t ignored = write(STDERR_FILENO, out.data(), out.size());
  (void)ignored;
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line) : level_(level) {
  const char* base = std::strrchr(file, '/');
  stream_ << (base != nullptr ? base + 1 : file) << ':' << line << ' ';
}

LogMessage::~LogMessage() { LogLine(level_, stream_.str()); }

}  // namespace internal

}  // namespace common
