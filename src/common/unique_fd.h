// RAII wrapper for POSIX file descriptors.
#ifndef SRC_COMMON_UNIQUE_FD_H_
#define SRC_COMMON_UNIQUE_FD_H_

#include <unistd.h>

#include <utility>

namespace common {

class UniqueFd {
 public:
  UniqueFd() = default;
  explicit UniqueFd(int fd) : fd_(fd) {}
  ~UniqueFd() { Reset(); }

  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;

  UniqueFd(UniqueFd&& other) noexcept : fd_(other.Release()) {}
  UniqueFd& operator=(UniqueFd&& other) noexcept {
    if (this != &other) {
      Reset(other.Release());
    }
    return *this;
  }

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  explicit operator bool() const { return valid(); }

  int Release() { return std::exchange(fd_, -1); }

  void Reset(int fd = -1) {
    if (fd_ >= 0) {
      ::close(fd_);
    }
    fd_ = fd;
  }

 private:
  int fd_ = -1;
};

}  // namespace common

#endif  // SRC_COMMON_UNIQUE_FD_H_
