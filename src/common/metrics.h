// Process-wide metrics primitives: relaxed-atomic counters and gauges, and
// fixed-bucket histograms, behind a name-keyed registry.
//
// The registry exists so instrumented code pays nothing for naming: a call
// site resolves its series ONCE at setup time (Registry::GetCounter and
// friends return pointers that stay valid for the registry's lifetime — the
// "static handle") and the hot path is a single relaxed atomic add on that
// handle. Totals are exact under any thread interleaving; only cross-metric
// ordering is unspecified, which is fine for monitoring data.
//
// Prometheus-style labels are embedded in the series name itself
// (`supervisor_jobs_total{outcome="shed"}`): the registry stays a flat
// string -> series map and the text exporter only has to split the base
// name at '{' to group a metric family under one # TYPE line.
#ifndef SRC_COMMON_METRICS_H_
#define SRC_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace metrics {

class Counter {
 public:
  void Add(uint64_t n) { v_.fetch_add(n, std::memory_order_relaxed); }
  void Inc() { Add(1); }
  uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

class Gauge {
 public:
  void Set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void Add(int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  void Sub(int64_t d) { v_.fetch_sub(d, std::memory_order_relaxed); }
  int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

// Fixed-bucket histogram: bucket upper bounds are chosen at registration
// and immutable afterwards, so Observe is lock-free (one linear scan over a
// handful of bounds plus three relaxed adds). bucket(i) counts observations
// v <= bounds[i]; the final bucket (index bounds.size()) is +inf.
class Histogram {
 public:
  explicit Histogram(std::vector<int64_t> bounds)
      : bounds_(std::move(bounds)),
        buckets_(new std::atomic<uint64_t>[bounds_.size() + 1]()) {}

  void Observe(int64_t v) {
    size_t i = 0;
    while (i < bounds_.size() && v > bounds_[i]) {
      ++i;
    }
    buckets_[i].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }

  const std::vector<int64_t>& bounds() const { return bounds_; }
  uint64_t bucket(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  int64_t sum() const { return sum_.load(std::memory_order_relaxed); }

 private:
  std::vector<int64_t> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;
  std::atomic<uint64_t> count_{0};
  std::atomic<int64_t> sum_{0};
};

// Default bounds for nanosecond latencies: decade steps from 1us to 10s.
inline std::vector<int64_t> LatencyBoundsNanos() {
  return {1000,       10000,      100000,      1000000,
          10000000,   100000000,  1000000000,  10000000000LL};
}

// Name-keyed series store. Get* registers on first use; the returned
// pointer is stable for the registry's lifetime and series are never
// removed (bounded-cardinality series only — anything keyed by an open
// namespace, like tenant ids, belongs in host::Telemetry's per-tenant
// table, which CAN forget).
class Registry {
 public:
  Counter* GetCounter(const std::string& name) {
    std::lock_guard<std::mutex> lock(mu_);
    std::unique_ptr<Counter>& c = counters_[name];
    if (c == nullptr) {
      c = std::make_unique<Counter>();
    }
    return c.get();
  }

  Gauge* GetGauge(const std::string& name) {
    std::lock_guard<std::mutex> lock(mu_);
    std::unique_ptr<Gauge>& g = gauges_[name];
    if (g == nullptr) {
      g = std::make_unique<Gauge>();
    }
    return g.get();
  }

  Histogram* GetHistogram(const std::string& name,
                          std::vector<int64_t> bounds = LatencyBoundsNanos()) {
    std::lock_guard<std::mutex> lock(mu_);
    std::unique_ptr<Histogram>& h = histograms_[name];
    if (h == nullptr) {
      h = std::make_unique<Histogram>(std::move(bounds));
    }
    return h.get();
  }

  struct HistogramSnapshot {
    std::string name;
    std::vector<int64_t> bounds;
    std::vector<uint64_t> buckets;  // bounds.size() + 1 entries (+inf last)
    uint64_t count = 0;
    int64_t sum = 0;
  };

  struct Snapshot {
    std::vector<std::pair<std::string, uint64_t>> counters;
    std::vector<std::pair<std::string, int64_t>> gauges;
    std::vector<HistogramSnapshot> histograms;
  };

  // Point-in-time copy, sorted by name (std::map order). Each value is read
  // atomically; the set of values is not a cross-series atomic cut.
  Snapshot TakeSnapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    Snapshot s;
    s.counters.reserve(counters_.size());
    for (const auto& [name, c] : counters_) {
      s.counters.emplace_back(name, c->value());
    }
    s.gauges.reserve(gauges_.size());
    for (const auto& [name, g] : gauges_) {
      s.gauges.emplace_back(name, g->value());
    }
    s.histograms.reserve(histograms_.size());
    for (const auto& [name, h] : histograms_) {
      HistogramSnapshot hs;
      hs.name = name;
      hs.bounds = h->bounds();
      hs.buckets.reserve(hs.bounds.size() + 1);
      for (size_t i = 0; i <= hs.bounds.size(); ++i) {
        hs.buckets.push_back(h->bucket(i));
      }
      hs.count = h->count();
      hs.sum = h->sum();
      s.histograms.push_back(std::move(hs));
    }
    return s;
  }

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace metrics

#endif  // SRC_COMMON_METRICS_H_
