#include "src/host/io_uring_backend.h"

#include <errno.h>
#include <poll.h>
#include <string.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "src/common/logging.h"
#include "src/common/time_util.h"
#include "src/host/telemetry.h"

#if defined(HOST_IO_URING)
#include <linux/io_uring.h>
#include <sys/eventfd.h>
#include <sys/mman.h>
#include <sys/syscall.h>

#ifndef __NR_io_uring_setup
#define __NR_io_uring_setup 425
#endif
#ifndef __NR_io_uring_enter
#define __NR_io_uring_enter 426
#endif
#endif  // HOST_IO_URING

namespace host {

namespace {

// user_data values below kFirstOpTag are control tags, never op tags.
constexpr uint64_t kCancelTag = 0;  // CQE of an ASYNC_CANCEL/TIMEOUT_REMOVE
constexpr uint64_t kWakeTag = 1;    // CQE of the eventfd wake POLL_ADD
constexpr uint64_t kFirstOpTag = 2;

// Completions collected under the backend lock, delivered after unlock.
struct Due {
  uint64_t cookie;
  IoCompletion completion;
};

#if defined(HOST_IO_URING)
int SysIoUringSetup(unsigned entries, struct io_uring_params* p) {
  return static_cast<int>(::syscall(__NR_io_uring_setup, entries, p));
}

int SysIoUringEnter(int fd, unsigned to_submit, unsigned min_complete,
                    unsigned flags) {
  return static_cast<int>(::syscall(__NR_io_uring_enter, fd, to_submit,
                                    min_complete, flags, nullptr, 0));
}

struct __kernel_timespec ToKernelTs(int64_t nanos) {
  struct __kernel_timespec ts;
  ts.tv_sec = nanos / 1000000000;
  ts.tv_nsec = nanos % 1000000000;
  return ts;
}
#endif  // HOST_IO_URING

}  // namespace

bool IoUringAvailable() {
#if defined(HOST_IO_URING)
  static const bool ok = [] {
    struct io_uring_params p;
    memset(&p, 0, sizeof(p));
    int fd = SysIoUringSetup(4, &p);
    if (fd < 0) {
      return false;
    }
    ::close(fd);
    return true;
  }();
  return ok;
#else
  return false;
#endif
}

// All mutable backend state. Lock order matches IoReactor: deliver_mu_ and
// mu_ are never held together; completions are delivered outside mu_,
// under deliver_mu_.
struct IoUringBackend::Impl {
  // One parked op. `tags` are the ring user_data values registered for it
  // (a kPollSet fans out to one POLL_ADD per member plus an optional
  // timeout); the first relevant CQE wins and every remaining tag is
  // cancelled + ignored. `ts` must stay address-stable until the kernel
  // consumes the SQE pointing at it, so records are heap-allocated
  // (unique_ptr in ops_) — retiring one moves only the pointer, never the
  // record — and `retired_` keeps them alive until the loop thread has
  // submitted every pushed SQE.
  struct OpRec {
    wali::IoOp op;
    std::vector<std::pair<uint64_t, bool>> tags;  // (tag, is_timer)
    bool submitted = false;  // SQEs pushed into the ring yet?
#if defined(HOST_IO_URING)
    struct __kernel_timespec ts {};
#endif
  };
  struct TagInfo {
    uint64_t cookie = 0;
    bool is_timer = false;
  };
  struct CancelReq {
    uint64_t tag = 0;
    bool is_timer = false;
  };

  std::mutex deliver_mu_;
  IoBackend::CompletionFn complete_;

  mutable std::mutex mu_;
  std::condition_variable cv_;  // fallback mode's wakeup
  bool stopping_ = false;
  bool ring_ok_ = false;
  // True once io_uring_enter fails in a way that can never make progress;
  // the loop thread fails everything parked and drops to the -ENOSYS
  // fallback. Atomic so Wake() can route wakeups without taking mu_.
  std::atomic<bool> ring_dead_{false};
  bool need_arm_wake_ = true;  // eventfd POLL_ADD wants re-arming (mu_)
  std::map<uint64_t, std::unique_ptr<OpRec>> ops_;
  std::deque<uint64_t> submit_queue_;   // cookies awaiting SQE build
  std::deque<CancelReq> cancel_queue_;  // kernel-side cancels to issue
  std::map<uint64_t, TagInfo> tag_map_;
  uint64_t next_tag_ = kFirstOpTag;
  // Records detached by Cancel whose `ts` may still be read by the next
  // io_uring_enter; the loop thread frees them once it is safe.
  std::vector<std::unique_ptr<OpRec>> retired_;

  std::atomic<uint64_t> stat_enters_{0};
  std::atomic<uint64_t> stat_sqes_{0};

  IoBackendMetrics tm_;
  std::thread loop_;

#if defined(HOST_IO_URING)
  int ring_fd_ = -1;
  int event_fd_ = -1;
  void* sq_ptr_ = nullptr;
  size_t sq_len_ = 0;
  void* cq_ptr_ = nullptr;
  size_t cq_len_ = 0;
  void* sqe_ptr_ = nullptr;
  size_t sqe_len_ = 0;
  unsigned* sq_head_ = nullptr;
  unsigned* sq_tail_ = nullptr;
  unsigned sq_mask_ = 0;
  unsigned sq_entries_ = 0;
  unsigned* sq_array_ = nullptr;
  struct io_uring_sqe* sqes_ = nullptr;
  unsigned* cq_head_ = nullptr;
  unsigned* cq_tail_ = nullptr;
  unsigned cq_mask_ = 0;
  struct io_uring_cqe* cqes_ = nullptr;
#endif

  ~Impl() { TeardownRing(); }

  void Deliver(uint64_t cookie, const IoCompletion& completion) {
    std::lock_guard<std::mutex> lock(deliver_mu_);
    if (complete_) {
      complete_(cookie, completion);
    }
  }

  void Wake() {
#if defined(HOST_IO_URING)
    if (event_fd_ >= 0 && !ring_dead_.load(std::memory_order_acquire)) {
      uint64_t one = 1;
      (void)!::write(event_fd_, &one, sizeof(one));
    }
#endif
    // Always notify the cv too: a ring death racing this Wake may already
    // have moved the loop thread into FallbackLoop's cv wait, where an
    // eventfd write alone would be a lost wakeup.
    cv_.notify_all();
  }

  uint64_t NewTag(uint64_t cookie, bool is_timer, OpRec* rec) {
    const uint64_t tag = next_tag_++;
    tag_map_[tag] = {cookie, is_timer};
    rec->tags.emplace_back(tag, is_timer);
    return tag;
  }

  // The fallback loop: no ring. Every submit completes asynchronously with
  // kError(-ENOSYS) so the supervisor resumes the guest with a truthful
  // errno instead of wedging it parked.
  void FallbackLoop() {
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      cv_.wait(lock, [this] { return stopping_ || !submit_queue_.empty(); });
      if (stopping_) {
        return;
      }
      const uint64_t cookie = submit_queue_.front();
      submit_queue_.pop_front();
      auto it = ops_.find(cookie);
      if (it == ops_.end()) {
        continue;  // cancelled before we got here
      }
      ops_.erase(it);
      lock.unlock();
      tm_.OnComplete();
      Deliver(cookie, IoCompletion::Error(-ENOSYS));
      lock.lock();
    }
  }

#if defined(HOST_IO_URING)
  bool SetupRing() {
    struct io_uring_params p;
    memset(&p, 0, sizeof(p));
    p.flags = IORING_SETUP_CQSIZE;
    p.cq_entries = 4096;
    int fd = SysIoUringSetup(256, &p);
    if (fd < 0 && errno == EINVAL) {
      // Very old kernels without IORING_SETUP_CQSIZE: take the default CQ.
      memset(&p, 0, sizeof(p));
      fd = SysIoUringSetup(256, &p);
    }
    if (fd < 0) {
      return false;
    }
    sq_len_ = p.sq_off.array + p.sq_entries * sizeof(unsigned);
    cq_len_ = p.cq_off.cqes + p.cq_entries * sizeof(struct io_uring_cqe);
    const bool single_mmap = (p.features & IORING_FEAT_SINGLE_MMAP) != 0;
    if (single_mmap) {
      sq_len_ = cq_len_ = std::max(sq_len_, cq_len_);
    }
    sq_ptr_ = ::mmap(nullptr, sq_len_, PROT_READ | PROT_WRITE,
                     MAP_SHARED | MAP_POPULATE, fd, IORING_OFF_SQ_RING);
    if (sq_ptr_ == MAP_FAILED) {
      sq_ptr_ = nullptr;
      ::close(fd);
      return false;
    }
    if (single_mmap) {
      cq_ptr_ = sq_ptr_;
    } else {
      cq_ptr_ = ::mmap(nullptr, cq_len_, PROT_READ | PROT_WRITE,
                       MAP_SHARED | MAP_POPULATE, fd, IORING_OFF_CQ_RING);
      if (cq_ptr_ == MAP_FAILED) {
        cq_ptr_ = nullptr;
        ::munmap(sq_ptr_, sq_len_);
        sq_ptr_ = nullptr;
        ::close(fd);
        return false;
      }
    }
    sqe_len_ = p.sq_entries * sizeof(struct io_uring_sqe);
    sqe_ptr_ = ::mmap(nullptr, sqe_len_, PROT_READ | PROT_WRITE,
                      MAP_SHARED | MAP_POPULATE, fd, IORING_OFF_SQES);
    if (sqe_ptr_ == MAP_FAILED) {
      sqe_ptr_ = nullptr;
      if (cq_ptr_ != sq_ptr_) ::munmap(cq_ptr_, cq_len_);
      ::munmap(sq_ptr_, sq_len_);
      sq_ptr_ = cq_ptr_ = nullptr;
      ::close(fd);
      return false;
    }
    char* sq = static_cast<char*>(sq_ptr_);
    char* cq = static_cast<char*>(cq_ptr_);
    sq_head_ = reinterpret_cast<unsigned*>(sq + p.sq_off.head);
    sq_tail_ = reinterpret_cast<unsigned*>(sq + p.sq_off.tail);
    sq_mask_ = *reinterpret_cast<unsigned*>(sq + p.sq_off.ring_mask);
    sq_entries_ = p.sq_entries;
    sq_array_ = reinterpret_cast<unsigned*>(sq + p.sq_off.array);
    sqes_ = static_cast<struct io_uring_sqe*>(sqe_ptr_);
    cq_head_ = reinterpret_cast<unsigned*>(cq + p.cq_off.head);
    cq_tail_ = reinterpret_cast<unsigned*>(cq + p.cq_off.tail);
    cq_mask_ = *reinterpret_cast<unsigned*>(cq + p.cq_off.ring_mask);
    cqes_ = reinterpret_cast<struct io_uring_cqe*>(cq + p.cq_off.cqes);

    event_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    if (event_fd_ < 0) {
      ring_fd_ = fd;  // TeardownRing unmaps/closes everything
      TeardownRing();
      return false;
    }
    ring_fd_ = fd;
    return true;
  }

  void TeardownRing() {
#if defined(HOST_IO_URING)
    if (sqe_ptr_ != nullptr) ::munmap(sqe_ptr_, sqe_len_);
    if (cq_ptr_ != nullptr && cq_ptr_ != sq_ptr_) ::munmap(cq_ptr_, cq_len_);
    if (sq_ptr_ != nullptr) ::munmap(sq_ptr_, sq_len_);
    sq_ptr_ = cq_ptr_ = sqe_ptr_ = nullptr;
    if (event_fd_ >= 0) ::close(event_fd_);
    if (ring_fd_ >= 0) ::close(ring_fd_);
    event_fd_ = ring_fd_ = -1;
#endif
  }

  // Marks the ring unable to ever make progress again. mu_ held. The loop
  // thread notices at its next iteration, fails everything parked with
  // -ENOSYS and drops to FallbackLoop; *to_submit is zeroed because the
  // pushed SQEs will never reach the kernel.
  void KillRing(unsigned* to_submit) {
    ring_dead_.store(true, std::memory_order_release);
    *to_submit = 0;
  }

  // Flushes already-pushed SQEs without waiting. Called with mu_ held (the
  // ring tail is only ever written by the loop thread, but SQE payloads
  // reference OpRec memory guarded by mu_). A full CQ (-EBUSY) is drained
  // in place to make room; any other persistent error kills the ring
  // instead of retrying without progress.
  void FlushSubmissions(unsigned* to_submit, std::vector<Due>* due) {
    while (*to_submit > 0) {
      int rc = SysIoUringEnter(ring_fd_, *to_submit, 0, 0);
      if (rc < 0) {
        if (errno == EINTR || errno == EAGAIN) {
          continue;
        }
        if (errno == EBUSY) {
          DrainCqes(due);  // CQ overflow: consume completions, then retry
          continue;
        }
        LOG_ERROR() << "io_uring_enter(submit) failed errno=" << errno
                    << "; disabling ring";
        KillRing(to_submit);
        return;
      }
      stat_enters_.fetch_add(1, std::memory_order_relaxed);
      stat_sqes_.fetch_add(static_cast<uint64_t>(rc),
                           std::memory_order_relaxed);
      *to_submit -= static_cast<unsigned>(rc);
      if (rc == 0 && *to_submit > 0) {
        // The kernel accepted nothing and gave no errno; there is no way
        // to make progress, so don't spin — PushSqe would otherwise loop
        // on a full SQ forever.
        LOG_ERROR() << "io_uring_enter(submit) made no progress; disabling "
                       "ring";
        KillRing(to_submit);
        return;
      }
    }
  }

  // Pushes one SQE, flushing mid-batch if the SQ is full. mu_ held. On a
  // dead ring the SQE is dropped: the loop thread fails its op.
  void PushSqe(const struct io_uring_sqe& sqe, unsigned* to_submit,
               std::vector<Due>* due) {
    while (!ring_dead_.load(std::memory_order_relaxed)) {
      const unsigned head = __atomic_load_n(sq_head_, __ATOMIC_ACQUIRE);
      const unsigned tail = *sq_tail_;  // loop thread is the sole writer
      if (tail - head < sq_entries_) {
        const unsigned idx = tail & sq_mask_;
        sqes_[idx] = sqe;
        sq_array_[idx] = idx;
        __atomic_store_n(sq_tail_, tail + 1, __ATOMIC_RELEASE);
        ++*to_submit;
        return;
      }
      FlushSubmissions(to_submit, due);
    }
  }

  void PushCancelSqe(const CancelReq& req, unsigned* to_submit,
                     std::vector<Due>* due) {
    struct io_uring_sqe s;
    memset(&s, 0, sizeof(s));
    s.opcode = req.is_timer ? IORING_OP_TIMEOUT_REMOVE : IORING_OP_ASYNC_CANCEL;
    s.fd = -1;
    s.addr = req.tag;  // both opcodes key the target by its user_data
    s.user_data = kCancelTag;
    PushSqe(s, to_submit, due);
  }

  void PushWakeArm(unsigned* to_submit, std::vector<Due>* due) {
    struct io_uring_sqe s;
    memset(&s, 0, sizeof(s));
    s.opcode = IORING_OP_POLL_ADD;  // one-shot: re-armed after every fire
    s.fd = event_fd_;
    s.poll_events = POLLIN;
    s.user_data = kWakeTag;
    PushSqe(s, to_submit, due);
  }

  // Registers one op's SQEs (or completes it immediately for ring-less
  // kinds). mu_ held; immediate completions go to `due` for delivery after
  // unlock.
  void BuildSqes(uint64_t cookie, OpRec* rec, unsigned* to_submit,
                 std::vector<Due>* due) {
    using K = wali::IoOp::Kind;
    rec->submitted = true;
    const wali::IoOp& op = rec->op;
    switch (op.kind) {
      case K::kScripted:
        due->push_back({cookie, IoCompletion::Result(op.scripted_result)});
        ops_.erase(cookie);
        return;
      case K::kSleep: {
        rec->ts = ToKernelTs(std::max<int64_t>(op.sleep_nanos, 0));
        struct io_uring_sqe s;
        memset(&s, 0, sizeof(s));
        s.opcode = IORING_OP_TIMEOUT;
        s.fd = -1;
        s.addr = reinterpret_cast<uintptr_t>(&rec->ts);
        s.len = 1;
        s.user_data = NewTag(cookie, /*is_timer=*/true, rec);
        PushSqe(s, to_submit, due);
        return;
      }
      case K::kReadable:
      case K::kWritable: {
        struct io_uring_sqe s;
        memset(&s, 0, sizeof(s));
        s.opcode = IORING_OP_POLL_ADD;
        s.fd = op.fd;
        s.poll_events = op.kind == K::kReadable ? POLLIN : POLLOUT;
        s.user_data = NewTag(cookie, /*is_timer=*/false, rec);
        if (op.timeout_nanos >= 0) {
          s.flags |= IOSQE_IO_LINK;
          PushSqe(s, to_submit, due);
          rec->ts = ToKernelTs(op.timeout_nanos);
          struct io_uring_sqe lt;
          memset(&lt, 0, sizeof(lt));
          lt.opcode = IORING_OP_LINK_TIMEOUT;
          lt.fd = -1;
          lt.addr = reinterpret_cast<uintptr_t>(&rec->ts);
          lt.len = 1;
          lt.user_data = NewTag(cookie, /*is_timer=*/true, rec);
          PushSqe(lt, to_submit, due);
        } else {
          PushSqe(s, to_submit, due);
        }
        return;
      }
      case K::kPollSet: {
        for (const wali::IoOp::PollFd& m : op.poll_fds) {
          if (m.fd < 0) {
            continue;  // poll(2): negative fds are ignored
          }
          struct io_uring_sqe s;
          memset(&s, 0, sizeof(s));
          s.opcode = IORING_OP_POLL_ADD;
          s.fd = m.fd;
          s.poll_events = static_cast<unsigned short>(m.events);
          s.user_data = NewTag(cookie, /*is_timer=*/false, rec);
          PushSqe(s, to_submit, due);
        }
        if (op.timeout_nanos >= 0) {
          // Standalone (not linked): the first poll member to fire cancels
          // it via TIMEOUT_REMOVE in the CQE path.
          rec->ts = ToKernelTs(op.timeout_nanos);
          struct io_uring_sqe s;
          memset(&s, 0, sizeof(s));
          s.opcode = IORING_OP_TIMEOUT;
          s.fd = -1;
          s.addr = reinterpret_cast<uintptr_t>(&rec->ts);
          s.len = 1;
          s.user_data = NewTag(cookie, /*is_timer=*/true, rec);
          PushSqe(s, to_submit, due);
        }
        return;
      }
      case K::kNone:
      default:
        due->push_back({cookie, IoCompletion::Error(-EINVAL)});
        ops_.erase(cookie);
        return;
    }
  }

  // Erases every remaining ring registration of a completed op and queues
  // kernel-side cancels for them, so loser CQEs miss tag_map_ and are
  // dropped. mu_ held.
  void RetireOp(std::map<uint64_t, std::unique_ptr<OpRec>>::iterator it,
                uint64_t fired_tag) {
    for (const auto& [tag, is_timer] : it->second->tags) {
      tag_map_.erase(tag);
      if (tag != fired_tag) {
        cancel_queue_.push_back({tag, is_timer});
      }
    }
    retired_.push_back(std::move(it->second));
    ops_.erase(it);
  }

  // Processes one op CQE. Returns true (and fills *out) when the op
  // completed; false when the CQE is a loser/ignored one. mu_ held.
  bool OnOpCqe(uint64_t tag, int32_t res, Due* out) {
    auto tit = tag_map_.find(tag);
    if (tit == tag_map_.end()) {
      return false;  // op already completed/cancelled; stale CQE
    }
    const TagInfo info = tit->second;
    auto oit = ops_.find(info.cookie);
    if (oit == ops_.end()) {
      tag_map_.erase(tit);  // defensive: should not happen
      return false;
    }
    if (info.is_timer) {
      if (res == -ECANCELED) {
        // The linked/standalone timer was killed because its op completed
        // (or is being cancelled); not a completion by itself.
        tag_map_.erase(tit);
        auto& tags = oit->second->tags;
        tags.erase(std::remove_if(tags.begin(), tags.end(),
                                  [tag](const std::pair<uint64_t, bool>& t) {
                                    return t.first == tag;
                                  }),
                   tags.end());
        if (tags.empty()) {
          // Nothing left in the kernel can ever complete this op; surface
          // the cancellation rather than wedging the park forever.
          out->cookie = info.cookie;
          out->completion = IoCompletion::Error(-ECANCELED);
          retired_.push_back(std::move(oit->second));
          ops_.erase(oit);
          return true;
        }
        return false;
      }
      // -ETIME (expiry) or 0: the op's timeout elapsed.
      out->cookie = info.cookie;
      out->completion = IoCompletion::TimedOut();
      RetireOp(oit, tag);
      return true;
    }
    if (res == -ECANCELED) {
      // Poll leg cancelled by its linked timeout; the timer CQE carries the
      // completion.
      tag_map_.erase(tit);
      auto& tags = oit->second->tags;
      tags.erase(std::remove_if(tags.begin(), tags.end(),
                                [tag](const std::pair<uint64_t, bool>& t) {
                                  return t.first == tag;
                                }),
                 tags.end());
      if (tags.empty()) {
        out->cookie = info.cookie;
        out->completion = IoCompletion::Error(-ECANCELED);
        retired_.push_back(std::move(oit->second));
        ops_.erase(oit);
        return true;
      }
      return false;
    }
    // res >= 0: revents mask — readiness. res < 0 (e.g. -EBADF on a closed
    // fd, the POLLNVAL analogue): also complete kReady, so the retry
    // re-issues the syscall and the kernel reports the truth.
    out->cookie = info.cookie;
    out->completion = IoCompletion::Ready();
    RetireOp(oit, tag);
    return true;
  }

  void DrainCqes(std::vector<Due>* due) {
    unsigned head = *cq_head_;  // loop thread is the sole consumer
    const unsigned tail = __atomic_load_n(cq_tail_, __ATOMIC_ACQUIRE);
    while (head != tail) {
      const struct io_uring_cqe& cqe = cqes_[head & cq_mask_];
      ++head;
      if (cqe.user_data == kWakeTag) {
        uint64_t buf;
        while (::read(event_fd_, &buf, sizeof(buf)) > 0) {
        }
        need_arm_wake_ = true;
        continue;
      }
      if (cqe.user_data == kCancelTag) {
        continue;  // result of our own cancel SQE; nothing to do
      }
      Due d;
      if (OnOpCqe(cqe.user_data, cqe.res, &d)) {
        due->push_back(d);
      }
    }
    __atomic_store_n(cq_head_, head, __ATOMIC_RELEASE);
  }

  void RingLoop() {
    unsigned to_submit = 0;
    std::vector<Due> due;
    for (;;) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (stopping_) {
          return;
        }
        if (to_submit == 0) {
          // Safe only once every pushed SQE (which may reference a retired
          // record's timespec) has been consumed by the kernel.
          retired_.clear();
        }
        if (need_arm_wake_) {
          PushWakeArm(&to_submit, &due);
          need_arm_wake_ = false;
        }
        while (!cancel_queue_.empty()) {
          const CancelReq req = cancel_queue_.front();
          cancel_queue_.pop_front();
          PushCancelSqe(req, &to_submit, &due);
        }
        while (!submit_queue_.empty()) {
          const uint64_t cookie = submit_queue_.front();
          submit_queue_.pop_front();
          auto it = ops_.find(cookie);
          if (it == ops_.end()) {
            continue;  // cancelled before its SQEs were built
          }
          BuildSqes(cookie, it->second.get(), &to_submit, &due);
        }
        if (!due.empty() && to_submit > 0) {
          // Immediate completions pending: flush without blocking so they
          // are delivered now; the next iteration blocks as usual.
          FlushSubmissions(&to_submit, &due);
        }
        if (ring_dead_.load(std::memory_order_relaxed)) {
          // The ring can never make progress again: fail everything parked
          // so no guest stays wedged. SQEs pushed but not submitted will
          // never reach the kernel, so dropping retired_ here is safe.
          for (auto& [cookie, rec] : ops_) {
            due.push_back({cookie, IoCompletion::Error(-ENOSYS)});
          }
          ops_.clear();
          tag_map_.clear();
          submit_queue_.clear();
          cancel_queue_.clear();
          retired_.clear();
        }
      }
      if (ring_dead_.load(std::memory_order_relaxed)) {
        for (const Due& d : due) {
          tm_.OnComplete();
          Deliver(d.cookie, d.completion);
        }
        due.clear();
        // Serve the rest of this backend's life as if io_uring were absent:
        // every later submit completes with -ENOSYS (Wake notifies cv_).
        FallbackLoop();
        return;
      }
      if (due.empty()) {
        // The one enter per wakeup: submit everything coalesced above and
        // wait for at least one CQE (a real completion or the eventfd
        // wake).
        const unsigned submitting = to_submit;
        int rc = SysIoUringEnter(ring_fd_, submitting, 1,
                                 IORING_ENTER_GETEVENTS);
        if (rc < 0) {
          // EINTR/EAGAIN: plain retry. EBUSY: CQ overflow — fall through
          // to DrainCqes, which makes room. Anything else is permanent:
          // kill the ring instead of spinning on a failing enter.
          if (errno != EINTR && errno != EAGAIN && errno != EBUSY) {
            LOG_ERROR() << "io_uring_enter(wait) failed errno=" << errno
                        << "; disabling ring";
            ring_dead_.store(true, std::memory_order_release);
            to_submit = 0;
            continue;  // next iteration sweeps parked ops and falls back
          }
        } else {
          if (submitting > 0) {
            stat_enters_.fetch_add(1, std::memory_order_relaxed);
            stat_sqes_.fetch_add(static_cast<uint64_t>(rc),
                                 std::memory_order_relaxed);
          }
          to_submit -= static_cast<unsigned>(rc);
        }
        {
          std::lock_guard<std::mutex> lock(mu_);
          DrainCqes(&due);
        }
      }
      for (const Due& d : due) {
        tm_.OnComplete();
        Deliver(d.cookie, d.completion);
      }
      due.clear();
    }
  }
#else   // !HOST_IO_URING
  void TeardownRing() {}
#endif  // HOST_IO_URING
};

IoUringBackend::IoUringBackend() : impl_(new Impl) {
#if defined(HOST_IO_URING)
  if (impl_->SetupRing()) {
    impl_->ring_ok_ = true;
    impl_->loop_ = std::thread([impl = impl_.get()] { impl->RingLoop(); });
    return;
  }
  LOG_INFO() << "io_uring unavailable at runtime; IoUringBackend answering "
                "-ENOSYS (callers should probe IoUringAvailable())";
#endif
  impl_->loop_ = std::thread([impl = impl_.get()] { impl->FallbackLoop(); });
}

IoUringBackend::~IoUringBackend() {
  {
    std::lock_guard<std::mutex> lock(impl_->mu_);
    impl_->stopping_ = true;
  }
  impl_->Wake();
  if (impl_->loop_.joinable()) {
    impl_->loop_.join();
  }
  // Anything still pending is dropped silently, as in IoReactor: the owner
  // cancels or resumes parked jobs before releasing the backend.
}

void IoUringBackend::SetCompletionHandler(CompletionFn fn) {
  std::lock_guard<std::mutex> lock(impl_->deliver_mu_);
  impl_->complete_ = std::move(fn);
}

void IoUringBackend::Submit(uint64_t cookie, const wali::IoOp& op) {
  {
    std::lock_guard<std::mutex> lock(impl_->mu_);
    auto rec = std::make_unique<Impl::OpRec>();
    rec->op = op;
    impl_->ops_[cookie] = std::move(rec);
    impl_->submit_queue_.push_back(cookie);
  }
  impl_->tm_.OnSubmit();
  impl_->Wake();
}

bool IoUringBackend::Cancel(uint64_t cookie) {
  {
    std::lock_guard<std::mutex> lock(impl_->mu_);
    auto it = impl_->ops_.find(cookie);
    if (it == impl_->ops_.end()) {
      return false;  // already delivered (or never submitted)
    }
    for (const auto& [tag, is_timer] : it->second->tags) {
      impl_->tag_map_.erase(tag);
      if (it->second->submitted) {
        impl_->cancel_queue_.push_back({tag, is_timer});
      }
    }
    // The record moves to retired_ as a unique_ptr: its heap address (and
    // the &ts embedded in any not-yet-submitted TIMEOUT SQE) is unchanged,
    // and the loop thread frees it only after the kernel has consumed
    // every pushed SQE.
    impl_->retired_.push_back(std::move(it->second));
    impl_->ops_.erase(it);
  }
  impl_->tm_.OnCancel();
  impl_->Wake();
  return true;
}

int64_t IoUringBackend::NowNanos() const { return common::MonotonicNanos(); }

size_t IoUringBackend::pending() const {
  std::lock_guard<std::mutex> lock(impl_->mu_);
  return impl_->ops_.size();
}

void IoUringBackend::SetTelemetry(Telemetry* tel) {
  impl_->tm_.Wire(tel, "io_uring");
}

bool IoUringBackend::ring_ok() const { return impl_->ring_ok_; }

IoUringBackend::Stats IoUringBackend::stats() const {
  Stats s;
  s.enters = impl_->stat_enters_.load(std::memory_order_relaxed);
  s.sqes = impl_->stat_sqes_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace host
