// ModuleCache: decode/validate/prepare a guest module once, instantiate
// many times.
//
// The hosting layer's cold path (decode + validate + the interpreter's
// prepare pass, which Validate runs: superinstruction fusion and block
// fuel metadata in Function::prepared) dominates per-request startup cost
// once linear memory is pooled, so the cache keys fully validated modules
// by content hash and hands out shared_ptr<const Module> — prepared
// execution code included — for repeated instantiation across tenants. Both
// binary .wasm and textual .wat inputs are accepted (auto-detected). Entries
// are evicted LRU beyond the configured capacity.
#ifndef SRC_HOST_MODULE_CACHE_H_
#define SRC_HOST_MODULE_CACHE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/wasm/module.h"

namespace metrics {
class Counter;
}  // namespace metrics

namespace host {

class Telemetry;

class ModuleCache {
 public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    size_t entries = 0;
  };

  explicit ModuleCache(size_t capacity = 64);

  // Returns the validated module for `bytes` (binary .wasm if it carries the
  // \0asm magic, otherwise parsed as WAT), decoding at most once per distinct
  // content. Thread-safe.
  common::StatusOr<std::shared_ptr<const wasm::Module>> Load(
      const std::string& bytes);

  // Convenience: reads `path` and calls Load.
  common::StatusOr<std::shared_ptr<const wasm::Module>> LoadFile(
      const std::string& path);

  // 64-bit FNV-1a over the module bytes (the cache key).
  static uint64_t ContentHash(const void* data, size_t len);

  Stats stats() const;

  // Wires cache hit/miss counters into `tel`'s registry and, for every
  // module decoded from then on: folds its PrepareStats into the
  // per-superinstruction emission counters
  // (wasm_superinstructions_emitted_total{op=...}) and registers the module
  // (weakly) for per-function hot-profile export. Null detaches. Call
  // before the cache is shared.
  void SetTelemetry(Telemetry* tel);

 private:
  // FNV-1a is fast but not collision-resistant, so a hit must be confirmed
  // against the original bytes: a tenant must never be served another
  // tenant's module off a crafted collision. Colliding contents coexist in
  // the same bucket.
  struct Entry {
    std::string bytes;
    std::shared_ptr<const wasm::Module> module;
    uint64_t last_used = 0;
  };

  void EvictIfNeededLocked();

  mutable std::mutex mu_;
  size_t capacity_;
  uint64_t tick_ = 0;
  size_t count_ = 0;
  Stats stats_;
  std::unordered_map<uint64_t, std::vector<Entry>> buckets_;

  Telemetry* tel_ = nullptr;
  metrics::Counter* c_hits_ = nullptr;
  metrics::Counter* c_misses_ = nullptr;
};

}  // namespace host

#endif  // SRC_HOST_MODULE_CACHE_H_
