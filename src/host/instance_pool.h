// InstancePool: recycles WaliProcess slots across guest runs.
//
// A "slot" is a WaliProcess whose linear-memory slab (reserved up-front by
// wasm::Memory, base address fixed) survives the guest that ran in it. On
// acquire, an idle slot for the same module is reset — memory zeroed and
// truncated back to the module's declared min pages, signal table / mmap /
// trace / exit state cleared — and re-instantiated, which skips the
// reservation and decode work of a cold start. Slots are keyed by module
// identity; the pool keeps at most `max_idle_per_module` idle slots per
// module and destroys the rest on release.
#ifndef SRC_HOST_INSTANCE_POOL_H_
#define SRC_HOST_INSTANCE_POOL_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/wali/process.h"
#include "src/wali/runtime.h"

namespace metrics {
class Counter;
}  // namespace metrics

namespace host {

class Telemetry;

class InstancePool {
 public:
  struct Options {
    size_t max_idle_per_module = 8;
    // Cap on idle slots across ALL modules. Idle slots pin their module
    // (and its reserved memory slab) even after a ModuleCache eviction makes
    // the key unreachable, so the total must be bounded: beyond it the
    // least-recently-returned idle slot anywhere is destroyed.
    size_t max_idle_total = 64;
  };

  struct Stats {
    uint64_t hits = 0;       // acquires served by recycling an idle slot
    uint64_t misses = 0;     // acquires that built a cold process
    uint64_t resets = 0;     // successful slot resets (== recycles)
    uint64_t drops = 0;      // slots destroyed because the idle list was full
    uint64_t high_water = 0; // max simultaneously leased slots
    // Max linear-memory pages any returned slot had committed during its
    // lease (wasm::Memory::high_water_pages at Return). Sizes the slab a
    // recycled reservation must absorb; also the pool-level view of the
    // per-run mem_high_water_pages the supervisor charges per tenant.
    uint64_t mem_high_water_pages = 0;
    size_t idle = 0;         // currently idle slots across all modules
  };

  // RAII lease on a pooled process; returns the slot to the pool on
  // destruction (after joining any guest threads). Movable, not copyable.
  class Lease {
   public:
    Lease() = default;
    Lease(Lease&& other) noexcept { *this = std::move(other); }
    Lease& operator=(Lease&& other) noexcept;
    ~Lease() { Release(); }

    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;

    wali::WaliProcess* process() const { return proc_.get(); }
    wali::WaliProcess* operator->() const { return proc_.get(); }
    wali::WaliProcess& operator*() const { return *proc_; }
    explicit operator bool() const { return proc_ != nullptr; }
    // True when this acquire recycled an idle slot instead of a cold build.
    bool recycled() const { return recycled_; }

    // Returns the slot to the pool immediately.
    void Release();

   private:
    friend class InstancePool;
    Lease(InstancePool* pool, std::unique_ptr<wali::WaliProcess> proc,
          bool recycled)
        : pool_(pool), proc_(std::move(proc)), recycled_(recycled) {}

    InstancePool* pool_ = nullptr;
    std::unique_ptr<wali::WaliProcess> proc_;
    bool recycled_ = false;
  };

  explicit InstancePool(wali::WaliRuntime* runtime);
  InstancePool(wali::WaliRuntime* runtime, const Options& options);

  // Leases a ready-to-run process for `module`: a reset idle slot when one
  // exists, a freshly created process otherwise. Thread-safe.
  common::StatusOr<Lease> Acquire(std::shared_ptr<const wasm::Module> module,
                                  std::vector<std::string> argv,
                                  std::vector<std::string> env);

  wali::WaliRuntime* runtime() const { return runtime_; }
  Stats stats() const;

  // Mirrors Acquire hit/miss/recycle into `tel`'s registry
  // (instance_pool_*_total counters). Null detaches. Call before the pool
  // is shared; the supervisor wires it at startup.
  void SetTelemetry(Telemetry* tel);

 private:
  void Return(std::unique_ptr<wali::WaliProcess> proc);

  struct IdleSlot {
    std::unique_ptr<wali::WaliProcess> proc;
    uint64_t stamp = 0;  // return order, for global LRU trimming
  };

  void TrimIdleLocked();

  wali::WaliRuntime* runtime_;
  Options options_;
  mutable std::mutex mu_;
  // Idle slots keyed by the module they last ran (slab geometry matches).
  std::map<const wasm::Module*, std::vector<IdleSlot>> idle_;
  Stats stats_;
  uint64_t leased_ = 0;
  uint64_t idle_count_ = 0;
  uint64_t idle_stamp_ = 0;

  metrics::Counter* c_hits_ = nullptr;
  metrics::Counter* c_misses_ = nullptr;
  metrics::Counter* c_recycles_ = nullptr;
};

}  // namespace host

#endif  // SRC_HOST_INSTANCE_POOL_H_
