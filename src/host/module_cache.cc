#include "src/host/module_cache.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>

#include "src/host/telemetry.h"
#include "src/wasm/decode.h"
#include "src/wasm/validate.h"
#include "src/wasm/wat_parser.h"

namespace host {

namespace {

bool LooksLikeBinary(const std::string& bytes) {
  return bytes.size() >= 4 && bytes[0] == '\0' && bytes[1] == 'a' &&
         bytes[2] == 's' && bytes[3] == 'm';
}

}  // namespace

ModuleCache::ModuleCache(size_t capacity) : capacity_(capacity > 0 ? capacity : 1) {}

void ModuleCache::SetTelemetry(Telemetry* tel) {
  tel_ = tel;
  if (tel == nullptr) {
    c_hits_ = c_misses_ = nullptr;
    return;
  }
  metrics::Registry& reg = tel->registry();
  c_hits_ = reg.GetCounter("module_cache_hits_total");
  c_misses_ = reg.GetCounter("module_cache_misses_total");
}

uint64_t ModuleCache::ContentHash(const void* data, size_t len) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint64_t h = 1469598103934665603ULL;  // FNV offset basis
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;  // FNV prime
  }
  // Fold the length in so a truncation colliding on the rolling hash still
  // produces a distinct key.
  h ^= static_cast<uint64_t>(len) * 1099511628211ULL;
  return h;
}

common::StatusOr<std::shared_ptr<const wasm::Module>> ModuleCache::Load(
    const std::string& bytes) {
  const uint64_t key = ContentHash(bytes.data(), bytes.size());
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = buckets_.find(key);
    if (it != buckets_.end()) {
      for (Entry& e : it->second) {
        if (e.bytes == bytes) {
          ++stats_.hits;
          if (c_hits_ != nullptr) c_hits_->Inc();
          e.last_used = ++tick_;
          return e.module;
        }
      }
    }
  }
  // Decode + validate outside the lock: concurrent misses on distinct
  // modules must not serialize on a single decode.
  common::StatusOr<std::shared_ptr<wasm::Module>> parsed =
      LooksLikeBinary(bytes)
          ? wasm::DecodeModule(reinterpret_cast<const uint8_t*>(bytes.data()),
                               bytes.size())
          : wasm::ParseWat(bytes);
  if (!parsed.ok()) {
    return parsed.status();
  }
  RETURN_IF_ERROR(wasm::Validate(**parsed));
  std::shared_ptr<const wasm::Module> module = std::move(parsed).value();

  {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<Entry>& bucket = buckets_[key];
    for (Entry& e : bucket) {
      if (e.bytes == bytes) {
        // Another thread decoded the same content while we did; keep its copy
        // so the pool's per-module slot keying stays stable.
        ++stats_.hits;
        if (c_hits_ != nullptr) c_hits_->Inc();
        e.last_used = ++tick_;
        return e.module;
      }
    }
    ++stats_.misses;
    if (c_misses_ != nullptr) c_misses_->Inc();
    bucket.push_back(Entry{bytes, module, ++tick_});
    ++count_;
    EvictIfNeededLocked();
  }
  if (tel_ != nullptr) {
    // Fold the prepare pass's fusion statistics into process-wide counters
    // (one fold per decode, so repeated Loads of a cached module do not
    // double-count) and register the module for hot-function export.
    metrics::Registry& reg = tel_->registry();
    const wasm::PrepareStats& ps = module->prepare_stats;
    for (uint32_t i = 0; i < wasm::kNumInternalOps; ++i) {
      if (ps.per_op[i] == 0) {
        continue;
      }
      wasm::Op op = static_cast<wasm::Op>(wasm::kFirstInternalOp + i);
      reg.GetCounter(std::string("wasm_superinstructions_emitted_total{op=\"") +
                     wasm::OpName(op) + "\"}")
          ->Add(ps.per_op[i]);
    }
    reg.GetCounter("wasm_direct_call_rewrites_total")->Add(ps.direct_calls);
    char hash_name[32];
    std::snprintf(hash_name, sizeof(hash_name), "mod-%016llx",
                  static_cast<unsigned long long>(key));
    tel_->RegisterModule(!module->name.empty() ? module->name : hash_name,
                         std::weak_ptr<const wasm::Module>(module));
  }
  return module;
}

common::StatusOr<std::shared_ptr<const wasm::Module>> ModuleCache::LoadFile(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return common::NotFound("cannot read module file: " + path);
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  return Load(ss.str());
}

void ModuleCache::EvictIfNeededLocked() {
  while (count_ > capacity_) {
    auto victim_bucket = buckets_.end();
    size_t victim_index = 0;
    uint64_t oldest = ~0ULL;
    for (auto it = buckets_.begin(); it != buckets_.end(); ++it) {
      for (size_t i = 0; i < it->second.size(); ++i) {
        if (it->second[i].last_used < oldest) {
          oldest = it->second[i].last_used;
          victim_bucket = it;
          victim_index = i;
        }
      }
    }
    if (victim_bucket == buckets_.end()) {
      return;
    }
    victim_bucket->second.erase(victim_bucket->second.begin() + victim_index);
    if (victim_bucket->second.empty()) {
      buckets_.erase(victim_bucket);
    }
    --count_;
    ++stats_.evictions;
  }
}

ModuleCache::Stats ModuleCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s = stats_;
  s.entries = count_;
  return s;
}

}  // namespace host
