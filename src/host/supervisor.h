// Supervisor: concurrent multi-tenant WALI hosting on a worker-thread pool,
// behind an admission-controlled, per-tenant fair queue.
//
// Submit enqueues a GuestJob on its tenant's bounded queue (beyond
// Options::queue_depth pending jobs the submit is rejected immediately with
// Outcome::kRejected). Workers pull jobs in weighted-round-robin order
// across tenants: each tenant gets `weight` consecutive slots per ring
// rotation, so under saturation a weight-2 tenant completes twice the runs
// of a weight-1 tenant and no tenant exceeds its share by more than one
// burst. A job whose deadline passes while still queued is shed at pop time
// (Outcome::kShed, zero guest execution).
//
// Each admitted job runs in its own WaliProcess (leased from an
// InstancePool, so warm submissions recycle linear-memory slabs) with a
// per-tenant SyscallPolicy and per-run fuel / frame limits. Every run is
// charged to the TenantLedger (fuel, thread-CPU, syscalls, memory
// high-water); tenants with a TenantBudget are refused once a cumulative
// limit is reached, and a run in progress is stopped at the next safepoint
// when its tenant's remaining fuel or CPU slice runs dry
// (Outcome::kBudget). The outcome of every run is collected into a
// RunReport: exit code or trap, resource consumption, syscall counts from
// the process's SyscallTrace, and wall / WALI / kernel time.
//
// Position in the stack (docs/ARCHITECTURE.md): guest module -> WALI/WASI
// syscall layer -> host supervisor. Every future scaling layer (sharding,
// async syscall batching) drives this interface.
#ifndef SRC_HOST_SUPERVISOR_H_
#define SRC_HOST_SUPERVISOR_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/host/instance_pool.h"
#include "src/host/io_reactor.h"
#include "src/host/telemetry.h"
#include "src/host/tenant_ledger.h"
#include "src/wali/policy.h"
#include "src/wasm/instance.h"

namespace host {

// One tenant request: which module to run, with what identity and limits.
struct GuestJob {
  std::shared_ptr<const wasm::Module> module;
  std::vector<std::string> argv;
  std::vector<std::string> env;
  // Optional per-tenant syscall policy, consulted before every dispatch.
  std::shared_ptr<wali::SyscallPolicy> policy;
  uint64_t fuel = 0;        // instruction budget; 0 = runtime default
  uint32_t max_frames = 0;  // call-depth cap; 0 = runtime default

  // Admission control. Jobs with the same tenant id share one bounded
  // queue, one scheduler weight, and one ledger account ("" is a valid
  // tenant). weight > 0 updates the tenant's weight; 0 keeps the current
  // one (tenants start at weight 1, and a tenant's weight lasts only while
  // it has queued work — an idle tenant's scheduler state is dropped, so
  // persistent weights must be re-supplied on submit). A nonzero deadline
  // (absolute, on the supervisor's clock) sheds the job if it is still
  // queued at that time.
  std::string tenant;
  uint32_t weight = 0;
  int64_t deadline_nanos = 0;
};

// Outcome (how a submitted job left the supervisor) and OutcomeName live in
// telemetry.h now — the span/series layer is keyed by them — and are
// re-exported here via the include above.

// Everything the host layer knows about one finished guest run.
struct RunReport {
  Outcome outcome = Outcome::kCompleted;
  std::string tenant;
  wasm::TrapKind trap = wasm::TrapKind::kNone;
  std::string trap_message;
  int32_t exit_code = 0;
  uint64_t executed_instrs = 0;
  // Resource consumption, as charged to the TenantLedger.
  uint64_t fuel_consumed = 0;          // == executed_instrs, ledger units
  uint64_t mem_high_water_pages = 0;   // linear-memory peak during the run
  int64_t cpu_nanos = 0;               // worker thread-CPU time (on-worker
                                       // segments only; parked time is free)
  uint64_t total_syscalls = 0;
  // (syscall name, count) for every syscall the guest issued.
  std::vector<std::pair<std::string, uint64_t>> syscall_counts;
  int64_t wall_nanos = 0;    // on-worker wall time (excludes parked time)
  int64_t wali_nanos = 0;    // time inside WALI handlers (exclusive)
  int64_t kernel_nanos = 0;  // time inside the kernel
  int64_t queue_nanos = 0;   // submit -> FIRST dispatch (or shed) latency;
                             // never includes parked/blocked time
  // Time spent parked off-worker in blocking syscalls (park -> resume
  // dispatch, summed over parks, on the supervisor's clock). A sleeping or
  // I/O-bound guest accrues blocked_nanos without holding a worker, so it
  // inflates neither queue_nanos nor cpu_nanos.
  int64_t blocked_nanos = 0;
  // The re-dispatch wait: I/O completion -> a worker picking the run back
  // up, summed over parks. A SUBSET of blocked_nanos — large values mean
  // completions are ready but workers are saturated, which is a scheduling
  // problem, not an I/O one.
  int64_t resume_queue_nanos = 0;
  // How many times the run parked at a syscall boundary (async offload).
  uint64_t parks = 0;
  // Global dispatch order (1-based); 0 for jobs that were never dispatched
  // to a worker (kRejected and kShed).
  uint64_t dispatch_seq = 0;
  bool pooled = false;  // served from a recycled slot

  // The run reached a normal end: fell off main or exited with any code.
  bool completed() const {
    return outcome == Outcome::kCompleted &&
           (trap == wasm::TrapKind::kNone || trap == wasm::TrapKind::kExit);
  }
};

class Supervisor {
 public:
  struct Options {
    size_t workers = 4;  // concurrent guests
    // Max pending jobs per tenant; submits beyond it fail immediately with
    // Outcome::kRejected. 0 = unbounded (no admission control).
    size_t queue_depth = 0;
    // Workers do not pick up jobs until Resume() is called. Lets tests (and
    // batch planners) build up a queue and observe pure scheduling order.
    bool start_paused = false;
    // Scheduler clock used for enqueue stamps and deadline shedding;
    // defaults to common::MonotonicNanos. Tests inject a manual clock here
    // to make shedding deterministic. Mid-run CPU budget enforcement always
    // uses the real monotonic clock.
    std::function<int64_t()> clock;
    // Interpreter dispatch for guest runs. kAuto inherits the runtime's
    // setting; kSwitch/kThreaded force a loop for A/B comparisons
    // (fuel accounting is bit-identical either way, so RunReports and
    // TenantLedger math do not depend on this knob).
    wasm::DispatchMode dispatch = wasm::DispatchMode::kAuto;
    // Baseline-JIT tier for guest runs. kAuto inherits the runtime's
    // setting; kOff/kOn force it per supervisor (like `dispatch`, a pure
    // performance knob: fuel/ledger math is bit-identical either way).
    wasm::JitTier jit = wasm::JitTier::kAuto;
    // Async syscall offload. Non-null enables the park-at-the-WALI-boundary
    // path: a guest entering a blocking-capable syscall suspends
    // (kSyscallPending) instead of blocking its worker; the op is
    // registered here and the job is parked off-worker until the backend
    // completes it. Null (default) keeps the fully synchronous 1:1 model.
    // Borrowed; must outlive the supervisor's Shutdown. Suspended/resumed
    // runs are bit-identical to blocking runs in instruction counts, fuel,
    // and syscall results (tests/host_io_test.cc holds the line).
    IoBackend* io_backend = nullptr;
    // Observability sink. Non-null wires the supervisor (and its ledger,
    // pool, and guest runs) into the telemetry subsystem: span events for
    // every job lifecycle stage, process-wide counters/histograms, and
    // interpreter frame-entry profiling. Borrowed; must outlive Shutdown.
    // Ignored (forced null) when the build has HOST_TELEMETRY off.
    Telemetry* telemetry = nullptr;
    // Where EvictParked writes snapshots ("evict-<cookie>.snap"). Empty
    // (default) keeps the serialized blob in memory — the slab is still
    // released, which is most of a parked guest's footprint; a directory
    // moves even the blob out of the process.
    std::string evict_dir;
    InstancePool::Options pool;
  };

  // `runtime` (and its linker) must outlive the supervisor. The runtime's
  // registry is immutable after construction, so workers share it freely.
  Supervisor(wali::WaliRuntime* runtime, const Options& options);
  ~Supervisor();

  Supervisor(const Supervisor&) = delete;
  Supervisor& operator=(const Supervisor&) = delete;

  // Enqueues a job on its tenant's queue; the future resolves when the
  // guest finishes, is shed, or is rejected. Rejection (queue full,
  // supervisor shut down) resolves the future immediately.
  std::future<RunReport> Submit(GuestJob job);

  // Convenience barrier: submits every job and waits for all reports.
  // Reports are returned in SUBMISSION order, regardless of the order in
  // which the scheduler dispatches or completes them (reports[i] always
  // belongs to jobs[i]); RunReport.dispatch_seq carries the scheduler's
  // actual dispatch order for callers who need it.
  std::vector<RunReport> RunAll(std::vector<GuestJob> jobs);

  // Pauses/resumes job pickup. Already-running guests finish; queued jobs
  // (and deadline shedding, which happens at pop time) wait for Resume.
  void Pause();
  void Resume();

  // Drains the queue (Shutdown overrides Pause), then stops the workers.
  // Idempotent; the destructor calls it. Jobs submitted after Shutdown fail
  // with a kRejected / kHostError report.
  void Shutdown();

  const InstancePool& pool() const { return pool_; }
  TenantLedger& ledger() { return ledger_; }
  const TenantLedger& ledger() const { return ledger_; }
  size_t workers() const { return workers_.size(); }
  // Jobs currently queued across all tenants (excludes running guests).
  size_t queued() const;
  // Jobs currently parked off-worker in a blocking syscall.
  size_t parked() const;

  // Async-offload telemetry. in_flight counts dispatched-but-unfinished
  // jobs (running + parked + awaiting resume); with offload active it can
  // exceed the worker count — that headroom is the whole point.
  struct IoStats {
    size_t parked_now = 0;
    size_t ready_now = 0;           // completions awaiting a worker
    uint64_t in_flight_now = 0;
    uint64_t peak_in_flight = 0;
    uint64_t parks_total = 0;
    uint64_t resumes_total = 0;
    // Completions for cookies no longer parked (guest shed / shut down
    // before its I/O finished). Absorbed, never an error.
    uint64_t orphan_completions = 0;
    uint64_t sheds_while_parked = 0;
    uint64_t budget_stops_while_parked = 0;
    // Snapshot/restore lifecycle (EvictParked / the ResumeOne restore).
    size_t evicted_now = 0;
    uint64_t evicts_total = 0;
    uint64_t restores_total = 0;
  };
  IoStats io_stats() const;

  // ---- snapshot eviction (memory pressure on the parked set) ----
  //
  // A parked guest holds a pool lease: its linear-memory slab, instance,
  // and suspended interpreter stack stay resident for the whole blocking
  // syscall. EvictParked serializes that state (wali::SnapshotProcess) and
  // releases the lease; the entry stays in `parked_` under its cookie, so
  // the backend completion path is oblivious — when the op completes, the
  // worker that picks the run up restores it into a freshly leased slot
  // before resuming. Billing is untouched: the park already settled
  // consumed-so-far and released the reservation, so an evict/restore
  // cycle adds zero ledger events.
  //
  // Only pure-data parks are evictable: an op whose resume path captured a
  // live retry closure (reads/writes re-issued on the worker) refuses with
  // Unimplemented, and the guest simply stays resident.

  // Cookies of currently parked runs, oldest first (for pressure policies:
  // evict the longest-parked first).
  std::vector<uint64_t> parked_cookies() const;
  // Evicts one parked run by cookie. NotFound if the cookie is not parked
  // (already completed, restored, or never existed); FailedPrecondition /
  // Unimplemented if the park is not serializable; otherwise the snapshot
  // error. On success the run's lease is released (and the blob written to
  // Options::evict_dir when set).
  common::Status EvictParked(uint64_t cookie);
  // Evicts every eligible parked run; returns how many were evicted.
  size_t EvictAllParked();

  // Drops every trace of a tenant: queued jobs are rejected (their futures
  // resolve with Outcome::kRejected), the scheduler ring entry is removed,
  // and the ledger account — and, through the ledger's retention hook, the
  // tenant's telemetry series and spans — are forgotten. Runs already
  // dispatched or parked are NOT stopped; they finish under their own
  // outcome and re-create a fresh ledger/telemetry row.
  void ForgetTenant(const std::string& tenant);

 private:
  struct Task {
    GuestJob job;
    std::promise<RunReport> done;
    int64_t enqueue_nanos = 0;
    Telemetry::RunHandle trun;  // span handle; invalid when telemetry is off
  };

  // A dispatched run's full in-progress state. Lives on the worker's stack
  // between dispatch and completion for synchronous runs; moves into
  // `parked_` (keyed by backend cookie) while the guest is suspended in a
  // blocking syscall, and back out via `ready_` when the op completes.
  struct RunState {
    GuestJob job;
    std::promise<RunReport> done;
    InstancePool::Lease lease;
    wali::WaliRuntime::MainContinuation cont;
    TenantLedger::RunReservation reserved;
    // Consumption already settled into the ledger by earlier parks of this
    // run. A park RELEASES the reservation (settling consumed-so-far), so
    // a sleeping guest's unused slices go back to the tenant's pool and
    // cannot starve its runnable jobs; resume re-reserves after the Admit
    // re-check. Finish paths charge report totals MINUS this, so nothing
    // is billed twice.
    TenantUsage settled;
    bool fuel_clamped = false;
    RunReport report;  // accumulated across on-worker segments
    // Resume-time syscall closure captured at park (see wali::PendingIo).
    std::function<int64_t()> retry;
    int64_t park_stamp = 0;       // clock_ at park, for blocked_nanos
    // The backend deadline was tightened to the job's deadline, so a
    // kTimedOut completion means "shed the parked guest", not "the
    // syscall's own timeout elapsed".
    bool timeout_is_shed = false;
    Telemetry::RunHandle trun;  // span handle; invalid when telemetry is off
    // Snapshot eviction (EvictParked): when set, the lease has been
    // released and the run lives only as serialized bytes — in
    // `evicted_snapshot`, or on disk at `evicted_path` when the supervisor
    // has an evict_dir. argv/env are stashed for the restore-time lease
    // (RunOne moved the job's copies into the original lease).
    bool evicted = false;
    std::vector<uint8_t> evicted_snapshot;
    std::string evicted_path;
    std::vector<std::string> saved_argv;
    std::vector<std::string> saved_env;
  };

  struct ReadyEntry {
    RunState st;
    IoCompletion completion;
    // clock_ at completion delivery, for RunReport::resume_queue_nanos (how
    // long the ready run waited for a worker).
    int64_t ready_stamp = 0;
  };

  // Per-tenant scheduler state. Entries exist only while the tenant has
  // queued work: PopLocked erases a drained tenant's entry, so an open
  // tenant namespace (hostile or not) cannot grow this map beyond the jobs
  // actually pending. (Cumulative accounting lives in the TenantLedger,
  // which by design does not self-evict — see TenantLedger::Forget.)
  struct TenantQueue {
    std::deque<Task> q;
    uint32_t weight = 1;
    uint32_t credits = 0;  // remaining slots in the current WRR burst
    bool in_ring = false;
  };

  void WorkerLoop();
  // Weighted-round-robin pop. Returns true with `*out` filled when a
  // runnable task was taken; expired-deadline tasks encountered at queue
  // heads are moved to `*shed` (they do not consume scheduling credit).
  bool PopLocked(Task* out, std::vector<Task>* shed);
  bool RunnableLocked() const { return !ring_.empty(); }
  // Dispatches one task: admission, lease, budget arming, first guest
  // segment. Resolves the promise itself unless the run parks.
  void RunOne(Task& task);
  // Continues a parked run whose op completed: materializes the syscall
  // result and runs the next on-worker segment (which may park again).
  void ResumeOne(ReadyEntry entry);
  // Parks a suspended run: captures the pending op, tightens its deadline
  // to the job's, registers it with the backend. Sheds instead when the
  // deadline already passed or the supervisor is shutting down.
  void ParkRun(RunState st);
  // Common completion tail: outcome mapping, trace harvest, ledger settle.
  void FinishRun(RunState st, const wasm::RunResult& r);
  // Abandons a dispatched run mid-park (shed / budget / shutdown): settles
  // partial consumption, discards the suspension, resolves the promise.
  // Handles evicted runs (no lease): the snapshot bytes are simply dropped.
  void FinishAbandoned(RunState st, Outcome outcome, std::string message);
  // Rehydrates an evicted run into a freshly leased slot (called by
  // ResumeOne before the normal resume flow). On failure the run is
  // resolved as kTrapped/kHostError and false is returned.
  bool RestoreParked(RunState& st);
  // Resolves an evicted run that cannot be restored (no lease to settle
  // against; ledger sees only runs += 1, host_errors += 1).
  void FinishEvictedUnrestorable(RunState st, std::string message);
  // Report for a job that never ran (shed / rejected / budget-refused).
  RunReport ControlReport(const GuestJob& job, Outcome outcome,
                          std::string message) const;
  // Closes a run's span (kFinish + per-outcome counter). No-op without
  // telemetry; safe on every terminal path, exactly once per BeginRun.
  void EndRunTel(Telemetry::RunHandle h, Outcome outcome, uint64_t fuel);

  wali::WaliRuntime* runtime_;
  InstancePool pool_;
  TenantLedger ledger_;
  std::function<int64_t()> clock_;
  size_t queue_depth_;
  wasm::DispatchMode dispatch_;
  wasm::JitTier jit_;
  IoBackend* io_;
  std::string evict_dir_;
  std::atomic<uint64_t> dispatch_seq_{0};

  // Telemetry wiring, resolved once at construction (null series handles
  // when tel_ is null; hot paths check tel_ only).
  Telemetry* tel_ = nullptr;
  metrics::Counter* c_submitted_ = nullptr;
  metrics::Counter* c_outcome_[kNumOutcomes] = {nullptr};
  metrics::Gauge* g_queue_depth_ = nullptr;
  metrics::Histogram* h_queue_ = nullptr;
  metrics::Histogram* h_run_wall_ = nullptr;
  metrics::Histogram* h_blocked_ = nullptr;
  metrics::Histogram* h_resume_queue_ = nullptr;
  metrics::Counter* c_evicts_ = nullptr;
  metrics::Counter* c_restores_ = nullptr;
  metrics::Gauge* g_evicted_now_ = nullptr;

  // Async-offload counters (outside mu_: bumped on hot completion paths).
  std::atomic<uint64_t> in_flight_{0};
  std::atomic<uint64_t> peak_in_flight_{0};
  std::atomic<uint64_t> parks_total_{0};
  std::atomic<uint64_t> resumes_total_{0};
  std::atomic<uint64_t> orphan_completions_{0};
  std::atomic<uint64_t> sheds_while_parked_{0};
  std::atomic<uint64_t> budget_stops_while_parked_{0};
  std::atomic<uint64_t> evicts_total_{0};
  std::atomic<uint64_t> restores_total_{0};

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<std::string, TenantQueue> queues_;
  // Tenants with pending work, in rotation order (front = next scheduled).
  std::deque<std::string> ring_;
  // Runs suspended in a blocking syscall, keyed by backend cookie; moved to
  // ready_ by the completion handler and picked up by workers ahead of
  // fresh queue pops (a resumed guest holds a lease and budget slices — it
  // should leave, not wait behind new admissions).
  std::map<uint64_t, RunState> parked_;
  std::deque<ReadyEntry> ready_;
  uint64_t next_cookie_ = 1;
  bool paused_ = false;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace host

#endif  // SRC_HOST_SUPERVISOR_H_
