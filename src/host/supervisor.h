// Supervisor: concurrent multi-tenant WALI hosting on a worker-thread pool.
//
// Each submitted GuestJob runs in its own WaliProcess (leased from an
// InstancePool, so warm submissions recycle linear-memory slabs) with a
// per-tenant SyscallPolicy and per-run fuel / frame limits. The outcome of
// every run is collected into a RunReport: exit code or trap, syscall counts
// from the process's SyscallTrace, and wall / WALI / kernel time.
//
// Position in the stack (docs/ARCHITECTURE.md): guest module -> WALI/WASI
// syscall layer -> host supervisor. Every future scaling layer (sharding,
// async syscall batching, admission control) drives this interface.
#ifndef SRC_HOST_SUPERVISOR_H_
#define SRC_HOST_SUPERVISOR_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/host/instance_pool.h"
#include "src/wali/policy.h"
#include "src/wasm/instance.h"

namespace host {

// One tenant request: which module to run, with what identity and limits.
struct GuestJob {
  std::shared_ptr<const wasm::Module> module;
  std::vector<std::string> argv;
  std::vector<std::string> env;
  // Optional per-tenant syscall policy, consulted before every dispatch.
  std::shared_ptr<wali::SyscallPolicy> policy;
  uint64_t fuel = 0;        // instruction budget; 0 = runtime default
  uint32_t max_frames = 0;  // call-depth cap; 0 = runtime default
};

// Everything the host layer knows about one finished guest run.
struct RunReport {
  wasm::TrapKind trap = wasm::TrapKind::kNone;
  std::string trap_message;
  int32_t exit_code = 0;
  uint64_t executed_instrs = 0;
  uint64_t total_syscalls = 0;
  // (syscall name, count) for every syscall the guest issued.
  std::vector<std::pair<std::string, uint64_t>> syscall_counts;
  int64_t wall_nanos = 0;
  int64_t wali_nanos = 0;    // time inside WALI handlers (exclusive)
  int64_t kernel_nanos = 0;  // time inside the kernel
  bool pooled = false;       // served from a recycled slot

  // The run reached a normal end: fell off main or exited with any code.
  bool completed() const {
    return trap == wasm::TrapKind::kNone || trap == wasm::TrapKind::kExit;
  }
};

class Supervisor {
 public:
  struct Options {
    size_t workers = 4;  // concurrent guests
    InstancePool::Options pool;
  };

  // `runtime` (and its linker) must outlive the supervisor. The runtime's
  // registry is immutable after construction, so workers share it freely.
  Supervisor(wali::WaliRuntime* runtime, const Options& options);
  ~Supervisor();

  Supervisor(const Supervisor&) = delete;
  Supervisor& operator=(const Supervisor&) = delete;

  // Enqueues a job; the future resolves when the guest finishes.
  std::future<RunReport> Submit(GuestJob job);

  // Convenience barrier: submits every job and waits for all reports,
  // returned in submission order.
  std::vector<RunReport> RunAll(std::vector<GuestJob> jobs);

  // Drains the queue, then stops the workers. Idempotent; the destructor
  // calls it. Jobs submitted after Shutdown fail with a kHostError report.
  void Shutdown();

  const InstancePool& pool() const { return pool_; }
  size_t workers() const { return workers_.size(); }

 private:
  struct Task {
    GuestJob job;
    std::promise<RunReport> done;
  };

  void WorkerLoop();
  RunReport RunOne(GuestJob& job);

  wali::WaliRuntime* runtime_;
  InstancePool pool_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Task> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace host

#endif  // SRC_HOST_SUPERVISOR_H_
