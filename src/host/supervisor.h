// Supervisor: concurrent multi-tenant WALI hosting on a worker-thread pool,
// behind an admission-controlled, per-tenant fair queue.
//
// Submit enqueues a GuestJob on its tenant's bounded queue (beyond
// Options::queue_depth pending jobs the submit is rejected immediately with
// Outcome::kRejected). Workers pull jobs in weighted-round-robin order
// across tenants: each tenant gets `weight` consecutive slots per ring
// rotation, so under saturation a weight-2 tenant completes twice the runs
// of a weight-1 tenant and no tenant exceeds its share by more than one
// burst. A job whose deadline passes while still queued is shed at pop time
// (Outcome::kShed, zero guest execution).
//
// Each admitted job runs in its own WaliProcess (leased from an
// InstancePool, so warm submissions recycle linear-memory slabs) with a
// per-tenant SyscallPolicy and per-run fuel / frame limits. Every run is
// charged to the TenantLedger (fuel, thread-CPU, syscalls, memory
// high-water); tenants with a TenantBudget are refused once a cumulative
// limit is reached, and a run in progress is stopped at the next safepoint
// when its tenant's remaining fuel or CPU slice runs dry
// (Outcome::kBudget). The outcome of every run is collected into a
// RunReport: exit code or trap, resource consumption, syscall counts from
// the process's SyscallTrace, and wall / WALI / kernel time.
//
// Position in the stack (docs/ARCHITECTURE.md): guest module -> WALI/WASI
// syscall layer -> host supervisor. Every future scaling layer (sharding,
// async syscall batching) drives this interface.
#ifndef SRC_HOST_SUPERVISOR_H_
#define SRC_HOST_SUPERVISOR_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/host/instance_pool.h"
#include "src/host/tenant_ledger.h"
#include "src/wali/policy.h"
#include "src/wasm/instance.h"

namespace host {

// One tenant request: which module to run, with what identity and limits.
struct GuestJob {
  std::shared_ptr<const wasm::Module> module;
  std::vector<std::string> argv;
  std::vector<std::string> env;
  // Optional per-tenant syscall policy, consulted before every dispatch.
  std::shared_ptr<wali::SyscallPolicy> policy;
  uint64_t fuel = 0;        // instruction budget; 0 = runtime default
  uint32_t max_frames = 0;  // call-depth cap; 0 = runtime default

  // Admission control. Jobs with the same tenant id share one bounded
  // queue, one scheduler weight, and one ledger account ("" is a valid
  // tenant). weight > 0 updates the tenant's weight; 0 keeps the current
  // one (tenants start at weight 1, and a tenant's weight lasts only while
  // it has queued work — an idle tenant's scheduler state is dropped, so
  // persistent weights must be re-supplied on submit). A nonzero deadline
  // (absolute, on the supervisor's clock) sheds the job if it is still
  // queued at that time.
  std::string tenant;
  uint32_t weight = 0;
  int64_t deadline_nanos = 0;
};

// How a submitted job left the supervisor.
enum class Outcome : uint8_t {
  kCompleted = 0,  // ran to a normal end (fell off main or exited)
  kTrapped,        // ran and trapped (or could not be instantiated)
  kShed,           // deadline expired while queued; zero guest execution
  kRejected,       // bounded queue full (or supervisor shut down) at submit
  kBudget,         // tenant budget exhausted, before or during the run
};

const char* OutcomeName(Outcome o);

// Everything the host layer knows about one finished guest run.
struct RunReport {
  Outcome outcome = Outcome::kCompleted;
  std::string tenant;
  wasm::TrapKind trap = wasm::TrapKind::kNone;
  std::string trap_message;
  int32_t exit_code = 0;
  uint64_t executed_instrs = 0;
  // Resource consumption, as charged to the TenantLedger.
  uint64_t fuel_consumed = 0;          // == executed_instrs, ledger units
  uint64_t mem_high_water_pages = 0;   // linear-memory peak during the run
  int64_t cpu_nanos = 0;               // worker thread-CPU time in the run
  uint64_t total_syscalls = 0;
  // (syscall name, count) for every syscall the guest issued.
  std::vector<std::pair<std::string, uint64_t>> syscall_counts;
  int64_t wall_nanos = 0;
  int64_t wali_nanos = 0;    // time inside WALI handlers (exclusive)
  int64_t kernel_nanos = 0;  // time inside the kernel
  int64_t queue_nanos = 0;   // submit -> dispatch (or shed) latency
  // Global dispatch order (1-based); 0 for jobs that were never dispatched
  // to a worker (kRejected and kShed).
  uint64_t dispatch_seq = 0;
  bool pooled = false;  // served from a recycled slot

  // The run reached a normal end: fell off main or exited with any code.
  bool completed() const {
    return outcome == Outcome::kCompleted &&
           (trap == wasm::TrapKind::kNone || trap == wasm::TrapKind::kExit);
  }
};

class Supervisor {
 public:
  struct Options {
    size_t workers = 4;  // concurrent guests
    // Max pending jobs per tenant; submits beyond it fail immediately with
    // Outcome::kRejected. 0 = unbounded (no admission control).
    size_t queue_depth = 0;
    // Workers do not pick up jobs until Resume() is called. Lets tests (and
    // batch planners) build up a queue and observe pure scheduling order.
    bool start_paused = false;
    // Scheduler clock used for enqueue stamps and deadline shedding;
    // defaults to common::MonotonicNanos. Tests inject a manual clock here
    // to make shedding deterministic. Mid-run CPU budget enforcement always
    // uses the real monotonic clock.
    std::function<int64_t()> clock;
    // Interpreter dispatch for guest runs. kAuto inherits the runtime's
    // setting; kSwitch/kThreaded force a loop for A/B comparisons
    // (fuel accounting is bit-identical either way, so RunReports and
    // TenantLedger math do not depend on this knob).
    wasm::DispatchMode dispatch = wasm::DispatchMode::kAuto;
    InstancePool::Options pool;
  };

  // `runtime` (and its linker) must outlive the supervisor. The runtime's
  // registry is immutable after construction, so workers share it freely.
  Supervisor(wali::WaliRuntime* runtime, const Options& options);
  ~Supervisor();

  Supervisor(const Supervisor&) = delete;
  Supervisor& operator=(const Supervisor&) = delete;

  // Enqueues a job on its tenant's queue; the future resolves when the
  // guest finishes, is shed, or is rejected. Rejection (queue full,
  // supervisor shut down) resolves the future immediately.
  std::future<RunReport> Submit(GuestJob job);

  // Convenience barrier: submits every job and waits for all reports.
  // Reports are returned in SUBMISSION order, regardless of the order in
  // which the scheduler dispatches or completes them (reports[i] always
  // belongs to jobs[i]); RunReport.dispatch_seq carries the scheduler's
  // actual dispatch order for callers who need it.
  std::vector<RunReport> RunAll(std::vector<GuestJob> jobs);

  // Pauses/resumes job pickup. Already-running guests finish; queued jobs
  // (and deadline shedding, which happens at pop time) wait for Resume.
  void Pause();
  void Resume();

  // Drains the queue (Shutdown overrides Pause), then stops the workers.
  // Idempotent; the destructor calls it. Jobs submitted after Shutdown fail
  // with a kRejected / kHostError report.
  void Shutdown();

  const InstancePool& pool() const { return pool_; }
  TenantLedger& ledger() { return ledger_; }
  const TenantLedger& ledger() const { return ledger_; }
  size_t workers() const { return workers_.size(); }
  // Jobs currently queued across all tenants (excludes running guests).
  size_t queued() const;

 private:
  struct Task {
    GuestJob job;
    std::promise<RunReport> done;
    int64_t enqueue_nanos = 0;
  };

  // Per-tenant scheduler state. Entries exist only while the tenant has
  // queued work: PopLocked erases a drained tenant's entry, so an open
  // tenant namespace (hostile or not) cannot grow this map beyond the jobs
  // actually pending. (Cumulative accounting lives in the TenantLedger,
  // which by design does not self-evict — see TenantLedger::Forget.)
  struct TenantQueue {
    std::deque<Task> q;
    uint32_t weight = 1;
    uint32_t credits = 0;  // remaining slots in the current WRR burst
    bool in_ring = false;
  };

  void WorkerLoop();
  // Weighted-round-robin pop. Returns true with `*out` filled when a
  // runnable task was taken; expired-deadline tasks encountered at queue
  // heads are moved to `*shed` (they do not consume scheduling credit).
  bool PopLocked(Task* out, std::vector<Task>* shed);
  bool RunnableLocked() const { return !ring_.empty(); }
  RunReport RunOne(Task& task);
  // Report for a job that never ran (shed / rejected / budget-refused).
  RunReport ControlReport(const GuestJob& job, Outcome outcome,
                          std::string message) const;

  wali::WaliRuntime* runtime_;
  InstancePool pool_;
  TenantLedger ledger_;
  std::function<int64_t()> clock_;
  size_t queue_depth_;
  wasm::DispatchMode dispatch_;
  std::atomic<uint64_t> dispatch_seq_{0};

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<std::string, TenantQueue> queues_;
  // Tenants with pending work, in rotation order (front = next scheduled).
  std::deque<std::string> ring_;
  bool paused_ = false;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace host

#endif  // SRC_HOST_SUPERVISOR_H_
