#include "src/host/io_reactor.h"

#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <string>
#include <utility>

#include "src/common/logging.h"
#include "src/common/time_util.h"
#include "src/host/telemetry.h"

namespace host {

void IoBackendMetrics::Wire(Telemetry* tel, const char* backend) {
  if (tel == nullptr) {
    submits = completes = cancels = nullptr;
    in_flight = nullptr;
    return;
  }
  // Labels are embedded in the series name, matching the registry's idiom
  // (cf. supervisor_jobs_total{outcome="completed"}).
  const std::string label = std::string("{io_backend=\"") + backend + "\"}";
  metrics::Registry& reg = tel->registry();
  submits = reg.GetCounter("io_submits_total" + label);
  completes = reg.GetCounter("io_completions_total" + label);
  cancels = reg.GetCounter("io_cancels_total" + label);
  in_flight = reg.GetGauge("io_in_flight" + label);
}

namespace {

// Completions collected under the backend lock, delivered after unlock.
struct Due {
  uint64_t cookie;
  IoCompletion completion;
};

}  // namespace

// ------------------------------------------------------------- IoReactor ---

IoReactor::IoReactor() {
  if (::pipe2(wake_fds_, O_CLOEXEC | O_NONBLOCK) != 0) {
    LOG_ERROR() << "IoReactor: pipe2 failed, reactor disabled";
    wake_fds_[0] = wake_fds_[1] = -1;
    return;
  }
  loop_ = std::thread([this] { Loop(); });
}

IoReactor::~IoReactor() {
  stopping_.store(true, std::memory_order_release);
  Wake();
  if (loop_.joinable()) {
    loop_.join();
  }
  // Anything still pending is dropped silently: the owning supervisor has
  // already failed or resumed its parked jobs by the time it lets go of
  // the backend (Supervisor::Shutdown cancels before returning).
  if (wake_fds_[0] >= 0) ::close(wake_fds_[0]);
  if (wake_fds_[1] >= 0) ::close(wake_fds_[1]);
}

void IoReactor::SetCompletionHandler(CompletionFn fn) {
  std::lock_guard<std::mutex> lock(deliver_mu_);
  complete_ = std::move(fn);
}

void IoReactor::Deliver(uint64_t cookie, const IoCompletion& completion) {
  std::lock_guard<std::mutex> lock(deliver_mu_);
  if (complete_) {
    complete_(cookie, completion);
  }
}

int64_t IoReactor::NowNanos() const { return common::MonotonicNanos(); }

size_t IoReactor::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ops_.size();
}

void IoReactor::Wake() {
  if (wake_fds_[1] >= 0) {
    char b = 0;
    // The pipe is non-blocking; a full pipe already guarantees a pending
    // wake, so a short/failed write is fine.
    (void)!::write(wake_fds_[1], &b, 1);
  }
}

void IoReactor::Submit(uint64_t cookie, const wali::IoOp& op) {
  Op rec;
  rec.op = op;
  const int64_t now = NowNanos();
  if (op.kind == wali::IoOp::Kind::kSleep) {
    rec.deadline_nanos = now + std::max<int64_t>(op.sleep_nanos, 0);
  } else if (op.timeout_nanos >= 0) {
    rec.deadline_nanos = now + op.timeout_nanos;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    ops_[cookie] = rec;
  }
  tm_.OnSubmit();
  Wake();
}

bool IoReactor::Cancel(uint64_t cookie) {
  bool erased;
  {
    std::lock_guard<std::mutex> lock(mu_);
    erased = ops_.erase(cookie) != 0;
  }
  if (erased) {
    tm_.OnCancel();
    Wake();
  }
  return erased;
}

void IoReactor::Loop() {
  std::vector<struct pollfd> pfds;
  std::vector<uint64_t> pfd_cookies;  // parallel to pfds[1..]
  while (!stopping_.load(std::memory_order_acquire)) {
    pfds.clear();
    pfd_cookies.clear();
    struct pollfd wake = {wake_fds_[0], POLLIN, 0};
    pfds.push_back(wake);
    int64_t next_deadline = -1;
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (const auto& [cookie, rec] : ops_) {
        if (rec.op.kind == wali::IoOp::Kind::kReadable ||
            rec.op.kind == wali::IoOp::Kind::kWritable) {
          struct pollfd p;
          p.fd = rec.op.fd;
          p.events =
              rec.op.kind == wali::IoOp::Kind::kReadable ? POLLIN : POLLOUT;
          p.revents = 0;
          pfds.push_back(p);
          pfd_cookies.push_back(cookie);
        } else if (rec.op.kind == wali::IoOp::Kind::kPollSet) {
          // One table entry per interest-set member, all mapped back to the
          // same cookie: the first member with revents completes the op and
          // erases it, so later members of the same set miss the find below.
          for (const wali::IoOp::PollFd& m : rec.op.poll_fds) {
            if (m.fd < 0) {
              continue;  // poll(2): negative fds are ignored
            }
            struct pollfd p;
            p.fd = m.fd;
            p.events = m.events;
            p.revents = 0;
            pfds.push_back(p);
            pfd_cookies.push_back(cookie);
          }
        }
        if (rec.deadline_nanos >= 0 &&
            (next_deadline < 0 || rec.deadline_nanos < next_deadline)) {
          next_deadline = rec.deadline_nanos;
        }
      }
    }
    int timeout_ms = -1;
    if (next_deadline >= 0) {
      int64_t wait = next_deadline - NowNanos();
      // Round up so we never spin a whole extra wakeup below 1ms.
      timeout_ms = wait <= 0 ? 0 : static_cast<int>((wait + 999999) / 1000000);
    }
    int rc = ::poll(pfds.data(), pfds.size(), timeout_ms);
    if (rc < 0 && errno != EINTR) {
      LOG_ERROR() << "IoReactor: poll failed errno=" << errno;
    }
    if (pfds[0].revents != 0) {
      char buf[256];
      while (::read(wake_fds_[0], buf, sizeof(buf)) > 0) {
      }
    }
    std::vector<Due> due;
    const int64_t now = NowNanos();
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (size_t i = 1; i < pfds.size(); ++i) {
        if (pfds[i].revents == 0) {
          continue;
        }
        // POLLERR/POLLHUP/POLLNVAL also complete: the retry re-issues the
        // syscall and the kernel reports the truth (EOF, EPIPE, EBADF).
        auto it = ops_.find(pfd_cookies[i - 1]);
        if (it != ops_.end()) {
          due.push_back({it->first, IoCompletion::Ready()});
          ops_.erase(it);
        }
      }
      for (auto it = ops_.begin(); it != ops_.end();) {
        if (it->second.deadline_nanos >= 0 && now >= it->second.deadline_nanos) {
          due.push_back({it->first, IoCompletion::TimedOut()});
          it = ops_.erase(it);
        } else {
          ++it;
        }
      }
    }
    for (const Due& d : due) {
      tm_.OnComplete();
      Deliver(d.cookie, d.completion);
    }
  }
}

// --------------------------------------------------------- FakeIoBackend ---

void FakeIoBackend::SetCompletionHandler(CompletionFn fn) {
  std::lock_guard<std::mutex> lock(deliver_mu_);
  complete_ = std::move(fn);
}

void FakeIoBackend::Deliver(uint64_t cookie, const IoCompletion& completion) {
  std::lock_guard<std::mutex> lock(deliver_mu_);
  if (complete_) {
    complete_(cookie, completion);
  }
}

int64_t FakeIoBackend::NowNanos() const {
  std::lock_guard<std::mutex> lock(mu_);
  return now_nanos_;
}

size_t FakeIoBackend::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return ops_.size();
}

void FakeIoBackend::Submit(uint64_t cookie, const wali::IoOp& op) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    Op rec;
    rec.op = op;
    rec.seq = seq_++;
    if (op.kind == wali::IoOp::Kind::kSleep) {
      rec.deadline_nanos = now_nanos_ + std::max<int64_t>(op.sleep_nanos, 0);
    } else if (op.timeout_nanos >= 0) {
      rec.deadline_nanos = now_nanos_ + op.timeout_nanos;
    }
    ops_[cookie] = rec;
  }
  tm_.OnSubmit();
}

bool FakeIoBackend::Cancel(uint64_t cookie) {
  bool erased;
  {
    std::lock_guard<std::mutex> lock(mu_);
    erased = ops_.erase(cookie) != 0;
  }
  if (erased) {
    tm_.OnCancel();
  }
  return erased;
}

void FakeIoBackend::AdvanceTo(int64_t now_nanos) {
  struct Expired {
    int64_t deadline;
    uint64_t seq;
    uint64_t cookie;
  };
  std::vector<Expired> due;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (now_nanos > now_nanos_) {
      now_nanos_ = now_nanos;
    }
    for (auto it = ops_.begin(); it != ops_.end();) {
      if (it->second.deadline_nanos >= 0 &&
          now_nanos_ >= it->second.deadline_nanos) {
        due.push_back({it->second.deadline_nanos, it->second.seq, it->first});
        it = ops_.erase(it);
      } else {
        ++it;
      }
    }
  }
  // Deterministic delivery: everything that became due fires in
  // (deadline, submission) order, synchronously, on this thread.
  std::sort(due.begin(), due.end(), [](const Expired& a, const Expired& b) {
    return a.deadline != b.deadline ? a.deadline < b.deadline : a.seq < b.seq;
  });
  for (const Expired& d : due) {
    tm_.OnComplete();
    Deliver(d.cookie, IoCompletion::TimedOut());
  }
}

bool FakeIoBackend::Complete(uint64_t cookie, const IoCompletion& completion) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (ops_.erase(cookie) == 0) {
      return false;
    }
  }
  tm_.OnComplete();
  Deliver(cookie, completion);
  return true;
}

void FakeIoBackend::ForceComplete(uint64_t cookie, const IoCompletion& completion) {
  bool erased;
  {
    std::lock_guard<std::mutex> lock(mu_);
    erased = ops_.erase(cookie) != 0;
  }
  if (erased) {
    // An untracked cookie (the usual fault-injection case) must not skew
    // the in-flight gauge below zero.
    tm_.OnComplete();
  }
  Deliver(cookie, completion);
}

std::vector<uint64_t> FakeIoBackend::PendingCookies() const {
  std::vector<std::pair<uint64_t, uint64_t>> order;  // (seq, cookie)
  {
    std::lock_guard<std::mutex> lock(mu_);
    order.reserve(ops_.size());
    for (const auto& [cookie, rec] : ops_) {
      order.emplace_back(rec.seq, cookie);
    }
  }
  std::sort(order.begin(), order.end());
  std::vector<uint64_t> out;
  out.reserve(order.size());
  for (const auto& [seq, cookie] : order) {
    out.push_back(cookie);
  }
  return out;
}

bool FakeIoBackend::LookupOp(uint64_t cookie, wali::IoOp* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = ops_.find(cookie);
  if (it == ops_.end()) {
    return false;
  }
  *out = it->second.op;
  return true;
}

}  // namespace host
