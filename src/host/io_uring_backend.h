// IoUringBackend: the io_uring production backend behind the IoBackend seam.
//
// Where IoReactor rebuilds a full poll(2) table on every wakeup, this
// backend registers each parked op with the kernel once — POLL_ADD for fd
// readiness (with IORING_OP_LINK_TIMEOUT linked for per-op timeouts),
// IORING_OP_TIMEOUT for sleeps and poll-set deadlines — and then blocks in
// a single io_uring_enter per wakeup that both submits the batch of SQEs
// coalesced since the last wakeup and waits for the next CQE. Cancellation
// goes through IORING_OP_ASYNC_CANCEL / IORING_OP_TIMEOUT_REMOVE with the
// seam's existing semantics: Cancel returns false exactly when the
// completion was already delivered and the caller must absorb the orphan.
//
// Build gating: the HOST_IO_URING CMake option (default ON where
// <linux/io_uring.h> exists) compiles the ring code in. Without it — or on
// kernels that reject io_uring_setup(2) at runtime — the class still
// constructs and honors the full IoBackend contract, answering every
// submit asynchronously with kError(-ENOSYS) so callers can probe with
// IoUringAvailable() and fall back to IoReactor.
#ifndef SRC_HOST_IO_URING_BACKEND_H_
#define SRC_HOST_IO_URING_BACKEND_H_

#include <cstdint>
#include <memory>

#include "src/host/io_reactor.h"

namespace host {

// True when the ring code is compiled in AND the running kernel accepts
// io_uring_setup(2). The kernel probe runs once and is cached.
bool IoUringAvailable();

class IoUringBackend : public IoBackend {
 public:
  IoUringBackend();
  ~IoUringBackend() override;  // cancels nothing: owner drains first

  IoUringBackend(const IoUringBackend&) = delete;
  IoUringBackend& operator=(const IoUringBackend&) = delete;

  void SetCompletionHandler(CompletionFn fn) override;
  void Submit(uint64_t cookie, const wali::IoOp& op) override;
  bool Cancel(uint64_t cookie) override;
  int64_t NowNanos() const override;
  size_t pending() const override;

  // Same contract as IoReactor::SetTelemetry; series carry
  // io_backend="io_uring".
  void SetTelemetry(Telemetry* tel);

  // False when this instance is running the -ENOSYS fallback (no ring).
  bool ring_ok() const;

  // Submission batching counters: sqes/enters is the coalescing ratio the
  // bench reports (poll(2) has no equivalent — it rebuilds per wakeup).
  struct Stats {
    uint64_t enters = 0;  // io_uring_enter calls that submitted SQEs
    uint64_t sqes = 0;    // SQEs submitted through them
  };
  Stats stats() const;

 private:
  struct Impl;  // keeps <linux/io_uring.h> types out of this header
  std::unique_ptr<Impl> impl_;
};

}  // namespace host

#endif  // SRC_HOST_IO_URING_BACKEND_H_
