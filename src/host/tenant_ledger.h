// TenantLedger: cgroup-style cumulative resource accounting per tenant.
//
// A RunReport describes one run and is forgotten when the caller drops it;
// the ledger is what survives — every run the supervisor executes for a
// tenant is charged here (fuel consumed, thread-CPU time, syscalls, memory
// high-water pages), across pool recycles and module changes. Each tenant
// can carry a TenantBudget; Admit() is consulted before a run starts, and
// the remaining fuel / CPU slices are what the supervisor arms on the
// WaliProcess so the budget also stops a run midway, at the same safepoints
// as fuel (ROADMAP: "enforced at safepoints like fuel").
#ifndef SRC_HOST_TENANT_LEDGER_H_
#define SRC_HOST_TENANT_LEDGER_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace metrics {
class Counter;
}  // namespace metrics

namespace host {

class Telemetry;

// Cumulative limits for one tenant; 0 means unlimited for that dimension.
struct TenantBudget {
  uint64_t max_fuel = 0;      // instructions, summed across runs
  int64_t max_cpu_nanos = 0;  // worker thread-CPU time, summed across runs
  uint64_t max_syscalls = 0;  // WALI dispatches, summed across runs
  uint64_t max_mem_pages = 0; // per-run linear-memory high-water cap

  bool Unlimited() const {
    return max_fuel == 0 && max_cpu_nanos == 0 && max_syscalls == 0 &&
           max_mem_pages == 0;
  }
};

// What a tenant has consumed so far. Counter fields accumulate across runs;
// mem_high_water_pages is the max over runs (a level, not a volume).
struct TenantUsage {
  uint64_t runs = 0;
  uint64_t fuel = 0;
  int64_t cpu_nanos = 0;
  uint64_t syscalls = 0;
  uint64_t mem_high_water_pages = 0;
  // Admission-control outcomes, for operators: how often this tenant's work
  // was shed in queue, rejected at submit, stopped by a budget, or failed
  // before the guest started (instantiation / pool errors).
  uint64_t shed = 0;
  uint64_t rejected = 0;
  uint64_t budget_stops = 0;
  uint64_t host_errors = 0;
};

class TenantLedger {
 public:
  // Which budget dimension blocks a tenant from running, if any.
  enum class Verdict : uint8_t { kAdmit = 0, kFuel, kCpu, kSyscalls };

  static const char* VerdictName(Verdict v);

  // Wires budget-denial counters (`ledger_denials_total{resource=...}`)
  // into `tel`'s registry and makes Forget also drop the tenant's telemetry
  // series/spans. Null detaches. Not thread-safe against concurrent Admit;
  // call before the ledger is shared (the supervisor does it at startup).
  void SetTelemetry(Telemetry* tel);

  // Replaces the tenant's budget. Usage already accrued is kept: a tenant
  // over a newly lowered budget is simply no longer admitted.
  void SetBudget(const std::string& tenant, const TenantBudget& budget);
  TenantBudget budget(const std::string& tenant) const;

  // Adds `delta` to the tenant's usage: counters are summed,
  // mem_high_water_pages is max-merged. Thread-safe; concurrent charges
  // from any number of workers are lossless.
  void Charge(const std::string& tenant, const TenantUsage& delta);

  TenantUsage usage(const std::string& tenant) const;

  // Pre-run admission check against the cumulative budget. kAdmit when the
  // tenant still has headroom in every limited dimension.
  Verdict Admit(const std::string& tenant) const;

  // Read-only introspection: budget minus consumed usage minus slices
  // currently held by in-flight reservations. Zero when that dimension is
  // unlimited; an exhausted dimension reports 1 unit, never 0 (0 means "no
  // cap" to callers). These do NOT reserve anything — arming mid-run
  // enforcement must go through ReserveSlices, or concurrent runs would
  // each be armed with the full remainder and overshoot the budget N-fold.
  uint64_t RemainingFuel(const std::string& tenant) const;
  int64_t RemainingCpuNanos(const std::string& tenant) const;
  uint64_t RemainingSyscalls(const std::string& tenant) const;

  // What one run was granted of each budgeted dimension (0 = unlimited).
  struct RunReservation {
    uint64_t fuel = 0;
    int64_t cpu_nanos = 0;
    uint64_t syscalls = 0;
  };

  // Atomically takes budget slices for one run out of the UNRESERVED
  // remainder (budget minus consumed minus other runs' live reservations).
  // This is what keeps a cumulative budget hard under the supervisor's own
  // concurrency: N concurrent runs split the remainder instead of each
  // being armed with the full amount and overshooting N-fold. Reservations
  // are tracked separately from usage, so Admit() and usage() see only
  // real consumption while a run is in flight.
  //
  // `fuel_demand` bounds the fuel slice (a run with a per-run fuel cap can
  // never need more), which is what lets several budgeted runs of one
  // tenant proceed in parallel; 0 = demand unknown, take the whole
  // unreserved remainder. A dimension with nothing left unreserved grants
  // a 1-unit slice — the run is dispatched but stops almost immediately
  // with kBudget. Every reservation must be settled exactly once.
  RunReservation ReserveSlices(const std::string& tenant,
                               uint64_t fuel_demand = 0);

  // Releases `reserved` and charges what the run actually consumed (only
  // the fuel / cpu_nanos / syscalls fields of `actual` are read).
  // Unlimited dimensions (reserved 0) are charged by `actual` as-is, so
  // callers use this for every run, budgeted or not.
  void SettleSlices(const std::string& tenant, const RunReservation& reserved,
                    const TenantUsage& actual);

  // Clears accrued usage (e.g. a billing-period rollover); budgets persist.
  void ResetUsage(const std::string& tenant);

  // Drops the tenant entirely (usage AND budget). The ledger never evicts
  // on its own — cumulative accounting must not silently forget — so a
  // host serving an open-ended tenant namespace (tenant ids derived from
  // request identity) must apply its own retention policy through this.
  void Forget(const std::string& tenant);

  // Snapshot of every tenant with usage or a budget, sorted by tenant id.
  std::vector<std::pair<std::string, TenantUsage>> Snapshot() const;

 private:
  struct Entry {
    TenantBudget budget;
    TenantUsage usage;       // consumed only; never includes reservations
    RunReservation reserved; // slices held by in-flight runs, aggregated
  };

  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;

  Telemetry* tel_ = nullptr;
  // Denial counters indexed by Verdict (kAdmit's slot stays unused/null).
  metrics::Counter* c_denied_[4] = {nullptr};
};

}  // namespace host

#endif  // SRC_HOST_TENANT_LEDGER_H_
