#include "src/host/supervisor.h"

#include "src/common/time_util.h"
#include "src/wali/trace.h"

namespace host {

Supervisor::Supervisor(wali::WaliRuntime* runtime, const Options& options)
    : runtime_(runtime), pool_(runtime, options.pool) {
  size_t n = options.workers > 0 ? options.workers : 1;
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

Supervisor::~Supervisor() { Shutdown(); }

std::future<RunReport> Supervisor::Submit(GuestJob job) {
  Task task;
  task.job = std::move(job);
  std::future<RunReport> fut = task.done.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      RunReport r;
      r.trap = wasm::TrapKind::kHostError;
      r.trap_message = "supervisor is shut down";
      task.done.set_value(std::move(r));
      return fut;
    }
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
  return fut;
}

std::vector<RunReport> Supervisor::RunAll(std::vector<GuestJob> jobs) {
  std::vector<std::future<RunReport>> futures;
  futures.reserve(jobs.size());
  for (GuestJob& job : jobs) {
    futures.push_back(Submit(std::move(job)));
  }
  std::vector<RunReport> reports;
  reports.reserve(futures.size());
  for (std::future<RunReport>& f : futures) {
    reports.push_back(f.get());
  }
  return reports;
}

void Supervisor::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      // Already requested; fall through to join whatever is left.
    }
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) {
    if (w.joinable()) {
      w.join();
    }
  }
}

void Supervisor::WorkerLoop() {
  while (true) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stopping and drained
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task.done.set_value(RunOne(task.job));
  }
}

RunReport Supervisor::RunOne(GuestJob& job) {
  RunReport report;
  common::StatusOr<InstancePool::Lease> lease =
      pool_.Acquire(job.module, std::move(job.argv), std::move(job.env));
  if (!lease.ok()) {
    report.trap = wasm::TrapKind::kHostError;
    report.trap_message = lease.status().ToString();
    return report;
  }
  wali::WaliProcess& proc = **lease;
  report.pooled = lease->recycled();
  proc.policy = job.policy;

  wasm::ExecOptions opts = runtime_->exec_options();
  if (job.fuel != 0) {
    opts.fuel = job.fuel;
  }
  if (job.max_frames != 0) {
    opts.max_frames = job.max_frames;
  }

  int64_t t0 = common::MonotonicNanos();
  wasm::RunResult r = runtime_->RunMain(proc, opts);
  report.wall_nanos = common::MonotonicNanos() - t0;

  report.trap = r.trap;
  report.trap_message = r.trap_message;
  report.executed_instrs = r.executed_instrs;
  if (r.trap == wasm::TrapKind::kExit) {
    report.exit_code = r.exit_code;
  } else if (r.ok() && !r.values.empty()) {
    report.exit_code = static_cast<int32_t>(r.values[0].i32());
  }

  const std::vector<wali::SyscallDef>& defs = runtime_->syscalls();
  for (size_t id = 0; id < defs.size(); ++id) {
    uint64_t n = proc.trace.count(static_cast<uint32_t>(id));
    if (n > 0) {
      report.syscall_counts.emplace_back(defs[id].name, n);
      report.total_syscalls += n;
    }
  }
  report.wali_nanos = proc.trace.wali_nanos();
  report.kernel_nanos = proc.trace.kernel_nanos();
  return report;
}

}  // namespace host
