#include "src/host/supervisor.h"

#include "src/common/time_util.h"
#include "src/wali/trace.h"

namespace host {

const char* OutcomeName(Outcome o) {
  switch (o) {
    case Outcome::kCompleted: return "completed";
    case Outcome::kTrapped: return "trapped";
    case Outcome::kShed: return "shed";
    case Outcome::kRejected: return "rejected";
    case Outcome::kBudget: return "budget";
  }
  return "<bad>";
}

Supervisor::Supervisor(wali::WaliRuntime* runtime, const Options& options)
    : runtime_(runtime),
      pool_(runtime, options.pool),
      clock_(options.clock ? options.clock : [] { return common::MonotonicNanos(); }),
      queue_depth_(options.queue_depth),
      dispatch_(options.dispatch),
      paused_(options.start_paused) {
  size_t n = options.workers > 0 ? options.workers : 1;
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

Supervisor::~Supervisor() { Shutdown(); }

RunReport Supervisor::ControlReport(const GuestJob& job, Outcome outcome,
                                    std::string message) const {
  RunReport r;
  r.outcome = outcome;
  r.tenant = job.tenant;
  r.trap = wasm::TrapKind::kHostError;
  r.trap_message = std::move(message);
  return r;
}

std::future<RunReport> Supervisor::Submit(GuestJob job) {
  Task task;
  task.job = std::move(job);
  std::future<RunReport> fut = task.done.get_future();
  const std::string tenant = task.job.tenant;

  std::string reject_reason;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      reject_reason = "supervisor is shut down";
    } else {
      TenantQueue& tq = queues_[tenant];
      if (task.job.weight > 0) {
        tq.weight = task.job.weight;
      }
      if (queue_depth_ > 0 && tq.q.size() >= queue_depth_) {
        reject_reason = "admission queue full for tenant '" + tenant + "'";
      } else {
        task.enqueue_nanos = clock_();
        tq.q.push_back(std::move(task));
        if (!tq.in_ring) {
          tq.in_ring = true;
          ring_.push_back(tenant);
        }
      }
    }
  }
  if (!reject_reason.empty()) {
    TenantUsage delta;
    delta.rejected = 1;
    ledger_.Charge(tenant, delta);
    task.done.set_value(
        ControlReport(task.job, Outcome::kRejected, std::move(reject_reason)));
    return fut;
  }
  cv_.notify_one();
  return fut;
}

std::vector<RunReport> Supervisor::RunAll(std::vector<GuestJob> jobs) {
  std::vector<std::future<RunReport>> futures;
  futures.reserve(jobs.size());
  for (GuestJob& job : jobs) {
    futures.push_back(Submit(std::move(job)));
  }
  // Futures are collected in submission order, so the reports come back in
  // submission order no matter how the scheduler interleaved the runs.
  std::vector<RunReport> reports;
  reports.reserve(futures.size());
  for (std::future<RunReport>& f : futures) {
    reports.push_back(f.get());
  }
  return reports;
}

void Supervisor::Pause() {
  std::lock_guard<std::mutex> lock(mu_);
  paused_ = true;
}

void Supervisor::Resume() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    paused_ = false;
  }
  cv_.notify_all();
}

void Supervisor::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      // Already requested; fall through to join whatever is left.
    }
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) {
    if (w.joinable()) {
      w.join();
    }
  }
}

size_t Supervisor::queued() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const auto& [tenant, tq] : queues_) {
    n += tq.q.size();
  }
  return n;
}

bool Supervisor::PopLocked(Task* out, std::vector<Task>* shed) {
  const int64_t now = clock_();
  while (!ring_.empty()) {
    const std::string name = ring_.front();
    TenantQueue& tq = queues_[name];
    // Shedding happens here, at pop time: a job whose deadline expired in
    // the queue is failed without running and without consuming the
    // tenant's scheduling credit.
    while (!tq.q.empty() && tq.q.front().job.deadline_nanos != 0 &&
           now >= tq.q.front().job.deadline_nanos) {
      shed->push_back(std::move(tq.q.front()));
      tq.q.pop_front();
    }
    if (tq.q.empty()) {
      ring_.pop_front();
      queues_.erase(name);  // drained: tenant scheduler state is dropped
      continue;
    }
    if (tq.credits == 0) {
      tq.credits = tq.weight > 0 ? tq.weight : 1;
    }
    *out = std::move(tq.q.front());
    tq.q.pop_front();
    if (--tq.credits == 0 || tq.q.empty()) {
      // Burst over (or nothing left): rotate this tenant to the back so the
      // next tenant in the ring gets its share.
      ring_.pop_front();
      if (tq.q.empty()) {
        queues_.erase(name);  // drained: tenant scheduler state is dropped
      } else {
        tq.credits = 0;
        ring_.push_back(name);
      }
    }
    return true;
  }
  return false;
}

void Supervisor::WorkerLoop() {
  while (true) {
    Task task;
    std::vector<Task> shed;
    bool got = false;
    bool drained = false;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] {
        return stopping_ || (!paused_ && RunnableLocked());
      });
      got = PopLocked(&task, &shed);
      if (!got && stopping_ && !RunnableLocked()) {
        drained = true;
      }
    }
    for (Task& s : shed) {
      TenantUsage delta;
      delta.shed = 1;
      ledger_.Charge(s.job.tenant, delta);
      RunReport r = ControlReport(s.job, Outcome::kShed,
                                  "shed: deadline expired while queued");
      r.queue_nanos = clock_() - s.enqueue_nanos;
      s.done.set_value(std::move(r));
    }
    if (got) {
      task.done.set_value(RunOne(task));
    } else if (drained) {
      return;  // stopping and nothing left to schedule
    }
  }
}

RunReport Supervisor::RunOne(Task& task) {
  GuestJob& job = task.job;
  RunReport report;
  report.tenant = job.tenant;
  report.queue_nanos = clock_() - task.enqueue_nanos;
  report.dispatch_seq = dispatch_seq_.fetch_add(1, std::memory_order_relaxed) + 1;

  // Cumulative-budget admission: a tenant over any hard limit is refused
  // before a slot is leased; the refusal still consumed a scheduling slot,
  // which keeps an exhausted tenant from pinning the ring.
  TenantLedger::Verdict verdict = ledger_.Admit(job.tenant);
  if (verdict != TenantLedger::Verdict::kAdmit) {
    TenantUsage delta;
    delta.budget_stops = 1;
    ledger_.Charge(job.tenant, delta);
    RunReport r = ControlReport(
        job, Outcome::kBudget,
        std::string("tenant budget exhausted: ") +
            TenantLedger::VerdictName(verdict));
    r.queue_nanos = report.queue_nanos;
    r.dispatch_seq = report.dispatch_seq;
    return r;
  }

  common::StatusOr<InstancePool::Lease> lease =
      pool_.Acquire(job.module, std::move(job.argv), std::move(job.env));
  if (!lease.ok()) {
    report.outcome = Outcome::kTrapped;
    report.trap = wasm::TrapKind::kHostError;
    report.trap_message = lease.status().ToString();
    // The guest never started, but the tenant did consume a dispatch; keep
    // it visible in the ledger instead of vanishing from telemetry.
    TenantUsage delta;
    delta.host_errors = 1;
    ledger_.Charge(job.tenant, delta);
    return report;
  }
  wali::WaliProcess& proc = **lease;
  report.pooled = lease->recycled();
  proc.policy = job.policy;

  wasm::ExecOptions opts = runtime_->exec_options();
  if (dispatch_ != wasm::DispatchMode::kAuto) {
    opts.dispatch = dispatch_;
  }
  if (job.fuel != 0) {
    opts.fuel = job.fuel;
  }
  if (job.max_frames != 0) {
    opts.max_frames = job.max_frames;
  }

  // Arm mid-run budget enforcement from the tenant's remaining slices,
  // RESERVED in the ledger up front so concurrent runs of the same tenant
  // split the cumulative budget instead of each taking the whole remainder
  // (SettleSlices swaps the reservation for actual consumption below).
  // Fuel rides the interpreter's existing per-instruction check; syscalls
  // trip in the dispatch wrapper; memory is capped at the allocation (grow
  // past the cap fails) with a safepoint backstop; CPU trips at WALI
  // safepoints, armed as a wall-clock deadline, which can only fire early
  // (wall >= cpu), never grant extra time.
  TenantLedger::RunReservation reserved =
      ledger_.ReserveSlices(job.tenant, job.fuel);
  bool fuel_clamped = false;
  if (reserved.fuel != 0 && (opts.fuel == 0 || reserved.fuel < opts.fuel)) {
    opts.fuel = reserved.fuel;
    fuel_clamped = true;
  }
  if (reserved.cpu_nanos != 0) {
    proc.cpu_deadline_nanos.store(common::MonotonicNanos() + reserved.cpu_nanos,
                                  std::memory_order_release);
  }
  if (reserved.syscalls != 0) {
    proc.syscall_budget.store(reserved.syscalls, std::memory_order_release);
  }
  TenantBudget budget = ledger_.budget(job.tenant);
  if (budget.max_mem_pages != 0) {
    proc.mem_budget_pages.store(budget.max_mem_pages, std::memory_order_release);
    proc.memory->SetGrowBudgetPages(budget.max_mem_pages);
  }

  int64_t cpu0 = common::ThreadCpuNanos();
  int64_t t0 = common::MonotonicNanos();
  wasm::RunResult r = runtime_->RunMain(proc, opts);
  report.wall_nanos = common::MonotonicNanos() - t0;
  report.cpu_nanos = common::ThreadCpuNanos() - cpu0;
  proc.cpu_deadline_nanos.store(0, std::memory_order_release);
  proc.mem_budget_pages.store(0, std::memory_order_release);
  proc.syscall_budget.store(0, std::memory_order_release);
  proc.memory->SetGrowBudgetPages(0);

  report.trap = r.trap;
  report.trap_message = r.trap_message;
  report.executed_instrs = r.executed_instrs;
  report.fuel_consumed = r.executed_instrs;
  report.mem_high_water_pages = proc.memory->high_water_pages();
  if (r.trap == wasm::TrapKind::kExit) {
    report.exit_code = r.exit_code;
  } else if (r.ok() && !r.values.empty()) {
    report.exit_code = static_cast<int32_t>(r.values[0].i32());
  }

  const std::vector<wali::SyscallDef>& defs = runtime_->syscalls();
  for (size_t id = 0; id < defs.size(); ++id) {
    uint64_t n = proc.trace.count(static_cast<uint32_t>(id));
    if (n > 0) {
      report.syscall_counts.emplace_back(defs[id].name, n);
      report.total_syscalls += n;
    }
  }
  report.wali_nanos = proc.trace.wali_nanos();
  report.kernel_nanos = proc.trace.kernel_nanos();

  if (r.trap == wasm::TrapKind::kBudgetExhausted ||
      (r.trap == wasm::TrapKind::kFuelExhausted && fuel_clamped)) {
    report.outcome = Outcome::kBudget;
  } else if (report.trap == wasm::TrapKind::kNone ||
             report.trap == wasm::TrapKind::kExit) {
    report.outcome = Outcome::kCompleted;
  } else {
    report.outcome = Outcome::kTrapped;
  }

  // Settle the reservation against actual consumption, then charge the
  // unreserved dimensions.
  TenantUsage actual;
  actual.fuel = report.fuel_consumed;
  actual.cpu_nanos = report.cpu_nanos;
  actual.syscalls = report.total_syscalls;
  ledger_.SettleSlices(job.tenant, reserved, actual);
  TenantUsage delta;
  delta.runs = 1;
  delta.mem_high_water_pages = report.mem_high_water_pages;
  if (report.outcome == Outcome::kBudget) {
    delta.budget_stops = 1;
  }
  ledger_.Charge(job.tenant, delta);
  return report;
}

}  // namespace host
