#include "src/host/supervisor.h"

#include <cstdio>
#include <fstream>

#include "src/common/time_util.h"
#include "src/wali/process_snapshot.h"
#include "src/wali/trace.h"

namespace host {

Supervisor::Supervisor(wali::WaliRuntime* runtime, const Options& options)
    : runtime_(runtime),
      pool_(runtime, options.pool),
      clock_(options.clock ? options.clock : [] { return common::MonotonicNanos(); }),
      queue_depth_(options.queue_depth),
      dispatch_(options.dispatch),
      jit_(options.jit),
      io_(options.io_backend),
      evict_dir_(options.evict_dir),
      paused_(options.start_paused) {
#if defined(HOST_TELEMETRY)
  tel_ = options.telemetry;
#endif
  if (tel_ != nullptr) {
    metrics::Registry& reg = tel_->registry();
    c_submitted_ = reg.GetCounter("supervisor_jobs_submitted_total");
    for (size_t i = 0; i < kNumOutcomes; ++i) {
      c_outcome_[i] = reg.GetCounter(
          std::string("supervisor_jobs_total{outcome=\"") +
          OutcomeName(static_cast<Outcome>(i)) + "\"}");
    }
    g_queue_depth_ = reg.GetGauge("supervisor_queue_depth");
    h_queue_ = reg.GetHistogram("supervisor_queue_latency_nanos");
    h_run_wall_ = reg.GetHistogram("supervisor_run_wall_nanos");
    h_blocked_ = reg.GetHistogram("supervisor_blocked_nanos");
    h_resume_queue_ = reg.GetHistogram("supervisor_resume_queue_nanos");
    c_evicts_ = reg.GetCounter("supervisor_evictions_total");
    c_restores_ = reg.GetCounter("supervisor_restores_total");
    g_evicted_now_ = reg.GetGauge("supervisor_evicted_now");
    ledger_.SetTelemetry(tel_);
    pool_.SetTelemetry(tel_);
  }
  if (io_ != nullptr) {
    // Completion side of the park/resume lifecycle: move the parked run to
    // the ready queue and hand it to a worker. Completions for cookies that
    // are no longer parked (shed, shut down) are absorbed as orphans.
    io_->SetCompletionHandler([this](uint64_t cookie, const IoCompletion& c) {
      Telemetry::RunHandle trun;
      int64_t ready_stamp = 0;
      bool found = false;
      {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = parked_.find(cookie);
        if (it != parked_.end()) {
          ReadyEntry entry;
          entry.st = std::move(it->second);
          entry.completion = c;
          entry.ready_stamp = clock_();
          ready_stamp = entry.ready_stamp;
          trun = entry.st.trun;
          parked_.erase(it);
          ready_.push_back(std::move(entry));
          found = true;
        }
      }
      if (!found) {
        orphan_completions_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      if (tel_ != nullptr) {
        tel_->Record(trun, SpanEvent::kIoComplete, ready_stamp);
      }
      cv_.notify_one();
    });
  }
  size_t n = options.workers > 0 ? options.workers : 1;
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

Supervisor::~Supervisor() { Shutdown(); }

RunReport Supervisor::ControlReport(const GuestJob& job, Outcome outcome,
                                    std::string message) const {
  RunReport r;
  r.outcome = outcome;
  r.tenant = job.tenant;
  r.trap = wasm::TrapKind::kHostError;
  r.trap_message = std::move(message);
  return r;
}

void Supervisor::EndRunTel(Telemetry::RunHandle h, Outcome outcome,
                           uint64_t fuel) {
  if (tel_ == nullptr || !h.valid()) {
    return;
  }
  tel_->EndRun(h, outcome, clock_(), fuel);
  c_outcome_[static_cast<size_t>(outcome)]->Inc();
}

std::future<RunReport> Supervisor::Submit(GuestJob job) {
  Task task;
  task.job = std::move(job);
  std::future<RunReport> fut = task.done.get_future();
  const std::string tenant = task.job.tenant;
  if (tel_ != nullptr) {
    // Rejected submits open a span too: counter exactness (per-outcome sum
    // == submissions) depends on every admission attempt being a run.
    task.trun = tel_->BeginRun(tenant, clock_());
    c_submitted_->Inc();
  }

  std::string reject_reason;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      reject_reason = "supervisor is shut down";
    } else {
      TenantQueue& tq = queues_[tenant];
      if (task.job.weight > 0) {
        tq.weight = task.job.weight;
      }
      if (queue_depth_ > 0 && tq.q.size() >= queue_depth_) {
        reject_reason = "admission queue full for tenant '" + tenant + "'";
      } else {
        task.enqueue_nanos = clock_();
        tq.q.push_back(std::move(task));
        if (!tq.in_ring) {
          tq.in_ring = true;
          ring_.push_back(tenant);
        }
      }
    }
  }
  if (!reject_reason.empty()) {
    TenantUsage delta;
    delta.rejected = 1;
    ledger_.Charge(tenant, delta);
    EndRunTel(task.trun, Outcome::kRejected, 0);
    task.done.set_value(
        ControlReport(task.job, Outcome::kRejected, std::move(reject_reason)));
    return fut;
  }
  if (g_queue_depth_ != nullptr) {
    g_queue_depth_->Add(1);
  }
  cv_.notify_one();
  return fut;
}

std::vector<RunReport> Supervisor::RunAll(std::vector<GuestJob> jobs) {
  std::vector<std::future<RunReport>> futures;
  futures.reserve(jobs.size());
  for (GuestJob& job : jobs) {
    futures.push_back(Submit(std::move(job)));
  }
  // Futures are collected in submission order, so the reports come back in
  // submission order no matter how the scheduler interleaved the runs.
  std::vector<RunReport> reports;
  reports.reserve(futures.size());
  for (std::future<RunReport>& f : futures) {
    reports.push_back(f.get());
  }
  return reports;
}

void Supervisor::Pause() {
  std::lock_guard<std::mutex> lock(mu_);
  paused_ = true;
}

void Supervisor::Resume() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    paused_ = false;
  }
  cv_.notify_all();
}

void Supervisor::Shutdown() {
  // Sweep the parked and ready sets: their guests are suspended in blocking
  // syscalls that may never complete, so shutdown resolves them as shed
  // (with their partial consumption settled) rather than waiting. Queued
  // jobs still drain normally — workers keep popping under stopping_.
  std::vector<uint64_t> cookies;
  std::vector<RunState> abandoned;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      // Already requested; fall through to join whatever is left.
    }
    stopping_ = true;
    for (auto& [cookie, st] : parked_) {
      cookies.push_back(cookie);
      abandoned.push_back(std::move(st));
    }
    parked_.clear();
    while (!ready_.empty()) {
      abandoned.push_back(std::move(ready_.front().st));
      ready_.pop_front();
    }
  }
  if (io_ != nullptr) {
    for (uint64_t cookie : cookies) {
      io_->Cancel(cookie);
    }
  }
  for (RunState& st : abandoned) {
    FinishAbandoned(std::move(st), Outcome::kShed,
                    "shed: supervisor shutdown with syscall parked");
  }
  cv_.notify_all();
  for (std::thread& w : workers_) {
    if (w.joinable()) {
      w.join();
    }
  }
  if (io_ != nullptr) {
    // Detach from the backend last: blocks until any in-flight delivery
    // into this supervisor has drained, so the backend can safely outlive
    // or be destroyed independently of us from here on.
    io_->SetCompletionHandler(nullptr);
  }
}

size_t Supervisor::queued() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const auto& [tenant, tq] : queues_) {
    n += tq.q.size();
  }
  return n;
}

size_t Supervisor::parked() const {
  std::lock_guard<std::mutex> lock(mu_);
  return parked_.size();
}

Supervisor::IoStats Supervisor::io_stats() const {
  IoStats s;
  {
    std::lock_guard<std::mutex> lock(mu_);
    s.parked_now = parked_.size();
    s.ready_now = ready_.size();
    for (const auto& [cookie, st] : parked_) {
      if (st.evicted) {
        ++s.evicted_now;
      }
    }
  }
  s.in_flight_now = in_flight_.load(std::memory_order_relaxed);
  s.peak_in_flight = peak_in_flight_.load(std::memory_order_relaxed);
  s.parks_total = parks_total_.load(std::memory_order_relaxed);
  s.resumes_total = resumes_total_.load(std::memory_order_relaxed);
  s.orphan_completions = orphan_completions_.load(std::memory_order_relaxed);
  s.sheds_while_parked = sheds_while_parked_.load(std::memory_order_relaxed);
  s.budget_stops_while_parked =
      budget_stops_while_parked_.load(std::memory_order_relaxed);
  s.evicts_total = evicts_total_.load(std::memory_order_relaxed);
  s.restores_total = restores_total_.load(std::memory_order_relaxed);
  return s;
}

std::vector<uint64_t> Supervisor::parked_cookies() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<uint64_t> cookies;
  cookies.reserve(parked_.size());
  for (const auto& [cookie, st] : parked_) {
    cookies.push_back(cookie);  // map order == cookie order == park order
  }
  return cookies;
}

common::Status Supervisor::EvictParked(uint64_t cookie) {
  // Everything happens under mu_: the completion handler also takes mu_ to
  // move an entry to ready_, so a completion that races this evict either
  // takes the run before we start (NotFound here) or finds it already
  // serialized (ResumeOne restores it). Snapshot cost under the lock is the
  // guest's resident pages — acceptable for a pressure-relief path that
  // runs when workers are starved for memory, not for time.
  std::lock_guard<std::mutex> lock(mu_);
  auto it = parked_.find(cookie);
  if (it == parked_.end()) {
    return common::NotFound("evict: cookie is not parked");
  }
  RunState& st = it->second;
  if (st.evicted) {
    return common::AlreadyExists("evict: run is already evicted");
  }
  if (st.retry != nullptr) {
    return common::Unimplemented(
        "evict: parked op resumes through a live retry closure");
  }
  if (!st.cont.armed()) {
    return common::FailedPrecondition("evict: no armed continuation");
  }
  wali::WaliProcess& proc = *st.lease;
  // The real resume closure lives in st.retry (moved out at park); the
  // process-side slot is moved-from, so pin it to a definite null before
  // the eligibility checks inside SnapshotProcess look at it.
  proc.pending_io.retry = nullptr;
  common::StatusOr<std::vector<uint8_t>> snap =
      wali::SnapshotProcess(proc, st.cont);
  if (!snap.ok()) {
    return snap.status();
  }
  if (!evict_dir_.empty()) {
    std::string path =
        evict_dir_ + "/evict-" + std::to_string(cookie) + ".snap";
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(snap->data()),
              static_cast<std::streamsize>(snap->size()));
    if (!out.good()) {
      return common::Internal("evict: cannot write " + path);
    }
    st.evicted_path = std::move(path);
  } else {
    st.evicted_snapshot = std::move(*snap);
  }
  // RunOne moved the job's argv/env into the lease; stash them for the
  // restore-time Acquire before the process goes back to the pool.
  st.saved_argv = proc.argv;
  st.saved_env = proc.env;
  st.cont.Discard();
  proc.pending_io.Reset();
  st.lease.Release();  // the slab (the actual memory pressure) goes here
  st.evicted = true;
  evicts_total_.fetch_add(1, std::memory_order_relaxed);
  if (tel_ != nullptr) {
    tel_->Record(st.trun, SpanEvent::kEvict, clock_(),
                 st.report.fuel_consumed);
    c_evicts_->Inc();
    g_evicted_now_->Add(1);
  }
  return common::OkStatus();
}

size_t Supervisor::EvictAllParked() {
  size_t n = 0;
  for (uint64_t cookie : parked_cookies()) {
    if (EvictParked(cookie).ok()) {
      ++n;
    }
  }
  return n;
}

bool Supervisor::RestoreParked(RunState& st) {
  std::vector<uint8_t> bytes = std::move(st.evicted_snapshot);
  if (!st.evicted_path.empty()) {
    std::ifstream in(st.evicted_path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
    if (bytes.empty()) {
      std::string msg = "restore: cannot read " + st.evicted_path;
      FinishEvictedUnrestorable(std::move(st), std::move(msg));
      return false;
    }
    std::remove(st.evicted_path.c_str());
  }
  common::StatusOr<InstancePool::Lease> lease = pool_.Acquire(
      st.job.module, std::move(st.saved_argv), std::move(st.saved_env));
  if (!lease.ok()) {
    FinishEvictedUnrestorable(std::move(st),
                              "restore: " + lease.status().ToString());
    return false;
  }
  st.lease = std::move(*lease);
  wali::WaliProcess& proc = *st.lease;
  common::Status restored =
      wali::RestoreProcess(bytes.data(), bytes.size(), proc, st.cont);
  if (!restored.ok()) {
    // The fresh lease goes back clean; the run itself is unrecoverable (its
    // only state was the snapshot that just failed to decode).
    st.lease.Release();
    FinishEvictedUnrestorable(std::move(st),
                              "restore: " + restored.ToString());
    return false;
  }
  proc.policy = st.job.policy;
  st.evicted = false;
  st.evicted_path.clear();
  restores_total_.fetch_add(1, std::memory_order_relaxed);
  if (tel_ != nullptr) {
    tel_->Record(st.trun, SpanEvent::kRestore, clock_(),
                 st.report.fuel_consumed);
    c_restores_->Inc();
    g_evicted_now_->Sub(1);
  }
  return true;
}

void Supervisor::FinishEvictedUnrestorable(RunState st, std::string message) {
  RunReport& report = st.report;
  report.outcome = Outcome::kTrapped;
  report.trap = wasm::TrapKind::kHostError;
  report.trap_message = std::move(message);
  // The park already settled everything the guest consumed (st.reserved is
  // empty off-worker), so the ledger only records the run and the host
  // error — nothing is re-billed, nothing is lost.
  ledger_.SettleSlices(st.job.tenant, st.reserved, TenantUsage{});
  TenantUsage delta;
  delta.runs = 1;
  delta.host_errors = 1;
  ledger_.Charge(st.job.tenant, delta);
  in_flight_.fetch_sub(1, std::memory_order_acq_rel);
  if (tel_ != nullptr) {
    g_evicted_now_->Sub(1);
  }
  EndRunTel(st.trun, Outcome::kTrapped, report.fuel_consumed);
  st.done.set_value(std::move(report));
}

bool Supervisor::PopLocked(Task* out, std::vector<Task>* shed) {
  const int64_t now = clock_();
  while (!ring_.empty()) {
    const std::string name = ring_.front();
    TenantQueue& tq = queues_[name];
    // Shedding happens here, at pop time: a job whose deadline expired in
    // the queue is failed without running and without consuming the
    // tenant's scheduling credit.
    while (!tq.q.empty() && tq.q.front().job.deadline_nanos != 0 &&
           now >= tq.q.front().job.deadline_nanos) {
      shed->push_back(std::move(tq.q.front()));
      tq.q.pop_front();
      if (g_queue_depth_ != nullptr) {
        g_queue_depth_->Sub(1);
      }
    }
    if (tq.q.empty()) {
      ring_.pop_front();
      queues_.erase(name);  // drained: tenant scheduler state is dropped
      continue;
    }
    if (tq.credits == 0) {
      tq.credits = tq.weight > 0 ? tq.weight : 1;
    }
    *out = std::move(tq.q.front());
    tq.q.pop_front();
    if (g_queue_depth_ != nullptr) {
      g_queue_depth_->Sub(1);
    }
    if (--tq.credits == 0 || tq.q.empty()) {
      // Burst over (or nothing left): rotate this tenant to the back so the
      // next tenant in the ring gets its share.
      ring_.pop_front();
      if (tq.q.empty()) {
        queues_.erase(name);  // drained: tenant scheduler state is dropped
      } else {
        tq.credits = 0;
        ring_.push_back(name);
      }
    }
    return true;
  }
  return false;
}

void Supervisor::WorkerLoop() {
  while (true) {
    Task task;
    std::vector<Task> shed;
    ReadyEntry ready;
    bool got = false;
    bool got_ready = false;
    bool drained = false;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] {
        return stopping_ || (!paused_ && (!ready_.empty() || RunnableLocked()));
      });
      // Completed parks resume ahead of fresh admissions: a resumed guest
      // already holds a pool lease and reserved budget slices, so getting
      // it out frees more than admitting new work would.
      if (!paused_ && !ready_.empty()) {
        ready = std::move(ready_.front());
        ready_.pop_front();
        got_ready = true;
      } else {
        got = PopLocked(&task, &shed);
        if (!got && stopping_ && !RunnableLocked() && ready_.empty()) {
          drained = true;
        }
      }
    }
    for (Task& s : shed) {
      TenantUsage delta;
      delta.shed = 1;
      ledger_.Charge(s.job.tenant, delta);
      RunReport r = ControlReport(s.job, Outcome::kShed,
                                  "shed: deadline expired while queued");
      r.queue_nanos = clock_() - s.enqueue_nanos;
      EndRunTel(s.trun, Outcome::kShed, 0);
      s.done.set_value(std::move(r));
    }
    if (got_ready) {
      ResumeOne(std::move(ready));
    } else if (got) {
      RunOne(task);
    } else if (drained) {
      return;  // stopping and nothing left to schedule
    }
  }
}

void Supervisor::RunOne(Task& task) {
  RunState st;
  st.job = std::move(task.job);
  st.done = std::move(task.done);
  st.trun = task.trun;
  GuestJob& job = st.job;
  RunReport& report = st.report;
  report.tenant = job.tenant;
  report.queue_nanos = clock_() - task.enqueue_nanos;
  report.dispatch_seq = dispatch_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (tel_ != nullptr) {
    tel_->Record(st.trun, SpanEvent::kDispatch, clock_());
    h_queue_->Observe(report.queue_nanos);
  }

  // Cumulative-budget admission: a tenant over any hard limit is refused
  // before a slot is leased; the refusal still consumed a scheduling slot,
  // which keeps an exhausted tenant from pinning the ring.
  TenantLedger::Verdict verdict = ledger_.Admit(job.tenant);
  if (verdict != TenantLedger::Verdict::kAdmit) {
    TenantUsage delta;
    delta.budget_stops = 1;
    ledger_.Charge(job.tenant, delta);
    RunReport r = ControlReport(
        job, Outcome::kBudget,
        std::string("tenant budget exhausted: ") +
            TenantLedger::VerdictName(verdict));
    r.queue_nanos = report.queue_nanos;
    r.dispatch_seq = report.dispatch_seq;
    EndRunTel(st.trun, Outcome::kBudget, 0);
    st.done.set_value(std::move(r));
    return;
  }

  common::StatusOr<InstancePool::Lease> lease =
      pool_.Acquire(job.module, std::move(job.argv), std::move(job.env));
  if (!lease.ok()) {
    report.outcome = Outcome::kTrapped;
    report.trap = wasm::TrapKind::kHostError;
    report.trap_message = lease.status().ToString();
    // The guest never started, but the tenant did consume a dispatch; keep
    // it visible in the ledger instead of vanishing from telemetry.
    TenantUsage delta;
    delta.host_errors = 1;
    ledger_.Charge(job.tenant, delta);
    EndRunTel(st.trun, Outcome::kTrapped, 0);
    st.done.set_value(std::move(report));
    return;
  }
  st.lease = std::move(*lease);
  wali::WaliProcess& proc = *st.lease;
  report.pooled = st.lease.recycled();
  proc.policy = job.policy;

  uint64_t now_in_flight = in_flight_.fetch_add(1, std::memory_order_acq_rel) + 1;
  uint64_t peak = peak_in_flight_.load(std::memory_order_relaxed);
  while (now_in_flight > peak &&
         !peak_in_flight_.compare_exchange_weak(peak, now_in_flight,
                                                std::memory_order_relaxed)) {
  }

  wasm::ExecOptions opts = runtime_->exec_options();
  opts.profile = tel_ != nullptr;
  if (dispatch_ != wasm::DispatchMode::kAuto) {
    opts.dispatch = dispatch_;
  }
  if (jit_ != wasm::JitTier::kAuto) {
    opts.jit = jit_;
  }
  if (job.fuel != 0) {
    opts.fuel = job.fuel;
  }
  if (job.max_frames != 0) {
    opts.max_frames = job.max_frames;
  }

  // Arm mid-run budget enforcement from the tenant's remaining slices,
  // RESERVED in the ledger up front so concurrent runs of the same tenant
  // split the cumulative budget instead of each taking the whole remainder
  // (SettleSlices swaps the reservation for actual consumption at finish).
  // Fuel rides the interpreter's existing per-instruction check; syscalls
  // trip in the dispatch wrapper; memory is capped at the allocation (grow
  // past the cap fails) with a safepoint backstop; CPU trips at WALI
  // safepoints, armed as a wall-clock deadline, which can only fire early
  // (wall >= cpu), never grant extra time. A park RELEASES the
  // reservation (ParkRun settles consumed-so-far and hands the unconsumed
  // slices back, so a sleeping fleet cannot starve the tenant's runnable
  // jobs); ResumeOne re-reserves fresh slices after its Admit re-check
  // and re-arms fuel/CPU/syscall enforcement from the new grant — blocked
  // wall time is never billed as CPU, and RunState::settled keeps the
  // finish-time settle from double-billing the parked partials.
  st.reserved = ledger_.ReserveSlices(job.tenant, job.fuel);
  if (st.reserved.fuel != 0 && (opts.fuel == 0 || st.reserved.fuel < opts.fuel)) {
    opts.fuel = st.reserved.fuel;
    st.fuel_clamped = true;
  }
  if (st.reserved.cpu_nanos != 0) {
    proc.cpu_deadline_nanos.store(common::MonotonicNanos() + st.reserved.cpu_nanos,
                                  std::memory_order_release);
  }
  if (st.reserved.syscalls != 0) {
    proc.syscall_budget.store(st.reserved.syscalls, std::memory_order_release);
  }
  TenantBudget budget = ledger_.budget(job.tenant);
  if (budget.max_mem_pages != 0) {
    proc.mem_budget_pages.store(budget.max_mem_pages, std::memory_order_release);
    proc.memory->SetGrowBudgetPages(budget.max_mem_pages);
  }

  int64_t cpu0 = common::ThreadCpuNanos();
  int64_t t0 = common::MonotonicNanos();
  wasm::RunResult r =
      runtime_->RunMain(proc, opts, io_ != nullptr ? &st.cont : nullptr);
  report.wall_nanos += common::MonotonicNanos() - t0;
  report.cpu_nanos += common::ThreadCpuNanos() - cpu0;

  if (r.trap == wasm::TrapKind::kSyscallPending) {
    ParkRun(std::move(st));
    return;
  }
  FinishRun(std::move(st), r);
}

void Supervisor::ParkRun(RunState st) {
  wali::WaliProcess& proc = *st.lease;
  RunReport& report = st.report;
  report.parks += 1;
  parks_total_.fetch_add(1, std::memory_order_relaxed);
  // Partial instruction tally, so an abandoned park settles real fuel.
  report.executed_instrs = st.cont.susp.ctx != nullptr
                               ? st.cont.susp.ctx->executed + st.cont.start_instrs
                               : report.executed_instrs;
  report.fuel_consumed = report.executed_instrs;

  wali::PendingIo& pio = proc.pending_io;
  st.retry = std::move(pio.retry);
  wali::IoOp op = pio.op;
  st.timeout_is_shed = false;

  // Fold the job's queue-style deadline into the parked op: the backend
  // deadline becomes min(op timeout, job deadline), and a kTimedOut
  // completion that stems from the job deadline sheds the parked guest.
  if (st.job.deadline_nanos != 0) {
    int64_t remaining = st.job.deadline_nanos - clock_();
    if (remaining <= 0) {
      FinishAbandoned(std::move(st), Outcome::kShed,
                      "shed: deadline expired entering a blocking syscall");
      return;
    }
    if (op.kind == wali::IoOp::Kind::kSleep) {
      if (remaining < op.sleep_nanos) {
        op.sleep_nanos = remaining;
        st.timeout_is_shed = true;
      }
    } else if (op.timeout_nanos < 0 || remaining < op.timeout_nanos) {
      op.timeout_nanos = remaining;
      st.timeout_is_shed = true;
    }
  }

  // Release the run's budget reservation while it sleeps off-worker:
  // settle what it actually consumed so far and hand the unconsumed slices
  // back to the tenant's unreserved pool, so a parked fleet cannot starve
  // the tenant's runnable jobs. ResumeOne re-reserves after its Admit
  // re-check; the finish paths charge totals minus `settled`, so nothing
  // is billed twice.
  {
    TenantUsage sofar;
    sofar.fuel = report.fuel_consumed - st.settled.fuel;
    sofar.cpu_nanos = report.cpu_nanos - st.settled.cpu_nanos;
    // Trace-counted dispatches: same source as the finish-time report (a
    // budget-tripped dispatch never reaches the trace, so this can never
    // run ahead of what Finish* will bill).
    sofar.syscalls = proc.trace.total_calls() - st.settled.syscalls;
    ledger_.SettleSlices(st.job.tenant, st.reserved, sofar);
    st.settled.fuel += sofar.fuel;
    st.settled.cpu_nanos += sofar.cpu_nanos;
    st.settled.syscalls += sofar.syscalls;
    st.reserved = TenantLedger::RunReservation{};
  }

  st.park_stamp = clock_();
  if (tel_ != nullptr) {
    tel_->Record(st.trun, SpanEvent::kPark, st.park_stamp,
                 report.fuel_consumed);
  }
  bool parked = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!stopping_) {
      uint64_t cookie = next_cookie_++;
      parked_.emplace(cookie, std::move(st));
      parked = true;
      // Submitted under mu_ on purpose: Shutdown's sweep also holds mu_,
      // so it can never run between the emplace and the submit — its
      // Cancel(cookie) always sees an op the backend knows about, and no
      // zombie op outlives the sweep. (Safe lock order: backends take only
      // their own internal mutex in Submit and never call back into the
      // supervisor from it.)
      io_->Submit(cookie, op);
    }
  }
  if (!parked) {
    // Shutdown already swept the parked set; this run must not slip in
    // behind the sweep and wait on a completion nobody will deliver.
    FinishAbandoned(std::move(st), Outcome::kShed,
                    "shed: supervisor shutdown with syscall parked");
  }
}

void Supervisor::ResumeOne(ReadyEntry entry) {
  RunState st = std::move(entry.st);
  const IoCompletion& c = entry.completion;
  // An evicted run exists only as snapshot bytes: rehydrate it into a fresh
  // slot before anything touches the process. Recorded before kResume so
  // the trace reads park -> evict -> io_complete -> restore -> resume.
  if (st.evicted && !RestoreParked(st)) {
    return;  // resolved as kTrapped/kHostError by the restore path
  }
  wali::WaliProcess& proc = *st.lease;
  RunReport& report = st.report;
  const int64_t resume_now = clock_();
  report.blocked_nanos += resume_now - st.park_stamp;
  if (entry.ready_stamp != 0) {
    // The ready -> re-dispatch slice of the blocked time: how long the
    // completed run waited behind other work for a worker.
    report.resume_queue_nanos += resume_now - entry.ready_stamp;
    if (h_resume_queue_ != nullptr) {
      h_resume_queue_->Observe(resume_now - entry.ready_stamp);
    }
  }
  if (tel_ != nullptr) {
    tel_->Record(st.trun, SpanEvent::kResume, resume_now);
  }
  resumes_total_.fetch_add(1, std::memory_order_relaxed);

  // Shed: the job deadline fired while parked (tagged at park time), or the
  // supervisor clock has passed it regardless of what completed.
  const bool deadline_shed =
      (st.timeout_is_shed && c.status == IoCompletion::Status::kTimedOut &&
       !c.has_value) ||
      (st.job.deadline_nanos != 0 && clock_() >= st.job.deadline_nanos);
  if (deadline_shed) {
    sheds_while_parked_.fetch_add(1, std::memory_order_relaxed);
    FinishAbandoned(std::move(st), Outcome::kShed,
                    "shed: deadline expired while parked");
    return;
  }

  // Budget re-check: the tenant may have exhausted its cumulative budget
  // (through other runs) while this guest was parked.
  if (ledger_.Admit(st.job.tenant) != TenantLedger::Verdict::kAdmit) {
    budget_stops_while_parked_.fetch_add(1, std::memory_order_relaxed);
    FinishAbandoned(std::move(st), Outcome::kBudget,
                    "tenant budget exhausted while parked");
    return;
  }

  // Materialize the syscall result: a scripted completion wins outright; a
  // backend error (kError: it could not wait on this op) surfaces its
  // -errno WITHOUT running the retry — the op never became ready, and
  // re-issuing the real syscall here would block this worker, exactly what
  // offload exists to prevent. Otherwise the retry performs the now-ready
  // syscall on this worker, and a sleep (no retry) completes with 0.
  int64_t sys_ret;
  if (c.has_value) {
    sys_ret = c.value;
  } else if (c.status == IoCompletion::Status::kError) {
    sys_ret = c.value;
  } else if (st.retry != nullptr) {
    sys_ret = st.retry();
  } else {
    sys_ret = 0;
  }
  st.retry = nullptr;

  // Re-reserve budget slices for the on-worker continuation — the park
  // released this run's reservation back to the tenant's pool. The fresh
  // slices come out of the CURRENT unreserved remainder (concurrent runs
  // may have consumed some while we slept), so the cumulative budget stays
  // hard across park/resume cycles. The suspended interpreter's remaining
  // fuel bounds the demand (the run can never consume more than that), so
  // a resumed run near completion takes a small slice and leaves the rest
  // of the remainder for the tenant's other runs.
  uint64_t fuel_demand = st.job.fuel;
  if (st.cont.susp.ctx != nullptr && st.cont.susp.ctx->opts.fuel != 0) {
    uint64_t remaining =
        st.cont.susp.ctx->opts.fuel - st.cont.susp.ctx->executed;
    fuel_demand = remaining > 0 ? remaining : 1;
  }
  st.reserved = ledger_.ReserveSlices(st.job.tenant, fuel_demand);
  if (st.reserved.fuel != 0 && st.cont.susp.ctx != nullptr) {
    // Tighten the suspended interpreter's fuel to consumed + the new
    // slice, so the re-reserved (possibly smaller) grant is enforced by
    // the same per-instruction mechanism as at first dispatch.
    uint64_t cap = st.cont.susp.ctx->executed + st.reserved.fuel;
    if (st.cont.susp.ctx->opts.fuel == 0 || cap < st.cont.susp.ctx->opts.fuel) {
      st.cont.susp.ctx->opts.fuel = cap;
      st.fuel_clamped = true;
    }
  }
  // Re-arm the CPU deadline from the fresh slice: the deadline is
  // wall-clock-based and the park let wall time pass without consuming
  // CPU, so it restarts from now.
  if (st.reserved.cpu_nanos != 0) {
    proc.cpu_deadline_nanos.store(common::MonotonicNanos() + st.reserved.cpu_nanos,
                                  std::memory_order_release);
  }
  if (st.reserved.syscalls != 0) {
    // The dispatch-wrapper check compares the run's cumulative dispatch
    // counter, so the new grant is "dispatches so far + fresh slice".
    proc.syscall_budget.store(
        proc.run_syscalls.load(std::memory_order_acquire) + st.reserved.syscalls,
        std::memory_order_release);
  }

  int64_t cpu0 = common::ThreadCpuNanos();
  int64_t t0 = common::MonotonicNanos();
  wasm::RunResult r = runtime_->ResumeMain(proc, st.cont, sys_ret);
  report.wall_nanos += common::MonotonicNanos() - t0;
  report.cpu_nanos += common::ThreadCpuNanos() - cpu0;

  if (r.trap == wasm::TrapKind::kSyscallPending) {
    ParkRun(std::move(st));
    return;
  }
  FinishRun(std::move(st), r);
}

void Supervisor::FinishRun(RunState st, const wasm::RunResult& r) {
  wali::WaliProcess& proc = *st.lease;
  RunReport& report = st.report;
  proc.cpu_deadline_nanos.store(0, std::memory_order_release);
  proc.mem_budget_pages.store(0, std::memory_order_release);
  proc.syscall_budget.store(0, std::memory_order_release);
  proc.memory->SetGrowBudgetPages(0);

  report.trap = r.trap;
  report.trap_message = r.trap_message;
  report.executed_instrs = r.executed_instrs;
  report.fuel_consumed = r.executed_instrs;
  report.mem_high_water_pages = proc.memory->high_water_pages();
  if (r.trap == wasm::TrapKind::kExit) {
    report.exit_code = r.exit_code;
  } else if (r.ok() && !r.values.empty()) {
    report.exit_code = static_cast<int32_t>(r.values[0].i32());
  }

  const std::vector<wali::SyscallDef>& defs = runtime_->syscalls();
  for (size_t id = 0; id < defs.size(); ++id) {
    uint64_t n = proc.trace.count(static_cast<uint32_t>(id));
    if (n > 0) {
      report.syscall_counts.emplace_back(defs[id].name, n);
      report.total_syscalls += n;
    }
  }
  report.wali_nanos = proc.trace.wali_nanos();
  report.kernel_nanos = proc.trace.kernel_nanos();

  if (r.trap == wasm::TrapKind::kBudgetExhausted ||
      (r.trap == wasm::TrapKind::kFuelExhausted && st.fuel_clamped)) {
    report.outcome = Outcome::kBudget;
  } else if (report.trap == wasm::TrapKind::kNone ||
             report.trap == wasm::TrapKind::kExit) {
    report.outcome = Outcome::kCompleted;
  } else {
    report.outcome = Outcome::kTrapped;
  }

  // Settle the reservation against actual consumption (minus anything a
  // park already settled), then charge the unreserved dimensions.
  TenantUsage actual;
  actual.fuel = report.fuel_consumed - st.settled.fuel;
  actual.cpu_nanos = report.cpu_nanos - st.settled.cpu_nanos;
  actual.syscalls = report.total_syscalls - st.settled.syscalls;
  ledger_.SettleSlices(st.job.tenant, st.reserved, actual);
  TenantUsage delta;
  delta.runs = 1;
  delta.mem_high_water_pages = report.mem_high_water_pages;
  if (report.outcome == Outcome::kBudget) {
    delta.budget_stops = 1;
  }
  ledger_.Charge(st.job.tenant, delta);
  in_flight_.fetch_sub(1, std::memory_order_acq_rel);
  if (tel_ != nullptr) {
    h_run_wall_->Observe(report.wall_nanos);
    h_blocked_->Observe(report.blocked_nanos);
  }
  EndRunTel(st.trun, report.outcome, report.fuel_consumed);
  st.done.set_value(std::move(report));
}

void Supervisor::FinishAbandoned(RunState st, Outcome outcome,
                                 std::string message) {
  if (st.evicted) {
    // No lease to disarm and no live process to harvest: drop the snapshot
    // bytes (the park that preceded the evict already settled consumption).
    if (!st.evicted_path.empty()) {
      std::remove(st.evicted_path.c_str());
    }
    RunReport& report = st.report;
    report.outcome = outcome;
    report.trap = wasm::TrapKind::kHostError;
    report.trap_message = std::move(message);
    ledger_.SettleSlices(st.job.tenant, st.reserved, TenantUsage{});
    TenantUsage delta;
    delta.runs = 1;
    if (outcome == Outcome::kShed) {
      delta.shed = 1;
    } else if (outcome == Outcome::kBudget) {
      delta.budget_stops = 1;
    }
    ledger_.Charge(st.job.tenant, delta);
    in_flight_.fetch_sub(1, std::memory_order_acq_rel);
    if (tel_ != nullptr) {
      g_evicted_now_->Sub(1);
    }
    EndRunTel(st.trun, outcome, report.fuel_consumed);
    st.done.set_value(std::move(report));
    return;
  }
  wali::WaliProcess& proc = *st.lease;
  RunReport& report = st.report;
  proc.cpu_deadline_nanos.store(0, std::memory_order_release);
  proc.mem_budget_pages.store(0, std::memory_order_release);
  proc.syscall_budget.store(0, std::memory_order_release);
  proc.memory->SetGrowBudgetPages(0);
  // Drop the suspended interpreter state before the lease goes back to the
  // pool: the suspension pins the instance and the slot's exec buffers.
  st.cont.Discard();
  proc.pending_io.Reset();

  report.outcome = outcome;
  report.trap = wasm::TrapKind::kHostError;
  report.trap_message = std::move(message);
  report.mem_high_water_pages = proc.memory->high_water_pages();
  const std::vector<wali::SyscallDef>& defs = runtime_->syscalls();
  for (size_t id = 0; id < defs.size(); ++id) {
    uint64_t n = proc.trace.count(static_cast<uint32_t>(id));
    if (n > 0) {
      report.syscall_counts.emplace_back(defs[id].name, n);
      report.total_syscalls += n;
    }
  }
  report.wali_nanos = proc.trace.wali_nanos();
  report.kernel_nanos = proc.trace.kernel_nanos();

  // The guest DID run (partially): settle its real consumption (minus what
  // earlier parks already settled), and record the abandonment in the
  // admission-outcome counters.
  TenantUsage actual;
  actual.fuel = report.fuel_consumed - st.settled.fuel;
  actual.cpu_nanos = report.cpu_nanos - st.settled.cpu_nanos;
  actual.syscalls = report.total_syscalls - st.settled.syscalls;
  ledger_.SettleSlices(st.job.tenant, st.reserved, actual);
  TenantUsage delta;
  delta.runs = 1;
  delta.mem_high_water_pages = report.mem_high_water_pages;
  if (outcome == Outcome::kShed) {
    delta.shed = 1;
  } else if (outcome == Outcome::kBudget) {
    delta.budget_stops = 1;
  }
  ledger_.Charge(st.job.tenant, delta);
  in_flight_.fetch_sub(1, std::memory_order_acq_rel);
  if (tel_ != nullptr) {
    h_run_wall_->Observe(report.wall_nanos);
    h_blocked_->Observe(report.blocked_nanos);
  }
  EndRunTel(st.trun, outcome, report.fuel_consumed);
  st.done.set_value(std::move(report));
}

void Supervisor::ForgetTenant(const std::string& tenant) {
  std::vector<Task> dropped;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = queues_.find(tenant);
    if (it != queues_.end()) {
      while (!it->second.q.empty()) {
        dropped.push_back(std::move(it->second.q.front()));
        it->second.q.pop_front();
      }
      queues_.erase(it);
      for (auto rit = ring_.begin(); rit != ring_.end(); ++rit) {
        if (*rit == tenant) {
          ring_.erase(rit);
          break;
        }
      }
    }
  }
  for (Task& t : dropped) {
    if (g_queue_depth_ != nullptr) {
      g_queue_depth_->Sub(1);
    }
    // Spans close BEFORE the telemetry forget below so the rejected runs do
    // not resurrect the tenant's series row.
    EndRunTel(t.trun, Outcome::kRejected, 0);
    t.done.set_value(ControlReport(t.job, Outcome::kRejected,
                                   "rejected: tenant forgotten"));
  }
  // Ledger retention hook; with telemetry wired it also drops the tenant's
  // metric series and spans.
  ledger_.Forget(tenant);
}

}  // namespace host
