#include "src/host/instance_pool.h"

#include <utility>

#include "src/host/telemetry.h"

namespace host {

InstancePool::Lease& InstancePool::Lease::operator=(Lease&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    proc_ = std::move(other.proc_);
    recycled_ = other.recycled_;
    other.pool_ = nullptr;
    other.recycled_ = false;
  }
  return *this;
}

void InstancePool::Lease::Release() {
  if (pool_ != nullptr && proc_ != nullptr) {
    pool_->Return(std::move(proc_));
  }
  pool_ = nullptr;
  proc_.reset();
}

InstancePool::InstancePool(wali::WaliRuntime* runtime)
    : InstancePool(runtime, Options()) {}

InstancePool::InstancePool(wali::WaliRuntime* runtime, const Options& options)
    : runtime_(runtime), options_(options) {}

void InstancePool::SetTelemetry(Telemetry* tel) {
  if (tel == nullptr) {
    c_hits_ = c_misses_ = c_recycles_ = nullptr;
    return;
  }
  metrics::Registry& reg = tel->registry();
  c_hits_ = reg.GetCounter("instance_pool_hits_total");
  c_misses_ = reg.GetCounter("instance_pool_misses_total");
  c_recycles_ = reg.GetCounter("instance_pool_recycles_total");
}

common::StatusOr<InstancePool::Lease> InstancePool::Acquire(
    std::shared_ptr<const wasm::Module> module, std::vector<std::string> argv,
    std::vector<std::string> env) {
  std::unique_ptr<wali::WaliProcess> slot;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = idle_.find(module.get());
    if (it != idle_.end() && !it->second.empty()) {
      slot = std::move(it->second.back().proc);
      it->second.pop_back();
      --idle_count_;
      if (it->second.empty()) {
        idle_.erase(it);
      }
    }
  }

  bool recycled = false;
  if (slot != nullptr) {
    // Pass copies: a failed reset must not consume the caller's argv/env,
    // which the cold-build fallback below still needs.
    common::Status reset = runtime_->ResetProcess(*slot, module, argv, env);
    if (reset.ok()) {
      recycled = true;
    } else {
      // A slot that cannot be recycled is destroyed; fall back to a cold
      // build rather than failing the acquire.
      slot.reset();
    }
  }
  if (slot == nullptr) {
    ASSIGN_OR_RETURN(slot, runtime_->CreateProcess(module, std::move(argv),
                                                   std::move(env)));
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    if (recycled) {
      ++stats_.hits;
      ++stats_.resets;
    } else {
      ++stats_.misses;
    }
    ++leased_;
    if (leased_ > stats_.high_water) {
      stats_.high_water = leased_;
    }
  }
  if (recycled) {
    if (c_hits_ != nullptr) c_hits_->Inc();
    if (c_recycles_ != nullptr) c_recycles_->Inc();
  } else if (c_misses_ != nullptr) {
    c_misses_->Inc();
  }
  return Lease(this, std::move(slot), recycled);
}

void InstancePool::Return(std::unique_ptr<wali::WaliProcess> proc) {
  // Guests may have spawned instance-per-thread clones; the slab cannot be
  // recycled while any of them still runs.
  proc->JoinThreads();
  // Release the finished tenant's fds now, not at the next recycle: an idle
  // slot must not hold files locked or sockets half-open indefinitely.
  proc->CloseGuestFds();
  const wasm::Module* key = proc->module.get();
  const uint64_t mem_hw =
      proc->memory != nullptr ? proc->memory->high_water_pages() : 0;
  std::lock_guard<std::mutex> lock(mu_);
  if (leased_ > 0) {
    --leased_;
  }
  if (mem_hw > stats_.mem_high_water_pages) {
    stats_.mem_high_water_pages = mem_hw;
  }
  if (key == nullptr) {
    ++stats_.drops;
    return;  // mid-reset corpse; nothing worth keeping
  }
  std::vector<IdleSlot>& list = idle_[key];
  if (list.size() >= options_.max_idle_per_module) {
    ++stats_.drops;
    return;  // unique_ptr destroys the slot
  }
  list.push_back(IdleSlot{std::move(proc), ++idle_stamp_});
  ++idle_count_;
  TrimIdleLocked();
}

void InstancePool::TrimIdleLocked() {
  while (idle_count_ > options_.max_idle_total) {
    auto victim_key = idle_.end();
    size_t victim_index = 0;
    uint64_t oldest = ~0ULL;
    for (auto it = idle_.begin(); it != idle_.end(); ++it) {
      for (size_t i = 0; i < it->second.size(); ++i) {
        if (it->second[i].stamp < oldest) {
          oldest = it->second[i].stamp;
          victim_key = it;
          victim_index = i;
        }
      }
    }
    if (victim_key == idle_.end()) {
      return;
    }
    victim_key->second.erase(victim_key->second.begin() + victim_index);
    if (victim_key->second.empty()) {
      idle_.erase(victim_key);
    }
    --idle_count_;
    ++stats_.drops;
  }
}

InstancePool::Stats InstancePool::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s = stats_;
  s.idle = idle_count_;
  return s;
}

}  // namespace host
