// Telemetry: the host runtime's observability spine (ROADMAP "runtime
// signals": tier-up counters, tail-latency shedding, C10K async I/O all
// read from here).
//
// Three layers, one object:
//
//   * a metrics::Registry of process-wide counters / gauges / histograms.
//     Instrumented subsystems (Supervisor, IoReactor, TenantLedger,
//     InstancePool, ModuleCache) resolve their series once at setup and pay
//     one relaxed atomic op per event on the hot path.
//   * a bounded per-run trace-span ring: every guest job's lifecycle —
//     submit → dispatch → park → I/O complete → resume → finish (with the
//     terminal outcome: completed / trapped / shed / rejected / budget) —
//     as timestamped events. Timestamps are CALLER-provided (the supervisor
//     stamps them with its own clock), so under the manual-clock test
//     harness span ordering is fully deterministic.
//   * a per-tenant series table (submitted + per-outcome counts) with
//     bounded cardinality: tenant ids are interned up to Options::
//     max_tenants and overflow shares one "_other" row, and ForgetTenant
//     (driven by TenantLedger::Forget) drops a tenant's series AND spans,
//     so hostile tenant-id churn cannot grow telemetry without bound.
//
// Exports: Prometheus text, a JSON snapshot, a chrome://tracing JSON trace
// (walirun --metrics-dump / --trace-out), and the programmatic
// TakeSnapshot() the tests and benches assert against.
//
// Build gate: the HOST_TELEMETRY CMake option (default ON) compiles the
// interpreter's frame-entry profiling hooks out entirely and nulls the
// supervisor's telemetry wiring when OFF; this class itself always
// compiles, it just never receives events then.
#ifndef SRC_HOST_TELEMETRY_H_
#define SRC_HOST_TELEMETRY_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "src/common/metrics.h"
#include "src/wasm/module.h"

namespace host {

// How a submitted job left the supervisor. Lives here (not supervisor.h)
// because the span/series layer is keyed by it; supervisor.h re-exports it
// by including this header.
enum class Outcome : uint8_t {
  kCompleted = 0,  // ran to a normal end (fell off main or exited)
  kTrapped,        // ran and trapped (or could not be instantiated)
  kShed,           // deadline expired while queued; zero guest execution
  kRejected,       // bounded queue full (or supervisor shut down) at submit
  kBudget,         // tenant budget exhausted, before or during the run
};

inline constexpr size_t kNumOutcomes = 5;

const char* OutcomeName(Outcome o);

// One lifecycle point of one guest run. kFinish carries the outcome; every
// terminal path (completed, trapped, shed, rejected, budget) is a kFinish,
// so each run has exactly one and per-outcome counts sum to submissions.
enum class SpanEvent : uint8_t {
  kSubmit = 0,  // entered the tenant's admission queue (or bounced off it)
  kDispatch,    // first picked up by a worker
  kPark,        // suspended at a blocking syscall, moved off-worker
  kIoComplete,  // the backend completed the parked op (ready, not running)
  kResume,      // a worker picked the completed run back up
  kFinish,      // terminal: outcome + total fuel
  kEvict,       // parked state serialized + slab released (memory pressure)
  kRestore,     // snapshot deserialized into a fresh slab before resume
};

const char* SpanEventName(SpanEvent e);

struct TraceEvent {
  uint64_t run_id = 0;
  uint32_t tenant = 0;  // interned id; resolve via Snapshot::tenant_names
  SpanEvent event = SpanEvent::kSubmit;
  Outcome outcome = Outcome::kCompleted;  // meaningful at kFinish only
  int64_t t_nanos = 0;                    // caller's clock
  uint64_t fuel = 0;  // instructions executed so far (kPark / kFinish)
};

class Telemetry {
 public:
  struct Options {
    size_t span_capacity = 16384;  // events kept; oldest dropped beyond it
    size_t max_tenants = 1024;     // interned ids; overflow shares "_other"
  };

  Telemetry() : Telemetry(Options()) {}
  explicit Telemetry(const Options& options) : opts_(options) {}

  Telemetry(const Telemetry&) = delete;
  Telemetry& operator=(const Telemetry&) = delete;

  // Process-wide instance used by walirun; tests construct their own so
  // assertions never see another component's events.
  static Telemetry& Global();

  metrics::Registry& registry() { return registry_; }

  // ---- span lifecycle ----
  // All timestamps are caller-provided (the supervisor passes its scheduler
  // clock), never read from a wall clock here.

  struct RunHandle {
    uint64_t id = 0;
    uint32_t tenant = 0;
    bool valid() const { return id != 0; }
  };

  // Opens a run: interns the tenant, bumps its submitted count, records
  // kSubmit. The handle is carried in the supervisor's per-run state and
  // passed to every later event of the same run.
  RunHandle BeginRun(const std::string& tenant, int64_t t_nanos);

  // Records a mid-life event (kDispatch / kPark / kIoComplete / kResume).
  void Record(RunHandle run, SpanEvent event, int64_t t_nanos,
              uint64_t fuel = 0);

  // Closes a run: records kFinish and bumps the tenant's per-outcome count.
  // Called exactly once per BeginRun, on every terminal path.
  void EndRun(RunHandle run, Outcome outcome, int64_t t_nanos,
              uint64_t fuel = 0);

  // Retention hook (TenantLedger::Forget calls this): drops the tenant's
  // interned id, series row, and every span it still has in the ring. Runs
  // of that tenant still in flight will re-create a fresh row when they
  // finish — same semantics as the ledger's Forget-while-parked behavior.
  void ForgetTenant(const std::string& tenant);

  // Registers a module whose per-function profile counters
  // (wasm::Module::func_profile, filled by the interpreter's frame-entry
  // hooks) should appear in exports and snapshots. Weakly held: an evicted
  // module simply stops being reported.
  void RegisterModule(const std::string& name,
                      std::weak_ptr<const wasm::Module> module);

  // ---- export ----

  struct TenantSeries {
    uint64_t submitted = 0;
    uint64_t outcomes[kNumOutcomes] = {0};
  };

  // One hot function from a registered module's profile (the tier-up
  // signal: a baseline JIT compiles the top of this list first).
  struct HotFunction {
    std::string module;
    std::string func;
    uint64_t entries = 0;
    uint64_t fuel = 0;
  };

  // One function the baseline-JIT tier compiled, from a registered module's
  // per-function slots (the serve-mode "top tiered" list).
  struct TieredFunction {
    std::string module;
    std::string func;
    uint64_t heat = 0;    // frame entries + loop back-edges observed
    uint64_t deopts = 0;  // OSR exits from this function's compiled code
  };

  struct Snapshot {
    metrics::Registry::Snapshot registry;
    std::vector<std::pair<std::string, TenantSeries>> tenants;  // by name
    std::vector<TraceEvent> spans;  // oldest -> newest
    std::map<uint32_t, std::string> tenant_names;  // span id -> tenant
    uint64_t spans_dropped = 0;
    std::vector<HotFunction> hot_functions;  // sorted by entries, desc
    std::vector<TieredFunction> tiered_functions;  // sorted by heat, desc
  };

  Snapshot TakeSnapshot() const;

  // Prometheus text exposition format (counters, gauges, cumulative-bucket
  // histograms, per-tenant series, per-function profile).
  std::string PrometheusText() const;
  // The same snapshot as one JSON object (machine-readable dump).
  std::string JsonText() const;
  // chrome://tracing / Perfetto-compatible trace: per-run "X" slices
  // (queued / run / blocked / resume-wait) reconstructed from the span
  // ring, grouped by tenant (pid) and run (tid).
  std::string ChromeTraceJson() const;

  // Writes `text` to `path` (truncating). False on I/O failure.
  static bool WriteFile(const std::string& path, const std::string& text);

 private:
  uint32_t InternTenantLocked(const std::string& tenant);
  void PushEventLocked(TraceEvent ev);

  Options opts_;
  metrics::Registry registry_;  // has its own lock

  mutable std::mutex mu_;  // guards everything below
  uint64_t next_run_id_ = 1;
  uint32_t next_tenant_id_ = 1;  // 0 is the "_other" overflow row
  std::map<std::string, uint32_t> tenant_ids_;
  std::map<uint32_t, std::string> tenant_names_;
  std::map<uint32_t, TenantSeries> series_;
  std::deque<TraceEvent> spans_;
  uint64_t spans_dropped_ = 0;
  std::vector<std::pair<std::string, std::weak_ptr<const wasm::Module>>>
      modules_;
};

}  // namespace host

#endif  // SRC_HOST_TELEMETRY_H_
