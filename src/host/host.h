// Umbrella header for the multi-tenant hosting subsystem (layered above the
// WALI thin kernel interface; see docs/ARCHITECTURE.md).
//
// Quickstart:
//   wasm::Linker linker;
//   wali::WaliRuntime runtime(&linker);
//   host::ModuleCache cache;
//   auto module = cache.Load(bytes);                       // decode once
//   host::Supervisor sup(&runtime, {.workers = 8});
//   auto fut = sup.Submit({*module, {"app"}, {}});         // run many times
//   host::RunReport report = fut.get();
#ifndef SRC_HOST_HOST_H_
#define SRC_HOST_HOST_H_

#include "src/host/instance_pool.h"  // IWYU pragma: export
#include "src/host/io_reactor.h"     // IWYU pragma: export
#include "src/host/module_cache.h"   // IWYU pragma: export
#include "src/host/supervisor.h"     // IWYU pragma: export
#include "src/host/tenant_ledger.h"  // IWYU pragma: export

#endif  // SRC_HOST_HOST_H_
