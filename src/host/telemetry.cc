#include "src/host/telemetry.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace host {

const char* OutcomeName(Outcome o) {
  switch (o) {
    case Outcome::kCompleted: return "completed";
    case Outcome::kTrapped: return "trapped";
    case Outcome::kShed: return "shed";
    case Outcome::kRejected: return "rejected";
    case Outcome::kBudget: return "budget";
  }
  return "<bad>";
}

const char* SpanEventName(SpanEvent e) {
  switch (e) {
    case SpanEvent::kSubmit: return "submit";
    case SpanEvent::kDispatch: return "dispatch";
    case SpanEvent::kPark: return "park";
    case SpanEvent::kIoComplete: return "io_complete";
    case SpanEvent::kResume: return "resume";
    case SpanEvent::kFinish: return "finish";
    case SpanEvent::kEvict: return "evict";
    case SpanEvent::kRestore: return "restore";
  }
  return "<bad>";
}

namespace {

// Escapes a string for use inside a JSON string literal or a Prometheus
// label value (the two formats share the \\ \" \n escapes we need).
std::string EscapeString(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// Metric family name: everything before the '{' that starts embedded labels.
std::string BaseName(const std::string& name) {
  size_t brace = name.find('{');
  return brace == std::string::npos ? name : name.substr(0, brace);
}

// Function-space name for local function `i` of `m` (imports come first).
std::string FuncDisplayName(const wasm::Module& m, size_t i) {
  const std::string& dbg = m.functions[i].debug_name;
  if (!dbg.empty()) {
    return dbg;
  }
  return "f" + std::to_string(m.num_imported_funcs + i);
}

}  // namespace

Telemetry& Telemetry::Global() {
  static Telemetry* instance = new Telemetry();
  return *instance;
}

uint32_t Telemetry::InternTenantLocked(const std::string& tenant) {
  auto it = tenant_ids_.find(tenant);
  if (it != tenant_ids_.end()) {
    return it->second;
  }
  if (tenant_ids_.size() >= opts_.max_tenants) {
    // Cardinality bound: every tenant beyond the cap shares the overflow
    // row. Its counts stay exact in aggregate, just unattributed.
    if (tenant_names_.find(0) == tenant_names_.end()) {
      tenant_names_[0] = "_other";
    }
    return 0;
  }
  uint32_t id = next_tenant_id_++;
  tenant_ids_[tenant] = id;
  tenant_names_[id] = tenant;
  return id;
}

void Telemetry::PushEventLocked(TraceEvent ev) {
  if (opts_.span_capacity == 0) {
    ++spans_dropped_;
    return;
  }
  while (spans_.size() >= opts_.span_capacity) {
    spans_.pop_front();
    ++spans_dropped_;
  }
  spans_.push_back(ev);
}

Telemetry::RunHandle Telemetry::BeginRun(const std::string& tenant,
                                         int64_t t_nanos) {
  std::lock_guard<std::mutex> lock(mu_);
  RunHandle h;
  h.id = next_run_id_++;
  h.tenant = InternTenantLocked(tenant);
  series_[h.tenant].submitted += 1;
  TraceEvent ev;
  ev.run_id = h.id;
  ev.tenant = h.tenant;
  ev.event = SpanEvent::kSubmit;
  ev.t_nanos = t_nanos;
  PushEventLocked(ev);
  return h;
}

void Telemetry::Record(RunHandle run, SpanEvent event, int64_t t_nanos,
                       uint64_t fuel) {
  if (!run.valid()) {
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  TraceEvent ev;
  ev.run_id = run.id;
  ev.tenant = run.tenant;
  ev.event = event;
  ev.t_nanos = t_nanos;
  ev.fuel = fuel;
  PushEventLocked(ev);
}

void Telemetry::EndRun(RunHandle run, Outcome outcome, int64_t t_nanos,
                       uint64_t fuel) {
  if (!run.valid()) {
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  // A forgotten tenant's in-flight run re-creates its series row here with
  // only the finish visible — the submit was counted in the dropped row.
  series_[run.tenant].outcomes[static_cast<size_t>(outcome)] += 1;
  TraceEvent ev;
  ev.run_id = run.id;
  ev.tenant = run.tenant;
  ev.event = SpanEvent::kFinish;
  ev.outcome = outcome;
  ev.t_nanos = t_nanos;
  ev.fuel = fuel;
  PushEventLocked(ev);
}

void Telemetry::ForgetTenant(const std::string& tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tenant_ids_.find(tenant);
  if (it == tenant_ids_.end()) {
    return;
  }
  const uint32_t id = it->second;
  tenant_ids_.erase(it);
  tenant_names_.erase(id);
  series_.erase(id);
  spans_.erase(std::remove_if(
                   spans_.begin(), spans_.end(),
                   [id](const TraceEvent& ev) { return ev.tenant == id; }),
               spans_.end());
}

void Telemetry::RegisterModule(const std::string& name,
                               std::weak_ptr<const wasm::Module> module) {
  std::lock_guard<std::mutex> lock(mu_);
  modules_.emplace_back(name, std::move(module));
}

Telemetry::Snapshot Telemetry::TakeSnapshot() const {
  Snapshot s;
  s.registry = registry_.TakeSnapshot();
  std::lock_guard<std::mutex> lock(mu_);
  s.tenant_names = tenant_names_;
  for (const auto& [id, series] : series_) {
    auto nit = tenant_names_.find(id);
    std::string name = nit != tenant_names_.end()
                           ? nit->second
                           : "_tenant" + std::to_string(id);
    s.tenants.emplace_back(std::move(name), series);
  }
  s.spans.assign(spans_.begin(), spans_.end());
  s.spans_dropped = spans_dropped_;
  for (const auto& [mod_name, weak] : modules_) {
    std::shared_ptr<const wasm::Module> m = weak.lock();
    if (m == nullptr || m->func_profile == nullptr) {
      continue;
    }
    const wasm::FuncProfileSlot* slots = m->func_profile.get();
    for (size_t i = 0; i < m->functions.size(); ++i) {
      uint64_t entries = slots[i].entries.load(std::memory_order_relaxed);
      if (entries == 0) {
        continue;
      }
      HotFunction hf;
      hf.module = mod_name;
      hf.func = FuncDisplayName(*m, i);
      hf.entries = entries;
      hf.fuel = slots[i].fuel.load(std::memory_order_relaxed);
      s.hot_functions.push_back(std::move(hf));
    }
  }
  std::sort(s.hot_functions.begin(), s.hot_functions.end(),
            [](const HotFunction& a, const HotFunction& b) {
              if (a.entries != b.entries) return a.entries > b.entries;
              if (a.module != b.module) return a.module < b.module;
              return a.func < b.func;
            });
  // Baseline-JIT tier counters, aggregated over the registered modules'
  // JitModuleState and synthesized into the registry snapshot so they ride
  // the existing Prometheus/JSON exporters. Kept out of the live registry:
  // the interpreter's enter-sites bump Module-level atomics so the hot path
  // never touches a host-layer object, and snapshot time is when the two
  // worlds meet. Absent entirely when no registered module carries tier
  // state (interpreter-only build or none registered).
  {
    uint64_t compiles = 0, failures = 0, tierups = 0, osr_exits = 0;
    uint64_t nanos_sum = 0;
    uint64_t buckets[wasm::JitModuleState::kCompileNanosBuckets] = {};
    bool any = false;
    for (const auto& [mod_name, weak] : modules_) {
      std::shared_ptr<const wasm::Module> m = weak.lock();
      if (m == nullptr || m->jit == nullptr) {
        continue;
      }
      any = true;
      const wasm::JitModuleState& js = *m->jit;
      compiles += js.compiles.load(std::memory_order_relaxed);
      failures += js.compile_failures.load(std::memory_order_relaxed);
      tierups += js.tierups.load(std::memory_order_relaxed);
      osr_exits += js.osr_exits.load(std::memory_order_relaxed);
      nanos_sum += js.compile_nanos_sum.load(std::memory_order_relaxed);
      for (size_t b = 0; b < wasm::JitModuleState::kCompileNanosBuckets; ++b) {
        buckets[b] += js.compile_nanos_bucket[b].load(std::memory_order_relaxed);
      }
      for (size_t i = 0; i < m->functions.size(); ++i) {
        const wasm::JitFuncSlot& slot = m->jit->slots[i];
        if (slot.state.load(std::memory_order_relaxed) !=
            wasm::JitFuncSlot::kCompiled) {
          continue;
        }
        TieredFunction tf;
        tf.module = mod_name;
        tf.func = FuncDisplayName(*m, i);
        tf.heat = slot.heat.load(std::memory_order_relaxed);
        tf.deopts = slot.deopts.load(std::memory_order_relaxed);
        s.tiered_functions.push_back(std::move(tf));
      }
    }
    if (any) {
      s.registry.counters.emplace_back("jit_compiles_total", compiles);
      s.registry.counters.emplace_back("jit_compile_failures_total", failures);
      s.registry.counters.emplace_back("jit_tierups_total", tierups);
      s.registry.counters.emplace_back("jit_osr_exits_total", osr_exits);
      std::sort(s.registry.counters.begin(), s.registry.counters.end());
      metrics::Registry::HistogramSnapshot hs;
      hs.name = "jit_compile_nanos";
      hs.bounds = metrics::LatencyBoundsNanos();
      uint64_t total = 0;
      for (size_t b = 0; b < wasm::JitModuleState::kCompileNanosBuckets; ++b) {
        hs.buckets.push_back(buckets[b]);
        total += buckets[b];
      }
      hs.count = total;
      hs.sum = static_cast<int64_t>(nanos_sum);
      s.registry.histograms.push_back(std::move(hs));
      std::sort(s.registry.histograms.begin(), s.registry.histograms.end(),
                [](const metrics::Registry::HistogramSnapshot& a,
                   const metrics::Registry::HistogramSnapshot& b) {
                  return a.name < b.name;
                });
      std::sort(s.tiered_functions.begin(), s.tiered_functions.end(),
                [](const TieredFunction& a, const TieredFunction& b) {
                  if (a.heat != b.heat) return a.heat > b.heat;
                  if (a.module != b.module) return a.module < b.module;
                  return a.func < b.func;
                });
    }
  }
  return s;
}

std::string Telemetry::PrometheusText() const {
  Snapshot s = TakeSnapshot();
  std::ostringstream out;
  std::string last_family;
  auto type_line = [&](const std::string& name, const char* type) {
    std::string family = BaseName(name);
    if (family != last_family) {
      out << "# TYPE " << family << " " << type << "\n";
      last_family = family;
    }
  };
  for (const auto& [name, value] : s.registry.counters) {
    type_line(name, "counter");
    out << name << " " << value << "\n";
  }
  for (const auto& [name, value] : s.registry.gauges) {
    type_line(name, "gauge");
    out << name << " " << value << "\n";
  }
  for (const metrics::Registry::HistogramSnapshot& h : s.registry.histograms) {
    type_line(h.name, "histogram");
    uint64_t cum = 0;
    for (size_t i = 0; i < h.bounds.size(); ++i) {
      cum += h.buckets[i];
      out << h.name << "_bucket{le=\"" << h.bounds[i] << "\"} " << cum << "\n";
    }
    out << h.name << "_bucket{le=\"+Inf\"} " << h.count << "\n";
    out << h.name << "_sum " << h.sum << "\n";
    out << h.name << "_count " << h.count << "\n";
  }
  if (!s.tenants.empty()) {
    out << "# TYPE host_tenant_jobs_submitted_total counter\n";
    for (const auto& [tenant, series] : s.tenants) {
      out << "host_tenant_jobs_submitted_total{tenant=\""
          << EscapeString(tenant) << "\"} " << series.submitted << "\n";
    }
    out << "# TYPE host_tenant_jobs_total counter\n";
    for (const auto& [tenant, series] : s.tenants) {
      for (size_t o = 0; o < kNumOutcomes; ++o) {
        if (series.outcomes[o] == 0) {
          continue;
        }
        out << "host_tenant_jobs_total{tenant=\"" << EscapeString(tenant)
            << "\",outcome=\"" << OutcomeName(static_cast<Outcome>(o))
            << "\"} " << series.outcomes[o] << "\n";
      }
    }
  }
  if (!s.hot_functions.empty()) {
    out << "# TYPE wasm_func_entries_total counter\n";
    for (const HotFunction& hf : s.hot_functions) {
      out << "wasm_func_entries_total{module=\"" << EscapeString(hf.module)
          << "\",func=\"" << EscapeString(hf.func) << "\"} " << hf.entries
          << "\n";
    }
    out << "# TYPE wasm_func_fuel_total counter\n";
    for (const HotFunction& hf : s.hot_functions) {
      out << "wasm_func_fuel_total{module=\"" << EscapeString(hf.module)
          << "\",func=\"" << EscapeString(hf.func) << "\"} " << hf.fuel
          << "\n";
    }
  }
  out << "# TYPE host_trace_spans_dropped_total counter\n";
  out << "host_trace_spans_dropped_total " << s.spans_dropped << "\n";
  return out.str();
}

std::string Telemetry::JsonText() const {
  Snapshot s = TakeSnapshot();
  std::ostringstream out;
  out << "{";
  out << "\"counters\":{";
  for (size_t i = 0; i < s.registry.counters.size(); ++i) {
    const auto& [name, value] = s.registry.counters[i];
    out << (i != 0 ? "," : "") << "\"" << EscapeString(name) << "\":" << value;
  }
  out << "},\"gauges\":{";
  for (size_t i = 0; i < s.registry.gauges.size(); ++i) {
    const auto& [name, value] = s.registry.gauges[i];
    out << (i != 0 ? "," : "") << "\"" << EscapeString(name) << "\":" << value;
  }
  out << "},\"histograms\":{";
  for (size_t i = 0; i < s.registry.histograms.size(); ++i) {
    const metrics::Registry::HistogramSnapshot& h = s.registry.histograms[i];
    out << (i != 0 ? "," : "") << "\"" << EscapeString(h.name)
        << "\":{\"bounds\":[";
    for (size_t j = 0; j < h.bounds.size(); ++j) {
      out << (j != 0 ? "," : "") << h.bounds[j];
    }
    out << "],\"buckets\":[";
    for (size_t j = 0; j < h.buckets.size(); ++j) {
      out << (j != 0 ? "," : "") << h.buckets[j];
    }
    out << "],\"count\":" << h.count << ",\"sum\":" << h.sum << "}";
  }
  out << "},\"tenants\":{";
  for (size_t i = 0; i < s.tenants.size(); ++i) {
    const auto& [tenant, series] = s.tenants[i];
    out << (i != 0 ? "," : "") << "\"" << EscapeString(tenant)
        << "\":{\"submitted\":" << series.submitted;
    for (size_t o = 0; o < kNumOutcomes; ++o) {
      out << ",\"" << OutcomeName(static_cast<Outcome>(o))
          << "\":" << series.outcomes[o];
    }
    out << "}";
  }
  out << "},\"hot_functions\":[";
  for (size_t i = 0; i < s.hot_functions.size(); ++i) {
    const HotFunction& hf = s.hot_functions[i];
    out << (i != 0 ? "," : "") << "{\"module\":\"" << EscapeString(hf.module)
        << "\",\"func\":\"" << EscapeString(hf.func)
        << "\",\"entries\":" << hf.entries << ",\"fuel\":" << hf.fuel << "}";
  }
  out << "],\"spans\":" << s.spans.size()
      << ",\"spans_dropped\":" << s.spans_dropped << "}";
  return out.str();
}

std::string Telemetry::ChromeTraceJson() const {
  Snapshot s = TakeSnapshot();
  std::ostringstream out;
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto slice = [&](const char* name, uint32_t tenant, uint64_t run_id,
                   int64_t t0, int64_t t1, const std::string& args) {
    if (!first) out << ",";
    first = false;
    out << "{\"name\":\"" << name << "\",\"ph\":\"X\",\"pid\":" << tenant
        << ",\"tid\":" << run_id << ",\"ts\":" << t0 / 1000.0
        << ",\"dur\":" << (t1 - t0) / 1000.0;
    if (!args.empty()) {
      out << ",\"args\":{" << args << "}";
    }
    out << "}";
  };
  for (const auto& [id, name] : s.tenant_names) {
    if (!first) out << ",";
    first = false;
    out << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << id
        << ",\"args\":{\"name\":\"tenant:" << EscapeString(name) << "\"}}";
  }
  // Reconstruct per-run phase slices by replaying each run's events in ring
  // (i.e. emission) order. Runs whose early events were dropped by the
  // bounded ring start at the first surviving event.
  struct RunCursor {
    int64_t mark = 0;       // start of the phase currently open
    SpanEvent last = SpanEvent::kSubmit;
    bool seen = false;
  };
  std::map<uint64_t, RunCursor> runs;
  for (const TraceEvent& ev : s.spans) {
    RunCursor& rc = runs[ev.run_id];
    if (!rc.seen) {
      rc.seen = true;
      rc.mark = ev.t_nanos;
      rc.last = ev.event;
      continue;
    }
    const char* phase = nullptr;
    switch (ev.event) {
      case SpanEvent::kDispatch: phase = "queued"; break;
      case SpanEvent::kPark: phase = "run"; break;
      case SpanEvent::kIoComplete: phase = "blocked"; break;
      case SpanEvent::kResume: phase = "resume-wait"; break;
      // Evict closes the in-memory parked phase; everything until the
      // restore (which spans the remaining blocked time plus the decode)
      // shows as "evicted".
      case SpanEvent::kEvict: phase = "blocked"; break;
      case SpanEvent::kRestore: phase = "evicted"; break;
      case SpanEvent::kFinish:
        // A run shed/rejected out of the queue finishes from kSubmit.
        phase = rc.last == SpanEvent::kSubmit ? "queued" : "run";
        break;
      case SpanEvent::kSubmit: break;  // only ever first
    }
    if (phase != nullptr) {
      std::string args;
      if (ev.event == SpanEvent::kFinish) {
        args = "\"outcome\":\"" + std::string(OutcomeName(ev.outcome)) +
               "\",\"fuel\":" + std::to_string(ev.fuel);
      }
      slice(phase, ev.tenant, ev.run_id, rc.mark, ev.t_nanos, args);
    }
    rc.mark = ev.t_nanos;
    rc.last = ev.event;
  }
  out << "]}";
  return out.str();
}

bool Telemetry::WriteFile(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return false;
  }
  out.write(text.data(), static_cast<std::streamsize>(text.size()));
  return out.good();
}

}  // namespace host
