// IoReactor: the completion loop behind the supervisor's async syscall
// offload (ROADMAP "async syscall batching").
//
// When a guest enters a blocking-capable syscall, the WALI layer parks the
// run (wasm::TrapKind::kSyscallPending, see src/wali/async.h) and the
// supervisor registers the operation here instead of letting a worker
// thread block 1:1 with the guest. The backend watches the readiness class
// (fd readable/writable, or a timer) and delivers exactly one completion
// per cookie; the supervisor then re-admits the parked job and materializes
// the syscall result into the suspended guest frame.
//
// The API is submit/complete in the io_uring style — cookie-keyed ops, a
// single completion sink, cancellation — so a real io_uring backend can
// slot in behind the same seam later. Two implementations live here:
//
//   IoReactor     poll(2)/self-pipe loop on the monotonic clock; the
//                 production backend.
//   FakeIoBackend manual clock + scriptable completions, all delivered
//                 synchronously on the test's thread in deterministic
//                 order. This is the seam the scheduler-level tests drive
//                 to interleave completions, cancellations, deadline sheds
//                 of parked guests, and budget exhaustion mid-park without
//                 touching real I/O or real time.
#ifndef SRC_HOST_IO_REACTOR_H_
#define SRC_HOST_IO_REACTOR_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <thread>
#include <vector>

#include "src/common/metrics.h"
#include "src/wali/async.h"

namespace host {

class Telemetry;

// Shared metrics wiring for IoBackend implementations: submit/complete/
// cancel counters plus the in-flight gauge (`io_*` series, labeled with the
// backend's identity, e.g. io_submits_total{io_backend="poll"}). Unwired
// (all null) until Wire is called; the hooks are no-ops then. Each pointer
// is checked individually — a partially-wired or mid-detach backend (Wire
// raced with a hot completion path) must degrade to skipped samples, never
// a null dereference.
struct IoBackendMetrics {
  metrics::Counter* submits = nullptr;
  metrics::Counter* completes = nullptr;
  metrics::Counter* cancels = nullptr;
  metrics::Gauge* in_flight = nullptr;

  // `backend` becomes the io_backend label value on every series
  // ("poll", "io_uring", "fake"). Null `tel` detaches.
  void Wire(Telemetry* tel, const char* backend);
  void OnSubmit() {
    if (submits != nullptr) submits->Inc();
    if (in_flight != nullptr) in_flight->Add(1);
  }
  void OnComplete() {
    if (completes != nullptr) completes->Inc();
    if (in_flight != nullptr) in_flight->Sub(1);
  }
  void OnCancel() {
    if (cancels != nullptr) cancels->Inc();
    if (in_flight != nullptr) in_flight->Sub(1);
  }
};

// One completion, delivered exactly once per submitted cookie (unless
// Cancel wins the race).
struct IoCompletion {
  enum class Status : uint8_t {
    kReady = 0,  // the readiness class was satisfied
    kTimedOut,   // the op's own timeout (or a sleep's duration) elapsed
    kError,      // the backend cannot wait on this op; value = -errno
  };

  Status status = Status::kReady;
  int64_t value = 0;
  // When true, `value` IS the syscall result and any retry closure is
  // skipped. Real backends leave this false (the retry re-issues the now-
  // ready syscall); fakes use it to script exact results deterministically.
  bool has_value = false;

  static IoCompletion Ready() { return IoCompletion{}; }
  static IoCompletion TimedOut() {
    IoCompletion c;
    c.status = Status::kTimedOut;
    return c;
  }
  static IoCompletion Result(int64_t v) {
    IoCompletion c;
    c.value = v;
    c.has_value = true;
    return c;
  }
  // kError with value = -errno but has_value left false: the supervisor's
  // materialization order surfaces `value` for kError directly, and leaving
  // has_value false keeps scripted-result semantics distinct.
  static IoCompletion Error(int64_t v) {
    IoCompletion c;
    c.status = Status::kError;
    c.value = v;
    return c;
  }
};

// Completion-loop seam. Completions may be delivered from any thread (the
// reactor's loop, or the test thread driving a fake) and are always
// delivered OUTSIDE the backend's internal lock, so the handler may call
// back into Submit/Cancel and may take its own locks.
class IoBackend {
 public:
  using CompletionFn = std::function<void(uint64_t cookie, const IoCompletion&)>;

  virtual ~IoBackend() = default;

  // Installs (or, with a null fn, detaches) the completion sink. Set it
  // before the first Submit. Detaching blocks until any delivery already in
  // flight has returned, so after SetCompletionHandler(nullptr) the old
  // sink will never be entered again — callers rely on this to tear down
  // safely while the backend lives on.
  virtual void SetCompletionHandler(CompletionFn fn) = 0;

  // Registers `op` under a caller-chosen cookie (callers key their parked
  // state by cookie BEFORE submitting, so a completion can never arrive for
  // an unknown-but-live op).
  virtual void Submit(uint64_t cookie, const wali::IoOp& op) = 0;

  // True: the op was dropped and its completion will never be delivered.
  // False: unknown cookie — the completion was already delivered (or never
  // submitted); the caller must be ready to ignore it.
  virtual bool Cancel(uint64_t cookie) = 0;

  // The clock ops' timeouts are measured on. Manual in fakes.
  virtual int64_t NowNanos() const = 0;

  // Ops submitted and not yet completed/cancelled.
  virtual size_t pending() const = 0;
};

// Production backend: one reactor thread multiplexing every parked op over
// poll(2), woken through a self-pipe on submit/cancel/shutdown, with sleep
// and timeout deadlines kept in the same table. fd errors (POLLERR/POLLHUP/
// POLLNVAL) complete as kReady — the retry re-issues the real syscall and
// surfaces the kernel's own answer (EOF, EPIPE, EBADF, ...).
class IoReactor : public IoBackend {
 public:
  IoReactor();
  ~IoReactor() override;  // cancels everything and joins the loop

  IoReactor(const IoReactor&) = delete;
  IoReactor& operator=(const IoReactor&) = delete;

  void SetCompletionHandler(CompletionFn fn) override;
  void Submit(uint64_t cookie, const wali::IoOp& op) override;
  bool Cancel(uint64_t cookie) override;
  int64_t NowNanos() const override;
  size_t pending() const override;

  // Wires io_* counters/gauge into `tel`'s registry. Call before the first
  // Submit; null detaches.
  void SetTelemetry(Telemetry* tel) { tm_.Wire(tel, "poll"); }

 private:
  struct Op {
    wali::IoOp op;
    int64_t deadline_nanos = -1;  // absolute; -1 = none
  };

  void Loop();
  void Wake();
  void Deliver(uint64_t cookie, const IoCompletion& completion);

  // Guards complete_ and is held across every handler invocation, so
  // SetCompletionHandler(nullptr) cannot return mid-delivery. Never taken
  // while holding mu_ (and vice versa).
  std::mutex deliver_mu_;
  CompletionFn complete_;
  mutable std::mutex mu_;
  std::map<uint64_t, Op> ops_;
  int wake_fds_[2] = {-1, -1};  // [0] read end polled by the loop
  std::atomic<bool> stopping_{false};
  std::thread loop_;
  IoBackendMetrics tm_;
};

// Deterministic test backend: time only moves when the test advances it,
// fd readiness only happens when the test scripts it, and everything due
// at once completes in (deadline, cookie) order on the calling thread.
class FakeIoBackend : public IoBackend {
 public:
  void SetCompletionHandler(CompletionFn fn) override;
  void Submit(uint64_t cookie, const wali::IoOp& op) override;
  bool Cancel(uint64_t cookie) override;
  int64_t NowNanos() const override;
  size_t pending() const override;

  // Moves the manual clock and synchronously delivers every sleep/timeout
  // completion that became due, in (deadline, cookie) order.
  void AdvanceTo(int64_t now_nanos);
  void AdvanceBy(int64_t delta_nanos) { AdvanceTo(NowNanos() + delta_nanos); }

  // Scripts a completion for one pending op (readiness, or an exact result
  // via IoCompletion::Result). False when the cookie is not pending.
  bool Complete(uint64_t cookie, const IoCompletion& completion);
  bool CompleteReady(uint64_t cookie) { return Complete(cookie, IoCompletion::Ready()); }
  bool CompleteWithResult(uint64_t cookie, int64_t result) {
    return Complete(cookie, IoCompletion::Result(result));
  }

  // Fires the completion handler for a cookie the backend no longer (or
  // never) tracked — the "completion arrives after the guest was shed"
  // fault injection. The supervisor must absorb it as an orphan.
  void ForceComplete(uint64_t cookie, const IoCompletion& completion);

  // Pending cookies in submission order, plus the op submitted under one.
  std::vector<uint64_t> PendingCookies() const;
  bool LookupOp(uint64_t cookie, wali::IoOp* out) const;

  // Same contract as IoReactor::SetTelemetry: tests assert the io_* series
  // against deterministic scripted completions.
  void SetTelemetry(Telemetry* tel) { tm_.Wire(tel, "fake"); }

 private:
  struct Op {
    wali::IoOp op;
    int64_t deadline_nanos = -1;
    uint64_t seq = 0;  // submission order
  };

  void Deliver(uint64_t cookie, const IoCompletion& completion);

  std::mutex deliver_mu_;  // same contract as IoReactor::deliver_mu_
  CompletionFn complete_;
  mutable std::mutex mu_;
  std::map<uint64_t, Op> ops_;
  int64_t now_nanos_ = 0;
  uint64_t seq_ = 0;
  IoBackendMetrics tm_;
};

}  // namespace host

#endif  // SRC_HOST_IO_REACTOR_H_
