#include "src/host/tenant_ledger.h"

#include "src/host/telemetry.h"

namespace host {

const char* TenantLedger::VerdictName(Verdict v) {
  switch (v) {
    case Verdict::kAdmit: return "admit";
    case Verdict::kFuel: return "fuel";
    case Verdict::kCpu: return "cpu";
    case Verdict::kSyscalls: return "syscalls";
  }
  return "<bad>";
}

void TenantLedger::SetTelemetry(Telemetry* tel) {
  tel_ = tel;
  if (tel == nullptr) {
    for (metrics::Counter*& c : c_denied_) {
      c = nullptr;
    }
    return;
  }
  metrics::Registry& reg = tel->registry();
  for (Verdict v : {Verdict::kFuel, Verdict::kCpu, Verdict::kSyscalls}) {
    c_denied_[static_cast<size_t>(v)] = reg.GetCounter(
        std::string("ledger_denials_total{resource=\"") + VerdictName(v) +
        "\"}");
  }
}

void TenantLedger::SetBudget(const std::string& tenant,
                             const TenantBudget& budget) {
  std::lock_guard<std::mutex> lock(mu_);
  entries_[tenant].budget = budget;
}

TenantBudget TenantLedger::budget(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(tenant);
  return it == entries_.end() ? TenantBudget{} : it->second.budget;
}

void TenantLedger::Charge(const std::string& tenant, const TenantUsage& delta) {
  std::lock_guard<std::mutex> lock(mu_);
  TenantUsage& u = entries_[tenant].usage;
  u.runs += delta.runs;
  u.fuel += delta.fuel;
  u.cpu_nanos += delta.cpu_nanos;
  u.syscalls += delta.syscalls;
  if (delta.mem_high_water_pages > u.mem_high_water_pages) {
    u.mem_high_water_pages = delta.mem_high_water_pages;
  }
  u.shed += delta.shed;
  u.rejected += delta.rejected;
  u.budget_stops += delta.budget_stops;
  u.host_errors += delta.host_errors;
}

TenantUsage TenantLedger::usage(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(tenant);
  return it == entries_.end() ? TenantUsage{} : it->second.usage;
}

TenantLedger::Verdict TenantLedger::Admit(const std::string& tenant) const {
  Verdict verdict = Verdict::kAdmit;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(tenant);
    if (it == entries_.end()) {
      return Verdict::kAdmit;
    }
    const TenantBudget& b = it->second.budget;
    const TenantUsage& u = it->second.usage;
    if (b.max_fuel != 0 && u.fuel >= b.max_fuel) {
      verdict = Verdict::kFuel;
    } else if (b.max_cpu_nanos != 0 && u.cpu_nanos >= b.max_cpu_nanos) {
      verdict = Verdict::kCpu;
    } else if (b.max_syscalls != 0 && u.syscalls >= b.max_syscalls) {
      verdict = Verdict::kSyscalls;
    }
  }
  if (verdict != Verdict::kAdmit &&
      c_denied_[static_cast<size_t>(verdict)] != nullptr) {
    c_denied_[static_cast<size_t>(verdict)]->Inc();
  }
  return verdict;
}

namespace {

// Unreserved remainder of one budget dimension: limit minus consumed minus
// live reservations, floored at the 1-unit slice that means "exhausted but
// still distinguishable from unlimited (0)".
uint64_t UnreservedOr1(uint64_t limit, uint64_t used, uint64_t reserved) {
  return used + reserved < limit ? limit - used - reserved : 1;
}

}  // namespace

uint64_t TenantLedger::RemainingFuel(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(tenant);
  if (it == entries_.end() || it->second.budget.max_fuel == 0) {
    return 0;  // unlimited
  }
  return UnreservedOr1(it->second.budget.max_fuel, it->second.usage.fuel,
                       it->second.reserved.fuel);
}

int64_t TenantLedger::RemainingCpuNanos(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(tenant);
  if (it == entries_.end() || it->second.budget.max_cpu_nanos == 0) {
    return 0;  // unlimited
  }
  return static_cast<int64_t>(UnreservedOr1(
      static_cast<uint64_t>(it->second.budget.max_cpu_nanos),
      static_cast<uint64_t>(it->second.usage.cpu_nanos),
      static_cast<uint64_t>(it->second.reserved.cpu_nanos)));
}

uint64_t TenantLedger::RemainingSyscalls(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(tenant);
  if (it == entries_.end() || it->second.budget.max_syscalls == 0) {
    return 0;  // unlimited
  }
  return UnreservedOr1(it->second.budget.max_syscalls,
                       it->second.usage.syscalls,
                       it->second.reserved.syscalls);
}

TenantLedger::RunReservation TenantLedger::ReserveSlices(
    const std::string& tenant, uint64_t fuel_demand) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(tenant);
  RunReservation res;
  if (it == entries_.end()) {
    return res;  // no budget: nothing to reserve
  }
  const TenantBudget& b = it->second.budget;
  const TenantUsage& u = it->second.usage;
  RunReservation& held = it->second.reserved;
  if (b.max_fuel != 0) {
    res.fuel = UnreservedOr1(b.max_fuel, u.fuel, held.fuel);
    // A run with a per-run fuel cap can never consume more than it, so a
    // bounded demand leaves the rest of the remainder for concurrent runs.
    if (fuel_demand != 0 && fuel_demand < res.fuel) {
      res.fuel = fuel_demand;
    }
    held.fuel += res.fuel;
  }
  if (b.max_cpu_nanos != 0) {
    res.cpu_nanos = static_cast<int64_t>(
        UnreservedOr1(static_cast<uint64_t>(b.max_cpu_nanos),
                      static_cast<uint64_t>(u.cpu_nanos),
                      static_cast<uint64_t>(held.cpu_nanos)));
    held.cpu_nanos += res.cpu_nanos;
  }
  if (b.max_syscalls != 0) {
    res.syscalls = UnreservedOr1(b.max_syscalls, u.syscalls, held.syscalls);
    held.syscalls += res.syscalls;
  }
  return res;
}

void TenantLedger::SettleSlices(const std::string& tenant,
                                const RunReservation& reserved,
                                const TenantUsage& actual) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = entries_[tenant];
  // The subtraction guards cover a Forget/re-create between reserve and
  // settle: never underflow below zero.
  e.reserved.fuel =
      e.reserved.fuel >= reserved.fuel ? e.reserved.fuel - reserved.fuel : 0;
  e.reserved.cpu_nanos = e.reserved.cpu_nanos >= reserved.cpu_nanos
                             ? e.reserved.cpu_nanos - reserved.cpu_nanos
                             : 0;
  e.reserved.syscalls = e.reserved.syscalls >= reserved.syscalls
                            ? e.reserved.syscalls - reserved.syscalls
                            : 0;
  e.usage.fuel += actual.fuel;
  e.usage.cpu_nanos += actual.cpu_nanos;
  e.usage.syscalls += actual.syscalls;
}

void TenantLedger::ResetUsage(const std::string& tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(tenant);
  if (it != entries_.end()) {
    it->second.usage = TenantUsage{};
  }
}

void TenantLedger::Forget(const std::string& tenant) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    entries_.erase(tenant);
  }
  // Retention propagates: the ledger's Forget is the one retention hook the
  // host stack exposes, so telemetry's per-tenant series/spans ride it.
  if (tel_ != nullptr) {
    tel_->ForgetTenant(tenant);
  }
}

std::vector<std::pair<std::string, TenantUsage>> TenantLedger::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, TenantUsage>> out;
  out.reserve(entries_.size());
  for (const auto& [tenant, entry] : entries_) {
    out.emplace_back(tenant, entry.usage);
  }
  return out;
}

}  // namespace host
