// In-memory module representation. Produced by the WAT parser or the binary
// decoder; consumed by the validator (which annotates branch instructions
// with resolved targets) and then by the interpreter.
#ifndef SRC_WASM_MODULE_H_
#define SRC_WASM_MODULE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/wasm/opcode.h"
#include "src/wasm/types.h"

namespace wasm {

// Block type immediate (stored in Instr::imm as the raw wire byte):
// 0x40 = empty, otherwise a valtype byte. Multi-value block types are not
// supported by this engine's validator.
inline constexpr uint64_t kVoidBlockType = 0x40;

// Pre-decoded instruction. 24 bytes. Field use per op:
//   consts:        imm = payload bits
//   local/global:  a = index
//   call:          a = function index
//   call_indirect: a = type index, b = table index
//   br/br_if:      before validation a = label depth; after validation
//                  a = target pc, b = unwind height, arity = label arity.
//                  imm always holds the original label depth (encoder use).
//   br_table:      a = index into Function::br_tables
//   block/loop:    imm = blocktype; (after validation) a = end pc
//   if:            imm = blocktype; a = false-branch target, b = end pc
//   else:          a = end pc
//   memory ops:    a = offset, b = align
// Superinstructions (prepare pass; never on the wire):
//   kFLocalLocalI32Add: a = lhs local, b = rhs local
//   kFI32AddConst:      imm = addend
//   kFLocalI32Load:     a = load offset, b = address local
//   kFLocalI64Load:     a = load offset, b = address local
//   kFBrIfEqz:          a/b/arity as br_if (branches when operand == 0)
//   kFI32CmpBrIf:       a/b/arity as br_if, imm = fused i32 comparison Op
//   kFI64CmpBrIf:       a/b/arity as br_if, imm = fused i64 comparison Op
//   kFLocalCopy:        a = src local, b = dst local
//   kFI32ConstOp:       b = fused i32 binop/cmp Op, imm = constant (rhs)
//   kFI64ConstOp:       b = fused i64 binop/cmp Op, imm = constant (rhs)
//   kFI32LoadOp:        a = load offset, b = fused i32 binop Op
//   kFI32CmpSel:        imm = fused i32 comparison Op (feeds select)
//   kFI64CmpSel:        imm = fused i64 comparison Op (feeds select)
//   kFLocalTeeBrIf:     a/b/arity as br_if, imm = local index (tee target)
//   kFLocalLocalCmp:    a = lhs local, b = rhs local, arity = i32 cmp Op
//   kFLocalLocalCmpBrIf: a/b/arity as br_if,
//                        imm = cmp Op | lhs local << 16 | rhs local << 32
//   kFLocalConstI32Op:  a = local, b = fused i32 binop/cmp Op, imm = const
//   kFLocalConstI32OpSet: a = src local, b = dst local, arity = i32 binop Op,
//                         imm = const (dst = op(src, const); no stack traffic)
//   kFCallWasm:         a = function index (statically known local wasm
//                       callee; the threaded loop takes an inline frame-push
//                       fast path with no host-function checks)
struct Instr {
  Op op = Op::kNop;
  uint8_t flags = 0;
  // Source instructions this op accounts for: 1 for every decoded wire op,
  // the fused sequence length for superinstructions. Fuel and executed_instrs
  // are charged in these units, so fused and unfused streams bill the same.
  uint8_t cost = 1;
  uint16_t arity = 0;
  uint32_t a = 0;
  uint32_t b = 0;
  uint64_t imm = 0;

  static constexpr uint8_t kFlagBackward = 1;
};

// One resolved br_table target.
struct BrTarget {
  uint32_t pc = 0;      // jump destination
  uint32_t height = 0;  // operand stack height to unwind to
  uint16_t arity = 0;   // values carried
  uint32_t depth = 0;   // original label depth (pre-validation)
};

struct BrTable {
  std::vector<BrTarget> targets;  // last entry is the default
};

// Execution-optimized form of a function body, built by the prepare pass
// (src/wasm/prepare) after validation. `code` is the (optionally fused)
// instruction stream with branch targets remapped; `br_tables` are the
// remapped copies of Function::br_tables. `linear_cost[pc]` is the source-
// instruction cost from pc up to AND INCLUDING the next control-transfer op
// in linear order — the interpreter charges fuel per straight-line segment
// at segment entry instead of per instruction, and reconciles on traps.
struct PreparedCode {
  std::vector<Instr> code;
  std::vector<BrTable> br_tables;
  std::vector<uint32_t> linear_cost;
};

// Aggregate output of the prepare pass, kept on the Module so operators
// (walirun --serve) can attribute perf reports to the active fusion set.
// per_op[op - kFirstInternalOp] counts emissions of each superinstruction.
struct PrepareStats {
  uint32_t functions = 0;
  uint32_t source_instrs = 0;
  uint32_t prepared_instrs = 0;
  uint32_t fused = 0;  // superinstructions emitted (excludes kFCallWasm)
  uint32_t direct_calls = 0;  // kCall sites rewritten to kFCallWasm
  uint32_t per_op[kNumInternalOps] = {0};
};

// Per-function profile counters (host telemetry's tier-up signal). Indexed
// like Module::functions; written by the interpreter's frame-entry hooks
// with relaxed atomics, so concurrent instances of one module accumulate
// into the same slots without tearing.
struct FuncProfileSlot {
  std::atomic<uint64_t> entries{0};
  std::atomic<uint64_t> fuel{0};  // source instrs attributed to this function
};

// Per-function baseline-JIT tier state. Indexed like Module::functions.
// `heat` counts frame entries plus loop back-edges observed by the threaded
// loop's OSR hooks (it ticks even when func_profile telemetry is compiled
// out, and back-edges matter: a single-entry hot loop must still tier up).
// `state` is a CAS latch cold -> compiling -> {compiled, failed}; the winner
// publishes the code descriptor with a release store into `code` and every
// enter-site reads it with a plain acquire load, so concurrent instances of
// one cached module compile once and share the result.
struct JitFuncSlot {
  enum : uint32_t { kCold = 0, kCompiling = 1, kCompiled = 2, kFailed = 3 };
  std::atomic<const void*> code{nullptr};  // jit::CompiledFn, owned by state
  std::atomic<uint32_t> state{kCold};
  std::atomic<uint32_t> heat{0};
  // Deopt exits (unsupported op / trap re-execution) from this function's
  // compiled code. A function whose hot loop keeps deopting is worse than
  // interpreted (every round trip pays the trampoline); past the blacklist
  // threshold the enter-sites stop selecting it.
  std::atomic<uint32_t> deopts{0};
};

// Module-wide JIT tier state: one slot per local function plus the tier
// counters telemetry exports (jit_compiles_total and friends). The concrete
// subclass living in jit.cc owns the executable code buffers; this base is
// what module.h can name without pulling in the emitter. Allocated by
// PrepareModule (and REPLACED by it on re-prepare: compiled code is keyed to
// the prepared stream's pcs, so a fusion-level change must discard it).
struct JitModuleState {
  virtual ~JitModuleState() = default;
  std::unique_ptr<JitFuncSlot[]> slots;  // Module::functions.size() entries
  std::atomic<uint64_t> compiles{0};
  std::atomic<uint64_t> compile_failures{0};
  std::atomic<uint64_t> tierups{0};    // interpreter->jit entries taken
  std::atomic<uint64_t> osr_exits{0};  // deopt/host-call exits back to interp
  std::atomic<uint64_t> compile_nanos_sum{0};
  // Compile-time histogram, decade buckets matching
  // metrics::LatencyBoundsNanos() (1us..10s, +inf last). Kept as raw atomics
  // so module.h does not depend on the metrics layer; host::Telemetry
  // synthesizes a registry histogram from these at snapshot time.
  static constexpr size_t kCompileNanosBuckets = 9;
  std::atomic<uint64_t> compile_nanos_bucket[kCompileNanosBuckets] = {};
};

struct Function {
  uint32_t type_index = 0;
  std::vector<ValType> locals;  // non-param locals
  std::vector<Instr> code;      // terminated by kEnd; wire-faithful (encoder)
  std::vector<BrTable> br_tables;
  // Peak operand-stack height of the body (validator high-water mark,
  // excluding params/locals). Lets the threaded dispatch loop pre-size the
  // value stack once per frame and run on a raw stack pointer; fusion can
  // only lower the true peak, so this stays a safe bound for prepared code.
  uint32_t max_operand_stack = 0;
  // Built by Prepare (called from Validate); the interpreter executes this
  // stream except under SafepointScheme::kEveryInstr, which runs `code` so
  // per-instruction polling stays per *source* instruction.
  PreparedCode prepared;
  std::string debug_name;
};

enum class ExternKind : uint8_t { kFunc = 0, kTable = 1, kMemory = 2, kGlobal = 3 };

struct GlobalType {
  ValType type = ValType::kI32;
  bool mut = false;
};

// Constant initializer expression (module-level): a single const instruction
// or global.get of an imported immutable global.
struct InitExpr {
  enum class Kind : uint8_t { kConst, kGlobalGet };
  Kind kind = Kind::kConst;
  ValType type = ValType::kI32;
  uint64_t bits = 0;       // for kConst
  uint32_t global_index = 0;  // for kGlobalGet
};

struct Import {
  std::string module;
  std::string name;
  ExternKind kind = ExternKind::kFunc;
  uint32_t type_index = 0;  // kFunc
  Limits limits;            // kMemory / kTable
  GlobalType global_type;   // kGlobal
};

struct Export {
  std::string name;
  ExternKind kind = ExternKind::kFunc;
  uint32_t index = 0;
};

struct Global {
  GlobalType type;
  InitExpr init;
  std::string debug_name;
};

struct TableDecl {
  Limits limits;  // funcref tables only
};

struct MemoryDecl {
  Limits limits;  // units: 64 KiB pages
};

struct ElemSegment {
  uint32_t table_index = 0;
  InitExpr offset;
  std::vector<uint32_t> func_indices;
};

struct DataSegment {
  uint32_t memory_index = 0;
  InitExpr offset;
  std::vector<uint8_t> bytes;
};

struct Module {
  std::vector<FuncType> types;
  std::vector<Import> imports;
  std::vector<Function> functions;  // local (non-imported) functions
  std::vector<TableDecl> tables;    // local tables
  std::vector<MemoryDecl> memories;  // local memories
  std::vector<Global> globals;      // local globals
  std::vector<Export> exports;
  std::vector<ElemSegment> elems;
  std::vector<DataSegment> datas;
  std::optional<uint32_t> start;
  std::string name;

  bool validated = false;
  // Fusion statistics from the last PrepareModule / Validate run over this
  // module (per-superinstruction emission counts for perf attribution).
  PrepareStats prepare_stats;

  // Profile slots, one per local function; allocated by PrepareModule.
  // shared_ptr (not unique_ptr) keeps Module copyable: copies of a module
  // share one profile, which is what the telemetry consumer wants anyway.
  std::shared_ptr<FuncProfileSlot[]> func_profile;

  // Baseline-JIT tier state (slots + compiled code), allocated by
  // PrepareModule when the tier is compiled in, null otherwise. Shared for
  // the same reason as func_profile: host::ModuleCache hands out copies of
  // one cached Module, and they must share one set of compiled functions so
  // a hot tenant compiles once per content hash.
  std::shared_ptr<JitModuleState> jit;

  // Import-space counts (imports precede local definitions in index spaces).
  uint32_t num_imported_funcs = 0;
  uint32_t num_imported_tables = 0;
  uint32_t num_imported_memories = 0;
  uint32_t num_imported_globals = 0;

  uint32_t NumFuncs() const {
    return num_imported_funcs + static_cast<uint32_t>(functions.size());
  }
  uint32_t NumGlobals() const {
    return num_imported_globals + static_cast<uint32_t>(globals.size());
  }
  uint32_t NumMemories() const {
    return num_imported_memories + static_cast<uint32_t>(memories.size());
  }
  uint32_t NumTables() const {
    return num_imported_tables + static_cast<uint32_t>(tables.size());
  }

  // Type of function index `i` (import space first). Caller must ensure the
  // index is in range.
  uint32_t FuncTypeIndex(uint32_t i) const {
    if (i < num_imported_funcs) {
      uint32_t seen = 0;
      for (const Import& imp : imports) {
        if (imp.kind == ExternKind::kFunc) {
          if (seen == i) return imp.type_index;
          ++seen;
        }
      }
    }
    return functions[i - num_imported_funcs].type_index;
  }

  const Export* FindExport(const std::string& export_name, ExternKind kind) const {
    for (const Export& e : exports) {
      if (e.kind == kind && e.name == export_name) return &e;
    }
    return nullptr;
  }
};

}  // namespace wasm

#endif  // SRC_WASM_MODULE_H_
