#include "src/wasm/interp.h"

#include <atomic>
#include <cmath>
#include <cstring>
#include <mutex>

#include "src/common/logging.h"
#include "src/wasm/jit.h"

// Computed-goto dispatch needs the GNU &&label extension and an opt-in from
// the build (-DWASM_THREADED_DISPATCH, CMake option of the same name).
#if defined(WASM_THREADED_DISPATCH) && (defined(__GNUC__) || defined(__clang__))
#define WASM_THREADED_OK 1
#else
#define WASM_THREADED_OK 0
#endif

namespace wasm {

namespace {

// Initial capacities for a fresh (non-recycled) invocation; recycled
// ExecBuffers keep whatever they grew to.
constexpr size_t kStackReserve = 1024;
constexpr size_t kFramesReserve = 64;

inline uint64_t BitsOfF32(float v) {
  uint32_t u;
  std::memcpy(&u, &v, 4);
  return u;
}
inline uint64_t BitsOfF64(double v) {
  uint64_t u;
  std::memcpy(&u, &v, 8);
  return u;
}
inline float F32OfBits(uint64_t bits) {
  uint32_t u = static_cast<uint32_t>(bits);
  float v;
  std::memcpy(&v, &u, 4);
  return v;
}
inline double F64OfBits(uint64_t bits) {
  double v;
  std::memcpy(&v, &bits, 8);
  return v;
}

inline float FMin32(float a, float b) {
  if (std::isnan(a) || std::isnan(b)) return std::nanf("");
  if (a == b) return std::signbit(a) ? a : b;
  return a < b ? a : b;
}
inline float FMax32(float a, float b) {
  if (std::isnan(a) || std::isnan(b)) return std::nanf("");
  if (a == b) return std::signbit(a) ? b : a;
  return a > b ? a : b;
}
inline double FMin64(double a, double b) {
  if (std::isnan(a) || std::isnan(b)) return std::nan("");
  if (a == b) return std::signbit(a) ? a : b;
  return a < b ? a : b;
}
inline double FMax64(double a, double b) {
  if (std::isnan(a) || std::isnan(b)) return std::nan("");
  if (a == b) return std::signbit(a) ? b : a;
  return a > b ? a : b;
}

// Interpreters for the generic-operator superinstructions (prepare pass
// folds the concrete operator into an immediate). Only non-trapping ops are
// ever folded (no division), so these are total functions.
inline uint32_t CmpI32(Op op, uint32_t ra, uint32_t rb) {
  const int32_t sa = static_cast<int32_t>(ra);
  const int32_t sb = static_cast<int32_t>(rb);
  switch (op) {
    case Op::kI32Eq: return ra == rb;
    case Op::kI32Ne: return ra != rb;
    case Op::kI32LtS: return sa < sb;
    case Op::kI32LtU: return ra < rb;
    case Op::kI32GtS: return sa > sb;
    case Op::kI32GtU: return ra > rb;
    case Op::kI32LeS: return sa <= sb;
    case Op::kI32LeU: return ra <= rb;
    case Op::kI32GeS: return sa >= sb;
    case Op::kI32GeU: return ra >= rb;
    default: return 0;
  }
}

inline uint32_t CmpI64(Op op, uint64_t ra, uint64_t rb) {
  const int64_t sa = static_cast<int64_t>(ra);
  const int64_t sb = static_cast<int64_t>(rb);
  switch (op) {
    case Op::kI64Eq: return ra == rb;
    case Op::kI64Ne: return ra != rb;
    case Op::kI64LtS: return sa < sb;
    case Op::kI64LtU: return ra < rb;
    case Op::kI64GtS: return sa > sb;
    case Op::kI64GtU: return ra > rb;
    case Op::kI64LeS: return sa <= sb;
    case Op::kI64LeU: return ra <= rb;
    case Op::kI64GeS: return sa >= sb;
    case Op::kI64GeU: return ra >= rb;
    default: return 0;
  }
}

inline uint32_t AluI32(Op op, uint32_t ra, uint32_t rb) {
  switch (op) {
    case Op::kI32Add: return ra + rb;
    case Op::kI32Sub: return ra - rb;
    case Op::kI32Mul: return ra * rb;
    case Op::kI32And: return ra & rb;
    case Op::kI32Or: return ra | rb;
    case Op::kI32Xor: return ra ^ rb;
    case Op::kI32Shl: return ra << (rb & 31);
    case Op::kI32ShrS: return static_cast<uint32_t>(static_cast<int32_t>(ra) >> (rb & 31));
    case Op::kI32ShrU: return ra >> (rb & 31);
    case Op::kI32Rotl: return (ra << (rb & 31)) | (ra >> ((32 - rb) & 31));
    case Op::kI32Rotr: return (ra >> (rb & 31)) | (ra << ((32 - rb) & 31));
    default: return CmpI32(op, ra, rb);
  }
}

inline uint64_t AluI64(Op op, uint64_t ra, uint64_t rb) {
  switch (op) {
    case Op::kI64Add: return ra + rb;
    case Op::kI64Sub: return ra - rb;
    case Op::kI64Mul: return ra * rb;
    case Op::kI64And: return ra & rb;
    case Op::kI64Or: return ra | rb;
    case Op::kI64Xor: return ra ^ rb;
    case Op::kI64Shl: return ra << (rb & 63);
    case Op::kI64ShrS: return static_cast<uint64_t>(static_cast<int64_t>(ra) >> (rb & 63));
    case Op::kI64ShrU: return ra >> (rb & 63);
    case Op::kI64Rotl: return (ra << (rb & 63)) | (ra >> ((64 - rb) & 63));
    case Op::kI64Rotr: return (ra >> (rb & 63)) | (ra << ((64 - rb) & 63));
    default: return CmpI64(op, ra, rb);
  }
}

#if defined(HOST_TELEMETRY)
// Frame-entry profiling hook (ExecOptions::profile): bumps the callee's
// entry count and attributes the fuel burned since the last frame entry to
// the function that was executing. `executed_now` must be the caller's
// CURRENT executed count — the threaded loop passes its local accumulator,
// which is ahead of ctx.executed between SYNC_STATE points.
inline void ProfileFrameEntry(ExecContext& ctx, const FuncRef& ref,
                              uint64_t executed_now) {
  const Module& m = ref.owner->module();
  FuncProfileSlot* slots = m.func_profile.get();
  if (slots == nullptr) {
    return;
  }
  FuncProfileSlot& slot = slots[static_cast<size_t>(ref.code - m.functions.data())];
  if (&slot == ctx.profile_slot) {
    // Re-entering the function already being attributed (self-recursion,
    // the call-dense hot case): context-local arithmetic only.
    ctx.profile_pending_entries += 1;
    ctx.profile_pending_fuel += executed_now - ctx.profile_mark;
    ctx.profile_mark = executed_now;
    return;
  }
  if (ctx.profile_slot != nullptr) {
    ctx.profile_slot->entries.fetch_add(ctx.profile_pending_entries,
                                        std::memory_order_relaxed);
    ctx.profile_slot->fuel.fetch_add(
        ctx.profile_pending_fuel + (executed_now - ctx.profile_mark),
        std::memory_order_relaxed);
  }
  ctx.profile_slot = &slot;
  ctx.profile_pending_entries = 1;
  ctx.profile_pending_fuel = 0;
  ctx.profile_mark = executed_now;
}
#endif

// Pushes a new wasm frame; arguments must already be on the stack.
// The frame binds the execution stream: the prepared (fused, block-metadata)
// form by default, the original decoded stream under kEveryInstr so that
// per-instruction safepoint polling stays per *source* instruction.
bool PushFrame(ExecContext& ctx, const FuncRef& ref) {
  if (ctx.frames.size() >= ctx.opts.max_frames ||
      ctx.stack.size() >= ctx.opts.max_value_stack) {
    ctx.SetTrap(TrapKind::kStackExhausted);
    return false;
  }
  const Function* fn = ref.code;
  const bool use_prepared = !fn->prepared.code.empty() &&
                            ctx.opts.scheme != SafepointScheme::kEveryInstr;
  ExecContext::Frame fr;
  fr.inst = ref.owner;
  fr.fn = fn;
  if (use_prepared) {
    fr.code = fn->prepared.code.data();
    fr.tables = fn->prepared.br_tables.data();
    fr.lcost = fn->prepared.linear_cost.data();
  } else {
    fr.code = fn->code.data();
    fr.tables = fn->br_tables.data();
    fr.lcost = nullptr;
  }
  fr.pc = 0;
  fr.type = ref.type;
  fr.locals_base = static_cast<uint32_t>(ctx.stack.size() - ref.type->params.size());
  // One grow for all locals PLUS one scratch slot between the locals and
  // the operand region; resize value-initializes the slots to zero. The
  // scratch slot is where the threaded loop's TOS cache lands its dead
  // spills when the operand stack is empty — every frame carries it so
  // both dispatch loops agree on operand positions (stack_base + k).
  ctx.stack.resize(ctx.stack.size() + fn->locals.size() + 1);
  fr.stack_base = static_cast<uint32_t>(ctx.stack.size());
  fr.mem = ref.owner->memory(0).get();
  ctx.frames.push_back(fr);
#if defined(HOST_TELEMETRY)
  if (__builtin_expect(ctx.opts.profile, 0)) {
    ProfileFrameEntry(ctx, ref, ctx.executed);
  }
#endif
  return true;
}

// Calls a host function with args taken from (and results pushed to) the
// operand stack.
TrapKind CallHost(ExecContext& ctx, const HostFunc& host) {
  size_t nargs = host.type.params.size();
  size_t nres = host.type.results.size();
  uint64_t argbuf[kMaxHostArgs];
  uint64_t resbuf[kMaxHostResults] = {0};
  if (nargs > kMaxHostArgs || nres > kMaxHostResults) {
    ctx.SetTrap(TrapKind::kHostError, "host function arity too large");
    return ctx.trap;
  }
  for (size_t i = 0; i < nargs; ++i) {
    argbuf[i] = ctx.stack[ctx.stack.size() - nargs + i];
  }
  ctx.stack.resize(ctx.stack.size() - nargs);
  TrapKind t = host.fn(ctx, argbuf, resbuf);
  if (t == TrapKind::kSyscallPending || ctx.trap == TrapKind::kSyscallPending) {
    if (ctx.opts.suspend_to == nullptr) {
      // A host function parked an invocation that cannot be resumed (no
      // suspension slot). Programming error in the host layer; fail loudly
      // rather than losing the call's results.
      ctx.SetTrap(TrapKind::kHostError, "host call suspended without a suspension slot");
      return ctx.trap;
    }
    // The args are consumed; the results arrive via ResumeInvoke. The frame
    // state was synced before the call, so the context is resumable as-is.
    ctx.trap = TrapKind::kSyscallPending;
    ctx.pending_host_results = static_cast<uint32_t>(nres);
    return ctx.trap;
  }
  if (t != TrapKind::kNone) {
    if (ctx.trap == TrapKind::kNone) {
      ctx.trap = t;
    }
    return t;
  }
  if (ctx.trap != TrapKind::kNone) {
    return ctx.trap;  // host set a trap (e.g. exit) without returning one
  }
  for (size_t i = 0; i < nres; ++i) {
    ctx.stack.push_back(resbuf[i]);
  }
  return TrapKind::kNone;
}

// ---- dispatch loops -------------------------------------------------------
// One body (interp_body.inc), two expansions: the portable switch loop and,
// when the build allows, the computed-goto threaded loop.

#define WASM_BODY_THREADED 0
#define WASM_LOOP_NAME RunLoopSwitch
#include "src/wasm/interp_body.inc"  // NOLINT
#undef WASM_LOOP_NAME
#undef WASM_BODY_THREADED

#if WASM_THREADED_OK
#define WASM_BODY_THREADED 1
#define WASM_LOOP_NAME RunLoopThreadedImpl
#include "src/wasm/interp_body.inc"  // NOLINT
#undef WASM_LOOP_NAME
#undef WASM_BODY_THREADED
#endif

// RAII swap of recycled stack/frame storage into a fresh ExecContext and
// back out on every exit path, preserving grown capacity across runs.
struct BufferLease {
  ExecContext& ctx;
  ExecBuffers* buffers;

  BufferLease(ExecContext& c, ExecBuffers* b) : ctx(c), buffers(b) {
    if (buffers != nullptr) {
      ctx.stack.swap(buffers->stack);
      ctx.frames.swap(buffers->frames);
      ctx.stack.clear();
      ctx.frames.clear();
    }
    if (ctx.stack.capacity() < kStackReserve) ctx.stack.reserve(kStackReserve);
    if (ctx.frames.capacity() < kFramesReserve) ctx.frames.reserve(kFramesReserve);
  }
  ~BufferLease() {
    if (buffers != nullptr) {
      ctx.stack.swap(buffers->stack);
      ctx.frames.swap(buffers->frames);
    }
  }
};

}  // namespace

#if WASM_JIT_OK
namespace jit {
// interp.cc's PushFrame, re-exported so the JIT dispatcher's native call
// path shares the single frame-geometry implementation.
bool PushFrameForJit(ExecContext& ctx, const FuncRef& ref) {
  return PushFrame(ctx, ref);
}
}  // namespace jit
#endif

bool ThreadedDispatchAvailable() { return WASM_THREADED_OK != 0; }

DispatchMode ResolveDispatch(const ExecOptions& opts) {
  // kEveryInstr polls after every source instruction; that contract lives
  // in the per-instruction switch loop over the unfused stream.
  if (opts.scheme == SafepointScheme::kEveryInstr) {
    return DispatchMode::kSwitch;
  }
  if (opts.dispatch == DispatchMode::kSwitch) {
    return DispatchMode::kSwitch;
  }
  return ThreadedDispatchAvailable() ? DispatchMode::kThreaded
                                     : DispatchMode::kSwitch;
}

TrapKind RunLoop(ExecContext& ctx) {
#if WASM_THREADED_OK
  if (ResolveDispatch(ctx.opts) == DispatchMode::kThreaded) {
#if WASM_JIT_OK
    // The baseline JIT tier rides on the threaded loop's OSR seams: its
    // hooks return kNone with jit_enter set when compiled code should take
    // over at frames.back(), and jit::Execute hands back the same way.
    ctx.jit_active = ctx.opts.jit != JitTier::kOff;
    for (;;) {
      ctx.jit_enter = false;
      TrapKind t = RunLoopThreadedImpl(ctx);
      if (t != TrapKind::kNone || !ctx.jit_enter) {
        return t;
      }
      t = jit::Execute(ctx);
      if (t != TrapKind::kNone || ctx.frames.empty()) {
        return t;
      }
    }
#else
    return RunLoopThreadedImpl(ctx);
#endif
  }
#endif
  ctx.jit_active = false;
  return RunLoopSwitch(ctx);
}

namespace {

// Marshals a finished (non-suspended) context into a RunResult. Result
// values are read from the operand-stack top when the run completed.
RunResult HarvestResult(ExecContext& ctx, const FuncType* type, TrapKind t) {
#if defined(HOST_TELEMETRY)
  // Flush the open profile attribution window so per-function entries and
  // fuel sum to the run's true totals for a finished run.
  if (ctx.profile_slot != nullptr) {
    ctx.profile_slot->entries.fetch_add(ctx.profile_pending_entries,
                                        std::memory_order_relaxed);
    ctx.profile_slot->fuel.fetch_add(
        ctx.profile_pending_fuel + (ctx.executed - ctx.profile_mark),
        std::memory_order_relaxed);
    ctx.profile_slot = nullptr;
    ctx.profile_pending_entries = 0;
    ctx.profile_pending_fuel = 0;
    ctx.profile_mark = ctx.executed;
  }
#endif
  RunResult result;
  result.trap = t;
  result.trap_message = ctx.trap_msg;
  result.exit_code = ctx.exit_code;
  result.executed_instrs = ctx.executed;
  if (t == TrapKind::kNone) {
    size_t nres = type->results.size();
    for (size_t i = 0; i < nres; ++i) {
      Value v;
      v.type = type->results[i];
      v.bits = ctx.stack[ctx.stack.size() - nres + i];
      result.values.push_back(v);
    }
  }
  return result;
}

// Shared entry setup: pushes args and the first frame, runs the dispatch
// loop to completion or suspension. Buffer swap-in/out is the caller's
// concern (RAII for the synchronous path, manual for the resumable one).
TrapKind RunEntry(ExecContext& ctx, const FuncRef& ref, const std::vector<Value>& args) {
  for (const Value& v : args) {
    ctx.stack.push_back(v.bits);
  }
  if (ref.IsHost()) {
    return CallHost(ctx, *ref.host);
  }
  if (!PushFrame(ctx, ref)) {
    return ctx.trap;
  }
  if (ctx.opts.scheme == SafepointScheme::kFunction && ctx.poll != nullptr && *ctx.poll) {
    (*ctx.poll)(ctx);
  }
  return ctx.trap != TrapKind::kNone ? ctx.trap : RunLoop(ctx);
}

}  // namespace

void Suspension::Discard() {
  if (ctx != nullptr && buffers != nullptr) {
    // Hand the borrowed storage (and its grown capacity) back to its owner;
    // the parked stack contents are dead, only the allocation is recycled.
    ctx->stack.swap(buffers->stack);
    ctx->frames.swap(buffers->frames);
  }
  ctx.reset();
  entry_type = nullptr;
  buffers = nullptr;
  pending_results = 0;
}

RunResult Invoke(Instance* inst, const FuncRef& ref, const std::vector<Value>& args,
                 const ExecOptions& opts) {
  RunResult result;
  if (ref.IsNull()) {
    result.trap = TrapKind::kHostError;
    result.trap_message = "null function reference";
    return result;
  }
  if (args.size() != ref.type->params.size()) {
    result.trap = TrapKind::kHostError;
    result.trap_message = "argument count mismatch";
    return result;
  }

  if (opts.suspend_to == nullptr) {
    // Synchronous path: the context lives on this stack frame and the
    // borrowed buffers are returned on every exit via RAII.
    ExecContext ctx;
    ctx.root = inst;
    ctx.opts = opts;
    ctx.poll = &inst->safepoint_fn();
    BufferLease lease(ctx, opts.buffers);
    TrapKind t = RunEntry(ctx, ref, args);
    return HarvestResult(ctx, ref.type, t);
  }

  // Resumable path: the context is heap-allocated so a suspension can move
  // it into the caller's Suspension slot; borrowed buffers are swapped in
  // here and handed back only when the run finally completes (ResumeInvoke)
  // or is abandoned (Suspension::Discard).
  Suspension& susp = *opts.suspend_to;
  susp.Discard();  // a stale armed slot must not leak its parked context
  auto ctxp = std::make_unique<ExecContext>();
  ExecContext& ctx = *ctxp;
  ctx.root = inst;
  ctx.opts = opts;
  ctx.poll = &inst->safepoint_fn();
  if (opts.buffers != nullptr) {
    ctx.stack.swap(opts.buffers->stack);
    ctx.frames.swap(opts.buffers->frames);
    ctx.stack.clear();
    ctx.frames.clear();
  }
  if (ctx.stack.capacity() < kStackReserve) ctx.stack.reserve(kStackReserve);
  if (ctx.frames.capacity() < kFramesReserve) ctx.frames.reserve(kFramesReserve);

  TrapKind t = RunEntry(ctx, ref, args);
  if (t == TrapKind::kSyscallPending) {
    susp.entry_type = ref.type;
    susp.buffers = opts.buffers;
    susp.pending_results = ctx.pending_host_results;
    susp.ctx = std::move(ctxp);
    result.trap = t;
    result.trap_message = ctx.trap_msg;
    result.executed_instrs = ctx.executed;
    return result;
  }
  result = HarvestResult(ctx, ref.type, t);
  if (opts.buffers != nullptr) {
    ctx.stack.swap(opts.buffers->stack);
    ctx.frames.swap(opts.buffers->frames);
  }
  return result;
}

RunResult ResumeInvoke(Suspension& susp, const uint64_t* results, size_t nres) {
  RunResult result;
  if (!susp.armed()) {
    result.trap = TrapKind::kHostError;
    result.trap_message = "resume of an unarmed suspension";
    return result;
  }
  if (nres != susp.pending_results) {
    susp.Discard();
    result.trap = TrapKind::kHostError;
    result.trap_message = "suspended host call result arity mismatch";
    return result;
  }
  ExecContext& ctx = *susp.ctx;
  ctx.trap = TrapKind::kNone;
  ctx.trap_msg.clear();
  ctx.pending_host_results = 0;
  // Materialize the host call's results exactly where CallHost would have
  // pushed them, then continue from the saved frame (fr->pc already points
  // past the call site). An empty frame stack means the suspended call WAS
  // the entry invocation; its results are the run's results.
  for (size_t i = 0; i < nres; ++i) {
    ctx.stack.push_back(results[i]);
  }
  TrapKind t = ctx.frames.empty() ? TrapKind::kNone : RunLoop(ctx);
  if (t == TrapKind::kSyscallPending) {
    susp.pending_results = ctx.pending_host_results;
    result.trap = t;
    result.trap_message = ctx.trap_msg;
    result.executed_instrs = ctx.executed;
    return result;
  }
  result = HarvestResult(ctx, susp.entry_type, t);
  susp.Discard();
  return result;
}

}  // namespace wasm
