#include "src/wasm/interp.h"

#include <cmath>
#include <cstring>

#include "src/common/logging.h"

namespace wasm {

namespace {

inline uint64_t BitsOfF32(float v) {
  uint32_t u;
  std::memcpy(&u, &v, 4);
  return u;
}
inline uint64_t BitsOfF64(double v) {
  uint64_t u;
  std::memcpy(&u, &v, 8);
  return u;
}
inline float F32OfBits(uint64_t bits) {
  uint32_t u = static_cast<uint32_t>(bits);
  float v;
  std::memcpy(&v, &u, 4);
  return v;
}
inline double F64OfBits(uint64_t bits) {
  double v;
  std::memcpy(&v, &bits, 8);
  return v;
}

inline float FMin32(float a, float b) {
  if (std::isnan(a) || std::isnan(b)) return std::nanf("");
  if (a == b) return std::signbit(a) ? a : b;
  return a < b ? a : b;
}
inline float FMax32(float a, float b) {
  if (std::isnan(a) || std::isnan(b)) return std::nanf("");
  if (a == b) return std::signbit(a) ? b : a;
  return a > b ? a : b;
}
inline double FMin64(double a, double b) {
  if (std::isnan(a) || std::isnan(b)) return std::nan("");
  if (a == b) return std::signbit(a) ? a : b;
  return a < b ? a : b;
}
inline double FMax64(double a, double b) {
  if (std::isnan(a) || std::isnan(b)) return std::nan("");
  if (a == b) return std::signbit(a) ? b : a;
  return a > b ? a : b;
}

// Pushes a new wasm frame; arguments must already be on the stack.
bool PushFrame(ExecContext& ctx, const FuncRef& ref) {
  if (ctx.frames.size() >= ctx.opts.max_frames ||
      ctx.stack.size() >= ctx.opts.max_value_stack) {
    ctx.SetTrap(TrapKind::kStackExhausted);
    return false;
  }
  ExecContext::Frame fr;
  fr.inst = ref.owner;
  fr.fn = ref.code;
  fr.code = ref.code->code.data();
  fr.pc = 0;
  fr.type = ref.type;
  fr.locals_base = static_cast<uint32_t>(ctx.stack.size() - ref.type->params.size());
  for (size_t i = 0; i < ref.code->locals.size(); ++i) {
    ctx.stack.push_back(0);
  }
  fr.stack_base = static_cast<uint32_t>(ctx.stack.size());
  fr.mem = ref.owner->memory(0).get();
  ctx.frames.push_back(fr);
  return true;
}

// Calls a host function with args taken from (and results pushed to) the
// operand stack.
TrapKind CallHost(ExecContext& ctx, const HostFunc& host) {
  size_t nargs = host.type.params.size();
  size_t nres = host.type.results.size();
  uint64_t argbuf[kMaxHostArgs];
  uint64_t resbuf[kMaxHostResults] = {0};
  if (nargs > kMaxHostArgs || nres > kMaxHostResults) {
    ctx.SetTrap(TrapKind::kHostError, "host function arity too large");
    return ctx.trap;
  }
  for (size_t i = 0; i < nargs; ++i) {
    argbuf[i] = ctx.stack[ctx.stack.size() - nargs + i];
  }
  ctx.stack.resize(ctx.stack.size() - nargs);
  TrapKind t = host.fn(ctx, argbuf, resbuf);
  if (t != TrapKind::kNone) {
    if (ctx.trap == TrapKind::kNone) {
      ctx.trap = t;
    }
    return t;
  }
  if (ctx.trap != TrapKind::kNone) {
    return ctx.trap;  // host set a trap (e.g. exit) without returning one
  }
  for (size_t i = 0; i < nres; ++i) {
    ctx.stack.push_back(resbuf[i]);
  }
  return TrapKind::kNone;
}

}  // namespace

#define TRAP(kind)          \
  do {                      \
    ctx.SetTrap(kind);      \
    return ctx.trap;        \
  } while (0)

TrapKind RunLoop(ExecContext& ctx) {
  std::vector<uint64_t>& stack = ctx.stack;
  const bool fuel_limited = ctx.opts.fuel != 0;
  const SafepointScheme scheme = ctx.opts.scheme;

  auto do_poll = [&]() -> TrapKind {
    if (ctx.poll != nullptr && *ctx.poll) {
      TrapKind t = (*ctx.poll)(ctx);
      if (t != TrapKind::kNone && ctx.trap == TrapKind::kNone) {
        ctx.trap = t;
      }
      return ctx.trap;
    }
    return TrapKind::kNone;
  };

  while (!ctx.frames.empty()) {
    ExecContext::Frame* fr = &ctx.frames.back();
    const Instr* code = fr->code;
    uint32_t pc = fr->pc;
    Memory* mem = fr->mem;
    const uint32_t locals_base = fr->locals_base;
    const uint32_t stack_base = fr->stack_base;

    auto pop = [&]() -> uint64_t {
      uint64_t v = stack.back();
      stack.pop_back();
      return v;
    };
    auto push = [&](uint64_t v) { stack.push_back(v); };
    auto pop32 = [&]() -> uint32_t { return static_cast<uint32_t>(pop()); };
    auto push32 = [&](uint32_t v) { stack.push_back(v); };

    // Unwinds the operand stack for a branch carrying `arity` values.
    auto do_branch = [&](uint32_t target_pc, uint32_t height, uint32_t arity) {
      size_t abs = stack_base + height;
      if (arity > 0 && stack.size() != abs + arity) {
        std::memmove(&stack[abs], &stack[stack.size() - arity],
                     arity * sizeof(uint64_t));
      }
      stack.resize(abs + arity);
      pc = target_pc;
    };

    bool switch_frame = false;
    while (!switch_frame) {
      const Instr& in = code[pc];
      ++pc;
      ++ctx.executed;
      if (fuel_limited && ctx.executed > ctx.opts.fuel) {
        TRAP(TrapKind::kFuelExhausted);
      }
      if (scheme == SafepointScheme::kEveryInstr) {
        if (do_poll() != TrapKind::kNone) return ctx.trap;
      }

      switch (in.op) {
        case Op::kUnreachable:
          TRAP(TrapKind::kUnreachable);
        case Op::kNop:
        case Op::kBlock:
        case Op::kEnd:
          break;
        case Op::kLoop:
          if (scheme == SafepointScheme::kLoop) {
            if (do_poll() != TrapKind::kNone) return ctx.trap;
          }
          break;
        case Op::kIf: {
          if (pop32() == 0) pc = in.a;
          break;
        }
        case Op::kElse:
          pc = in.a;  // fell out of the then-branch: jump to end
          break;
        case Op::kBr: {
          // Backward branches target the kLoop instruction itself, which is
          // where loop-scheme safepoint polling happens (once per iteration).
          do_branch(in.a, in.b, in.arity);
          break;
        }
        case Op::kBrIf: {
          if (pop32() != 0) {
            do_branch(in.a, in.b, in.arity);
          }
          break;
        }
        case Op::kBrTable: {
          const BrTable& table = fr->fn->br_tables[in.a];
          uint32_t idx = pop32();
          const BrTarget& t = idx < table.targets.size() - 1
                                  ? table.targets[idx]
                                  : table.targets.back();
          do_branch(t.pc, t.height, t.arity);
          break;
        }
        case Op::kReturn: {
          size_t arity = fr->type->results.size();
          if (arity > 0 && stack.size() != locals_base + arity) {
            std::memmove(&stack[locals_base], &stack[stack.size() - arity],
                         arity * sizeof(uint64_t));
          }
          stack.resize(locals_base + arity);
          ctx.frames.pop_back();
          switch_frame = true;
          break;
        }
        case Op::kCall: {
          const FuncRef& f = fr->inst->func(in.a);
          if (f.IsHost()) {
            fr->pc = pc;
            if (CallHost(ctx, *f.host) != TrapKind::kNone) return ctx.trap;
            // Host may have re-entered and resized the frames vector.
            fr = &ctx.frames.back();
            code = fr->code;
            pc = fr->pc;
            mem = fr->mem;
          } else {
            fr->pc = pc;
            if (scheme == SafepointScheme::kFunction) {
              if (do_poll() != TrapKind::kNone) return ctx.trap;
            }
            if (!PushFrame(ctx, f)) return ctx.trap;
            switch_frame = true;
          }
          break;
        }
        case Op::kCallIndirect: {
          TableInst* table = fr->inst->table(in.b).get();
          if (table == nullptr) TRAP(TrapKind::kIndirectOob);
          uint32_t idx = pop32();
          if (idx >= table->elems.size()) TRAP(TrapKind::kIndirectOob);
          const FuncRef& f = table->elems[idx];
          if (f.IsNull()) TRAP(TrapKind::kIndirectNull);
          const FuncType& expected = fr->inst->module().types[in.a];
          if (!(expected == *f.type)) TRAP(TrapKind::kIndirectSigMismatch);
          if (f.IsHost()) {
            fr->pc = pc;
            if (CallHost(ctx, *f.host) != TrapKind::kNone) return ctx.trap;
            fr = &ctx.frames.back();
            code = fr->code;
            pc = fr->pc;
            mem = fr->mem;
          } else {
            fr->pc = pc;
            if (scheme == SafepointScheme::kFunction) {
              if (do_poll() != TrapKind::kNone) return ctx.trap;
            }
            if (!PushFrame(ctx, f)) return ctx.trap;
            switch_frame = true;
          }
          break;
        }
        case Op::kDrop:
          stack.pop_back();
          break;
        case Op::kSelect: {
          uint32_t c = pop32();
          uint64_t b = pop();
          uint64_t a = pop();
          push(c != 0 ? a : b);
          break;
        }
        case Op::kLocalGet:
          push(stack[locals_base + in.a]);
          break;
        case Op::kLocalSet:
          stack[locals_base + in.a] = pop();
          break;
        case Op::kLocalTee:
          stack[locals_base + in.a] = stack.back();
          break;
        case Op::kGlobalGet:
          push(fr->inst->global(in.a).bits);
          break;
        case Op::kGlobalSet:
          fr->inst->global(in.a).bits = pop();
          break;

#define MEM_LOAD(ctype, dsttype, extend)                                    \
  {                                                                         \
    uint64_t ea = static_cast<uint64_t>(pop32()) + in.a;                    \
    if (mem == nullptr || !mem->InBounds(ea, sizeof(ctype)))                \
      TRAP(TrapKind::kMemOutOfBounds);                                      \
    ctype v;                                                                \
    std::memcpy(&v, mem->At(ea), sizeof(ctype));                            \
    push(static_cast<uint64_t>(static_cast<dsttype>(extend(v))));           \
    break;                                                                  \
  }
#define MEM_STORE(ctype, srcexpr)                                           \
  {                                                                         \
    ctype v = static_cast<ctype>(srcexpr);                                  \
    uint64_t ea = static_cast<uint64_t>(pop32()) + in.a;                    \
    if (mem == nullptr || !mem->InBounds(ea, sizeof(ctype)))                \
      TRAP(TrapKind::kMemOutOfBounds);                                      \
    std::memcpy(mem->At(ea), &v, sizeof(ctype));                            \
    break;                                                                  \
  }
#define ID(x) (x)

        case Op::kI32Load: MEM_LOAD(uint32_t, uint32_t, ID)
        case Op::kI64Load: MEM_LOAD(uint64_t, uint64_t, ID)
        case Op::kF32Load: MEM_LOAD(uint32_t, uint32_t, ID)
        case Op::kF64Load: MEM_LOAD(uint64_t, uint64_t, ID)
        case Op::kI32Load8S: MEM_LOAD(int8_t, uint32_t, static_cast<int32_t>)
        case Op::kI32Load8U: MEM_LOAD(uint8_t, uint32_t, ID)
        case Op::kI32Load16S: MEM_LOAD(int16_t, uint32_t, static_cast<int32_t>)
        case Op::kI32Load16U: MEM_LOAD(uint16_t, uint32_t, ID)
        case Op::kI64Load8S: MEM_LOAD(int8_t, uint64_t, static_cast<int64_t>)
        case Op::kI64Load8U: MEM_LOAD(uint8_t, uint64_t, ID)
        case Op::kI64Load16S: MEM_LOAD(int16_t, uint64_t, static_cast<int64_t>)
        case Op::kI64Load16U: MEM_LOAD(uint16_t, uint64_t, ID)
        case Op::kI64Load32S: MEM_LOAD(int32_t, uint64_t, static_cast<int64_t>)
        case Op::kI64Load32U: MEM_LOAD(uint32_t, uint64_t, ID)
        case Op::kI32Store: MEM_STORE(uint32_t, pop())
        case Op::kI64Store: MEM_STORE(uint64_t, pop())
        case Op::kF32Store: MEM_STORE(uint32_t, pop())
        case Op::kF64Store: MEM_STORE(uint64_t, pop())
        case Op::kI32Store8: MEM_STORE(uint8_t, pop())
        case Op::kI32Store16: MEM_STORE(uint16_t, pop())
        case Op::kI64Store8: MEM_STORE(uint8_t, pop())
        case Op::kI64Store16: MEM_STORE(uint16_t, pop())
        case Op::kI64Store32: MEM_STORE(uint32_t, pop())

        case Op::kMemorySize:
          push32(mem != nullptr ? static_cast<uint32_t>(mem->size_pages()) : 0);
          break;
        case Op::kMemoryGrow: {
          uint32_t delta = pop32();
          int64_t old_pages = mem != nullptr ? mem->Grow(delta) : -1;
          push32(static_cast<uint32_t>(old_pages));
          break;
        }
        case Op::kMemoryCopy: {
          uint32_t n = pop32(), s = pop32(), d = pop32();
          if (mem == nullptr || !mem->InBounds(s, n) || !mem->InBounds(d, n)) {
            TRAP(TrapKind::kMemOutOfBounds);
          }
          std::memmove(mem->At(d), mem->At(s), n);
          break;
        }
        case Op::kMemoryFill: {
          uint32_t n = pop32(), val = pop32(), d = pop32();
          if (mem == nullptr || !mem->InBounds(d, n)) {
            TRAP(TrapKind::kMemOutOfBounds);
          }
          std::memset(mem->At(d), static_cast<int>(val & 0xFF), n);
          break;
        }

        case Op::kI32Const:
        case Op::kI64Const:
        case Op::kF32Const:
        case Op::kF64Const:
          push(in.imm);
          break;

#define I32_BINOP(expr)                       \
  {                                           \
    uint32_t rb = pop32(), ra = pop32();      \
    (void)ra; (void)rb;                       \
    push32(expr);                             \
    break;                                    \
  }
#define I64_BINOP(expr)                       \
  {                                           \
    uint64_t rb = pop(), ra = pop();          \
    (void)ra; (void)rb;                       \
    push(expr);                               \
    break;                                    \
  }
#define F32_BINOP(expr)                                  \
  {                                                      \
    float rb = F32OfBits(pop()), ra = F32OfBits(pop());  \
    (void)ra; (void)rb;                                  \
    push(BitsOfF32(expr));                               \
    break;                                               \
  }
#define F64_BINOP(expr)                                  \
  {                                                      \
    double rb = F64OfBits(pop()), ra = F64OfBits(pop()); \
    (void)ra; (void)rb;                                  \
    push(BitsOfF64(expr));                               \
    break;                                               \
  }
#define F32_CMP(expr)                                    \
  {                                                      \
    float rb = F32OfBits(pop()), ra = F32OfBits(pop());  \
    push32((expr) ? 1 : 0);                              \
    break;                                               \
  }
#define F64_CMP(expr)                                    \
  {                                                      \
    double rb = F64OfBits(pop()), ra = F64OfBits(pop()); \
    push32((expr) ? 1 : 0);                              \
    break;                                               \
  }

        case Op::kI32Eqz: push32(pop32() == 0 ? 1 : 0); break;
        case Op::kI32Eq: I32_BINOP(ra == rb ? 1 : 0)
        case Op::kI32Ne: I32_BINOP(ra != rb ? 1 : 0)
        case Op::kI32LtS: I32_BINOP(static_cast<int32_t>(ra) < static_cast<int32_t>(rb) ? 1 : 0)
        case Op::kI32LtU: I32_BINOP(ra < rb ? 1 : 0)
        case Op::kI32GtS: I32_BINOP(static_cast<int32_t>(ra) > static_cast<int32_t>(rb) ? 1 : 0)
        case Op::kI32GtU: I32_BINOP(ra > rb ? 1 : 0)
        case Op::kI32LeS: I32_BINOP(static_cast<int32_t>(ra) <= static_cast<int32_t>(rb) ? 1 : 0)
        case Op::kI32LeU: I32_BINOP(ra <= rb ? 1 : 0)
        case Op::kI32GeS: I32_BINOP(static_cast<int32_t>(ra) >= static_cast<int32_t>(rb) ? 1 : 0)
        case Op::kI32GeU: I32_BINOP(ra >= rb ? 1 : 0)

        case Op::kI64Eqz: push32(pop() == 0 ? 1 : 0); break;
        case Op::kI64Eq: { uint64_t rb = pop(), ra = pop(); push32(ra == rb ? 1 : 0); break; }
        case Op::kI64Ne: { uint64_t rb = pop(), ra = pop(); push32(ra != rb ? 1 : 0); break; }
        case Op::kI64LtS: { int64_t rb = static_cast<int64_t>(pop()), ra = static_cast<int64_t>(pop()); push32(ra < rb ? 1 : 0); break; }
        case Op::kI64LtU: { uint64_t rb = pop(), ra = pop(); push32(ra < rb ? 1 : 0); break; }
        case Op::kI64GtS: { int64_t rb = static_cast<int64_t>(pop()), ra = static_cast<int64_t>(pop()); push32(ra > rb ? 1 : 0); break; }
        case Op::kI64GtU: { uint64_t rb = pop(), ra = pop(); push32(ra > rb ? 1 : 0); break; }
        case Op::kI64LeS: { int64_t rb = static_cast<int64_t>(pop()), ra = static_cast<int64_t>(pop()); push32(ra <= rb ? 1 : 0); break; }
        case Op::kI64LeU: { uint64_t rb = pop(), ra = pop(); push32(ra <= rb ? 1 : 0); break; }
        case Op::kI64GeS: { int64_t rb = static_cast<int64_t>(pop()), ra = static_cast<int64_t>(pop()); push32(ra >= rb ? 1 : 0); break; }
        case Op::kI64GeU: { uint64_t rb = pop(), ra = pop(); push32(ra >= rb ? 1 : 0); break; }

        case Op::kF32Eq: F32_CMP(ra == rb)
        case Op::kF32Ne: F32_CMP(ra != rb)
        case Op::kF32Lt: F32_CMP(ra < rb)
        case Op::kF32Gt: F32_CMP(ra > rb)
        case Op::kF32Le: F32_CMP(ra <= rb)
        case Op::kF32Ge: F32_CMP(ra >= rb)
        case Op::kF64Eq: F64_CMP(ra == rb)
        case Op::kF64Ne: F64_CMP(ra != rb)
        case Op::kF64Lt: F64_CMP(ra < rb)
        case Op::kF64Gt: F64_CMP(ra > rb)
        case Op::kF64Le: F64_CMP(ra <= rb)
        case Op::kF64Ge: F64_CMP(ra >= rb)

        case Op::kI32Clz: { uint32_t v = pop32(); push32(v == 0 ? 32 : __builtin_clz(v)); break; }
        case Op::kI32Ctz: { uint32_t v = pop32(); push32(v == 0 ? 32 : __builtin_ctz(v)); break; }
        case Op::kI32Popcnt: push32(__builtin_popcount(pop32())); break;
        case Op::kI32Add: I32_BINOP(ra + rb)
        case Op::kI32Sub: I32_BINOP(ra - rb)
        case Op::kI32Mul: I32_BINOP(ra * rb)
        case Op::kI32DivS: {
          int32_t rb = static_cast<int32_t>(pop32()), ra = static_cast<int32_t>(pop32());
          if (rb == 0) TRAP(TrapKind::kDivByZero);
          if (ra == INT32_MIN && rb == -1) TRAP(TrapKind::kIntOverflow);
          push32(static_cast<uint32_t>(ra / rb));
          break;
        }
        case Op::kI32DivU: {
          uint32_t rb = pop32(), ra = pop32();
          if (rb == 0) TRAP(TrapKind::kDivByZero);
          push32(ra / rb);
          break;
        }
        case Op::kI32RemS: {
          int32_t rb = static_cast<int32_t>(pop32()), ra = static_cast<int32_t>(pop32());
          if (rb == 0) TRAP(TrapKind::kDivByZero);
          push32(ra == INT32_MIN && rb == -1 ? 0 : static_cast<uint32_t>(ra % rb));
          break;
        }
        case Op::kI32RemU: {
          uint32_t rb = pop32(), ra = pop32();
          if (rb == 0) TRAP(TrapKind::kDivByZero);
          push32(ra % rb);
          break;
        }
        case Op::kI32And: I32_BINOP(ra & rb)
        case Op::kI32Or: I32_BINOP(ra | rb)
        case Op::kI32Xor: I32_BINOP(ra ^ rb)
        case Op::kI32Shl: I32_BINOP(ra << (rb & 31))
        case Op::kI32ShrS: I32_BINOP(static_cast<uint32_t>(static_cast<int32_t>(ra) >> (rb & 31)))
        case Op::kI32ShrU: I32_BINOP(ra >> (rb & 31))
        case Op::kI32Rotl: I32_BINOP((ra << (rb & 31)) | (ra >> ((32 - rb) & 31)))
        case Op::kI32Rotr: I32_BINOP((ra >> (rb & 31)) | (ra << ((32 - rb) & 31)))

        case Op::kI64Clz: { uint64_t v = pop(); push(v == 0 ? 64 : __builtin_clzll(v)); break; }
        case Op::kI64Ctz: { uint64_t v = pop(); push(v == 0 ? 64 : __builtin_ctzll(v)); break; }
        case Op::kI64Popcnt: push(__builtin_popcountll(pop())); break;
        case Op::kI64Add: I64_BINOP(ra + rb)
        case Op::kI64Sub: I64_BINOP(ra - rb)
        case Op::kI64Mul: I64_BINOP(ra * rb)
        case Op::kI64DivS: {
          int64_t rb = static_cast<int64_t>(pop()), ra = static_cast<int64_t>(pop());
          if (rb == 0) TRAP(TrapKind::kDivByZero);
          if (ra == INT64_MIN && rb == -1) TRAP(TrapKind::kIntOverflow);
          push(static_cast<uint64_t>(ra / rb));
          break;
        }
        case Op::kI64DivU: {
          uint64_t rb = pop(), ra = pop();
          if (rb == 0) TRAP(TrapKind::kDivByZero);
          push(ra / rb);
          break;
        }
        case Op::kI64RemS: {
          int64_t rb = static_cast<int64_t>(pop()), ra = static_cast<int64_t>(pop());
          if (rb == 0) TRAP(TrapKind::kDivByZero);
          push(ra == INT64_MIN && rb == -1 ? 0 : static_cast<uint64_t>(ra % rb));
          break;
        }
        case Op::kI64RemU: {
          uint64_t rb = pop(), ra = pop();
          if (rb == 0) TRAP(TrapKind::kDivByZero);
          push(ra % rb);
          break;
        }
        case Op::kI64And: I64_BINOP(ra & rb)
        case Op::kI64Or: I64_BINOP(ra | rb)
        case Op::kI64Xor: I64_BINOP(ra ^ rb)
        case Op::kI64Shl: I64_BINOP(ra << (rb & 63))
        case Op::kI64ShrS: I64_BINOP(static_cast<uint64_t>(static_cast<int64_t>(ra) >> (rb & 63)))
        case Op::kI64ShrU: I64_BINOP(ra >> (rb & 63))
        case Op::kI64Rotl: I64_BINOP((ra << (rb & 63)) | (ra >> ((64 - rb) & 63)))
        case Op::kI64Rotr: I64_BINOP((ra >> (rb & 63)) | (ra << ((64 - rb) & 63)))

        case Op::kF32Abs: push(BitsOfF32(std::fabs(F32OfBits(pop())))); break;
        case Op::kF32Neg: push(BitsOfF32(-F32OfBits(pop()))); break;
        case Op::kF32Ceil: push(BitsOfF32(std::ceil(F32OfBits(pop())))); break;
        case Op::kF32Floor: push(BitsOfF32(std::floor(F32OfBits(pop())))); break;
        case Op::kF32Trunc: push(BitsOfF32(std::trunc(F32OfBits(pop())))); break;
        case Op::kF32Nearest: push(BitsOfF32(std::nearbyintf(F32OfBits(pop())))); break;
        case Op::kF32Sqrt: push(BitsOfF32(std::sqrt(F32OfBits(pop())))); break;
        case Op::kF32Add: F32_BINOP(ra + rb)
        case Op::kF32Sub: F32_BINOP(ra - rb)
        case Op::kF32Mul: F32_BINOP(ra * rb)
        case Op::kF32Div: F32_BINOP(ra / rb)
        case Op::kF32Min: F32_BINOP(FMin32(ra, rb))
        case Op::kF32Max: F32_BINOP(FMax32(ra, rb))
        case Op::kF32Copysign: F32_BINOP(std::copysign(ra, rb))

        case Op::kF64Abs: push(BitsOfF64(std::fabs(F64OfBits(pop())))); break;
        case Op::kF64Neg: push(BitsOfF64(-F64OfBits(pop()))); break;
        case Op::kF64Ceil: push(BitsOfF64(std::ceil(F64OfBits(pop())))); break;
        case Op::kF64Floor: push(BitsOfF64(std::floor(F64OfBits(pop())))); break;
        case Op::kF64Trunc: push(BitsOfF64(std::trunc(F64OfBits(pop())))); break;
        case Op::kF64Nearest: push(BitsOfF64(std::nearbyint(F64OfBits(pop())))); break;
        case Op::kF64Sqrt: push(BitsOfF64(std::sqrt(F64OfBits(pop())))); break;
        case Op::kF64Add: F64_BINOP(ra + rb)
        case Op::kF64Sub: F64_BINOP(ra - rb)
        case Op::kF64Mul: F64_BINOP(ra * rb)
        case Op::kF64Div: F64_BINOP(ra / rb)
        case Op::kF64Min: F64_BINOP(FMin64(ra, rb))
        case Op::kF64Max: F64_BINOP(FMax64(ra, rb))
        case Op::kF64Copysign: F64_BINOP(std::copysign(ra, rb))

        case Op::kI32WrapI64: push32(static_cast<uint32_t>(pop())); break;
        case Op::kI32TruncF32S: {
          float v = F32OfBits(pop());
          if (std::isnan(v)) TRAP(TrapKind::kInvalidConversion);
          if (v >= 2147483648.0f || v < -2147483648.0f) TRAP(TrapKind::kIntOverflow);
          push32(static_cast<uint32_t>(static_cast<int32_t>(v)));
          break;
        }
        case Op::kI32TruncF32U: {
          float v = F32OfBits(pop());
          if (std::isnan(v)) TRAP(TrapKind::kInvalidConversion);
          if (v >= 4294967296.0f || v <= -1.0f) TRAP(TrapKind::kIntOverflow);
          push32(static_cast<uint32_t>(v));
          break;
        }
        case Op::kI32TruncF64S: {
          double v = F64OfBits(pop());
          if (std::isnan(v)) TRAP(TrapKind::kInvalidConversion);
          if (v >= 2147483648.0 || v <= -2147483649.0) TRAP(TrapKind::kIntOverflow);
          push32(static_cast<uint32_t>(static_cast<int32_t>(v)));
          break;
        }
        case Op::kI32TruncF64U: {
          double v = F64OfBits(pop());
          if (std::isnan(v)) TRAP(TrapKind::kInvalidConversion);
          if (v >= 4294967296.0 || v <= -1.0) TRAP(TrapKind::kIntOverflow);
          push32(static_cast<uint32_t>(v));
          break;
        }
        case Op::kI64ExtendI32S:
          push(static_cast<uint64_t>(static_cast<int64_t>(static_cast<int32_t>(pop32()))));
          break;
        case Op::kI64ExtendI32U: push(pop32()); break;
        case Op::kI64TruncF32S: {
          float v = F32OfBits(pop());
          if (std::isnan(v)) TRAP(TrapKind::kInvalidConversion);
          if (v >= 9223372036854775808.0f || v < -9223372036854775808.0f) {
            TRAP(TrapKind::kIntOverflow);
          }
          push(static_cast<uint64_t>(static_cast<int64_t>(v)));
          break;
        }
        case Op::kI64TruncF32U: {
          float v = F32OfBits(pop());
          if (std::isnan(v)) TRAP(TrapKind::kInvalidConversion);
          if (v >= 18446744073709551616.0f || v <= -1.0f) TRAP(TrapKind::kIntOverflow);
          push(static_cast<uint64_t>(v));
          break;
        }
        case Op::kI64TruncF64S: {
          double v = F64OfBits(pop());
          if (std::isnan(v)) TRAP(TrapKind::kInvalidConversion);
          if (v >= 9223372036854775808.0 || v < -9223372036854775808.0) {
            TRAP(TrapKind::kIntOverflow);
          }
          push(static_cast<uint64_t>(static_cast<int64_t>(v)));
          break;
        }
        case Op::kI64TruncF64U: {
          double v = F64OfBits(pop());
          if (std::isnan(v)) TRAP(TrapKind::kInvalidConversion);
          if (v >= 18446744073709551616.0 || v <= -1.0) TRAP(TrapKind::kIntOverflow);
          push(static_cast<uint64_t>(v));
          break;
        }
        case Op::kF32ConvertI32S: push(BitsOfF32(static_cast<float>(static_cast<int32_t>(pop32())))); break;
        case Op::kF32ConvertI32U: push(BitsOfF32(static_cast<float>(pop32()))); break;
        case Op::kF32ConvertI64S: push(BitsOfF32(static_cast<float>(static_cast<int64_t>(pop())))); break;
        case Op::kF32ConvertI64U: push(BitsOfF32(static_cast<float>(pop()))); break;
        case Op::kF32DemoteF64: push(BitsOfF32(static_cast<float>(F64OfBits(pop())))); break;
        case Op::kF64ConvertI32S: push(BitsOfF64(static_cast<double>(static_cast<int32_t>(pop32())))); break;
        case Op::kF64ConvertI32U: push(BitsOfF64(static_cast<double>(pop32()))); break;
        case Op::kF64ConvertI64S: push(BitsOfF64(static_cast<double>(static_cast<int64_t>(pop())))); break;
        case Op::kF64ConvertI64U: push(BitsOfF64(static_cast<double>(pop()))); break;
        case Op::kF64PromoteF32: push(BitsOfF64(static_cast<double>(F32OfBits(pop())))); break;
        case Op::kI32ReinterpretF32: push32(static_cast<uint32_t>(pop())); break;
        case Op::kI64ReinterpretF64: break;  // bits already on stack
        case Op::kF32ReinterpretI32: break;
        case Op::kF64ReinterpretI64: break;
        case Op::kI32Extend8S: push32(static_cast<uint32_t>(static_cast<int32_t>(static_cast<int8_t>(pop32())))); break;
        case Op::kI32Extend16S: push32(static_cast<uint32_t>(static_cast<int32_t>(static_cast<int16_t>(pop32())))); break;
        case Op::kI64Extend8S: push(static_cast<uint64_t>(static_cast<int64_t>(static_cast<int8_t>(pop())))); break;
        case Op::kI64Extend16S: push(static_cast<uint64_t>(static_cast<int64_t>(static_cast<int16_t>(pop())))); break;
        case Op::kI64Extend32S: push(static_cast<uint64_t>(static_cast<int64_t>(static_cast<int32_t>(pop())))); break;

        case Op::kI32TruncSatF32S: {
          float v = F32OfBits(pop());
          int32_t out;
          if (std::isnan(v)) out = 0;
          else if (v <= -2147483648.0f) out = INT32_MIN;
          else if (v >= 2147483648.0f) out = INT32_MAX;
          else out = static_cast<int32_t>(v);
          push32(static_cast<uint32_t>(out));
          break;
        }
        case Op::kI32TruncSatF32U: {
          float v = F32OfBits(pop());
          uint32_t out;
          if (std::isnan(v) || v <= -1.0f) out = 0;
          else if (v >= 4294967296.0f) out = UINT32_MAX;
          else out = static_cast<uint32_t>(v);
          push32(out);
          break;
        }
        case Op::kI32TruncSatF64S: {
          double v = F64OfBits(pop());
          int32_t out;
          if (std::isnan(v)) out = 0;
          else if (v <= -2147483648.0) out = INT32_MIN;
          else if (v >= 2147483647.0) out = INT32_MAX;
          else out = static_cast<int32_t>(v);
          push32(static_cast<uint32_t>(out));
          break;
        }
        case Op::kI32TruncSatF64U: {
          double v = F64OfBits(pop());
          uint32_t out;
          if (std::isnan(v) || v <= -1.0) out = 0;
          else if (v >= 4294967295.0) out = UINT32_MAX;
          else out = static_cast<uint32_t>(v);
          push32(out);
          break;
        }
        case Op::kI64TruncSatF32S: {
          float v = F32OfBits(pop());
          int64_t out;
          if (std::isnan(v)) out = 0;
          else if (v <= -9223372036854775808.0f) out = INT64_MIN;
          else if (v >= 9223372036854775808.0f) out = INT64_MAX;
          else out = static_cast<int64_t>(v);
          push(static_cast<uint64_t>(out));
          break;
        }
        case Op::kI64TruncSatF32U: {
          float v = F32OfBits(pop());
          uint64_t out;
          if (std::isnan(v) || v <= -1.0f) out = 0;
          else if (v >= 18446744073709551616.0f) out = UINT64_MAX;
          else out = static_cast<uint64_t>(v);
          push(out);
          break;
        }
        case Op::kI64TruncSatF64S: {
          double v = F64OfBits(pop());
          int64_t out;
          if (std::isnan(v)) out = 0;
          else if (v <= -9223372036854775808.0) out = INT64_MIN;
          else if (v >= 9223372036854775808.0) out = INT64_MAX;
          else out = static_cast<int64_t>(v);
          push(static_cast<uint64_t>(out));
          break;
        }
        case Op::kI64TruncSatF64U: {
          double v = F64OfBits(pop());
          uint64_t out;
          if (std::isnan(v) || v <= -1.0) out = 0;
          else if (v >= 18446744073709551616.0) out = UINT64_MAX;
          else out = static_cast<uint64_t>(v);
          push(out);
          break;
        }

#define ATOMIC_EA(size)                                                      \
  uint64_t ea = static_cast<uint64_t>(pop32()) + in.a;                       \
  if (mem == nullptr || !mem->InBounds(ea, size)) TRAP(TrapKind::kMemOutOfBounds); \
  if ((ea & ((size) - 1)) != 0) TRAP(TrapKind::kUnalignedAtomic)

        case Op::kAtomicNotify: {
          uint32_t count = pop32();
          ATOMIC_EA(4);
          push32(mem->Notify(ea, count));
          break;
        }
        case Op::kAtomicWait32: {
          int64_t timeout = static_cast<int64_t>(pop());
          uint32_t expected = pop32();
          ATOMIC_EA(4);
          push32(static_cast<uint32_t>(mem->Wait32(ea, expected, timeout)));
          break;
        }
        case Op::kAtomicWait64: {
          int64_t timeout = static_cast<int64_t>(pop());
          uint64_t expected = pop();
          ATOMIC_EA(8);
          push32(static_cast<uint32_t>(mem->Wait64(ea, expected, timeout)));
          break;
        }
        case Op::kAtomicFence:
          __atomic_thread_fence(__ATOMIC_SEQ_CST);
          break;
        case Op::kI32AtomicLoad: {
          ATOMIC_EA(4);
          uint32_t v;
          __atomic_load(reinterpret_cast<uint32_t*>(mem->At(ea)), &v, __ATOMIC_SEQ_CST);
          push32(v);
          break;
        }
        case Op::kI64AtomicLoad: {
          ATOMIC_EA(8);
          uint64_t v;
          __atomic_load(reinterpret_cast<uint64_t*>(mem->At(ea)), &v, __ATOMIC_SEQ_CST);
          push(v);
          break;
        }
        case Op::kI32AtomicStore: {
          uint32_t v = pop32();
          ATOMIC_EA(4);
          __atomic_store(reinterpret_cast<uint32_t*>(mem->At(ea)), &v, __ATOMIC_SEQ_CST);
          break;
        }
        case Op::kI64AtomicStore: {
          uint64_t v = pop();
          ATOMIC_EA(8);
          __atomic_store(reinterpret_cast<uint64_t*>(mem->At(ea)), &v, __ATOMIC_SEQ_CST);
          break;
        }

#define ATOMIC_RMW32(builtin)                                                \
  {                                                                          \
    uint32_t v = pop32();                                                    \
    ATOMIC_EA(4);                                                            \
    push32(builtin(reinterpret_cast<uint32_t*>(mem->At(ea)), v, __ATOMIC_SEQ_CST)); \
    break;                                                                   \
  }
#define ATOMIC_RMW64(builtin)                                                \
  {                                                                          \
    uint64_t v = pop();                                                      \
    ATOMIC_EA(8);                                                            \
    push(builtin(reinterpret_cast<uint64_t*>(mem->At(ea)), v, __ATOMIC_SEQ_CST)); \
    break;                                                                   \
  }

        case Op::kI32AtomicRmwAdd: ATOMIC_RMW32(__atomic_fetch_add)
        case Op::kI64AtomicRmwAdd: ATOMIC_RMW64(__atomic_fetch_add)
        case Op::kI32AtomicRmwSub: ATOMIC_RMW32(__atomic_fetch_sub)
        case Op::kI64AtomicRmwSub: ATOMIC_RMW64(__atomic_fetch_sub)
        case Op::kI32AtomicRmwAnd: ATOMIC_RMW32(__atomic_fetch_and)
        case Op::kI64AtomicRmwAnd: ATOMIC_RMW64(__atomic_fetch_and)
        case Op::kI32AtomicRmwOr: ATOMIC_RMW32(__atomic_fetch_or)
        case Op::kI64AtomicRmwOr: ATOMIC_RMW64(__atomic_fetch_or)
        case Op::kI32AtomicRmwXor: ATOMIC_RMW32(__atomic_fetch_xor)
        case Op::kI64AtomicRmwXor: ATOMIC_RMW64(__atomic_fetch_xor)
        case Op::kI32AtomicRmwXchg: ATOMIC_RMW32(__atomic_exchange_n)
        case Op::kI64AtomicRmwXchg: ATOMIC_RMW64(__atomic_exchange_n)
        case Op::kI32AtomicRmwCmpxchg: {
          uint32_t replacement = pop32();
          uint32_t expected = pop32();
          ATOMIC_EA(4);
          __atomic_compare_exchange_n(reinterpret_cast<uint32_t*>(mem->At(ea)),
                                      &expected, replacement, false,
                                      __ATOMIC_SEQ_CST, __ATOMIC_SEQ_CST);
          push32(expected);
          break;
        }
        case Op::kI64AtomicRmwCmpxchg: {
          uint64_t replacement = pop();
          uint64_t expected = pop();
          ATOMIC_EA(8);
          __atomic_compare_exchange_n(reinterpret_cast<uint64_t*>(mem->At(ea)),
                                      &expected, replacement, false,
                                      __ATOMIC_SEQ_CST, __ATOMIC_SEQ_CST);
          push(expected);
          break;
        }

        default:
          ctx.SetTrap(TrapKind::kHostError, "unimplemented opcode");
          return ctx.trap;
      }
    }
  }
  return TrapKind::kNone;
}

#undef TRAP

RunResult Invoke(Instance* inst, const FuncRef& ref, const std::vector<Value>& args,
                 const ExecOptions& opts) {
  RunResult result;
  if (ref.IsNull()) {
    result.trap = TrapKind::kHostError;
    result.trap_message = "null function reference";
    return result;
  }
  if (args.size() != ref.type->params.size()) {
    result.trap = TrapKind::kHostError;
    result.trap_message = "argument count mismatch";
    return result;
  }

  ExecContext ctx;
  ctx.root = inst;
  ctx.opts = opts;
  ctx.poll = &inst->safepoint_fn();

  if (ref.IsHost()) {
    for (const Value& v : args) {
      ctx.stack.push_back(v.bits);
    }
    TrapKind t = CallHost(ctx, *ref.host);
    result.trap = t != TrapKind::kNone ? t : ctx.trap;
    result.trap_message = ctx.trap_msg;
    result.exit_code = ctx.exit_code;
    result.executed_instrs = ctx.executed;
    if (result.trap == TrapKind::kNone) {
      for (size_t i = 0; i < ref.type->results.size(); ++i) {
        Value v;
        v.type = ref.type->results[i];
        v.bits = ctx.stack[i];
        result.values.push_back(v);
      }
    }
    return result;
  }

  for (const Value& v : args) {
    ctx.stack.push_back(v.bits);
  }
  if (!PushFrame(ctx, ref)) {
    result.trap = ctx.trap;
    return result;
  }
  if (opts.scheme == SafepointScheme::kFunction && ctx.poll != nullptr && *ctx.poll) {
    (*ctx.poll)(ctx);
  }
  TrapKind t = ctx.trap != TrapKind::kNone ? ctx.trap : RunLoop(ctx);
  result.trap = t;
  result.trap_message = ctx.trap_msg;
  result.exit_code = ctx.exit_code;
  result.executed_instrs = ctx.executed;
  if (t == TrapKind::kNone) {
    size_t nres = ref.type->results.size();
    for (size_t i = 0; i < nres; ++i) {
      Value v;
      v.type = ref.type->results[i];
      v.bits = ctx.stack[ctx.stack.size() - nres + i];
      result.values.push_back(v);
    }
  }
  return result;
}

}  // namespace wasm
