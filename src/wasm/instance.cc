#include "src/wasm/instance.h"

#include <cstring>

#include "src/common/logging.h"
#include "src/wasm/interp.h"

namespace wasm {

const char* DispatchModeName(DispatchMode m) {
  switch (m) {
    case DispatchMode::kAuto: return "auto";
    case DispatchMode::kSwitch: return "switch";
    case DispatchMode::kThreaded: return "threaded";
  }
  return "<bad>";
}

const char* SafepointSchemeName(SafepointScheme s) {
  switch (s) {
    case SafepointScheme::kNone: return "none";
    case SafepointScheme::kLoop: return "loop";
    case SafepointScheme::kFunction: return "function";
    case SafepointScheme::kEveryInstr: return "all";
  }
  return "<bad>";
}

common::StatusOr<uint32_t> Instance::FindExportedFuncIndex(const std::string& name) const {
  const Export* e = module_->FindExport(name, ExternKind::kFunc);
  if (e == nullptr) {
    return common::NotFound("no exported function named '" + name + "'");
  }
  return e->index;
}

RunResult Instance::Call(uint32_t func_index, const std::vector<Value>& args,
                         const ExecOptions& opts) {
  if (func_index >= funcs_.size()) {
    RunResult r;
    r.trap = TrapKind::kHostError;
    r.trap_message = "function index out of range";
    return r;
  }
  return CallRef(funcs_[func_index], args, opts);
}

RunResult Instance::CallExport(const std::string& export_name,
                               const std::vector<Value>& args, const ExecOptions& opts) {
  auto idx = FindExportedFuncIndex(export_name);
  if (!idx.ok()) {
    RunResult r;
    r.trap = TrapKind::kHostError;
    r.trap_message = idx.status().ToString();
    return r;
  }
  return Call(*idx, args, opts);
}

RunResult Instance::CallRef(const FuncRef& ref, const std::vector<Value>& args,
                            const ExecOptions& opts) {
  return Invoke(this, ref, args, opts);
}

void Linker::DefineHostFunc(const std::string& module, const std::string& name,
                            FuncType type, HostFn fn) {
  auto host = std::make_unique<HostFunc>();
  host->type = std::move(type);
  host->fn = std::move(fn);
  host->name = module + "." + name;
  ExternVal val;
  val.kind = ExternKind::kFunc;
  val.funcref.type = &host->type;
  val.funcref.host = host.get();
  defs_[Key(module, name)] = std::move(val);
  host_funcs_.push_back(std::move(host));
}

void Linker::DefineMemory(const std::string& module, const std::string& name,
                          std::shared_ptr<Memory> memory) {
  ExternVal val;
  val.kind = ExternKind::kMemory;
  val.memory = std::move(memory);
  defs_[Key(module, name)] = std::move(val);
}

void Linker::DefineTable(const std::string& module, const std::string& name,
                         std::shared_ptr<TableInst> table) {
  ExternVal val;
  val.kind = ExternKind::kTable;
  val.table = std::move(table);
  defs_[Key(module, name)] = std::move(val);
}

void Linker::DefineGlobal(const std::string& module, const std::string& name,
                          GlobalType type, uint64_t bits) {
  ExternVal val;
  val.kind = ExternKind::kGlobal;
  val.global_type = type;
  val.global_bits = bits;
  defs_[Key(module, name)] = std::move(val);
}

common::Status Linker::DefineInstanceExports(const std::string& as_module,
                                             Instance* instance) {
  for (const Export& e : instance->module().exports) {
    if (e.kind == ExternKind::kFunc) {
      ExternVal val;
      val.kind = ExternKind::kFunc;
      val.funcref = instance->func(e.index);
      defs_[Key(as_module, e.name)] = std::move(val);
    } else if (e.kind == ExternKind::kMemory) {
      ExternVal val;
      val.kind = ExternKind::kMemory;
      val.memory = instance->memory(e.index);
      defs_[Key(as_module, e.name)] = std::move(val);
    }
  }
  return common::OkStatus();
}

common::StatusOr<std::unique_ptr<Instance>> Linker::Instantiate(
    std::shared_ptr<const Module> module) {
  return Instantiate(std::move(module), InstantiateOptions());
}

common::StatusOr<std::unique_ptr<Instance>> Linker::Instantiate(
    std::shared_ptr<const Module> module, const InstantiateOptions& opts) {
  if (!module->validated) {
    return common::FailedPrecondition("module must be validated before instantiation");
  }
  auto inst = std::unique_ptr<Instance>(new Instance());
  inst->module_ = module;
  inst->name_ = opts.instance_name.empty() ? module->name : opts.instance_name;
  inst->user_data_ = opts.user_data;

  // Resolve imports in declaration order.
  for (const Import& imp : module->imports) {
    auto it = defs_.find(Key(imp.module, imp.name));
    if (it == defs_.end()) {
      return common::NotFound("unresolved import " + imp.module + "." + imp.name);
    }
    const ExternVal& val = it->second;
    if (val.kind != imp.kind) {
      return common::InvalidArgument("import kind mismatch for " + imp.module + "." +
                                     imp.name);
    }
    switch (imp.kind) {
      case ExternKind::kFunc: {
        const FuncType& want = module->types[imp.type_index];
        if (!(want == *val.funcref.type)) {
          return common::InvalidArgument("import signature mismatch for " + imp.module +
                                         "." + imp.name + ": want " + want.ToString() +
                                         " got " + val.funcref.type->ToString());
        }
        inst->funcs_.push_back(val.funcref);
        break;
      }
      case ExternKind::kMemory:
        inst->memories_.push_back(val.memory);
        break;
      case ExternKind::kTable:
        inst->tables_.push_back(val.table);
        break;
      case ExternKind::kGlobal: {
        if (val.global_type.mut || imp.global_type.mut) {
          return common::Unimplemented("mutable global imports are not supported");
        }
        GlobalInst g;
        g.type = imp.global_type;
        g.bits = val.global_bits;
        inst->globals_.push_back(g);
        break;
      }
    }
  }

  // Local definitions. When memory 0 is overridden (thread clones, pooled
  // slab reuse), the first local declaration is not Create()d — the override
  // takes its slot below and no reservation syscalls are issued.
  const bool override_replaces_local0 =
      opts.memory0_override != nullptr && inst->memories_.empty();
  for (size_t mi = 0; mi < module->memories.size(); ++mi) {
    if (mi == 0 && override_replaces_local0) {
      inst->memories_.push_back(nullptr);  // placeholder, installed below
      continue;
    }
    ASSIGN_OR_RETURN(std::shared_ptr<Memory> mem,
                     Memory::Create(module->memories[mi].limits));
    inst->memories_.push_back(std::move(mem));
  }
  if (opts.memory0_override != nullptr) {
    // Single owner of the override decision, whether memory 0 is imported or
    // locally declared: the slab must cover the declared min either way.
    uint64_t declared_min = 0;
    if (module->num_imported_memories > 0) {
      for (const Import& imp : module->imports) {
        if (imp.kind == ExternKind::kMemory) {
          declared_min = imp.limits.min;
          break;
        }
      }
    } else if (!module->memories.empty()) {
      declared_min = module->memories[0].limits.min;
    }
    if (declared_min > opts.memory0_override->max_pages()) {
      return common::InvalidArgument("memory override smaller than declared min");
    }
    if (inst->memories_.empty()) {
      inst->memories_.push_back(opts.memory0_override);
    } else {
      inst->memories_[0] = opts.memory0_override;
    }
  }
  for (const TableDecl& t : module->tables) {
    auto table = std::make_shared<TableInst>();
    table->limits = t.limits;
    table->elems.resize(t.limits.min);
    inst->tables_.push_back(std::move(table));
  }
  for (const Global& g : module->globals) {
    GlobalInst gi;
    gi.type = g.type;
    if (g.init.kind == InitExpr::Kind::kConst) {
      gi.bits = g.init.bits;
    } else {
      if (g.init.global_index >= inst->globals_.size()) {
        return common::InvalidArgument("global init references undefined global");
      }
      gi.bits = inst->globals_[g.init.global_index].bits;
    }
    inst->globals_.push_back(gi);
  }

  // Function index space: imports already pushed; now local functions.
  for (const Function& f : module->functions) {
    FuncRef ref;
    ref.type = &module->types[f.type_index];
    ref.code = &f;
    ref.owner = inst.get();
    inst->funcs_.push_back(ref);
  }

  // Element segments.
  for (const ElemSegment& seg : module->elems) {
    if (seg.table_index >= inst->tables_.size()) {
      return common::InvalidArgument("elem segment table index out of range");
    }
    TableInst& table = *inst->tables_[seg.table_index];
    uint64_t offset = seg.offset.kind == InitExpr::Kind::kConst
                          ? seg.offset.bits
                          : inst->globals_[seg.offset.global_index].bits;
    if (offset + seg.func_indices.size() > table.elems.size()) {
      return common::OutOfRange("elem segment out of table bounds");
    }
    for (size_t i = 0; i < seg.func_indices.size(); ++i) {
      uint32_t fi = seg.func_indices[i];
      if (fi >= inst->funcs_.size()) {
        return common::InvalidArgument("elem segment function index out of range");
      }
      table.elems[offset + i] = inst->funcs_[fi];
    }
  }

  // Data segments.
  if (opts.apply_data) {
    for (const DataSegment& seg : module->datas) {
      if (seg.memory_index >= inst->memories_.size()) {
        return common::InvalidArgument("data segment memory index out of range");
      }
      Memory& mem = *inst->memories_[seg.memory_index];
      uint64_t offset = seg.offset.kind == InitExpr::Kind::kConst
                            ? seg.offset.bits
                            : inst->globals_[seg.offset.global_index].bits;
      if (!mem.InBounds(offset, seg.bytes.size())) {
        return common::OutOfRange("data segment out of memory bounds");
      }
      std::memcpy(mem.At(offset), seg.bytes.data(), seg.bytes.size());
    }
  }

  if (opts.run_start && module->start.has_value()) {
    RunResult r = inst->Call(*module->start, {});
    if (!r.ok()) {
      return common::Internal("start function trapped: " + std::string(TrapKindName(r.trap)));
    }
  }
  return inst;
}

}  // namespace wasm
