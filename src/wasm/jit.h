// Baseline template-JIT tier over the prepared instruction stream.
//
// The tier stitches per-op x86-64 stencils over exactly the stream the
// threaded interpreter executes: superinstructions stay fused, fuel is
// charged per linear_cost[pc] segment at the same gates, and all operands
// live in the interpreter's plain-form stack slots (operand k of a frame at
// stack slot stack_base + k, i32 values zero-extended to the full 8-byte
// slot). Because compiled code never caches a value anywhere the
// interpreter would not, every segment gate is an OSR seam: compiled code
// can exit at any gate (or deopt at any instruction boundary) and the
// interpreter continues with bit-identical executed_instrs, fuel
// accounting, trap kinds, and suspension/snapshot state. Anything the
// stencil table does not cover — floating point, truncations, atomics,
// memory.grow/fill/copy, host calls — exits to the interpreter, which
// RE-EXECUTES the instruction from an unconsumed state (the exit uncharges
// the remainder of the segment first), so the slow ops have exactly one
// implementation and the switch loop stays the semantics oracle.
//
// Entry points are the threaded loop's frame_entry and loop-header hooks
// (RequestEnter), which also drive count-based tier-up; RunLoop's driver
// then trampolines into compiled code (Execute) and reconciles its exits.
#ifndef SRC_WASM_JIT_H_
#define SRC_WASM_JIT_H_

#include <cstddef>
#include <memory>

#include "src/wasm/interp.h"
#include "src/wasm/module.h"
#include "src/wasm/types.h"

// The tier rides on the threaded loop's OSR seams and emits x86-64 with a
// GCC/Clang top-level-asm trampoline; anywhere that stack is unavailable
// the tier compiles out entirely and JitAvailable() reports false.
#if defined(WASM_JIT) && defined(WASM_THREADED_DISPATCH) && \
    defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define WASM_JIT_OK 1
#else
#define WASM_JIT_OK 0
#endif

namespace wasm {
namespace jit {

// Allocates the module's tier state (per-function slots + counters). Called
// by PrepareModule; returns null when the tier is compiled out. Re-prepare
// REPLACES the state: compiled code is keyed to the prepared stream's pcs.
std::shared_ptr<JitModuleState> CreateModuleState(size_t num_functions);

#if WASM_JIT_OK

// Tier-up decision point, called from the threaded loop's OSR hooks with
// fr->pc / ctx.executed already synced. Bumps the frame's function heat,
// triggers compilation past ExecOptions::jit_threshold (CAS latch: exactly
// one compiler per function across concurrent instances), and returns true
// when compiled code is ready to enter at fr->pc — the hook then spills its
// TOS cache and returns to RunLoop's driver with ctx.jit_enter set.
bool RequestEnter(ExecContext& ctx);

// Runs compiled code starting at ctx.frames.back() (validated by
// RequestEnter) and keeps executing natively across calls and returns while
// callees/callers are compiled. Returns kNone either with the run finished
// (frames empty, results in plain form at the stack top) or with the
// interpreter expected to continue at frames.back() (fr->pc / ctx.executed
// / stack all exact); returns a trap kind on traps raised from native state
// (safepoint polls). All other traps deopt to the interpreter first so
// their billing and messages come from the oracle path.
TrapKind Execute(ExecContext& ctx);

// interp.cc's PushFrame, exported for Execute's native call path so frame
// geometry has exactly one implementation.
bool PushFrameForJit(ExecContext& ctx, const FuncRef& ref);

#endif  // WASM_JIT_OK

}  // namespace jit
}  // namespace wasm

#endif  // SRC_WASM_JIT_H_
