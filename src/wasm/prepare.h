// Post-validation translation pass: rewrites each function's decoded,
// validator-annotated Instr stream into an execution-optimized form
// (Function::prepared) — peephole-fused superinstructions, remapped branch
// targets, and per-pc straight-line cost metadata that lets the interpreter
// hoist fuel charging and safepoint checks to basic-block granularity.
//
// The pass is semantics-preserving by construction: every superinstruction
// carries the source-instruction count it replaces (Instr::cost), fusion
// never crosses a branch-target boundary, and Function::code is left intact
// for the encoder and for the kEveryInstr safepoint slow path. Validate()
// runs it automatically with fusion enabled; callers (tests, A/B benches)
// may re-run it with different options at any point where no frame is
// executing the function.
#ifndef SRC_WASM_PREPARE_H_
#define SRC_WASM_PREPARE_H_

#include <cstdint>

#include "src/wasm/module.h"

namespace wasm {

struct PrepareOptions {
  bool fuse = true;  // false: 1:1 translation (A/B baseline, still prepared)
  // Import-space function count of the owning module. Call sites with a
  // statically known local-wasm callee (index >= this) are rewritten to the
  // kFCallWasm fast-path op; 0 (the default for bare PrepareFunction calls
  // without module context) keeps every call on the generic path, which is
  // always correct. PrepareModule fills it from the module.
  uint32_t num_imported_funcs = 0;
  uint32_t num_funcs = 0;  // total function index space (bounds the rewrite)
};

// PrepareStats lives in module.h (the Module keeps the last run's stats).

// Ops after which control does not simply fall to pc+1 (or where the
// interpreter needs an exact executed count: safepoint sites, calls, traps
// that end the run). These end the straight-line segments that linear_cost
// measures; everything else is charged as part of its segment. Shared with
// the baseline-JIT tier, whose compiled code places its fuel gates and OSR
// seams at exactly these boundaries.
inline bool IsSegmentTerminator(Op op) {
  switch (op) {
    case Op::kUnreachable:
    case Op::kLoop:  // back-edge target and loop-scheme safepoint site
    case Op::kIf:
    case Op::kElse:
    case Op::kBr:
    case Op::kBrIf:
    case Op::kBrTable:
    case Op::kReturn:
    case Op::kCall:
    case Op::kCallIndirect:
    case Op::kFBrIfEqz:
    case Op::kFI32CmpBrIf:
    case Op::kFI64CmpBrIf:
    case Op::kFLocalTeeBrIf:
    case Op::kFLocalLocalCmpBrIf:
    case Op::kFCallWasm:
      return true;
    default:
      return false;
  }
}

// Rebuilds fn.prepared from fn.code. The function must already be
// validator-annotated (resolved branch targets, synthetic trailing return).
void PrepareFunction(Function& fn, const PrepareOptions& opts,
                     PrepareStats* stats = nullptr);

// Prepares every local function in the module. Idempotent; safe to re-run
// with different options between executions.
PrepareStats PrepareModule(Module& module, const PrepareOptions& opts = {});

}  // namespace wasm

#endif  // SRC_WASM_PREPARE_H_
