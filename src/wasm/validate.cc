#include "src/wasm/validate.h"

#include <optional>
#include <string>
#include <vector>

#include "src/wasm/jit.h"
#include "src/wasm/prepare.h"

namespace wasm {

namespace {

// Stack-effect signature for "simple" (non-control) operators, encoded as
// "<pops>:<push>" with i=i32, l=i64, f=f32, d=f64. Returns nullptr for
// operators handled specially.
const char* SimpleSig(Op op) {
  switch (op) {
    // consts
    case Op::kI32Const: return ":i";
    case Op::kI64Const: return ":l";
    case Op::kF32Const: return ":f";
    case Op::kF64Const: return ":d";
    // i32 unary/binary
    case Op::kI32Eqz: return "i:i";
    case Op::kI32Eq: case Op::kI32Ne: case Op::kI32LtS: case Op::kI32LtU:
    case Op::kI32GtS: case Op::kI32GtU: case Op::kI32LeS: case Op::kI32LeU:
    case Op::kI32GeS: case Op::kI32GeU:
      return "ii:i";
    case Op::kI32Clz: case Op::kI32Ctz: case Op::kI32Popcnt:
    case Op::kI32Extend8S: case Op::kI32Extend16S:
      return "i:i";
    case Op::kI32Add: case Op::kI32Sub: case Op::kI32Mul: case Op::kI32DivS:
    case Op::kI32DivU: case Op::kI32RemS: case Op::kI32RemU: case Op::kI32And:
    case Op::kI32Or: case Op::kI32Xor: case Op::kI32Shl: case Op::kI32ShrS:
    case Op::kI32ShrU: case Op::kI32Rotl: case Op::kI32Rotr:
      return "ii:i";
    // i64
    case Op::kI64Eqz: return "l:i";
    case Op::kI64Eq: case Op::kI64Ne: case Op::kI64LtS: case Op::kI64LtU:
    case Op::kI64GtS: case Op::kI64GtU: case Op::kI64LeS: case Op::kI64LeU:
    case Op::kI64GeS: case Op::kI64GeU:
      return "ll:i";
    case Op::kI64Clz: case Op::kI64Ctz: case Op::kI64Popcnt:
    case Op::kI64Extend8S: case Op::kI64Extend16S: case Op::kI64Extend32S:
      return "l:l";
    case Op::kI64Add: case Op::kI64Sub: case Op::kI64Mul: case Op::kI64DivS:
    case Op::kI64DivU: case Op::kI64RemS: case Op::kI64RemU: case Op::kI64And:
    case Op::kI64Or: case Op::kI64Xor: case Op::kI64Shl: case Op::kI64ShrS:
    case Op::kI64ShrU: case Op::kI64Rotl: case Op::kI64Rotr:
      return "ll:l";
    // f32
    case Op::kF32Eq: case Op::kF32Ne: case Op::kF32Lt: case Op::kF32Gt:
    case Op::kF32Le: case Op::kF32Ge:
      return "ff:i";
    case Op::kF32Abs: case Op::kF32Neg: case Op::kF32Ceil: case Op::kF32Floor:
    case Op::kF32Trunc: case Op::kF32Nearest: case Op::kF32Sqrt:
      return "f:f";
    case Op::kF32Add: case Op::kF32Sub: case Op::kF32Mul: case Op::kF32Div:
    case Op::kF32Min: case Op::kF32Max: case Op::kF32Copysign:
      return "ff:f";
    // f64
    case Op::kF64Eq: case Op::kF64Ne: case Op::kF64Lt: case Op::kF64Gt:
    case Op::kF64Le: case Op::kF64Ge:
      return "dd:i";
    case Op::kF64Abs: case Op::kF64Neg: case Op::kF64Ceil: case Op::kF64Floor:
    case Op::kF64Trunc: case Op::kF64Nearest: case Op::kF64Sqrt:
      return "d:d";
    case Op::kF64Add: case Op::kF64Sub: case Op::kF64Mul: case Op::kF64Div:
    case Op::kF64Min: case Op::kF64Max: case Op::kF64Copysign:
      return "dd:d";
    // conversions
    case Op::kI32WrapI64: return "l:i";
    case Op::kI32TruncF32S: case Op::kI32TruncF32U:
    case Op::kI32TruncSatF32S: case Op::kI32TruncSatF32U:
      return "f:i";
    case Op::kI32TruncF64S: case Op::kI32TruncF64U:
    case Op::kI32TruncSatF64S: case Op::kI32TruncSatF64U:
      return "d:i";
    case Op::kI64ExtendI32S: case Op::kI64ExtendI32U: return "i:l";
    case Op::kI64TruncF32S: case Op::kI64TruncF32U:
    case Op::kI64TruncSatF32S: case Op::kI64TruncSatF32U:
      return "f:l";
    case Op::kI64TruncF64S: case Op::kI64TruncF64U:
    case Op::kI64TruncSatF64S: case Op::kI64TruncSatF64U:
      return "d:l";
    case Op::kF32ConvertI32S: case Op::kF32ConvertI32U: return "i:f";
    case Op::kF32ConvertI64S: case Op::kF32ConvertI64U: return "l:f";
    case Op::kF32DemoteF64: return "d:f";
    case Op::kF64ConvertI32S: case Op::kF64ConvertI32U: return "i:d";
    case Op::kF64ConvertI64S: case Op::kF64ConvertI64U: return "l:d";
    case Op::kF64PromoteF32: return "f:d";
    case Op::kI32ReinterpretF32: return "f:i";
    case Op::kI64ReinterpretF64: return "d:l";
    case Op::kF32ReinterpretI32: return "i:f";
    case Op::kF64ReinterpretI64: return "l:d";
    // memory
    case Op::kI32Load: case Op::kI32Load8S: case Op::kI32Load8U:
    case Op::kI32Load16S: case Op::kI32Load16U:
      return "i:i";
    case Op::kI64Load: case Op::kI64Load8S: case Op::kI64Load8U:
    case Op::kI64Load16S: case Op::kI64Load16U: case Op::kI64Load32S:
    case Op::kI64Load32U:
      return "i:l";
    case Op::kF32Load: return "i:f";
    case Op::kF64Load: return "i:d";
    case Op::kI32Store: case Op::kI32Store8: case Op::kI32Store16: return "ii:";
    case Op::kI64Store: case Op::kI64Store8: case Op::kI64Store16:
    case Op::kI64Store32:
      return "il:";
    case Op::kF32Store: return "if:";
    case Op::kF64Store: return "id:";
    case Op::kMemorySize: return ":i";
    case Op::kMemoryGrow: return "i:i";
    case Op::kMemoryCopy: case Op::kMemoryFill: return "iii:";
    // atomics
    case Op::kAtomicNotify: return "ii:i";
    case Op::kAtomicWait32: return "iil:i";
    case Op::kAtomicWait64: return "ill:i";
    case Op::kAtomicFence: return ":";
    case Op::kI32AtomicLoad: return "i:i";
    case Op::kI64AtomicLoad: return "i:l";
    case Op::kI32AtomicStore: return "ii:";
    case Op::kI64AtomicStore: return "il:";
    case Op::kI32AtomicRmwAdd: case Op::kI32AtomicRmwSub:
    case Op::kI32AtomicRmwAnd: case Op::kI32AtomicRmwOr:
    case Op::kI32AtomicRmwXor: case Op::kI32AtomicRmwXchg:
      return "ii:i";
    case Op::kI64AtomicRmwAdd: case Op::kI64AtomicRmwSub:
    case Op::kI64AtomicRmwAnd: case Op::kI64AtomicRmwOr:
    case Op::kI64AtomicRmwXor: case Op::kI64AtomicRmwXchg:
      return "il:l";
    case Op::kI32AtomicRmwCmpxchg: return "iii:i";
    case Op::kI64AtomicRmwCmpxchg: return "ill:l";
    default:
      return nullptr;
  }
}

ValType TypeOfChar(char c) {
  switch (c) {
    case 'i': return ValType::kI32;
    case 'l': return ValType::kI64;
    case 'f': return ValType::kF32;
    default: return ValType::kF64;
  }
}

bool OpNeedsMemory(Op op) {
  ImmKind k = OpImmKind(op);
  if (k == ImmKind::kMem || k == ImmKind::kMemIdx || k == ImmKind::kMemMemIdx) {
    return op != Op::kAtomicFence;
  }
  return false;
}

class FunctionValidator {
 public:
  FunctionValidator(const Module& module, Function& fn,
                    const std::vector<GlobalType>& global_types)
      : module_(module), fn_(fn), global_types_(global_types) {
    const FuncType& type = module.types[fn.type_index];
    locals_.assign(type.params.begin(), type.params.end());
    locals_.insert(locals_.end(), fn.locals.begin(), fn.locals.end());
    result_arity_ = static_cast<uint16_t>(type.results.size());
    if (!type.results.empty()) {
      result_type_ = type.results[0];
    }
  }

  common::Status Run();

 private:
  struct Ctrl {
    Op op = Op::kBlock;
    std::optional<ValType> result;
    uint32_t height = 0;
    bool unreachable = false;
    uint32_t block_pc = 0;   // pc of the block/loop/if instruction
    uint32_t else_pc = 0;    // pc of kElse (for if)
    std::vector<uint32_t> br_fixups;  // pcs of br/br_if needing end target
    // (br_table index in fn.br_tables, target slot) pairs needing end target
    std::vector<std::pair<uint32_t, uint32_t>> table_fixups;
  };

  common::Status Fail(const std::string& msg) {
    return common::InvalidArgument("validate " +
                                   (fn_.debug_name.empty() ? "<fn>" : fn_.debug_name) +
                                   " @pc=" + std::to_string(pc_) + ": " + msg);
  }

  bool PopAny(std::optional<ValType>* out) {
    Ctrl& top = ctrls_.back();
    if (stack_.size() == top.height) {
      if (top.unreachable) {
        *out = std::nullopt;
        return true;
      }
      return false;
    }
    *out = stack_.back();
    stack_.pop_back();
    return true;
  }

  bool PopExpect(ValType want) {
    std::optional<ValType> got;
    if (!PopAny(&got)) return false;
    return !got.has_value() || *got == want;
  }

  void Push(ValType t) {
    stack_.push_back(t);
    if (stack_.size() > max_stack_) {
      max_stack_ = static_cast<uint32_t>(stack_.size());
    }
  }

  void MarkUnreachable() {
    Ctrl& top = ctrls_.back();
    stack_.resize(top.height);
    top.unreachable = true;
  }

  common::Status CheckLabel(uint32_t depth, Ctrl** out) {
    if (depth >= ctrls_.size()) {
      return Fail("branch depth out of range");
    }
    *out = &ctrls_[ctrls_.size() - 1 - depth];
    return common::OkStatus();
  }

  // Label arity: loops take no values; blocks/ifs carry their result.
  uint16_t LabelArity(const Ctrl& c) const {
    if (c.op == Op::kLoop) return 0;
    return c.result.has_value() ? 1 : 0;
  }
  std::optional<ValType> LabelType(const Ctrl& c) const {
    if (c.op == Op::kLoop) return std::nullopt;
    return c.result;
  }

  // Pops (and re-pushes) the values a branch to `c` carries.
  common::Status CheckBranchValues(const Ctrl& c) {
    if (LabelArity(c) == 1) {
      if (!PopExpect(*LabelType(c))) return Fail("branch value type mismatch");
      Push(*LabelType(c));
    }
    return common::OkStatus();
  }

  // Fills a branch instruction's runtime operands for a resolved target.
  void AnnotateBranch(Instr& in, const Ctrl& c) {
    in.arity = LabelArity(c);
    in.b = c.height;
    if (c.op == Op::kLoop) {
      in.a = c.block_pc;  // jump to the loop header (safepoint site)
    }
    // Forward targets patched at kEnd via fixups.
  }

  common::Status ParseBlockType(uint64_t imm, std::optional<ValType>* out) {
    if (imm == kVoidBlockType) {
      *out = std::nullopt;
      return common::OkStatus();
    }
    switch (imm) {
      case 0x7F: *out = ValType::kI32; return common::OkStatus();
      case 0x7E: *out = ValType::kI64; return common::OkStatus();
      case 0x7D: *out = ValType::kF32; return common::OkStatus();
      case 0x7C: *out = ValType::kF64; return common::OkStatus();
      default:
        return Fail("unsupported block type (multi-value blocks not supported)");
    }
  }

  const Module& module_;
  Function& fn_;
  const std::vector<GlobalType>& global_types_;
  std::vector<ValType> locals_;
  std::vector<ValType> stack_;
  std::vector<Ctrl> ctrls_;
  uint32_t pc_ = 0;
  uint16_t result_arity_ = 0;
  uint32_t max_stack_ = 0;
  std::optional<ValType> result_type_;
};

common::Status FunctionValidator::Run() {
  if (fn_.code.empty() || fn_.code.back().op != Op::kEnd) {
    return Fail("function body must end with 'end'");
  }
  // Function-level pseudo-label: branches to it return from the function.
  Ctrl root;
  root.op = Op::kBlock;
  root.result = result_type_;
  root.height = 0;
  root.block_pc = 0;
  ctrls_.push_back(root);

  const uint32_t end_of_body = static_cast<uint32_t>(fn_.code.size());

  for (pc_ = 0; pc_ < fn_.code.size(); ++pc_) {
    Instr& in = fn_.code[pc_];
    if (OpNeedsMemory(in.op) && module_.NumMemories() == 0) {
      return Fail("memory instruction without declared memory");
    }

    const char* sig = SimpleSig(in.op);
    if (sig != nullptr) {
      const char* colon = sig;
      while (*colon != ':') ++colon;
      for (const char* p = colon - 1; p >= sig; --p) {
        if (!PopExpect(TypeOfChar(*p))) return Fail(std::string("operand mismatch for ") + OpName(in.op));
      }
      if (colon[1] != '\0') {
        Push(TypeOfChar(colon[1]));
      }
      continue;
    }

    switch (in.op) {
      case Op::kUnreachable:
        MarkUnreachable();
        break;
      case Op::kNop:
        break;
      case Op::kBlock:
      case Op::kLoop: {
        Ctrl c;
        c.op = in.op;
        RETURN_IF_ERROR(ParseBlockType(in.imm, &c.result));
        c.height = static_cast<uint32_t>(stack_.size());
        c.block_pc = pc_;
        ctrls_.push_back(c);
        break;
      }
      case Op::kIf: {
        if (!PopExpect(ValType::kI32)) return Fail("if condition must be i32");
        Ctrl c;
        c.op = Op::kIf;
        RETURN_IF_ERROR(ParseBlockType(in.imm, &c.result));
        c.height = static_cast<uint32_t>(stack_.size());
        c.block_pc = pc_;
        ctrls_.push_back(c);
        break;
      }
      case Op::kElse: {
        Ctrl& c = ctrls_.back();
        if (c.op != Op::kIf) return Fail("else without if");
        // Check then-branch produced the result.
        if (c.result.has_value() && !c.unreachable) {
          if (stack_.size() != c.height + 1 || stack_.back() != *c.result) {
            return Fail("then branch result mismatch");
          }
        } else if (!c.unreachable && stack_.size() != c.height) {
          return Fail("then branch stack mismatch");
        }
        stack_.resize(c.height);
        c.unreachable = false;
        c.op = Op::kElse;
        c.else_pc = pc_;
        // if jumps past the else instruction when the condition is false.
        fn_.code[c.block_pc].a = pc_ + 1;
        break;
      }
      case Op::kEnd: {
        Ctrl c = ctrls_.back();
        // Result check.
        if (c.result.has_value() && !c.unreachable) {
          if (stack_.size() != c.height + 1 || stack_.back() != *c.result) {
            return Fail("block result mismatch at end");
          }
        } else if (!c.unreachable && stack_.size() != c.height) {
          return Fail("stack height mismatch at end");
        }
        if (c.op == Op::kIf && c.result.has_value()) {
          return Fail("if with result requires else branch");
        }
        ctrls_.pop_back();
        const bool is_function_end = ctrls_.empty();
        uint32_t end_target = is_function_end ? end_of_body : pc_;
        // Patch the structured-control operands (not for the function-level
        // pseudo-label, which has no real block instruction).
        if (!is_function_end) {
          if (c.op == Op::kIf) {
            fn_.code[c.block_pc].a = end_target;  // no else: false -> end
            fn_.code[c.block_pc].b = end_target;
          } else if (c.op == Op::kElse) {
            fn_.code[c.block_pc].b = end_target;
            fn_.code[c.else_pc].a = end_target;
          } else if (c.op == Op::kBlock || c.op == Op::kLoop) {
            fn_.code[c.block_pc].a = end_target;
          }
        }
        for (uint32_t fixup_pc : c.br_fixups) {
          fn_.code[fixup_pc].a = end_target;
        }
        for (auto [table_idx, slot] : c.table_fixups) {
          fn_.br_tables[table_idx].targets[slot].pc = end_target;
        }
        stack_.resize(c.height);
        if (c.result.has_value()) {
          Push(*c.result);
        }
        if (is_function_end && pc_ + 1 != fn_.code.size()) {
          return Fail("trailing instructions after function end");
        }
        break;
      }
      case Op::kBr: {
        Ctrl* target;
        RETURN_IF_ERROR(CheckLabel(in.a, &target));
        RETURN_IF_ERROR(CheckBranchValues(*target));
        AnnotateBranch(in, *target);
        if (target->op != Op::kLoop) {
          target->br_fixups.push_back(pc_);
        }
        MarkUnreachable();
        break;
      }
      case Op::kBrIf: {
        if (!PopExpect(ValType::kI32)) return Fail("br_if condition must be i32");
        Ctrl* target;
        RETURN_IF_ERROR(CheckLabel(in.a, &target));
        RETURN_IF_ERROR(CheckBranchValues(*target));
        AnnotateBranch(in, *target);
        if (target->op != Op::kLoop) {
          target->br_fixups.push_back(pc_);
        }
        break;
      }
      case Op::kBrTable: {
        if (!PopExpect(ValType::kI32)) return Fail("br_table index must be i32");
        if (in.a >= fn_.br_tables.size()) return Fail("br_table side index out of range");
        BrTable& table = fn_.br_tables[in.a];
        if (table.targets.empty()) return Fail("br_table without default");
        std::optional<uint16_t> arity;
        for (size_t slot = 0; slot < table.targets.size(); ++slot) {
          BrTarget& t = table.targets[slot];
          Ctrl* target;
          RETURN_IF_ERROR(CheckLabel(t.depth, &target));
          if (!arity.has_value()) {
            arity = LabelArity(*target);
          } else if (*arity != LabelArity(*target)) {
            return Fail("br_table targets have mismatched arities");
          }
          RETURN_IF_ERROR(CheckBranchValues(*target));
          t.arity = LabelArity(*target);
          t.height = target->height;
          if (target->op == Op::kLoop) {
            t.pc = target->block_pc;
          } else {
            target->table_fixups.emplace_back(in.a, static_cast<uint32_t>(slot));
          }
        }
        MarkUnreachable();
        break;
      }
      case Op::kReturn: {
        if (result_arity_ == 1) {
          if (!PopExpect(*result_type_)) return Fail("return value type mismatch");
        }
        MarkUnreachable();
        break;
      }
      case Op::kCall: {
        if (in.a >= module_.NumFuncs()) return Fail("call target out of range");
        const FuncType& t = module_.types[module_.FuncTypeIndex(in.a)];
        for (size_t i = t.params.size(); i > 0; --i) {
          if (!PopExpect(t.params[i - 1])) return Fail("call argument mismatch");
        }
        for (ValType r : t.results) Push(r);
        break;
      }
      case Op::kCallIndirect: {
        if (in.a >= module_.types.size()) return Fail("call_indirect type out of range");
        if (in.b >= module_.NumTables()) return Fail("call_indirect table out of range");
        if (!PopExpect(ValType::kI32)) return Fail("call_indirect index must be i32");
        const FuncType& t = module_.types[in.a];
        for (size_t i = t.params.size(); i > 0; --i) {
          if (!PopExpect(t.params[i - 1])) return Fail("call_indirect argument mismatch");
        }
        for (ValType r : t.results) Push(r);
        break;
      }
      case Op::kDrop: {
        std::optional<ValType> v;
        if (!PopAny(&v)) return Fail("drop on empty stack");
        break;
      }
      case Op::kSelect: {
        if (!PopExpect(ValType::kI32)) return Fail("select condition must be i32");
        std::optional<ValType> b, a;
        if (!PopAny(&b) || !PopAny(&a)) return Fail("select on empty stack");
        if (a.has_value() && b.has_value() && *a != *b) {
          return Fail("select operand type mismatch");
        }
        std::optional<ValType> out = a.has_value() ? a : b;
        Push(out.value_or(ValType::kI32));
        break;
      }
      case Op::kLocalGet:
        if (in.a >= locals_.size()) return Fail("local index out of range");
        Push(locals_[in.a]);
        break;
      case Op::kLocalSet:
        if (in.a >= locals_.size()) return Fail("local index out of range");
        if (!PopExpect(locals_[in.a])) return Fail("local.set type mismatch");
        break;
      case Op::kLocalTee:
        if (in.a >= locals_.size()) return Fail("local index out of range");
        if (!PopExpect(locals_[in.a])) return Fail("local.tee type mismatch");
        Push(locals_[in.a]);
        break;
      case Op::kGlobalGet:
        if (in.a >= global_types_.size()) return Fail("global index out of range");
        Push(global_types_[in.a].type);
        break;
      case Op::kGlobalSet:
        if (in.a >= global_types_.size()) return Fail("global index out of range");
        if (!global_types_[in.a].mut) return Fail("global.set on immutable global");
        if (!PopExpect(global_types_[in.a].type)) return Fail("global.set type mismatch");
        break;
      default:
        return Fail(std::string("unhandled opcode ") + OpName(in.op));
    }
  }

  if (!ctrls_.empty()) {
    return Fail("unterminated blocks at end of function");
  }
  // Synthetic return executed when control falls off (or branches to) the
  // function-level label.
  Instr ret;
  ret.op = Op::kReturn;
  fn_.code.push_back(ret);
  fn_.max_operand_stack = max_stack_;
  return common::OkStatus();
}

common::Status ValidateInitExpr(const Module& module, const InitExpr& init,
                                ValType want, uint32_t num_imported_globals) {
  if (init.kind == InitExpr::Kind::kConst) {
    if (init.type != want) {
      return common::InvalidArgument("init expr type mismatch");
    }
    return common::OkStatus();
  }
  if (init.global_index >= num_imported_globals) {
    return common::InvalidArgument("init expr may only reference imported globals");
  }
  return common::OkStatus();
}

}  // namespace

common::Status Validate(Module& module) {
  if (module.validated) {
    return common::OkStatus();
  }

  for (const FuncType& t : module.types) {
    if (t.results.size() > 1) {
      return common::Unimplemented("multi-value results not supported");
    }
  }

  // Recompute import-space counts (parsers fill them, but keep this the
  // single source of truth).
  module.num_imported_funcs = 0;
  module.num_imported_tables = 0;
  module.num_imported_memories = 0;
  module.num_imported_globals = 0;
  std::vector<GlobalType> global_types;
  for (const Import& imp : module.imports) {
    switch (imp.kind) {
      case ExternKind::kFunc:
        if (imp.type_index >= module.types.size()) {
          return common::InvalidArgument("import type index out of range");
        }
        ++module.num_imported_funcs;
        break;
      case ExternKind::kTable:
        ++module.num_imported_tables;
        break;
      case ExternKind::kMemory:
        ++module.num_imported_memories;
        break;
      case ExternKind::kGlobal:
        ++module.num_imported_globals;
        global_types.push_back(imp.global_type);
        break;
    }
  }
  for (const Global& g : module.globals) {
    RETURN_IF_ERROR(ValidateInitExpr(module, g.init, g.type.type,
                                     module.num_imported_globals));
    global_types.push_back(g.type);
  }

  for (const MemoryDecl& m : module.memories) {
    if (m.limits.has_max && m.limits.min > m.limits.max) {
      return common::InvalidArgument("memory min > max");
    }
    if (m.limits.min > (1ULL << 16)) {
      return common::InvalidArgument("memory min exceeds 4GiB");
    }
  }

  for (const Function& f : module.functions) {
    if (f.type_index >= module.types.size()) {
      return common::InvalidArgument("function type index out of range");
    }
  }

  for (const Export& e : module.exports) {
    uint32_t limit = 0;
    switch (e.kind) {
      case ExternKind::kFunc: limit = module.NumFuncs(); break;
      case ExternKind::kTable: limit = module.NumTables(); break;
      case ExternKind::kMemory: limit = module.NumMemories(); break;
      case ExternKind::kGlobal: limit = module.NumGlobals(); break;
    }
    if (e.index >= limit) {
      return common::InvalidArgument("export index out of range: " + e.name);
    }
  }

  for (const ElemSegment& seg : module.elems) {
    if (seg.table_index >= module.NumTables()) {
      return common::InvalidArgument("elem table index out of range");
    }
    RETURN_IF_ERROR(ValidateInitExpr(module, seg.offset, ValType::kI32,
                                     module.num_imported_globals));
    for (uint32_t fi : seg.func_indices) {
      if (fi >= module.NumFuncs()) {
        return common::InvalidArgument("elem function index out of range");
      }
    }
  }
  for (const DataSegment& seg : module.datas) {
    if (seg.memory_index >= module.NumMemories()) {
      return common::InvalidArgument("data memory index out of range");
    }
    RETURN_IF_ERROR(ValidateInitExpr(module, seg.offset, ValType::kI32,
                                     module.num_imported_globals));
  }

  if (module.start.has_value()) {
    if (*module.start >= module.NumFuncs()) {
      return common::InvalidArgument("start function index out of range");
    }
    const FuncType& t = module.types[module.FuncTypeIndex(*module.start)];
    if (!t.params.empty() || !t.results.empty()) {
      return common::InvalidArgument("start function must have type () -> ()");
    }
  }

  PrepareOptions popts;
  popts.num_imported_funcs = module.num_imported_funcs;
  popts.num_funcs = module.NumFuncs();
  PrepareStats pstats;
  for (Function& f : module.functions) {
    FunctionValidator v(module, f, global_types);
    RETURN_IF_ERROR(v.Run());
    // Translate the annotated body into its execution form (fused
    // superinstructions + block fuel metadata) while we still hold the
    // mutable module — everything downstream shares it as const.
    PrepareFunction(f, popts, &pstats);
  }
  module.prepare_stats = pstats;
  // Profile slots survive re-prepares: counts accumulated so far stay
  // attributed to the same function indices, which a re-prepare never moves.
  if (!module.functions.empty() && module.func_profile == nullptr) {
    module.func_profile = std::shared_ptr<FuncProfileSlot[]>(
        new FuncProfileSlot[module.functions.size()]());
  }
  // JIT tier state is created fresh whenever the prepared streams are:
  // compiled code is keyed to the prepared pcs written above. Null when the
  // tier is compiled out.
  module.jit = jit::CreateModuleState(module.functions.size());

  module.validated = true;
  return common::OkStatus();
}

}  // namespace wasm
