#include "src/wasm/memory.h"

#include <errno.h>
#include <string.h>
#include <sys/mman.h>

#include <chrono>

namespace wasm {

common::StatusOr<std::shared_ptr<Memory>> Memory::Create(const Limits& limits) {
  uint64_t max_pages = limits.has_max ? limits.max : kDefaultMaxPages;
  if (max_pages > (1ULL << 16)) {
    max_pages = 1ULL << 16;  // wasm32: 4 GiB hard cap
  }
  if (limits.min > max_pages) {
    return common::InvalidArgument("memory min exceeds max");
  }
  uint64_t reserve = max_pages * kWasmPageSize;
  if (reserve == 0) {
    reserve = kWasmPageSize;  // keep a valid base for empty memories
  }
  void* base = mmap(nullptr, reserve, PROT_NONE,
                    MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE, -1, 0);
  if (base == MAP_FAILED) {
    return common::ResourceExhausted("mmap reservation failed");
  }
  auto mem = std::shared_ptr<Memory>(new Memory());
  mem->base_ = static_cast<uint8_t*>(base);
  mem->max_pages_ = max_pages;
  mem->reserved_bytes_ = reserve;
  mem->shared_ = limits.shared;
  uint64_t initial = limits.min * kWasmPageSize;
  if (initial > 0) {
    if (mprotect(base, initial, PROT_READ | PROT_WRITE) != 0) {
      return common::ResourceExhausted("mprotect of initial pages failed");
    }
  }
  mem->size_bytes_.store(initial, std::memory_order_release);
  mem->high_water_pages_.store(limits.min, std::memory_order_release);
  return mem;
}

Memory::~Memory() {
  if (base_ != nullptr) {
    munmap(base_, reserved_bytes_);
  }
}

int64_t Memory::Grow(uint64_t delta_pages) {
  std::lock_guard<std::mutex> lock(grow_mu_);
  uint64_t old_bytes = size_bytes_.load(std::memory_order_relaxed);
  uint64_t old_pages = old_bytes / kWasmPageSize;
  if (delta_pages == 0) {
    return static_cast<int64_t>(old_pages);
  }
  if (old_pages + delta_pages > max_pages_) {
    return -1;
  }
  uint64_t grow_budget = grow_budget_pages_.load(std::memory_order_acquire);
  if (grow_budget != 0 && old_pages + delta_pages > grow_budget) {
    return -1;  // tenant memory cap: fails exactly like the declared max
  }
  uint64_t new_bytes = (old_pages + delta_pages) * kWasmPageSize;
  if (mprotect(base_ + old_bytes, new_bytes - old_bytes, PROT_READ | PROT_WRITE) != 0) {
    return -1;
  }
  size_bytes_.store(new_bytes, std::memory_order_release);
  uint64_t new_pages = old_pages + delta_pages;
  if (new_pages > high_water_pages_.load(std::memory_order_relaxed)) {
    high_water_pages_.store(new_pages, std::memory_order_release);
  }
  return static_cast<int64_t>(old_pages);
}

common::Status Memory::ResetToPages(uint64_t pages) {
  std::lock_guard<std::mutex> lock(grow_mu_);
  if (pages > max_pages_) {
    return common::InvalidArgument("reset beyond reserved maximum");
  }
  uint64_t new_bytes = pages * kWasmPageSize;
  uint64_t cur_bytes = size_bytes_.load(std::memory_order_relaxed);
  if (cur_bytes == new_bytes) {
    // Common pooled-reuse case: same module, memory never grew. DONTNEED
    // restores zero pages without touching protections or VMAs, which is
    // markedly cheaper than the remap below.
    if (new_bytes > 0 && madvise(base_, new_bytes, MADV_DONTNEED) == 0) {
      high_water_pages_.store(pages, std::memory_order_release);
      grow_budget_pages_.store(0, std::memory_order_release);
      return common::OkStatus();
    }
    // fall through to the remap path on madvise failure
  }
  uint64_t drop_bytes = cur_bytes > new_bytes ? cur_bytes : new_bytes;
  if (drop_bytes > 0) {
    void* got = mmap(base_, drop_bytes, PROT_NONE,
                     MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE | MAP_FIXED, -1, 0);
    if (got == MAP_FAILED) {
      return common::Internal("anonymous remap during memory reset failed");
    }
  }
  if (new_bytes > 0 &&
      mprotect(base_, new_bytes, PROT_READ | PROT_WRITE) != 0) {
    return common::ResourceExhausted("mprotect of reset pages failed");
  }
  size_bytes_.store(new_bytes, std::memory_order_release);
  high_water_pages_.store(pages, std::memory_order_release);
  grow_budget_pages_.store(0, std::memory_order_release);
  return common::OkStatus();
}

bool Memory::GrowToCover(uint64_t end) {
  uint64_t cur = size_bytes();
  if (end <= cur) {
    return true;
  }
  uint64_t need_pages = (end + kWasmPageSize - 1) / kWasmPageSize;
  uint64_t cur_pages = cur / kWasmPageSize;
  if (need_pages <= cur_pages) {
    return true;
  }
  return Grow(need_pages - cur_pages) >= 0;
}

int Memory::MapFileFixed(uint64_t offset, uint64_t len, int prot, int flags,
                         int fd, int64_t file_offset) {
  if (len == 0) {
    return EINVAL;
  }
  uint64_t end = offset + len;
  if (end < offset || end > max_pages_ * kWasmPageSize) {
    return ENOMEM;
  }
  if (!GrowToCover(end)) {
    return ENOMEM;
  }
  prot &= (PROT_READ | PROT_WRITE);  // never executable inside the sandbox
  void* got = mmap(base_ + offset, len, prot, flags | MAP_FIXED, fd, file_offset);
  if (got == MAP_FAILED) {
    return errno;
  }
  return 0;
}

int Memory::UnmapFixed(uint64_t offset, uint64_t len) {
  uint64_t end = offset + len;
  if (end < offset || end > size_bytes()) {
    return EINVAL;
  }
  void* got = mmap(base_ + offset, len, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS | MAP_FIXED, -1, 0);
  if (got == MAP_FAILED) {
    return errno;
  }
  return 0;
}

int Memory::ProtectFixed(uint64_t offset, uint64_t len, int prot) {
  uint64_t end = offset + len;
  if (end < offset || end > size_bytes()) {
    return EINVAL;
  }
  prot &= (PROT_READ | PROT_WRITE);
  if (mprotect(base_ + offset, len, prot) != 0) {
    return errno;
  }
  return 0;
}

template <typename T>
int Memory::WaitImpl(uint64_t addr, T expected, int64_t timeout_ns) {
  std::unique_lock<std::mutex> lock(wait_mu_);
  T current;
  __atomic_load(reinterpret_cast<T*>(base_ + addr), &current, __ATOMIC_SEQ_CST);
  if (current != expected) {
    return 1;  // not-equal
  }
  WaitQueue& q = wait_queues_[addr];
  uint64_t epoch = q.wake_epoch;
  ++q.waiters;
  int result;
  if (timeout_ns < 0) {
    q.cv.wait(lock, [&] { return q.wake_epoch != epoch; });
    result = 0;
  } else {
    bool woken = q.cv.wait_for(lock, std::chrono::nanoseconds(timeout_ns),
                               [&] { return q.wake_epoch != epoch; });
    result = woken ? 0 : 2;
  }
  --q.waiters;
  if (q.waiters == 0) {
    wait_queues_.erase(addr);
  }
  return result;
}

int Memory::Wait32(uint64_t addr, uint32_t expected, int64_t timeout_ns) {
  return WaitImpl<uint32_t>(addr, expected, timeout_ns);
}

int Memory::Wait64(uint64_t addr, uint64_t expected, int64_t timeout_ns) {
  return WaitImpl<uint64_t>(addr, expected, timeout_ns);
}

uint32_t Memory::Notify(uint64_t addr, uint32_t count) {
  std::lock_guard<std::mutex> lock(wait_mu_);
  auto it = wait_queues_.find(addr);
  if (it == wait_queues_.end() || it->second.waiters == 0) {
    return 0;
  }
  uint32_t woken = static_cast<uint32_t>(
      count < it->second.waiters ? count : it->second.waiters);
  // Simplification: notify_all and let non-target waiters re-sleep via epoch
  // check; with the small waiter counts in our workloads this is sufficient
  // and keeps the queue structure simple.
  it->second.wake_epoch++;
  it->second.cv.notify_all();
  return woken;
}

}  // namespace wasm
