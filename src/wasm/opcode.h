// Opcode table. Single-byte opcodes use their wire value; 0xFC-prefixed ops
// are flattened to 0x100|sub, 0xFE-prefixed (atomics) to 0x200|sub. The
// X-macro drives the name table, immediate classification, text-format lookup
// and the encoder/decoder.
#ifndef SRC_WASM_OPCODE_H_
#define SRC_WASM_OPCODE_H_

#include <cstdint>
#include <optional>
#include <string_view>

namespace wasm {

// Immediate operand classes as they appear in the binary format.
enum class ImmKind : uint8_t {
  kNone,
  kBlock,         // blocktype
  kLabel,         // label depth (u32)
  kBrTable,       // vector of depths + default
  kFunc,          // function index
  kCallIndirect,  // type index + table index
  kLocal,         // local index
  kGlobal,        // global index
  kMem,           // align + offset
  kMemIdx,        // single 0x00 memory index byte (memory.size/grow/fill)
  kMemMemIdx,     // two 0x00 bytes (memory.copy)
  kI32Const,
  kI64Const,
  kF32Const,
  kF64Const,
};

// clang-format off
#define WASM_OPCODE_LIST(V) \
  V(kUnreachable,      0x00, kNone,         "unreachable") \
  V(kNop,              0x01, kNone,         "nop") \
  V(kBlock,            0x02, kBlock,        "block") \
  V(kLoop,             0x03, kBlock,        "loop") \
  V(kIf,               0x04, kBlock,        "if") \
  V(kElse,             0x05, kNone,         "else") \
  V(kEnd,              0x0B, kNone,         "end") \
  V(kBr,               0x0C, kLabel,        "br") \
  V(kBrIf,             0x0D, kLabel,        "br_if") \
  V(kBrTable,          0x0E, kBrTable,      "br_table") \
  V(kReturn,           0x0F, kNone,         "return") \
  V(kCall,             0x10, kFunc,         "call") \
  V(kCallIndirect,     0x11, kCallIndirect, "call_indirect") \
  V(kDrop,             0x1A, kNone,         "drop") \
  V(kSelect,           0x1B, kNone,         "select") \
  V(kLocalGet,         0x20, kLocal,        "local.get") \
  V(kLocalSet,         0x21, kLocal,        "local.set") \
  V(kLocalTee,         0x22, kLocal,        "local.tee") \
  V(kGlobalGet,        0x23, kGlobal,       "global.get") \
  V(kGlobalSet,        0x24, kGlobal,       "global.set") \
  V(kI32Load,          0x28, kMem,          "i32.load") \
  V(kI64Load,          0x29, kMem,          "i64.load") \
  V(kF32Load,          0x2A, kMem,          "f32.load") \
  V(kF64Load,          0x2B, kMem,          "f64.load") \
  V(kI32Load8S,        0x2C, kMem,          "i32.load8_s") \
  V(kI32Load8U,        0x2D, kMem,          "i32.load8_u") \
  V(kI32Load16S,       0x2E, kMem,          "i32.load16_s") \
  V(kI32Load16U,       0x2F, kMem,          "i32.load16_u") \
  V(kI64Load8S,        0x30, kMem,          "i64.load8_s") \
  V(kI64Load8U,        0x31, kMem,          "i64.load8_u") \
  V(kI64Load16S,       0x32, kMem,          "i64.load16_s") \
  V(kI64Load16U,       0x33, kMem,          "i64.load16_u") \
  V(kI64Load32S,       0x34, kMem,          "i64.load32_s") \
  V(kI64Load32U,       0x35, kMem,          "i64.load32_u") \
  V(kI32Store,         0x36, kMem,          "i32.store") \
  V(kI64Store,         0x37, kMem,          "i64.store") \
  V(kF32Store,         0x38, kMem,          "f32.store") \
  V(kF64Store,         0x39, kMem,          "f64.store") \
  V(kI32Store8,        0x3A, kMem,          "i32.store8") \
  V(kI32Store16,       0x3B, kMem,          "i32.store16") \
  V(kI64Store8,        0x3C, kMem,          "i64.store8") \
  V(kI64Store16,       0x3D, kMem,          "i64.store16") \
  V(kI64Store32,       0x3E, kMem,          "i64.store32") \
  V(kMemorySize,       0x3F, kMemIdx,       "memory.size") \
  V(kMemoryGrow,       0x40, kMemIdx,       "memory.grow") \
  V(kI32Const,         0x41, kI32Const,     "i32.const") \
  V(kI64Const,         0x42, kI64Const,     "i64.const") \
  V(kF32Const,         0x43, kF32Const,     "f32.const") \
  V(kF64Const,         0x44, kF64Const,     "f64.const") \
  V(kI32Eqz,           0x45, kNone,         "i32.eqz") \
  V(kI32Eq,            0x46, kNone,         "i32.eq") \
  V(kI32Ne,            0x47, kNone,         "i32.ne") \
  V(kI32LtS,           0x48, kNone,         "i32.lt_s") \
  V(kI32LtU,           0x49, kNone,         "i32.lt_u") \
  V(kI32GtS,           0x4A, kNone,         "i32.gt_s") \
  V(kI32GtU,           0x4B, kNone,         "i32.gt_u") \
  V(kI32LeS,           0x4C, kNone,         "i32.le_s") \
  V(kI32LeU,           0x4D, kNone,         "i32.le_u") \
  V(kI32GeS,           0x4E, kNone,         "i32.ge_s") \
  V(kI32GeU,           0x4F, kNone,         "i32.ge_u") \
  V(kI64Eqz,           0x50, kNone,         "i64.eqz") \
  V(kI64Eq,            0x51, kNone,         "i64.eq") \
  V(kI64Ne,            0x52, kNone,         "i64.ne") \
  V(kI64LtS,           0x53, kNone,         "i64.lt_s") \
  V(kI64LtU,           0x54, kNone,         "i64.lt_u") \
  V(kI64GtS,           0x55, kNone,         "i64.gt_s") \
  V(kI64GtU,           0x56, kNone,         "i64.gt_u") \
  V(kI64LeS,           0x57, kNone,         "i64.le_s") \
  V(kI64LeU,           0x58, kNone,         "i64.le_u") \
  V(kI64GeS,           0x59, kNone,         "i64.ge_s") \
  V(kI64GeU,           0x5A, kNone,         "i64.ge_u") \
  V(kF32Eq,            0x5B, kNone,         "f32.eq") \
  V(kF32Ne,            0x5C, kNone,         "f32.ne") \
  V(kF32Lt,            0x5D, kNone,         "f32.lt") \
  V(kF32Gt,            0x5E, kNone,         "f32.gt") \
  V(kF32Le,            0x5F, kNone,         "f32.le") \
  V(kF32Ge,            0x60, kNone,         "f32.ge") \
  V(kF64Eq,            0x61, kNone,         "f64.eq") \
  V(kF64Ne,            0x62, kNone,         "f64.ne") \
  V(kF64Lt,            0x63, kNone,         "f64.lt") \
  V(kF64Gt,            0x64, kNone,         "f64.gt") \
  V(kF64Le,            0x65, kNone,         "f64.le") \
  V(kF64Ge,            0x66, kNone,         "f64.ge") \
  V(kI32Clz,           0x67, kNone,         "i32.clz") \
  V(kI32Ctz,           0x68, kNone,         "i32.ctz") \
  V(kI32Popcnt,        0x69, kNone,         "i32.popcnt") \
  V(kI32Add,           0x6A, kNone,         "i32.add") \
  V(kI32Sub,           0x6B, kNone,         "i32.sub") \
  V(kI32Mul,           0x6C, kNone,         "i32.mul") \
  V(kI32DivS,          0x6D, kNone,         "i32.div_s") \
  V(kI32DivU,          0x6E, kNone,         "i32.div_u") \
  V(kI32RemS,          0x6F, kNone,         "i32.rem_s") \
  V(kI32RemU,          0x70, kNone,         "i32.rem_u") \
  V(kI32And,           0x71, kNone,         "i32.and") \
  V(kI32Or,            0x72, kNone,         "i32.or") \
  V(kI32Xor,           0x73, kNone,         "i32.xor") \
  V(kI32Shl,           0x74, kNone,         "i32.shl") \
  V(kI32ShrS,          0x75, kNone,         "i32.shr_s") \
  V(kI32ShrU,          0x76, kNone,         "i32.shr_u") \
  V(kI32Rotl,          0x77, kNone,         "i32.rotl") \
  V(kI32Rotr,          0x78, kNone,         "i32.rotr") \
  V(kI64Clz,           0x79, kNone,         "i64.clz") \
  V(kI64Ctz,           0x7A, kNone,         "i64.ctz") \
  V(kI64Popcnt,        0x7B, kNone,         "i64.popcnt") \
  V(kI64Add,           0x7C, kNone,         "i64.add") \
  V(kI64Sub,           0x7D, kNone,         "i64.sub") \
  V(kI64Mul,           0x7E, kNone,         "i64.mul") \
  V(kI64DivS,          0x7F, kNone,         "i64.div_s") \
  V(kI64DivU,          0x80, kNone,         "i64.div_u") \
  V(kI64RemS,          0x81, kNone,         "i64.rem_s") \
  V(kI64RemU,          0x82, kNone,         "i64.rem_u") \
  V(kI64And,           0x83, kNone,         "i64.and") \
  V(kI64Or,            0x84, kNone,         "i64.or") \
  V(kI64Xor,           0x85, kNone,         "i64.xor") \
  V(kI64Shl,           0x86, kNone,         "i64.shl") \
  V(kI64ShrS,          0x87, kNone,         "i64.shr_s") \
  V(kI64ShrU,          0x88, kNone,         "i64.shr_u") \
  V(kI64Rotl,          0x89, kNone,         "i64.rotl") \
  V(kI64Rotr,          0x8A, kNone,         "i64.rotr") \
  V(kF32Abs,           0x8B, kNone,         "f32.abs") \
  V(kF32Neg,           0x8C, kNone,         "f32.neg") \
  V(kF32Ceil,          0x8D, kNone,         "f32.ceil") \
  V(kF32Floor,         0x8E, kNone,         "f32.floor") \
  V(kF32Trunc,         0x8F, kNone,         "f32.trunc") \
  V(kF32Nearest,       0x90, kNone,         "f32.nearest") \
  V(kF32Sqrt,          0x91, kNone,         "f32.sqrt") \
  V(kF32Add,           0x92, kNone,         "f32.add") \
  V(kF32Sub,           0x93, kNone,         "f32.sub") \
  V(kF32Mul,           0x94, kNone,         "f32.mul") \
  V(kF32Div,           0x95, kNone,         "f32.div") \
  V(kF32Min,           0x96, kNone,         "f32.min") \
  V(kF32Max,           0x97, kNone,         "f32.max") \
  V(kF32Copysign,      0x98, kNone,         "f32.copysign") \
  V(kF64Abs,           0x99, kNone,         "f64.abs") \
  V(kF64Neg,           0x9A, kNone,         "f64.neg") \
  V(kF64Ceil,          0x9B, kNone,         "f64.ceil") \
  V(kF64Floor,         0x9C, kNone,         "f64.floor") \
  V(kF64Trunc,         0x9D, kNone,         "f64.trunc") \
  V(kF64Nearest,       0x9E, kNone,         "f64.nearest") \
  V(kF64Sqrt,          0x9F, kNone,         "f64.sqrt") \
  V(kF64Add,           0xA0, kNone,         "f64.add") \
  V(kF64Sub,           0xA1, kNone,         "f64.sub") \
  V(kF64Mul,           0xA2, kNone,         "f64.mul") \
  V(kF64Div,           0xA3, kNone,         "f64.div") \
  V(kF64Min,           0xA4, kNone,         "f64.min") \
  V(kF64Max,           0xA5, kNone,         "f64.max") \
  V(kF64Copysign,      0xA6, kNone,         "f64.copysign") \
  V(kI32WrapI64,       0xA7, kNone,         "i32.wrap_i64") \
  V(kI32TruncF32S,     0xA8, kNone,         "i32.trunc_f32_s") \
  V(kI32TruncF32U,     0xA9, kNone,         "i32.trunc_f32_u") \
  V(kI32TruncF64S,     0xAA, kNone,         "i32.trunc_f64_s") \
  V(kI32TruncF64U,     0xAB, kNone,         "i32.trunc_f64_u") \
  V(kI64ExtendI32S,    0xAC, kNone,         "i64.extend_i32_s") \
  V(kI64ExtendI32U,    0xAD, kNone,         "i64.extend_i32_u") \
  V(kI64TruncF32S,     0xAE, kNone,         "i64.trunc_f32_s") \
  V(kI64TruncF32U,     0xAF, kNone,         "i64.trunc_f32_u") \
  V(kI64TruncF64S,     0xB0, kNone,         "i64.trunc_f64_s") \
  V(kI64TruncF64U,     0xB1, kNone,         "i64.trunc_f64_u") \
  V(kF32ConvertI32S,   0xB2, kNone,         "f32.convert_i32_s") \
  V(kF32ConvertI32U,   0xB3, kNone,         "f32.convert_i32_u") \
  V(kF32ConvertI64S,   0xB4, kNone,         "f32.convert_i64_s") \
  V(kF32ConvertI64U,   0xB5, kNone,         "f32.convert_i64_u") \
  V(kF32DemoteF64,     0xB6, kNone,         "f32.demote_f64") \
  V(kF64ConvertI32S,   0xB7, kNone,         "f64.convert_i32_s") \
  V(kF64ConvertI32U,   0xB8, kNone,         "f64.convert_i32_u") \
  V(kF64ConvertI64S,   0xB9, kNone,         "f64.convert_i64_s") \
  V(kF64ConvertI64U,   0xBA, kNone,         "f64.convert_i64_u") \
  V(kF64PromoteF32,    0xBB, kNone,         "f64.promote_f32") \
  V(kI32ReinterpretF32, 0xBC, kNone,        "i32.reinterpret_f32") \
  V(kI64ReinterpretF64, 0xBD, kNone,        "i64.reinterpret_f64") \
  V(kF32ReinterpretI32, 0xBE, kNone,        "f32.reinterpret_i32") \
  V(kF64ReinterpretI64, 0xBF, kNone,        "f64.reinterpret_i64") \
  V(kI32Extend8S,      0xC0, kNone,         "i32.extend8_s") \
  V(kI32Extend16S,     0xC1, kNone,         "i32.extend16_s") \
  V(kI64Extend8S,      0xC2, kNone,         "i64.extend8_s") \
  V(kI64Extend16S,     0xC3, kNone,         "i64.extend16_s") \
  V(kI64Extend32S,     0xC4, kNone,         "i64.extend32_s") \
  V(kI32TruncSatF32S,  0x100, kNone,        "i32.trunc_sat_f32_s") \
  V(kI32TruncSatF32U,  0x101, kNone,        "i32.trunc_sat_f32_u") \
  V(kI32TruncSatF64S,  0x102, kNone,        "i32.trunc_sat_f64_s") \
  V(kI32TruncSatF64U,  0x103, kNone,        "i32.trunc_sat_f64_u") \
  V(kI64TruncSatF32S,  0x104, kNone,        "i64.trunc_sat_f32_s") \
  V(kI64TruncSatF32U,  0x105, kNone,        "i64.trunc_sat_f32_u") \
  V(kI64TruncSatF64S,  0x106, kNone,        "i64.trunc_sat_f64_s") \
  V(kI64TruncSatF64U,  0x107, kNone,        "i64.trunc_sat_f64_u") \
  V(kMemoryCopy,       0x10A, kMemMemIdx,   "memory.copy") \
  V(kMemoryFill,       0x10B, kMemIdx,      "memory.fill") \
  V(kAtomicNotify,     0x200, kMem,         "memory.atomic.notify") \
  V(kAtomicWait32,     0x201, kMem,         "memory.atomic.wait32") \
  V(kAtomicWait64,     0x202, kMem,         "memory.atomic.wait64") \
  V(kAtomicFence,      0x203, kMemIdx,      "atomic.fence") \
  V(kI32AtomicLoad,    0x210, kMem,         "i32.atomic.load") \
  V(kI64AtomicLoad,    0x211, kMem,         "i64.atomic.load") \
  V(kI32AtomicStore,   0x217, kMem,         "i32.atomic.store") \
  V(kI64AtomicStore,   0x218, kMem,         "i64.atomic.store") \
  V(kI32AtomicRmwAdd,  0x21E, kMem,         "i32.atomic.rmw.add") \
  V(kI64AtomicRmwAdd,  0x21F, kMem,         "i64.atomic.rmw.add") \
  V(kI32AtomicRmwSub,  0x225, kMem,         "i32.atomic.rmw.sub") \
  V(kI64AtomicRmwSub,  0x226, kMem,         "i64.atomic.rmw.sub") \
  V(kI32AtomicRmwAnd,  0x22C, kMem,         "i32.atomic.rmw.and") \
  V(kI64AtomicRmwAnd,  0x22D, kMem,         "i64.atomic.rmw.and") \
  V(kI32AtomicRmwOr,   0x233, kMem,         "i32.atomic.rmw.or") \
  V(kI64AtomicRmwOr,   0x234, kMem,         "i64.atomic.rmw.or") \
  V(kI32AtomicRmwXor,  0x23A, kMem,         "i32.atomic.rmw.xor") \
  V(kI64AtomicRmwXor,  0x23B, kMem,         "i64.atomic.rmw.xor") \
  V(kI32AtomicRmwXchg, 0x241, kMem,         "i32.atomic.rmw.xchg") \
  V(kI64AtomicRmwXchg, 0x242, kMem,         "i64.atomic.rmw.xchg") \
  V(kI32AtomicRmwCmpxchg, 0x248, kMem,      "i32.atomic.rmw.cmpxchg") \
  V(kI64AtomicRmwCmpxchg, 0x249, kMem,      "i64.atomic.rmw.cmpxchg")

// Internal superinstructions, produced by the prepare pass (src/wasm/prepare)
// from peephole-fused wire-op sequences. They never appear on the wire: the
// decoder/encoder and the text parser only know WASM_OPCODE_LIST, and
// IsKnownOp rejects these values. Instr::cost on a fused op carries the
// number of source instructions it stands for, so fuel accounting is
// bit-identical to the unfused stream. The "~" name prefix marks them as
// non-wire in diagnostics.
#define WASM_INTERNAL_OPCODE_LIST(V) \
  V(kFLocalLocalI32Add, 0x280, kNone, "~local.get+local.get+i32.add") \
  V(kFI32AddConst,      0x281, kNone, "~i32.const+i32.add") \
  V(kFLocalI32Load,     0x282, kNone, "~local.get+i32.load") \
  V(kFBrIfEqz,          0x283, kNone, "~i32.eqz+br_if") \
  V(kFI32CmpBrIf,       0x284, kNone, "~i32.cmp+br_if") \
  V(kFLocalCopy,        0x285, kNone, "~local.get+local.set") \
  V(kFI64ConstOp,       0x286, kNone, "~i64.const+i64.op") \
  V(kFI32ConstOp,       0x287, kNone, "~i32.const+i32.op") \
  V(kFLocalI64Load,     0x288, kNone, "~local.get+i64.load") \
  V(kFI32LoadOp,        0x289, kNone, "~i32.load+i32.op") \
  V(kFI64CmpBrIf,       0x28A, kNone, "~i64.cmp+br_if") \
  V(kFI32CmpSel,        0x28B, kNone, "~i32.cmp+select") \
  V(kFI64CmpSel,        0x28C, kNone, "~i64.cmp+select") \
  V(kFLocalTeeBrIf,     0x28D, kNone, "~local.tee+br_if") \
  V(kFLocalLocalCmp,    0x28E, kNone, "~local.get+local.get+i32.cmp") \
  V(kFLocalLocalCmpBrIf, 0x28F, kNone, "~local.get+local.get+i32.cmp+br_if") \
  V(kFLocalConstI32Op,  0x290, kNone, "~local.get+i32.const+i32.op") \
  V(kFLocalConstI32OpSet, 0x291, kNone, "~local.get+i32.const+i32.op+local.set") \
  V(kFCallWasm,         0x292, kNone, "~call(wasm)")
// clang-format on

// Internal opcodes occupy the dense range [kFirstInternalOp, kOpValueLimit);
// per-op prepare statistics index by (op - kFirstInternalOp).
inline constexpr uint32_t kFirstInternalOp = 0x280;

// One past the largest opcode value (wire or internal); sizes the threaded
// dispatch table.
inline constexpr uint32_t kOpValueLimit = 0x2C0;
inline constexpr uint32_t kNumInternalOps = kOpValueLimit - kFirstInternalOp;

enum class Op : uint16_t {
#define WASM_OP_ENUM(name, value, imm, text) name = value,
  WASM_OPCODE_LIST(WASM_OP_ENUM)
  WASM_INTERNAL_OPCODE_LIST(WASM_OP_ENUM)
#undef WASM_OP_ENUM
};

const char* OpName(Op op);
ImmKind OpImmKind(Op op);
// Looks an opcode up by its text-format mnemonic (used by the WAT parser).
std::optional<Op> OpFromText(std::string_view text);
// True if `raw` (flattened encoding) denotes a known WIRE opcode; internal
// superinstructions are rejected so crafted binaries cannot inject them.
bool IsKnownOp(uint32_t raw);
// True if `op` is an internal superinstruction (prepare-pass output).
bool IsFusedOp(Op op);

}  // namespace wasm

#endif  // SRC_WASM_OPCODE_H_
