// Binary (.wasm) encoder: serializes a Module to the standard wire format.
#ifndef SRC_WASM_ENCODE_H_
#define SRC_WASM_ENCODE_H_

#include <cstdint>
#include <vector>

#include "src/wasm/module.h"

namespace wasm {

std::vector<uint8_t> EncodeModule(const Module& module);

}  // namespace wasm

#endif  // SRC_WASM_ENCODE_H_
