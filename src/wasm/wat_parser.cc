#include "src/wasm/wat_parser.h"

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "src/wasm/opcode.h"
#include "src/wasm/validate.h"

namespace wasm {

namespace {

// ---------------------------------------------------------------- s-exprs --

struct SExpr {
  enum class Kind : uint8_t { kList, kAtom, kString, kId };
  Kind kind = Kind::kAtom;
  std::string text;          // atom text / id (without '$') / decoded string bytes
  std::vector<SExpr> list;
  int line = 0;

  bool IsList() const { return kind == Kind::kList; }
  bool IsAtom() const { return kind == Kind::kAtom; }
  bool IsString() const { return kind == Kind::kString; }
  bool IsId() const { return kind == Kind::kId; }
  bool IsListHead(std::string_view head) const {
    return IsList() && !list.empty() && list[0].IsAtom() && list[0].text == head;
  }
};

class Lexer {
 public:
  explicit Lexer(std::string_view src) : src_(src) {}

  common::Status Tokenize(SExpr* root) {
    root->kind = SExpr::Kind::kList;
    std::vector<SExpr*> open{root};
    while (true) {
      SkipSpace();
      if (pos_ >= src_.size()) break;
      char c = src_[pos_];
      if (c == '(') {
        ++pos_;
        open.back()->list.emplace_back();
        SExpr& e = open.back()->list.back();
        e.kind = SExpr::Kind::kList;
        e.line = line_;
        open.push_back(&e);
      } else if (c == ')') {
        ++pos_;
        if (open.size() == 1) {
          return Err("unbalanced ')'");
        }
        open.pop_back();
      } else if (c == '"') {
        SExpr e;
        e.kind = SExpr::Kind::kString;
        e.line = line_;
        RETURN_IF_ERROR(LexString(&e.text));
        open.back()->list.push_back(std::move(e));
      } else {
        SExpr e;
        e.line = line_;
        size_t start = pos_;
        while (pos_ < src_.size() && !IsDelim(src_[pos_])) ++pos_;
        std::string tok(src_.substr(start, pos_ - start));
        if (!tok.empty() && tok[0] == '$') {
          e.kind = SExpr::Kind::kId;
          e.text = tok.substr(1);
        } else {
          e.kind = SExpr::Kind::kAtom;
          e.text = std::move(tok);
        }
        open.back()->list.push_back(std::move(e));
      }
    }
    if (open.size() != 1) {
      return Err("unbalanced '('");
    }
    return common::OkStatus();
  }

 private:
  static bool IsDelim(char c) {
    return c == '(' || c == ')' || c == '"' || c == ' ' || c == '\t' ||
           c == '\n' || c == '\r' || c == ';';
  }

  common::Status Err(const std::string& msg) {
    return common::InvalidArgument("wat:" + std::to_string(line_) + ": " + msg);
  }

  void SkipSpace() {
    while (pos_ < src_.size()) {
      char c = src_[pos_];
      if (c == '\n') {
        ++line_;
        ++pos_;
      } else if (c == ' ' || c == '\t' || c == '\r') {
        ++pos_;
      } else if (c == ';' && pos_ + 1 < src_.size() && src_[pos_ + 1] == ';') {
        while (pos_ < src_.size() && src_[pos_] != '\n') ++pos_;
      } else if (c == '(' && pos_ + 1 < src_.size() && src_[pos_ + 1] == ';') {
        int depth = 1;
        pos_ += 2;
        while (pos_ < src_.size() && depth > 0) {
          if (src_[pos_] == '\n') ++line_;
          if (src_[pos_] == '(' && pos_ + 1 < src_.size() && src_[pos_ + 1] == ';') {
            ++depth;
            pos_ += 2;
          } else if (src_[pos_] == ';' && pos_ + 1 < src_.size() && src_[pos_ + 1] == ')') {
            --depth;
            pos_ += 2;
          } else {
            ++pos_;
          }
        }
      } else {
        break;
      }
    }
  }

  static int HexVal(char c) {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  }

  common::Status LexString(std::string* out) {
    ++pos_;  // opening quote
    while (pos_ < src_.size() && src_[pos_] != '"') {
      char c = src_[pos_];
      if (c == '\\') {
        if (pos_ + 1 >= src_.size()) return Err("truncated escape");
        char e = src_[pos_ + 1];
        pos_ += 2;
        switch (e) {
          case 'n': out->push_back('\n'); break;
          case 't': out->push_back('\t'); break;
          case 'r': out->push_back('\r'); break;
          case '\\': out->push_back('\\'); break;
          case '"': out->push_back('"'); break;
          case '\'': out->push_back('\''); break;
          default: {
            // WAT hex escape: backslash followed by exactly two hex digits.
            int hi = HexVal(e);
            int lo = pos_ < src_.size() ? HexVal(src_[pos_]) : -1;
            if (hi < 0 || lo < 0) return Err("bad string escape");
            ++pos_;
            out->push_back(static_cast<char>(hi * 16 + lo));
          }
        }
      } else {
        if (c == '\n') ++line_;
        out->push_back(c);
        ++pos_;
      }
    }
    if (pos_ >= src_.size()) return Err("unterminated string");
    ++pos_;  // closing quote
    return common::OkStatus();
  }

  std::string_view src_;
  size_t pos_ = 0;
  int line_ = 1;
};

// ---------------------------------------------------------------- numbers --

bool ParseIntText(const std::string& text, uint64_t* out) {
  std::string s;
  s.reserve(text.size());
  for (char c : text) {
    if (c != '_') s.push_back(c);
  }
  if (s.empty()) return false;
  bool neg = false;
  size_t i = 0;
  if (s[0] == '+' || s[0] == '-') {
    neg = s[0] == '-';
    i = 1;
  }
  if (i >= s.size()) return false;
  uint64_t v = 0;
  if (s.size() - i > 2 && s[i] == '0' && (s[i + 1] == 'x' || s[i + 1] == 'X')) {
    for (size_t k = i + 2; k < s.size(); ++k) {
      char c = s[k];
      int d;
      if (c >= '0' && c <= '9') d = c - '0';
      else if (c >= 'a' && c <= 'f') d = c - 'a' + 10;
      else if (c >= 'A' && c <= 'F') d = c - 'A' + 10;
      else return false;
      v = v * 16 + static_cast<uint64_t>(d);
    }
  } else {
    for (size_t k = i; k < s.size(); ++k) {
      char c = s[k];
      if (c < '0' || c > '9') return false;
      v = v * 10 + static_cast<uint64_t>(c - '0');
    }
  }
  *out = neg ? static_cast<uint64_t>(-static_cast<int64_t>(v)) : v;
  return true;
}

bool ParseFloatText(const std::string& text, double* out) {
  std::string s;
  for (char c : text) {
    if (c != '_') s.push_back(c);
  }
  if (s == "inf" || s == "+inf") {
    *out = INFINITY;
    return true;
  }
  if (s == "-inf") {
    *out = -INFINITY;
    return true;
  }
  if (s == "nan" || s == "+nan" || s == "-nan") {
    *out = NAN;
    return true;
  }
  char* end = nullptr;
  double v = std::strtod(s.c_str(), &end);
  if (end == nullptr || *end != '\0' || end == s.c_str()) return false;
  *out = v;
  return true;
}

// ----------------------------------------------------------------- parser --

class WatModuleParser {
 public:
  common::StatusOr<std::shared_ptr<Module>> Parse(std::string_view source) {
    Lexer lexer(source);
    RETURN_IF_ERROR(lexer.Tokenize(&root_));
    // Accept either a bare field list or a single (module ...) wrapper.
    const SExpr* mod = &root_;
    if (root_.list.size() == 1 && root_.list[0].IsListHead("module")) {
      mod = &root_.list[0];
    }
    module_ = std::make_shared<Module>();
    size_t first = (mod == &root_) ? 0 : 1;
    // Optional module name.
    if (mod != &root_ && mod->list.size() > 1 && mod->list[1].IsId()) {
      module_->name = mod->list[1].text;
      first = 2;
    }

    std::vector<const SExpr*> func_fields;
    // First pass: declarations and index assignment.
    for (size_t i = first; i < mod->list.size(); ++i) {
      const SExpr& field = mod->list[i];
      if (!field.IsList() || field.list.empty() || !field.list[0].IsAtom()) {
        return Err(field, "expected module field");
      }
      const std::string& head = field.list[0].text;
      if (head == "type") {
        RETURN_IF_ERROR(ParseTypeField(field));
      } else if (head == "import") {
        RETURN_IF_ERROR(ParseImportField(field));
      } else if (head == "func") {
        RETURN_IF_ERROR(DeclareFunc(field));
        func_fields.push_back(&field);
      } else if (head == "memory") {
        RETURN_IF_ERROR(ParseMemoryField(field));
      } else if (head == "table") {
        RETURN_IF_ERROR(ParseTableField(field));
      } else if (head == "global") {
        RETURN_IF_ERROR(ParseGlobalField(field));
      } else if (head == "export" || head == "start" || head == "elem" ||
                 head == "data") {
        late_fields_.push_back(&field);
      } else {
        return Err(field, "unknown module field '" + head + "'");
      }
    }

    // Second pass: exports/start/elem/data (need complete name maps).
    for (const SExpr* field : late_fields_) {
      const std::string& head = field->list[0].text;
      if (head == "export") {
        RETURN_IF_ERROR(ParseExportField(*field));
      } else if (head == "start") {
        uint32_t idx;
        RETURN_IF_ERROR(ResolveIndex((*field).list[1], func_names_, "func", &idx));
        module_->start = idx;
      } else if (head == "elem") {
        RETURN_IF_ERROR(ParseElemField(*field));
      } else if (head == "data") {
        RETURN_IF_ERROR(ParseDataField(*field));
      }
    }

    // Third pass: function bodies.
    for (const SExpr* field : func_fields) {
      RETURN_IF_ERROR(ParseFuncBody(*field));
    }

    return module_;
  }

 private:
  common::Status Err(const SExpr& at, const std::string& msg) {
    return common::InvalidArgument("wat:" + std::to_string(at.line) + ": " + msg);
  }

  uint32_t GetOrAddType(const FuncType& type) {
    for (size_t i = 0; i < module_->types.size(); ++i) {
      if (module_->types[i] == type) return static_cast<uint32_t>(i);
    }
    module_->types.push_back(type);
    return static_cast<uint32_t>(module_->types.size() - 1);
  }

  static common::Status NoStatusErr() { return common::OkStatus(); }

  common::Status ParseValType(const SExpr& e, ValType* out) {
    if (!e.IsAtom()) return Err(e, "expected value type");
    if (e.text == "i32") *out = ValType::kI32;
    else if (e.text == "i64") *out = ValType::kI64;
    else if (e.text == "f32") *out = ValType::kF32;
    else if (e.text == "f64") *out = ValType::kF64;
    else if (e.text == "funcref") *out = ValType::kFuncRef;
    else return Err(e, "unknown value type '" + e.text + "'");
    return common::OkStatus();
  }

  // Parses (param ...) / (result ...) lists starting at list index *i.
  // Records parameter names into `param_names` when provided.
  common::Status ParseSignature(const SExpr& field, size_t* i, FuncType* type,
                                std::map<std::string, uint32_t>* param_names) {
    while (*i < field.list.size() && field.list[*i].IsListHead("param")) {
      const SExpr& p = field.list[*i];
      if (p.list.size() >= 2 && p.list[1].IsId()) {
        if (param_names != nullptr) {
          (*param_names)[p.list[1].text] = static_cast<uint32_t>(type->params.size());
        }
        if (p.list.size() != 3) return Err(p, "named param takes exactly one type");
        ValType t;
        RETURN_IF_ERROR(ParseValType(p.list[2], &t));
        type->params.push_back(t);
      } else {
        for (size_t k = 1; k < p.list.size(); ++k) {
          ValType t;
          RETURN_IF_ERROR(ParseValType(p.list[k], &t));
          type->params.push_back(t);
        }
      }
      ++*i;
    }
    while (*i < field.list.size() && field.list[*i].IsListHead("result")) {
      const SExpr& r = field.list[*i];
      for (size_t k = 1; k < r.list.size(); ++k) {
        ValType t;
        RETURN_IF_ERROR(ParseValType(r.list[k], &t));
        type->results.push_back(t);
      }
      ++*i;
    }
    return common::OkStatus();
  }

  common::Status ParseTypeField(const SExpr& field) {
    size_t i = 1;
    std::string name;
    if (i < field.list.size() && field.list[i].IsId()) {
      name = field.list[i].text;
      ++i;
    }
    if (i >= field.list.size() || !field.list[i].IsListHead("func")) {
      return Err(field, "type field must contain (func ...)");
    }
    const SExpr& fn = field.list[i];
    FuncType type;
    size_t j = 1;
    RETURN_IF_ERROR(ParseSignature(fn, &j, &type, nullptr));
    uint32_t idx = static_cast<uint32_t>(module_->types.size());
    module_->types.push_back(type);  // explicit types are not deduped
    if (!name.empty()) type_names_[name] = idx;
    return common::OkStatus();
  }

  common::Status ParseLimits(const SExpr& field, size_t* i, Limits* out) {
    uint64_t v;
    if (*i >= field.list.size() || !field.list[*i].IsAtom() ||
        !ParseIntText(field.list[*i].text, &v)) {
      return Err(field, "expected limits minimum");
    }
    out->min = v;
    ++*i;
    if (*i < field.list.size() && field.list[*i].IsAtom() &&
        ParseIntText(field.list[*i].text, &v)) {
      out->max = v;
      out->has_max = true;
      ++*i;
    }
    if (*i < field.list.size() && field.list[*i].IsAtom() &&
        field.list[*i].text == "shared") {
      out->shared = true;
      ++*i;
    }
    return common::OkStatus();
  }

  common::Status ParseImportField(const SExpr& field) {
    if (field.list.size() < 4 || !field.list[1].IsString() || !field.list[2].IsString()) {
      return Err(field, "import needs module and name strings");
    }
    if (!module_->functions.empty() || !module_->memories.empty() ||
        !module_->globals.empty() || !module_->tables.empty()) {
      return Err(field, "imports must precede definitions");
    }
    Import imp;
    imp.module = field.list[1].text;
    imp.name = field.list[2].text;
    const SExpr& desc = field.list[3];
    if (!desc.IsList() || desc.list.empty()) return Err(field, "bad import descriptor");
    const std::string& kind = desc.list[0].text;
    size_t i = 1;
    std::string bind_name;
    if (i < desc.list.size() && desc.list[i].IsId()) {
      bind_name = desc.list[i].text;
      ++i;
    }
    if (kind == "func") {
      imp.kind = ExternKind::kFunc;
      if (i < desc.list.size() && desc.list[i].IsListHead("type")) {
        uint32_t idx;
        RETURN_IF_ERROR(ResolveIndex(desc.list[i].list[1], type_names_, "type", &idx));
        imp.type_index = idx;
      } else {
        FuncType type;
        RETURN_IF_ERROR(ParseSignature(desc, &i, &type, nullptr));
        imp.type_index = GetOrAddType(type);
      }
      if (!bind_name.empty()) func_names_[bind_name] = module_->num_imported_funcs;
      ++module_->num_imported_funcs;
    } else if (kind == "memory") {
      imp.kind = ExternKind::kMemory;
      RETURN_IF_ERROR(ParseLimits(desc, &i, &imp.limits));
      if (!bind_name.empty()) memory_names_[bind_name] = module_->num_imported_memories;
      ++module_->num_imported_memories;
    } else if (kind == "table") {
      imp.kind = ExternKind::kTable;
      RETURN_IF_ERROR(ParseLimits(desc, &i, &imp.limits));
      if (!bind_name.empty()) table_names_[bind_name] = module_->num_imported_tables;
      ++module_->num_imported_tables;
    } else if (kind == "global") {
      imp.kind = ExternKind::kGlobal;
      if (i < desc.list.size() && desc.list[i].IsListHead("mut")) {
        imp.global_type.mut = true;
        RETURN_IF_ERROR(ParseValType(desc.list[i].list[1], &imp.global_type.type));
      } else if (i < desc.list.size()) {
        RETURN_IF_ERROR(ParseValType(desc.list[i], &imp.global_type.type));
      } else {
        return Err(field, "global import needs a type");
      }
      if (!bind_name.empty()) global_names_[bind_name] = module_->num_imported_globals;
      ++module_->num_imported_globals;
    } else {
      return Err(field, "unknown import kind '" + kind + "'");
    }
    module_->imports.push_back(std::move(imp));
    return common::OkStatus();
  }

  common::Status DeclareFunc(const SExpr& field) {
    size_t i = 1;
    std::string name;
    if (i < field.list.size() && field.list[i].IsId()) {
      name = field.list[i].text;
      ++i;
    }
    uint32_t func_index = module_->NumFuncs();
    if (!name.empty()) func_names_[name] = func_index;

    // Inline exports.
    while (i < field.list.size() && field.list[i].IsListHead("export")) {
      Export e;
      e.name = field.list[i].list[1].text;
      e.kind = ExternKind::kFunc;
      e.index = func_index;
      module_->exports.push_back(std::move(e));
      ++i;
    }

    Function fn;
    fn.debug_name = name;
    FuncType type;
    std::map<std::string, uint32_t> param_names;
    if (i < field.list.size() && field.list[i].IsListHead("type")) {
      uint32_t idx;
      RETURN_IF_ERROR(ResolveIndex(field.list[i].list[1], type_names_, "type", &idx));
      ++i;
      // Optional redundant param/result decls (must match; names recorded).
      FuncType inline_type;
      size_t before = i;
      RETURN_IF_ERROR(ParseSignature(field, &i, &inline_type, &param_names));
      if (i != before && !(inline_type == module_->types[idx])) {
        return Err(field, "inline signature does not match (type ...)");
      }
      fn.type_index = idx;
    } else {
      RETURN_IF_ERROR(ParseSignature(field, &i, &type, &param_names));
      fn.type_index = GetOrAddType(type);
    }
    // Locals.
    while (i < field.list.size() && field.list[i].IsListHead("local")) {
      const SExpr& l = field.list[i];
      if (l.list.size() >= 2 && l.list[1].IsId()) {
        if (l.list.size() != 3) return Err(l, "named local takes exactly one type");
        uint32_t local_index =
            static_cast<uint32_t>(module_->types[fn.type_index].params.size() +
                                  fn.locals.size());
        param_names[l.list[1].text] = local_index;
        ValType t;
        RETURN_IF_ERROR(ParseValType(l.list[2], &t));
        fn.locals.push_back(t);
      } else {
        for (size_t k = 1; k < l.list.size(); ++k) {
          ValType t;
          RETURN_IF_ERROR(ParseValType(l.list[k], &t));
          fn.locals.push_back(t);
        }
      }
      ++i;
    }
    func_body_start_[&field] = i;
    func_local_names_[&field] = std::move(param_names);
    module_->functions.push_back(std::move(fn));
    func_of_field_[&field] = module_->NumFuncs() - 1;
    return common::OkStatus();
  }

  common::Status ParseMemoryField(const SExpr& field) {
    size_t i = 1;
    std::string name;
    if (i < field.list.size() && field.list[i].IsId()) {
      name = field.list[i].text;
      ++i;
    }
    uint32_t index = module_->NumMemories();
    while (i < field.list.size() && field.list[i].IsListHead("export")) {
      Export e;
      e.name = field.list[i].list[1].text;
      e.kind = ExternKind::kMemory;
      e.index = index;
      module_->exports.push_back(std::move(e));
      ++i;
    }
    MemoryDecl m;
    RETURN_IF_ERROR(ParseLimits(field, &i, &m.limits));
    if (!name.empty()) memory_names_[name] = index;
    module_->memories.push_back(m);
    return common::OkStatus();
  }

  common::Status ParseTableField(const SExpr& field) {
    size_t i = 1;
    std::string name;
    if (i < field.list.size() && field.list[i].IsId()) {
      name = field.list[i].text;
      ++i;
    }
    TableDecl t;
    RETURN_IF_ERROR(ParseLimits(field, &i, &t.limits));
    if (i < field.list.size() && field.list[i].IsAtom() &&
        field.list[i].text == "funcref") {
      ++i;
    }
    if (!name.empty()) table_names_[name] = module_->NumTables();
    module_->tables.push_back(t);
    return common::OkStatus();
  }

  common::Status ParseInitExpr(const SExpr& e, InitExpr* out) {
    // (i32.const N) | (i64.const N) | (f32.const X) | (f64.const X) |
    // (global.get $g) | (offset <one of those>)
    const SExpr* expr = &e;
    if (e.IsListHead("offset")) {
      if (e.list.size() != 2) return Err(e, "offset takes one expression");
      expr = &e.list[1];
    }
    if (!expr->IsList() || expr->list.empty()) return Err(e, "expected init expression");
    const std::string& op = expr->list[0].text;
    if (op == "global.get") {
      out->kind = InitExpr::Kind::kGlobalGet;
      uint32_t idx;
      RETURN_IF_ERROR(ResolveIndex(expr->list[1], global_names_, "global", &idx));
      out->global_index = idx;
      return common::OkStatus();
    }
    out->kind = InitExpr::Kind::kConst;
    if (expr->list.size() != 2) return Err(e, "const init takes one literal");
    const std::string& lit = expr->list[1].text;
    if (op == "i32.const") {
      uint64_t v;
      if (!ParseIntText(lit, &v)) return Err(e, "bad i32 literal");
      out->type = ValType::kI32;
      out->bits = static_cast<uint32_t>(v);
    } else if (op == "i64.const") {
      uint64_t v;
      if (!ParseIntText(lit, &v)) return Err(e, "bad i64 literal");
      out->type = ValType::kI64;
      out->bits = v;
    } else if (op == "f32.const") {
      double d;
      uint64_t iv;
      if (ParseFloatText(lit, &d)) {
        float f = static_cast<float>(d);
        uint32_t u;
        std::memcpy(&u, &f, 4);
        out->bits = u;
      } else if (ParseIntText(lit, &iv)) {
        float f = static_cast<float>(static_cast<int64_t>(iv));
        uint32_t u;
        std::memcpy(&u, &f, 4);
        out->bits = u;
      } else {
        return Err(e, "bad f32 literal");
      }
      out->type = ValType::kF32;
    } else if (op == "f64.const") {
      double d;
      if (!ParseFloatText(lit, &d)) return Err(e, "bad f64 literal");
      out->type = ValType::kF64;
      std::memcpy(&out->bits, &d, 8);
    } else {
      return Err(e, "unsupported init expression '" + op + "'");
    }
    return common::OkStatus();
  }

  common::Status ParseGlobalField(const SExpr& field) {
    size_t i = 1;
    Global g;
    if (i < field.list.size() && field.list[i].IsId()) {
      g.debug_name = field.list[i].text;
      ++i;
    }
    uint32_t index = module_->NumGlobals();
    while (i < field.list.size() && field.list[i].IsListHead("export")) {
      Export e;
      e.name = field.list[i].list[1].text;
      e.kind = ExternKind::kGlobal;
      e.index = index;
      module_->exports.push_back(std::move(e));
      ++i;
    }
    if (i >= field.list.size()) return Err(field, "global needs a type");
    if (field.list[i].IsListHead("mut")) {
      g.type.mut = true;
      RETURN_IF_ERROR(ParseValType(field.list[i].list[1], &g.type.type));
    } else {
      RETURN_IF_ERROR(ParseValType(field.list[i], &g.type.type));
    }
    ++i;
    if (i >= field.list.size()) return Err(field, "global needs an initializer");
    RETURN_IF_ERROR(ParseInitExpr(field.list[i], &g.init));
    if (!g.debug_name.empty()) global_names_[g.debug_name] = index;
    module_->globals.push_back(std::move(g));
    return common::OkStatus();
  }

  common::Status ResolveIndex(const SExpr& e, const std::map<std::string, uint32_t>& names,
                              const char* what, uint32_t* out) {
    if (e.IsId()) {
      auto it = names.find(e.text);
      if (it == names.end()) {
        return Err(e, std::string("unknown ") + what + " '$" + e.text + "'");
      }
      *out = it->second;
      return common::OkStatus();
    }
    uint64_t v;
    if (e.IsAtom() && ParseIntText(e.text, &v)) {
      *out = static_cast<uint32_t>(v);
      return common::OkStatus();
    }
    return Err(e, std::string("expected ") + what + " index");
  }

  common::Status ParseExportField(const SExpr& field) {
    if (field.list.size() != 3 || !field.list[1].IsString() || !field.list[2].IsList()) {
      return Err(field, "export needs a name and descriptor");
    }
    Export e;
    e.name = field.list[1].text;
    const SExpr& desc = field.list[2];
    const std::string& kind = desc.list[0].text;
    uint32_t idx;
    if (kind == "func") {
      e.kind = ExternKind::kFunc;
      RETURN_IF_ERROR(ResolveIndex(desc.list[1], func_names_, "func", &idx));
    } else if (kind == "memory") {
      e.kind = ExternKind::kMemory;
      RETURN_IF_ERROR(ResolveIndex(desc.list[1], memory_names_, "memory", &idx));
    } else if (kind == "table") {
      e.kind = ExternKind::kTable;
      RETURN_IF_ERROR(ResolveIndex(desc.list[1], table_names_, "table", &idx));
    } else if (kind == "global") {
      e.kind = ExternKind::kGlobal;
      RETURN_IF_ERROR(ResolveIndex(desc.list[1], global_names_, "global", &idx));
    } else {
      return Err(field, "unknown export kind");
    }
    e.index = idx;
    module_->exports.push_back(std::move(e));
    return common::OkStatus();
  }

  common::Status ParseElemField(const SExpr& field) {
    ElemSegment seg;
    size_t i = 1;
    if (i < field.list.size() && (field.list[i].IsId() ||
        (field.list[i].IsAtom() && isdigit(static_cast<unsigned char>(field.list[i].text[0]))))) {
      RETURN_IF_ERROR(ResolveIndex(field.list[i], table_names_, "table", &seg.table_index));
      ++i;
    }
    if (i >= field.list.size() || !field.list[i].IsList()) {
      return Err(field, "elem needs an offset expression");
    }
    RETURN_IF_ERROR(ParseInitExpr(field.list[i], &seg.offset));
    ++i;
    if (i < field.list.size() && field.list[i].IsAtom() && field.list[i].text == "func") {
      ++i;
    }
    for (; i < field.list.size(); ++i) {
      uint32_t idx;
      RETURN_IF_ERROR(ResolveIndex(field.list[i], func_names_, "func", &idx));
      seg.func_indices.push_back(idx);
    }
    module_->elems.push_back(std::move(seg));
    return common::OkStatus();
  }

  common::Status ParseDataField(const SExpr& field) {
    DataSegment seg;
    size_t i = 1;
    if (i >= field.list.size() || !field.list[i].IsList()) {
      return Err(field, "data needs an offset expression");
    }
    RETURN_IF_ERROR(ParseInitExpr(field.list[i], &seg.offset));
    ++i;
    for (; i < field.list.size(); ++i) {
      if (!field.list[i].IsString()) return Err(field, "data bytes must be strings");
      seg.bytes.insert(seg.bytes.end(), field.list[i].text.begin(),
                       field.list[i].text.end());
    }
    module_->datas.push_back(std::move(seg));
    return common::OkStatus();
  }

  // ------------------------------------------------------------ func body --

  struct BodyCtx {
    Function* fn = nullptr;
    const std::map<std::string, uint32_t>* local_names = nullptr;
    std::vector<std::string> labels;  // innermost last
  };

  common::Status ParseFuncBody(const SExpr& field) {
    uint32_t func_index = func_of_field_[&field];
    Function& fn = module_->functions[func_index - module_->num_imported_funcs];
    BodyCtx ctx;
    ctx.fn = &fn;
    ctx.local_names = &func_local_names_[&field];
    size_t i = func_body_start_[&field];
    RETURN_IF_ERROR(ParseInstrSeq(field, &i, field.list.size(), &ctx));
    Instr end;
    end.op = Op::kEnd;
    fn.code.push_back(end);
    if (!ctx.labels.empty()) {
      return Err(field, "unterminated block in plain form");
    }
    return common::OkStatus();
  }

  // Parses elements [*i, end) of `parent` as an instruction sequence.
  common::Status ParseInstrSeq(const SExpr& parent, size_t* i, size_t end, BodyCtx* ctx) {
    while (*i < end) {
      RETURN_IF_ERROR(ParseInstrElem(parent, i, end, ctx));
    }
    return common::OkStatus();
  }

  static bool LooksLikeIndex(const SExpr& e) {
    if (e.IsId()) return true;
    if (!e.IsAtom() || e.text.empty()) return false;
    char c = e.text[0];
    return (c >= '0' && c <= '9') || c == '-' || c == '+';
  }

  common::Status ResolveLabel(const SExpr& e, BodyCtx* ctx, uint32_t* depth) {
    if (e.IsId()) {
      for (size_t d = 0; d < ctx->labels.size(); ++d) {
        if (ctx->labels[ctx->labels.size() - 1 - d] == e.text) {
          *depth = static_cast<uint32_t>(d);
          return common::OkStatus();
        }
      }
      return Err(e, "unknown label '$" + e.text + "'");
    }
    uint64_t v;
    if (e.IsAtom() && ParseIntText(e.text, &v)) {
      *depth = static_cast<uint32_t>(v);
      return common::OkStatus();
    }
    return Err(e, "expected label");
  }

  common::Status ResolveLocal(const SExpr& e, BodyCtx* ctx, uint32_t* out) {
    if (e.IsId()) {
      auto it = ctx->local_names->find(e.text);
      if (it == ctx->local_names->end()) {
        return Err(e, "unknown local '$" + e.text + "'");
      }
      *out = it->second;
      return common::OkStatus();
    }
    uint64_t v;
    if (e.IsAtom() && ParseIntText(e.text, &v)) {
      *out = static_cast<uint32_t>(v);
      return common::OkStatus();
    }
    return Err(e, "expected local index");
  }

  // Parses block type annotation "(result t)" at parent.list[*i]; returns the
  // blocktype immediate byte.
  common::Status ParseBlockTypeAnnot(const SExpr& parent, size_t* i, size_t end,
                                     uint64_t* imm) {
    *imm = kVoidBlockType;
    if (*i < end && parent.list[*i].IsListHead("result")) {
      const SExpr& r = parent.list[*i];
      if (r.list.size() != 2) return Err(r, "only single-result blocks supported");
      ValType t;
      RETURN_IF_ERROR(ParseValType(r.list[1], &t));
      *imm = static_cast<uint64_t>(t);
      ++*i;
    }
    return common::OkStatus();
  }

  // Parses memarg immediates "offset=N align=N".
  common::Status ParseMemarg(const SExpr& parent, size_t* i, size_t end, Instr* in) {
    while (*i < end && parent.list[*i].IsAtom()) {
      const std::string& t = parent.list[*i].text;
      if (t.rfind("offset=", 0) == 0) {
        uint64_t v;
        if (!ParseIntText(t.substr(7), &v)) return Err(parent.list[*i], "bad offset");
        in->a = static_cast<uint32_t>(v);
        ++*i;
      } else if (t.rfind("align=", 0) == 0) {
        uint64_t v;
        if (!ParseIntText(t.substr(6), &v)) return Err(parent.list[*i], "bad align");
        in->b = static_cast<uint32_t>(v);
        ++*i;
      } else {
        break;
      }
    }
    return common::OkStatus();
  }

  // Emits one instruction element: plain atom form or folded list form.
  common::Status ParseInstrElem(const SExpr& parent, size_t* i, size_t end, BodyCtx* ctx) {
    const SExpr& e = parent.list[*i];
    if (e.IsAtom()) {
      return ParsePlainInstr(parent, i, end, ctx);
    }
    if (e.IsList()) {
      ++*i;
      return ParseFoldedInstr(e, ctx);
    }
    return Err(e, "unexpected token in function body");
  }

  // Parses immediates for `op` from parent.list starting at *i, fills `in`,
  // but does not emit. Shared by plain and folded forms.
  common::Status ParseImmediates(Op op, const SExpr& parent, size_t* i, size_t end,
                                 BodyCtx* ctx, Instr* in) {
    switch (OpImmKind(op)) {
      case ImmKind::kNone:
      case ImmKind::kMemIdx:
      case ImmKind::kMemMemIdx:
        break;
      case ImmKind::kBlock:
        break;  // handled by block parsing
      case ImmKind::kLabel: {
        if (*i >= end) return Err(parent, "missing label");
        uint32_t depth;
        RETURN_IF_ERROR(ResolveLabel(parent.list[*i], ctx, &depth));
        ++*i;
        in->a = depth;
        in->imm = depth;  // a is rewritten by the validator; imm keeps depth
        break;
      }
      case ImmKind::kBrTable: {
        std::vector<uint32_t> depths;
        while (*i < end && LooksLikeIndex(parent.list[*i])) {
          uint32_t d;
          RETURN_IF_ERROR(ResolveLabel(parent.list[*i], ctx, &d));
          depths.push_back(d);
          ++*i;
        }
        if (depths.empty()) return Err(parent, "br_table needs at least a default label");
        BrTable table;
        for (uint32_t d : depths) {
          BrTarget t;
          t.depth = d;
          table.targets.push_back(t);
        }
        in->a = static_cast<uint32_t>(ctx->fn->br_tables.size());
        ctx->fn->br_tables.push_back(std::move(table));
        break;
      }
      case ImmKind::kFunc: {
        if (*i >= end) return Err(parent, "missing function index");
        uint32_t idx;
        RETURN_IF_ERROR(ResolveIndex(parent.list[*i], func_names_, "func", &idx));
        ++*i;
        in->a = idx;
        break;
      }
      case ImmKind::kCallIndirect: {
        // Optional table index then (type $t) or inline signature.
        uint32_t table_index = 0;
        if (*i < end && LooksLikeIndex(parent.list[*i]) && !parent.list[*i].IsId()) {
          uint64_t v;
          ParseIntText(parent.list[*i].text, &v);
          table_index = static_cast<uint32_t>(v);
          ++*i;
        }
        uint32_t type_index = UINT32_MAX;
        FuncType inline_type;
        bool has_inline = false;
        while (*i < end && parent.list[*i].IsList()) {
          const SExpr& l = parent.list[*i];
          if (l.IsListHead("type")) {
            RETURN_IF_ERROR(ResolveIndex(l.list[1], type_names_, "type", &type_index));
            ++*i;
          } else if (l.IsListHead("param") || l.IsListHead("result")) {
            size_t j = *i;
            RETURN_IF_ERROR(ParseSignature(parent, &j, &inline_type, nullptr));
            has_inline = true;
            *i = j;
          } else {
            break;
          }
        }
        if (type_index == UINT32_MAX) {
          if (!has_inline) return Err(parent, "call_indirect needs a type");
          type_index = GetOrAddType(inline_type);
        }
        in->a = type_index;
        in->b = table_index;
        break;
      }
      case ImmKind::kLocal: {
        if (*i >= end) return Err(parent, "missing local index");
        uint32_t idx;
        RETURN_IF_ERROR(ResolveLocal(parent.list[*i], ctx, &idx));
        ++*i;
        in->a = idx;
        break;
      }
      case ImmKind::kGlobal: {
        if (*i >= end) return Err(parent, "missing global index");
        uint32_t idx;
        RETURN_IF_ERROR(ResolveIndex(parent.list[*i], global_names_, "global", &idx));
        ++*i;
        in->a = idx;
        break;
      }
      case ImmKind::kMem:
        RETURN_IF_ERROR(ParseMemarg(parent, i, end, in));
        break;
      case ImmKind::kI32Const: {
        if (*i >= end) return Err(parent, "missing i32 literal");
        uint64_t v;
        if (!ParseIntText(parent.list[*i].text, &v)) {
          return Err(parent.list[*i], "bad i32 literal");
        }
        ++*i;
        in->imm = static_cast<uint32_t>(v);
        break;
      }
      case ImmKind::kI64Const: {
        if (*i >= end) return Err(parent, "missing i64 literal");
        uint64_t v;
        if (!ParseIntText(parent.list[*i].text, &v)) {
          return Err(parent.list[*i], "bad i64 literal");
        }
        ++*i;
        in->imm = v;
        break;
      }
      case ImmKind::kF32Const: {
        if (*i >= end) return Err(parent, "missing f32 literal");
        double d;
        uint64_t iv;
        if (ParseFloatText(parent.list[*i].text, &d)) {
        } else if (ParseIntText(parent.list[*i].text, &iv)) {
          d = static_cast<double>(static_cast<int64_t>(iv));
        } else {
          return Err(parent.list[*i], "bad f32 literal");
        }
        ++*i;
        float f = static_cast<float>(d);
        uint32_t u;
        std::memcpy(&u, &f, 4);
        in->imm = u;
        break;
      }
      case ImmKind::kF64Const: {
        if (*i >= end) return Err(parent, "missing f64 literal");
        double d;
        uint64_t iv;
        if (ParseFloatText(parent.list[*i].text, &d)) {
        } else if (ParseIntText(parent.list[*i].text, &iv)) {
          d = static_cast<double>(static_cast<int64_t>(iv));
        } else {
          return Err(parent.list[*i], "bad f64 literal");
        }
        ++*i;
        std::memcpy(&in->imm, &d, 8);
        break;
      }
    }
    return common::OkStatus();
  }

  void Emit(BodyCtx* ctx, const Instr& in) { ctx->fn->code.push_back(in); }

  // Plain (non-folded) instruction: mnemonic atom + immediates; block
  // structure handled via the label stack with explicit 'end'.
  common::Status ParsePlainInstr(const SExpr& parent, size_t* i, size_t end,
                                 BodyCtx* ctx) {
    const SExpr& head = parent.list[*i];
    const std::string& mnemonic = head.text;
    ++*i;

    if (mnemonic == "end") {
      if (ctx->labels.empty()) return Err(head, "'end' without open block");
      ctx->labels.pop_back();
      // Optional trailing label id.
      if (*i < end && parent.list[*i].IsId()) ++*i;
      Instr in;
      in.op = Op::kEnd;
      Emit(ctx, in);
      return common::OkStatus();
    }
    if (mnemonic == "else") {
      if (*i < end && parent.list[*i].IsId()) ++*i;
      Instr in;
      in.op = Op::kElse;
      Emit(ctx, in);
      return common::OkStatus();
    }

    auto op = OpFromText(mnemonic);
    if (!op.has_value()) return Err(head, "unknown instruction '" + mnemonic + "'");

    if (*op == Op::kBlock || *op == Op::kLoop || *op == Op::kIf) {
      std::string label;
      if (*i < end && parent.list[*i].IsId()) {
        label = parent.list[*i].text;
        ++*i;
      }
      Instr in;
      in.op = *op;
      RETURN_IF_ERROR(ParseBlockTypeAnnot(parent, i, end, &in.imm));
      ctx->labels.push_back(label);
      Emit(ctx, in);
      return common::OkStatus();
    }

    Instr in;
    in.op = *op;
    RETURN_IF_ERROR(ParseImmediates(*op, parent, i, end, ctx, &in));
    Emit(ctx, in);
    return common::OkStatus();
  }

  // Folded instruction: (op imm* operand-expr*) with special forms for
  // block/loop/if.
  common::Status ParseFoldedInstr(const SExpr& e, BodyCtx* ctx) {
    if (e.list.empty() || !e.list[0].IsAtom()) {
      return Err(e, "expected instruction");
    }
    const std::string& mnemonic = e.list[0].text;
    auto op = OpFromText(mnemonic);
    if (!op.has_value()) return Err(e, "unknown instruction '" + mnemonic + "'");

    size_t i = 1;
    if (*op == Op::kBlock || *op == Op::kLoop) {
      std::string label;
      if (i < e.list.size() && e.list[i].IsId()) {
        label = e.list[i].text;
        ++i;
      }
      Instr in;
      in.op = *op;
      RETURN_IF_ERROR(ParseBlockTypeAnnot(e, &i, e.list.size(), &in.imm));
      Emit(ctx, in);
      ctx->labels.push_back(label);
      RETURN_IF_ERROR(ParseInstrSeq(e, &i, e.list.size(), ctx));
      ctx->labels.pop_back();
      Instr endin;
      endin.op = Op::kEnd;
      Emit(ctx, endin);
      return common::OkStatus();
    }
    if (*op == Op::kIf) {
      std::string label;
      if (i < e.list.size() && e.list[i].IsId()) {
        label = e.list[i].text;
        ++i;
      }
      Instr in;
      in.op = Op::kIf;
      RETURN_IF_ERROR(ParseBlockTypeAnnot(e, &i, e.list.size(), &in.imm));
      // Condition expressions (all elements before (then ...)).
      while (i < e.list.size() && !e.list[i].IsListHead("then")) {
        RETURN_IF_ERROR(ParseFoldedInstr(e.list[i], ctx));
        ++i;
      }
      if (i >= e.list.size()) return Err(e, "folded if needs (then ...)");
      Emit(ctx, in);
      ctx->labels.push_back(label);
      const SExpr& then_clause = e.list[i];
      size_t j = 1;
      RETURN_IF_ERROR(ParseInstrSeq(then_clause, &j, then_clause.list.size(), ctx));
      ++i;
      if (i < e.list.size() && e.list[i].IsListHead("else")) {
        Instr elsein;
        elsein.op = Op::kElse;
        Emit(ctx, elsein);
        const SExpr& else_clause = e.list[i];
        j = 1;
        RETURN_IF_ERROR(ParseInstrSeq(else_clause, &j, else_clause.list.size(), ctx));
        ++i;
      }
      if (i != e.list.size()) return Err(e, "unexpected tokens after folded if");
      ctx->labels.pop_back();
      Instr endin;
      endin.op = Op::kEnd;
      Emit(ctx, endin);
      return common::OkStatus();
    }

    // Generic folded op: immediates, then child operand expressions, then op.
    Instr in;
    in.op = *op;
    RETURN_IF_ERROR(ParseImmediates(*op, e, &i, e.list.size(), ctx, &in));
    for (; i < e.list.size(); ++i) {
      if (!e.list[i].IsList()) return Err(e.list[i], "folded operands must be expressions");
      RETURN_IF_ERROR(ParseFoldedInstr(e.list[i], ctx));
    }
    Emit(ctx, in);
    return common::OkStatus();
  }

  SExpr root_;
  std::shared_ptr<Module> module_;
  std::map<std::string, uint32_t> type_names_;
  std::map<std::string, uint32_t> func_names_;
  std::map<std::string, uint32_t> global_names_;
  std::map<std::string, uint32_t> memory_names_;
  std::map<std::string, uint32_t> table_names_;
  std::vector<const SExpr*> late_fields_;
  std::map<const SExpr*, size_t> func_body_start_;
  std::map<const SExpr*, std::map<std::string, uint32_t>> func_local_names_;
  std::map<const SExpr*, uint32_t> func_of_field_;
};

}  // namespace

common::StatusOr<std::shared_ptr<Module>> ParseWat(std::string_view source) {
  WatModuleParser parser;
  return parser.Parse(source);
}

common::StatusOr<std::shared_ptr<Module>> ParseAndValidateWat(std::string_view source) {
  WatModuleParser parser;
  ASSIGN_OR_RETURN(std::shared_ptr<Module> module, parser.Parse(source));
  RETURN_IF_ERROR(Validate(*module));
  return module;
}

}  // namespace wasm
