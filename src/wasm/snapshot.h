// Snapshot/restore for parked invocations (ROADMAP "serializable
// suspensions"): a versioned binary format that captures everything a
// wasm::Suspension holds — frames, the operand stack (already in plain
// spilled form at kSyscallPending, the STACK_SYNC invariant), globals, and
// linear memory as a zero-page-skipping delta against the module's data
// segments — so an idle parked guest can be evicted to disk and rebuilt
// later into an ExecContext that ResumeInvoke accepts.
//
// Format (all integers little-endian):
//
//   header   magic u32 ('WSNP'), version u32, payload checksum u64
//            (FNV-1a over every byte after the header), module hash u64
//            (caller-provided; see ModuleStructuralHash)
//   exec     scheme u8, dispatch u8, max_frames u32, max_value_stack u64,
//            fuel u64, executed u64, exit_code u32, pending_results u32,
//            entry type index u32 (into Module::types)
//   stack    count u64, then count raw u64 slots
//   frames   count u32, per frame: local function index u32, pc u32,
//            locals_base u32, stack_base u32, prepared-stream flag u8
//   globals  count u32 (== Module::NumGlobals()), then count u64 bit values
//   memory   size_pages u64, delta page count u32, per page: page index u64
//            + 65536 raw bytes (pages that differ from the fresh-instance
//            image: zeros overlaid with the module's data segments)
//   host     blob length u64 + opaque bytes (the wali layer's process state;
//            this module never interprets it)
//
// Versioning rules (docs/ARCHITECTURE.md "Snapshot/restore"): any layout
// change — field added, removed, reordered, or re-typed — bumps
// kSnapshotVersion; decode rejects every version it was not built for.
// tests/wasm_snapshot_test.cc pins the golden fixture so an accidental
// format drift without a bump fails CI.
//
// Deliberately NOT captured: host fds' kernel state (only the wali layer's
// fd table rides in the host blob), live retry closures (only parks whose
// pending op is pure data — sleeps — are evictable), guest threads, signal
// handlers mid-flight, and in-flight profile attribution windows.
#ifndef SRC_WASM_SNAPSHOT_H_
#define SRC_WASM_SNAPSHOT_H_

#include <cstdint>
#include <vector>

#include "src/common/status.h"
#include "src/wasm/interp.h"

namespace wasm {

inline constexpr uint32_t kSnapshotMagic = 0x504e5357;  // "WSNP" LE
inline constexpr uint32_t kSnapshotVersion = 1;

// Bounds-checked little-endian cursor primitives, shared with the wali
// layer's host-blob encoding (src/wali/process_snapshot.cc). The writer
// never fails; every reader method returns an error instead of over-reading.
class SnapshotWriter {
 public:
  void U8(uint8_t v) { buf_.push_back(v); }
  void U32(uint32_t v);
  void U64(uint64_t v);
  void Bytes(const void* p, size_t n);

  std::vector<uint8_t>& buf() { return buf_; }
  const std::vector<uint8_t>& buf() const { return buf_; }

 private:
  std::vector<uint8_t> buf_;
};

class SnapshotReader {
 public:
  SnapshotReader(const uint8_t* data, size_t size) : p_(data), end_(data + size) {}

  common::Status U8(uint8_t* out);
  common::Status U32(uint32_t* out);
  common::Status U64(uint64_t* out);
  common::Status Bytes(void* dst, size_t n);
  // Advances past `n` bytes the caller will read in place via cur().
  common::Status Skip(size_t n);
  const uint8_t* cur() const { return p_; }
  size_t remaining() const { return static_cast<size_t>(end_ - p_); }

 private:
  const uint8_t* p_;
  const uint8_t* end_;
};

// Deterministic 64-bit FNV-1a content hash over a module's post-prepare
// structure: types, import/export names, function bodies (decoded AND
// prepared streams, so a snapshot taken under one fusion configuration can
// never be restored into another), globals, and data segments. The same
// source module parsed, validated, and prepared the same way hashes the
// same in every process — this is the identity the snapshot header carries.
uint64_t ModuleStructuralHash(const Module& m);

// Serializes an armed suspension plus the owning instance's mutable state
// (globals, linear memory). `inst` must be the suspension's root instance;
// every frame must belong to it (multi-instance suspensions are refused).
// `host_blob` is carried opaquely for the caller's process-level state.
common::StatusOr<std::vector<uint8_t>> SnapshotSuspension(
    const Suspension& susp, Instance* inst, uint64_t module_hash,
    const std::vector<uint8_t>& host_blob);

// Validates `data` (magic, version, checksum, module hash) and rebuilds the
// parked invocation into `inst`, which must be a FRESH instance of the
// hash-matched module (data segments applied, globals at initial values):
// globals are overwritten, memory is grown to the snapshot size with the
// delta pages applied, and `out` is armed with an ExecContext that
// ResumeInvoke accepts. `buffers` (may be null) becomes the context's
// recycled storage, returned on finish/discard exactly as Invoke wires it.
// On success returns the opaque host blob. Never crashes or over-reads on
// hostile input: every field is bounds-checked before use.
common::StatusOr<std::vector<uint8_t>> RestoreSuspension(
    const uint8_t* data, size_t size, Instance* inst, uint64_t module_hash,
    ExecBuffers* buffers, Suspension* out);

}  // namespace wasm

#endif  // SRC_WASM_SNAPSHOT_H_
