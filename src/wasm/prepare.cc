#include "src/wasm/prepare.h"

#include <cstddef>
#include <vector>

#include "src/wasm/jit.h"

namespace wasm {

namespace {

// IsSegmentTerminator lives in prepare.h (shared with the JIT tier).

bool IsI32Cmp(Op op) {
  switch (op) {
    case Op::kI32Eq:
    case Op::kI32Ne:
    case Op::kI32LtS:
    case Op::kI32LtU:
    case Op::kI32GtS:
    case Op::kI32GtU:
    case Op::kI32LeS:
    case Op::kI32LeU:
    case Op::kI32GeS:
    case Op::kI32GeU:
      return true;
    default:
      return false;
  }
}

bool IsI64Cmp(Op op) {
  switch (op) {
    case Op::kI64Eq:
    case Op::kI64Ne:
    case Op::kI64LtS:
    case Op::kI64LtU:
    case Op::kI64GtS:
    case Op::kI64GtU:
    case Op::kI64LeS:
    case Op::kI64LeU:
    case Op::kI64GeS:
    case Op::kI64GeU:
      return true;
    default:
      return false;
  }
}

// Pure i32 binary operators safe to fold behind a fused op (no trapping
// division). Comparisons are included: they are binops producing an i32.
bool IsI32FoldableBinop(Op op) {
  switch (op) {
    case Op::kI32Add:
    case Op::kI32Sub:
    case Op::kI32Mul:
    case Op::kI32And:
    case Op::kI32Or:
    case Op::kI32Xor:
    case Op::kI32Shl:
    case Op::kI32ShrS:
    case Op::kI32ShrU:
    case Op::kI32Rotl:
    case Op::kI32Rotr:
      return true;
    default:
      return IsI32Cmp(op);
  }
}

bool IsI64FoldableBinop(Op op) {
  switch (op) {
    case Op::kI64Add:
    case Op::kI64Sub:
    case Op::kI64Mul:
    case Op::kI64And:
    case Op::kI64Or:
    case Op::kI64Xor:
    case Op::kI64Shl:
    case Op::kI64ShrS:
    case Op::kI64ShrU:
    case Op::kI64Rotl:
    case Op::kI64Rotr:
      return true;
    default:
      return IsI64Cmp(op);
  }
}

// Marks every pc that any control instruction can jump to. Fusion must not
// swallow a jump target into the middle of a superinstruction: the target
// would vanish from the rewritten stream. (Block/loop end annotations are
// included conservatively even though plain ends are only reached by
// fall-through.)
std::vector<uint8_t> ComputeLeaders(const Function& fn) {
  const std::vector<Instr>& code = fn.code;
  std::vector<uint8_t> leader(code.size(), 0);
  auto mark = [&](uint32_t pc) {
    if (pc < leader.size()) leader[pc] = 1;
  };
  for (const Instr& in : code) {
    switch (in.op) {
      case Op::kBlock:
      case Op::kLoop:
      case Op::kElse:
      case Op::kBr:
      case Op::kBrIf:
        mark(in.a);
        break;
      case Op::kIf:
        mark(in.a);
        mark(in.b);
        break;
      case Op::kBrTable:
        if (in.a < fn.br_tables.size()) {
          for (const BrTarget& t : fn.br_tables[in.a].targets) {
            mark(t.pc);
          }
        }
        break;
      default:
        break;
    }
  }
  return leader;
}

// Locals referenced by the packed-imm superinstructions must fit 16 bits.
bool PackableLocal(uint32_t idx) { return idx < (1u << 16); }

}  // namespace

void PrepareFunction(Function& fn, const PrepareOptions& opts,
                     PrepareStats* stats) {
  const std::vector<Instr>& src = fn.code;
  const size_t n = src.size();
  PreparedCode& out = fn.prepared;
  out.code.clear();
  out.code.reserve(n);
  out.br_tables = fn.br_tables;

  std::vector<uint8_t> leader = ComputeLeaders(fn);
  // Old pc -> new pc. Instructions swallowed by a fusion map to the fusion
  // head; nothing branches to them (leader check), so this is only for
  // map-completeness.
  std::vector<uint32_t> map(n, 0);

  uint32_t fused = 0;
  uint32_t direct_calls = 0;
  auto count_op = [&](Op op) {
    if (stats != nullptr) {
      uint32_t slot = static_cast<uint32_t>(op) - kFirstInternalOp;
      if (slot < kNumInternalOps) {
        ++stats->per_op[slot];
      }
    }
  };
  // Emits a superinstruction replacing `width` source ops starting at i.
  auto emit = [&](size_t i, size_t width, Instr f) {
    f.cost = static_cast<uint8_t>(width);
    for (size_t k = 1; k < width; ++k) {
      map[i + k] = map[i];
    }
    count_op(f.op);
    out.code.push_back(f);
    ++fused;
  };
  // True when the `width - 1` ops after i can be swallowed (no branch lands
  // inside the fused region).
  auto fusable = [&](size_t i, size_t width) {
    if (i + width > n) return false;
    for (size_t k = 1; k < width; ++k) {
      if (leader[i + k]) return false;
    }
    return true;
  };

  size_t i = 0;
  while (i < n) {
    map[i] = static_cast<uint32_t>(out.code.size());
    const Instr& a = src[i];
    if (opts.fuse) {
      // 4-op patterns first (widest match wins), then 3-op, then pairs.
      if (fusable(i, 4) && a.op == Op::kLocalGet &&
          src[i + 1].op == Op::kLocalGet && IsI32Cmp(src[i + 2].op) &&
          src[i + 3].op == Op::kBrIf && PackableLocal(a.a) &&
          PackableLocal(src[i + 1].a)) {
        // The hottest loop-header shape: compare two locals, branch.
        Instr f;
        f.op = Op::kFLocalLocalCmpBrIf;
        f.a = src[i + 3].a;
        f.b = src[i + 3].b;
        f.arity = src[i + 3].arity;
        f.imm = static_cast<uint64_t>(src[i + 2].op) |
                (static_cast<uint64_t>(a.a) << 16) |
                (static_cast<uint64_t>(src[i + 1].a) << 32);
        emit(i, 4, f);
        i += 4;
        continue;
      }
      if (fusable(i, 4) && a.op == Op::kLocalGet &&
          src[i + 1].op == Op::kI32Const && IsI32FoldableBinop(src[i + 2].op) &&
          !IsI32Cmp(src[i + 2].op) && src[i + 3].op == Op::kLocalSet) {
        // Loop-counter update (dst = op(src, const)): zero stack traffic.
        Instr f;
        f.op = Op::kFLocalConstI32OpSet;
        f.a = a.a;
        f.b = src[i + 3].a;
        f.arity = static_cast<uint16_t>(src[i + 2].op);
        f.imm = src[i + 1].imm;
        emit(i, 4, f);
        i += 4;
        continue;
      }
      if (fusable(i, 3) && a.op == Op::kLocalGet &&
          src[i + 1].op == Op::kLocalGet && src[i + 2].op == Op::kI32Add) {
        Instr f;
        f.op = Op::kFLocalLocalI32Add;
        f.a = a.a;
        f.b = src[i + 1].a;
        emit(i, 3, f);
        i += 3;
        continue;
      }
      if (fusable(i, 3) && a.op == Op::kLocalGet &&
          src[i + 1].op == Op::kLocalGet && IsI32Cmp(src[i + 2].op)) {
        Instr f;
        f.op = Op::kFLocalLocalCmp;
        f.a = a.a;
        f.b = src[i + 1].a;
        f.arity = static_cast<uint16_t>(src[i + 2].op);
        emit(i, 3, f);
        i += 3;
        continue;
      }
      if (fusable(i, 3) && a.op == Op::kLocalGet &&
          src[i + 1].op == Op::kI32Const && IsI32FoldableBinop(src[i + 2].op)) {
        Instr f;
        f.op = Op::kFLocalConstI32Op;
        f.a = a.a;
        f.b = static_cast<uint32_t>(src[i + 2].op);
        f.imm = src[i + 1].imm;
        emit(i, 3, f);
        i += 3;
        continue;
      }
      if (fusable(i, 2)) {
        const Instr& b = src[i + 1];
        Instr f;
        bool matched = true;
        if (a.op == Op::kLocalGet && b.op == Op::kI32Load) {
          f.op = Op::kFLocalI32Load;
          f.a = b.a;  // load offset
          f.b = a.a;  // address local
        } else if (a.op == Op::kLocalGet && b.op == Op::kI64Load) {
          f.op = Op::kFLocalI64Load;
          f.a = b.a;  // load offset
          f.b = a.a;  // address local
        } else if (a.op == Op::kLocalGet && b.op == Op::kLocalSet) {
          f.op = Op::kFLocalCopy;
          f.a = a.a;  // src local
          f.b = b.a;  // dst local
        } else if (a.op == Op::kI32Const && b.op == Op::kI32Add) {
          f.op = Op::kFI32AddConst;
          f.imm = a.imm;
        } else if (a.op == Op::kI32Const && IsI32FoldableBinop(b.op)) {
          f.op = Op::kFI32ConstOp;
          f.b = static_cast<uint32_t>(b.op);
          f.imm = a.imm;
        } else if (a.op == Op::kI64Const && IsI64FoldableBinop(b.op)) {
          f.op = Op::kFI64ConstOp;
          f.b = static_cast<uint32_t>(b.op);
          f.imm = a.imm;
        } else if (a.op == Op::kI32Load && IsI32FoldableBinop(b.op) &&
                   !IsI32Cmp(b.op)) {
          f.op = Op::kFI32LoadOp;
          f.a = a.a;  // load offset
          f.b = static_cast<uint32_t>(b.op);
        } else if (a.op == Op::kI32Eqz && b.op == Op::kBrIf) {
          f.op = Op::kFBrIfEqz;
          f.a = b.a;
          f.b = b.b;
          f.arity = b.arity;
        } else if (IsI32Cmp(a.op) && b.op == Op::kBrIf) {
          f.op = Op::kFI32CmpBrIf;
          f.imm = static_cast<uint64_t>(a.op);
          f.a = b.a;
          f.b = b.b;
          f.arity = b.arity;
        } else if (IsI64Cmp(a.op) && b.op == Op::kBrIf) {
          f.op = Op::kFI64CmpBrIf;
          f.imm = static_cast<uint64_t>(a.op);
          f.a = b.a;
          f.b = b.b;
          f.arity = b.arity;
        } else if (IsI32Cmp(a.op) && b.op == Op::kSelect) {
          f.op = Op::kFI32CmpSel;
          f.imm = static_cast<uint64_t>(a.op);
        } else if (IsI64Cmp(a.op) && b.op == Op::kSelect) {
          f.op = Op::kFI64CmpSel;
          f.imm = static_cast<uint64_t>(a.op);
        } else if (a.op == Op::kLocalTee && b.op == Op::kBrIf) {
          f.op = Op::kFLocalTeeBrIf;
          f.imm = static_cast<uint64_t>(a.a);  // tee'd local
          f.a = b.a;
          f.b = b.b;
          f.arity = b.arity;
        } else {
          matched = false;
        }
        if (matched) {
          emit(i, 2, f);
          i += 2;
          continue;
        }
      }
      // Direct-call rewrite (1:1, cost 1): a call whose callee is a local
      // wasm function of this module can skip the host-function checks and
      // take the threaded loop's inline frame-push fast path. Imported
      // callees (hosts, cross-module) keep the generic kCall.
      if (a.op == Op::kCall && opts.num_funcs != 0 &&
          a.a >= opts.num_imported_funcs && a.a < opts.num_funcs) {
        Instr f = a;
        f.op = Op::kFCallWasm;
        count_op(f.op);
        out.code.push_back(f);
        ++direct_calls;
        ++i;
        continue;
      }
    }
    out.code.push_back(a);
    ++i;
  }

  // Remap branch targets into the rewritten stream. Only control operands
  // hold pcs; indices (call targets, locals, memory offsets) pass through.
  for (Instr& in : out.code) {
    switch (in.op) {
      case Op::kBlock:
      case Op::kLoop:
      case Op::kElse:
      case Op::kBr:
      case Op::kBrIf:
      case Op::kFBrIfEqz:
      case Op::kFI32CmpBrIf:
      case Op::kFI64CmpBrIf:
      case Op::kFLocalTeeBrIf:
      case Op::kFLocalLocalCmpBrIf:
        in.a = map[in.a];
        break;
      case Op::kIf:
        in.a = map[in.a];
        in.b = map[in.b];
        break;
      default:
        break;
    }
  }
  for (BrTable& table : out.br_tables) {
    for (BrTarget& t : table.targets) {
      t.pc = map[t.pc];
    }
  }

  // Straight-line cost metadata: lc[pc] = source units from pc through the
  // next terminator (inclusive). The dispatch loop charges a whole segment
  // on entry and falls back to per-instruction accounting only when the
  // remaining fuel cannot cover the segment, so executed counts and the
  // kFuelExhausted boundary stay bit-identical to per-instruction charging.
  std::vector<uint32_t>& lc = out.linear_cost;
  lc.assign(out.code.size(), 0);
  uint32_t run = 0;
  for (size_t j = out.code.size(); j-- > 0;) {
    if (IsSegmentTerminator(out.code[j].op)) {
      run = out.code[j].cost;
    } else {
      run += out.code[j].cost;
    }
    lc[j] = run;
  }

  if (stats != nullptr) {
    ++stats->functions;
    stats->source_instrs += static_cast<uint32_t>(n);
    stats->prepared_instrs += static_cast<uint32_t>(out.code.size());
    stats->fused += fused;
    stats->direct_calls += direct_calls;
  }
}

PrepareStats PrepareModule(Module& module, const PrepareOptions& opts) {
  PrepareStats stats;
  PrepareOptions full = opts;
  full.num_imported_funcs = module.num_imported_funcs;
  full.num_funcs = module.NumFuncs();
  for (Function& fn : module.functions) {
    PrepareFunction(fn, full, &stats);
  }
  // Profile slots survive re-prepares: counts accumulated so far stay
  // attributed to the same function indices, which a re-prepare never moves.
  if (!module.functions.empty() && module.func_profile == nullptr) {
    module.func_profile = std::shared_ptr<FuncProfileSlot[]>(
        new FuncProfileSlot[module.functions.size()]());
  }
  // JIT tier state does NOT survive a re-prepare: compiled code is keyed to
  // the prepared stream's pcs, which this pass just rewrote. Null when the
  // tier is compiled out.
  module.jit = jit::CreateModuleState(module.functions.size());
  module.prepare_stats = stats;
  return stats;
}

}  // namespace wasm
