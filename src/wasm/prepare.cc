#include "src/wasm/prepare.h"

#include <cstddef>
#include <vector>

namespace wasm {

namespace {

// Ops after which control does not simply fall to pc+1 (or where the
// interpreter needs an exact executed count: safepoint sites, calls, traps
// that end the run). These end the straight-line segments that linear_cost
// measures; everything else is charged as part of its segment.
bool IsSegmentTerminator(Op op) {
  switch (op) {
    case Op::kUnreachable:
    case Op::kLoop:  // back-edge target and loop-scheme safepoint site
    case Op::kIf:
    case Op::kElse:
    case Op::kBr:
    case Op::kBrIf:
    case Op::kBrTable:
    case Op::kReturn:
    case Op::kCall:
    case Op::kCallIndirect:
    case Op::kFBrIfEqz:
    case Op::kFI32CmpBrIf:
      return true;
    default:
      return false;
  }
}

bool IsI32Cmp(Op op) {
  switch (op) {
    case Op::kI32Eq:
    case Op::kI32Ne:
    case Op::kI32LtS:
    case Op::kI32LtU:
    case Op::kI32GtS:
    case Op::kI32GtU:
    case Op::kI32LeS:
    case Op::kI32LeU:
    case Op::kI32GeS:
    case Op::kI32GeU:
      return true;
    default:
      return false;
  }
}

// Marks every pc that any control instruction can jump to. Fusion must not
// swallow a jump target into the middle of a superinstruction: the target
// would vanish from the rewritten stream. (Block/loop end annotations are
// included conservatively even though plain ends are only reached by
// fall-through.)
std::vector<uint8_t> ComputeLeaders(const Function& fn) {
  const std::vector<Instr>& code = fn.code;
  std::vector<uint8_t> leader(code.size(), 0);
  auto mark = [&](uint32_t pc) {
    if (pc < leader.size()) leader[pc] = 1;
  };
  for (const Instr& in : code) {
    switch (in.op) {
      case Op::kBlock:
      case Op::kLoop:
      case Op::kElse:
      case Op::kBr:
      case Op::kBrIf:
        mark(in.a);
        break;
      case Op::kIf:
        mark(in.a);
        mark(in.b);
        break;
      case Op::kBrTable:
        if (in.a < fn.br_tables.size()) {
          for (const BrTarget& t : fn.br_tables[in.a].targets) {
            mark(t.pc);
          }
        }
        break;
      default:
        break;
    }
  }
  return leader;
}

}  // namespace

void PrepareFunction(Function& fn, const PrepareOptions& opts,
                     PrepareStats* stats) {
  const std::vector<Instr>& src = fn.code;
  const size_t n = src.size();
  PreparedCode& out = fn.prepared;
  out.code.clear();
  out.code.reserve(n);
  out.br_tables = fn.br_tables;

  std::vector<uint8_t> leader = ComputeLeaders(fn);
  // Old pc -> new pc. Instructions swallowed by a fusion map to the fusion
  // head; nothing branches to them (leader check), so this is only for
  // map-completeness.
  std::vector<uint32_t> map(n, 0);

  uint32_t fused = 0;
  size_t i = 0;
  while (i < n) {
    map[i] = static_cast<uint32_t>(out.code.size());
    const Instr& a = src[i];
    if (opts.fuse) {
      if (i + 2 < n && !leader[i + 1] && !leader[i + 2] &&
          a.op == Op::kLocalGet && src[i + 1].op == Op::kLocalGet &&
          src[i + 2].op == Op::kI32Add) {
        Instr f;
        f.op = Op::kFLocalLocalI32Add;
        f.cost = 3;
        f.a = a.a;
        f.b = src[i + 1].a;
        map[i + 1] = map[i + 2] = map[i];
        out.code.push_back(f);
        i += 3;
        ++fused;
        continue;
      }
      if (i + 1 < n && !leader[i + 1]) {
        const Instr& b = src[i + 1];
        Instr f;
        f.cost = 2;
        bool matched = true;
        if (a.op == Op::kLocalGet && b.op == Op::kI32Load) {
          f.op = Op::kFLocalI32Load;
          f.a = b.a;  // load offset
          f.b = a.a;  // address local
        } else if (a.op == Op::kLocalGet && b.op == Op::kLocalSet) {
          f.op = Op::kFLocalCopy;
          f.a = a.a;  // src local
          f.b = b.a;  // dst local
        } else if (a.op == Op::kI32Const && b.op == Op::kI32Add) {
          f.op = Op::kFI32AddConst;
          f.imm = a.imm;
        } else if (a.op == Op::kI32Eqz && b.op == Op::kBrIf) {
          f.op = Op::kFBrIfEqz;
          f.a = b.a;
          f.b = b.b;
          f.arity = b.arity;
        } else if (IsI32Cmp(a.op) && b.op == Op::kBrIf) {
          f.op = Op::kFI32CmpBrIf;
          f.imm = static_cast<uint64_t>(a.op);
          f.a = b.a;
          f.b = b.b;
          f.arity = b.arity;
        } else {
          matched = false;
        }
        if (matched) {
          map[i + 1] = map[i];
          out.code.push_back(f);
          i += 2;
          ++fused;
          continue;
        }
      }
    }
    out.code.push_back(a);
    ++i;
  }

  // Remap branch targets into the rewritten stream. Only control operands
  // hold pcs; indices (call targets, locals, memory offsets) pass through.
  for (Instr& in : out.code) {
    switch (in.op) {
      case Op::kBlock:
      case Op::kLoop:
      case Op::kElse:
      case Op::kBr:
      case Op::kBrIf:
      case Op::kFBrIfEqz:
      case Op::kFI32CmpBrIf:
        in.a = map[in.a];
        break;
      case Op::kIf:
        in.a = map[in.a];
        in.b = map[in.b];
        break;
      default:
        break;
    }
  }
  for (BrTable& table : out.br_tables) {
    for (BrTarget& t : table.targets) {
      t.pc = map[t.pc];
    }
  }

  // Straight-line cost metadata: lc[pc] = source units from pc through the
  // next terminator (inclusive). The dispatch loop charges a whole segment
  // on entry and falls back to per-instruction accounting only when the
  // remaining fuel cannot cover the segment, so executed counts and the
  // kFuelExhausted boundary stay bit-identical to per-instruction charging.
  std::vector<uint32_t>& lc = out.linear_cost;
  lc.assign(out.code.size(), 0);
  uint32_t run = 0;
  for (size_t j = out.code.size(); j-- > 0;) {
    if (IsSegmentTerminator(out.code[j].op)) {
      run = out.code[j].cost;
    } else {
      run += out.code[j].cost;
    }
    lc[j] = run;
  }

  if (stats != nullptr) {
    ++stats->functions;
    stats->source_instrs += static_cast<uint32_t>(n);
    stats->prepared_instrs += static_cast<uint32_t>(out.code.size());
    stats->fused += fused;
  }
}

PrepareStats PrepareModule(Module& module, const PrepareOptions& opts) {
  PrepareStats stats;
  for (Function& fn : module.functions) {
    PrepareFunction(fn, opts, &stats);
  }
  return stats;
}

}  // namespace wasm
