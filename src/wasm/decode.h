// Binary (.wasm) decoder: parses the standard wire format into a Module.
#ifndef SRC_WASM_DECODE_H_
#define SRC_WASM_DECODE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/status.h"
#include "src/wasm/module.h"

namespace wasm {

common::StatusOr<std::shared_ptr<Module>> DecodeModule(const uint8_t* data, size_t size);

inline common::StatusOr<std::shared_ptr<Module>> DecodeModule(
    const std::vector<uint8_t>& bytes) {
  return DecodeModule(bytes.data(), bytes.size());
}

}  // namespace wasm

#endif  // SRC_WASM_DECODE_H_
