#include "src/wasm/encode.h"

#include <cstring>

namespace wasm {

namespace {

class Writer {
 public:
  std::vector<uint8_t> out;

  void Byte(uint8_t b) { out.push_back(b); }
  void Bytes(const void* data, size_t n) {
    const uint8_t* p = static_cast<const uint8_t*>(data);
    out.insert(out.end(), p, p + n);
  }
  void U32Leb(uint64_t v) {
    do {
      uint8_t b = v & 0x7F;
      v >>= 7;
      if (v != 0) b |= 0x80;
      out.push_back(b);
    } while (v != 0);
  }
  void S64Leb(int64_t v) {
    bool more = true;
    while (more) {
      uint8_t b = v & 0x7F;
      v >>= 7;
      if ((v == 0 && (b & 0x40) == 0) || (v == -1 && (b & 0x40) != 0)) {
        more = false;
      } else {
        b |= 0x80;
      }
      out.push_back(b);
    }
  }
  void S32Leb(int32_t v) { S64Leb(v); }
  void Name(const std::string& s) {
    U32Leb(s.size());
    Bytes(s.data(), s.size());
  }
  void Limits(const wasm::Limits& l) {
    uint8_t flags = (l.has_max ? 1 : 0) | (l.shared ? 2 : 0);
    Byte(flags);
    U32Leb(l.min);
    if (l.has_max) U32Leb(l.max);
  }
  void InitExpr(const wasm::InitExpr& e) {
    if (e.kind == wasm::InitExpr::Kind::kGlobalGet) {
      Byte(0x23);
      U32Leb(e.global_index);
    } else {
      switch (e.type) {
        case ValType::kI32:
          Byte(0x41);
          S32Leb(static_cast<int32_t>(e.bits));
          break;
        case ValType::kI64:
          Byte(0x42);
          S64Leb(static_cast<int64_t>(e.bits));
          break;
        case ValType::kF32: {
          Byte(0x43);
          uint32_t u = static_cast<uint32_t>(e.bits);
          Bytes(&u, 4);
          break;
        }
        default: {
          Byte(0x44);
          uint64_t u = e.bits;
          Bytes(&u, 8);
          break;
        }
      }
    }
    Byte(0x0B);  // end
  }
  // Appends `payload` as section `id`.
  void Section(uint8_t id, const Writer& payload) {
    Byte(id);
    U32Leb(payload.out.size());
    Bytes(payload.out.data(), payload.out.size());
  }
};

void EncodeInstr(Writer& w, const Function& fn, const Instr& in) {
  uint32_t raw = static_cast<uint32_t>(in.op);
  if (raw >= 0x200) {
    w.Byte(0xFE);
    w.U32Leb(raw - 0x200);
  } else if (raw >= 0x100) {
    w.Byte(0xFC);
    w.U32Leb(raw - 0x100);
  } else {
    w.Byte(static_cast<uint8_t>(raw));
  }
  switch (OpImmKind(in.op)) {
    case ImmKind::kNone:
      break;
    case ImmKind::kBlock:
      w.Byte(static_cast<uint8_t>(in.imm));
      break;
    case ImmKind::kLabel:
      w.U32Leb(in.imm);  // original depth
      break;
    case ImmKind::kBrTable: {
      const BrTable& table = fn.br_tables[in.a];
      w.U32Leb(table.targets.size() - 1);
      for (const BrTarget& t : table.targets) {
        w.U32Leb(t.depth);
      }
      break;
    }
    case ImmKind::kFunc:
      w.U32Leb(in.a);
      break;
    case ImmKind::kCallIndirect:
      w.U32Leb(in.a);  // type index
      w.U32Leb(in.b);  // table index
      break;
    case ImmKind::kLocal:
    case ImmKind::kGlobal:
      w.U32Leb(in.a);
      break;
    case ImmKind::kMem:
      w.U32Leb(in.b);  // align (log2; we carry it opaquely)
      w.U32Leb(in.a);  // offset
      break;
    case ImmKind::kMemIdx:
      w.Byte(0);
      break;
    case ImmKind::kMemMemIdx:
      w.Byte(0);
      w.Byte(0);
      break;
    case ImmKind::kI32Const:
      w.S32Leb(static_cast<int32_t>(in.imm));
      break;
    case ImmKind::kI64Const:
      w.S64Leb(static_cast<int64_t>(in.imm));
      break;
    case ImmKind::kF32Const: {
      uint32_t u = static_cast<uint32_t>(in.imm);
      w.Bytes(&u, 4);
      break;
    }
    case ImmKind::kF64Const: {
      uint64_t u = in.imm;
      w.Bytes(&u, 8);
      break;
    }
  }
}

// Emits the body up to (and including) the function-closing kEnd, skipping
// any synthetic kReturn appended by validation.
void EncodeBody(Writer& w, const Function& fn) {
  int depth = 1;
  for (const Instr& in : fn.code) {
    EncodeInstr(w, fn, in);
    if (in.op == Op::kBlock || in.op == Op::kLoop || in.op == Op::kIf) {
      ++depth;
    } else if (in.op == Op::kEnd) {
      --depth;
      if (depth == 0) return;
    }
  }
}

}  // namespace

std::vector<uint8_t> EncodeModule(const Module& module) {
  Writer w;
  static const uint8_t kMagic[8] = {0x00, 0x61, 0x73, 0x6D, 0x01, 0x00, 0x00, 0x00};
  w.Bytes(kMagic, 8);

  if (!module.types.empty()) {
    Writer s;
    s.U32Leb(module.types.size());
    for (const FuncType& t : module.types) {
      s.Byte(0x60);
      s.U32Leb(t.params.size());
      for (ValType v : t.params) s.Byte(static_cast<uint8_t>(v));
      s.U32Leb(t.results.size());
      for (ValType v : t.results) s.Byte(static_cast<uint8_t>(v));
    }
    w.Section(1, s);
  }

  if (!module.imports.empty()) {
    Writer s;
    s.U32Leb(module.imports.size());
    for (const Import& imp : module.imports) {
      s.Name(imp.module);
      s.Name(imp.name);
      s.Byte(static_cast<uint8_t>(imp.kind));
      switch (imp.kind) {
        case ExternKind::kFunc:
          s.U32Leb(imp.type_index);
          break;
        case ExternKind::kTable:
          s.Byte(0x70);
          s.Limits(imp.limits);
          break;
        case ExternKind::kMemory:
          s.Limits(imp.limits);
          break;
        case ExternKind::kGlobal:
          s.Byte(static_cast<uint8_t>(imp.global_type.type));
          s.Byte(imp.global_type.mut ? 1 : 0);
          break;
      }
    }
    w.Section(2, s);
  }

  if (!module.functions.empty()) {
    Writer s;
    s.U32Leb(module.functions.size());
    for (const Function& f : module.functions) s.U32Leb(f.type_index);
    w.Section(3, s);
  }

  if (!module.tables.empty()) {
    Writer s;
    s.U32Leb(module.tables.size());
    for (const TableDecl& t : module.tables) {
      s.Byte(0x70);
      s.Limits(t.limits);
    }
    w.Section(4, s);
  }

  if (!module.memories.empty()) {
    Writer s;
    s.U32Leb(module.memories.size());
    for (const MemoryDecl& m : module.memories) s.Limits(m.limits);
    w.Section(5, s);
  }

  if (!module.globals.empty()) {
    Writer s;
    s.U32Leb(module.globals.size());
    for (const Global& g : module.globals) {
      s.Byte(static_cast<uint8_t>(g.type.type));
      s.Byte(g.type.mut ? 1 : 0);
      s.InitExpr(g.init);
    }
    w.Section(6, s);
  }

  if (!module.exports.empty()) {
    Writer s;
    s.U32Leb(module.exports.size());
    for (const Export& e : module.exports) {
      s.Name(e.name);
      s.Byte(static_cast<uint8_t>(e.kind));
      s.U32Leb(e.index);
    }
    w.Section(7, s);
  }

  if (module.start.has_value()) {
    Writer s;
    s.U32Leb(*module.start);
    w.Section(8, s);
  }

  if (!module.elems.empty()) {
    Writer s;
    s.U32Leb(module.elems.size());
    for (const ElemSegment& seg : module.elems) {
      s.U32Leb(seg.table_index);
      s.InitExpr(seg.offset);
      s.U32Leb(seg.func_indices.size());
      for (uint32_t fi : seg.func_indices) s.U32Leb(fi);
    }
    w.Section(9, s);
  }

  if (!module.functions.empty()) {
    Writer s;
    s.U32Leb(module.functions.size());
    for (const Function& f : module.functions) {
      Writer body;
      // Local declarations: run-length encoded by type.
      std::vector<std::pair<uint32_t, ValType>> runs;
      for (ValType t : f.locals) {
        if (!runs.empty() && runs.back().second == t) {
          ++runs.back().first;
        } else {
          runs.emplace_back(1, t);
        }
      }
      body.U32Leb(runs.size());
      for (auto [count, t] : runs) {
        body.U32Leb(count);
        body.Byte(static_cast<uint8_t>(t));
      }
      EncodeBody(body, f);
      s.U32Leb(body.out.size());
      s.Bytes(body.out.data(), body.out.size());
    }
    w.Section(10, s);
  }

  if (!module.datas.empty()) {
    Writer s;
    s.U32Leb(module.datas.size());
    for (const DataSegment& seg : module.datas) {
      s.U32Leb(seg.memory_index);
      s.InitExpr(seg.offset);
      s.U32Leb(seg.bytes.size());
      s.Bytes(seg.bytes.data(), seg.bytes.size());
    }
    w.Section(11, s);
  }

  return w.out;
}

}  // namespace wasm
