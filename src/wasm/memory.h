// Linear memory. The full max size is reserved up-front with PROT_NONE and
// committed on grow, so the base address never moves. This is what lets
// WALI (a) share one memory across instance-per-thread clones and (b) map
// files zero-copy inside the sandbox with MAP_FIXED (paper §3.2).
#ifndef SRC_WASM_MEMORY_H_
#define SRC_WASM_MEMORY_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>

#include "src/common/status.h"
#include "src/wasm/types.h"

namespace wasm {

class Memory {
 public:
  // Creates a memory of `limits.min` pages, reserving `limits.max` pages
  // (or kDefaultMaxPages when absent). Returns nullptr on reservation failure.
  static common::StatusOr<std::shared_ptr<Memory>> Create(const Limits& limits);
  ~Memory();

  Memory(const Memory&) = delete;
  Memory& operator=(const Memory&) = delete;

  uint8_t* base() const { return base_; }
  uint64_t size_bytes() const { return size_bytes_.load(std::memory_order_acquire); }
  uint64_t size_pages() const { return size_bytes() / kWasmPageSize; }
  // Address of the live size word, for code that re-reads it without holding
  // a Memory reference per read (the JIT tier's loop-header REFRESH_MSIZE
  // reload). base() never moves, so (base, size word) fully describes the
  // addressable range for the lifetime of the Memory.
  const std::atomic<uint64_t>* size_bytes_addr() const { return &size_bytes_; }
  uint64_t max_pages() const { return max_pages_; }
  bool shared() const { return shared_; }

  // Largest committed size (in pages) since creation or the last
  // ResetToPages. Memory never shrinks within a run, so this is the run's
  // memory high-water mark — the number the host accounting layer charges
  // per tenant (RunReport.mem_high_water_pages).
  uint64_t high_water_pages() const {
    return high_water_pages_.load(std::memory_order_acquire);
  }

  // Soft cap below max_pages, enforced in Grow (and thus GrowToCover /
  // MapFileFixed): a grow past it fails like a grow past the declared
  // maximum, so pages beyond the cap are never committed — a single huge
  // memory.grow cannot overshoot it the way a poll-at-safepoint check
  // could. 0 = no cap. Armed per run by the host supervisor from the
  // tenant's memory budget; cleared on ResetToPages (slab recycle).
  void SetGrowBudgetPages(uint64_t pages) {
    grow_budget_pages_.store(pages, std::memory_order_release);
  }
  uint64_t grow_budget_pages() const {
    return grow_budget_pages_.load(std::memory_order_acquire);
  }

  // Grows by delta pages; returns previous size in pages or -1 on failure
  // (Wasm memory.grow semantics).
  int64_t Grow(uint64_t delta_pages);

  // Grows until size_bytes() >= end (page-rounded). Used by WALI mmap.
  bool GrowToCover(uint64_t end);

  // Returns the memory to a pristine `pages`-page state: every committed page
  // reads as zero again and the wasm size shrinks (or grows) to `pages`.
  // The base address is preserved, which is what lets the host layer recycle
  // a reserved slab across guest instantiations instead of re-reserving.
  // Implemented as an anonymous MAP_FIXED remap of the committed range, so
  // cost is page-table teardown, not a memset of the whole slab.
  common::Status ResetToPages(uint64_t pages);

  bool InBounds(uint64_t offset, uint64_t len) const {
    uint64_t size = size_bytes();
    return offset <= size && len <= size - offset;
  }

  // Unchecked translation; callers must bounds-check first.
  uint8_t* At(uint64_t offset) const { return base_ + offset; }

  // --- WALI memory-mapping hooks (all offsets are wasm addresses) ---

  // Maps fd at linear-memory offset `offset` with MAP_FIXED. The range must
  // be page-aligned and inside the reservation; grows the wasm size to cover
  // it. Returns errno (0 on success).
  int MapFileFixed(uint64_t offset, uint64_t len, int prot, int flags, int fd,
                   int64_t file_offset);
  // "Unmaps" by replacing with fresh anonymous zero pages, keeping the range
  // accessible so later sandboxed loads see zeros instead of faulting.
  int UnmapFixed(uint64_t offset, uint64_t len);
  // mprotect passthrough within the sandbox (never allows PROT_EXEC).
  int ProtectFixed(uint64_t offset, uint64_t len, int prot);

  // --- atomics.wait / atomics.notify support (threads proposal) ---
  // Returns 0 = woken, 1 = not-equal, 2 = timed out.
  int Wait32(uint64_t addr, uint32_t expected, int64_t timeout_ns);
  int Wait64(uint64_t addr, uint64_t expected, int64_t timeout_ns);
  uint32_t Notify(uint64_t addr, uint32_t count);

 private:
  Memory() = default;

  template <typename T>
  int WaitImpl(uint64_t addr, T expected, int64_t timeout_ns);

  uint8_t* base_ = nullptr;
  std::atomic<uint64_t> size_bytes_{0};
  std::atomic<uint64_t> high_water_pages_{0};
  std::atomic<uint64_t> grow_budget_pages_{0};
  uint64_t max_pages_ = 0;
  uint64_t reserved_bytes_ = 0;
  bool shared_ = false;
  std::mutex grow_mu_;

  struct WaitQueue {
    std::condition_variable cv;
    uint64_t waiters = 0;
    uint64_t wake_epoch = 0;
  };
  std::mutex wait_mu_;
  std::map<uint64_t, WaitQueue> wait_queues_;
};

// Default reservation when a memory declares no maximum: 16384 pages = 1 GiB.
inline constexpr uint64_t kDefaultMaxPages = 16384;

}  // namespace wasm

#endif  // SRC_WASM_MEMORY_H_
