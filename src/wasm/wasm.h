// Umbrella header for the WebAssembly engine substrate (S1 in DESIGN.md).
#ifndef SRC_WASM_WASM_H_
#define SRC_WASM_WASM_H_

#include "src/wasm/decode.h"    // IWYU pragma: export
#include "src/wasm/encode.h"    // IWYU pragma: export
#include "src/wasm/instance.h"  // IWYU pragma: export
#include "src/wasm/interp.h"    // IWYU pragma: export
#include "src/wasm/memory.h"    // IWYU pragma: export
#include "src/wasm/module.h"    // IWYU pragma: export
#include "src/wasm/opcode.h"    // IWYU pragma: export
#include "src/wasm/types.h"     // IWYU pragma: export
#include "src/wasm/validate.h"  // IWYU pragma: export
#include "src/wasm/wat_parser.h"  // IWYU pragma: export

#endif  // SRC_WASM_WASM_H_
