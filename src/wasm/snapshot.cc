#include "src/wasm/snapshot.h"

#include <cstring>

namespace wasm {

namespace {

constexpr size_t kHeaderBytes = 4 + 4 + 8 + 8;  // magic, version, checksum, hash

// 64-bit FNV-1a, the same construction host::ModuleCache uses for module
// bytes; re-implemented here so the wasm layer stays free of host includes.
struct Fnv {
  uint64_t h = 1469598103934665603ULL;
  void Add(const void* p, size_t n) {
    const uint8_t* b = static_cast<const uint8_t*>(p);
    for (size_t i = 0; i < n; ++i) {
      h ^= b[i];
      h *= 1099511628211ULL;
    }
  }
  void U8(uint8_t v) { Add(&v, 1); }
  void U32(uint32_t v) { Add(&v, 4); }
  void U64(uint64_t v) { Add(&v, 8); }
};

uint64_t ChecksumPayload(const uint8_t* data, size_t size) {
  Fnv f;
  f.Add(data, size);
  return f.h;
}

void HashInstrs(Fnv& f, const std::vector<Instr>& code) {
  f.U64(code.size());
  for (const Instr& in : code) {
    f.U8(static_cast<uint8_t>(in.op));
    f.U8(in.flags);
    f.U8(in.cost);
    f.U32(in.arity);
    f.U32(in.a);
    f.U32(in.b);
    f.U64(in.imm);
  }
}

void HashBrTables(Fnv& f, const std::vector<BrTable>& tables) {
  f.U64(tables.size());
  for (const BrTable& t : tables) {
    f.U64(t.targets.size());
    for (const BrTarget& bt : t.targets) {
      f.U32(bt.pc);
      f.U32(bt.height);
      f.U32(bt.arity);
      f.U32(bt.depth);
    }
  }
}

void HashInitExpr(Fnv& f, const InitExpr& e) {
  f.U8(static_cast<uint8_t>(e.kind));
  f.U8(static_cast<uint8_t>(e.type));
  f.U64(e.bits);
  f.U32(e.global_index);
}

common::Status Corrupt(const char* what) {
  return common::InvalidArgument(std::string("snapshot: ") + what);
}

}  // namespace

void SnapshotWriter::U32(uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void SnapshotWriter::U64(uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void SnapshotWriter::Bytes(const void* p, size_t n) {
  if (n == 0) return;
  const uint8_t* b = static_cast<const uint8_t*>(p);
  buf_.insert(buf_.end(), b, b + n);
}

common::Status SnapshotReader::U8(uint8_t* out) {
  if (remaining() < 1) return Corrupt("truncated (u8)");
  *out = *p_++;
  return common::OkStatus();
}

common::Status SnapshotReader::U32(uint32_t* out) {
  if (remaining() < 4) return Corrupt("truncated (u32)");
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(p_[i]) << (8 * i);
  p_ += 4;
  *out = v;
  return common::OkStatus();
}

common::Status SnapshotReader::U64(uint64_t* out) {
  if (remaining() < 8) return Corrupt("truncated (u64)");
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(p_[i]) << (8 * i);
  p_ += 8;
  *out = v;
  return common::OkStatus();
}

common::Status SnapshotReader::Bytes(void* dst, size_t n) {
  if (remaining() < n) return Corrupt("truncated (bytes)");
  std::memcpy(dst, p_, n);
  p_ += n;
  return common::OkStatus();
}

common::Status SnapshotReader::Skip(size_t n) {
  if (remaining() < n) return Corrupt("truncated (skip)");
  p_ += n;
  return common::OkStatus();
}

uint64_t ModuleStructuralHash(const Module& m) {
  Fnv f;
  f.U64(m.types.size());
  for (const FuncType& t : m.types) {
    f.U64(t.params.size());
    for (ValType v : t.params) f.U8(static_cast<uint8_t>(v));
    f.U64(t.results.size());
    for (ValType v : t.results) f.U8(static_cast<uint8_t>(v));
  }
  f.U32(m.num_imported_funcs);
  f.U32(m.num_imported_tables);
  f.U32(m.num_imported_memories);
  f.U32(m.num_imported_globals);
  f.U64(m.imports.size());
  for (const Import& imp : m.imports) {
    f.Add(imp.module.data(), imp.module.size());
    f.U8(0);
    f.Add(imp.name.data(), imp.name.size());
    f.U8(static_cast<uint8_t>(imp.kind));
    f.U32(imp.type_index);
  }
  f.U64(m.functions.size());
  for (const Function& fn : m.functions) {
    f.U32(fn.type_index);
    f.U64(fn.locals.size());
    for (ValType v : fn.locals) f.U8(static_cast<uint8_t>(v));
    // Both streams: a frame's pc indexes one of them, so restoring into a
    // module prepared differently (fusion on/off, different heuristics)
    // must fail the hash check rather than misinterpret saved pcs.
    HashInstrs(f, fn.code);
    HashBrTables(f, fn.br_tables);
    HashInstrs(f, fn.prepared.code);
    HashBrTables(f, fn.prepared.br_tables);
    f.U64(fn.prepared.linear_cost.size());
  }
  f.U64(m.globals.size());
  for (const Global& g : m.globals) {
    f.U8(static_cast<uint8_t>(g.type.type));
    f.U8(g.type.mut ? 1 : 0);
    HashInitExpr(f, g.init);
  }
  f.U64(m.exports.size());
  for (const Export& e : m.exports) {
    f.Add(e.name.data(), e.name.size());
    f.U8(static_cast<uint8_t>(e.kind));
    f.U32(e.index);
  }
  f.U64(m.datas.size());
  for (const DataSegment& d : m.datas) {
    f.U32(d.memory_index);
    HashInitExpr(f, d.offset);
    f.U64(d.bytes.size());
    f.Add(d.bytes.data(), d.bytes.size());
  }
  f.U64(m.elems.size());
  for (const ElemSegment& e : m.elems) {
    f.U32(e.table_index);
    HashInitExpr(f, e.offset);
    f.U64(e.func_indices.size());
    for (uint32_t idx : e.func_indices) f.U32(idx);
  }
  f.U64(m.start.has_value() ? *m.start + 1 : 0);
  return f.h;
}

namespace {

// Fills `page` with the fresh-instance image of memory page `page_index`:
// zeros overlaid with every data segment byte that lands in the page. Data
// segment offsets referencing globals use imported immutable globals only
// (validator rule), so evaluating them against the live instance is exact.
void BaselinePage(Instance* inst, uint64_t page_index, uint8_t* page) {
  std::memset(page, 0, kWasmPageSize);
  const Module& m = inst->module();
  const uint64_t lo = page_index * kWasmPageSize;
  const uint64_t hi = lo + kWasmPageSize;
  for (const DataSegment& seg : m.datas) {
    if (seg.memory_index != 0 || seg.bytes.empty()) continue;
    uint64_t off = seg.offset.kind == InitExpr::Kind::kConst
                       ? seg.offset.bits
                       : inst->global(seg.offset.global_index).bits;
    uint64_t seg_end = off + seg.bytes.size();
    if (seg_end <= lo || off >= hi) continue;
    uint64_t from = off > lo ? off : lo;
    uint64_t to = seg_end < hi ? seg_end : hi;
    std::memcpy(page + (from - lo), seg.bytes.data() + (from - off), to - from);
  }
}

}  // namespace

common::StatusOr<std::vector<uint8_t>> SnapshotSuspension(
    const Suspension& susp, Instance* inst, uint64_t module_hash,
    const std::vector<uint8_t>& host_blob) {
  if (!susp.armed()) {
    return common::FailedPrecondition("snapshot: suspension is not armed");
  }
  const ExecContext& ctx = *susp.ctx;
  if (ctx.root != inst) {
    return common::InvalidArgument("snapshot: suspension does not belong to instance");
  }
  const Module& m = inst->module();
  if (susp.entry_type < m.types.data() ||
      susp.entry_type >= m.types.data() + m.types.size()) {
    return common::Unimplemented(
        "snapshot: entry type is not a module type (host-function entry)");
  }
  const uint32_t entry_type_index =
      static_cast<uint32_t>(susp.entry_type - m.types.data());

  SnapshotWriter w;
  // Exec section.
  w.U8(static_cast<uint8_t>(ctx.opts.scheme));
  w.U8(static_cast<uint8_t>(ctx.opts.dispatch));
  w.U32(ctx.opts.max_frames);
  w.U64(ctx.opts.max_value_stack);
  w.U64(ctx.opts.fuel);
  w.U64(ctx.executed);
  w.U32(static_cast<uint32_t>(ctx.exit_code));
  w.U32(susp.pending_results);
  w.U32(entry_type_index);

  // Operand stack: at kSyscallPending the vector holds the exact plain
  // spilled form (STACK_SYNC invariant), identical under both dispatch
  // loops, so the raw slots are the canonical serialization.
  w.U64(ctx.stack.size());
  for (uint64_t slot : ctx.stack) w.U64(slot);

  // Frames. Code/table/cost pointers are re-derived at restore from the
  // function index plus which stream the frame was executing.
  w.U32(static_cast<uint32_t>(ctx.frames.size()));
  for (const ExecContext::Frame& fr : ctx.frames) {
    if (fr.inst != inst) {
      return common::Unimplemented(
          "snapshot: multi-instance frame stacks are not serializable");
    }
    if (fr.fn < m.functions.data() || fr.fn >= m.functions.data() + m.functions.size()) {
      return common::InvalidArgument("snapshot: frame function not in module");
    }
    const bool prepared = fr.code == fr.fn->prepared.code.data() &&
                          !fr.fn->prepared.code.empty();
    if (!prepared && fr.code != fr.fn->code.data()) {
      return common::InvalidArgument("snapshot: frame stream not recognized");
    }
    w.U32(static_cast<uint32_t>(fr.fn - m.functions.data()));
    w.U32(fr.pc);
    w.U32(fr.locals_base);
    w.U32(fr.stack_base);
    w.U8(prepared ? 1 : 0);
  }

  // Globals: full index space (imports first), matching Instance::global.
  const uint32_t num_globals = m.NumGlobals();
  w.U32(num_globals);
  for (uint32_t i = 0; i < num_globals; ++i) {
    w.U64(inst->global(i).bits);
  }

  // Linear memory: committed size plus only the pages that differ from the
  // fresh-instance image (zeros + data segments). Idle guests touch few
  // pages, so the delta is small even when the committed size is not.
  std::shared_ptr<Memory> mem = inst->memory(0);
  if (mem == nullptr) {
    w.U64(0);
    w.U32(0);
  } else {
    const uint64_t pages = mem->size_pages();
    w.U64(pages);
    std::vector<uint64_t> dirty;
    std::vector<uint8_t> baseline(kWasmPageSize);
    for (uint64_t p = 0; p < pages; ++p) {
      BaselinePage(inst, p, baseline.data());
      if (std::memcmp(mem->base() + p * kWasmPageSize, baseline.data(),
                      kWasmPageSize) != 0) {
        dirty.push_back(p);
      }
    }
    w.U32(static_cast<uint32_t>(dirty.size()));
    for (uint64_t p : dirty) {
      w.U64(p);
      w.Bytes(mem->base() + p * kWasmPageSize, kWasmPageSize);
    }
  }

  // Opaque host blob (the wali layer's process state).
  w.U64(host_blob.size());
  w.Bytes(host_blob.data(), host_blob.size());

  // Prepend the header now that the payload checksum is known.
  std::vector<uint8_t> out;
  out.reserve(kHeaderBytes + w.buf().size());
  SnapshotWriter hdr;
  hdr.U32(kSnapshotMagic);
  hdr.U32(kSnapshotVersion);
  hdr.U64(ChecksumPayload(w.buf().data(), w.buf().size()));
  hdr.U64(module_hash);
  out.insert(out.end(), hdr.buf().begin(), hdr.buf().end());
  out.insert(out.end(), w.buf().begin(), w.buf().end());
  return out;
}

common::StatusOr<std::vector<uint8_t>> RestoreSuspension(
    const uint8_t* data, size_t size, Instance* inst, uint64_t module_hash,
    ExecBuffers* buffers, Suspension* out) {
  if (inst == nullptr || out == nullptr) {
    return common::InvalidArgument("snapshot: null instance or suspension slot");
  }
  SnapshotReader r(data, size);
  uint32_t magic = 0;
  uint32_t version = 0;
  uint64_t checksum = 0;
  uint64_t hash = 0;
  RETURN_IF_ERROR(r.U32(&magic));
  if (magic != kSnapshotMagic) return Corrupt("bad magic");
  RETURN_IF_ERROR(r.U32(&version));
  if (version != kSnapshotVersion) return Corrupt("unsupported version");
  RETURN_IF_ERROR(r.U64(&checksum));
  RETURN_IF_ERROR(r.U64(&hash));
  if (hash != module_hash) return Corrupt("module hash mismatch");
  if (size < kHeaderBytes ||
      ChecksumPayload(data + kHeaderBytes, size - kHeaderBytes) != checksum) {
    return Corrupt("payload checksum mismatch");
  }

  const Module& m = inst->module();

  // Exec section.
  uint8_t scheme = 0;
  uint8_t dispatch = 0;
  uint32_t max_frames = 0;
  uint64_t max_value_stack = 0;
  uint64_t fuel = 0;
  uint64_t executed = 0;
  uint32_t exit_code = 0;
  uint32_t pending_results = 0;
  uint32_t entry_type_index = 0;
  RETURN_IF_ERROR(r.U8(&scheme));
  RETURN_IF_ERROR(r.U8(&dispatch));
  RETURN_IF_ERROR(r.U32(&max_frames));
  RETURN_IF_ERROR(r.U64(&max_value_stack));
  RETURN_IF_ERROR(r.U64(&fuel));
  RETURN_IF_ERROR(r.U64(&executed));
  RETURN_IF_ERROR(r.U32(&exit_code));
  RETURN_IF_ERROR(r.U32(&pending_results));
  RETURN_IF_ERROR(r.U32(&entry_type_index));
  if (scheme > static_cast<uint8_t>(SafepointScheme::kEveryInstr)) {
    return Corrupt("bad safepoint scheme");
  }
  if (dispatch > static_cast<uint8_t>(DispatchMode::kThreaded)) {
    return Corrupt("bad dispatch mode");
  }
  if (pending_results > kMaxHostResults) return Corrupt("pending results too large");
  if (entry_type_index >= m.types.size()) return Corrupt("entry type out of range");
  if (fuel != 0 && executed > fuel) return Corrupt("executed exceeds fuel");

  // Operand stack. The element count is capped by the remaining bytes
  // before any allocation, so a hostile count cannot force a huge reserve.
  uint64_t stack_count = 0;
  RETURN_IF_ERROR(r.U64(&stack_count));
  if (stack_count > r.remaining() / 8) return Corrupt("stack slot count overruns input");
  if (max_value_stack != 0 && stack_count > max_value_stack) {
    return Corrupt("stack exceeds max_value_stack");
  }
  std::vector<uint64_t> stack(static_cast<size_t>(stack_count));
  for (uint64_t& slot : stack) {
    RETURN_IF_ERROR(r.U64(&slot));
  }

  // Frames: parse + validate fully before touching the instance.
  struct FrameRec {
    uint32_t func = 0;
    uint32_t pc = 0;
    uint32_t locals_base = 0;
    uint32_t stack_base = 0;
    uint8_t prepared = 0;
  };
  uint32_t frame_count = 0;
  RETURN_IF_ERROR(r.U32(&frame_count));
  constexpr size_t kFrameRecBytes = 4 * 4 + 1;
  if (frame_count > r.remaining() / kFrameRecBytes) {
    return Corrupt("frame count overruns input");
  }
  if (max_frames != 0 && frame_count > max_frames) {
    return Corrupt("frame count exceeds max_frames");
  }
  std::vector<FrameRec> frames(frame_count);
  uint32_t prev_base = 0;
  for (FrameRec& fr : frames) {
    RETURN_IF_ERROR(r.U32(&fr.func));
    RETURN_IF_ERROR(r.U32(&fr.pc));
    RETURN_IF_ERROR(r.U32(&fr.locals_base));
    RETURN_IF_ERROR(r.U32(&fr.stack_base));
    RETURN_IF_ERROR(r.U8(&fr.prepared));
    if (fr.func >= m.functions.size()) return Corrupt("frame function out of range");
    const Function& fn = m.functions[fr.func];
    if (fr.prepared > 1) return Corrupt("bad frame stream flag");
    if (fr.prepared != 0) {
      if (fn.prepared.code.empty() ||
          scheme == static_cast<uint8_t>(SafepointScheme::kEveryInstr)) {
        return Corrupt("frame claims prepared stream it cannot have");
      }
      if (fr.pc >= fn.prepared.code.size()) return Corrupt("frame pc out of range");
    } else {
      if (fr.pc >= fn.code.size()) return Corrupt("frame pc out of range");
    }
    const FuncType& type = m.types[fn.type_index];
    const uint64_t expect_base = static_cast<uint64_t>(fr.locals_base) +
                                 type.params.size() + fn.locals.size() + 1;
    if (fr.stack_base != expect_base) return Corrupt("frame stack layout mismatch");
    if (fr.locals_base < prev_base) return Corrupt("frame bases not monotonic");
    if (fr.stack_base > stack.size()) return Corrupt("frame base beyond stack");
    prev_base = fr.stack_base;
  }

  // Globals.
  uint32_t global_count = 0;
  RETURN_IF_ERROR(r.U32(&global_count));
  if (global_count != m.NumGlobals()) return Corrupt("global count mismatch");
  if (global_count > r.remaining() / 8) return Corrupt("global count overruns input");
  std::vector<uint64_t> globals(global_count);
  for (uint64_t& g : globals) {
    RETURN_IF_ERROR(r.U64(&g));
  }

  // Memory: sizes and page indices validated before anything is applied.
  std::shared_ptr<Memory> mem = inst->memory(0);
  uint64_t snap_pages = 0;
  uint32_t delta_count = 0;
  RETURN_IF_ERROR(r.U64(&snap_pages));
  RETURN_IF_ERROR(r.U32(&delta_count));
  if (mem == nullptr) {
    if (snap_pages != 0 || delta_count != 0) {
      return Corrupt("memory snapshot for a module with no memory");
    }
  } else {
    if (snap_pages < mem->size_pages()) return Corrupt("memory smaller than fresh instance");
    if (snap_pages > mem->max_pages()) return Corrupt("memory exceeds declared maximum");
  }
  constexpr size_t kDeltaRecBytes = 8 + kWasmPageSize;
  if (delta_count > r.remaining() / kDeltaRecBytes) {
    return Corrupt("delta page count overruns input");
  }
  struct DeltaRec {
    uint64_t page = 0;
    const uint8_t* bytes = nullptr;  // borrowed from the input buffer
  };
  std::vector<DeltaRec> deltas(delta_count);
  for (DeltaRec& d : deltas) {
    RETURN_IF_ERROR(r.U64(&d.page));
    if (d.page >= snap_pages) return Corrupt("delta page out of range");
    d.bytes = r.cur();
    RETURN_IF_ERROR(r.Skip(kWasmPageSize));
  }

  // Host blob.
  uint64_t blob_len = 0;
  RETURN_IF_ERROR(r.U64(&blob_len));
  if (blob_len > r.remaining()) return Corrupt("host blob overruns input");
  std::vector<uint8_t> host_blob(static_cast<size_t>(blob_len));
  if (blob_len > 0) {
    RETURN_IF_ERROR(r.Bytes(host_blob.data(), static_cast<size_t>(blob_len)));
  }
  if (r.remaining() != 0) return Corrupt("trailing bytes after host blob");

  // Everything parsed and validated; now mutate the instance.
  for (uint32_t i = 0; i < global_count; ++i) {
    inst->global(i).bits = globals[i];
  }
  if (mem != nullptr && snap_pages > mem->size_pages()) {
    if (mem->Grow(snap_pages - mem->size_pages()) < 0) {
      return common::ResourceExhausted("snapshot: memory grow refused at restore");
    }
  }
  for (const DeltaRec& d : deltas) {
    std::memcpy(mem->base() + d.page * kWasmPageSize, d.bytes, kWasmPageSize);
  }

  // Rebuild the parked context exactly as Invoke's resumable path leaves it:
  // heap-allocated, buffers swapped in, code/table/cost pointers re-derived
  // from the hash-matched module, and the suspension armed so ResumeInvoke
  // continues bit-identically to the never-evicted run.
  out->Discard();
  auto ctxp = std::make_unique<ExecContext>();
  ExecContext& ctx = *ctxp;
  ctx.root = inst;
  ctx.opts.scheme = static_cast<SafepointScheme>(scheme);
  ctx.opts.dispatch = static_cast<DispatchMode>(dispatch);
  ctx.opts.max_frames = max_frames;
  ctx.opts.max_value_stack = max_value_stack;
  ctx.opts.fuel = fuel;
  ctx.opts.buffers = buffers;
  ctx.opts.suspend_to = out;  // the resumed run may park again
  ctx.opts.profile = false;   // attribution windows are not captured
  ctx.poll = &inst->safepoint_fn();
  if (buffers != nullptr) {
    ctx.stack.swap(buffers->stack);
    ctx.frames.swap(buffers->frames);
    ctx.stack.clear();
    ctx.frames.clear();
  }
  ctx.stack.assign(stack.begin(), stack.end());
  ctx.frames.reserve(frames.size());
  for (const FrameRec& rec : frames) {
    const FuncRef& ref = inst->func(m.num_imported_funcs + rec.func);
    const Function* fn = &m.functions[rec.func];
    ExecContext::Frame fr;
    fr.inst = inst;
    fr.fn = fn;
    if (rec.prepared != 0) {
      fr.code = fn->prepared.code.data();
      fr.tables = fn->prepared.br_tables.data();
      fr.lcost = fn->prepared.linear_cost.data();
    } else {
      fr.code = fn->code.data();
      fr.tables = fn->br_tables.data();
      fr.lcost = nullptr;
    }
    fr.pc = rec.pc;
    fr.locals_base = rec.locals_base;
    fr.stack_base = rec.stack_base;
    fr.mem = mem.get();
    fr.type = ref.type;
    ctx.frames.push_back(fr);
  }
  ctx.trap = TrapKind::kSyscallPending;
  ctx.exit_code = static_cast<int32_t>(exit_code);
  ctx.executed = executed;
  ctx.pending_host_results = pending_results;
  ctx.profile_mark = executed;

  out->entry_type = &m.types[entry_type_index];
  out->buffers = buffers;
  out->pending_results = pending_results;
  out->ctx = std::move(ctxp);
  return host_blob;
}

}  // namespace wasm
