// Module validation (spec-style type checking) combined with interpreter
// preparation: resolves branch targets, records unwind heights/arities on
// branch instructions, and appends a synthetic return to each body.
#ifndef SRC_WASM_VALIDATE_H_
#define SRC_WASM_VALIDATE_H_

#include "src/common/status.h"
#include "src/wasm/module.h"

namespace wasm {

// Validates and annotates `module` in place; sets module.validated on
// success. Returns the first error found.
common::Status Validate(Module& module);

}  // namespace wasm

#endif  // SRC_WASM_VALIDATE_H_
