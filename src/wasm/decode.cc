#include "src/wasm/decode.h"

#include <cstring>
#include <string>

#include "src/wasm/opcode.h"

namespace wasm {

namespace {

class Reader {
 public:
  Reader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  bool AtEnd() const { return pos_ >= size_; }
  size_t pos() const { return pos_; }

  common::Status Fail(const std::string& msg) {
    return common::InvalidArgument("wasm decode @" + std::to_string(pos_) + ": " + msg);
  }

  common::Status Byte(uint8_t* out) {
    if (pos_ >= size_) return Fail("unexpected end");
    *out = data_[pos_++];
    return common::OkStatus();
  }

  common::Status Bytes(void* out, size_t n) {
    if (pos_ + n > size_) return Fail("unexpected end");
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
    return common::OkStatus();
  }

  common::Status U32Leb(uint32_t* out) {
    uint64_t v;
    RETURN_IF_ERROR(ULeb(&v, 5));
    *out = static_cast<uint32_t>(v);
    return common::OkStatus();
  }

  common::Status U64Leb(uint64_t* out) { return ULeb(out, 10); }

  common::Status S64Leb(int64_t* out) {
    int64_t result = 0;
    int shift = 0;
    uint8_t b;
    do {
      RETURN_IF_ERROR(Byte(&b));
      result |= static_cast<int64_t>(b & 0x7F) << shift;
      shift += 7;
    } while ((b & 0x80) != 0 && shift < 70);
    if ((b & 0x80) != 0) return Fail("sleb too long");
    if (shift < 64 && (b & 0x40) != 0) {
      result |= -(static_cast<int64_t>(1) << shift);
    }
    *out = result;
    return common::OkStatus();
  }

  common::Status S32Leb(int32_t* out) {
    int64_t v;
    RETURN_IF_ERROR(S64Leb(&v));
    *out = static_cast<int32_t>(v);
    return common::OkStatus();
  }

  common::Status Name(std::string* out) {
    uint32_t len;
    RETURN_IF_ERROR(U32Leb(&len));
    if (pos_ + len > size_) return Fail("name exceeds section");
    out->assign(reinterpret_cast<const char*>(data_ + pos_), len);
    pos_ += len;
    return common::OkStatus();
  }

  common::Status SkipTo(size_t target) {
    if (target < pos_ || target > size_) return Fail("bad section length");
    pos_ = target;
    return common::OkStatus();
  }

 private:
  common::Status ULeb(uint64_t* out, int max_bytes) {
    uint64_t result = 0;
    int shift = 0;
    for (int i = 0; i < max_bytes; ++i) {
      uint8_t b;
      RETURN_IF_ERROR(Byte(&b));
      result |= static_cast<uint64_t>(b & 0x7F) << shift;
      if ((b & 0x80) == 0) {
        *out = result;
        return common::OkStatus();
      }
      shift += 7;
    }
    return Fail("uleb too long");
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

common::Status DecodeValType(Reader& r, ValType* out) {
  uint8_t b;
  RETURN_IF_ERROR(r.Byte(&b));
  switch (b) {
    case 0x7F: *out = ValType::kI32; return common::OkStatus();
    case 0x7E: *out = ValType::kI64; return common::OkStatus();
    case 0x7D: *out = ValType::kF32; return common::OkStatus();
    case 0x7C: *out = ValType::kF64; return common::OkStatus();
    case 0x70: *out = ValType::kFuncRef; return common::OkStatus();
    default: return r.Fail("bad value type");
  }
}

common::Status DecodeLimits(Reader& r, Limits* out) {
  uint8_t flags;
  RETURN_IF_ERROR(r.Byte(&flags));
  uint32_t min;
  RETURN_IF_ERROR(r.U32Leb(&min));
  out->min = min;
  out->shared = (flags & 2) != 0;
  if ((flags & 1) != 0) {
    uint32_t max;
    RETURN_IF_ERROR(r.U32Leb(&max));
    out->max = max;
    out->has_max = true;
  }
  return common::OkStatus();
}

common::Status DecodeInitExpr(Reader& r, InitExpr* out) {
  uint8_t op;
  RETURN_IF_ERROR(r.Byte(&op));
  switch (op) {
    case 0x41: {
      int32_t v;
      RETURN_IF_ERROR(r.S32Leb(&v));
      out->kind = InitExpr::Kind::kConst;
      out->type = ValType::kI32;
      out->bits = static_cast<uint32_t>(v);
      break;
    }
    case 0x42: {
      int64_t v;
      RETURN_IF_ERROR(r.S64Leb(&v));
      out->kind = InitExpr::Kind::kConst;
      out->type = ValType::kI64;
      out->bits = static_cast<uint64_t>(v);
      break;
    }
    case 0x43: {
      uint32_t u;
      RETURN_IF_ERROR(r.Bytes(&u, 4));
      out->kind = InitExpr::Kind::kConst;
      out->type = ValType::kF32;
      out->bits = u;
      break;
    }
    case 0x44: {
      uint64_t u;
      RETURN_IF_ERROR(r.Bytes(&u, 8));
      out->kind = InitExpr::Kind::kConst;
      out->type = ValType::kF64;
      out->bits = u;
      break;
    }
    case 0x23: {
      uint32_t idx;
      RETURN_IF_ERROR(r.U32Leb(&idx));
      out->kind = InitExpr::Kind::kGlobalGet;
      out->global_index = idx;
      break;
    }
    default:
      return r.Fail("unsupported init expression opcode");
  }
  uint8_t end;
  RETURN_IF_ERROR(r.Byte(&end));
  if (end != 0x0B) return r.Fail("init expression must end with 'end'");
  return common::OkStatus();
}

common::Status DecodeBody(Reader& r, Function* fn) {
  int depth = 1;
  while (depth > 0) {
    uint8_t first;
    RETURN_IF_ERROR(r.Byte(&first));
    uint32_t raw = first;
    if (first == 0xFC || first == 0xFE) {
      uint32_t sub;
      RETURN_IF_ERROR(r.U32Leb(&sub));
      raw = (first == 0xFC ? 0x100 : 0x200) + sub;
    }
    if (!IsKnownOp(raw)) {
      return r.Fail("unknown opcode 0x" + std::to_string(raw));
    }
    Instr in;
    in.op = static_cast<Op>(raw);
    switch (OpImmKind(in.op)) {
      case ImmKind::kNone:
        break;
      case ImmKind::kBlock: {
        uint8_t bt;
        RETURN_IF_ERROR(r.Byte(&bt));
        in.imm = bt;
        break;
      }
      case ImmKind::kLabel: {
        uint32_t depth_imm;
        RETURN_IF_ERROR(r.U32Leb(&depth_imm));
        in.a = depth_imm;
        in.imm = depth_imm;
        break;
      }
      case ImmKind::kBrTable: {
        uint32_t count;
        RETURN_IF_ERROR(r.U32Leb(&count));
        BrTable table;
        for (uint32_t i = 0; i <= count; ++i) {
          uint32_t d;
          RETURN_IF_ERROR(r.U32Leb(&d));
          BrTarget t;
          t.depth = d;
          table.targets.push_back(t);
        }
        in.a = static_cast<uint32_t>(fn->br_tables.size());
        fn->br_tables.push_back(std::move(table));
        break;
      }
      case ImmKind::kFunc:
      case ImmKind::kLocal:
      case ImmKind::kGlobal: {
        uint32_t idx;
        RETURN_IF_ERROR(r.U32Leb(&idx));
        in.a = idx;
        break;
      }
      case ImmKind::kCallIndirect: {
        uint32_t type_index, table_index;
        RETURN_IF_ERROR(r.U32Leb(&type_index));
        RETURN_IF_ERROR(r.U32Leb(&table_index));
        in.a = type_index;
        in.b = table_index;
        break;
      }
      case ImmKind::kMem: {
        uint32_t align, offset;
        RETURN_IF_ERROR(r.U32Leb(&align));
        RETURN_IF_ERROR(r.U32Leb(&offset));
        in.a = offset;
        in.b = align;
        break;
      }
      case ImmKind::kMemIdx: {
        uint8_t zero;
        RETURN_IF_ERROR(r.Byte(&zero));
        break;
      }
      case ImmKind::kMemMemIdx: {
        uint8_t zero;
        RETURN_IF_ERROR(r.Byte(&zero));
        RETURN_IF_ERROR(r.Byte(&zero));
        break;
      }
      case ImmKind::kI32Const: {
        int32_t v;
        RETURN_IF_ERROR(r.S32Leb(&v));
        in.imm = static_cast<uint32_t>(v);
        break;
      }
      case ImmKind::kI64Const: {
        int64_t v;
        RETURN_IF_ERROR(r.S64Leb(&v));
        in.imm = static_cast<uint64_t>(v);
        break;
      }
      case ImmKind::kF32Const: {
        uint32_t u;
        RETURN_IF_ERROR(r.Bytes(&u, 4));
        in.imm = u;
        break;
      }
      case ImmKind::kF64Const: {
        uint64_t u;
        RETURN_IF_ERROR(r.Bytes(&u, 8));
        in.imm = u;
        break;
      }
    }
    if (in.op == Op::kBlock || in.op == Op::kLoop || in.op == Op::kIf) {
      ++depth;
    } else if (in.op == Op::kEnd) {
      --depth;
    }
    fn->code.push_back(in);
  }
  return common::OkStatus();
}

}  // namespace

common::StatusOr<std::shared_ptr<Module>> DecodeModule(const uint8_t* data, size_t size) {
  Reader r(data, size);
  uint8_t magic[8];
  RETURN_IF_ERROR(r.Bytes(magic, 8));
  static const uint8_t kMagic[8] = {0x00, 0x61, 0x73, 0x6D, 0x01, 0x00, 0x00, 0x00};
  if (std::memcmp(magic, kMagic, 8) != 0) {
    return common::InvalidArgument("bad wasm magic/version");
  }

  auto module = std::make_shared<Module>();
  std::vector<uint32_t> func_type_indices;

  while (!r.AtEnd()) {
    uint8_t section_id;
    RETURN_IF_ERROR(r.Byte(&section_id));
    uint32_t section_len;
    RETURN_IF_ERROR(r.U32Leb(&section_len));
    size_t section_end = r.pos() + section_len;

    switch (section_id) {
      case 0: {  // custom: skipped
        RETURN_IF_ERROR(r.SkipTo(section_end));
        break;
      }
      case 1: {  // types
        uint32_t count;
        RETURN_IF_ERROR(r.U32Leb(&count));
        for (uint32_t i = 0; i < count; ++i) {
          uint8_t form;
          RETURN_IF_ERROR(r.Byte(&form));
          if (form != 0x60) return r.Fail("expected func type");
          FuncType t;
          uint32_t np, nr;
          RETURN_IF_ERROR(r.U32Leb(&np));
          for (uint32_t k = 0; k < np; ++k) {
            ValType v;
            RETURN_IF_ERROR(DecodeValType(r, &v));
            t.params.push_back(v);
          }
          RETURN_IF_ERROR(r.U32Leb(&nr));
          for (uint32_t k = 0; k < nr; ++k) {
            ValType v;
            RETURN_IF_ERROR(DecodeValType(r, &v));
            t.results.push_back(v);
          }
          module->types.push_back(std::move(t));
        }
        break;
      }
      case 2: {  // imports
        uint32_t count;
        RETURN_IF_ERROR(r.U32Leb(&count));
        for (uint32_t i = 0; i < count; ++i) {
          Import imp;
          RETURN_IF_ERROR(r.Name(&imp.module));
          RETURN_IF_ERROR(r.Name(&imp.name));
          uint8_t kind;
          RETURN_IF_ERROR(r.Byte(&kind));
          imp.kind = static_cast<ExternKind>(kind);
          switch (imp.kind) {
            case ExternKind::kFunc: {
              RETURN_IF_ERROR(r.U32Leb(&imp.type_index));
              ++module->num_imported_funcs;
              break;
            }
            case ExternKind::kTable: {
              uint8_t reftype;
              RETURN_IF_ERROR(r.Byte(&reftype));
              RETURN_IF_ERROR(DecodeLimits(r, &imp.limits));
              ++module->num_imported_tables;
              break;
            }
            case ExternKind::kMemory: {
              RETURN_IF_ERROR(DecodeLimits(r, &imp.limits));
              ++module->num_imported_memories;
              break;
            }
            case ExternKind::kGlobal: {
              RETURN_IF_ERROR(DecodeValType(r, &imp.global_type.type));
              uint8_t mut;
              RETURN_IF_ERROR(r.Byte(&mut));
              imp.global_type.mut = mut != 0;
              ++module->num_imported_globals;
              break;
            }
            default:
              return r.Fail("bad import kind");
          }
          module->imports.push_back(std::move(imp));
        }
        break;
      }
      case 3: {  // function type indices
        uint32_t count;
        RETURN_IF_ERROR(r.U32Leb(&count));
        for (uint32_t i = 0; i < count; ++i) {
          uint32_t ti;
          RETURN_IF_ERROR(r.U32Leb(&ti));
          func_type_indices.push_back(ti);
        }
        break;
      }
      case 4: {  // tables
        uint32_t count;
        RETURN_IF_ERROR(r.U32Leb(&count));
        for (uint32_t i = 0; i < count; ++i) {
          uint8_t reftype;
          RETURN_IF_ERROR(r.Byte(&reftype));
          TableDecl t;
          RETURN_IF_ERROR(DecodeLimits(r, &t.limits));
          module->tables.push_back(t);
        }
        break;
      }
      case 5: {  // memories
        uint32_t count;
        RETURN_IF_ERROR(r.U32Leb(&count));
        for (uint32_t i = 0; i < count; ++i) {
          MemoryDecl m;
          RETURN_IF_ERROR(DecodeLimits(r, &m.limits));
          module->memories.push_back(m);
        }
        break;
      }
      case 6: {  // globals
        uint32_t count;
        RETURN_IF_ERROR(r.U32Leb(&count));
        for (uint32_t i = 0; i < count; ++i) {
          Global g;
          RETURN_IF_ERROR(DecodeValType(r, &g.type.type));
          uint8_t mut;
          RETURN_IF_ERROR(r.Byte(&mut));
          g.type.mut = mut != 0;
          RETURN_IF_ERROR(DecodeInitExpr(r, &g.init));
          module->globals.push_back(std::move(g));
        }
        break;
      }
      case 7: {  // exports
        uint32_t count;
        RETURN_IF_ERROR(r.U32Leb(&count));
        for (uint32_t i = 0; i < count; ++i) {
          Export e;
          RETURN_IF_ERROR(r.Name(&e.name));
          uint8_t kind;
          RETURN_IF_ERROR(r.Byte(&kind));
          e.kind = static_cast<ExternKind>(kind);
          RETURN_IF_ERROR(r.U32Leb(&e.index));
          module->exports.push_back(std::move(e));
        }
        break;
      }
      case 8: {  // start
        uint32_t idx;
        RETURN_IF_ERROR(r.U32Leb(&idx));
        module->start = idx;
        break;
      }
      case 9: {  // elems
        uint32_t count;
        RETURN_IF_ERROR(r.U32Leb(&count));
        for (uint32_t i = 0; i < count; ++i) {
          ElemSegment seg;
          RETURN_IF_ERROR(r.U32Leb(&seg.table_index));
          RETURN_IF_ERROR(DecodeInitExpr(r, &seg.offset));
          uint32_t n;
          RETURN_IF_ERROR(r.U32Leb(&n));
          for (uint32_t k = 0; k < n; ++k) {
            uint32_t fi;
            RETURN_IF_ERROR(r.U32Leb(&fi));
            seg.func_indices.push_back(fi);
          }
          module->elems.push_back(std::move(seg));
        }
        break;
      }
      case 10: {  // code
        uint32_t count;
        RETURN_IF_ERROR(r.U32Leb(&count));
        if (count != func_type_indices.size()) {
          return r.Fail("code section count mismatch");
        }
        for (uint32_t i = 0; i < count; ++i) {
          uint32_t body_size;
          RETURN_IF_ERROR(r.U32Leb(&body_size));
          size_t body_end = r.pos() + body_size;
          Function fn;
          fn.type_index = func_type_indices[i];
          uint32_t nruns;
          RETURN_IF_ERROR(r.U32Leb(&nruns));
          for (uint32_t k = 0; k < nruns; ++k) {
            uint32_t n;
            ValType t;
            RETURN_IF_ERROR(r.U32Leb(&n));
            RETURN_IF_ERROR(DecodeValType(r, &t));
            if (fn.locals.size() + n > 65536) return r.Fail("too many locals");
            for (uint32_t j = 0; j < n; ++j) fn.locals.push_back(t);
          }
          RETURN_IF_ERROR(DecodeBody(r, &fn));
          if (r.pos() != body_end) return r.Fail("function body size mismatch");
          module->functions.push_back(std::move(fn));
        }
        break;
      }
      case 11: {  // data
        uint32_t count;
        RETURN_IF_ERROR(r.U32Leb(&count));
        for (uint32_t i = 0; i < count; ++i) {
          DataSegment seg;
          RETURN_IF_ERROR(r.U32Leb(&seg.memory_index));
          RETURN_IF_ERROR(DecodeInitExpr(r, &seg.offset));
          uint32_t n;
          RETURN_IF_ERROR(r.U32Leb(&n));
          seg.bytes.resize(n);
          if (n > 0) {
            RETURN_IF_ERROR(r.Bytes(seg.bytes.data(), n));
          }
          module->datas.push_back(std::move(seg));
        }
        break;
      }
      default:
        return r.Fail("unknown section id " + std::to_string(section_id));
    }
    if (r.pos() != section_end) {
      return r.Fail("section length mismatch (id " + std::to_string(section_id) + ")");
    }
  }

  if (func_type_indices.size() != module->functions.size()) {
    return common::InvalidArgument("function section without matching code section");
  }
  return module;
}

}  // namespace wasm
