#include "src/wasm/opcode.h"

#include <unordered_map>

namespace wasm {

const char* OpName(Op op) {
  switch (op) {
#define WASM_OP_NAME(name, value, imm, text) \
  case Op::name:                             \
    return text;
    WASM_OPCODE_LIST(WASM_OP_NAME)
    WASM_INTERNAL_OPCODE_LIST(WASM_OP_NAME)
#undef WASM_OP_NAME
  }
  return "<bad-op>";
}

ImmKind OpImmKind(Op op) {
  switch (op) {
#define WASM_OP_IMM(name, value, imm, text) \
  case Op::name:                            \
    return ImmKind::imm;
    WASM_OPCODE_LIST(WASM_OP_IMM)
    WASM_INTERNAL_OPCODE_LIST(WASM_OP_IMM)
#undef WASM_OP_IMM
  }
  return ImmKind::kNone;
}

bool IsFusedOp(Op op) {
  switch (op) {
#define WASM_OP_FUSED(name, value, imm, text) case Op::name:
    WASM_INTERNAL_OPCODE_LIST(WASM_OP_FUSED)
#undef WASM_OP_FUSED
    return true;
    default:
      return false;
  }
}

std::optional<Op> OpFromText(std::string_view text) {
  static const auto* kMap = [] {
    auto* m = new std::unordered_map<std::string_view, Op>();
#define WASM_OP_TEXT(name, value, imm, text_) m->emplace(text_, Op::name);
    WASM_OPCODE_LIST(WASM_OP_TEXT)
#undef WASM_OP_TEXT
    return m;
  }();
  auto it = kMap->find(text);
  if (it == kMap->end()) {
    return std::nullopt;
  }
  return it->second;
}

bool IsKnownOp(uint32_t raw) {
  switch (raw) {
#define WASM_OP_KNOWN(name, value, imm, text) case value:
    WASM_OPCODE_LIST(WASM_OP_KNOWN)
#undef WASM_OP_KNOWN
    return true;
    default:
      return false;
  }
}

}  // namespace wasm
