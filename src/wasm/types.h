// Core WebAssembly types shared by the decoder, validator and interpreter.
#ifndef SRC_WASM_TYPES_H_
#define SRC_WASM_TYPES_H_

#include <cstdint>
#include <string>
#include <vector>

namespace wasm {

// Wire-format value type codes (negative SLEB in the spec; byte values here).
enum class ValType : uint8_t {
  kI32 = 0x7F,
  kI64 = 0x7E,
  kF32 = 0x7D,
  kF64 = 0x7C,
  kFuncRef = 0x70,
};

const char* ValTypeName(ValType t);
bool IsNumType(ValType t);

struct FuncType {
  std::vector<ValType> params;
  std::vector<ValType> results;

  bool operator==(const FuncType& o) const {
    return params == o.params && results == o.results;
  }
  std::string ToString() const;
};

struct Limits {
  uint64_t min = 0;
  uint64_t max = 0;
  bool has_max = false;
  bool shared = false;
};

// Runtime value with a type tag; the interpreter's internal stack is untyped
// 64-bit slots (types are statically validated), this is the public surface.
struct Value {
  ValType type = ValType::kI32;
  uint64_t bits = 0;

  static Value I32(uint32_t v) { return {ValType::kI32, v}; }
  static Value I64(uint64_t v) { return {ValType::kI64, v}; }
  static Value F32(float v);
  static Value F64(double v);

  uint32_t i32() const { return static_cast<uint32_t>(bits); }
  uint64_t i64() const { return bits; }
  float f32() const;
  double f64() const;
};

// Execution outcomes. kExit is a clean unwind triggered by proc-exit style
// host calls and carries an exit code in ExecContext.
enum class TrapKind : uint8_t {
  kNone = 0,
  kUnreachable,
  kMemOutOfBounds,
  kDivByZero,
  kIntOverflow,
  kInvalidConversion,
  kIndirectOob,
  kIndirectNull,
  kIndirectSigMismatch,
  kStackExhausted,
  kHostError,
  kUnalignedAtomic,
  kFuelExhausted,
  // A cumulative per-tenant resource budget (CPU time, memory pages) ran
  // dry; raised from the safepoint poll, like async signal delivery.
  kBudgetExhausted,
  // A host call parked instead of blocking: the invocation unwound with its
  // interpreter state captured in a wasm::Suspension (ExecOptions must have
  // carried a suspend_to slot), and ResumeInvoke continues it once the
  // host materializes the call's results. Not a failure — the run is live.
  kSyscallPending,
  kExit,
};

const char* TrapKindName(TrapKind t);

inline constexpr uint64_t kWasmPageSize = 65536;

}  // namespace wasm

#endif  // SRC_WASM_TYPES_H_
