// Parser for the WebAssembly text format (a practical subset: MVP constructs
// plus the atomics used by this repo; folded and plain instruction forms,
// named locals/labels/functions, data/elem segments, imports/exports).
#ifndef SRC_WASM_WAT_PARSER_H_
#define SRC_WASM_WAT_PARSER_H_

#include <memory>
#include <string_view>

#include "src/common/status.h"
#include "src/wasm/module.h"

namespace wasm {

// Parses WAT source into an (unvalidated) module.
common::StatusOr<std::shared_ptr<Module>> ParseWat(std::string_view source);

// Convenience: parse + validate.
common::StatusOr<std::shared_ptr<Module>> ParseAndValidateWat(std::string_view source);

}  // namespace wasm

#endif  // SRC_WASM_WAT_PARSER_H_
