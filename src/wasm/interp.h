// The interpreter. Executes pre-decoded, validator-annotated instruction
// streams. Signal-poll safepoints (paper §3.3) are issued according to
// ExecOptions::scheme: on backward branches (loop headers), on function
// entry, or after every instruction.
#ifndef SRC_WASM_INTERP_H_
#define SRC_WASM_INTERP_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/wasm/instance.h"
#include "src/wasm/module.h"
#include "src/wasm/types.h"

namespace wasm {

inline constexpr size_t kMaxHostArgs = 16;
inline constexpr size_t kMaxHostResults = 8;

class ExecContext {
 public:
  struct Frame {
    Instance* inst = nullptr;
    const Function* fn = nullptr;
    // Executed stream: fn->prepared.code normally, fn->code under the
    // kEveryInstr scheme (per-source-instruction polling). `tables` and
    // `lcost` match the chosen stream; lcost is null for the unfused
    // stream, which pins the frame to the switch loop.
    const Instr* code = nullptr;
    const BrTable* tables = nullptr;
    const uint32_t* lcost = nullptr;
    uint32_t pc = 0;
    uint32_t locals_base = 0;  // stack slot where params/locals begin
    // Operand stack floor for this frame. Frames are laid out as
    // `locals | gap | operands`: slot stack_base - 1 is a scratch ("gap")
    // slot that absorbs the threaded loop's dead TOS-cache spills when the
    // operand stack is empty (see interp_body.inc); operand k lives at
    // stack_base + k in both dispatch loops.
    uint32_t stack_base = 0;
    Memory* mem = nullptr;     // cached memory 0 of inst
    const FuncType* type = nullptr;
  };

  Instance* root = nullptr;
  ExecOptions opts;
  std::vector<uint64_t> stack;
  std::vector<Frame> frames;
  TrapKind trap = TrapKind::kNone;
  std::string trap_msg;
  int32_t exit_code = 0;
  uint64_t executed = 0;
  const SafepointFn* poll = nullptr;
  // Result arity of the host call that suspended (kSyscallPending): how
  // many operand-stack slots ResumeInvoke must materialize before the
  // interpreter continues past the call site.
  uint32_t pending_host_results = 0;
  // Frame-entry profiling state (ExecOptions::profile): the slot of the
  // function currently being attributed, the value of `executed` at which
  // attribution last advanced, and entry/fuel counts owed to that slot but
  // not yet flushed to its shared atomics. Fuel between marks is charged to
  // the function whose frame was most recently entered (entry-sampled —
  // returns do not switch attribution back, keeping the hook off the return
  // path). Batching matters: self-recursion re-enters the same slot, so the
  // hot path is pure context-local arithmetic; the atomics are touched only
  // when attribution moves to a different function (and at harvest).
  FuncProfileSlot* profile_slot = nullptr;
  uint64_t profile_mark = 0;
  uint64_t profile_pending_entries = 0;
  uint64_t profile_pending_fuel = 0;
  // ---- baseline-JIT tier state (WASM_JIT builds; inert otherwise) ----
  // Resolved once per RunLoop: true when this run may tier up at all. The
  // threaded loop's OSR hooks check this one bool before anything else.
  bool jit_active = false;
  // Set by the threaded loop when an OSR hook selected compiled code: the
  // loop has synced fr->pc/executed/stack and returned kNone with frames
  // still live; RunLoop's driver hands control to jit::Execute.
  bool jit_enter = false;
  // One-shot inhibit: after a deopt exit the interpreter must make progress
  // past (frame, pc) before the tier re-enters, or a persistent deopt
  // condition (unsupported op, repeating trap re-execution) would ping-pong
  // interp<->jit without advancing. Keyed by frames.size() + pc; consumed
  // (cleared) by the first matching hook.
  size_t jit_inhibit_frame = 0;
  uint32_t jit_inhibit_pc = 0;
  bool jit_inhibit = false;

  Instance* current_instance() {
    return frames.empty() ? root : frames.back().inst;
  }
  Memory* current_memory() {
    if (!frames.empty() && frames.back().mem != nullptr) {
      return frames.back().mem;
    }
    auto m = root != nullptr ? root->memory(0) : nullptr;
    return m.get();
  }

  void SetTrap(TrapKind kind, const char* msg = nullptr) {
    trap = kind;
    if (msg != nullptr) {
      trap_msg = msg;
    }
  }
  // Clean process-style exit; unwinds the interpreter with kExit.
  void RequestExit(int32_t code) {
    exit_code = code;
    trap = TrapKind::kExit;
  }
};

// Recyclable interpreter buffers (see ExecOptions::buffers): Invoke swaps
// these in on entry and back out on exit, so capacity grown by one run is
// reused by the next instead of being reallocated. One owner per concurrent
// invocation (host::InstancePool keeps one per pooled process slot).
struct ExecBuffers {
  std::vector<uint64_t> stack;
  std::vector<ExecContext::Frame> frames;
};

// A parked invocation: the full interpreter state of a run that unwound at
// a host-call boundary with TrapKind::kSyscallPending. Filled by Invoke
// when ExecOptions::suspend_to points here and a host function suspends;
// consumed by ResumeInvoke (continue) or Discard (abandon). The suspension
// pins the instance graph and any ExecBuffers the invocation borrowed, so
// it must not outlive either.
struct Suspension {
  std::unique_ptr<ExecContext> ctx;
  const FuncType* entry_type = nullptr;  // result marshaling at final exit
  ExecBuffers* buffers = nullptr;        // returned on finish/discard
  uint32_t pending_results = 0;          // slots ResumeInvoke must supply

  bool armed() const { return ctx != nullptr; }
  // Abandons the parked run: drops the interpreter state and hands any
  // borrowed buffers (with their grown capacity) back to their owner.
  void Discard();
};

// Invokes `ref` (wasm or host function) with typed arguments.
RunResult Invoke(Instance* inst, const FuncRef& ref, const std::vector<Value>& args,
                 const ExecOptions& opts);

// Continues a parked invocation: pushes the suspended host call's results
// (`results[0..nres)`, which must match Suspension::pending_results) and
// re-enters the dispatch loop at the saved frame. Returns exactly what the
// uninterrupted Invoke would have — executed_instrs, fuel accounting, traps
// and result values are bit-identical to a run whose host call completed
// synchronously — or suspends again (kSyscallPending) if another host call
// parks. The suspension is disarmed on any non-pending return.
RunResult ResumeInvoke(Suspension& susp, const uint64_t* results, size_t nres);

// Dispatch loop; returns the trap kind (kNone on normal completion).
// Resolves ExecOptions::dispatch: computed-goto threaded dispatch with
// block-granular fuel/safepoint accounting when available, the portable
// switch loop otherwise (and always for SafepointScheme::kEveryInstr).
TrapKind RunLoop(ExecContext& ctx);

}  // namespace wasm

#endif  // SRC_WASM_INTERP_H_
