#include "src/wasm/types.h"

#include <cstring>

namespace wasm {

const char* ValTypeName(ValType t) {
  switch (t) {
    case ValType::kI32: return "i32";
    case ValType::kI64: return "i64";
    case ValType::kF32: return "f32";
    case ValType::kF64: return "f64";
    case ValType::kFuncRef: return "funcref";
  }
  return "<bad>";
}

bool IsNumType(ValType t) {
  return t == ValType::kI32 || t == ValType::kI64 || t == ValType::kF32 ||
         t == ValType::kF64;
}

std::string FuncType::ToString() const {
  std::string s = "(";
  for (size_t i = 0; i < params.size(); ++i) {
    if (i != 0) s += ' ';
    s += ValTypeName(params[i]);
  }
  s += ") -> (";
  for (size_t i = 0; i < results.size(); ++i) {
    if (i != 0) s += ' ';
    s += ValTypeName(results[i]);
  }
  s += ')';
  return s;
}

Value Value::F32(float v) {
  Value out;
  out.type = ValType::kF32;
  uint32_t u;
  std::memcpy(&u, &v, sizeof(u));
  out.bits = u;
  return out;
}

Value Value::F64(double v) {
  Value out;
  out.type = ValType::kF64;
  std::memcpy(&out.bits, &v, sizeof(v));
  return out;
}

float Value::f32() const {
  uint32_t u = static_cast<uint32_t>(bits);
  float v;
  std::memcpy(&v, &u, sizeof(v));
  return v;
}

double Value::f64() const {
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

const char* TrapKindName(TrapKind t) {
  switch (t) {
    case TrapKind::kNone: return "none";
    case TrapKind::kUnreachable: return "unreachable";
    case TrapKind::kMemOutOfBounds: return "out of bounds memory access";
    case TrapKind::kDivByZero: return "integer divide by zero";
    case TrapKind::kIntOverflow: return "integer overflow";
    case TrapKind::kInvalidConversion: return "invalid conversion to integer";
    case TrapKind::kIndirectOob: return "undefined element";
    case TrapKind::kIndirectNull: return "uninitialized element";
    case TrapKind::kIndirectSigMismatch: return "indirect call type mismatch";
    case TrapKind::kStackExhausted: return "call stack exhausted";
    case TrapKind::kHostError: return "host error";
    case TrapKind::kUnalignedAtomic: return "unaligned atomic access";
    case TrapKind::kFuelExhausted: return "fuel exhausted";
    case TrapKind::kBudgetExhausted: return "tenant budget exhausted";
    case TrapKind::kSyscallPending: return "syscall pending";
    case TrapKind::kExit: return "exit";
  }
  return "<bad>";
}

}  // namespace wasm
