// Baseline template-JIT tier: per-op x86-64 stencils over the prepared
// stream. See jit.h for the execution model. The file splits into:
//
//   1. JitState — the fixed-layout struct compiled code addresses by raw
//      offset (static_asserted below), plus the enter trampoline and the
//      out-of-line safepoint helper.
//   2. Asm — a minimal x86-64 emitter (labels, rel32 fixups, the handful of
//      encodings the stencils need).
//   3. ComputeDepths — static operand-depth map over the prepared stream;
//      the plain-form contract means depth[pc] fully describes the stack,
//      so any pc with a known depth is a valid OSR seam.
//   4. EmitFunction — stitches gate thunks and per-op stencils; anything
//      without a stencil becomes a deopt exit (the interpreter re-executes
//      the instruction from unconsumed state).
//   5. RequestEnter / Execute — tier-up policy and the dispatcher that runs
//      compiled frames, handles calls/returns natively where possible, and
//      reconciles every exit back into interpreter state.
//
// Register plan (SysV, all callee-saved so the poll helper call needs no
// spills):  rbx = fb (stack.data() + locals_base)   r12 = executed
//           r13 = effective fuel (UINT64_MAX = off) r14 = memory base
//           r15 = cached memory size                rbp = JitState*
// Scratch: rax rcx rdx rsi rdi r8-r11. Operand slot d lives at
// [rbx + 8*(gap + d)], local i at [rbx + 8*i], where gap = params +
// locals + 1 (the frame's TOS-spill gap slot, see interp.h).
//
// i32 invariant: stencils LOAD i32 operands through 32-bit registers (the
// interpreter's (uint32_t) casts) and STORE full zero-extended 64-bit
// values (its push32), so slots stay canonical even when a host call wrote
// a non-canonical upper half.
#include "src/wasm/jit.h"

#include <cstring>

#include "src/wasm/prepare.h"

#if WASM_JIT_OK
#include <sys/mman.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <deque>
#include <map>
#include <mutex>
#include <vector>
#endif

namespace wasm {

const char* JitTierName(JitTier t) {
  switch (t) {
    case JitTier::kAuto:
      return "auto";
    case JitTier::kOff:
      return "off";
    case JitTier::kOn:
      return "on";
  }
  return "?";
}

bool JitAvailable() {
#if WASM_JIT_OK
  return ThreadedDispatchAvailable();
#else
  return false;
#endif
}

namespace jit {

#if WASM_JIT_OK

namespace {

// Exit protocol: native code ends with `mov esi, pc; mov ecx, code;
// jmp sync_exit`, and sync_exit stores pc/code/executed into JitState.
constexpr uint32_t kExitReturn = 0;    // function return at exit_pc
constexpr uint32_t kExitCall = 1;      // call op at exit_pc, args on stack
constexpr uint32_t kExitDeopt = 3;     // re-execute exit_pc in the interp
constexpr uint32_t kExitFuelGate = 4;  // gate at exit_pc could not charge
constexpr uint32_t kExitPollTrap = 5;  // safepoint poll raised a trap

// Deopt exits from one function before its enter-sites stop selecting the
// compiled code (a loop that deopts every iteration is slower than the
// interpreter: each round trip pays the trampoline + reconciliation).
constexpr uint32_t kDeoptBlacklist = 1024;

// Cached-size target for frames with no memory: compiled loads always
// bounds-check against r15, so pointing msize_addr here makes every access
// deopt (and the interpreter raise the oracle trap).
const std::atomic<uint64_t> kZeroMemSize{0};

struct JitState;
}  // namespace

// The safepoint helper and trampoline are extern "C" with fixed names so
// the top-level asm block and the emitted `call [rbp+80]` agree on them.
extern "C" uint64_t wasm_jit_poll_impl(jit::JitState* st);
extern "C" void wasm_jit_enter_impl(jit::JitState* st, const uint8_t* entry,
                                    uint64_t* fb);

namespace {

// Fixed-offset state block; every offset below is baked into stencils.
struct JitState {
  uint64_t* fb;                             // 0: locals base slot
  uint64_t executed;                        // 8
  uint64_t fuel;                            // 16: UINT64_MAX = unlimited
  uint8_t* mbase;                           // 24: memory 0 base (never moves)
  uint64_t msize;                           // 32: size snapshot (r15 seed)
  const std::atomic<uint64_t>* msize_addr;  // 40: live size (loop refresh)
  GlobalInst* globals;                      // 48: absolute-index global base
  uint64_t exit_code;                       // 56
  uint64_t exit_pc;                         // 64
  uint64_t poll_flag;                       // 72: nonzero = poll at loops
  uint64_t (*poll_helper)(JitState*);       // 80
  ExecContext* ctx;                         // 88
  ExecContext::Frame* fr;                   // 96
};

static_assert(offsetof(JitState, fb) == 0, "stencil offset");
static_assert(offsetof(JitState, executed) == 8, "stencil offset");
static_assert(offsetof(JitState, fuel) == 16, "stencil offset");
static_assert(offsetof(JitState, mbase) == 24, "stencil offset");
static_assert(offsetof(JitState, msize) == 32, "stencil offset");
static_assert(offsetof(JitState, msize_addr) == 40, "stencil offset");
static_assert(offsetof(JitState, globals) == 48, "stencil offset");
static_assert(offsetof(JitState, exit_code) == 56, "stencil offset");
static_assert(offsetof(JitState, exit_pc) == 64, "stencil offset");
static_assert(offsetof(JitState, poll_flag) == 72, "stencil offset");
static_assert(offsetof(JitState, poll_helper) == 80, "stencil offset");
static_assert(offsetof(JitState, ctx) == 88, "stencil offset");
static_assert(offsetof(JitState, fr) == 96, "stencil offset");
// The global-access stencil computes &global(i).bits as base + 16*i + 8.
static_assert(sizeof(GlobalInst) == 16, "global stencil stride");
static_assert(offsetof(GlobalInst, bits) == 8, "global stencil offset");

}  // namespace

// Trampoline: saves the callee-saved set, binds the register plan from
// JitState, and calls into the stencil code. Entry rsp % 16 == 8; six
// pushes keep it == 8, so the call lands native code at % 16 == 0 and the
// emitted `call [rbp+80]` presents the helper a conformant % 16 == 8.
asm(R"(
.text
.globl wasm_jit_enter_impl
.hidden wasm_jit_enter_impl
.type wasm_jit_enter_impl, @function
wasm_jit_enter_impl:
  push %rbp
  push %rbx
  push %r12
  push %r13
  push %r14
  push %r15
  mov %rdi, %rbp
  mov %rdx, %rbx
  mov 8(%rbp), %r12
  mov 16(%rbp), %r13
  mov 24(%rbp), %r14
  mov 32(%rbp), %r15
  call *%rsi
  pop %r15
  pop %r14
  pop %r13
  pop %r12
  pop %rbx
  pop %rbp
  ret
.size wasm_jit_enter_impl, .-wasm_jit_enter_impl
)");

// Loop-header safepoint, mirroring the threaded loop's CASE(kLoop): pc and
// executed are synced exactly (exit_pc holds the post-increment pc, the
// same value SYNC_STATE publishes there), do_poll's trap latching is
// replicated, and on a trap the operand stack is left at its scratch
// inflation — bit-identical to the interpreter's poll-trap return.
extern "C" uint64_t wasm_jit_poll_impl(jit::JitState* st) {
  ExecContext& ctx = *st->ctx;
  st->fr->pc = static_cast<uint32_t>(st->exit_pc);
  ctx.executed = st->executed;
  TrapKind t = (*ctx.poll)(ctx);
  if (t != TrapKind::kNone && ctx.trap == TrapKind::kNone) {
    ctx.trap = t;
  }
  return ctx.trap != TrapKind::kNone ? 1 : 0;
}

namespace {

// A compiled function: executable bytes plus the per-pc metadata the
// dispatcher needs to reconcile exits (entry points and static operand
// depths). Owned by ModuleStateImpl; published to JitFuncSlot::code.
struct CompiledFn {
  std::vector<uint8_t> buf;   // emission buffer; cleared after mapping
  const uint8_t* code = nullptr;
  size_t map_size = 0;
  std::vector<int32_t> entry;  // pc -> code offset of its gate, or -1
  std::vector<int32_t> depth;  // pc -> operand depth before the op, or -1
};

struct ModuleStateImpl : JitModuleState {
  std::mutex mu;
  std::vector<std::unique_ptr<CompiledFn>> fns;

  ~ModuleStateImpl() override {
    for (auto& f : fns) {
      if (f->code != nullptr) {
        munmap(const_cast<uint8_t*>(f->code), f->map_size);
      }
    }
  }

  // Maps the emitted bytes RW -> copies -> flips to RX (W^X throughout),
  // then publishes the descriptor with a release store.
  bool Install(std::unique_ptr<CompiledFn> cf, JitFuncSlot& slot) {
    size_t sz = cf->buf.size();
    if (sz == 0) return false;
    void* mem = mmap(nullptr, sz, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    if (mem == MAP_FAILED) return false;
    std::memcpy(mem, cf->buf.data(), sz);
    if (mprotect(mem, sz, PROT_READ | PROT_EXEC) != 0) {
      munmap(mem, sz);
      return false;
    }
    cf->code = static_cast<const uint8_t*>(mem);
    cf->map_size = sz;
    cf->buf.clear();
    cf->buf.shrink_to_fit();
    const CompiledFn* ptr = cf.get();
    {
      std::lock_guard<std::mutex> lock(mu);
      fns.push_back(std::move(cf));
    }
    slot.code.store(ptr, std::memory_order_release);
    return true;
  }
};

// ---------------------------------------------------------------------------
// Minimal x86-64 emitter. Registers are their hardware numbers; memory
// operands always use mod=01/10 (disp8/disp32) so the RBP/R13 "no base"
// quirk never applies, with a SIB byte injected for RSP/R12 bases.

enum Reg {
  RAX = 0, RCX = 1, RDX = 2, RBX = 3, RSP = 4, RBP = 5, RSI = 6, RDI = 7,
  R8 = 8, R9 = 9, R10 = 10, R11 = 11, R12 = 12, R13 = 13, R14 = 14, R15 = 15,
};

// Condition codes (Jcc 0F 8x, SETcc 0F 9x, CMOVcc 0F 4x). cc ^ 1 inverts.
enum Cc {
  kCcB = 2, kCcAE = 3, kCcE = 4, kCcNE = 5, kCcBE = 6, kCcA = 7,
  kCcL = 0xC, kCcGE = 0xD, kCcLE = 0xE, kCcG = 0xF,
};

class Asm {
 public:
  struct Label {
    int32_t pos = -1;
    std::vector<uint32_t> fixups;  // rel32 holes awaiting Bind
    bool referenced() const { return pos >= 0 || !fixups.empty(); }
  };

  std::vector<uint8_t> buf;

  size_t size() const { return buf.size(); }
  void B(uint8_t b) { buf.push_back(b); }
  void W32(uint32_t v) {
    for (int i = 0; i < 4; ++i) B(static_cast<uint8_t>(v >> (8 * i)));
  }
  void W64(uint64_t v) {
    for (int i = 0; i < 8; ++i) B(static_cast<uint8_t>(v >> (8 * i)));
  }

  void Bind(Label& l) {
    l.pos = static_cast<int32_t>(buf.size());
    for (uint32_t at : l.fixups) {
      int32_t rel = l.pos - static_cast<int32_t>(at + 4);
      std::memcpy(&buf[at], &rel, 4);
    }
    l.fixups.clear();
  }
  void Rel32To(Label& l) {
    if (l.pos >= 0) {
      W32(static_cast<uint32_t>(l.pos - static_cast<int32_t>(buf.size() + 4)));
    } else {
      l.fixups.push_back(static_cast<uint32_t>(buf.size()));
      W32(0);
    }
  }

  // REX prefix; w=1 selects 64-bit operands. Emitted only when needed.
  void Rex(int w, int reg, int index, int base) {
    uint8_t r = static_cast<uint8_t>(0x40 | (w << 3) | ((reg >> 3) << 2) |
                                     ((index >> 3) << 1) | (base >> 3));
    if (r != 0x40) B(r);
  }
  void ModReg(int reg, int rm) {
    B(static_cast<uint8_t>(0xC0 | ((reg & 7) << 3) | (rm & 7)));
  }
  void ModMem(int reg, int base, int32_t disp) {
    bool sib = (base & 7) == RSP;  // RSP/R12 need a SIB byte
    uint8_t mod = (disp >= -128 && disp <= 127) ? 1 : 2;
    B(static_cast<uint8_t>((mod << 6) | ((reg & 7) << 3) | (sib ? 4 : base & 7)));
    if (sib) B(static_cast<uint8_t>(0x20 | (base & 7)));
    if (mod == 1) {
      B(static_cast<uint8_t>(disp));
    } else {
      W32(static_cast<uint32_t>(disp));
    }
  }
  void ModSib(int reg, int base, int index, int scale_log, int32_t disp) {
    uint8_t mod = (disp >= -128 && disp <= 127) ? 1 : 2;
    B(static_cast<uint8_t>((mod << 6) | ((reg & 7) << 3) | 4));
    B(static_cast<uint8_t>((scale_log << 6) | ((index & 7) << 3) | (base & 7)));
    if (mod == 1) {
      B(static_cast<uint8_t>(disp));
    } else {
      W32(static_cast<uint32_t>(disp));
    }
  }

  // mov reg, [base+disp] / mov [base+disp], reg
  void MovRM(int w, int reg, int base, int32_t disp) {
    Rex(w, reg, 0, base);
    B(0x8B);
    ModMem(reg, base, disp);
  }
  void MovMR(int w, int base, int32_t disp, int reg) {
    Rex(w, reg, 0, base);
    B(0x89);
    ModMem(reg, base, disp);
  }
  // mov reg, [base+index] / mov [base+index], reg (scale 1, disp 0)
  void MovRX(int w, int reg, int base, int index) {
    Rex(w, reg, index, base);
    B(0x8B);
    ModSib(reg, base, index, 0, 0);
  }
  void MovXR(int w, int base, int index, int reg) {
    Rex(w, reg, index, base);
    B(0x89);
    ModSib(reg, base, index, 0, 0);
  }
  void MovXR8(int base, int index, int reg) {  // byte store (al/cl/dl)
    Rex(0, reg, index, base);
    B(0x88);
    ModSib(reg, base, index, 0, 0);
  }
  void MovXR16(int base, int index, int reg) {  // word store
    B(0x66);
    Rex(0, reg, index, base);
    B(0x89);
    ModSib(reg, base, index, 0, 0);
  }
  // Widening loads from [base+index]; w picks the destination width for the
  // sign-extending forms (zero-extending ones write 32 bits, clearing 63:32).
  void MovzxB(int reg, int base, int index) {
    Rex(0, reg, index, base);
    B(0x0F);
    B(0xB6);
    ModSib(reg, base, index, 0, 0);
  }
  void MovzxW(int reg, int base, int index) {
    Rex(0, reg, index, base);
    B(0x0F);
    B(0xB7);
    ModSib(reg, base, index, 0, 0);
  }
  void MovsxB(int w, int reg, int base, int index) {
    Rex(w, reg, index, base);
    B(0x0F);
    B(0xBE);
    ModSib(reg, base, index, 0, 0);
  }
  void MovsxW(int w, int reg, int base, int index) {
    Rex(w, reg, index, base);
    B(0x0F);
    B(0xBF);
    ModSib(reg, base, index, 0, 0);
  }
  void MovsxdX(int reg, int base, int index) {  // movsxd r64, dword
    Rex(1, reg, index, base);
    B(0x63);
    ModSib(reg, base, index, 0, 0);
  }
  void MovsxdM(int reg, int base, int index, int scale_log) {
    Rex(1, reg, index, base);
    B(0x63);
    ModSib(reg, base, index, scale_log, 0);
  }

  void MovRR(int w, int dst, int src) {
    Rex(w, dst, 0, src);
    B(0x8B);
    ModReg(dst, src);
  }
  void MovImm32(int reg, uint32_t v) {  // zero-extends into the full reg
    Rex(0, 0, 0, reg);
    B(static_cast<uint8_t>(0xB8 + (reg & 7)));
    W32(v);
  }
  // Exact 64-bit immediate via the shortest encoding that reproduces it.
  void MovImm(int reg, uint64_t v) {
    if (v <= 0xFFFFFFFFull) {
      MovImm32(reg, static_cast<uint32_t>(v));
    } else if (static_cast<int64_t>(v) >= INT32_MIN &&
               static_cast<int64_t>(v) <= INT32_MAX) {
      Rex(1, 0, 0, reg);
      B(0xC7);
      ModReg(0, reg);
      W32(static_cast<uint32_t>(v));
    } else {
      Rex(1, 0, 0, reg);
      B(static_cast<uint8_t>(0xB8 + (reg & 7)));
      W64(v);
    }
  }
  // mov qword [base+disp], imm32 (sign-extended)
  void MovMemImm(int base, int32_t disp, int32_t imm) {
    Rex(1, 0, 0, base);
    B(0xC7);
    ModMem(0, base, disp);
    W32(static_cast<uint32_t>(imm));
  }

  // ALU reg, reg / reg, mem. opc: add 03, or 0B, and 23, sub 2B, xor 33,
  // cmp 3B (the "reg <- reg op r/m" direction).
  void AluRR(int w, uint8_t opc, int dst, int src) {
    Rex(w, dst, 0, src);
    B(opc);
    ModReg(dst, src);
  }
  void AluRM(int w, uint8_t opc, int reg, int base, int32_t disp) {
    Rex(w, reg, 0, base);
    B(opc);
    ModMem(reg, base, disp);
  }
  // ALU reg, imm. digit: add 0, or 1, and 4, sub 5, xor 6, cmp 7.
  void AluImm(int w, int digit, int reg, int32_t imm) {
    Rex(w, 0, 0, reg);
    if (imm >= -128 && imm <= 127) {
      B(0x83);
      ModReg(digit, reg);
      B(static_cast<uint8_t>(imm));
    } else {
      B(0x81);
      ModReg(digit, reg);
      W32(static_cast<uint32_t>(imm));
    }
  }
  void CmpMemImm8(int base, int32_t disp, int8_t imm) {  // cmp qword [..], imm8
    Rex(1, 0, 0, base);
    B(0x83);
    ModMem(7, base, disp);
    B(static_cast<uint8_t>(imm));
  }
  void TestRR(int w, int a, int b) {  // test a, b
    Rex(w, b, 0, a);
    B(0x85);
    ModReg(b, a);
  }
  void Imul(int w, int dst, int src) {
    Rex(w, dst, 0, src);
    B(0x0F);
    B(0xAF);
    ModReg(dst, src);
  }
  void ImulImm(int w, int dst, int src, int32_t imm) {
    Rex(w, dst, 0, src);
    B(0x69);
    ModReg(dst, src);
    W32(static_cast<uint32_t>(imm));
  }
  // Shifts/rotates by cl or imm. digit: rol 0, ror 1, shl 4, shr 5, sar 7.
  void ShiftCl(int w, int digit, int reg) {
    Rex(w, 0, 0, reg);
    B(0xD3);
    ModReg(digit, reg);
  }
  void ShiftImm(int w, int digit, int reg, uint8_t imm) {
    Rex(w, 0, 0, reg);
    B(0xC1);
    ModReg(digit, reg);
    B(imm);
  }
  void Setcc(int cc, int reg) {  // low byte; use with RAX..RDX only
    B(0x0F);
    B(static_cast<uint8_t>(0x90 | cc));
    ModReg(0, reg);
  }
  void MovzxBR(int dst, int src) {  // movzx dst32, src8
    Rex(0, dst, 0, src);
    B(0x0F);
    B(0xB6);
    ModReg(dst, src);
  }
  void Cmovcc(int w, int cc, int dst, int src) {
    Rex(w, dst, 0, src);
    B(0x0F);
    B(static_cast<uint8_t>(0x40 | cc));
    ModReg(dst, src);
  }
  void CmovccM(int w, int cc, int dst, int base, int32_t disp) {
    Rex(w, dst, 0, base);
    B(0x0F);
    B(static_cast<uint8_t>(0x40 | cc));
    ModMem(dst, base, disp);
  }
  void Bsr(int w, int dst, int src) {
    Rex(w, dst, 0, src);
    B(0x0F);
    B(0xBD);
    ModReg(dst, src);
  }
  void Bsf(int w, int dst, int src) {
    Rex(w, dst, 0, src);
    B(0x0F);
    B(0xBC);
    ModReg(dst, src);
  }
  void MovsxBR(int w, int dst, int src) {  // movsx dst, src8
    Rex(w, dst, 0, src);
    B(0x0F);
    B(0xBE);
    ModReg(dst, src);
  }
  void MovsxWR(int w, int dst, int src) {  // movsx dst, src16
    Rex(w, dst, 0, src);
    B(0x0F);
    B(0xBF);
    ModReg(dst, src);
  }
  void MovsxdR(int dst, int src) {  // movsxd dst64, src32
    Rex(1, dst, 0, src);
    B(0x63);
    ModReg(dst, src);
  }
  void MovsxdRM(int dst, int base, int32_t disp) {  // movsxd dst64, dword [..]
    Rex(1, dst, 0, base);
    B(0x63);
    ModMem(dst, base, disp);
  }
  void Cdq() { B(0x99); }
  void Cqo() {
    B(0x48);
    B(0x99);
  }
  void Idiv(int w, int reg) {
    Rex(w, 0, 0, reg);
    B(0xF7);
    ModReg(7, reg);
  }
  void Div(int w, int reg) {
    Rex(w, 0, 0, reg);
    B(0xF7);
    ModReg(6, reg);
  }
  void XorSelf32(int reg) { AluRR(0, 0x33, reg, reg); }
  void Lea(int dst, int base, int32_t disp) {  // 64-bit lea
    Rex(1, dst, 0, base);
    B(0x8D);
    ModMem(dst, base, disp);
  }
  void LeaRip(int dst, Label& l) {
    Rex(1, dst, 0, 0);
    B(0x8D);
    B(static_cast<uint8_t>(((dst & 7) << 3) | 5));
    Rel32To(l);
  }
  void Jmp(Label& l) {
    B(0xE9);
    Rel32To(l);
  }
  void Jcc(int cc, Label& l) {
    B(0x0F);
    B(static_cast<uint8_t>(0x80 | cc));
    Rel32To(l);
  }
  void JmpReg(int reg) {
    Rex(0, 0, 0, reg);
    B(0xFF);
    ModReg(4, reg);
  }
  void CallMem(int base, int32_t disp) {
    Rex(0, 0, 0, base);
    B(0xFF);
    ModMem(2, base, disp);
  }
  void Ret() { B(0xC3); }
};

// ---------------------------------------------------------------------------
// Static analysis over the prepared stream.

// x86 condition code computing `lhs cmpOp rhs` after `cmp lhs, rhs`, for
// both i32 and i64 comparison ops; -1 if `op` is not a comparison.
int CcForCmp(Op op) {
  switch (op) {
    case Op::kI32Eq:
    case Op::kI64Eq:
      return kCcE;
    case Op::kI32Ne:
    case Op::kI64Ne:
      return kCcNE;
    case Op::kI32LtS:
    case Op::kI64LtS:
      return kCcL;
    case Op::kI32LtU:
    case Op::kI64LtU:
      return kCcB;
    case Op::kI32GtS:
    case Op::kI64GtS:
      return kCcG;
    case Op::kI32GtU:
    case Op::kI64GtU:
      return kCcA;
    case Op::kI32LeS:
    case Op::kI64LeS:
      return kCcLE;
    case Op::kI32LeU:
    case Op::kI64LeU:
      return kCcBE;
    case Op::kI32GeS:
    case Op::kI64GeS:
      return kCcGE;
    case Op::kI32GeU:
    case Op::kI64GeU:
      return kCcAE;
    default:
      return -1;
  }
}

// Net operand-stack effect of every non-control op (controls are handled
// structurally in ComputeDepths). False = unknown op, refuse to compile.
// Must stay in lockstep with the interpreter's op set: an op with a wrong
// delta here would desync the plain-form depth map.
bool StackDelta(Op op, int32_t* delta) {
  uint32_t v = static_cast<uint32_t>(op);
  // Binary ops (pop 2 push 1): comparisons and two-operand arithmetic.
  if ((v >= 0x46 && v <= 0x4F) || (v >= 0x51 && v <= 0x5A) ||
      (v >= 0x5B && v <= 0x66) || (v >= 0x6A && v <= 0x78) ||
      (v >= 0x7C && v <= 0x8A) || (v >= 0x92 && v <= 0x98) ||
      (v >= 0xA0 && v <= 0xA6)) {
    *delta = -1;
    return true;
  }
  // Unary ops (pop 1 push 1): eqz, clz/ctz/popcnt, FP unary, every
  // conversion/extension/reinterpretation, saturating truncations.
  if (v == 0x45 || v == 0x50 || (v >= 0x67 && v <= 0x69) ||
      (v >= 0x79 && v <= 0x7B) || (v >= 0x8B && v <= 0x91) ||
      (v >= 0x99 && v <= 0x9F) || (v >= 0xA7 && v <= 0xC4) ||
      (v >= 0x100 && v <= 0x107)) {
    *delta = 0;
    return true;
  }
  if (v >= 0x28 && v <= 0x35) {  // plain loads: pop addr push value
    *delta = 0;
    return true;
  }
  if (v >= 0x36 && v <= 0x3E) {  // plain stores: pop addr+value
    *delta = -2;
    return true;
  }
  switch (op) {
    case Op::kDrop:
    case Op::kLocalSet:
    case Op::kGlobalSet:
    case Op::kAtomicNotify:
      *delta = -1;
      return true;
    case Op::kSelect:
    case Op::kAtomicWait32:
    case Op::kAtomicWait64:
    case Op::kI32AtomicStore:
    case Op::kI64AtomicStore:
    case Op::kI32AtomicRmwCmpxchg:
    case Op::kI64AtomicRmwCmpxchg:
      *delta = -2;
      return true;
    case Op::kLocalGet:
    case Op::kGlobalGet:
    case Op::kMemorySize:
    case Op::kI32Const:
    case Op::kI64Const:
    case Op::kF32Const:
    case Op::kF64Const:
      *delta = 1;
      return true;
    case Op::kLocalTee:
    case Op::kMemoryGrow:
    case Op::kAtomicFence:
    case Op::kI32AtomicLoad:
    case Op::kI64AtomicLoad:
      *delta = 0;
      return true;
    case Op::kMemoryCopy:
    case Op::kMemoryFill:
      *delta = -3;
      return true;
    case Op::kI32AtomicRmwAdd:
    case Op::kI64AtomicRmwAdd:
    case Op::kI32AtomicRmwSub:
    case Op::kI64AtomicRmwSub:
    case Op::kI32AtomicRmwAnd:
    case Op::kI64AtomicRmwAnd:
    case Op::kI32AtomicRmwOr:
    case Op::kI64AtomicRmwOr:
    case Op::kI32AtomicRmwXor:
    case Op::kI64AtomicRmwXor:
    case Op::kI32AtomicRmwXchg:
    case Op::kI64AtomicRmwXchg:
      *delta = -1;
      return true;
    // Superinstructions (branching ones are structural, handled in
    // ComputeDepths; these are the straight-line ones).
    case Op::kFLocalLocalI32Add:
    case Op::kFLocalI32Load:
    case Op::kFLocalI64Load:
    case Op::kFLocalLocalCmp:
    case Op::kFLocalConstI32Op:
      *delta = 1;
      return true;
    case Op::kFI32AddConst:
    case Op::kFLocalCopy:
    case Op::kFI32ConstOp:
    case Op::kFI64ConstOp:
    case Op::kFLocalConstI32OpSet:
      *delta = 0;
      return true;
    case Op::kFI32LoadOp:
      *delta = -1;
      return true;
    case Op::kFI32CmpSel:
    case Op::kFI64CmpSel:
      *delta = -3;
      return true;
    default:
      return false;
  }
}

// Worklist pass computing the operand depth before each reachable pc
// (depth[pc] == -1 for unreachable) and marking branch targets as heads.
// A merge-point depth mismatch (impossible on validated streams, but this
// is defensive against future fusion changes) refuses compilation.
bool ComputeDepths(const Module& m, const Function& fn,
                   std::vector<int32_t>& depth, std::vector<uint8_t>& head) {
  const std::vector<Instr>& code = fn.prepared.code;
  const size_t n = code.size();
  if (n == 0) return false;
  depth.assign(n, -1);
  head.assign(n, 0);
  std::vector<uint32_t> work;
  bool ok = true;
  auto flow = [&](uint64_t pc, int64_t d, bool branch_target) {
    if (pc >= n || d < 0) {
      ok = false;
      return;
    }
    if (branch_target) head[pc] = 1;
    if (depth[pc] == -1) {
      depth[pc] = static_cast<int32_t>(d);
      work.push_back(static_cast<uint32_t>(pc));
    } else if (depth[pc] != d) {
      ok = false;
    }
  };
  flow(0, 0, true);
  while (ok && !work.empty()) {
    uint32_t pc = work.back();
    work.pop_back();
    const Instr& in = code[pc];
    int64_t d = depth[pc];
    switch (in.op) {
      case Op::kBr:
        flow(in.a, static_cast<int64_t>(in.b) + in.arity, true);
        break;
      case Op::kBrIf:
      case Op::kFBrIfEqz:
      case Op::kFLocalTeeBrIf:
        flow(in.a, static_cast<int64_t>(in.b) + in.arity, true);
        flow(pc + 1, d - 1, false);
        break;
      case Op::kFI32CmpBrIf:
      case Op::kFI64CmpBrIf:
        flow(in.a, static_cast<int64_t>(in.b) + in.arity, true);
        flow(pc + 1, d - 2, false);
        break;
      case Op::kFLocalLocalCmpBrIf:
        flow(in.a, static_cast<int64_t>(in.b) + in.arity, true);
        flow(pc + 1, d, false);
        break;
      case Op::kBrTable: {
        if (in.a >= fn.prepared.br_tables.size()) {
          ok = false;
          break;
        }
        const BrTable& t = fn.prepared.br_tables[in.a];
        for (const BrTarget& tg : t.targets) {
          flow(tg.pc, static_cast<int64_t>(tg.height) + tg.arity, true);
        }
        break;
      }
      case Op::kIf:
        flow(in.a, d - 1, true);
        flow(pc + 1, d - 1, false);
        break;
      case Op::kElse:
        flow(in.a, d, true);
        break;
      case Op::kReturn:
      case Op::kUnreachable:
        break;
      case Op::kCall:
      case Op::kFCallWasm: {
        if (in.a >= m.NumFuncs()) {
          ok = false;
          break;
        }
        const FuncType& t = m.types[m.FuncTypeIndex(in.a)];
        flow(pc + 1,
             d - static_cast<int64_t>(t.params.size()) +
                 static_cast<int64_t>(t.results.size()),
             false);
        break;
      }
      case Op::kCallIndirect: {
        if (in.a >= m.types.size()) {
          ok = false;
          break;
        }
        const FuncType& t = m.types[in.a];
        flow(pc + 1,
             d - 1 - static_cast<int64_t>(t.params.size()) +
                 static_cast<int64_t>(t.results.size()),
             false);
        break;
      }
      case Op::kLoop:
      case Op::kBlock:
      case Op::kEnd:
      case Op::kNop:
        flow(pc + 1, d, false);
        break;
      default: {
        int32_t delta = 0;
        if (!StackDelta(in.op, &delta)) {
          ok = false;
          break;
        }
        flow(pc + 1, d + delta, false);
        break;
      }
    }
  }
  if (!ok) return false;
  // Post-terminator pcs are heads too: control re-enters them through a
  // gate in the interpreter (frame_entry after calls, GOTO_GATE fall-
  // throughs), so compiled code must place an inline gate there as well.
  for (size_t pc = 0; pc < n; ++pc) {
    if (depth[pc] < 0) continue;
    if (pc == 0 || depth[pc - 1] < 0 || IsSegmentTerminator(code[pc - 1].op)) {
      head[pc] = 1;
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// EmitFunction: stitches gate thunks and per-op stencils over the prepared
// stream. Refusal is all-or-nothing and permanent (slot -> kFailed): any op
// shape this file does not understand structurally (unknown stack effect,
// oversized frame) keeps the whole function on the interpreter. Ops that
// are merely slow (FP, truncations, atomics, bulk memory) compile to deopt
// exits instead, so one cold instruction does not forfeit a hot loop.

class Compiler {
 public:
  Compiler(const Module& m, const Function& fn) : m_(m), fn_(fn) {}

  std::unique_ptr<CompiledFn> Run() {
    const std::vector<Instr>& code = fn_.prepared.code;
    n_ = static_cast<uint32_t>(code.size());
    if (n_ == 0 || fn_.prepared.linear_cost.size() != code.size()) {
      return nullptr;
    }
    const size_t params = m_.types[fn_.type_index].params.size();
    gap_ = static_cast<int64_t>(params) +
           static_cast<int64_t>(fn_.locals.size()) + 1;
    // Every slot displacement (locals, operands, one past the peak for the
    // widest store) must fit disp32 addressing off rbx.
    if ((gap_ + fn_.max_operand_stack + 8) * 8 > INT32_MAX) {
      return nullptr;
    }
    if (!ComputeDepths(m_, fn_, depth_, head_)) {
      return nullptr;
    }
    entry_.assign(n_, Asm::Label());
    body_.assign(n_, Asm::Label());
    a_.Bind(fn_start_);
    for (uint32_t pc = 0; pc < n_ && ok_; ++pc) {
      if (depth_[pc] < 0) continue;  // unreachable
      if (head_[pc]) {
        bool fall_in = !(pc == 0 || depth_[pc - 1] < 0 ||
                         IsSegmentTerminator(code[pc - 1].op));
        if (fall_in) {
          // Reached both by straight-line flow (already charged by the
          // enclosing segment's gate) and by branch/OSR entry (must
          // charge): the gate goes out of line on the branch path.
          ool_heads_.push_back(pc);
          a_.Bind(body_[pc]);
        } else {
          a_.Bind(entry_[pc]);
          EmitGate(pc);
        }
      }
      EmitBody(pc);
    }
    if (!ok_) return nullptr;
    for (uint32_t pc : ool_heads_) {
      a_.Bind(entry_[pc]);
      EmitGate(pc);
      a_.Jmp(body_[pc]);
    }
    // br_table dispatch: per-target unwind snippets, then the offset table
    // the inline stencil indexes (offsets relative to fn_start_ == 0).
    for (BrTableRec& rec : br_recs_) {
      const BrTable& t = fn_.prepared.br_tables[rec.index];
      std::vector<int32_t> snippets;
      snippets.reserve(t.targets.size());
      for (const BrTarget& tg : t.targets) {
        snippets.push_back(static_cast<int32_t>(a_.size()));
        EmitUnwind(rec.depth, tg.height, tg.arity);
        a_.Jmp(entry_[tg.pc]);
      }
      a_.Bind(rec.tbl);
      for (int32_t off : snippets) {
        a_.W32(static_cast<uint32_t>(off));
      }
    }
    // Shared exit tail: rsi = exit pc, rcx = exit code (set by each exit
    // site), executed synced from r12. The trampoline's pops follow the ret.
    a_.Bind(sync_exit_);
    a_.MovMR(1, RBP, 64, RSI);
    a_.MovMR(1, RBP, 56, RCX);
    a_.MovMR(1, RBP, 8, R12);
    a_.Ret();
    if (poll_trap_.referenced()) {
      // exit_pc was stored before the poll helper ran; don't clobber it.
      a_.Bind(poll_trap_);
      a_.MovMemImm(RBP, 56, static_cast<int32_t>(kExitPollTrap));
      a_.MovMR(1, RBP, 8, R12);
      a_.Ret();
    }
    for (auto& fs : fuel_stubs_) {
      a_.Bind(fs.second);
      EmitExit(fs.first, kExitFuelGate);
    }
    for (auto& ds : deopt_stubs_) {
      a_.Bind(ds.second);
      EmitExit(ds.first, kExitDeopt);
    }
    if (!ok_) return nullptr;
    // Defensive: a referenced-but-unbound label means a structural bug;
    // refuse rather than emit a jump into the weeds.
    for (auto& l : entry_) {
      if (!l.fixups.empty()) return nullptr;
    }
    for (auto& l : body_) {
      if (!l.fixups.empty()) return nullptr;
    }
    auto cf = std::make_unique<CompiledFn>();
    cf->buf = std::move(a_.buf);
    cf->depth = std::move(depth_);
    cf->entry.assign(n_, -1);
    for (uint32_t pc = 0; pc < n_; ++pc) {
      if (head_[pc] && cf->depth[pc] >= 0) {
        cf->entry[pc] = entry_[pc].pos;
      }
    }
    return cf;
  }

 private:
  struct BrTableRec {
    uint32_t index;  // prepared.br_tables index
    int64_t depth;   // operand depth after popping the selector
    Asm::Label tbl;
  };

  // Operand slot d / local i, addressed off rbx (the locals base).
  int32_t SlotDisp(int64_t d) const {
    return static_cast<int32_t>(8 * (gap_ + d));
  }
  int32_t LocalDisp(uint64_t i) const { return static_cast<int32_t>(8 * i); }
  void LoadSlot32(int reg, int64_t d) { a_.MovRM(0, reg, RBX, SlotDisp(d)); }
  void LoadSlot64(int reg, int64_t d) { a_.MovRM(1, reg, RBX, SlotDisp(d)); }
  void StoreSlot(int reg, int64_t d) { a_.MovMR(1, RBX, SlotDisp(d), reg); }
  void LoadLocal32(int reg, uint64_t i) {
    a_.MovRM(0, reg, RBX, LocalDisp(i));
  }
  void LoadLocal64(int reg, uint64_t i) {
    a_.MovRM(1, reg, RBX, LocalDisp(i));
  }
  void StoreLocal(int reg, uint64_t i) { a_.MovMR(1, RBX, LocalDisp(i), reg); }

  // Per-pc out-of-line exit stubs (std::map: node addresses are stable, so
  // labels referenced during emission survive later insertions).
  Asm::Label& FuelStub(uint32_t pc) { return fuel_stubs_[pc]; }
  Asm::Label& DeoptStub(uint32_t pc) { return deopt_stubs_[pc]; }

  void EmitExit(uint32_t pc, uint32_t exit_code) {
    a_.MovImm32(RSI, pc);
    a_.MovImm32(RCX, exit_code);
    a_.Jmp(sync_exit_);
  }

  // Segment fuel gate, the exact analogue of the interpreter's `gate:`
  // label: charge linear_cost[pc] or exit without charging. The fuel-gate
  // exit leaves r12 (executed) untouched; the dispatcher hands the frame
  // back to the interpreter, whose own gate delegates the final partial
  // segment to the switch loop for the exact executed == fuel + 1 boundary.
  void EmitGate(uint32_t pc) {
    uint32_t seg = fn_.prepared.linear_cost[pc];
    if (seg > static_cast<uint32_t>(INT32_MAX)) {
      ok_ = false;
      return;
    }
    a_.Lea(RAX, R12, static_cast<int32_t>(seg));
    a_.AluRR(1, 0x3B, RAX, R13);  // executed + seg vs effective fuel
    a_.Jcc(kCcA, FuelStub(pc));
    a_.MovRR(1, R12, RAX);
  }

  // do_branch's value shuffle: copy `arity` values from the current depth
  // to the label height. Ascending copy is safe (height + k <= src).
  void EmitUnwind(int64_t from_depth, uint32_t height, uint32_t arity) {
    for (uint32_t k = 0; k < arity; ++k) {
      int64_t src = from_depth - arity + k;
      int64_t dst = static_cast<int64_t>(height) + k;
      if (src == dst) continue;
      a_.MovRM(1, RAX, RBX, SlotDisp(src));
      a_.MovMR(1, RBX, SlotDisp(dst), RAX);
    }
  }

  // Bounds check + effective address for a memory access: expects the u32
  // base address in eax, leaves ea in rcx ([r14 + rcx] is the operand).
  // Checks against the r15 size cache; failure deopts and the interpreter
  // re-checks against the live size (so cross-thread growth visibility
  // matches the threaded loop's MEM_CHECK_OR_TRAP exactly).
  bool EmitMemCheck(uint32_t pc, uint64_t offset, uint32_t len) {
    if (offset > static_cast<uint64_t>(INT32_MAX)) {
      EmitExit(pc, kExitDeopt);
      return false;
    }
    a_.Lea(RCX, RAX, static_cast<int32_t>(offset));
    a_.Lea(RDX, RCX, static_cast<int32_t>(len));
    a_.AluRR(1, 0x3B, RDX, R15);
    a_.Jcc(kCcA, DeoptStub(pc));
    return true;
  }

  void EmitBody(uint32_t pc);
  bool EmitAlu32(Op op);            // eax = AluI32(op, eax, ecx)
  bool EmitAlu64(Op op);            // rax = AluI64(op, rax, rcx)
  bool EmitAluImm32(Op op, uint32_t imm);  // eax = AluI32(op, eax, imm)
  bool EmitAluImm64(Op op, uint64_t imm);  // rax = AluI64(op, rax, imm)
  void EmitDivRem(uint32_t pc, Op op, int64_t d);
  void EmitLoad(uint32_t pc, Op op, uint64_t offset, int64_t d);
  void EmitStore(uint32_t pc, Op op, uint64_t offset, int64_t d);

  const Module& m_;
  const Function& fn_;
  Asm a_;
  uint32_t n_ = 0;
  int64_t gap_ = 0;
  bool ok_ = true;
  std::vector<int32_t> depth_;
  std::vector<uint8_t> head_;
  std::vector<Asm::Label> entry_;
  std::vector<Asm::Label> body_;
  std::vector<uint32_t> ool_heads_;
  std::deque<BrTableRec> br_recs_;
  std::map<uint32_t, Asm::Label> fuel_stubs_;
  std::map<uint32_t, Asm::Label> deopt_stubs_;
  Asm::Label fn_start_;
  Asm::Label sync_exit_;
  Asm::Label poll_trap_;
};

// eax = AluI32(op, eax, ecx). Shifts/rotates take the count in cl, which
// hardware masks by 31 — the same masking AluI32 and the interpreter's
// shift/rotate bodies apply (for rotates, rol/ror with a masked count is
// value-identical to the two-shift formula, including count 0).
bool Compiler::EmitAlu32(Op op) {
  switch (op) {
    case Op::kI32Add: a_.AluRR(0, 0x03, RAX, RCX); return true;
    case Op::kI32Sub: a_.AluRR(0, 0x2B, RAX, RCX); return true;
    case Op::kI32Mul: a_.Imul(0, RAX, RCX); return true;
    case Op::kI32And: a_.AluRR(0, 0x23, RAX, RCX); return true;
    case Op::kI32Or: a_.AluRR(0, 0x0B, RAX, RCX); return true;
    case Op::kI32Xor: a_.AluRR(0, 0x33, RAX, RCX); return true;
    case Op::kI32Shl: a_.ShiftCl(0, 4, RAX); return true;
    case Op::kI32ShrS: a_.ShiftCl(0, 7, RAX); return true;
    case Op::kI32ShrU: a_.ShiftCl(0, 5, RAX); return true;
    case Op::kI32Rotl: a_.ShiftCl(0, 0, RAX); return true;
    case Op::kI32Rotr: a_.ShiftCl(0, 1, RAX); return true;
    default: {
      int cc = CcForCmp(op);
      if (cc < 0) return false;
      a_.AluRR(0, 0x3B, RAX, RCX);
      a_.Setcc(cc, RAX);
      a_.MovzxBR(RAX, RAX);
      return true;
    }
  }
}

bool Compiler::EmitAlu64(Op op) {
  switch (op) {
    case Op::kI64Add: a_.AluRR(1, 0x03, RAX, RCX); return true;
    case Op::kI64Sub: a_.AluRR(1, 0x2B, RAX, RCX); return true;
    case Op::kI64Mul: a_.Imul(1, RAX, RCX); return true;
    case Op::kI64And: a_.AluRR(1, 0x23, RAX, RCX); return true;
    case Op::kI64Or: a_.AluRR(1, 0x0B, RAX, RCX); return true;
    case Op::kI64Xor: a_.AluRR(1, 0x33, RAX, RCX); return true;
    case Op::kI64Shl: a_.ShiftCl(1, 4, RAX); return true;
    case Op::kI64ShrS: a_.ShiftCl(1, 7, RAX); return true;
    case Op::kI64ShrU: a_.ShiftCl(1, 5, RAX); return true;
    case Op::kI64Rotl: a_.ShiftCl(1, 0, RAX); return true;
    case Op::kI64Rotr: a_.ShiftCl(1, 1, RAX); return true;
    default: {
      int cc = CcForCmp(op);
      if (cc < 0) return false;
      a_.AluRR(1, 0x3B, RAX, RCX);
      a_.Setcc(cc, RAX);
      a_.MovzxBR(RAX, RAX);
      return true;
    }
  }
}

bool Compiler::EmitAluImm32(Op op, uint32_t imm) {
  int32_t si = static_cast<int32_t>(imm);
  switch (op) {
    case Op::kI32Add: a_.AluImm(0, 0, RAX, si); return true;
    case Op::kI32Sub: a_.AluImm(0, 5, RAX, si); return true;
    case Op::kI32Mul: a_.ImulImm(0, RAX, RAX, si); return true;
    case Op::kI32And: a_.AluImm(0, 4, RAX, si); return true;
    case Op::kI32Or: a_.AluImm(0, 1, RAX, si); return true;
    case Op::kI32Xor: a_.AluImm(0, 6, RAX, si); return true;
    case Op::kI32Shl: a_.ShiftImm(0, 4, RAX, imm & 31); return true;
    case Op::kI32ShrS: a_.ShiftImm(0, 7, RAX, imm & 31); return true;
    case Op::kI32ShrU: a_.ShiftImm(0, 5, RAX, imm & 31); return true;
    case Op::kI32Rotl: a_.ShiftImm(0, 0, RAX, imm & 31); return true;
    case Op::kI32Rotr: a_.ShiftImm(0, 1, RAX, imm & 31); return true;
    default: {
      int cc = CcForCmp(op);
      if (cc < 0) return false;
      a_.AluImm(0, 7, RAX, si);
      a_.Setcc(cc, RAX);
      a_.MovzxBR(RAX, RAX);
      return true;
    }
  }
}

bool Compiler::EmitAluImm64(Op op, uint64_t imm) {
  switch (op) {
    case Op::kI64Shl: a_.ShiftImm(1, 4, RAX, imm & 63); return true;
    case Op::kI64ShrS: a_.ShiftImm(1, 7, RAX, imm & 63); return true;
    case Op::kI64ShrU: a_.ShiftImm(1, 5, RAX, imm & 63); return true;
    case Op::kI64Rotl: a_.ShiftImm(1, 0, RAX, imm & 63); return true;
    case Op::kI64Rotr: a_.ShiftImm(1, 1, RAX, imm & 63); return true;
    default:
      break;
  }
  int64_t s = static_cast<int64_t>(imm);
  if (s >= INT32_MIN && s <= INT32_MAX) {
    int32_t si = static_cast<int32_t>(s);
    switch (op) {
      case Op::kI64Add: a_.AluImm(1, 0, RAX, si); return true;
      case Op::kI64Sub: a_.AluImm(1, 5, RAX, si); return true;
      case Op::kI64Mul: a_.ImulImm(1, RAX, RAX, si); return true;
      case Op::kI64And: a_.AluImm(1, 4, RAX, si); return true;
      case Op::kI64Or: a_.AluImm(1, 1, RAX, si); return true;
      case Op::kI64Xor: a_.AluImm(1, 6, RAX, si); return true;
      default: {
        int cc = CcForCmp(op);
        if (cc < 0) return false;
        a_.AluImm(1, 7, RAX, si);
        a_.Setcc(cc, RAX);
        a_.MovzxBR(RAX, RAX);
        return true;
      }
    }
  }
  a_.MovImm(RCX, imm);
  return EmitAlu64(op);
}

// Integer division family: ecx/rcx = divisor, eax/rax = dividend. Division
// traps (zero divisor, INT_MIN / -1 overflow) deopt so the interpreter
// raises the oracle trap with oracle billing; x % -1 == 0 is computed
// inline (idiv would fault on INT_MIN % -1 where wasm defines 0).
void Compiler::EmitDivRem(uint32_t pc, Op op, int64_t d) {
  int w = (op == Op::kI64DivS || op == Op::kI64DivU || op == Op::kI64RemS ||
           op == Op::kI64RemU)
              ? 1
              : 0;
  if (w) {
    LoadSlot64(RCX, d - 1);
    LoadSlot64(RAX, d - 2);
  } else {
    LoadSlot32(RCX, d - 1);
    LoadSlot32(RAX, d - 2);
  }
  a_.TestRR(w, RCX, RCX);
  a_.Jcc(kCcE, DeoptStub(pc));  // div-by-zero: interpreter raises it
  switch (op) {
    case Op::kI32DivS: {
      Asm::Label do_div;
      a_.AluImm(0, 7, RCX, -1);
      a_.Jcc(kCcNE, do_div);
      a_.AluImm(0, 7, RAX, INT32_MIN);
      a_.Jcc(kCcE, DeoptStub(pc));  // overflow: interpreter raises it
      a_.Bind(do_div);
      a_.Cdq();
      a_.Idiv(0, RCX);
      break;
    }
    case Op::kI64DivS: {
      Asm::Label do_div;
      a_.AluImm(1, 7, RCX, -1);
      a_.Jcc(kCcNE, do_div);
      a_.MovImm(RDX, static_cast<uint64_t>(INT64_MIN));
      a_.AluRR(1, 0x3B, RAX, RDX);
      a_.Jcc(kCcE, DeoptStub(pc));
      a_.Bind(do_div);
      a_.Cqo();
      a_.Idiv(1, RCX);
      break;
    }
    case Op::kI32DivU:
      a_.XorSelf32(RDX);
      a_.Div(0, RCX);
      break;
    case Op::kI64DivU:
      a_.XorSelf32(RDX);
      a_.Div(1, RCX);
      break;
    case Op::kI32RemS: {
      Asm::Label store;
      a_.XorSelf32(RDX);  // rem = 0 covers the divisor == -1 fast-out
      a_.AluImm(0, 7, RCX, -1);
      a_.Jcc(kCcE, store);
      a_.Cdq();
      a_.Idiv(0, RCX);
      a_.Bind(store);
      a_.MovRR(0, RAX, RDX);
      break;
    }
    case Op::kI64RemS: {
      Asm::Label store;
      a_.XorSelf32(RDX);
      a_.AluImm(1, 7, RCX, -1);
      a_.Jcc(kCcE, store);
      a_.Cqo();
      a_.Idiv(1, RCX);
      a_.Bind(store);
      a_.MovRR(1, RAX, RDX);
      break;
    }
    case Op::kI32RemU:
      a_.XorSelf32(RDX);
      a_.Div(0, RCX);
      a_.MovRR(0, RAX, RDX);
      break;
    case Op::kI64RemU:
      a_.XorSelf32(RDX);
      a_.Div(1, RCX);
      a_.MovRR(1, RAX, RDX);
      break;
    default:
      ok_ = false;
      return;
  }
  StoreSlot(RAX, d - 2);
}

// Plain loads: address at d-1, canonical result replaces it. The widening
// forms reproduce the interpreter's casts exactly (sign-extend to the
// result width, then zero-extend into the 8-byte slot).
void Compiler::EmitLoad(uint32_t pc, Op op, uint64_t offset, int64_t d) {
  uint32_t len;
  switch (op) {
    case Op::kI32Load8S: case Op::kI32Load8U:
    case Op::kI64Load8S: case Op::kI64Load8U:
      len = 1;
      break;
    case Op::kI32Load16S: case Op::kI32Load16U:
    case Op::kI64Load16S: case Op::kI64Load16U:
      len = 2;
      break;
    case Op::kI64Load: case Op::kF64Load:
      len = 8;
      break;
    default:
      len = 4;
      break;
  }
  LoadSlot32(RAX, d - 1);
  if (!EmitMemCheck(pc, offset, len)) return;
  switch (op) {
    case Op::kI32Load: case Op::kF32Load: case Op::kI64Load32U:
      a_.MovRX(0, RAX, R14, RCX);
      break;
    case Op::kI64Load: case Op::kF64Load:
      a_.MovRX(1, RAX, R14, RCX);
      break;
    case Op::kI32Load8S:
      a_.MovsxB(0, RAX, R14, RCX);
      break;
    case Op::kI64Load8S:
      a_.MovsxB(1, RAX, R14, RCX);
      break;
    case Op::kI32Load8U: case Op::kI64Load8U:
      a_.MovzxB(RAX, R14, RCX);
      break;
    case Op::kI32Load16S:
      a_.MovsxW(0, RAX, R14, RCX);
      break;
    case Op::kI64Load16S:
      a_.MovsxW(1, RAX, R14, RCX);
      break;
    case Op::kI32Load16U: case Op::kI64Load16U:
      a_.MovzxW(RAX, R14, RCX);
      break;
    case Op::kI64Load32S:
      a_.MovsxdX(RAX, R14, RCX);
      break;
    default:
      ok_ = false;
      return;
  }
  StoreSlot(RAX, d - 1);
}

// Plain stores: value at d-1, address at d-2.
void Compiler::EmitStore(uint32_t pc, Op op, uint64_t offset, int64_t d) {
  uint32_t len;
  switch (op) {
    case Op::kI32Store8: case Op::kI64Store8:
      len = 1;
      break;
    case Op::kI32Store16: case Op::kI64Store16:
      len = 2;
      break;
    case Op::kI64Store: case Op::kF64Store:
      len = 8;
      break;
    default:
      len = 4;
      break;
  }
  LoadSlot32(RAX, d - 2);
  if (!EmitMemCheck(pc, offset, len)) return;
  LoadSlot64(RAX, d - 1);
  switch (op) {
    case Op::kI32Store: case Op::kF32Store: case Op::kI64Store32:
      a_.MovXR(0, R14, RCX, RAX);
      break;
    case Op::kI64Store: case Op::kF64Store:
      a_.MovXR(1, R14, RCX, RAX);
      break;
    case Op::kI32Store8: case Op::kI64Store8:
      a_.MovXR8(R14, RCX, RAX);
      break;
    case Op::kI32Store16: case Op::kI64Store16:
      a_.MovXR16(R14, RCX, RAX);
      break;
    default:
      ok_ = false;
      return;
  }
}

// One stencil per prepared-stream op. Anything not covered compiles to a
// deopt exit: the dispatcher uncharges the segment remainder and the
// interpreter re-executes the op from unconsumed state.
void Compiler::EmitBody(uint32_t pc) {
  const Instr& in = fn_.prepared.code[pc];
  const int64_t d = depth_[pc];
  const Op op = in.op;
  const uint32_t v = static_cast<uint32_t>(op);

  // Generic i32/i64 binop families (comparisons + two-operand arithmetic).
  if ((v >= 0x46 && v <= 0x4F) || (v >= 0x6A && v <= 0x78)) {
    if (op == Op::kI32DivS || op == Op::kI32DivU || op == Op::kI32RemS ||
        op == Op::kI32RemU) {
      EmitDivRem(pc, op, d);
      return;
    }
    LoadSlot32(RAX, d - 2);
    LoadSlot32(RCX, d - 1);
    if (!EmitAlu32(op)) {
      EmitExit(pc, kExitDeopt);
      return;
    }
    StoreSlot(RAX, d - 2);
    return;
  }
  if ((v >= 0x51 && v <= 0x5A) || (v >= 0x7C && v <= 0x8A)) {
    if (op == Op::kI64DivS || op == Op::kI64DivU || op == Op::kI64RemS ||
        op == Op::kI64RemU) {
      EmitDivRem(pc, op, d);
      return;
    }
    LoadSlot64(RAX, d - 2);
    LoadSlot64(RCX, d - 1);
    if (!EmitAlu64(op)) {
      EmitExit(pc, kExitDeopt);
      return;
    }
    StoreSlot(RAX, d - 2);
    return;
  }
  if (v >= 0x28 && v <= 0x35) {
    EmitLoad(pc, op, in.a, d);
    return;
  }
  if (v >= 0x36 && v <= 0x3E) {
    EmitStore(pc, op, in.a, d);
    return;
  }

  switch (op) {
    case Op::kNop:
    case Op::kBlock:
    case Op::kEnd:
    case Op::kDrop:
      return;

    case Op::kLoop: {
      // Loop-header safepoint, gated on the runtime poll flag, then the
      // interpreter's unconditional REFRESH_MSIZE (in that order). The
      // helper publishes pc + 1 (the post-increment pc SYNC_STATE sees)
      // and latches traps exactly as do_poll.
      Asm::Label skip;
      a_.CmpMemImm8(RBP, 72, 0);
      a_.Jcc(kCcE, skip);
      a_.MovImm32(RSI, pc + 1);
      a_.MovMR(1, RBP, 64, RSI);
      a_.MovMR(1, RBP, 8, R12);
      a_.MovRR(1, RDI, RBP);
      a_.CallMem(RBP, 80);
      a_.TestRR(0, RAX, RAX);
      a_.Jcc(kCcNE, poll_trap_);
      a_.Bind(skip);
      a_.MovRM(1, RAX, RBP, 40);
      a_.MovRM(1, R15, RAX, 0);
      return;
    }

    case Op::kUnreachable:
      EmitExit(pc, kExitDeopt);  // interpreter raises the oracle trap
      return;

    case Op::kIf:
      LoadSlot32(RAX, d - 1);
      a_.TestRR(0, RAX, RAX);
      a_.Jcc(kCcE, entry_[in.a]);
      return;
    case Op::kElse:
      a_.Jmp(entry_[in.a]);
      return;
    case Op::kBr:
      EmitUnwind(d, in.b, in.arity);
      a_.Jmp(entry_[in.a]);
      return;
    case Op::kBrIf: {
      Asm::Label skip;
      LoadSlot32(RAX, d - 1);
      a_.TestRR(0, RAX, RAX);
      a_.Jcc(kCcE, skip);
      EmitUnwind(d - 1, in.b, in.arity);
      a_.Jmp(entry_[in.a]);
      a_.Bind(skip);
      return;
    }
    case Op::kFBrIfEqz: {
      Asm::Label skip;
      LoadSlot32(RAX, d - 1);
      a_.TestRR(0, RAX, RAX);
      a_.Jcc(kCcNE, skip);
      EmitUnwind(d - 1, in.b, in.arity);
      a_.Jmp(entry_[in.a]);
      a_.Bind(skip);
      return;
    }
    case Op::kFI32CmpBrIf:
    case Op::kFI64CmpBrIf: {
      int cc = CcForCmp(static_cast<Op>(in.imm));
      if (cc < 0) {
        EmitExit(pc, kExitDeopt);
        return;
      }
      Asm::Label skip;
      int w = op == Op::kFI64CmpBrIf ? 1 : 0;
      if (w) {
        LoadSlot64(RAX, d - 2);
        LoadSlot64(RCX, d - 1);
      } else {
        LoadSlot32(RAX, d - 2);
        LoadSlot32(RCX, d - 1);
      }
      a_.AluRR(w, 0x3B, RAX, RCX);
      a_.Jcc(cc ^ 1, skip);
      EmitUnwind(d - 2, in.b, in.arity);
      a_.Jmp(entry_[in.a]);
      a_.Bind(skip);
      return;
    }
    case Op::kFLocalLocalCmpBrIf: {
      int cc = CcForCmp(static_cast<Op>(in.imm & 0xFFFF));
      if (cc < 0) {
        EmitExit(pc, kExitDeopt);
        return;
      }
      Asm::Label skip;
      LoadLocal32(RAX, (in.imm >> 16) & 0xFFFF);
      LoadLocal32(RCX, (in.imm >> 32) & 0xFFFF);
      a_.AluRR(0, 0x3B, RAX, RCX);
      a_.Jcc(cc ^ 1, skip);
      EmitUnwind(d, in.b, in.arity);
      a_.Jmp(entry_[in.a]);
      a_.Bind(skip);
      return;
    }
    case Op::kFLocalTeeBrIf: {
      // Full 64-bit tee (the interpreter stores the popped slot verbatim),
      // 32-bit condition test.
      Asm::Label skip;
      LoadSlot64(RAX, d - 1);
      StoreLocal(RAX, in.imm);
      a_.TestRR(0, RAX, RAX);
      a_.Jcc(kCcE, skip);
      EmitUnwind(d - 1, in.b, in.arity);
      a_.Jmp(entry_[in.a]);
      a_.Bind(skip);
      return;
    }
    case Op::kBrTable: {
      if (in.a >= fn_.prepared.br_tables.size() ||
          fn_.prepared.br_tables[in.a].targets.empty()) {
        ok_ = false;
        return;
      }
      const BrTable& t = fn_.prepared.br_tables[in.a];
      br_recs_.emplace_back();
      BrTableRec& rec = br_recs_.back();
      rec.index = in.a;
      rec.depth = d - 1;
      // Clamp the selector to the default (last) entry, index the rel-
      // offset table, and jump — snippets unwind per target.
      LoadSlot32(RAX, d - 1);
      a_.MovImm32(RCX, static_cast<uint32_t>(t.targets.size() - 1));
      a_.AluRR(0, 0x3B, RAX, RCX);
      a_.Cmovcc(0, kCcA, RAX, RCX);
      a_.LeaRip(RCX, rec.tbl);
      a_.MovsxdM(RAX, RCX, RAX, 2);
      a_.LeaRip(RDX, fn_start_);
      a_.AluRR(1, 0x03, RAX, RDX);
      a_.JmpReg(RAX);
      return;
    }

    case Op::kReturn:
      EmitExit(pc, kExitReturn);
      return;
    case Op::kCall:
    case Op::kCallIndirect:
    case Op::kFCallWasm:
      EmitExit(pc, kExitCall);
      return;

    case Op::kSelect:
      LoadSlot32(RCX, d - 1);
      LoadSlot64(RAX, d - 3);
      a_.TestRR(0, RCX, RCX);
      a_.CmovccM(1, kCcE, RAX, RBX, SlotDisp(d - 2));
      StoreSlot(RAX, d - 3);
      return;

    case Op::kLocalGet:
      LoadLocal64(RAX, in.a);
      StoreSlot(RAX, d);
      return;
    case Op::kLocalSet:
      LoadSlot64(RAX, d - 1);
      StoreLocal(RAX, in.a);
      return;
    case Op::kLocalTee:
      LoadSlot64(RAX, d - 1);
      StoreLocal(RAX, in.a);
      return;
    case Op::kGlobalGet:
    case Op::kGlobalSet: {
      if (in.a > static_cast<uint32_t>((INT32_MAX - 8) / 16)) {
        EmitExit(pc, kExitDeopt);
        return;
      }
      int32_t disp = static_cast<int32_t>(16 * in.a + 8);
      a_.MovRM(1, RCX, RBP, 48);
      if (op == Op::kGlobalGet) {
        a_.MovRM(1, RAX, RCX, disp);
        StoreSlot(RAX, d);
      } else {
        LoadSlot64(RAX, d - 1);
        a_.MovMR(1, RCX, disp, RAX);
      }
      return;
    }

    case Op::kI32Const:
    case Op::kI64Const:
    case Op::kF32Const:
    case Op::kF64Const:
      a_.MovImm(RAX, in.imm);
      StoreSlot(RAX, d);
      return;

    case Op::kMemorySize:
      // Live size read (not the r15 cache), exactly like the interpreter.
      a_.MovRM(1, RAX, RBP, 40);
      a_.MovRM(1, RAX, RAX, 0);
      a_.ShiftImm(1, 5, RAX, 16);
      StoreSlot(RAX, d);
      return;

    case Op::kI32Eqz:
      LoadSlot32(RAX, d - 1);
      a_.TestRR(0, RAX, RAX);
      a_.Setcc(kCcE, RAX);
      a_.MovzxBR(RAX, RAX);
      StoreSlot(RAX, d - 1);
      return;
    case Op::kI64Eqz:
      LoadSlot64(RAX, d - 1);
      a_.TestRR(1, RAX, RAX);
      a_.Setcc(kCcE, RAX);
      a_.MovzxBR(RAX, RAX);
      StoreSlot(RAX, d - 1);
      return;

    // Branch-free clz/ctz via bsr/bsf (dest undefined on zero input, ZF
    // set): seed the zero-input answer and cmov it in. clz turns the bit
    // index into a leading count with xor 31/63 (63^31 == 32, 127^63 == 64
    // cover the zero case through the same xor).
    case Op::kI32Clz:
      LoadSlot32(RCX, d - 1);
      a_.Bsr(0, RAX, RCX);
      a_.MovImm32(RDX, 63);
      a_.Cmovcc(0, kCcE, RAX, RDX);
      a_.AluImm(0, 6, RAX, 31);
      StoreSlot(RAX, d - 1);
      return;
    case Op::kI32Ctz:
      LoadSlot32(RCX, d - 1);
      a_.Bsf(0, RAX, RCX);
      a_.MovImm32(RDX, 32);
      a_.Cmovcc(0, kCcE, RAX, RDX);
      StoreSlot(RAX, d - 1);
      return;
    case Op::kI64Clz:
      LoadSlot64(RCX, d - 1);
      a_.Bsr(1, RAX, RCX);
      a_.MovImm32(RDX, 127);
      a_.Cmovcc(1, kCcE, RAX, RDX);
      a_.AluImm(0, 6, RAX, 63);
      StoreSlot(RAX, d - 1);
      return;
    case Op::kI64Ctz:
      LoadSlot64(RCX, d - 1);
      a_.Bsf(1, RAX, RCX);
      a_.MovImm32(RDX, 64);
      a_.Cmovcc(1, kCcE, RAX, RDX);
      StoreSlot(RAX, d - 1);
      return;

    // Width changes that reduce to "re-canonicalize the low 32 bits".
    case Op::kI32WrapI64:
    case Op::kI64ExtendI32U:
    case Op::kI32ReinterpretF32:
      LoadSlot32(RAX, d - 1);
      StoreSlot(RAX, d - 1);
      return;
    // Bit-identity on an already-canonical slot: nothing to do.
    case Op::kI64ReinterpretF64:
    case Op::kF32ReinterpretI32:
    case Op::kF64ReinterpretI64:
      return;

    case Op::kI64ExtendI32S:
    case Op::kI64Extend32S:
      a_.MovsxdRM(RAX, RBX, SlotDisp(d - 1));
      StoreSlot(RAX, d - 1);
      return;
    case Op::kI32Extend8S:
      LoadSlot32(RAX, d - 1);
      a_.MovsxBR(0, RAX, RAX);
      StoreSlot(RAX, d - 1);
      return;
    case Op::kI32Extend16S:
      LoadSlot32(RAX, d - 1);
      a_.MovsxWR(0, RAX, RAX);
      StoreSlot(RAX, d - 1);
      return;
    case Op::kI64Extend8S:
      LoadSlot32(RAX, d - 1);
      a_.MovsxBR(1, RAX, RAX);
      StoreSlot(RAX, d - 1);
      return;
    case Op::kI64Extend16S:
      LoadSlot32(RAX, d - 1);
      a_.MovsxWR(1, RAX, RAX);
      StoreSlot(RAX, d - 1);
      return;

    // --- superinstructions ---
    case Op::kFLocalLocalI32Add:
      LoadLocal32(RAX, in.a);
      a_.AluRM(0, 0x03, RAX, RBX, LocalDisp(in.b));
      StoreSlot(RAX, d);
      return;
    case Op::kFI32AddConst:
      LoadSlot32(RAX, d - 1);
      a_.AluImm(0, 0, RAX, static_cast<int32_t>(in.imm));
      StoreSlot(RAX, d - 1);
      return;
    case Op::kFI32ConstOp:
      LoadSlot32(RAX, d - 1);
      if (!EmitAluImm32(static_cast<Op>(in.b),
                        static_cast<uint32_t>(in.imm))) {
        EmitExit(pc, kExitDeopt);
        return;
      }
      StoreSlot(RAX, d - 1);
      return;
    case Op::kFI64ConstOp:
      LoadSlot64(RAX, d - 1);
      if (!EmitAluImm64(static_cast<Op>(in.b), in.imm)) {
        EmitExit(pc, kExitDeopt);
        return;
      }
      StoreSlot(RAX, d - 1);
      return;
    case Op::kFLocalI32Load:
      LoadLocal32(RAX, in.b);
      if (!EmitMemCheck(pc, in.a, 4)) return;
      a_.MovRX(0, RAX, R14, RCX);
      StoreSlot(RAX, d);
      return;
    case Op::kFLocalI64Load:
      LoadLocal32(RAX, in.b);
      if (!EmitMemCheck(pc, in.a, 8)) return;
      a_.MovRX(1, RAX, R14, RCX);
      StoreSlot(RAX, d);
      return;
    case Op::kFI32LoadOp:
      LoadSlot32(RAX, d - 1);
      if (!EmitMemCheck(pc, in.a, 4)) return;
      a_.MovRX(0, RCX, R14, RCX);  // rhs = loaded value (and shift count)
      LoadSlot32(RAX, d - 2);
      if (!EmitAlu32(static_cast<Op>(in.b))) {
        EmitExit(pc, kExitDeopt);
        return;
      }
      StoreSlot(RAX, d - 2);
      return;
    case Op::kFI32CmpSel:
    case Op::kFI64CmpSel: {
      int cc = CcForCmp(static_cast<Op>(in.imm));
      if (cc < 0) {
        EmitExit(pc, kExitDeopt);
        return;
      }
      int w = op == Op::kFI64CmpSel ? 1 : 0;
      if (w) {
        LoadSlot64(RCX, d - 2);
        LoadSlot64(RDX, d - 1);
      } else {
        LoadSlot32(RCX, d - 2);
        LoadSlot32(RDX, d - 1);
      }
      a_.AluRR(w, 0x3B, RCX, RDX);
      LoadSlot64(RAX, d - 4);
      a_.CmovccM(1, cc ^ 1, RAX, RBX, SlotDisp(d - 3));
      StoreSlot(RAX, d - 4);
      return;
    }
    case Op::kFLocalLocalCmp: {
      int cc = CcForCmp(static_cast<Op>(in.arity));
      if (cc < 0) {
        EmitExit(pc, kExitDeopt);
        return;
      }
      LoadLocal32(RAX, in.a);
      LoadLocal32(RCX, in.b);
      a_.AluRR(0, 0x3B, RAX, RCX);
      a_.Setcc(cc, RAX);
      a_.MovzxBR(RAX, RAX);
      StoreSlot(RAX, d);
      return;
    }
    case Op::kFLocalConstI32Op:
      LoadLocal32(RAX, in.a);
      if (!EmitAluImm32(static_cast<Op>(in.b),
                        static_cast<uint32_t>(in.imm))) {
        EmitExit(pc, kExitDeopt);
        return;
      }
      StoreSlot(RAX, d);
      return;
    case Op::kFLocalConstI32OpSet:
      LoadLocal32(RAX, in.a);
      if (!EmitAluImm32(static_cast<Op>(in.arity),
                        static_cast<uint32_t>(in.imm))) {
        EmitExit(pc, kExitDeopt);
        return;
      }
      StoreLocal(RAX, in.b);
      return;
    case Op::kFLocalCopy:
      LoadLocal64(RAX, in.a);
      StoreLocal(RAX, in.b);
      return;

    // Everything else — floating point, truncations, converts, popcnt,
    // memory.grow/fill/copy, atomics, host-visible ops — deopts; the
    // interpreter is the single implementation of the slow ops.
    default:
      EmitExit(pc, kExitDeopt);
      return;
  }
}

// ---------------------------------------------------------------------------
// 5. Tier-up policy and the dispatcher.

// One-shot re-enter inhibit for (frames.size(), pc): after a deopt the
// interpreter must get at least one crack at the instruction, or a
// persistent deopt condition would ping-pong interp<->jit forever.
void SetInhibit(ExecContext& ctx, uint32_t pc) {
  ctx.jit_inhibit = true;
  ctx.jit_inhibit_frame = ctx.frames.size();
  ctx.jit_inhibit_pc = pc;
}

// Mirror of the interpreter's do_poll (trap latching included) for the
// native call path under SafepointScheme::kFunction.
TrapKind DispatchPoll(ExecContext& ctx) {
  if (ctx.poll != nullptr && *ctx.poll) {
    TrapKind t = (*ctx.poll)(ctx);
    if (t != TrapKind::kNone && ctx.trap == TrapKind::kNone) {
      ctx.trap = t;
    }
    return ctx.trap;
  }
  return TrapKind::kNone;
}

// Is frames.back() runnable as compiled code at its current pc? Null means
// "interpreter runs it": not compiled (yet), blacklisted, pc is not an OSR
// seam, running the unfused/kEveryInstr stream, or the frame's operand
// region would not fit the configured stack limit.
const CompiledFn* EnterableCode(ExecContext& ctx, ExecContext::Frame& fr) {
  if (fr.code != fr.fn->prepared.code.data()) return nullptr;
  const Module& m = fr.inst->module();
  auto* js = static_cast<ModuleStateImpl*>(m.jit.get());
  if (js == nullptr) return nullptr;
  JitFuncSlot& slot = js->slots[fr.fn - m.functions.data()];
  if (slot.deopts.load(std::memory_order_relaxed) >= kDeoptBlacklist) {
    return nullptr;
  }
  const auto* cf =
      static_cast<const CompiledFn*>(slot.code.load(std::memory_order_acquire));
  if (cf == nullptr) return nullptr;
  if (fr.pc >= cf->entry.size() || cf->entry[fr.pc] < 0) return nullptr;
  if (static_cast<uint64_t>(fr.stack_base) + fr.fn->max_operand_stack >
      ctx.opts.max_value_stack) {
    return nullptr;
  }
  return cf;
}

// Runs the compiler for one function (the caller holds the kCompiling
// latch) and publishes the outcome. Timing feeds the decade-bucketed
// compile-time histogram telemetry exports.
void CompileFunction(ModuleStateImpl& js, const Module& m, const Function& fn,
                     JitFuncSlot& slot) {
  auto t0 = std::chrono::steady_clock::now();
  std::unique_ptr<CompiledFn> cf = Compiler(m, fn).Run();
  bool ok = cf != nullptr && js.Install(std::move(cf), slot);
  auto nanos = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
  js.compile_nanos_sum.fetch_add(nanos, std::memory_order_relaxed);
  size_t b = 0;
  uint64_t bound = 1000;  // first bucket: <= 1us
  while (b + 1 < JitModuleState::kCompileNanosBuckets && nanos > bound) {
    bound *= 10;
    ++b;
  }
  js.compile_nanos_bucket[b].fetch_add(1, std::memory_order_relaxed);
  if (ok) {
    js.compiles.fetch_add(1, std::memory_order_relaxed);
    slot.state.store(JitFuncSlot::kCompiled, std::memory_order_release);
  } else {
    js.compile_failures.fetch_add(1, std::memory_order_relaxed);
    slot.state.store(JitFuncSlot::kFailed, std::memory_order_release);
  }
}

}  // namespace

bool RequestEnter(ExecContext& ctx) {
  ExecContext::Frame& fr = ctx.frames.back();
  const Module& m = fr.inst->module();
  auto* js = static_cast<ModuleStateImpl*>(m.jit.get());
  if (js == nullptr || fr.code != fr.fn->prepared.code.data()) {
    return false;
  }
  if (ctx.jit_inhibit && ctx.jit_inhibit_frame == ctx.frames.size() &&
      ctx.jit_inhibit_pc == fr.pc) {
    ctx.jit_inhibit = false;  // consumed: the interpreter runs this op once
    return false;
  }
  JitFuncSlot& slot = js->slots[fr.fn - m.functions.data()];
  uint32_t state = slot.state.load(std::memory_order_acquire);
  if (state == JitFuncSlot::kFailed) return false;
  if (state != JitFuncSlot::kCompiled) {
    if (slot.heat.fetch_add(1, std::memory_order_relaxed) + 1 <=
        ctx.opts.jit_threshold) {
      return false;
    }
    uint32_t expect = JitFuncSlot::kCold;
    if (slot.state.compare_exchange_strong(expect, JitFuncSlot::kCompiling,
                                           std::memory_order_acq_rel)) {
      CompileFunction(*js, m, *fr.fn, slot);
    }
    if (slot.state.load(std::memory_order_acquire) != JitFuncSlot::kCompiled) {
      return false;  // failed, or another instance still compiling
    }
  }
  if (EnterableCode(ctx, fr) == nullptr) return false;
  js->tierups.fetch_add(1, std::memory_order_relaxed);
  return true;
}

TrapKind Execute(ExecContext& ctx) {
  for (;;) {
    // Contract: every path here (RequestEnter, the native call/return
    // chains below) validated frames.back() with EnterableCode.
    ExecContext::Frame* fr = &ctx.frames.back();
    const Module& m = fr->inst->module();
    auto* js = static_cast<ModuleStateImpl*>(m.jit.get());
    JitFuncSlot& slot = js->slots[fr->fn - m.functions.data()];
    const auto* cf = static_cast<const CompiledFn*>(
        slot.code.load(std::memory_order_acquire));
    // Same grow-only pre-size as the interpreter's frame_entry: operand
    // slots are addressed statically, so the frame's full region must be
    // resident before entry.
    const size_t need =
        static_cast<size_t>(fr->stack_base) + fr->fn->max_operand_stack;
    if (ctx.stack.size() < need) {
      ctx.stack.resize(need);
    }
    Memory* mem = fr->mem;
    JitState st;
    st.fb = ctx.stack.data() + fr->locals_base;
    st.executed = ctx.executed;
    st.fuel = ctx.opts.fuel == 0 ? UINT64_MAX : ctx.opts.fuel;
    st.mbase = mem != nullptr ? mem->base() : nullptr;
    st.msize_addr = mem != nullptr ? mem->size_bytes_addr() : &kZeroMemSize;
    st.msize = st.msize_addr->load(std::memory_order_acquire);
    st.globals = m.NumGlobals() > 0 ? &fr->inst->global(0) : nullptr;
    st.exit_code = 0;
    st.exit_pc = 0;
    st.poll_flag = ctx.opts.scheme == SafepointScheme::kLoop &&
                           ctx.poll != nullptr && *ctx.poll
                       ? 1
                       : 0;
    st.poll_helper = &wasm_jit_poll_impl;
    st.ctx = &ctx;
    st.fr = fr;
    wasm_jit_enter_impl(&st, cf->code + cf->entry[fr->pc], st.fb);
    const uint32_t xpc = static_cast<uint32_t>(st.exit_pc);
    switch (static_cast<uint32_t>(st.exit_code)) {
      case kExitReturn: {
        // kReturn stencil: move the results to the frame base (the
        // interpreter's RETURN_UNWIND) and pop. If the caller is compiled
        // and resumable we stay native; otherwise trim the stack to the
        // exact post-call top and let frame_entry reload the caller.
        ctx.executed = st.executed;
        const size_t arity = fr->type->results.size();
        const size_t src =
            fr->stack_base + static_cast<size_t>(cf->depth[xpc]) - arity;
        const size_t dst = fr->locals_base;
        if (arity > 0 && src != dst) {
          std::memmove(&ctx.stack[dst], &ctx.stack[src],
                       arity * sizeof(uint64_t));
        }
        ctx.frames.pop_back();
        if (!ctx.frames.empty() &&
            EnterableCode(ctx, ctx.frames.back()) != nullptr) {
          continue;  // caller resumes at call_pc + 1 (set at call time)
        }
        ctx.stack.resize(dst + arity);
        return TrapKind::kNone;
      }
      case kExitCall: {
        // The stencil stops at the (unexecuted-so-far-as-effects) call op
        // with the segment ending at it already charged — exactly the
        // interpreter's position after SYNC_STATE at a call site. Resolve
        // the callee with the interpreter's checks, in its order; any trap
        // condition or host callee deopts so the oracle path executes the
        // op (billing: uncharge it here, the interp gate re-charges).
        ctx.executed = st.executed;
        const Instr& cin = fr->code[xpc];
        const size_t dd = static_cast<size_t>(cf->depth[xpc]);
        const bool indirect = cin.op == Op::kCallIndirect;
        const FuncRef* ref = nullptr;
        bool deopt = false;
        if (indirect) {
          TableInst* table = fr->inst->table(cin.b).get();
          if (table == nullptr) {
            deopt = true;
          } else {
            const uint32_t idx =
                static_cast<uint32_t>(ctx.stack[fr->stack_base + dd - 1]);
            if (idx >= table->elems.size()) {
              deopt = true;
            } else {
              ref = &table->elems[idx];
              const FuncType& expected = m.types[cin.a];
              if (ref->IsNull() ||
                  (&expected != ref->type && !(expected == *ref->type))) {
                deopt = true;
              }
            }
          }
        } else {
          ref = &fr->inst->func(cin.a);
        }
        if (!deopt && (ref->IsHost() || ref->code == nullptr)) {
          deopt = true;  // host (or unresolved) callee: interpreter path
        }
        if (deopt) {
          ctx.executed -= fr->lcost[xpc];
          fr->pc = xpc;
          ctx.stack.resize(fr->stack_base + dd);
          SetInhibit(ctx, xpc);
          js->osr_exits.fetch_add(1, std::memory_order_relaxed);
          slot.deopts.fetch_add(1, std::memory_order_relaxed);
          return TrapKind::kNone;
        }
        fr->pc = xpc + 1;  // the caller's resume point (SYNC_STATE)
        if (ctx.opts.scheme == SafepointScheme::kFunction &&
            DispatchPoll(ctx) != TrapKind::kNone) {
          return ctx.trap;  // stack stays inflated, as the interpreter's
        }
        // Trim to the exact args-on-top position push_wasm_frame assumes
        // (the indirect index was popped by the check above).
        ctx.stack.resize(fr->stack_base + dd - (indirect ? 1 : 0));
        if (!PushFrameForJit(ctx, *ref)) {
          return ctx.trap;  // kStackExhausted from the shared push path
        }
        if (EnterableCode(ctx, ctx.frames.back()) != nullptr) {
          continue;  // compiled callee: stay native
        }
        return TrapKind::kNone;  // frame_entry runs the callee
      }
      case kExitFuelGate: {
        // A segment gate found executed + seg > fuel. The interpreter's
        // gate at the same pc delegates the partial segment to the switch
        // loop for the exact executed == fuel + 1 clamp; inhibit re-entry
        // so the hook at this (frame, pc) lets it do that.
        ctx.executed = st.executed;
        fr->pc = xpc;
        ctx.stack.resize(fr->stack_base + static_cast<size_t>(cf->depth[xpc]));
        SetInhibit(ctx, xpc);
        return TrapKind::kNone;
      }
      case kExitPollTrap:
        // The loop-header poll helper already synced fr->pc / executed and
        // latched the trap; the operand stack stays at its inflated scratch
        // size, exactly like the interpreter's poll-trap return.
        return ctx.trap;
      case kExitDeopt:
      default: {
        // No stencil / trap condition / cached-bounds miss: hand the
        // instruction to the interpreter unconsumed. The stencil charged
        // the segment ending here, so uncharge this op; the interp gate
        // at xpc re-charges it (net: identical billing, and trap paths
        // get the oracle's TRAP_UNITS accounting).
        ctx.executed = st.executed - fr->lcost[xpc];
        fr->pc = xpc;
        ctx.stack.resize(fr->stack_base + static_cast<size_t>(cf->depth[xpc]));
        SetInhibit(ctx, xpc);
        js->osr_exits.fetch_add(1, std::memory_order_relaxed);
        slot.deopts.fetch_add(1, std::memory_order_relaxed);
        return TrapKind::kNone;
      }
    }
  }
}

#endif  // WASM_JIT_OK

std::shared_ptr<JitModuleState> CreateModuleState(size_t num_functions) {
#if WASM_JIT_OK
  auto st = std::make_shared<ModuleStateImpl>();
  st->slots = std::make_unique<JitFuncSlot[]>(num_functions);
  return st;
#else
  (void)num_functions;
  return nullptr;
#endif
}

}  // namespace jit
}  // namespace wasm
