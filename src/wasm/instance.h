// Runtime structures: function references, tables, globals, instances and the
// Linker that resolves imports. Mirrors the spec's store/instance split in a
// compact form; Linker owns host functions and must outlive instances.
#ifndef SRC_WASM_INSTANCE_H_
#define SRC_WASM_INSTANCE_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/wasm/memory.h"
#include "src/wasm/module.h"
#include "src/wasm/types.h"

namespace wasm {

class Instance;
class ExecContext;

// Host functions receive raw 64-bit slots (types statically validated).
using HostFn =
    std::function<TrapKind(ExecContext&, const uint64_t* args, uint64_t* results)>;

struct HostFunc {
  FuncType type;
  HostFn fn;
  std::string name;
};

// A callable reference: either a wasm function (code+owner) or a host
// function. Null refs have type == nullptr.
struct FuncRef {
  const FuncType* type = nullptr;
  const Function* code = nullptr;
  Instance* owner = nullptr;
  const HostFunc* host = nullptr;

  bool IsNull() const { return type == nullptr; }
  bool IsHost() const { return host != nullptr; }
};

struct TableInst {
  Limits limits;
  std::vector<FuncRef> elems;
};

struct GlobalInst {
  GlobalType type;
  uint64_t bits = 0;
};

// Paper Table 3 safepoint insertion schemes (§3.3/§4.2).
enum class SafepointScheme : uint8_t {
  kNone = 0,      // baseline: no async signal delivery
  kLoop,          // poll on backward branches (loop headers) — WALI default
  kFunction,      // poll on function entry
  kEveryInstr,    // poll after every instruction
};

const char* SafepointSchemeName(SafepointScheme s);

// Interpreter dispatch strategy. kThreaded (computed-goto with
// block-granular fuel/safepoint accounting over prepared code) needs
// compiler support and a WASM_THREADED_DISPATCH build; kAuto picks it when
// available. SafepointScheme::kEveryInstr always runs the portable switch
// loop over the unfused stream so per-instruction polling stays exact.
enum class DispatchMode : uint8_t {
  kAuto = 0,
  kSwitch,
  kThreaded,
};

const char* DispatchModeName(DispatchMode m);
// True when this build carries the computed-goto loop.
bool ThreadedDispatchAvailable();

// Baseline template-JIT tier selection. The tier only ever engages on top
// of the threaded dispatch loop (its frame-entry/loop-header hooks are the
// OSR seams); kAuto therefore means "on when this build carries the JIT and
// the resolved dispatch is kThreaded", and is a no-op everywhere else —
// notably under SafepointScheme::kEveryInstr, which pins the switch loop.
enum class JitTier : uint8_t {
  kAuto = 0,
  kOff,
  kOn,
};

const char* JitTierName(JitTier t);
// True when this build carries the x86-64 template JIT (WASM_JIT build with
// threaded dispatch available).
bool JitAvailable();

// Reusable interpreter buffers (operand stack + frame stack). Host layers
// keep one per pooled process slot so repeated runs reuse grown capacity
// instead of reallocating; defined in interp.h.
struct ExecBuffers;
struct Suspension;

struct ExecOptions {
  SafepointScheme scheme = SafepointScheme::kLoop;
  uint32_t max_frames = 4096;
  uint64_t max_value_stack = 1ULL << 22;  // slots
  uint64_t fuel = 0;                      // 0 = unlimited instructions
  DispatchMode dispatch = DispatchMode::kAuto;
  // Optional recycled stack/frame storage; must not be shared by two
  // concurrent invocations. Nested re-entry (signal handlers) is safe: the
  // outer Invoke has already swapped the live vectors out.
  ExecBuffers* buffers = nullptr;
  // When non-null, host calls may suspend the invocation instead of
  // blocking (TrapKind::kSyscallPending): the interpreter state is parked
  // into this slot and ResumeInvoke(*suspend_to, ...) continues the run
  // with the host call's results materialized on the operand stack. Null
  // (the default) means suspension is unavailable and host functions must
  // complete synchronously. One slot per invocation; re-entrant invocations
  // (signal handlers, guest threads) must clear it.
  Suspension* suspend_to = nullptr;
  // Frame-entry profiling: bump Module::func_profile slots (entries, and
  // entry-sampled fuel attribution) on every wasm frame push. Only honored
  // in HOST_TELEMETRY builds; costs one predicted-not-taken branch per call
  // when off.
  bool profile = false;
  // Baseline-JIT tier selection (see JitTier). kAuto/kOn engage the tier
  // when the build carries it and dispatch resolves to kThreaded.
  JitTier jit = JitTier::kAuto;
  // Frame entries + loop back-edges a function must accumulate before it is
  // compiled (JitFuncSlot::heat). 0 compiles at first entry; the default
  // keeps one-shot code interpreted while anything loop-shaped tiers up
  // within a few iterations.
  uint32_t jit_threshold = 16;
};

// The dispatch loop that would actually run for `opts` in this build
// (resolves kAuto, unavailable kThreaded, and the kEveryInstr slow path).
DispatchMode ResolveDispatch(const ExecOptions& opts);

// Outcome of an invocation.
struct RunResult {
  TrapKind trap = TrapKind::kNone;
  std::string trap_message;
  int32_t exit_code = 0;  // valid when trap == kExit
  std::vector<Value> values;
  uint64_t executed_instrs = 0;

  bool ok() const { return trap == TrapKind::kNone; }
  // Treats a clean exit(0) as success too (process-style programs).
  bool ok_or_exit0() const {
    return ok() || (trap == TrapKind::kExit && exit_code == 0);
  }
};

// Callback polled at safepoints; may re-enter the instance (signal handlers).
using SafepointFn = std::function<TrapKind(ExecContext&)>;

class Instance {
 public:
  const Module& module() const { return *module_; }
  const std::shared_ptr<const Module>& module_ptr() const { return module_; }
  const std::string& name() const { return name_; }

  std::shared_ptr<Memory> memory(uint32_t index = 0) const {
    return index < memories_.size() ? memories_[index] : nullptr;
  }
  std::shared_ptr<TableInst> table(uint32_t index = 0) const {
    return index < tables_.size() ? tables_[index] : nullptr;
  }
  GlobalInst& global(uint32_t index) { return globals_[index]; }
  const FuncRef& func(uint32_t index) const { return funcs_[index]; }
  uint32_t num_funcs() const { return static_cast<uint32_t>(funcs_.size()); }

  common::StatusOr<uint32_t> FindExportedFuncIndex(const std::string& name) const;

  // Invokes function `func_index` with `args` (one slot per param).
  RunResult Call(uint32_t func_index, const std::vector<Value>& args,
                 const ExecOptions& opts = {});
  RunResult CallExport(const std::string& export_name, const std::vector<Value>& args,
                       const ExecOptions& opts = {});
  // Invokes an arbitrary reference (used for table-dispatched signal handlers).
  RunResult CallRef(const FuncRef& ref, const std::vector<Value>& args,
                    const ExecOptions& opts = {});

  void set_user_data(void* p) { user_data_ = p; }
  void* user_data() const { return user_data_; }

  void set_safepoint_fn(SafepointFn fn) { safepoint_fn_ = std::move(fn); }
  const SafepointFn& safepoint_fn() const { return safepoint_fn_; }

 private:
  friend class Linker;
  friend class ExecContext;
  friend TrapKind RunLoop(ExecContext& ctx);

  Instance() = default;

  std::shared_ptr<const Module> module_;
  std::vector<FuncRef> funcs_;
  std::vector<std::shared_ptr<Memory>> memories_;
  std::vector<std::shared_ptr<TableInst>> tables_;
  std::vector<GlobalInst> globals_;
  void* user_data_ = nullptr;
  SafepointFn safepoint_fn_;
  std::string name_;
};

class Linker {
 public:
  Linker() = default;
  Linker(const Linker&) = delete;
  Linker& operator=(const Linker&) = delete;

  void DefineHostFunc(const std::string& module, const std::string& name,
                      FuncType type, HostFn fn);
  void DefineMemory(const std::string& module, const std::string& name,
                    std::shared_ptr<Memory> memory);
  void DefineTable(const std::string& module, const std::string& name,
                   std::shared_ptr<TableInst> table);
  void DefineGlobal(const std::string& module, const std::string& name,
                    GlobalType type, uint64_t bits);
  // Re-exports `instance`'s function and memory exports under module name
  // `as_module` (layering: e.g. a WASI implementation module over WALI).
  common::Status DefineInstanceExports(const std::string& as_module, Instance* instance);

  struct InstantiateOptions {
    // Replaces memory 0 (whether imported or locally declared). Used for the
    // instance-per-thread clone model: the clone shares the parent's memory.
    std::shared_ptr<Memory> memory0_override;
    bool apply_data = true;  // false for thread clones (memory already live)
    bool run_start = true;
    std::string instance_name;
    void* user_data = nullptr;
  };

  common::StatusOr<std::unique_ptr<Instance>> Instantiate(
      std::shared_ptr<const Module> module);
  common::StatusOr<std::unique_ptr<Instance>> Instantiate(
      std::shared_ptr<const Module> module, const InstantiateOptions& opts);

  // Looks up a previously defined function export (host or re-exported wasm
  // function). Lets layered APIs (e.g. WASI-over-WALI) call through the same
  // name-bound interface a guest module would import. Null ref if undefined.
  FuncRef FindFunc(const std::string& module, const std::string& name) const {
    auto it = defs_.find(Key(module, name));
    if (it == defs_.end() || it->second.kind != ExternKind::kFunc) {
      return FuncRef{};
    }
    return it->second.funcref;
  }

 private:
  struct ExternVal {
    ExternKind kind = ExternKind::kFunc;
    FuncRef funcref;
    std::shared_ptr<Memory> memory;
    std::shared_ptr<TableInst> table;
    GlobalType global_type;
    uint64_t global_bits = 0;
  };

  static std::string Key(const std::string& module, const std::string& name) {
    return module + '\0' + name;
  }

  std::map<std::string, ExternVal> defs_;
  std::vector<std::unique_ptr<HostFunc>> host_funcs_;
};

}  // namespace wasm

#endif  // SRC_WASM_INSTANCE_H_
