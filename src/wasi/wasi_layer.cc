#include "src/wasi/wasi_layer.h"

#include <errno.h>
#include <fcntl.h>
#include <unistd.h>

#include <cstring>
#include <functional>

#include "src/abi/layout.h"
#include "src/common/logging.h"

namespace wasi {

namespace {

// WASI preview1 file types.
constexpr uint8_t kFiletypeUnknown = 0;
constexpr uint8_t kFiletypeBlock = 1;
constexpr uint8_t kFiletypeChar = 2;
constexpr uint8_t kFiletypeDir = 3;
constexpr uint8_t kFiletypeRegular = 4;
constexpr uint8_t kFiletypeSocket = 6;
constexpr uint8_t kFiletypeSymlink = 7;

uint8_t FiletypeFromMode(uint32_t mode) {
  switch (mode & 0170000) {
    case 0040000: return kFiletypeDir;
    case 0100000: return kFiletypeRegular;
    case 0120000: return kFiletypeSymlink;
    case 0020000: return kFiletypeChar;
    case 0060000: return kFiletypeBlock;
    case 0140000: return kFiletypeSocket;
    default: return kFiletypeUnknown;
  }
}

// preview1 filestat (64 bytes).
struct WasiFilestat {
  uint64_t dev;
  uint64_t ino;
  uint8_t filetype;
  uint8_t pad[7];
  uint64_t nlink;
  uint64_t size;
  uint64_t atim;
  uint64_t mtim;
  uint64_t ctim;
};
static_assert(sizeof(WasiFilestat) == 64, "preview1 wire layout");

// The capability model lives in this layer, not in WALI: paths must stay
// lexically inside the preopened directory.
bool PathContained(const std::string& path) {
  if (path.empty() || path[0] == '/') {
    return false;
  }
  size_t i = 0;
  while (i < path.size()) {
    size_t j = path.find('/', i);
    if (j == std::string::npos) j = path.size();
    if (path.substr(i, j - i) == "..") {
      return false;
    }
    i = j + 1;
  }
  return true;
}

// Scratch sub-regions (inside the 64 KiB WALI-mmap'ed block).
constexpr uint64_t kScratchPath1 = 0;
constexpr uint64_t kScratchPath2 = 4608;
constexpr uint64_t kScratchKstat = 8192;
constexpr uint64_t kScratchTime = 16384;

}  // namespace

uint16_t WasiErrnoFromLinux(int64_t neg_errno) {
  switch (-neg_errno) {
    case 0: return kSuccess;
    case E2BIG: return kE2big;
    case EACCES: return kEacces;
    case EAGAIN: return kEagain;
    case EBADF: return kEbadf;
    case EEXIST: return kEexist;
    case EFAULT: return kEfault;
    case EINVAL: return kEinval;
    case EIO: return kEio;
    case EISDIR: return kEisdir;
    case ELOOP: return kEloop;
    case ENOENT: return kEnoent;
    case ENOMEM: return kEnomem;
    case ENOSYS: return kEnosys;
    case ENOTDIR: return kEnotdir;
    case EPERM: return kEperm;
    case EROFS: return kErofs;
    default: return kEio;
  }
}

// Per-invocation helper bound to one ExecContext.
class WasiCall {
 public:
  WasiCall(WasiLayer* layer, wasm::ExecContext& ctx)
      : layer_(layer), ctx_(ctx), mem_(ctx.current_instance()->memory(0).get()) {}

  bool ok() const { return mem_ != nullptr; }
  WasiLayer* layer() { return layer_; }
  wasm::ExecContext& ctx() { return ctx_; }

  int64_t Wali(const std::string& name, std::initializer_list<int64_t> args) {
    return layer_->CallWali(ctx_, name, args);
  }
  int64_t WaliSupport(const std::string& name, std::initializer_list<int64_t> args) {
    return layer_->CallWaliByFullName(ctx_, name, args);
  }

  void* Ptr(uint64_t addr, uint64_t len) {
    if (mem_ == nullptr || !mem_->InBounds(addr, len)) {
      return nullptr;
    }
    return mem_->At(addr);
  }

  bool WriteU32(uint64_t addr, uint32_t v) {
    void* p = Ptr(addr, 4);
    if (p == nullptr) return false;
    std::memcpy(p, &v, 4);
    return true;
  }
  bool WriteU64(uint64_t addr, uint64_t v) {
    void* p = Ptr(addr, 8);
    if (p == nullptr) return false;
    std::memcpy(p, &v, 8);
    return true;
  }

  // Scratch region inside the sandbox, allocated lazily through WALI mmap.
  uint64_t Scratch() {
    uint64_t& s = layer_->ScratchFor(ctx_);
    if (s == 0) {
      int64_t r = Wali("mmap", {0, 65536, 3 /*RW*/, 0x22 /*ANON|PRIVATE*/, -1, 0});
      if (r > 0) {
        s = static_cast<uint64_t>(r);
      }
    }
    return s;
  }

  // Copies a (ptr,len) guest path into scratch with a NUL at sub-offset
  // `slot`; returns the staged wasm address or 0.
  uint64_t StagePath(uint64_t path_addr, uint64_t path_len, std::string* out,
                     uint64_t slot = kScratchPath1) {
    if (path_len > 4096) return 0;
    const void* src = Ptr(path_addr, path_len);
    uint64_t scratch = Scratch();
    if (src == nullptr || scratch == 0) return 0;
    void* dst = Ptr(scratch + slot, path_len + 1);
    if (dst == nullptr) return 0;
    std::memcpy(dst, src, path_len);
    static_cast<char*>(dst)[path_len] = '\0';
    if (out != nullptr) {
      out->assign(static_cast<const char*>(src), path_len);
    }
    return scratch + slot;
  }

  uint16_t FilestatFromFd(int64_t fd, uint64_t out_addr) {
    uint64_t scratch = Scratch();
    if (scratch == 0) return kEnomem;
    int64_t r = Wali("fstat", {fd, static_cast<int64_t>(scratch + kScratchKstat)});
    if (r < 0) return WasiErrnoFromLinux(r);
    return FilestatFromKstat(scratch + kScratchKstat, out_addr);
  }

  uint16_t FilestatFromKstat(uint64_t kst_addr, uint64_t out_addr) {
    const auto* kst =
        static_cast<const wabi::WaliKStat*>(Ptr(kst_addr, sizeof(wabi::WaliKStat)));
    auto* out = static_cast<WasiFilestat*>(Ptr(out_addr, sizeof(WasiFilestat)));
    if (kst == nullptr || out == nullptr) return kEfault;
    std::memset(out, 0, sizeof(*out));
    out->dev = kst->dev;
    out->ino = kst->ino;
    out->filetype = FiletypeFromMode(kst->mode);
    out->nlink = kst->nlink;
    out->size = static_cast<uint64_t>(kst->size);
    out->atim = static_cast<uint64_t>(kst->atime_sec) * 1000000000ull + kst->atime_nsec;
    out->mtim = static_cast<uint64_t>(kst->mtime_sec) * 1000000000ull + kst->mtime_nsec;
    out->ctim = static_cast<uint64_t>(kst->ctime_sec) * 1000000000ull + kst->ctime_nsec;
    return kSuccess;
  }

 private:
  WasiLayer* layer_;
  wasm::ExecContext& ctx_;
  wasm::Memory* mem_;
};

WasiLayer::WasiLayer(wasm::Linker* linker, const Options& options)
    : linker_(linker), options_(options) {
  Register();
}

WasiLayer::~WasiLayer() = default;

int64_t WasiLayer::CallWali(wasm::ExecContext& ctx, const std::string& name,
                            std::initializer_list<int64_t> args) {
  return CallWaliByFullName(ctx, "SYS_" + name, args);
}

int64_t WasiLayer::CallWaliByFullName(wasm::ExecContext& ctx, const std::string& name,
                                      std::initializer_list<int64_t> args) {
  wasm::FuncRef ref = linker_->FindFunc("wali", name);
  if (ref.IsNull() || !ref.IsHost()) {
    return -ENOSYS;
  }
  ++wali_calls_;
  uint64_t argbuf[8] = {0};
  size_t i = 0;
  for (int64_t a : args) {
    argbuf[i++] = static_cast<uint64_t>(a);
  }
  uint64_t result = 0;
  wasm::TrapKind t = ref.host->fn(ctx, argbuf, &result);
  if (t != wasm::TrapKind::kNone) {
    return -EINTR;  // trap propagates via ctx; give callers a sane value
  }
  return static_cast<int64_t>(result);
}

uint64_t& WasiLayer::ScratchFor(wasm::ExecContext& ctx) {
  return scratch_[ctx.current_instance()->user_data()];
}

const std::map<uint32_t, WasiLayer::PreopenFd>& WasiLayer::EnsurePreopens(
    wasm::ExecContext& ctx) {
  void* key = ctx.current_instance()->user_data();
  auto it = preopens_by_proc_.find(key);
  if (it != preopens_by_proc_.end()) {
    return it->second;
  }
  std::map<uint32_t, PreopenFd>& table = preopens_by_proc_[key];
  WasiCall call(this, ctx);
  for (const Preopen& pre : options_.preopens) {
    uint64_t scratch = call.Scratch();
    if (scratch == 0) continue;
    void* dst = call.Ptr(scratch + kScratchPath1, pre.host_path.size() + 1);
    if (dst == nullptr) continue;
    std::memcpy(dst, pre.host_path.c_str(), pre.host_path.size() + 1);
    int64_t fd =
        CallWali(ctx, "openat",
                 {AT_FDCWD, static_cast<int64_t>(scratch + kScratchPath1),
                  O_RDONLY | O_DIRECTORY | O_CLOEXEC, 0});
    if (fd >= 0) {
      table[static_cast<uint32_t>(fd)] =
          PreopenFd{static_cast<int>(fd), pre.guest_path};
    } else {
      LOG_ERROR() << "wasi preopen failed for " << pre.host_path << ": " << fd;
    }
  }
  return table;
}

void WasiLayer::Register() {
  using Handler = std::function<uint16_t(WasiCall&, const uint64_t*)>;

  // sig: one char per param, 'i' = i32, 'I' = i64; result is always errno i32.
  auto def = [&](const char* name, const char* sig, Handler fn) {
    wasm::FuncType type;
    for (const char* p = sig; *p != '\0'; ++p) {
      type.params.push_back(*p == 'I' ? wasm::ValType::kI64 : wasm::ValType::kI32);
    }
    type.results = {wasm::ValType::kI32};
    linker_->DefineHostFunc(
        "wasi_snapshot_preview1", name, type,
        [this, fn](wasm::ExecContext& ctx, const uint64_t* args,
                   uint64_t* results) -> wasm::TrapKind {
          WasiCall call(this, ctx);
          if (!call.ok()) {
            ctx.SetTrap(wasm::TrapKind::kHostError, "wasi: no guest memory");
            return ctx.trap;
          }
          results[0] = fn(call, args);
          return ctx.trap;
        });
  };

  auto i32 = [](uint64_t v) { return static_cast<int64_t>(static_cast<int32_t>(v)); };

  // ---- args / environ (routed through the WALI support methods, §3.4) ----
  def("args_sizes_get", "ii", [i32](WasiCall& c, const uint64_t* a) -> uint16_t {
    int64_t argc = c.WaliSupport("get_argc", {});
    uint64_t total = 0;
    for (int64_t i = 0; i < argc; ++i) {
      total += static_cast<uint64_t>(c.WaliSupport("get_argv_len", {i}));
    }
    if (!c.WriteU32(a[0], static_cast<uint32_t>(argc)) ||
        !c.WriteU32(a[1], static_cast<uint32_t>(total))) {
      return kEfault;
    }
    return kSuccess;
  });
  def("args_get", "ii", [](WasiCall& c, const uint64_t* a) -> uint16_t {
    int64_t argc = c.WaliSupport("get_argc", {});
    uint64_t argv_ptr = a[0], buf = a[1];
    for (int64_t i = 0; i < argc; ++i) {
      if (!c.WriteU32(argv_ptr + 4 * static_cast<uint64_t>(i),
                      static_cast<uint32_t>(buf))) {
        return kEfault;
      }
      int64_t n = c.WaliSupport("copy_argv", {static_cast<int64_t>(buf), i});
      if (n < 0) return kEfault;
      buf += static_cast<uint64_t>(n);
    }
    return kSuccess;
  });
  def("environ_sizes_get", "ii", [](WasiCall& c, const uint64_t* a) -> uint16_t {
    int64_t envc = c.WaliSupport("get_envc", {});
    uint64_t total = 0;
    for (int64_t i = 0; i < envc; ++i) {
      total += static_cast<uint64_t>(c.WaliSupport("get_env_len", {i}));
    }
    if (!c.WriteU32(a[0], static_cast<uint32_t>(envc)) ||
        !c.WriteU32(a[1], static_cast<uint32_t>(total))) {
      return kEfault;
    }
    return kSuccess;
  });
  def("environ_get", "ii", [](WasiCall& c, const uint64_t* a) -> uint16_t {
    int64_t envc = c.WaliSupport("get_envc", {});
    uint64_t env_ptr = a[0], buf = a[1];
    for (int64_t i = 0; i < envc; ++i) {
      if (!c.WriteU32(env_ptr + 4 * static_cast<uint64_t>(i),
                      static_cast<uint32_t>(buf))) {
        return kEfault;
      }
      int64_t n = c.WaliSupport("copy_env", {static_cast<int64_t>(buf), i});
      if (n < 0) return kEfault;
      buf += static_cast<uint64_t>(n);
    }
    return kSuccess;
  });

  // ---- clocks (WASI ids 0..3 coincide with Linux CLOCK_* ids) ----
  def("clock_time_get", "iIi", [i32](WasiCall& c, const uint64_t* a) -> uint16_t {
    uint64_t scratch = c.Scratch();
    if (scratch == 0) return kEnomem;
    int64_t r = c.Wali("clock_gettime",
                       {i32(a[0]), static_cast<int64_t>(scratch + kScratchTime)});
    if (r < 0) return WasiErrnoFromLinux(r);
    const auto* ts =
        static_cast<const wabi::WaliTimespec*>(c.Ptr(scratch + kScratchTime, 16));
    if (ts == nullptr) return kEfault;
    uint64_t ns = static_cast<uint64_t>(ts->sec) * 1000000000ull +
                  static_cast<uint64_t>(ts->nsec);
    if (!c.WriteU64(a[2], ns)) return kEfault;
    return kSuccess;
  });
  def("clock_res_get", "ii", [i32](WasiCall& c, const uint64_t* a) -> uint16_t {
    uint64_t scratch = c.Scratch();
    if (scratch == 0) return kEnomem;
    int64_t r = c.Wali("clock_getres",
                       {i32(a[0]), static_cast<int64_t>(scratch + kScratchTime)});
    if (r < 0) return WasiErrnoFromLinux(r);
    const auto* ts =
        static_cast<const wabi::WaliTimespec*>(c.Ptr(scratch + kScratchTime, 16));
    if (ts == nullptr) return kEfault;
    uint64_t ns = static_cast<uint64_t>(ts->sec) * 1000000000ull +
                  static_cast<uint64_t>(ts->nsec);
    if (!c.WriteU64(a[1], ns)) return kEfault;
    return kSuccess;
  });

  // ---- fd ops ----
  def("fd_close", "i", [i32](WasiCall& c, const uint64_t* a) -> uint16_t {
    return WasiErrnoFromLinux(c.Wali("close", {i32(a[0])}));
  });
  def("fd_read", "iiii", [i32](WasiCall& c, const uint64_t* a) -> uint16_t {
    // WASI iovec layout == wasm32 iovec: passes straight through WALI readv.
    int64_t r = c.Wali("readv", {i32(a[0]), static_cast<int64_t>(a[1]),
                                 static_cast<int64_t>(a[2])});
    if (r < 0) return WasiErrnoFromLinux(r);
    return c.WriteU32(a[3], static_cast<uint32_t>(r)) ? kSuccess : kEfault;
  });
  def("fd_write", "iiii", [i32](WasiCall& c, const uint64_t* a) -> uint16_t {
    int64_t r = c.Wali("writev", {i32(a[0]), static_cast<int64_t>(a[1]),
                                  static_cast<int64_t>(a[2])});
    if (r < 0) return WasiErrnoFromLinux(r);
    return c.WriteU32(a[3], static_cast<uint32_t>(r)) ? kSuccess : kEfault;
  });
  def("fd_seek", "iIii", [i32](WasiCall& c, const uint64_t* a) -> uint16_t {
    int64_t r = c.Wali("lseek", {i32(a[0]), static_cast<int64_t>(a[1]), i32(a[2])});
    if (r < 0) return WasiErrnoFromLinux(r);
    return c.WriteU64(a[3], static_cast<uint64_t>(r)) ? kSuccess : kEfault;
  });
  def("fd_tell", "ii", [i32](WasiCall& c, const uint64_t* a) -> uint16_t {
    int64_t r = c.Wali("lseek", {i32(a[0]), 0, SEEK_CUR});
    if (r < 0) return WasiErrnoFromLinux(r);
    return c.WriteU64(a[1], static_cast<uint64_t>(r)) ? kSuccess : kEfault;
  });
  def("fd_filestat_get", "ii", [i32](WasiCall& c, const uint64_t* a) -> uint16_t {
    return c.FilestatFromFd(i32(a[0]), a[1]);
  });
  def("fd_fdstat_get", "ii", [i32](WasiCall& c, const uint64_t* a) -> uint16_t {
    uint64_t scratch = c.Scratch();
    if (scratch == 0) return kEnomem;
    int64_t r = c.Wali("fstat", {i32(a[0]), static_cast<int64_t>(scratch + kScratchKstat)});
    if (r < 0) return WasiErrnoFromLinux(r);
    const auto* kst = static_cast<const wabi::WaliKStat*>(
        c.Ptr(scratch + kScratchKstat, sizeof(wabi::WaliKStat)));
    int64_t fl = c.Wali("fcntl", {i32(a[0]), F_GETFL, 0});
    if (fl < 0) return WasiErrnoFromLinux(fl);
    uint8_t* out = static_cast<uint8_t*>(c.Ptr(a[1], 24));
    if (out == nullptr || kst == nullptr) return kEfault;
    std::memset(out, 0, 24);
    out[0] = FiletypeFromMode(kst->mode);
    uint16_t flags = 0;
    if ((fl & O_APPEND) != 0) flags |= 1;
    if ((fl & O_NONBLOCK) != 0) flags |= 4;
    std::memcpy(out + 2, &flags, 2);
    uint64_t rights = ~0ull;  // per-fd rights narrowing is a policy layer above
    std::memcpy(out + 8, &rights, 8);
    std::memcpy(out + 16, &rights, 8);
    return kSuccess;
  });
  def("fd_fdstat_set_flags", "ii", [i32](WasiCall& c, const uint64_t* a) -> uint16_t {
    int flags = 0;
    if ((a[1] & 1) != 0) flags |= O_APPEND;
    if ((a[1] & 4) != 0) flags |= O_NONBLOCK;
    return WasiErrnoFromLinux(c.Wali("fcntl", {i32(a[0]), F_SETFL, flags}));
  });
  def("fd_datasync", "i", [i32](WasiCall& c, const uint64_t* a) -> uint16_t {
    return WasiErrnoFromLinux(c.Wali("fdatasync", {i32(a[0])}));
  });
  def("fd_sync", "i", [i32](WasiCall& c, const uint64_t* a) -> uint16_t {
    return WasiErrnoFromLinux(c.Wali("fsync", {i32(a[0])}));
  });
  def("fd_renumber", "ii", [i32](WasiCall& c, const uint64_t* a) -> uint16_t {
    int64_t r = c.Wali("dup3", {i32(a[0]), i32(a[1]), 0});
    return r < 0 ? WasiErrnoFromLinux(r) : kSuccess;
  });
  def("fd_prestat_get", "ii", [](WasiCall& c, const uint64_t* a) -> uint16_t {
    const auto& preopens = c.layer()->EnsurePreopens(c.ctx());
    auto it = preopens.find(static_cast<uint32_t>(a[0]));
    if (it == preopens.end()) return kEbadf;
    // prestat: tag u8 = 0 (dir), then u32 name_len.
    if (!c.WriteU32(a[1], 0) ||
        !c.WriteU32(a[1] + 4, static_cast<uint32_t>(it->second.guest_path.size()))) {
      return kEfault;
    }
    return kSuccess;
  });
  def("fd_prestat_dir_name", "iii", [](WasiCall& c, const uint64_t* a) -> uint16_t {
    const auto& preopens = c.layer()->EnsurePreopens(c.ctx());
    auto it = preopens.find(static_cast<uint32_t>(a[0]));
    if (it == preopens.end()) return kEbadf;
    const std::string& name = it->second.guest_path;
    if (a[2] < name.size()) return kEinval;
    void* dst = c.Ptr(a[1], name.size());
    if (dst == nullptr) return kEfault;
    std::memcpy(dst, name.data(), name.size());
    return kSuccess;
  });

  // ---- path ops (capability checks live HERE, above WALI) ----
  def("path_open", "iiiiiIIii", [i32](WasiCall& c, const uint64_t* a) -> uint16_t {
    c.layer()->EnsurePreopens(c.ctx());
    std::string path;
    uint64_t staged = c.StagePath(a[2], a[3], &path);
    if (staged == 0) return kEfault;
    if (!PathContained(path)) return kEnotcapable;
    uint32_t oflags = static_cast<uint32_t>(a[4]);
    uint64_t rights = a[5];
    uint32_t fdflags = static_cast<uint32_t>(a[7]);
    int flags = 0;
    if ((oflags & 1) != 0) flags |= O_CREAT;
    if ((oflags & 2) != 0) flags |= O_DIRECTORY;
    if ((oflags & 4) != 0) flags |= O_EXCL;
    if ((oflags & 8) != 0) flags |= O_TRUNC;
    if ((fdflags & 1) != 0) flags |= O_APPEND;
    if ((fdflags & 4) != 0) flags |= O_NONBLOCK;
    constexpr uint64_t kRightRead = 1 << 1;   // fd_read
    constexpr uint64_t kRightWrite = 1 << 6;  // fd_write
    bool want_read = (rights & kRightRead) != 0;
    bool want_write = (rights & kRightWrite) != 0 || (flags & (O_CREAT | O_TRUNC)) != 0;
    flags |= want_write ? (want_read ? O_RDWR : O_WRONLY) : O_RDONLY;
    int64_t fd =
        c.Wali("openat", {i32(a[0]), static_cast<int64_t>(staged), flags, 0644});
    if (fd < 0) return WasiErrnoFromLinux(fd);
    return c.WriteU32(a[8], static_cast<uint32_t>(fd)) ? kSuccess : kEfault;
  });
  def("path_create_directory", "iii", [i32](WasiCall& c, const uint64_t* a) -> uint16_t {
    std::string path;
    uint64_t staged = c.StagePath(a[1], a[2], &path);
    if (staged == 0) return kEfault;
    if (!PathContained(path)) return kEnotcapable;
    return WasiErrnoFromLinux(
        c.Wali("mkdirat", {i32(a[0]), static_cast<int64_t>(staged), 0755}));
  });
  def("path_remove_directory", "iii", [i32](WasiCall& c, const uint64_t* a) -> uint16_t {
    std::string path;
    uint64_t staged = c.StagePath(a[1], a[2], &path);
    if (staged == 0) return kEfault;
    if (!PathContained(path)) return kEnotcapable;
    return WasiErrnoFromLinux(
        c.Wali("unlinkat", {i32(a[0]), static_cast<int64_t>(staged), AT_REMOVEDIR}));
  });
  def("path_unlink_file", "iii", [i32](WasiCall& c, const uint64_t* a) -> uint16_t {
    std::string path;
    uint64_t staged = c.StagePath(a[1], a[2], &path);
    if (staged == 0) return kEfault;
    if (!PathContained(path)) return kEnotcapable;
    return WasiErrnoFromLinux(
        c.Wali("unlinkat", {i32(a[0]), static_cast<int64_t>(staged), 0}));
  });
  def("path_filestat_get", "iiiii", [i32](WasiCall& c, const uint64_t* a) -> uint16_t {
    std::string path;
    uint64_t staged = c.StagePath(a[2], a[3], &path);
    if (staged == 0) return kEfault;
    if (!PathContained(path)) return kEnotcapable;
    uint64_t scratch = c.Scratch();
    int at_flags = (a[1] & 1) != 0 ? 0 : AT_SYMLINK_NOFOLLOW;  // bit0 = follow
    int64_t r = c.Wali("newfstatat",
                       {i32(a[0]), static_cast<int64_t>(staged),
                        static_cast<int64_t>(scratch + kScratchKstat), at_flags});
    if (r < 0) return WasiErrnoFromLinux(r);
    return c.FilestatFromKstat(scratch + kScratchKstat, a[4]);
  });
  def("path_rename", "iiiiii", [i32](WasiCall& c, const uint64_t* a) -> uint16_t {
    std::string oldp, newp;
    uint64_t staged_old = c.StagePath(a[1], a[2], &oldp, kScratchPath1);
    uint64_t staged_new = c.StagePath(a[4], a[5], &newp, kScratchPath2);
    if (staged_old == 0 || staged_new == 0) return kEfault;
    if (!PathContained(oldp) || !PathContained(newp)) return kEnotcapable;
    return WasiErrnoFromLinux(
        c.Wali("renameat", {i32(a[0]), static_cast<int64_t>(staged_old), i32(a[3]),
                            static_cast<int64_t>(staged_new)}));
  });
  def("path_readlink", "iiiiii", [i32](WasiCall& c, const uint64_t* a) -> uint16_t {
    std::string path;
    uint64_t staged = c.StagePath(a[1], a[2], &path);
    if (staged == 0) return kEfault;
    if (!PathContained(path)) return kEnotcapable;
    int64_t r = c.Wali("readlinkat",
                       {i32(a[0]), static_cast<int64_t>(staged),
                        static_cast<int64_t>(a[3]), static_cast<int64_t>(a[4])});
    if (r < 0) return WasiErrnoFromLinux(r);
    return c.WriteU32(a[5], static_cast<uint32_t>(r)) ? kSuccess : kEfault;
  });

  // ---- misc ----
  def("random_get", "ii", [](WasiCall& c, const uint64_t* a) -> uint16_t {
    int64_t r = c.Wali("getrandom",
                       {static_cast<int64_t>(a[0]), static_cast<int64_t>(a[1]), 0});
    return r < 0 ? WasiErrnoFromLinux(r) : kSuccess;
  });
  def("sched_yield", "", [](WasiCall& c, const uint64_t*) -> uint16_t {
    return WasiErrnoFromLinux(c.Wali("sched_yield", {}));
  });

  // proc_exit(code) -> ! (no result)
  {
    wasm::FuncType type;
    type.params = {wasm::ValType::kI32};
    linker_->DefineHostFunc(
        "wasi_snapshot_preview1", "proc_exit", type,
        [this](wasm::ExecContext& ctx, const uint64_t* args, uint64_t*) {
          CallWali(ctx, "exit_group",
                   {static_cast<int64_t>(static_cast<int32_t>(args[0]))});
          return ctx.trap;
        });
  }
}

}  // namespace wasi
