// WASI (preview1-class) implemented as a layer over WALI (paper §4.1/Fig. 6,
// claim C2, experiment E2).
//
// Every operation bottoms out in name-bound `("wali", ...)` calls resolved
// through the Linker — exactly the calls a Wasm module implementing WASI
// would import. The layer adds the capability model WASI requires
// (preopened directories, lexical path containment, rights words) strictly
// *above* the thin kernel interface, demonstrating the paper's layering:
// engines keep one tiny syscall surface; security-model APIs live outside
// the TCB. Even the layer's scratch memory is allocated inside the guest
// sandbox via WALI mmap.
#ifndef SRC_WASI_WASI_LAYER_H_
#define SRC_WASI_WASI_LAYER_H_

#include <cstdint>
#include <initializer_list>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/wasm/wasm.h"

namespace wasi {

// WASI errno values (subset; preview1 numbering).
enum WasiErrno : uint16_t {
  kSuccess = 0,
  kE2big = 1,
  kEacces = 2,
  kEagain = 6,
  kEbadf = 8,
  kEexist = 20,
  kEfault = 21,
  kEinval = 28,
  kEio = 29,
  kEisdir = 31,
  kEloop = 32,
  kEnoent = 44,
  kEnomem = 48,
  kEnosys = 52,
  kEnotdir = 54,
  kEperm = 63,
  kErofs = 69,
  kEnotcapable = 76,
};

// Maps a negative-errno WALI result to a WASI errno.
uint16_t WasiErrnoFromLinux(int64_t neg_errno);

class WasiCall;

class WasiLayer {
 public:
  struct Preopen {
    std::string guest_path;  // name reported to the guest, e.g. "/sandbox"
    std::string host_path;   // directory opened through WALI at first use
  };

  struct Options {
    std::vector<Preopen> preopens;
  };

  // Registers the "wasi_snapshot_preview1" namespace on `linker`. A
  // WaliRuntime must already be attached to the same linker.
  WasiLayer(wasm::Linker* linker, const Options& options);
  ~WasiLayer();

  WasiLayer(const WasiLayer&) = delete;
  WasiLayer& operator=(const WasiLayer&) = delete;

  // Number of WALI calls issued through the layering boundary (telemetry
  // for tests: proves everything routes through the thin interface).
  uint64_t wali_calls() const { return wali_calls_; }

  struct PreopenFd {
    int host_fd;
    std::string guest_path;
  };

 private:
  friend class WasiCall;

  void Register();

  // Invokes ("wali", "SYS_<name>"); returns the kernel-convention result.
  int64_t CallWali(wasm::ExecContext& ctx, const std::string& name,
                   std::initializer_list<int64_t> args);
  // Invokes a WALI support method by exact name (get_argc, copy_argv, ...).
  int64_t CallWaliByFullName(wasm::ExecContext& ctx, const std::string& name,
                             std::initializer_list<int64_t> args);

  // Per-process scratch region (wasm address) allocated via WALI mmap.
  uint64_t& ScratchFor(wasm::ExecContext& ctx);
  // Opens configured preopen dirs through WALI for this process (idempotent).
  const std::map<uint32_t, PreopenFd>& EnsurePreopens(wasm::ExecContext& ctx);

  wasm::Linker* linker_;
  Options options_;
  std::map<void*, uint64_t> scratch_;  // keyed by WaliProcess pointer
  std::map<void*, std::map<uint32_t, PreopenFd>> preopens_by_proc_;
  uint64_t wali_calls_ = 0;
};

}  // namespace wasi

#endif  // SRC_WASI_WASI_LAYER_H_
