#include "src/abi/layout.h"

#include <cstring>

namespace wabi {

namespace {

// x86-64 glibc/kernel struct stat (144 bytes).
constexpr StatLayout kX8664Stat = {
    /*dev=*/{0, 8},       /*ino=*/{8, 8},      /*mode=*/{24, 4},
    /*nlink=*/{16, 8},    /*uid=*/{28, 4},     /*gid=*/{32, 4},
    /*rdev=*/{40, 8},     /*size=*/{48, 8},    /*blksize=*/{56, 8},
    /*blocks=*/{64, 8},   /*atime_sec=*/{72, 8},  /*atime_nsec=*/{80, 8},
    /*mtime_sec=*/{88, 8},  /*mtime_nsec=*/{96, 8},
    /*ctime_sec=*/{104, 8}, /*ctime_nsec=*/{112, 8},
    /*struct_size=*/144,
};

// asm-generic struct stat shared by aarch64 and riscv64 (128 bytes):
// mode/nlink swap widths and blksize shrinks to 4 bytes relative to x86-64.
constexpr StatLayout kGenericStat = {
    /*dev=*/{0, 8},       /*ino=*/{8, 8},      /*mode=*/{16, 4},
    /*nlink=*/{20, 4},    /*uid=*/{24, 4},     /*gid=*/{28, 4},
    /*rdev=*/{32, 8},     /*size=*/{48, 8},    /*blksize=*/{56, 4},
    /*blocks=*/{64, 8},   /*atime_sec=*/{72, 8},  /*atime_nsec=*/{80, 8},
    /*mtime_sec=*/{88, 8},  /*mtime_nsec=*/{96, 8},
    /*ctime_sec=*/{104, 8}, /*ctime_nsec=*/{112, 8},
    /*struct_size=*/128,
};

uint64_t ReadField(const uint8_t* base, StatField f) {
  uint64_t v = 0;
  std::memcpy(&v, base + f.offset, f.size);
  return v;
}

void WriteField(uint8_t* base, StatField f, uint64_t v) {
  std::memcpy(base + f.offset, &v, f.size);
}

// Open-flag bit pairs that differ between the asm-generic (canonical) and
// arm64 encodings; all other bits are identical across the three ISAs.
struct FlagPair {
  uint32_t generic;
  uint32_t arm64;
};
constexpr FlagPair kArm64FlagPairs[] = {
    {00040000, 00200000},  // O_DIRECT
    {00100000, 00400000},  // O_LARGEFILE
    {00200000, 00040000},  // O_DIRECTORY
    {00400000, 00100000},  // O_NOFOLLOW
};
constexpr uint32_t kArm64Affected = 00740000;

}  // namespace

const StatLayout& StatLayoutFor(Isa isa) {
  return isa == Isa::kX8664 ? kX8664Stat : kGenericStat;
}

void NativeStatToWali(const void* native, Isa isa, WaliKStat* out) {
  const StatLayout& l = StatLayoutFor(isa);
  const uint8_t* p = static_cast<const uint8_t*>(native);
  out->dev = ReadField(p, l.dev);
  out->ino = ReadField(p, l.ino);
  out->nlink = ReadField(p, l.nlink);
  out->mode = static_cast<uint32_t>(ReadField(p, l.mode));
  out->uid = static_cast<uint32_t>(ReadField(p, l.uid));
  out->gid = static_cast<uint32_t>(ReadField(p, l.gid));
  out->pad0 = 0;
  out->rdev = ReadField(p, l.rdev);
  out->size = static_cast<int64_t>(ReadField(p, l.size));
  out->blksize = static_cast<int64_t>(ReadField(p, l.blksize));
  out->blocks = static_cast<int64_t>(ReadField(p, l.blocks));
  out->atime_sec = static_cast<int64_t>(ReadField(p, l.atime_sec));
  out->atime_nsec = static_cast<int64_t>(ReadField(p, l.atime_nsec));
  out->mtime_sec = static_cast<int64_t>(ReadField(p, l.mtime_sec));
  out->mtime_nsec = static_cast<int64_t>(ReadField(p, l.mtime_nsec));
  out->ctime_sec = static_cast<int64_t>(ReadField(p, l.ctime_sec));
  out->ctime_nsec = static_cast<int64_t>(ReadField(p, l.ctime_nsec));
}

void WaliStatToNative(const WaliKStat& in, Isa isa, void* native) {
  const StatLayout& l = StatLayoutFor(isa);
  uint8_t* p = static_cast<uint8_t*>(native);
  std::memset(p, 0, l.struct_size);
  WriteField(p, l.dev, in.dev);
  WriteField(p, l.ino, in.ino);
  WriteField(p, l.nlink, in.nlink);
  WriteField(p, l.mode, in.mode);
  WriteField(p, l.uid, in.uid);
  WriteField(p, l.gid, in.gid);
  WriteField(p, l.rdev, in.rdev);
  WriteField(p, l.size, static_cast<uint64_t>(in.size));
  WriteField(p, l.blksize, static_cast<uint64_t>(in.blksize));
  WriteField(p, l.blocks, static_cast<uint64_t>(in.blocks));
  WriteField(p, l.atime_sec, static_cast<uint64_t>(in.atime_sec));
  WriteField(p, l.atime_nsec, static_cast<uint64_t>(in.atime_nsec));
  WriteField(p, l.mtime_sec, static_cast<uint64_t>(in.mtime_sec));
  WriteField(p, l.mtime_nsec, static_cast<uint64_t>(in.mtime_nsec));
  WriteField(p, l.ctime_sec, static_cast<uint64_t>(in.ctime_sec));
  WriteField(p, l.ctime_nsec, static_cast<uint64_t>(in.ctime_nsec));
}

uint32_t OpenFlagsToNative(uint32_t wali_flags, Isa isa) {
  if (isa != Isa::kAarch64) {
    return wali_flags;  // x86-64 and riscv64 match the generic encoding here
  }
  uint32_t out = wali_flags & ~kArm64Affected;
  for (const FlagPair& p : kArm64FlagPairs) {
    if ((wali_flags & p.generic) != 0) out |= p.arm64;
  }
  return out;
}

uint32_t OpenFlagsFromNative(uint32_t native_flags, Isa isa) {
  if (isa != Isa::kAarch64) {
    return native_flags;
  }
  uint32_t out = native_flags & ~kArm64Affected;
  for (const FlagPair& p : kArm64FlagPairs) {
    if ((native_flags & p.arm64) != 0) out |= p.generic;
  }
  return out;
}

Isa HostIsa() {
#if defined(__x86_64__)
  return Isa::kX8664;
#elif defined(__aarch64__)
  return Isa::kAarch64;
#elif defined(__riscv)
  return Isa::kRiscv64;
#else
  return Isa::kX8664;
#endif
}

}  // namespace wabi
