// Per-ISA Linux syscall tables (paper §2, Fig. 3; §3.5 name-bound syscalls).
//
// The table is curated from the upstream Linux syscall tables: x86-64 keeps
// its historical numbering including legacy calls (open, stat, fork, ...);
// aarch64 and riscv64 use the asm-generic table, which drops most legacy
// calls in favor of the *at variants. Numbers for the non-host ISAs are the
// asm-generic values; entries whose number we do not need carry -1 (presence
// is what Fig. 3 measures). On the host ISA the actual passthrough uses
// <sys/syscall.h> constants, not this table.
#ifndef SRC_ABI_SYSCALL_TABLE_H_
#define SRC_ABI_SYSCALL_TABLE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace wabi {

enum class Isa : uint8_t { kX8664 = 0, kAarch64 = 1, kRiscv64 = 2 };

inline constexpr int kNumIsas = 3;

const char* IsaName(Isa isa);

struct SyscallEntry {
  const char* name;
  // Syscall number per ISA; -1 = not present on that ISA.
  int number[kNumIsas];

  bool PresentOn(Isa isa) const { return number[static_cast<int>(isa)] >= 0; }
};

// Full curated table (sorted by name).
const std::vector<SyscallEntry>& SyscallTable();

// Name lookup; returns nullptr when unknown.
const SyscallEntry* FindSyscall(std::string_view name);

// All names present on `isa`.
std::vector<std::string> SyscallNames(Isa isa);

struct IsaSimilarity {
  int total[kNumIsas];        // syscalls present per ISA
  int common_all;             // present on all three ISAs
  int arch_specific[kNumIsas];  // present on exactly this ISA
};

// Computes the Fig. 3 statistics.
IsaSimilarity ComputeIsaSimilarity();

}  // namespace wabi

#endif  // SRC_ABI_SYSCALL_TABLE_H_
