// ISA-portable struct layouts and per-ISA marshalling (paper §3.5).
//
// WALI gives `kstat`-class syscall arguments one dedicated wire layout that
// is identical on every ISA; the engine converts to/from the host ISA's
// native layout at the syscall boundary. This module defines those portable
// layouts, per-ISA native `struct stat` field descriptors (x86-64 vs the
// asm-generic layout used by aarch64/riscv64), and open-flag translation
// (arm64 permutes O_DIRECTORY/O_NOFOLLOW/O_DIRECT/O_LARGEFILE).
#ifndef SRC_ABI_LAYOUT_H_
#define SRC_ABI_LAYOUT_H_

#include <cstdint>

#include "src/abi/syscall_table.h"

namespace wabi {

// Portable stat record written into Wasm memory. Fixed layout on all ISAs;
// all fields naturally aligned, 144 bytes total.
struct WaliKStat {
  uint64_t dev;
  uint64_t ino;
  uint64_t nlink;
  uint32_t mode;
  uint32_t uid;
  uint32_t gid;
  uint32_t pad0;
  uint64_t rdev;
  int64_t size;
  int64_t blksize;
  int64_t blocks;
  int64_t atime_sec;
  int64_t atime_nsec;
  int64_t mtime_sec;
  int64_t mtime_nsec;
  int64_t ctime_sec;
  int64_t ctime_nsec;
};
static_assert(sizeof(WaliKStat) == 120, "WaliKStat wire size is part of the ABI");

// Portable timespec (WALI uses 64-bit fields on every ISA).
struct WaliTimespec {
  int64_t sec;
  int64_t nsec;
};

// wasm32 iovec as emitted by a 32-bit guest libc.
struct WaliIovec {
  uint32_t base;  // wasm address
  uint32_t len;
};

// Portable sigaction record (wasm32 guest view): handler is an index into
// the module's function table.
struct WaliKSigaction {
  uint32_t handler;   // funcref table index, or 0/1 for SIG_DFL/SIG_IGN
  uint32_t flags;
  uint64_t mask;
};

// Portable sysinfo subset.
struct WaliSysinfo {
  int64_t uptime;
  uint64_t totalram;
  uint64_t freeram;
  uint64_t procs;
};

// ---- per-ISA native struct stat descriptors ----

struct StatField {
  uint16_t offset;
  uint8_t size;  // bytes (0 = absent)
};

struct StatLayout {
  StatField dev, ino, mode, nlink, uid, gid, rdev, size, blksize, blocks;
  StatField atime_sec, atime_nsec, mtime_sec, mtime_nsec, ctime_sec, ctime_nsec;
  uint16_t struct_size;
};

const StatLayout& StatLayoutFor(Isa isa);

// Converts a native `struct stat` byte image laid out per `isa` into the
// portable record (and back). The byte-image interface lets tests exercise
// all three ISAs on one host.
void NativeStatToWali(const void* native, Isa isa, WaliKStat* out);
void WaliStatToNative(const WaliKStat& in, Isa isa, void* native);

// ---- open(2) flag translation ----

// WALI's canonical open flags are the asm-generic values. These translate a
// canonical flag word to/from an ISA's native encoding.
uint32_t OpenFlagsToNative(uint32_t wali_flags, Isa isa);
uint32_t OpenFlagsFromNative(uint32_t native_flags, Isa isa);

// Host ISA of this build.
Isa HostIsa();

}  // namespace wabi

#endif  // SRC_ABI_LAYOUT_H_
